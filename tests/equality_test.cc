// Tests for the Fact 3.5 equality protocol: one-sidedness, error rate
// calibration, batching semantics and cost/round accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "eq/equality.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint {
namespace {

util::BitBuffer message(std::uint64_t v, unsigned w = 32) {
  util::BitBuffer b;
  b.append_bits(v, w);
  return b;
}

TEST(Equality, EqualInputsAlwaysAccepted) {
  sim::SharedRandomness shared(5);
  for (std::uint64_t nonce = 0; nonce < 200; ++nonce) {
    sim::Channel ch;
    EXPECT_TRUE(eq::equality_test(ch, shared, nonce, message(nonce),
                                  message(nonce), 1));
  }
}

TEST(Equality, UnequalInputsRejectedWithHighProbabilityAtWideHash) {
  sim::SharedRandomness shared(6);
  int accepted = 0;
  for (std::uint64_t nonce = 0; nonce < 500; ++nonce) {
    sim::Channel ch;
    accepted += eq::equality_test(ch, shared, nonce, message(nonce),
                                  message(nonce + 1), 40);
  }
  EXPECT_EQ(accepted, 0);  // 500 * 2^-40 false accepts: essentially never
}

TEST(Equality, ErrorRateTracksTwoToMinusB) {
  // With b = 3 bits, unequal inputs should be falsely accepted at ~1/8.
  sim::SharedRandomness shared(7);
  int accepted = 0;
  const int trials = 8000;
  for (int i = 0; i < trials; ++i) {
    sim::Channel ch;
    accepted += eq::equality_test(ch, shared, static_cast<std::uint64_t>(i),
                                  message(static_cast<std::uint64_t>(i)),
                                  message(static_cast<std::uint64_t>(i) + 9),
                                  3);
  }
  EXPECT_NEAR(accepted, trials / 8, trials / 40);
}

TEST(Equality, CostIsBitsPlusVerdictInTwoRounds) {
  sim::SharedRandomness shared(8);
  sim::Channel ch;
  eq::equality_test(ch, shared, 0, message(1), message(2), 17);
  EXPECT_EQ(ch.cost().bits_total, 17u + 1u);
  EXPECT_EQ(ch.cost().rounds, 2u);
  EXPECT_EQ(ch.cost().messages, 2u);
}

TEST(Equality, DifferentLengthMessagesAreUnequal) {
  sim::SharedRandomness shared(9);
  int accepted = 0;
  for (std::uint64_t nonce = 0; nonce < 200; ++nonce) {
    sim::Channel ch;
    util::BitBuffer longer = message(7, 32);
    longer.append_bit(false);
    accepted +=
        eq::equality_test(ch, shared, nonce, message(7, 32), longer, 20);
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Equality, EmptyMessagesAreEqual) {
  sim::SharedRandomness shared(10);
  sim::Channel ch;
  EXPECT_TRUE(
      eq::equality_test(ch, shared, 0, util::BitBuffer{}, util::BitBuffer{}, 4));
}

TEST(BatchEquality, MixedVerdictsAreCorrect) {
  sim::SharedRandomness shared(11);
  sim::Channel ch;
  std::vector<util::BitBuffer> xa;
  std::vector<util::BitBuffer> xb;
  for (std::uint64_t i = 0; i < 64; ++i) {
    xa.push_back(message(i));
    xb.push_back(message(i % 2 == 0 ? i : i + 1000));  // evens equal
  }
  const std::vector<bool> verdicts =
      eq::batch_equality_test(ch, shared, 0, xa, xb, 30);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(verdicts[i], i % 2 == 0) << i;
  }
}

TEST(BatchEquality, StaysTwoRoundsRegardlessOfBatchSize) {
  sim::SharedRandomness shared(12);
  for (std::size_t n : {1u, 10u, 500u}) {
    sim::Channel ch;
    std::vector<util::BitBuffer> xa(n, message(1));
    std::vector<util::BitBuffer> xb(n, message(1));
    eq::batch_equality_test(ch, shared, 0, xa, xb, 5);
    EXPECT_EQ(ch.cost().rounds, 2u) << n;
    EXPECT_EQ(ch.cost().bits_total, n * 6) << n;  // 5 hash + 1 verdict each
  }
}

TEST(BatchEquality, EmptyBatchCostsNothing) {
  sim::SharedRandomness shared(13);
  sim::Channel ch;
  const auto verdicts = eq::batch_equality_test(ch, shared, 0, {}, {}, 5);
  EXPECT_TRUE(verdicts.empty());
  EXPECT_EQ(ch.cost().bits_total, 0u);
  EXPECT_EQ(ch.cost().messages, 0u);
}

TEST(BatchEquality, RejectsMismatchedSizesAndZeroBits) {
  sim::SharedRandomness shared(14);
  sim::Channel ch;
  std::vector<util::BitBuffer> one(1, message(1));
  std::vector<util::BitBuffer> two(2, message(1));
  EXPECT_THROW(eq::batch_equality_test(ch, shared, 0, one, two, 5),
               std::invalid_argument);
  EXPECT_THROW(eq::batch_equality_test(ch, shared, 0, one, one, 0),
               std::invalid_argument);
}

TEST(BatchEquality, FreshNoncesGiveFreshRandomness) {
  // The same unequal pair tested with many nonces must not be judged
  // identically every time when the hash is 1 bit wide.
  sim::SharedRandomness shared(15);
  int accepts = 0;
  for (std::uint64_t nonce = 0; nonce < 400; ++nonce) {
    sim::Channel ch;
    accepts += eq::equality_test(ch, shared, nonce, message(3), message(4), 1);
  }
  EXPECT_GT(accepts, 100);  // about half accept
  EXPECT_LT(accepts, 300);
}

TEST(BatchEquality, WideHashesSpanMultipleWords) {
  sim::SharedRandomness shared(16);
  sim::Channel ch;
  std::vector<util::BitBuffer> xa{message(1), message(2)};
  std::vector<util::BitBuffer> xb{message(1), message(3)};
  const auto verdicts = eq::batch_equality_test(ch, shared, 0, xa, xb, 200);
  EXPECT_TRUE(verdicts[0]);
  EXPECT_FALSE(verdicts[1]);
  EXPECT_EQ(ch.cost().bits_total, 2u * 200u + 2u);
}

TEST(BitsForFailure, Calibration) {
  EXPECT_EQ(eq::bits_for_failure(0.5), 1u);
  EXPECT_EQ(eq::bits_for_failure(0.25), 2u);
  EXPECT_EQ(eq::bits_for_failure(1.0 / 1024), 10u);
  EXPECT_EQ(eq::bits_for_failure(0.3), 2u);
  EXPECT_EQ(eq::bits_for_failure(2.0), 1u);   // nonsense input -> 1 bit
  EXPECT_EQ(eq::bits_for_failure(-1.0), 1u);
}

}  // namespace
}  // namespace setint
