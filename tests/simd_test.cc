// Differential suite for the SIMD local-compute engine (ctest -L simd).
//
// Every kernel tier is driven via forced dispatch against the portable
// scalar reference on randomized inputs plus the adversarial shapes the
// kernels special-case: empty sets, one-element sets, full overlap,
// disjoint ranges, ragged tails, and sizes straddling every crossover of
// the intersection heuristic. The ci.sh simd lane runs this suite twice —
// natively and under SETINT_FORCE_SCALAR=1 — and the forced entry points
// deliberately reach the real vector tiers in both modes (they clamp to
// hardware capability, not to the environment override), so the
// differential coverage is identical either way; what the scalar re-run
// checks is that the *dispatched* paths degrade correctly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/bucket_eq.h"
#include "hashing/fks.h"
#include "hashing/pairwise.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

using simd::IntersectAlgo;
using simd::Tier;

std::vector<Tier> all_tiers() {
  return {Tier::kScalar, Tier::kSse41, Tier::kAvx2};
}

// Strictly increasing set of the given size with geometric-ish gaps.
std::vector<std::uint64_t> make_canonical(util::Rng& rng, std::size_t n,
                                          std::uint64_t max_gap) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  std::uint64_t v = rng.below(64);
  for (std::size_t i = 0; i < n; ++i) {
    v += 1 + rng.below(max_gap);
    out.push_back(v);
  }
  return out;
}

// ---------- dispatch ladder ----------

TEST(SimdDispatch, TierLadderIsConsistent) {
  const simd::CpuFeatures& f = simd::detected_features();
  const Tier hw = simd::detected_tier();
  // The ladder is monotone: avx2 implies the sse41 prerequisites.
  if (hw == Tier::kAvx2) {
    EXPECT_TRUE(f.avx2);
    EXPECT_TRUE(f.popcnt);
  }
  if (hw >= Tier::kSse41) {
    EXPECT_TRUE(f.sse4_1);
    EXPECT_TRUE(f.popcnt);
  }
  // active_tier never exceeds the hardware.
  EXPECT_LE(static_cast<int>(simd::active_tier()), static_cast<int>(hw));
}

TEST(SimdDispatch, ForcedScalarEnvironmentWins) {
  // This test runs in both ci.sh modes; only assert the env contract when
  // the variable is actually set (the native run asserts the default).
  const char* forced = std::getenv("SETINT_FORCE_SCALAR");
  if (forced != nullptr && forced[0] != '\0' &&
      !(forced[0] == '0' && forced[1] == '\0')) {
    EXPECT_EQ(simd::active_tier(), Tier::kScalar);
  } else if (std::getenv("SETINT_FORCE_TIER") == nullptr) {
    EXPECT_EQ(simd::active_tier(), simd::detected_tier());
  }
}

TEST(SimdDispatch, ScopedOverrideClampsAndNests) {
  const Tier hw = simd::detected_tier();
  {
    simd::ScopedTierOverride outer(Tier::kScalar);
    EXPECT_EQ(simd::active_tier(), Tier::kScalar);
    {
      // Requests above the hardware clamp instead of faulting.
      simd::ScopedTierOverride inner(Tier::kAvx2);
      EXPECT_EQ(simd::active_tier(), std::min(Tier::kAvx2, hw));
    }
    EXPECT_EQ(simd::active_tier(), Tier::kScalar);
  }
  EXPECT_EQ(static_cast<int>(simd::active_tier()) <= static_cast<int>(hw),
            true);
}

TEST(SimdDispatch, TierNamesAreStable) {
  // bench_util.h writes these into BENCH environment blocks and
  // bench_compare keys on them: renaming is a schema change.
  EXPECT_STREQ(simd::tier_name(Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(Tier::kSse41), "sse41");
  EXPECT_STREQ(simd::tier_name(Tier::kAvx2), "avx2");
}

// ---------- intersection heuristic ----------

TEST(SimdPlan, CrossoversMatchDocumentedTable) {
  // Straddle each crossover from docs/PERFORMANCE.md exactly.
  const std::size_t g = simd::kGallopRatio;        // 50
  const std::size_t bg = simd::kBlockGallopRatio;  // 1000
  const std::size_t bm = simd::kBlockMinSmall;     // 16

  // Vector tiers.
  for (Tier tier : {Tier::kSse41, Tier::kAvx2}) {
    EXPECT_EQ(simd::plan_intersect(0, 100, tier), IntersectAlgo::kScalarMerge);
    EXPECT_EQ(simd::plan_intersect(4, 4 * (bg - 1), tier),
              IntersectAlgo::kGallop);
    EXPECT_EQ(simd::plan_intersect(4, 4 * bg, tier),
              IntersectAlgo::kBlockGallop);
    EXPECT_EQ(simd::plan_intersect(bm, bm * (g - 1), tier),
              IntersectAlgo::kBlock);
    EXPECT_EQ(simd::plan_intersect(bm, bm * g, tier), IntersectAlgo::kGallop);
    EXPECT_EQ(simd::plan_intersect(bm - 1, bm - 1, tier),
              IntersectAlgo::kScalarMerge);
    EXPECT_EQ(simd::plan_intersect(bm, bm, tier), IntersectAlgo::kBlock);
    // Symmetry: operand order never changes the plan.
    EXPECT_EQ(simd::plan_intersect(4 * bg, 4, tier),
              simd::plan_intersect(4, 4 * bg, tier));
  }

  // Scalar tier: no block kernels, ever.
  EXPECT_EQ(simd::plan_intersect(bm, bm, Tier::kScalar),
            IntersectAlgo::kScalarMerge);
  EXPECT_EQ(simd::plan_intersect(4, 4 * bg, Tier::kScalar),
            IntersectAlgo::kGallop);
  EXPECT_EQ(simd::plan_intersect(bm, bm * g, Tier::kScalar),
            IntersectAlgo::kGallop);
}

// ---------- intersection kernels: every algo x tier vs reference ----------

void check_intersection(const std::vector<std::uint64_t>& a,
                        const std::vector<std::uint64_t>& b,
                        const char* label) {
  // Reference: the STL on canonical inputs.
  std::vector<std::uint64_t> want;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(want));
  std::vector<std::uint64_t> out(std::min(a.size(), b.size()) +
                                 simd::kIntersectPadding);
  for (Tier tier : all_tiers()) {
    for (IntersectAlgo algo :
         {IntersectAlgo::kScalarMerge, IntersectAlgo::kGallop,
          IntersectAlgo::kBlock, IntersectAlgo::kBlockGallop}) {
      const std::size_t n = simd::intersect_sorted_with(algo, tier, a, b, out);
      ASSERT_EQ(n, want.size())
          << label << " algo=" << simd::intersect_algo_name(algo)
          << " tier=" << simd::tier_name(tier) << " na=" << a.size()
          << " nb=" << b.size();
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], want[i])
            << label << " algo=" << simd::intersect_algo_name(algo)
            << " tier=" << simd::tier_name(tier) << " i=" << i;
      }
    }
  }
  // The adaptive entry (dispatched tier) agrees too.
  const std::size_t n = simd::intersect_sorted(a, b, out);
  ASSERT_EQ(n, want.size()) << label << " adaptive";
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], want[i]);
}

TEST(SimdIntersect, EdgeShapes) {
  util::Rng rng(0x51D0);
  const std::vector<std::uint64_t> empty;
  const std::vector<std::uint64_t> one{42};
  const std::vector<std::uint64_t> small = make_canonical(rng, 7, 9);
  const std::vector<std::uint64_t> big = make_canonical(rng, 300, 5);

  check_intersection(empty, empty, "empty/empty");
  check_intersection(empty, big, "empty/big");
  check_intersection(big, empty, "big/empty");
  check_intersection(one, one, "one/one-equal");
  check_intersection(one, {{41}}, "one/one-miss");
  check_intersection(one, big, "one/big");
  check_intersection(small, small, "full-overlap");
  check_intersection(big, big, "full-overlap-big");

  // Fully disjoint value ranges (vector loops terminate on block maxes).
  std::vector<std::uint64_t> lo_range = make_canonical(rng, 64, 3);
  std::vector<std::uint64_t> hi_range = make_canonical(rng, 64, 3);
  for (auto& v : hi_range) v += 1'000'000;
  check_intersection(lo_range, hi_range, "disjoint-ranges");

  // Interleaved with no matches (all-odd vs all-even).
  std::vector<std::uint64_t> odds, evens;
  for (std::uint64_t i = 0; i < 100; ++i) {
    odds.push_back(2 * i + 1);
    evens.push_back(2 * i);
  }
  check_intersection(odds, evens, "interleaved-disjoint");
}

TEST(SimdIntersect, SizesStraddlingEveryCrossover) {
  util::Rng rng(0xC0DE);
  // (na, nb) pairs bracketing each heuristic boundary, including ragged
  // non-multiple-of-vector-width sizes.
  const std::size_t cases[][2] = {
      {15, 15},   {16, 16},     {17, 31},    {16, 799},  {16, 800},
      {16, 801},  {4, 3996},    {4, 4000},   {4, 4100},  {1, 1000},
      {2, 2001},  {63, 64},     {65, 129},   {128, 128}, {100, 5000},
      {3, 2999},  {5, 5001},    {33, 1650},  {7, 7007},
  };
  for (const auto& c : cases) {
    // ~50% overlap: draw the union, deal halves.
    const std::size_t na = c[0], nb = c[1];
    std::vector<std::uint64_t> a = make_canonical(rng, na, 40);
    std::vector<std::uint64_t> b = make_canonical(rng, nb, 40);
    // Plant shared elements from a into b, keeping b canonical.
    for (std::size_t i = 0; i < na / 2; ++i) b.push_back(a[2 * i]);
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    check_intersection(a, b, "straddle");
    check_intersection(b, a, "straddle-swapped");
  }
}

TEST(SimdIntersect, RandomizedDifferential) {
  util::Rng rng(0xD1FF);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t na = rng.below(260);
    const std::size_t nb = rng.below(2600);
    const std::uint64_t gap = 1 + rng.below(30);
    std::vector<std::uint64_t> a = make_canonical(rng, na, gap);
    std::vector<std::uint64_t> b = make_canonical(rng, nb, gap);
    check_intersection(a, b, "random");
  }
}

TEST(SimdIntersect, RejectsUnderSizedOutput) {
  const std::vector<std::uint64_t> a{1, 2, 3, 4};
  const std::vector<std::uint64_t> b{2, 3};
  // Needs min(na, nb) + padding = 2 + 8.
  std::vector<std::uint64_t> out(9);
  EXPECT_THROW(simd::intersect_sorted(a, b, out), std::invalid_argument);
  out.resize(10);
  EXPECT_EQ(simd::intersect_sorted(a, b, out), 2u);
}

// ---------- hash lanes: forced-scalar vs dispatched tier ----------

TEST(SimdHashLanes, ReduceModManyMatchesPlainRemainder) {
  util::Rng rng(0xBA22);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t d = 1 + rng.below(std::uint64_t{1} << (1 + rng.below(63)));
    const hashing::Reducer64 red(d);
    const simd::ReduceConstants c{red.magic_hi(), red.magic_lo(),
                                  red.divisor()};
    const std::size_t n = rng.below(133);
    std::vector<std::uint64_t> xs(n);
    for (auto& x : xs) x = rng.next();
    std::vector<std::uint64_t> dispatched(n), forced(n);
    simd::reduce_mod_many(c, xs, dispatched);
    {
      simd::ScopedTierOverride scalar_only(Tier::kScalar);
      simd::reduce_mod_many(c, xs, forced);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dispatched[i], xs[i] % d) << "d=" << d << " x=" << xs[i];
      ASSERT_EQ(dispatched[i], forced[i]);
    }
  }
}

TEST(SimdHashLanes, PairwiseHashManyIdenticalAcrossTiers) {
  util::Rng rng(0x4A5E);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t universe = 2 + rng.below(std::uint64_t{1} << 40);
    const std::uint64_t range = 1 + rng.below(1 << 16);
    const auto h = hashing::PairwiseHash::sample(rng, universe, range);
    const std::size_t n = rng.below(150);
    std::vector<std::uint64_t> xs(n);
    for (auto& x : xs) {
      x = rng.below(8) == 0 ? rng.next() : rng.below(universe);
    }
    std::vector<std::uint64_t> reference(n);
    {
      simd::ScopedTierOverride scalar_only(Tier::kScalar);
      h.hash_many(xs, reference);
    }
    for (Tier tier : all_tiers()) {
      simd::ScopedTierOverride forced(tier);
      std::vector<std::uint64_t> got(n);
      h.hash_many(xs, got);
      ASSERT_EQ(got, reference) << "tier=" << simd::tier_name(tier);
    }
    // And the scalar reference is the element-by-element operator().
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(reference[i], h(xs[i]));
  }
}

TEST(SimdHashLanes, FksHashManyIdenticalAcrossTiers) {
  util::Rng rng(0xF4A5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t universe = 2 + rng.below(std::uint64_t{1} << 44);
    const std::uint64_t max_elements = 2 + rng.below(1 << 10);
    const auto f = hashing::FksCompressor::sample(rng, universe, max_elements);
    const std::size_t n = rng.below(140);
    std::vector<std::uint64_t> xs(n);
    for (auto& x : xs) x = rng.next();
    std::vector<std::uint64_t> reference(n);
    {
      simd::ScopedTierOverride scalar_only(Tier::kScalar);
      f.hash_many(xs, reference);
    }
    for (Tier tier : all_tiers()) {
      simd::ScopedTierOverride forced(tier);
      std::vector<std::uint64_t> got(n);
      f.hash_many(xs, got);
      ASSERT_EQ(got, reference) << "tier=" << simd::tier_name(tier);
    }
  }
}

// ---------- bitmap kernels ----------

TEST(SimdBitmap, AndCountMatchesReferenceAcrossTiers) {
  util::Rng rng(0xB175);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng.below(131);  // straddles all vector widths
    std::vector<std::uint64_t> a(n), b(n), out(n);
    for (auto& x : a) x = rng.next();
    for (auto& x : b) x = rng.next();
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < n; ++i) {
      want += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
    }
    for (Tier tier : all_tiers()) {
      simd::ScopedTierOverride forced(tier);
      ASSERT_EQ(simd::bitmap_and_count(a, b), want)
          << "tier=" << simd::tier_name(tier) << " n=" << n;
      simd::bitmap_and(a, b, out);
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], a[i] & b[i]);
    }
  }
}

TEST(SimdBitmap, RejectsMismatchedLengths) {
  const std::vector<std::uint64_t> a(4), b(5);
  std::vector<std::uint64_t> out(5);
  EXPECT_THROW(simd::bitmap_and_count(a, b), std::invalid_argument);
  EXPECT_THROW(simd::bitmap_and(a, b, out), std::invalid_argument);
}

// ---------- end to end: transcripts are tier-invariant ----------

// The golden/digest suites pin transcripts at the dispatched tier; this
// test closes the loop by running a full protocol under EVERY forced tier
// in one process and requiring identical bits, rounds, and digests.
TEST(SimdEndToEnd, BucketEqTranscriptIdenticalUnderAllTiers) {
  util::Rng wrng(424242);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 22, 256, 128);

  struct RunSummary {
    std::uint64_t bits, rounds, digest;
    util::Set alice;
  };
  auto run_once = [&]() {
    sim::Channel ch(/*record_transcript=*/true);
    sim::SharedRandomness sh(31337);
    const auto out = core::bucket_eq_intersection(
        ch, sh, /*nonce=*/7, std::uint64_t{1} << 22, p.s, p.t, /*strength=*/3);
    return RunSummary{ch.cost().bits_total, ch.cost().rounds,
                      ch.transcript()->digest(), out.alice};
  };

  std::vector<RunSummary> runs;
  for (Tier tier : all_tiers()) {
    simd::ScopedTierOverride forced(tier);
    runs.push_back(run_once());
    EXPECT_EQ(runs.back().alice, p.expected_intersection)
        << "tier=" << simd::tier_name(tier);
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].bits, runs[0].bits);
    EXPECT_EQ(runs[i].rounds, runs[0].rounds);
    EXPECT_EQ(runs[i].digest, runs[0].digest);
  }
}

}  // namespace
}  // namespace setint
