// Tests for the flight recorder (obs/recorder.h): ring wraparound keeps
// exactly the newest capacity() events with contiguous sequence numbers,
// labels truncate instead of allocating, incident() dumps parseable JSONL
// post-mortems under a bounded budget, and the channel hooks record
// messages, faults, integrity failures and limit breaches end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/resource_limits.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "sim/channel.h"
#include "sim/fault.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint {
namespace {

using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;

util::BitBuffer bits_of(std::uint64_t v, unsigned w) {
  util::BitBuffer b;
  b.append_bits(v, w);
  return b;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

// ---------- ring behaviour ----------

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 8u);   // minimum
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(10).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(256).capacity(), 256u);
}

TEST(FlightRecorder, WraparoundKeepsNewestEvents) {
  FlightRecorder rec(8);
  const std::uint64_t total = 21;
  for (std::uint64_t i = 0; i < total; ++i) {
    rec.record(FlightEventKind::kMessage, "e" + std::to_string(i),
               static_cast<int>(i % 2), static_cast<std::uint64_t>(10 * i),
               100 * i);
  }
  EXPECT_EQ(rec.recorded(), total);
  EXPECT_EQ(rec.overwritten(), total - 8);

  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t seq = total - 8 + i;  // oldest-first, newest window
    EXPECT_EQ(events[i].sequence, seq);
    EXPECT_EQ(std::string(events[i].label), "e" + std::to_string(seq));
    EXPECT_EQ(events[i].bits, 10 * seq);
    EXPECT_EQ(events[i].bit_offset, 100 * seq);
  }
}

TEST(FlightRecorder, SnapshotBeforeWraparoundIsComplete) {
  FlightRecorder rec(64);
  rec.record(FlightEventKind::kRetry, "attempt 1");
  rec.record(FlightEventKind::kDegrade, "superset answer");
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kRetry);
  EXPECT_EQ(events[1].kind, FlightEventKind::kDegrade);
  EXPECT_EQ(rec.overwritten(), 0u);
}

TEST(FlightRecorder, LabelsTruncateWithoutAllocating) {
  FlightRecorder rec(8);
  const std::string longlabel(100, 'x');
  rec.record(FlightEventKind::kFault, longlabel);
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string stored(events[0].label);
  EXPECT_LT(stored.size(), FlightEvent::kLabelCapacity);
  EXPECT_EQ(stored, longlabel.substr(0, stored.size()));
}

TEST(FlightRecorder, KindNamesAreStable) {
  EXPECT_STREQ(obs::flight_event_kind_name(FlightEventKind::kMessage),
               "message");
  EXPECT_STREQ(obs::flight_event_kind_name(FlightEventKind::kIntegrityFailure),
               "integrity_failure");
  EXPECT_STREQ(obs::flight_event_kind_name(FlightEventKind::kIncident),
               "incident");
}

// ---------- JSONL dumps ----------

TEST(FlightRecorder, DumpJsonlIsParseableAndOrdered) {
  FlightRecorder rec(8);
  for (int i = 0; i < 12; ++i) {
    rec.record(FlightEventKind::kMessage, "m" + std::to_string(i));
  }
  std::ostringstream os;
  rec.dump_jsonl(os, "unit test");
  const std::vector<std::string> lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u + 8u);  // meta + newest window

  const obs::Json meta = obs::Json::parse(lines[0]);
  EXPECT_EQ(meta.find("kind")->as_string(), "meta");
  EXPECT_EQ(meta.find("reason")->as_string(), "unit test");
  EXPECT_EQ(meta.find("recorded")->number_or(-1), 12.0);
  EXPECT_EQ(meta.find("overwritten")->number_or(-1), 4.0);

  std::uint64_t prev_seq = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const obs::Json event = obs::Json::parse(lines[i]);
    const std::uint64_t seq =
        static_cast<std::uint64_t>(event.find("seq")->number_or(-1));
    if (i > 1) {
      EXPECT_EQ(seq, prev_seq + 1);  // chronological
    }
    prev_seq = seq;
    EXPECT_EQ(event.find("kind")->as_string(), "message");
  }
}

TEST(FlightRecorder, IncidentAutoDumpRespectsBudget) {
  FlightRecorder rec(8);
  const std::string prefix =
      testing::TempDir() + "/recorder_test_incident";
  rec.set_dump_path(prefix, /*max_dumps=*/2);
  rec.record(FlightEventKind::kMessage, "payload", 0, 16, 0);

  rec.incident("first");
  rec.incident("second");
  rec.incident("third");  // over budget: recorded, not dumped
  EXPECT_EQ(rec.incidents(), 3u);
  ASSERT_EQ(rec.dump_files().size(), 2u);

  std::ifstream in(rec.dump_files()[0]);
  ASSERT_TRUE(in.good()) << rec.dump_files()[0];
  std::stringstream ss;
  ss << in.rdbuf();
  const std::vector<std::string> lines = lines_of(ss.str());
  ASSERT_GE(lines.size(), 2u);
  const obs::Json meta = obs::Json::parse(lines[0]);
  EXPECT_EQ(meta.find("reason")->as_string(), "first");
  // The kIncident marker itself lands in the ring before the dump.
  const obs::Json last = obs::Json::parse(lines.back());
  EXPECT_EQ(last.find("kind")->as_string(), "incident");

  for (const std::string& f : rec.dump_files()) std::remove(f.c_str());
}

TEST(FlightRecorder, NoDumpPathMeansNoFiles) {
  FlightRecorder rec(8);
  rec.incident("nothing configured");
  EXPECT_EQ(rec.incidents(), 1u);
  EXPECT_TRUE(rec.dump_files().empty());
}

// ---------- channel integration ----------

TEST(FlightRecorder, ChannelRecordsMessagesWithOffsets) {
  FlightRecorder rec(64);
  sim::Channel ch;
  ch.set_recorder(&rec);
  ch.send(sim::PartyId::kAlice, bits_of(0b1011, 4), "probe");
  ch.send(sim::PartyId::kBob, bits_of(0xFF, 8), "reply");

  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kMessage);
  EXPECT_EQ(std::string(events[0].label), "probe");
  EXPECT_EQ(events[0].bits, 4u);
  // bit_offset is the channel's bits_total at record time, i.e. with the
  // event's own payload already metered (recorder.h contract).
  EXPECT_EQ(events[0].bit_offset, 4u);
  EXPECT_EQ(events[0].party, 0);
  EXPECT_EQ(std::string(events[1].label), "reply");
  EXPECT_EQ(events[1].bits, 8u);
  EXPECT_EQ(events[1].bit_offset, 12u);
  EXPECT_EQ(events[1].party, 1);
}

TEST(FlightRecorder, ChannelIntegrityFailureFiresIncidentDump) {
  // drop_prob = 1: the first frame is lost in flight, the delivery-side
  // integrity check throws, and the recorder must hold the fault + the
  // integrity failure and write exactly one post-mortem.
  sim::FaultSpec spec;
  spec.drop_prob = 1.0;
  spec.seed = 7;
  sim::FaultPlan plan(spec);

  FlightRecorder rec(64);
  const std::string prefix = testing::TempDir() + "/recorder_test_channel";
  rec.set_dump_path(prefix, 4);

  sim::Channel ch;
  ch.set_recorder(&rec);
  ch.set_fault_plan(&plan);
  EXPECT_THROW(ch.send(sim::PartyId::kAlice, bits_of(0xABC, 12), "doomed"),
               sim::ChannelIntegrityError);

  bool saw_fault = false, saw_integrity = false;
  for (const FlightEvent& e : rec.snapshot()) {
    saw_fault |= e.kind == FlightEventKind::kFault;
    saw_integrity |= e.kind == FlightEventKind::kIntegrityFailure;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_integrity);
  ASSERT_EQ(rec.dump_files().size(), 1u);
  std::ifstream in(rec.dump_files()[0]);
  EXPECT_TRUE(in.good());
  for (const std::string& f : rec.dump_files()) std::remove(f.c_str());
}

TEST(FlightRecorder, ChannelLimitBreachIsRecorded) {
  core::ResourceLimits limits;
  limits.max_total_bits = 8;

  FlightRecorder rec(64);
  sim::Channel ch;
  ch.set_recorder(&rec);
  ch.set_limits(&limits);
  EXPECT_THROW(ch.send(sim::PartyId::kAlice, bits_of(0xFFFF, 16), "too big"),
               core::ResourceLimitError);

  bool saw_breach = false, saw_incident = false;
  for (const FlightEvent& e : rec.snapshot()) {
    saw_breach |= e.kind == FlightEventKind::kLimitBreach;
    saw_incident |= e.kind == FlightEventKind::kIncident;
  }
  EXPECT_TRUE(saw_breach);
  EXPECT_TRUE(saw_incident);
}

}  // namespace
}  // namespace setint
