// Theorem-conformance suite: every quantitative claim of the paper as a
// CI-checkable assertion with explicit constants. These are the
// reproduction's acceptance tests — if a refactor breaks a bound's shape,
// this file fails.
#include <gtest/gtest.h>

#include <cstdint>

#include "baselines/st13_disjointness.h"
#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/verification_tree.h"
#include "multiparty/coordinator.h"
#include "sim/channel.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

sim::CostStats tree_cost(std::size_t k, int r, std::uint64_t seed) {
  util::Rng wrng(seed);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 34, k, k / 2);
  core::VerificationTreeParams params;
  params.rounds_r = r;
  sim::SharedRandomness shared(seed);
  sim::Channel ch;
  core::verification_tree_intersection(ch, shared, seed,
                                       std::uint64_t{1} << 34, p.s, p.t,
                                       params);
  return ch.cost();
}

// Theorem 1.1: communication O(k log^(r) k). Constant ceiling calibrated
// from EXPERIMENTS.md (~34-52 bits/element across the sweep), asserted
// with headroom as <= k * (10 log^(r) k + 9 r + 25).
TEST(Theorem11, CommunicationWithinConstantOfKLogRK) {
  for (std::size_t k : {1024u, 8192u, 65536u}) {
    for (int r = 1; r <= 5; ++r) {
      const sim::CostStats cost = tree_cost(k, r, k + static_cast<std::size_t>(r));
      const double tower = util::iterated_log(r, static_cast<double>(k));
      const double budget =
          static_cast<double>(k) * (10.0 * tower + 9.0 * r + 25.0);
      EXPECT_LT(static_cast<double>(cost.bits_total), budget)
          << "k=" << k << " r=" << r;
    }
  }
}

// Theorem 1.1: at most 6r rounds.
TEST(Theorem11, RoundsAtMostSixR) {
  for (std::size_t k : {1024u, 65536u}) {
    for (int r = 1; r <= 6; ++r) {
      const sim::CostStats cost = tree_cost(k, r, 31 * k + static_cast<std::size_t>(r));
      EXPECT_LE(cost.rounds, static_cast<std::uint64_t>(6 * r));
    }
  }
}

// Theorem 1.1 headline: O(k) bits at r = log* k — bits/element must not
// grow from k = 2^10 to 2^18 by more than 35%.
TEST(Theorem11, FlatBitsPerElementAtLogStarRounds) {
  const auto rate = [](std::size_t k) {
    const sim::CostStats cost = tree_cost(
        k, util::log_star(static_cast<double>(k)), k);
    return static_cast<double>(cost.bits_total) / static_cast<double>(k);
  };
  const double small = rate(1u << 10);
  const double large = rate(1u << 18);
  EXPECT_LT(large, small * 1.35) << small << " -> " << large;
}

// Theorem 3.1: O(k) bits (flat in k) via bucketed amortized equality.
TEST(Theorem31, BucketEqFlatBitsPerElement) {
  const auto rate = [](std::size_t k) {
    util::Rng wrng(k);
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 34, k, k / 2);
    sim::SharedRandomness shared(k);
    sim::Channel ch;
    core::bucket_eq_intersection(ch, shared, 0, std::uint64_t{1} << 34, p.s,
                                 p.t);
    return static_cast<double>(ch.cost().bits_total) / static_cast<double>(k);
  };
  const double small = rate(512);
  const double large = rate(32768);
  EXPECT_LT(large, small * 1.35);
  EXPECT_LT(large, 30.0);  // absolute: ~19 measured, generous ceiling
}

// Theorem 3.1: rounds within the O(sqrt k) budget (ours are polylog).
TEST(Theorem31, RoundsWithinSqrtKBudget) {
  const std::size_t k = 16384;
  util::Rng wrng(3);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 34, k, k / 2);
  sim::SharedRandomness shared(3);
  sim::Channel ch;
  core::bucket_eq_intersection(ch, shared, 0, std::uint64_t{1} << 34, p.s,
                               p.t);
  EXPECT_LT(ch.cost().rounds, 6 * 128u);  // 6 sqrt(k)
}

// D^(1) = O(k log(n/k)): the deterministic cost grows by ~1.5 bits per
// element per unit of log2(n) (Rice-coded, includes the reply).
TEST(TrivialBound, DeterministicTracksLogNOverK) {
  const std::size_t k = 2048;
  const auto rate = [&](unsigned log_n) {
    util::Rng wrng(log_n);
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << log_n, k, k / 2);
    sim::Channel ch;
    core::deterministic_exchange(ch, std::uint64_t{1} << log_n, p.s, p.t);
    return static_cast<double>(ch.cost().bits_total) / static_cast<double>(k);
  };
  const double at_24 = rate(24);
  const double at_48 = rate(48);
  EXPECT_GT(at_48 - at_24, 0.9 * 24.0);  // ~1.0-1.5 bits per log2(n) unit
  EXPECT_LT(at_48 - at_24, 2.0 * 24.0);
}

// R^(1) = Theta(k log k): one-round cost per element grows by ~6 bits per
// doubling-squared... precisely 3 bits per log2(k) unit each way.
TEST(OneRoundBound, TracksKLogK) {
  const auto rate = [](std::size_t k) {
    util::Rng wrng(k);
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 34, k, k / 2);
    sim::SharedRandomness shared(k);
    sim::Channel ch;
    core::one_round_hash(ch, shared, 0, std::uint64_t{1} << 34, p.s, p.t);
    return static_cast<double>(ch.cost().bits_total) / static_cast<double>(k);
  };
  const double at_10 = rate(1u << 10);
  const double at_16 = rate(1u << 16);
  EXPECT_NEAR(at_16 - at_10, 6.0 * 6.0, 8.0);  // 6 bits per doubling of k
}

// Corollary 4.1: average per-player communication flat in m, success on
// every run at these sizes.
TEST(Corollary41, AveragePerPlayerFlatInM) {
  const std::size_t k = 32;
  const auto avg = [&](std::size_t m) {
    util::Rng wrng(m);
    const auto inst = util::random_multi_sets(wrng, 1u << 24, m, k, k / 2);
    sim::Network net(m);
    sim::SharedRandomness shared(m);
    const auto result =
        multiparty::coordinator_intersection(net, shared, 1u << 24, inst.sets);
    EXPECT_EQ(result.intersection, inst.expected_intersection) << m;
    return net.average_player_bits();
  };
  const double at_8 = avg(8);
  const double at_512 = avg(512);
  EXPECT_LT(at_512, at_8 * 2.0);
}

// [ST13] context: the r-round DISJ tradeoff decays with r (k log^(r) k).
TEST(St13Bound, TradeoffDecays) {
  const std::size_t k = 8192;
  util::Rng wrng(5);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 30, k, 0);
  sim::SharedRandomness shared(5);
  std::uint64_t previous = ~std::uint64_t{0};
  for (int r = 1; r <= 3; ++r) {
    sim::Channel ch;
    baselines::st13_disjointness(ch, shared, static_cast<std::uint64_t>(r),
                                 std::uint64_t{1} << 30, p.s, p.t, r);
    EXPECT_LT(ch.cost().bits_total, previous) << r;
    previous = ch.cost().bits_total;
  }
}

// The paper's motivating separation: tree cost flat in |S cap T| while the
// answer stays exact at both extremes.
TEST(Separation, TreeCostFlatInIntersectionSize) {
  const std::size_t k = 8192;
  const auto bits_at = [&](std::size_t shared_count) {
    util::Rng wrng(shared_count + 1);
    const util::SetPair p = util::random_set_pair(
        wrng, std::uint64_t{1} << 30, k, shared_count);
    sim::SharedRandomness shared(shared_count);
    sim::Channel ch;
    const auto out = core::verification_tree_intersection(
        ch, shared, 0, std::uint64_t{1} << 30, p.s, p.t, {});
    EXPECT_EQ(out.alice, p.expected_intersection);
    return static_cast<double>(ch.cost().bits_total);
  };
  const double disjoint = bits_at(0);
  const double identical = bits_at(k);
  EXPECT_LT(disjoint / identical, 2.5);
  EXPECT_GT(disjoint / identical, 0.4);
}

}  // namespace
}  // namespace setint
