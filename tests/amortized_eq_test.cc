// Tests for the amortized EQ^k protocol (the FKNN-equivalent merge tree):
// correctness on mixed instance sets, one-sidedness, O(k) communication
// scaling and error behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "eq/amortized_eq.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint {
namespace {

util::BitBuffer message(std::uint64_t v) {
  util::BitBuffer b;
  b.append_bits(v, 48);
  return b;
}

struct Workload {
  std::vector<util::BitBuffer> xs;
  std::vector<util::BitBuffer> ys;
  std::vector<bool> truth;
};

// `equal_mask(i)` decides whether instance i is equal.
template <typename Pred>
Workload make_workload(std::size_t k, Pred equal_mask) {
  Workload w;
  for (std::size_t i = 0; i < k; ++i) {
    const bool eq = equal_mask(i);
    w.xs.push_back(message(i));
    w.ys.push_back(message(eq ? i : i + 1'000'000));
    w.truth.push_back(eq);
  }
  return w;
}

TEST(AmortizedEq, AllEqual) {
  sim::SharedRandomness shared(1);
  sim::Channel ch;
  const Workload w = make_workload(100, [](std::size_t) { return true; });
  const auto got = eq::amortized_equality(ch, shared, 0, w.xs, w.ys);
  EXPECT_EQ(got, w.truth);
}

TEST(AmortizedEq, NoneEqual) {
  sim::SharedRandomness shared(2);
  sim::Channel ch;
  const Workload w = make_workload(100, [](std::size_t) { return false; });
  const auto got = eq::amortized_equality(ch, shared, 0, w.xs, w.ys);
  EXPECT_EQ(got, w.truth);
}

TEST(AmortizedEq, EqualInstancesNeverReportedUnequal) {
  // One-sidedness: across many runs with different seeds, equal instances
  // must always come back equal.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::SharedRandomness shared(seed);
    sim::Channel ch;
    const Workload w =
        make_workload(64, [](std::size_t i) { return i % 3 != 0; });
    const auto got = eq::amortized_equality(ch, shared, seed, w.xs, w.ys);
    for (std::size_t i = 0; i < 64; ++i) {
      if (w.truth[i]) EXPECT_TRUE(got[i]) << "seed " << seed << " i " << i;
    }
  }
}

class AmortizedEqMix : public ::testing::TestWithParam<int> {};

TEST_P(AmortizedEqMix, MixedPatternsResolveCorrectly) {
  const int pattern = GetParam();
  sim::SharedRandomness shared(100 + static_cast<std::uint64_t>(pattern));
  sim::Channel ch;
  const Workload w = make_workload(256, [pattern](std::size_t i) {
    switch (pattern) {
      case 0: return i % 2 == 0;
      case 1: return i < 16;          // few equal
      case 2: return i >= 240;        // few equal, at the end
      case 3: return i % 16 == 0;     // sparse equal
      default: return i % 5 != 0;     // mostly equal
    }
  });
  const auto got = eq::amortized_equality(ch, shared, 7, w.xs, w.ys);
  int wrong = 0;
  for (std::size_t i = 0; i < w.truth.size(); ++i) {
    if (w.truth[i]) {
      EXPECT_TRUE(got[i]);  // one-sided, must hold
    } else if (got[i]) {
      ++wrong;  // false accept: allowed only with tiny probability
    }
  }
  EXPECT_EQ(wrong, 0);
}

INSTANTIATE_TEST_SUITE_P(Patterns, AmortizedEqMix, ::testing::Range(0, 5));

TEST(AmortizedEq, EmptyAndSingleton) {
  sim::SharedRandomness shared(3);
  {
    sim::Channel ch;
    EXPECT_TRUE(eq::amortized_equality(ch, shared, 0, {}, {}).empty());
    EXPECT_EQ(ch.cost().bits_total, 0u);
  }
  {
    sim::Channel ch;
    const Workload w = make_workload(1, [](std::size_t) { return true; });
    EXPECT_TRUE(eq::amortized_equality(ch, shared, 0, w.xs, w.ys)[0]);
  }
  {
    sim::Channel ch;
    const Workload w = make_workload(1, [](std::size_t) { return false; });
    EXPECT_FALSE(eq::amortized_equality(ch, shared, 1, w.xs, w.ys)[0]);
  }
}

TEST(AmortizedEq, CommunicationScalesLinearly) {
  // O(k) total bits: bits/instance must not grow with k.
  sim::SharedRandomness shared(4);
  double small_rate = 0;
  double large_rate = 0;
  {
    sim::Channel ch;
    const Workload w = make_workload(256, [](std::size_t i) { return i % 2; });
    eq::amortized_equality(ch, shared, 0, w.xs, w.ys);
    small_rate = static_cast<double>(ch.cost().bits_total) / 256;
  }
  {
    sim::Channel ch;
    const Workload w =
        make_workload(8192, [](std::size_t i) { return i % 2; });
    eq::amortized_equality(ch, shared, 1, w.xs, w.ys);
    large_rate = static_cast<double>(ch.cost().bits_total) / 8192;
  }
  EXPECT_LT(large_rate, small_rate * 2.0)
      << "bits per instance should stay O(1): " << small_rate << " -> "
      << large_rate;
  EXPECT_LT(large_rate, 40.0);
}

TEST(AmortizedEq, RoundsArePolylog) {
  sim::SharedRandomness shared(5);
  sim::Channel ch;
  const Workload w = make_workload(4096, [](std::size_t i) { return i % 2; });
  eq::amortized_equality(ch, shared, 0, w.xs, w.ys);
  // O(log^2 k) with small constants; log2(4096) = 12 -> comfortably < 3*144.
  EXPECT_LT(ch.cost().rounds, 450u);
  // And far fewer than the O(sqrt k) = 64-ish * 2 budget of Theorem 3.2.
  EXPECT_LT(ch.cost().rounds, 2u * 64u * 6u);
}

TEST(AmortizedEq, StatsReported) {
  sim::SharedRandomness shared(6);
  sim::Channel ch;
  const Workload w = make_workload(128, [](std::size_t i) { return i > 60; });
  eq::AmortizedEqStats stats;
  eq::amortized_equality(ch, shared, 0, w.xs, w.ys, &stats);
  EXPECT_GE(stats.levels, util::ceil_log2(128));
  EXPECT_GT(stats.split_tests, 0u);  // 61 unequal instances force splits
}

TEST(AmortizedEq, MismatchedSizesThrow) {
  sim::SharedRandomness shared(7);
  sim::Channel ch;
  std::vector<util::BitBuffer> one(1, message(0));
  std::vector<util::BitBuffer> two(2, message(0));
  EXPECT_THROW(eq::amortized_equality(ch, shared, 0, one, two),
               std::invalid_argument);
}

TEST(AmortizedEq, VariableLengthContents) {
  // Items of different bit lengths, including empty strings.
  sim::SharedRandomness shared(8);
  sim::Channel ch;
  std::vector<util::BitBuffer> xs(4);
  std::vector<util::BitBuffer> ys(4);
  // 0: both empty (equal); 1: empty vs non-empty; 2: long equal;
  // 3: differ in last bit only.
  xs[1].append_bits(1, 1);
  xs[2].append_bits(0xabcdef0123456789ull, 64);
  ys[2].append_bits(0xabcdef0123456789ull, 64);
  xs[3].append_bits(0b10, 2);
  ys[3].append_bits(0b11, 2);
  const auto got = eq::amortized_equality(ch, shared, 0, xs, ys);
  EXPECT_TRUE(got[0]);
  EXPECT_FALSE(got[1]);
  EXPECT_TRUE(got[2]);
  EXPECT_FALSE(got[3]);
}

TEST(AmortizedEq, FalseAcceptRateIsTinyForModerateK) {
  // With K = 256 the cumulative hash budget along the tree is ~2 sqrt(K)
  // = 32 bits; over 200 runs with all-unequal inputs we should basically
  // never see a false accept.
  int false_accepts = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    sim::SharedRandomness shared(900 + seed);
    sim::Channel ch;
    const Workload w = make_workload(256, [](std::size_t) { return false; });
    const auto got = eq::amortized_equality(ch, shared, seed, w.xs, w.ys);
    for (bool g : got) false_accepts += g;
  }
  EXPECT_EQ(false_accepts, 0);
}

}  // namespace
}  // namespace setint
