// Statistical validation of the paper's error bounds, powered by the
// batch engine so thousands of sessions stay fast.
//
// Each suite runs >= 2000 independent seeded sessions and checks the
// OBSERVED failure rate against the paper's bound plus a Chernoff-style
// margin:
//
//   * Equality (Fact 3.5): one-sided — equal inputs never fail; unequal
//     inputs declared equal with probability <= 2^-b.
//   * Basic-Intersection (Lemma 3.3): candidates are ALWAYS a superset
//     of the true intersection (and a subset of the own input); they
//     differ from S cap T with probability <= target_failure.
//   * End-to-end facade: exact and certificate-verified every time on a
//     reliable channel; re-runs (failed certificates) occur at a
//     1/poly(k) rate.
//
// All seeds derive from fixed masters, so these tests are deterministic;
// the margins are what make the assertions robust to re-parameterization
// of the protocols rather than to run-to-run noise.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/basic_intersection.h"
#include "eq/equality.h"
#include "runtime/batch.h"
#include "setint.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// Threads for the statistical batches: exercise the parallel path (the
// suite doubles as a TSan workload via the ci.sh concurrency lane).
constexpr int kThreads = 4;

// Upper tolerance for the number of failures among n Bernoulli(p) trials:
// mean + 4 standard-deviation-scale slack + an absolute floor for tiny
// np. With 4*sqrt(np) slack the chance of a false alarm at the true rate
// p is < 1e-4 even before the +8 floor; seeds are fixed anyway, so this
// margin guards against protocol re-parameterization, not run noise.
double chernoff_upper(double n, double p) {
  const double mean = n * p;
  return mean + 4.0 * std::sqrt(mean) + 8.0;
}

// ---------- Fact 3.5: equality ----------

TEST(StatisticalEquality, FalsePositiveRateUnderTwoToMinusB) {
  constexpr std::size_t kSessions = 4000;
  constexpr std::size_t kHashBits = 6;  // error <= 2^-6 = 1/64
  std::atomic<std::uint64_t> false_equal{0};
  runtime::run_sessions(kSessions, kThreads, [&](std::size_t i) {
    const std::uint64_t seed = util::mix64(0xEC0A57, i);
    util::Rng rng(seed);
    // Distinct 48-bit contents (forced different in the low bits).
    util::BitBuffer xa;
    util::BitBuffer xb;
    const std::uint64_t base = rng.next() & ((std::uint64_t{1} << 48) - 1);
    xa.append_bits(base, 48);
    xb.append_bits(base ^ (1 + rng.below(255)), 48);
    sim::Channel ch;
    sim::SharedRandomness shared(seed);
    if (eq::equality_test(ch, shared, /*nonce=*/i, xa, xb, kHashBits)) {
      false_equal.fetch_add(1);
    }
  });
  const double bound =
      chernoff_upper(kSessions, std::pow(2.0, -double(kHashBits)));
  EXPECT_LE(static_cast<double>(false_equal.load()), bound)
      << false_equal.load() << " false positives in " << kSessions
      << " sessions (bound " << bound << ")";
  // Sanity that the test has power: the rate is also not absurdly small
  // only because nothing ran.
  EXPECT_EQ(kSessions, 4000u);
}

TEST(StatisticalEquality, EqualInputsNeverFail) {
  // The one-sided half of Fact 3.5: x == y  ->  "equal" with probability
  // 1. Any counterexample is a hard bug, so this asserts zero failures.
  constexpr std::size_t kSessions = 2000;
  std::atomic<std::uint64_t> false_unequal{0};
  runtime::run_sessions(kSessions, kThreads, [&](std::size_t i) {
    const std::uint64_t seed = util::mix64(0xEC0A58, i);
    util::Rng rng(seed);
    util::BitBuffer x;
    x.append_bits(rng.next(), 64);
    x.append_bits(rng.next() & 0x7f, 7);  // non-word-aligned length
    sim::Channel ch;
    sim::SharedRandomness shared(seed);
    if (!eq::equality_test(ch, shared, /*nonce=*/i, x, x, 4)) {
      false_unequal.fetch_add(1);
    }
  });
  EXPECT_EQ(false_unequal.load(), 0u);
}

// ---------- Lemma 3.3: Basic-Intersection ----------

TEST(StatisticalBasicIntersection, ErrorRateUnderTarget) {
  constexpr std::size_t kSessions = 2500;
  constexpr double kTargetFailure = 0.05;
  std::atomic<std::uint64_t> wrong{0};
  std::atomic<std::uint64_t> superset_violations{0};
  runtime::run_sessions(kSessions, kThreads, [&](std::size_t i) {
    const std::uint64_t seed = util::mix64(0xB0A51C, i);
    util::Rng wrng(seed);
    const std::size_t k = 24 + wrng.below(40);
    const util::SetPair p =
        util::random_set_pair(wrng, 1u << 20, k, wrng.below(k + 1));
    sim::Channel ch;
    sim::SharedRandomness shared(seed);
    const core::CandidatePair out = core::basic_intersection(
        ch, shared, /*nonce=*/i, 1u << 20, p.s, p.t, kTargetFailure);
    // Always-true structural guarantees (probability 1, not 1 - eps).
    if (!util::is_subset(out.s_candidate, p.s) ||
        !util::is_subset(out.t_candidate, p.t) ||
        !util::is_subset(p.expected_intersection, out.s_candidate) ||
        !util::is_subset(p.expected_intersection, out.t_candidate)) {
      superset_violations.fetch_add(1);
    }
    if (out.s_candidate != p.expected_intersection ||
        out.t_candidate != p.expected_intersection) {
      wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(superset_violations.load(), 0u)
      << "Lemma 3.3's subset/superset guarantees are not statistical";
  const double bound = chernoff_upper(kSessions, kTargetFailure);
  EXPECT_LE(static_cast<double>(wrong.load()), bound)
      << wrong.load() << " wrong candidates in " << kSessions
      << " sessions (target " << kTargetFailure << ", bound " << bound << ")";
}

// ---------- end-to-end facade ----------

TEST(StatisticalFacade, AlwaysExactAndRarelyRetries) {
  constexpr std::size_t kSessions = 2000;
  std::vector<util::SetPair> pairs;
  pairs.reserve(kSessions);
  util::Rng wrng(0xFACADE);
  std::vector<Instance> instances;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const std::size_t k = 32 + wrng.below(64);
    pairs.push_back(util::random_set_pair(wrng, 1u << 22, k, wrng.below(k)));
  }
  instances.reserve(kSessions);
  for (const util::SetPair& p : pairs) instances.push_back({p.s, p.t});

  IntersectOptions options;
  options.universe = 1u << 22;
  options.seed = 0x57A7;
  const BatchResult out = run_batch(options, instances, {.threads = kThreads});

  std::uint64_t reruns = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const IntersectResult& r = out.results[i];
    // On a reliable channel the amplified run is exact every time: a
    // failing certificate re-runs with fresh randomness and the
    // deterministic backstop guarantees termination.
    ASSERT_EQ(r.intersection, pairs[i].expected_intersection) << i;
    ASSERT_TRUE(r.verified) << i;
    ASSERT_FALSE(r.degraded) << i;
    if (r.repetitions > 1) ++reruns;
  }
  // Certificate failures (the only source of repetitions here) happen at
  // a 1/poly(k) rate; 5% is a generous poly bound at k >= 32.
  const double bound = chernoff_upper(kSessions, 0.05);
  EXPECT_LE(static_cast<double>(reruns), bound)
      << reruns << " sessions needed re-runs in " << kSessions;
}

}  // namespace
}  // namespace setint
