// Transcript-digest pins across the whole protocol zoo.
//
// tests/golden_test.cc pins three flagship runs at one reference instance;
// this suite extends the bit-identity net to EVERY core two-party protocol
// (one digest per protocol/config) and both multiparty variants. It exists
// so the hot-path compute engine (docs/PERFORMANCE.md) — batched hashing,
// flat CSR buckets, arena scratch — can keep evolving under a guarantee
// that it changes how bits are computed, never which bits are sent.
//
// The multiparty coordinator/tournament run their two-party sub-protocols
// on internal channels without transcript recording, so their pins are the
// network-level cost surface (total bits, rounds, max per-player bits)
// plus result exactness instead of a payload digest.
//
// If a pin moves because of a DELIBERATE protocol change, re-derive the
// constants (the failure message prints the new values) and say so in the
// change description.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/basic_intersection.h"
#include "core/checkpoint.h"
#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/private_coin.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "multiparty/coordinator.h"
#include "multiparty/tournament.h"
#include "sim/channel.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

constexpr std::uint64_t kUniverse = std::uint64_t{1} << 22;

util::SetPair reference_pair() {
  util::Rng wrng(424242);
  return util::random_set_pair(wrng, kUniverse, 256, 128);
}

struct RunPin {
  std::uint64_t bits;
  std::uint64_t rounds;
  std::uint64_t digest;
};

void expect_pin(const sim::Channel& ch, const RunPin& pin) {
  EXPECT_EQ(ch.cost().bits_total, pin.bits);
  EXPECT_EQ(ch.cost().rounds, pin.rounds);
  EXPECT_EQ(ch.transcript()->digest(), pin.digest);
}

TEST(TranscriptDigest, DeterministicExchange) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  const auto out = core::deterministic_exchange(ch, kUniverse, p.s, p.t);
  EXPECT_EQ(out.alice, p.expected_intersection);
  expect_pin(ch, {6137u, 2u, 0xb642797fce970f57ull});
}

TEST(TranscriptDigest, OneRoundHash) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  sim::SharedRandomness sh(31337);
  const auto out = core::one_round_hash(ch, sh, 7, kUniverse, p.s, p.t);
  EXPECT_EQ(out.alice, p.expected_intersection);
  expect_pin(ch, {12322u, 2u, 0x36c9418be963de9dull});
}

TEST(TranscriptDigest, BucketEq) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  sim::SharedRandomness sh(31337);
  const auto out = core::bucket_eq_intersection(ch, sh, 7, kUniverse, p.s, p.t);
  EXPECT_EQ(out.alice, p.expected_intersection);
  expect_pin(ch, {4285u, 46u, 0x86c456de5495ada7ull});
}

TEST(TranscriptDigest, BasicIntersection) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  sim::SharedRandomness sh(31337);
  const auto cand =
      core::basic_intersection(ch, sh, 7, kUniverse, p.s, p.t, 0.01);
  // Lemma 3.3: candidates always contain the true intersection.
  EXPECT_TRUE(util::is_subset(p.expected_intersection, cand.s_candidate));
  expect_pin(ch, {12356u, 4u, 0x20c1b15d0918bd46ull});
}

TEST(TranscriptDigest, ToyProtocol) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  sim::SharedRandomness sh(31337);
  const auto out = core::toy_bucket_intersection(ch, sh, 7, kUniverse, p.s, p.t);
  EXPECT_EQ(out.alice, p.expected_intersection);
  expect_pin(ch, {6391u, 12u, 0x8050d4ac26394e88ull});
}

// One pin per tree depth: r=1 (the one-round base case), r=2 (one real
// verification stage), r=0 (auto: log* k).
TEST(TranscriptDigest, VerificationTreeDepths) {
  const RunPin pins[] = {
      {12322u, 2u, 0x36c9418be963de9dull},   // r=1
      {10574u, 8u, 0x2555644ef1bb7fa3ull},   // r=2
      {8928u, 20u, 0x2cb7e9e0ecbacad5ull},   // r=0 (auto)
  };
  const int depths[] = {1, 2, 0};
  const util::SetPair p = reference_pair();
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(testing::Message() << "rounds_r=" << depths[i]);
    sim::Channel ch(/*record_transcript=*/true);
    sim::SharedRandomness sh(31337);
    core::VerificationTreeParams params;
    params.rounds_r = depths[i];
    const auto out = core::verification_tree_intersection(ch, sh, 7, kUniverse,
                                                          p.s, p.t, params);
    EXPECT_EQ(out.alice, p.expected_intersection);
    expect_pin(ch, pins[i]);
  }
}

TEST(TranscriptDigest, PrivateCoin) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  util::Rng priv(2024);
  const auto out =
      core::private_coin_intersection(ch, priv, kUniverse, p.s, p.t, {});
  EXPECT_EQ(out.alice, p.expected_intersection);
  expect_pin(ch, {8901u, 18u, 0x8a404eecbff2b953ull});
}

// Checkpoint determinism (docs/ROBUSTNESS.md § checkpoint granularity):
// interrupting at a phase boundary and resuming ON THE SAME CHANNEL must
// reproduce the uninterrupted transcript bit-for-bit, so the pins above
// double as resume pins. interrupt_after stores the snapshot before
// throwing, which is exactly the crash-at-boundary case the recovery
// layer replays from.

TEST(TranscriptDigest, BasicIntersectionResumesToSamePin) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  sim::SharedRandomness sh(31337);
  core::Checkpoint ckpt;
  ckpt.interrupt_after("bi", 1);  // crash after the size exchange
  EXPECT_THROW(
      core::basic_intersection(ch, sh, 7, kUniverse, p.s, p.t, 0.01, &ckpt),
      core::CheckpointInterrupt);
  const auto cand =
      core::basic_intersection(ch, sh, 7, kUniverse, p.s, p.t, 0.01, &ckpt);
  EXPECT_TRUE(util::is_subset(p.expected_intersection, cand.s_candidate));
  EXPECT_EQ(ckpt.restores(), 1u);
  expect_pin(ch, {12356u, 4u, 0x20c1b15d0918bd46ull});
}

TEST(TranscriptDigest, VerificationTreeResumesToSamePin) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  sim::SharedRandomness sh(31337);
  core::VerificationTreeParams params;
  params.rounds_r = 2;
  core::Checkpoint ckpt;
  ckpt.interrupt_after("vt", 1);  // crash after the first tree stage
  EXPECT_THROW(core::verification_tree_intersection(
                   ch, sh, 7, kUniverse, p.s, p.t, params, nullptr, &ckpt),
               core::CheckpointInterrupt);
  const auto out = core::verification_tree_intersection(
      ch, sh, 7, kUniverse, p.s, p.t, params, nullptr, &ckpt);
  EXPECT_EQ(out.alice, p.expected_intersection);
  EXPECT_EQ(ckpt.restores(), 1u);
  expect_pin(ch, {10574u, 8u, 0x2555644ef1bb7fa3ull});
}

TEST(TranscriptDigest, BucketEqResumesToSamePin) {
  const util::SetPair p = reference_pair();
  sim::Channel ch(/*record_transcript=*/true);
  sim::SharedRandomness sh(31337);
  core::Checkpoint ckpt;
  // Crash inside the amortized-EQ ladder (after its second level), two
  // protocols deep: bucket_eq restores its size exchange from the nested
  // snapshot's existence, amortized_eq restores the level state.
  ckpt.interrupt_after("amortized_eq", 2);
  EXPECT_THROW(core::bucket_eq_intersection(ch, sh, 7, kUniverse, p.s, p.t, 3,
                                            nullptr, &ckpt),
               core::CheckpointInterrupt);
  const auto out = core::bucket_eq_intersection(ch, sh, 7, kUniverse, p.s, p.t,
                                                3, nullptr, &ckpt);
  EXPECT_EQ(out.alice, p.expected_intersection);
  EXPECT_GE(ckpt.restores(), 1u);
  expect_pin(ch, {4285u, 46u, 0x86c456de5495ada7ull});
}

TEST(TranscriptDigest, MultipartyCoordinator) {
  util::Rng wrng(555);
  const auto inst =
      util::random_multi_sets(wrng, std::uint64_t{1} << 20, 9, 64, 16);
  sim::Network net(9);
  sim::SharedRandomness sh(99);
  const auto res =
      multiparty::coordinator_intersection(net, sh, 1u << 20, inst.sets);
  EXPECT_EQ(res.intersection, inst.expected_intersection);
  EXPECT_EQ(net.total_bits(), 20186u);
  EXPECT_EQ(net.rounds(), 22u);
  EXPECT_EQ(net.max_player_bits(), 20186u);
}

TEST(TranscriptDigest, MultipartyTournament) {
  util::Rng wrng(555);
  const auto inst =
      util::random_multi_sets(wrng, std::uint64_t{1} << 20, 9, 64, 16);
  sim::Network net(9);
  sim::SharedRandomness sh(99);
  const auto res =
      multiparty::tournament_intersection(net, sh, 1u << 20, inst.sets);
  EXPECT_EQ(res.intersection, inst.expected_intersection);
  EXPECT_EQ(net.total_bits(), 12086u);
  EXPECT_EQ(net.rounds(), 46u);
  EXPECT_EQ(net.max_player_bits(), 4777u);
}

}  // namespace
}  // namespace setint
