// Property-based round-trip tests for the codecs: randomized
// encode -> decode across widths and edge values, complementing the
// fixed fuzz corpus in tests/fuzz/. Also pins the equivalence of the
// word-wise append fast paths with the bit-at-a-time reference, and the
// BufferPool recycling contract.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "hashing/fks.h"
#include "hashing/mask_hash.h"
#include "hashing/pairwise.h"
#include "simd/dispatch.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint::util {
namespace {

// ---------- append_bits / read_bits ----------

TEST(BitioProperty, AppendBitsRoundTripRandomWidths) {
  Rng rng(0x1B17);
  for (int trial = 0; trial < 2000; ++trial) {
    const unsigned width = static_cast<unsigned>(rng.below(65));  // 0..64
    const std::uint64_t value =
        width == 0 ? 0
        : width == 64 ? rng.next()
                      : rng.next() & ((std::uint64_t{1} << width) - 1);
    // Random preceding offset so the word boundary lands everywhere.
    const unsigned prefix = static_cast<unsigned>(rng.below(130));
    BitBuffer b;
    for (unsigned i = 0; i < prefix; ++i) b.append_bit(rng.coin());
    b.append_bits(value, width);
    ASSERT_EQ(b.size_bits(), prefix + width);
    BitReader r(b);
    for (unsigned i = 0; i < prefix; ++i) r.read_bit();
    EXPECT_EQ(r.read_bits(width), value) << "width " << width;
  }
}

TEST(BitioProperty, AppendBitsEdgeValues) {
  for (unsigned width : {1u, 2u, 31u, 32u, 33u, 63u, 64u}) {
    const std::uint64_t max =
        width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    for (std::uint64_t value : {std::uint64_t{0}, std::uint64_t{1}, max}) {
      BitBuffer b;
      b.append_bits(value, width);
      BitReader r(b);
      EXPECT_EQ(r.read_bits(width), value) << width;
      EXPECT_TRUE(r.exhausted());
    }
  }
}

// The word-wise fast path must build the exact same buffer (bits, words,
// fingerprint) as the bit-at-a-time reference.
TEST(BitioProperty, WordWiseAppendMatchesBitAtATimeReference) {
  Rng rng(0x2B17);
  for (int trial = 0; trial < 500; ++trial) {
    BitBuffer fast;
    BitBuffer reference;
    for (int op = 0; op < 20; ++op) {
      const unsigned width = static_cast<unsigned>(rng.below(65));
      const std::uint64_t value =
          width == 0 ? 0
          : width == 64 ? rng.next()
                        : rng.next() & ((std::uint64_t{1} << width) - 1);
      fast.append_bits(value, width);
      for (unsigned i = 0; i < width; ++i) {
        reference.append_bit((value >> i) & 1);
      }
    }
    ASSERT_EQ(fast, reference);
    EXPECT_EQ(fast.fingerprint(), reference.fingerprint());
    EXPECT_EQ(fast.words(), reference.words());
  }
}

TEST(BitioProperty, AppendBufferMatchesBitCopy) {
  Rng rng(0x3B17);
  for (int trial = 0; trial < 300; ++trial) {
    BitBuffer src;
    const std::size_t n = rng.below(200);
    for (std::size_t i = 0; i < n; ++i) src.append_bit(rng.coin());
    BitBuffer fast;
    BitBuffer reference;
    const std::size_t prefix = rng.below(70);
    for (std::size_t i = 0; i < prefix; ++i) {
      const bool bit = rng.coin();
      fast.append_bit(bit);
      reference.append_bit(bit);
    }
    fast.append_buffer(src);
    for (std::size_t i = 0; i < src.size_bits(); ++i) {
      reference.append_bit(src.bit(i));
    }
    ASSERT_EQ(fast, reference);
    EXPECT_EQ(fast.words(), reference.words());
  }
}

// ---------- truncate ----------

TEST(BitioProperty, TruncateNormalizesStorage) {
  Rng rng(0x4B17);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 1 + rng.below(300);
    std::vector<bool> bits(n);
    BitBuffer full;
    for (std::size_t i = 0; i < n; ++i) {
      bits[i] = rng.coin();
      full.append_bit(bits[i]);
    }
    const std::size_t cut = rng.below(n + 1);
    full.truncate(cut);
    // Reference: a buffer built at the shorter size from scratch.
    BitBuffer reference;
    for (std::size_t i = 0; i < cut; ++i) reference.append_bit(bits[i]);
    ASSERT_EQ(full, reference);
    EXPECT_EQ(full.fingerprint(), reference.fingerprint());
    EXPECT_EQ(full.words(), reference.words());
    // Appending after a truncate behaves like appending to the reference.
    full.append_bits(0x2D, 6);
    reference.append_bits(0x2D, 6);
    EXPECT_EQ(full, reference);
    EXPECT_EQ(full.words(), reference.words());
  }
}

TEST(BitioProperty, TruncatePastEndIsANoop) {
  BitBuffer b;
  b.append_bits(0b1011, 4);
  b.truncate(10);
  EXPECT_EQ(b.size_bits(), 4u);
  b.truncate(4);
  EXPECT_EQ(b.size_bits(), 4u);
}

// ---------- gamma ----------

TEST(BitioProperty, GammaRoundTripRandomAndEdges) {
  Rng rng(0x5B17);
  std::vector<std::uint64_t> values = {0, 1, 2, 3, 62, 63, 64, 65,
                                       (std::uint64_t{1} << 32) - 1,
                                       std::uint64_t{1} << 32,
                                       (std::uint64_t{1} << 63) - 1,
                                       std::uint64_t{1} << 63,
                                       ~std::uint64_t{0} - 1};
  for (int trial = 0; trial < 2000; ++trial) {
    values.push_back(rng.next() >> rng.below(64));
  }
  BitBuffer b;
  for (std::uint64_t v : values) {
    const std::size_t before = b.size_bits();
    b.append_gamma64(v);
    EXPECT_EQ(b.size_bits() - before, gamma64_cost_bits(v)) << v;
  }
  BitReader r(b);
  for (std::uint64_t v : values) {
    ASSERT_EQ(r.read_gamma64(), v);
  }
  EXPECT_TRUE(r.exhausted());
}

// ---------- Rice ----------

TEST(BitioProperty, RiceRoundTripAcrossParameters) {
  Rng rng(0x6B17);
  for (unsigned param : {0u, 1u, 5u, 13u, 31u, 47u, 63u}) {
    BitBuffer b;
    std::vector<std::uint64_t> values;
    for (int trial = 0; trial < 300; ++trial) {
      // Quotient bounded (the encoder refuses > 2^20 unary runs);
      // remainder spans the full parameter width including all-ones.
      const std::uint64_t q = rng.below(100);
      const std::uint64_t rem =
          param == 0 ? 0
                     : (trial % 3 == 0 ? (std::uint64_t{1} << param) - 1
                                       : rng.below(std::uint64_t{1} << param));
      values.push_back((q << param) | rem);
    }
    values.push_back(0);  // all-zeros codeword shape
    for (std::uint64_t v : values) {
      const std::size_t before = b.size_bits();
      b.append_rice(v, param);
      EXPECT_EQ(b.size_bits() - before, rice_cost_bits(v, param));
    }
    BitReader r(b);
    for (std::uint64_t v : values) {
      ASSERT_EQ(r.read_rice(param), v) << "param " << param;
    }
    EXPECT_TRUE(r.exhausted());
  }
}

// ---------- canonical set codecs ----------

TEST(BitioProperty, CanonicalSetRoundTripRandom) {
  Rng rng(0x7B17);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint64_t universe = 2 + (std::uint64_t{1} << rng.below(40));
    const std::size_t size = static_cast<std::size_t>(
        rng.below(std::min<std::uint64_t>(universe, 200) + 1));
    const Set s = random_set(rng, universe, size);
    {
      BitBuffer b;
      append_set(b, s);
      EXPECT_EQ(b.size_bits(), set_encoding_cost_bits(s));
      BitReader r(b);
      EXPECT_EQ(read_set(r), s);
      EXPECT_TRUE(r.exhausted());
    }
    {
      BitBuffer b;
      append_set_rice(b, s, universe);
      EXPECT_EQ(b.size_bits(), set_rice_cost_bits(s, universe));
      BitReader r(b);
      EXPECT_EQ(read_set_rice(r, universe), s);
      EXPECT_TRUE(r.exhausted());
    }
  }
}

TEST(BitioProperty, CanonicalSetEdgeShapes) {
  const std::uint64_t top = (std::uint64_t{1} << 40) - 1;
  std::vector<std::pair<Set, std::uint64_t>> shapes;
  shapes.push_back({Set{}, 16});            // empty
  shapes.push_back({Set{0}, 1});            // minimal universe
  shapes.push_back({Set{top}, top + 1});    // single max element
  shapes.push_back({Set{0, top}, top + 1});  // extremes only
  {
    Set dense;  // all-consecutive run: deltas all zero after -1 shift
    for (std::uint64_t i = 0; i < 128; ++i) dense.push_back(i);
    shapes.push_back({dense, 128});
    Set even;  // constant gap 2
    for (std::uint64_t i = 0; i < 128; ++i) even.push_back(2 * i);
    shapes.push_back({even, 256});
  }
  for (const auto& [s, universe] : shapes) {
    BitBuffer b;
    append_set(b, s);
    BitReader r(b);
    EXPECT_EQ(read_set(r), s);
    BitBuffer br;
    append_set_rice(br, s, universe);
    BitReader rr(br);
    EXPECT_EQ(read_set_rice(rr, universe), s);
  }
}

// Round-trips survive concatenation: many mixed records in one buffer,
// decoded in order — the access pattern protocol messages actually use.
TEST(BitioProperty, MixedRecordStreamRoundTrip) {
  Rng rng(0x8B17);
  for (int trial = 0; trial < 100; ++trial) {
    BitBuffer b;
    struct Record {
      int kind;
      std::uint64_t value;
      unsigned width;
      Set set;
    };
    std::vector<Record> records;
    for (int i = 0; i < 30; ++i) {
      Record rec;
      rec.kind = static_cast<int>(rng.below(4));
      switch (rec.kind) {
        case 0:
          rec.width = 1 + static_cast<unsigned>(rng.below(64));
          rec.value = rec.width == 64
                          ? rng.next()
                          : rng.next() & ((std::uint64_t{1} << rec.width) - 1);
          b.append_bits(rec.value, rec.width);
          break;
        case 1:
          rec.value = rng.next() >> rng.below(64);
          b.append_gamma64(rec.value);
          break;
        case 2:
          rec.width = static_cast<unsigned>(rng.below(20));
          rec.value = rng.below(1000) << rec.width >> rng.below(4);
          b.append_rice(rec.value, rec.width);
          break;
        default:
          rec.set = random_set(rng, 1u << 24, rng.below(40));
          append_set(b, rec.set);
          break;
      }
      records.push_back(std::move(rec));
    }
    BitReader r(b);
    for (const Record& rec : records) {
      switch (rec.kind) {
        case 0:
          ASSERT_EQ(r.read_bits(rec.width), rec.value);
          break;
        case 1:
          ASSERT_EQ(r.read_gamma64(), rec.value);
          break;
        case 2:
          ASSERT_EQ(r.read_rice(rec.width), rec.value);
          break;
        default:
          ASSERT_EQ(read_set(r), rec.set);
          break;
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

// ---------- batched hash paths ----------
//
// The array-batched entry points (hash_many) are the hot-path engine's
// public contract: same values as the scalar operator() applied element
// by element, across random seeds, array sizes (including empty), and
// inputs both inside and outside the nominal universe.

TEST(BatchedHash, PairwiseHashManyMatchesScalarLoop) {
  Rng rng(0x9A7C);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t universe = 2 + rng.below(std::uint64_t{1} << 40);
    const std::uint64_t range = 1 + rng.below(1 << 16);
    const auto h = hashing::PairwiseHash::sample(rng, universe, range);
    const std::size_t n = static_cast<std::size_t>(rng.below(257));
    std::vector<std::uint64_t> xs(n);
    for (auto& x : xs) {
      // Mostly in-universe, occasionally arbitrary 64-bit values: the
      // scalar path reduces mod p first, and the batch must match there
      // too.
      x = rng.below(8) == 0 ? rng.next() : rng.below(universe);
    }
    std::vector<std::uint64_t> batched(n);
    h.hash_many(xs, batched);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], h(xs[i])) << "trial " << trial << " i " << i;
      ASSERT_LT(batched[i], range);
    }
  }
}

TEST(BatchedHash, FksHashManyMatchesScalarLoop) {
  Rng rng(0xF457);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t universe = 2 + rng.below(std::uint64_t{1} << 44);
    const std::uint64_t max_elements = 2 + rng.below(1 << 10);
    const auto f = hashing::FksCompressor::sample(rng, universe, max_elements);
    const std::size_t n = static_cast<std::size_t>(rng.below(129));
    std::vector<std::uint64_t> xs(n);
    for (auto& x : xs) x = rng.next();
    std::vector<std::uint64_t> batched(n);
    f.hash_many(xs, batched);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], f(xs[i])) << "trial " << trial << " i " << i;
      ASSERT_LT(batched[i], f.range());
    }
  }
}

// The batched==scalar pin, re-checked per SIMD kernel tier: hash_many now
// dispatches through src/simd/ (4-wide AVX2 lanes when available), and
// every tier must reproduce the scalar operator() chain bit for bit —
// this is what keeps seeded draw order and golden transcripts unchanged.
TEST(BatchedHash, HashManyLanesMatchScalarOnEveryTier) {
  Rng rng(0x71E2);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t universe = 2 + rng.below(std::uint64_t{1} << 40);
    const std::uint64_t range = 1 + rng.below(1 << 14);
    const auto h = hashing::PairwiseHash::sample(rng, universe, range);
    const auto f = hashing::FksCompressor::sample(rng, universe,
                                                  2 + rng.below(1 << 8));
    const std::size_t n = static_cast<std::size_t>(rng.below(200));
    std::vector<std::uint64_t> xs(n);
    for (auto& x : xs) {
      x = rng.below(8) == 0 ? rng.next() : rng.below(universe);
    }
    std::vector<std::uint64_t> pairwise_batch(n), fks_batch(n);
    for (simd::Tier tier :
         {simd::Tier::kScalar, simd::Tier::kSse41, simd::Tier::kAvx2}) {
      simd::ScopedTierOverride forced(tier);
      h.hash_many(xs, pairwise_batch);
      f.hash_many(xs, fks_batch);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(pairwise_batch[i], h(xs[i]))
            << "tier " << simd::tier_name(tier) << " trial " << trial;
        ASSERT_EQ(fks_batch[i], f(xs[i]))
            << "tier " << simd::tier_name(tier) << " trial " << trial;
      }
    }
  }
}

TEST(BatchedHash, HashManyRejectsShortOutput) {
  Rng rng(0x0E0E);
  const auto h = hashing::PairwiseHash::sample(rng, 1 << 20, 1 << 10);
  const auto f = hashing::FksCompressor::sample(rng, 1 << 20, 64);
  const std::vector<std::uint64_t> xs(8, 5);
  std::vector<std::uint64_t> out(7);
  EXPECT_THROW(h.hash_many(xs, out), std::invalid_argument);
  EXPECT_THROW(f.hash_many(xs, out), std::invalid_argument);
}

// Seed round-trip composed with batching: serialize the seed, read it
// back, and require the reconstructed function to produce the identical
// batched image. This is exactly what the private-coin protocols rely on
// when one party samples and ships the hash.
TEST(BatchedHash, SeedRoundTripPreservesBatchedImage) {
  Rng rng(0x5EED);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t universe = 2 + rng.below(std::uint64_t{1} << 32);
    const std::uint64_t range = 1 + rng.below(1 << 12);
    const auto h = hashing::PairwiseHash::sample(rng, universe, range);
    BitBuffer seed;
    h.append_seed(seed);
    BitReader r(seed);
    const auto h2 = hashing::PairwiseHash::read_seed(r, range);
    std::vector<std::uint64_t> xs(64);
    for (auto& x : xs) x = rng.below(universe);
    std::vector<std::uint64_t> a(xs.size()), b(xs.size());
    h.hash_many(xs, a);
    h2.hash_many(xs, b);
    EXPECT_EQ(a, b);
  }
}

// Bit-at-a-time reference for mask_hash: one stream draw for the length
// word, then one per data word, per output bit — no single-word shortcut.
std::uint64_t mask_hash_reference(const BitBuffer& data, unsigned bits,
                                  Rng stream) {
  const auto& words = data.words();
  const std::size_t nbits = data.size_bits();
  const std::size_t full = nbits / 64;
  const unsigned tail = static_cast<unsigned>(nbits % 64);
  const std::uint64_t tail_mask =
      tail == 0 ? 0 : (std::uint64_t{1} << tail) - 1;
  std::uint64_t out = 0;
  for (unsigned b = 0; b < bits; ++b) {
    unsigned parity = std::popcount(stream.next() & nbits) & 1u;
    for (std::size_t w = 0; w < full; ++w) {
      parity ^= std::popcount(stream.next() & words[w]) & 1u;
    }
    if (tail != 0) {
      parity ^= std::popcount(stream.next() & words[full] & tail_mask) & 1u;
    }
    out |= static_cast<std::uint64_t>(parity) << b;
  }
  return out;
}

TEST(BatchedHash, MaskHashSingleWordFastPathMatchesReference) {
  Rng rng(0x3A5C);
  for (int trial = 0; trial < 400; ++trial) {
    // Lengths straddling the single-word fast-path boundary (0..130 bits).
    const std::size_t nbits = rng.below(131);
    BitBuffer data;
    for (std::size_t i = 0; i < nbits; ++i) data.append_bit(rng.coin());
    const unsigned bits = 1 + static_cast<unsigned>(rng.below(64));
    const Rng stream = Rng(0xC0FFEE).substream(trial);
    EXPECT_EQ(hashing::mask_hash(data, bits, stream),
              mask_hash_reference(data, bits, stream))
        << "nbits " << nbits << " bits " << bits;
  }
}

// ---------- BufferPool ----------

TEST(BufferPool, RecyclesReleasedStorage) {
  BufferPool pool;
  BitBuffer a = pool.acquire();
  EXPECT_TRUE(a.empty());
  a.append_bits(0x1234, 16);
  pool.release(std::move(a));
  EXPECT_EQ(pool.acquired(), 1u);
  EXPECT_EQ(pool.recycled(), 0u);
  BitBuffer b = pool.acquire();
  // Recycled buffers come back empty — contents never leak between users.
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.recycled(), 1u);
  pool.release(std::move(b));
}

TEST(BufferPool, PooledBufferLeaseReturnsOnScopeExit) {
  BufferPool pool;
  {
    PooledBuffer lease(pool);
    lease->append_bit(true);
    EXPECT_EQ(lease->size_bits(), 1u);
  }
  EXPECT_EQ(pool.acquired(), 1u);
  {
    PooledBuffer lease(pool);
    EXPECT_TRUE(lease->empty());
  }
  EXPECT_EQ(pool.recycled(), 1u);
}

}  // namespace
}  // namespace setint::util
