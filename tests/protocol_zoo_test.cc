// Cross-protocol agreement tests: every IntersectionProtocol in the zoo
// must produce the same (exact) answer on the same instance, and their
// costs must order the way the theory says.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/private_coin.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

std::vector<std::unique_ptr<core::IntersectionProtocol>> make_zoo() {
  std::vector<std::unique_ptr<core::IntersectionProtocol>> zoo;
  zoo.push_back(std::make_unique<core::DeterministicExchangeProtocol>());
  zoo.push_back(std::make_unique<core::OneRoundHashProtocol>());
  zoo.push_back(std::make_unique<core::ToyBucketProtocol>());
  zoo.push_back(std::make_unique<core::BucketEqProtocol>());
  zoo.push_back(std::make_unique<core::VerificationTreeProtocol>());
  core::VerificationTreeParams r2;
  r2.rounds_r = 2;
  zoo.push_back(std::make_unique<core::VerificationTreeProtocol>(r2));
  core::VerificationTreeParams r3;
  r3.rounds_r = 3;
  zoo.push_back(std::make_unique<core::VerificationTreeProtocol>(r3));
  zoo.push_back(std::make_unique<core::PrivateCoinProtocol>());
  return zoo;
}

struct ZooCase {
  std::size_t k;
  std::size_t shared;
};

class Zoo : public ::testing::TestWithParam<ZooCase> {};

TEST_P(Zoo, AllProtocolsAgreeOnTheExactIntersection) {
  const ZooCase c = GetParam();
  util::Rng wrng(c.k * 41 + c.shared);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 28, c.k, c.shared);
  for (const auto& proto : make_zoo()) {
    const core::RunResult r =
        proto->run(/*seed=*/c.k + 1, std::uint64_t{1} << 28, p.s, p.t);
    EXPECT_EQ(r.output.alice, p.expected_intersection) << proto->name();
    EXPECT_EQ(r.output.bob, p.expected_intersection) << proto->name();
    EXPECT_GT(r.cost.rounds, 0u) << proto->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Zoo,
                         ::testing::Values(ZooCase{4, 2}, ZooCase{64, 0},
                                           ZooCase{64, 64}, ZooCase{256, 128},
                                           ZooCase{1024, 700}));

TEST(ZooCosts, TreeBeatsDeterministicExchangeOnHugeUniverses) {
  // The headline separation: O(k log^(r) k) vs Theta(k log(n/k)).
  util::Rng wrng(1);
  const std::size_t k = 2048;
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 60, k, k / 2);
  const core::RunResult tree =
      core::VerificationTreeProtocol{}.run(2, std::uint64_t{1} << 60, p.s,
                                           p.t);
  const core::RunResult naive = core::DeterministicExchangeProtocol{}.run(
      2, std::uint64_t{1} << 60, p.s, p.t);
  EXPECT_LT(tree.cost.bits_total, naive.cost.bits_total);
}

TEST(ZooCosts, TreeBeatsOneRoundHashingAtLargeK) {
  // O(k) vs Theta(k log k): at k = 2^14 the one-round protocol pays
  // ~3 log2 k = 42 bits/element.
  util::Rng wrng(2);
  const std::size_t k = 16384;
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
  const core::RunResult tree =
      core::VerificationTreeProtocol{}.run(3, std::uint64_t{1} << 30, p.s,
                                           p.t);
  const core::RunResult one_round = core::OneRoundHashProtocol{}.run(
      3, std::uint64_t{1} << 30, p.s, p.t);
  EXPECT_LT(tree.cost.bits_total, one_round.cost.bits_total);
}

TEST(ZooCosts, MoreStagesFewerBits) {
  // The r-tradeoff: k log k (r=1) > k log log k (r=2) > ... at fixed k.
  util::Rng wrng(3);
  const std::size_t k = 8192;
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
  std::uint64_t prev = ~std::uint64_t{0};
  for (int r = 1; r <= 3; ++r) {
    core::VerificationTreeParams params;
    params.rounds_r = r;
    const core::RunResult res = core::VerificationTreeProtocol{params}.run(
        4, std::uint64_t{1} << 30, p.s, p.t);
    EXPECT_LT(res.cost.bits_total, prev) << "r=" << r;
    prev = res.cost.bits_total;
  }
}

TEST(ZooCosts, RoundsGrowWithR) {
  util::Rng wrng(4);
  const std::size_t k = 4096;
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
  for (int r = 1; r <= 5; ++r) {
    core::VerificationTreeParams params;
    params.rounds_r = r;
    const core::RunResult res = core::VerificationTreeProtocol{params}.run(
        5, std::uint64_t{1} << 30, p.s, p.t);
    EXPECT_LE(res.cost.rounds, static_cast<std::uint64_t>(6 * r)) << r;
  }
}

}  // namespace
}  // namespace setint
