// Tests for Basic-Intersection (Lemma 3.3): the three guaranteed
// properties, the Corollary 3.4 invariant, the four-round batching, and
// failure-rate calibration.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/basic_intersection.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

struct Case {
  std::size_t k;
  std::size_t shared_elements;
  std::uint64_t universe;
};

class BasicIntersectionProperty : public ::testing::TestWithParam<Case> {};

TEST_P(BasicIntersectionProperty, LemmaThreeThreeProperties) {
  const Case c = GetParam();
  util::Rng wrng(c.k * 31 + c.shared_elements);
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const util::SetPair p =
        util::random_set_pair(wrng, c.universe, c.k, c.shared_elements);
    sim::SharedRandomness shared(trial * 7 + 1);
    sim::Channel ch;
    const core::CandidatePair cand = core::basic_intersection(
        ch, shared, trial, c.universe, p.s, p.t, /*target_failure=*/0.01);

    // Property 1: candidates are subsets of the inputs.
    EXPECT_TRUE(util::is_subset(cand.s_candidate, p.s));
    EXPECT_TRUE(util::is_subset(cand.t_candidate, p.t));
    // Property 3 (first half): the true intersection always survives.
    EXPECT_TRUE(util::is_subset(p.expected_intersection, cand.s_candidate));
    EXPECT_TRUE(util::is_subset(p.expected_intersection, cand.t_candidate));
    // Property 2: disjoint inputs give disjoint candidates (prob 1).
    if (p.expected_intersection.empty()) {
      EXPECT_TRUE(util::set_intersection(cand.s_candidate, cand.t_candidate)
                      .empty());
    }
    // Corollary 3.4: equal candidates ARE the intersection.
    if (cand.s_candidate == cand.t_candidate) {
      EXPECT_EQ(cand.s_candidate, p.expected_intersection);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BasicIntersectionProperty,
    ::testing::Values(Case{1, 0, 1u << 16}, Case{1, 1, 1u << 16},
                      Case{4, 2, 1u << 16}, Case{16, 0, 1u << 20},
                      Case{16, 16, 1u << 20}, Case{64, 32, 1u << 20},
                      Case{256, 200, 1u << 28}, Case{512, 1, 1u << 28}));

TEST(BasicIntersection, ExactWithHighProbability) {
  util::Rng wrng(5);
  int exact = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 32, 16);
    sim::SharedRandomness shared(static_cast<std::uint64_t>(trial) + 1000);
    sim::Channel ch;
    const core::CandidatePair cand = core::basic_intersection(
        ch, shared, 0, 1u << 24, p.s, p.t, /*target_failure=*/0.01);
    exact += (cand.s_candidate == p.expected_intersection &&
              cand.t_candidate == p.expected_intersection);
  }
  EXPECT_GE(exact, trials - 10);  // target failure 1%, allow slack
}

TEST(BasicIntersection, LooseFailureTargetActuallyFails) {
  // Drive the hash range down with a large failure target: collisions
  // must appear, demonstrating the parameter really controls the range.
  util::Rng wrng(6);
  int inexact = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 64, 0);
    sim::SharedRandomness shared(static_cast<std::uint64_t>(trial));
    sim::Channel ch;
    const core::CandidatePair cand = core::basic_intersection(
        ch, shared, 0, 1u << 24, p.s, p.t, /*target_failure=*/0.9);
    inexact += !(cand.s_candidate.empty() && cand.t_candidate.empty());
  }
  EXPECT_GT(inexact, 10);
}

TEST(BasicIntersection, FourRoundsSingleInstance) {
  sim::SharedRandomness shared(1);
  sim::Channel ch;
  const util::Set s{1, 5, 9};
  const util::Set t{5, 9, 11};
  core::basic_intersection(ch, shared, 0, 1u << 10, s, t, 0.01);
  EXPECT_EQ(ch.cost().rounds, 4u);
}

TEST(BasicIntersection, BatchStaysFourRounds) {
  sim::SharedRandomness shared(2);
  util::Rng wrng(9);
  std::vector<util::SetPair> pairs_storage;
  std::vector<std::pair<util::SetView, util::SetView>> pairs;
  for (int i = 0; i < 50; ++i) {
    pairs_storage.push_back(util::random_set_pair(wrng, 1u << 20, 8, 4));
  }
  for (const auto& p : pairs_storage) pairs.emplace_back(p.s, p.t);
  sim::Channel ch;
  const auto cands =
      core::basic_intersection_batch(ch, shared, 0, 1u << 20, pairs, 0.01);
  EXPECT_EQ(ch.cost().rounds, 4u);
  ASSERT_EQ(cands.size(), 50u);
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_TRUE(util::is_subset(pairs_storage[i].expected_intersection,
                                cands[i].s_candidate));
  }
}

TEST(BasicIntersection, EmptySidesShortCircuit) {
  sim::SharedRandomness shared(3);
  const util::Set empty{};
  const util::Set nonempty{3, 7};
  {
    sim::Channel ch;
    const auto cand = core::basic_intersection(ch, shared, 0, 100, empty,
                                               nonempty, 0.01);
    EXPECT_TRUE(cand.s_candidate.empty());
    EXPECT_TRUE(cand.t_candidate.empty());
    // Only the size exchange flows: no hash bits for an empty instance.
    EXPECT_LT(ch.cost().bits_total, 10u);
    EXPECT_EQ(ch.cost().rounds, 4u);
  }
  {
    sim::Channel ch;
    const auto cand =
        core::basic_intersection(ch, shared, 0, 100, empty, empty, 0.01);
    EXPECT_TRUE(cand.s_candidate.empty());
    EXPECT_TRUE(cand.t_candidate.empty());
  }
}

TEST(BasicIntersection, IdenticalSetsComeBackWhole) {
  sim::SharedRandomness shared(4);
  sim::Channel ch;
  const util::Set s{2, 4, 8, 16, 32};
  const auto cand = core::basic_intersection(ch, shared, 0, 64, s, s, 0.001);
  EXPECT_EQ(cand.s_candidate, s);
  EXPECT_EQ(cand.t_candidate, s);
}

TEST(BasicIntersection, TighterFailureCostsMoreBits) {
  util::Rng wrng(11);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 64, 32);
  sim::SharedRandomness shared(5);
  sim::Channel loose;
  core::basic_intersection(loose, shared, 0, 1u << 24, p.s, p.t, 0.1);
  sim::Channel tight;
  core::basic_intersection(tight, shared, 0, 1u << 24, p.s, p.t, 1e-9);
  EXPECT_GT(tight.cost().bits_total, loose.cost().bits_total);
}

TEST(BasicIntersection, RejectsBadFailureTargets) {
  sim::SharedRandomness shared(6);
  sim::Channel ch;
  const util::Set s{1};
  EXPECT_THROW(core::basic_intersection(ch, shared, 0, 10, s, s, 0.0),
               std::invalid_argument);
  EXPECT_THROW(core::basic_intersection(ch, shared, 0, 10, s, s, 1.0),
               std::invalid_argument);
}

TEST(BasicIntersection, ValidatesInputs) {
  sim::SharedRandomness shared(7);
  sim::Channel ch;
  const util::Set bad{5, 3};
  const util::Set ok{1};
  EXPECT_THROW(core::basic_intersection(ch, shared, 0, 10, bad, ok, 0.1),
               std::invalid_argument);
  EXPECT_THROW(core::basic_intersection(ch, shared, 0, 2, ok, util::Set{2},
                                        0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace setint
