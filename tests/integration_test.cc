// End-to-end integration tests: large instances through the full stack,
// determinism of whole runs, empirical error-rate checks (the 1 - 1/poly(k)
// guarantee), and skew/adversarial workloads.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/similarity.h"
#include "core/verification_tree.h"
#include "multiparty/coordinator.h"
#include "sim/channel.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

TEST(Integration, LargeInstanceEndToEnd) {
  const std::size_t k = 32768;
  util::Rng wrng(1);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 40, k, k / 3);
  sim::SharedRandomness shared(1);
  sim::Channel ch;
  const auto out = core::verification_tree_intersection(
      ch, shared, 0, std::uint64_t{1} << 40, p.s, p.t, {});
  EXPECT_EQ(out.alice, p.expected_intersection);
  EXPECT_EQ(out.bob, p.expected_intersection);
  // O(k) bits with moderate constants; generous ceiling to stay stable.
  EXPECT_LT(ch.cost().bits_total, 64u * k);
  EXPECT_LE(ch.cost().rounds, 6u * 5u);
}

TEST(Integration, ErrorRateDropsWithK) {
  // 1 - 1/poly(k): failures at k = 16 may happen occasionally; at k = 1024
  // they should be rarer. Count inexact runs over many seeds.
  util::Rng wrng(2);
  auto failure_count = [&wrng](std::size_t k, int trials) {
    int failures = 0;
    for (int t = 0; t < trials; ++t) {
      const util::SetPair p =
          util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
      sim::SharedRandomness shared(static_cast<std::uint64_t>(t) * 31 + k);
      sim::Channel ch;
      const auto out = core::verification_tree_intersection(
          ch, shared, static_cast<std::uint64_t>(t), std::uint64_t{1} << 30,
          p.s, p.t, {});
      failures += (out.alice != p.expected_intersection ||
                   out.bob != p.expected_intersection);
    }
    return failures;
  };
  EXPECT_LE(failure_count(1024, 60), 1);
}

TEST(Integration, SkewedClusteredWorkload) {
  // Clustered keys (runs of consecutive integers) stress the bucket
  // hashing differently than uniform draws.
  util::Set s;
  util::Set t;
  for (std::uint64_t base : {100u, 5000u, 90000u}) {
    for (std::uint64_t i = 0; i < 200; ++i) {
      s.push_back(base + i);
      if (i % 2 == 0) t.push_back(base + i);
    }
  }
  for (std::uint64_t i = 0; i < 300; ++i) t.push_back(1'000'000 + i);
  std::sort(t.begin(), t.end());
  const util::Set expected = util::set_intersection(s, t);
  sim::SharedRandomness shared(3);
  sim::Channel ch;
  const auto out = core::verification_tree_intersection(
      ch, shared, 0, 1u << 21, s, t, {});
  EXPECT_EQ(out.alice, expected);
  EXPECT_EQ(out.bob, expected);
}

TEST(Integration, RepeatedRunsWithDistinctNoncesAllSucceed) {
  util::Rng wrng(4);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 26, 2048, 1024);
  sim::SharedRandomness shared(4);
  for (std::uint64_t nonce = 0; nonce < 10; ++nonce) {
    sim::Channel ch;
    const auto out = core::verification_tree_intersection(
        ch, shared, nonce, 1u << 26, p.s, p.t, {});
    EXPECT_EQ(out.alice, p.expected_intersection) << nonce;
  }
}

TEST(Integration, FullPipelineSimilarityOverMultipartyWinners) {
  // Compose subsystems: two m-party coordinator runs produce two group
  // intersections; a similarity report then compares them.
  util::Rng wrng(5);
  const auto inst_a = util::random_multi_sets(wrng, 1u << 22, 6, 64, 32);
  const auto inst_b = util::random_multi_sets(wrng, 1u << 22, 6, 64, 32);
  sim::SharedRandomness shared(5);

  sim::Network net_a(6);
  const auto res_a =
      multiparty::coordinator_intersection(net_a, shared, 1u << 22,
                                           inst_a.sets);
  sim::Network net_b(6);
  const auto res_b =
      multiparty::coordinator_intersection(net_b, shared, 1u << 22,
                                           inst_b.sets);
  ASSERT_EQ(res_a.intersection, inst_a.expected_intersection);
  ASSERT_EQ(res_b.intersection, inst_b.expected_intersection);

  sim::Channel ch;
  const auto rep = apps::similarity_report(ch, shared, 9, 1u << 22,
                                           res_a.intersection,
                                           res_b.intersection);
  const auto truth = util::set_intersection(inst_a.expected_intersection,
                                            inst_b.expected_intersection);
  EXPECT_EQ(rep.intersection, truth);
}

TEST(Integration, WholeRunsAreReproducibleBitForBit) {
  util::Rng wrng(6);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 1024, 512);
  auto digest_of_run = [&p]() {
    sim::SharedRandomness shared(42);
    sim::Channel ch(/*record_transcript=*/true);
    core::verification_tree_intersection(ch, shared, 7, 1u << 24, p.s, p.t,
                                         {});
    return ch.transcript()->digest();
  };
  EXPECT_EQ(digest_of_run(), digest_of_run());
}

TEST(Integration, CommunicationFlatAcrossIntersectionSizes) {
  // The paper's motivation: unlike disjointness-style tricks, the cost
  // must not blow up when |S cap T| is large. Compare alpha = 0 vs 1.
  util::Rng wrng(7);
  const std::size_t k = 4096;
  std::uint64_t bits_disjoint = 0;
  std::uint64_t bits_identical = 0;
  {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, k, 0);
    sim::SharedRandomness shared(8);
    sim::Channel ch;
    core::verification_tree_intersection(ch, shared, 0,
                                         std::uint64_t{1} << 30, p.s, p.t,
                                         {});
    bits_disjoint = ch.cost().bits_total;
  }
  {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k);
    sim::SharedRandomness shared(9);
    sim::Channel ch;
    core::verification_tree_intersection(ch, shared, 0,
                                         std::uint64_t{1} << 30, p.s, p.t,
                                         {});
    bits_identical = ch.cost().bits_total;
  }
  const double ratio = static_cast<double>(bits_disjoint) /
                       static_cast<double>(bits_identical);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

}  // namespace
}  // namespace setint
