// Unit + property tests for the utility substrate: bit I/O, gamma codes,
// iterated logarithms, RNG substreams, set operations and workload
// generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/arena.h"
#include "util/bitio.h"
#include "util/flat_buckets.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- BitBuffer / BitReader ----------

TEST(BitBuffer, StartsEmpty) {
  util::BitBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size_bits(), 0u);
}

TEST(BitBuffer, AppendBitRoundtrip) {
  util::BitBuffer b;
  const std::vector<bool> pattern = {true, false, false, true, true, false};
  for (bool v : pattern) b.append_bit(v);
  ASSERT_EQ(b.size_bits(), pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    EXPECT_EQ(b.bit(i), pattern[i]) << "bit " << i;
  }
}

TEST(BitBuffer, AppendBitsRoundtripAcrossWordBoundaries) {
  util::BitBuffer b;
  b.append_bits(0x1234'5678'9abc'def0ull, 64);
  b.append_bits(0x5, 3);
  b.append_bits(0xffff'ffff'ffff'ffffull, 64);
  util::BitReader r(b);
  EXPECT_EQ(r.read_bits(64), 0x1234'5678'9abc'def0ull);
  EXPECT_EQ(r.read_bits(3), 0x5u);
  EXPECT_EQ(r.read_bits(64), 0xffff'ffff'ffff'ffffull);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitBuffer, AppendBitsRejectsOverwideValue) {
  util::BitBuffer b;
  EXPECT_THROW(b.append_bits(0x10, 4), std::invalid_argument);
  EXPECT_THROW(b.append_bits(0, 65), std::invalid_argument);
}

TEST(BitBuffer, ZeroWidthAppendIsNoop) {
  util::BitBuffer b;
  b.append_bits(0, 0);
  EXPECT_EQ(b.size_bits(), 0u);
}

TEST(BitBuffer, AppendBufferConcatenates) {
  util::BitBuffer a;
  a.append_bits(0b101, 3);
  util::BitBuffer b;
  b.append_bits(0b0110, 4);
  a.append_buffer(b);
  ASSERT_EQ(a.size_bits(), 7u);
  util::BitReader r(a);
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(4), 0b0110u);
}

TEST(BitBuffer, EqualityAndFingerprint) {
  util::BitBuffer a;
  util::BitBuffer b;
  a.append_bits(0xabcd, 16);
  b.append_bits(0xabcd, 16);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.append_bit(false);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(BitBuffer, FingerprintDistinguishesLengthOfZeroRuns) {
  // A buffer of j zero bits must not collide with j+1 zero bits.
  util::BitBuffer a;
  util::BitBuffer b;
  a.append_bits(0, 5);
  b.append_bits(0, 6);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(BitReader, ReadPastEndThrows) {
  util::BitBuffer b;
  b.append_bit(true);
  util::BitReader r(b);
  r.read_bit();
  EXPECT_THROW(r.read_bit(), std::out_of_range);
}

TEST(BitBuffer, ToStringRendersInOrder) {
  util::BitBuffer b;
  b.append_bit(true);
  b.append_bit(false);
  b.append_bit(true);
  EXPECT_EQ(b.to_string(), "101");
}

TEST(EliasGamma, KnownCodewords) {
  // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011".
  util::BitBuffer b;
  b.append_elias_gamma(1);
  EXPECT_EQ(b.to_string(), "1");
  b.clear();
  b.append_elias_gamma(2);
  EXPECT_EQ(b.to_string(), "010");
  b.clear();
  b.append_elias_gamma(3);
  EXPECT_EQ(b.to_string(), "011");
}

TEST(EliasGamma, RejectsZero) {
  util::BitBuffer b;
  EXPECT_THROW(b.append_elias_gamma(0), std::invalid_argument);
}

class GammaRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GammaRoundtrip, EncodesAndDecodes) {
  util::BitBuffer b;
  b.append_gamma64(GetParam());
  util::BitReader r(b);
  EXPECT_EQ(r.read_gamma64(), GetParam());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(b.size_bits(), util::gamma64_cost_bits(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, GammaRoundtrip,
                         ::testing::Values(0ull, 1ull, 2ull, 3ull, 7ull, 8ull,
                                           63ull, 64ull, 1023ull, 1024ull,
                                           (1ull << 31) - 1, 1ull << 31,
                                           (1ull << 62) - 1,
                                           0xffff'ffff'ffff'fffeull));

TEST(EliasGamma, SequenceRoundtripRandom) {
  util::Rng rng(123);
  std::vector<std::uint64_t> values;
  util::BitBuffer b;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next() >> rng.below(60);
    values.push_back(v);
    b.append_gamma64(v);
  }
  util::BitReader r(b);
  for (std::uint64_t v : values) EXPECT_EQ(r.read_gamma64(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(Rice, KnownCodewords) {
  // b = 2: v = 5 -> quotient 1, remainder 01 -> "10" + "01"(LSB-first).
  util::BitBuffer b;
  b.append_rice(0, 0);
  EXPECT_EQ(b.to_string(), "0");  // quotient 0 in unary, no remainder
  b.clear();
  b.append_rice(3, 0);
  EXPECT_EQ(b.to_string(), "1110");
  b.clear();
  b.append_rice(5, 2);
  EXPECT_EQ(b.size_bits(), util::rice_cost_bits(5, 2));
}

class RiceRoundtrip
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(RiceRoundtrip, EncodesAndDecodes) {
  const auto [v, b] = GetParam();
  util::BitBuffer buf;
  buf.append_rice(v, b);
  EXPECT_EQ(buf.size_bits(), util::rice_cost_bits(v, b));
  util::BitReader r(buf);
  EXPECT_EQ(r.read_rice(b), v);
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RiceRoundtrip,
    ::testing::Values(std::pair<std::uint64_t, unsigned>{0, 0},
                      std::pair<std::uint64_t, unsigned>{0, 10},
                      std::pair<std::uint64_t, unsigned>{1, 0},
                      std::pair<std::uint64_t, unsigned>{1023, 10},
                      std::pair<std::uint64_t, unsigned>{1024, 10},
                      std::pair<std::uint64_t, unsigned>{123456, 12},
                      std::pair<std::uint64_t, unsigned>{(1ull << 40) - 1,
                                                         38}));

TEST(Rice, GuardsAgainstMisSizedParameter) {
  util::BitBuffer b;
  EXPECT_THROW(b.append_rice(1ull << 40, 2), std::invalid_argument);
  EXPECT_THROW(b.append_rice(0, 64), std::invalid_argument);
}

TEST(SetRice, RoundtripsAcrossShapes) {
  util::Rng rng(77);
  for (std::uint64_t universe :
       {std::uint64_t{64}, std::uint64_t{1} << 20, std::uint64_t{1} << 40}) {
    for (std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{50},
                             std::size_t{63}}) {
      const util::Set s = util::random_set(rng, universe, size);
      util::BitBuffer b;
      util::append_set_rice(b, s, universe);
      EXPECT_EQ(b.size_bits(), util::set_rice_cost_bits(s, universe));
      util::BitReader r(b);
      EXPECT_EQ(util::read_set_rice(r, universe), s);
    }
  }
}

TEST(SetRice, NearInformationTheoreticOptimum) {
  // For a uniform k-subset of [n], the entropy is ~k log2(n/k) + 1.44 k;
  // Rice coding should land within ~2 bits/element of that.
  util::Rng rng(78);
  const std::uint64_t universe = std::uint64_t{1} << 30;
  const std::size_t k = 1024;
  const util::Set s = util::random_set(rng, universe, k);
  const double per_element =
      static_cast<double>(util::set_rice_cost_bits(s, universe)) /
      static_cast<double>(k);
  const double entropy_rate =
      std::log2(static_cast<double>(universe) / static_cast<double>(k)) +
      1.44;
  EXPECT_LT(per_element, entropy_rate + 2.0);
  EXPECT_GT(per_element, entropy_rate - 1.0);
}

TEST(SetRice, BeatsGammaOnSpreadOutSets) {
  util::Rng rng(79);
  const std::uint64_t universe = std::uint64_t{1} << 36;
  const util::Set s = util::random_set(rng, universe, 512);
  EXPECT_LT(util::set_rice_cost_bits(s, universe),
            util::set_encoding_cost_bits(s) * 2 / 3);
}

TEST(SetRice, WorstCaseClusteredSetStaysBounded) {
  // All elements consecutive at the top of the universe: the first gap is
  // huge but its Rice quotient is bounded by the set size.
  const std::uint64_t universe = std::uint64_t{1} << 40;
  util::Set s;
  for (std::uint64_t i = 0; i < 256; ++i) {
    s.push_back(universe - 256 + i);
  }
  util::BitBuffer b;
  util::append_set_rice(b, s, universe);
  util::BitReader r(b);
  EXPECT_EQ(util::read_set_rice(r, universe), s);
  // ~size * (b + 2) + first-gap quotient (<= size) bits.
  EXPECT_LT(b.size_bits(), 256u * 40u);
}

// ---------- iterated logarithms ----------

TEST(IteratedLog, BaseCases) {
  EXPECT_DOUBLE_EQ(util::iterated_log(0, 1024.0), 1024.0);
  EXPECT_DOUBLE_EQ(util::iterated_log(1, 1024.0), 10.0);
  EXPECT_NEAR(util::iterated_log(2, 1024.0), std::log2(10.0), 1e-12);
}

TEST(IteratedLog, ClampsAtOne) {
  EXPECT_DOUBLE_EQ(util::iterated_log(10, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(util::iterated_log(3, 2.0), 1.0);
}

TEST(IteratedLog, RejectsBadArguments) {
  EXPECT_THROW(util::iterated_log(-1, 4.0), std::invalid_argument);
  EXPECT_THROW(util::iterated_log(1, 0.0), std::invalid_argument);
}

TEST(LogStar, KnownValues) {
  EXPECT_EQ(util::log_star(1.0), 0);
  EXPECT_EQ(util::log_star(2.0), 1);
  EXPECT_EQ(util::log_star(4.0), 2);
  EXPECT_EQ(util::log_star(16.0), 3);
  EXPECT_EQ(util::log_star(65536.0), 4);
}

TEST(LogStar, MatchesIteratedLogDefinition) {
  for (double k : {2.0, 5.0, 100.0, 4096.0, 1e9, 1e18}) {
    const int r = util::log_star(k);
    EXPECT_LE(util::iterated_log(r, k), 1.0 + 1e-12) << k;
    if (r > 0) EXPECT_GT(util::iterated_log(r - 1, k), 1.0) << k;
  }
}

TEST(IteratedLogCeil, ClampsToOne) {
  EXPECT_EQ(util::iterated_log_ceil(5, 16), 1u);
  EXPECT_EQ(util::iterated_log_ceil(0, 16), 16u);
  EXPECT_EQ(util::iterated_log_ceil(1, 1000), 10u);
}

TEST(FloorCeilLog2, Values) {
  EXPECT_EQ(util::floor_log2(1), 0u);
  EXPECT_EQ(util::floor_log2(2), 1u);
  EXPECT_EQ(util::floor_log2(3), 1u);
  EXPECT_EQ(util::floor_log2(1ull << 63), 63u);
  EXPECT_EQ(util::ceil_log2(1), 0u);
  EXPECT_EQ(util::ceil_log2(2), 1u);
  EXPECT_EQ(util::ceil_log2(3), 2u);
  EXPECT_EQ(util::ceil_log2(4), 2u);
  EXPECT_EQ(util::ceil_log2(5), 3u);
  EXPECT_THROW(util::floor_log2(0), std::invalid_argument);
}

// ---------- RNG ----------

TEST(Rng, DeterministicForSeed) {
  util::Rng a(99);
  util::Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, SubstreamsAreIndependentOfParentState) {
  util::Rng parent(7);
  util::Rng s1 = parent.substream("label", 1);
  parent.next();  // advancing the parent must not change derived streams
  util::Rng s2 = parent.substream("label", 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(s1.next(), s2.next());
}

TEST(Rng, SubstreamLabelsSeparate) {
  util::Rng parent(7);
  util::Rng s1 = parent.substream("a", 0);
  util::Rng s2 = parent.substream("b", 0);
  util::Rng s3 = parent.substream("a", 1);
  EXPECT_NE(s1.next(), s2.next());
  util::Rng s1b = parent.substream("a", 0);
  EXPECT_NE(s1b.next(), s3.next());
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  util::Rng rng(3);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 100);
  }
}

TEST(Rng, BelowZeroThrows) {
  util::Rng rng(3);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, UnitInHalfOpenInterval) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---------- set utilities ----------

TEST(SetUtil, CanonicalDetection) {
  EXPECT_TRUE(util::is_canonical_set(util::Set{}));
  EXPECT_TRUE(util::is_canonical_set(util::Set{1, 2, 5}));
  EXPECT_FALSE(util::is_canonical_set(util::Set{1, 1, 5}));
  EXPECT_FALSE(util::is_canonical_set(util::Set{5, 2}));
}

TEST(SetUtil, ValidateSetEnforcesUniverse) {
  EXPECT_NO_THROW(util::validate_set(util::Set{0, 9}, 10));
  EXPECT_THROW(util::validate_set(util::Set{0, 10}, 10),
               std::invalid_argument);
  EXPECT_THROW(util::validate_set(util::Set{3, 3}, 10), std::invalid_argument);
}

TEST(SetUtil, BasicOperations) {
  const util::Set a{1, 3, 5, 7};
  const util::Set b{3, 4, 5, 8};
  EXPECT_EQ(util::set_intersection(a, b), (util::Set{3, 5}));
  EXPECT_EQ(util::set_union(a, b), (util::Set{1, 3, 4, 5, 7, 8}));
  EXPECT_EQ(util::set_difference(a, b), (util::Set{1, 7}));
  EXPECT_EQ(util::set_symmetric_difference(a, b), (util::Set{1, 4, 7, 8}));
  EXPECT_TRUE(util::set_contains(a, 5));
  EXPECT_FALSE(util::set_contains(a, 4));
  EXPECT_TRUE(util::is_subset(util::Set{3, 5}, a));
  EXPECT_FALSE(util::is_subset(util::Set{3, 6}, a));
}

TEST(SetUtil, EncodingRoundtripsAndCostMatches) {
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const util::Set s = util::random_set(rng, 1u << 20, rng.below(200));
    util::BitBuffer b;
    util::append_set(b, s);
    EXPECT_EQ(b.size_bits(), util::set_encoding_cost_bits(s));
    util::BitReader r(b);
    EXPECT_EQ(util::read_set(r), s);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(SetUtil, EncodingHandlesAdjacentAndZero) {
  const util::Set s{0, 1, 2, 3};
  util::BitBuffer b;
  util::append_set(b, s);
  util::BitReader r(b);
  EXPECT_EQ(util::read_set(r), s);
}

TEST(SetUtil, RandomSetProperties) {
  util::Rng rng(17);
  const util::Set s = util::random_set(rng, 1000, 100);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_TRUE(util::is_canonical_set(s));
  EXPECT_LT(s.back(), 1000u);
  EXPECT_THROW(util::random_set(rng, 5, 6), std::invalid_argument);
}

TEST(SetUtil, RandomSetFullUniverse) {
  util::Rng rng(17);
  const util::Set s = util::random_set(rng, 16, 16);
  ASSERT_EQ(s.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(s[i], i);
}

struct PairCase {
  std::size_t k;
  std::size_t shared;
};

class RandomPair : public ::testing::TestWithParam<PairCase> {};

TEST_P(RandomPair, HasExactOverlap) {
  util::Rng rng(23 + GetParam().k);
  const util::SetPair p =
      util::random_set_pair(rng, 1u << 22, GetParam().k, GetParam().shared);
  EXPECT_EQ(p.s.size(), GetParam().k);
  EXPECT_EQ(p.t.size(), GetParam().k);
  EXPECT_TRUE(util::is_canonical_set(p.s));
  EXPECT_TRUE(util::is_canonical_set(p.t));
  EXPECT_EQ(util::set_intersection(p.s, p.t).size(), GetParam().shared);
  EXPECT_EQ(p.expected_intersection, util::set_intersection(p.s, p.t));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomPair,
    ::testing::Values(PairCase{1, 0}, PairCase{1, 1}, PairCase{8, 0},
                      PairCase{8, 8}, PairCase{64, 1}, PairCase{64, 32},
                      PairCase{256, 255}, PairCase{1024, 512}));

TEST(RandomMultiSets, PlantsExactIntersection) {
  util::Rng rng(31);
  for (std::size_t players : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{8}}) {
    const util::MultiSetInstance inst =
        util::random_multi_sets(rng, 1u << 16, players, 64, 16);
    ASSERT_EQ(inst.sets.size(), players);
    util::Set inter = inst.sets[0];
    for (std::size_t p = 1; p < players; ++p) {
      inter = util::set_intersection(inter, inst.sets[p]);
    }
    EXPECT_EQ(inter, inst.expected_intersection);
    if (players > 1) EXPECT_EQ(inst.expected_intersection.size(), 16u);
    for (const util::Set& s : inst.sets) {
      EXPECT_EQ(s.size(), 64u);
      EXPECT_TRUE(util::is_canonical_set(s));
    }
  }
}

// ---------- ScratchArena ----------

TEST(ScratchArena, AllocatesDisjointSpansAndTracksUsage) {
  util::ScratchArena arena;
  util::ScratchArena::Frame frame(arena);
  auto a = arena.alloc_u64(100);
  auto b = arena.alloc_u64(50);
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 50u);
  std::fill(a.begin(), a.end(), 0xAAu);
  std::fill(b.begin(), b.end(), 0xBBu);
  // Writes through one span never land in the other.
  EXPECT_TRUE(std::all_of(a.begin(), a.end(),
                          [](std::uint64_t w) { return w == 0xAAu; }));
  EXPECT_EQ(arena.words_in_use(), 150u);
  EXPECT_GE(arena.high_water_words(), 150u);
  EXPECT_EQ(arena.allocations(), 2u);
}

TEST(ScratchArena, ZeroedAllocationIsZeroEvenWhenRecycled) {
  util::ScratchArena arena;
  {
    util::ScratchArena::Frame frame(arena);
    auto dirty = arena.alloc_u64(256);
    std::fill(dirty.begin(), dirty.end(), ~std::uint64_t{0});
  }
  util::ScratchArena::Frame frame(arena);
  auto z = arena.alloc_u64_zeroed(256);
  EXPECT_TRUE(std::all_of(z.begin(), z.end(),
                          [](std::uint64_t w) { return w == 0; }));
}

TEST(ScratchArena, FrameRewindReusesStorageWithoutGrowingHighWater) {
  util::ScratchArena arena;
  const std::uint64_t* first_round_ptr = nullptr;
  {
    util::ScratchArena::Frame frame(arena);
    first_round_ptr = arena.alloc_u64(512).data();
  }
  EXPECT_EQ(arena.words_in_use(), 0u);
  const std::size_t high_water = arena.high_water_words();
  for (int round = 0; round < 10; ++round) {
    util::ScratchArena::Frame frame(arena);
    auto span = arena.alloc_u64(512);
    // Same block, same offset: round-over-round reuse, no fresh heap.
    EXPECT_EQ(span.data(), first_round_ptr);
  }
  EXPECT_EQ(arena.high_water_words(), high_water);
  EXPECT_EQ(arena.allocations(), 11u);
}

TEST(ScratchArena, NestedFramesRewindToTheirOwnMarks) {
  util::ScratchArena arena;
  util::ScratchArena::Frame outer(arena);
  auto outer_span = arena.alloc_u64(64);
  std::fill(outer_span.begin(), outer_span.end(), 7u);
  {
    util::ScratchArena::Frame inner(arena);
    auto inner_span = arena.alloc_u64(4096);  // forces block growth
    std::fill(inner_span.begin(), inner_span.end(), 9u);
    EXPECT_EQ(arena.words_in_use(), 64u + 4096u);
  }
  // Inner frame rewound its own allocation; the outer span is untouched.
  EXPECT_EQ(arena.words_in_use(), 64u);
  EXPECT_TRUE(std::all_of(outer_span.begin(), outer_span.end(),
                          [](std::uint64_t w) { return w == 7u; }));
}

// ---------- FlatBuckets ----------

// Reference: the vector-of-vector push_back loop the CSR tables replaced.
std::vector<std::vector<std::uint64_t>> reference_buckets(
    std::span<const std::uint64_t> keys, std::span<const std::uint64_t> vals,
    std::size_t num_buckets) {
  std::vector<std::vector<std::uint64_t>> out(num_buckets);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out[keys[i]].push_back(vals[i]);
  }
  return out;
}

TEST(FlatBuckets, MatchesVectorOfVectorReferenceIncludingOrder) {
  util::Rng rng(0xB0C4);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 1 + rng.below(40);
    const std::size_t n = rng.below(300);
    std::vector<std::uint64_t> keys(n), vals(n), idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = rng.below(k);
      vals[i] = rng.next();
      idx[i] = i;
    }
    util::ScratchArena arena;
    util::ScratchArena::Frame frame(arena);
    const auto by_index = util::build_flat_buckets(keys, k, arena);
    const auto by_value = util::build_flat_buckets_values(keys, vals, k, arena);
    const auto ref_idx = reference_buckets(keys, idx, k);
    const auto ref_val = reference_buckets(keys, vals, k);
    ASSERT_EQ(by_index.num_buckets(), k);
    ASSERT_EQ(by_index.size(), n);
    for (std::size_t b = 0; b < k; ++b) {
      const auto bi = by_index.bucket(b);
      const auto bv = by_value.bucket(b);
      // Stability: exact per-bucket order of the push_back loop.
      ASSERT_TRUE(std::equal(bi.begin(), bi.end(), ref_idx[b].begin(),
                             ref_idx[b].end()))
          << "trial " << trial << " bucket " << b;
      ASSERT_TRUE(std::equal(bv.begin(), bv.end(), ref_val[b].begin(),
                             ref_val[b].end()))
          << "trial " << trial << " bucket " << b;
      ASSERT_EQ(by_index.bucket_size(b), ref_idx[b].size());
    }
  }
}

TEST(FlatBuckets, HandlesEmptyInputAndEmptyBuckets) {
  util::ScratchArena arena;
  util::ScratchArena::Frame frame(arena);
  const auto empty = util::build_flat_buckets({}, 8, arena);
  EXPECT_EQ(empty.num_buckets(), 8u);
  EXPECT_EQ(empty.size(), 0u);
  for (std::size_t b = 0; b < 8; ++b) EXPECT_EQ(empty.bucket_size(b), 0u);

  // All keys land in one bucket; the other buckets are empty subspans.
  const std::vector<std::uint64_t> keys(5, 3);
  const auto one = util::build_flat_buckets(keys, 8, arena);
  EXPECT_EQ(one.bucket_size(3), 5u);
  EXPECT_EQ(one.bucket(3)[0], 0u);
  EXPECT_EQ(one.bucket(3)[4], 4u);
  for (std::size_t b = 0; b < 8; ++b) {
    if (b != 3) EXPECT_EQ(one.bucket_size(b), 0u);
  }
}

TEST(FlatBuckets, OccupancyBitmapTracksNonEmptyBuckets) {
  util::Rng rng(0x0CC0);
  for (int trial = 0; trial < 60; ++trial) {
    // Bucket counts straddling the 64-bit word boundary, plus sparse and
    // dense fills.
    const std::size_t k = 1 + rng.below(200);
    const std::size_t n = rng.below(3 * k);
    std::vector<std::uint64_t> keys(n);
    for (auto& key : keys) key = rng.below(k);
    util::ScratchArena arena;
    util::ScratchArena::Frame frame(arena);
    const auto fb = util::build_flat_buckets(keys, k, arena);
    ASSERT_EQ(fb.occupancy.size(), (k + 63) / 64);
    std::uint64_t expected_occupied = 0;
    for (std::size_t b = 0; b < k; ++b) {
      ASSERT_EQ(fb.occupied(b), fb.bucket_size(b) != 0)
          << "trial " << trial << " bucket " << b;
      if (fb.bucket_size(b) != 0) ++expected_occupied;
    }
    // Trailing bits beyond num_buckets must be zero — the SIMD bitmap AND
    // kernels count whole words.
    std::uint64_t popcount_total = 0;
    for (const std::uint64_t w : fb.occupancy) {
      popcount_total += static_cast<std::uint64_t>(std::popcount(w));
    }
    ASSERT_EQ(popcount_total, expected_occupied) << "trial " << trial;
  }
}

}  // namespace
}  // namespace setint
