// Tests for the EQ^k -> INT_k reduction (Fact 2.1).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "reductions/eqk_to_int.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint {
namespace {

util::BitBuffer str(std::uint64_t v, unsigned bits = 64) {
  util::BitBuffer b;
  b.append_bits(v, bits);
  return b;
}

TEST(EqkReduction, AllEqualAllUnequal) {
  sim::SharedRandomness shared(1);
  {
    sim::Channel ch;
    std::vector<util::BitBuffer> xs;
    std::vector<util::BitBuffer> ys;
    for (std::uint64_t i = 0; i < 64; ++i) {
      xs.push_back(str(i));
      ys.push_back(str(i));
    }
    const auto got = reductions::eqk_via_intersection(ch, shared, 0, xs, ys);
    for (bool g : got) EXPECT_TRUE(g);
  }
  {
    sim::Channel ch;
    std::vector<util::BitBuffer> xs;
    std::vector<util::BitBuffer> ys;
    for (std::uint64_t i = 0; i < 64; ++i) {
      xs.push_back(str(i));
      ys.push_back(str(i + 1000));
    }
    const auto got = reductions::eqk_via_intersection(ch, shared, 1, xs, ys);
    for (bool g : got) EXPECT_FALSE(g);
  }
}

class EqkPattern : public ::testing::TestWithParam<int> {};

TEST_P(EqkPattern, MixedPatterns) {
  const int mod = GetParam();
  sim::SharedRandomness shared(static_cast<std::uint64_t>(mod) + 5);
  sim::Channel ch;
  std::vector<util::BitBuffer> xs;
  std::vector<util::BitBuffer> ys;
  std::vector<bool> truth;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const bool eq = (i % static_cast<std::uint64_t>(mod)) == 0;
    xs.push_back(str(i * 3 + 1));
    ys.push_back(str(eq ? i * 3 + 1 : i * 3 + 2));
    truth.push_back(eq);
  }
  const auto got = reductions::eqk_via_intersection(ch, shared, 9, xs, ys);
  ASSERT_EQ(got.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i]) {
      EXPECT_TRUE(got[i]) << i;  // one-sided: equal never missed
    } else {
      EXPECT_FALSE(got[i]) << i;  // false accepts ~2^-hash_bits: negligible
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Mods, EqkPattern, ::testing::Values(2, 3, 7, 50));

TEST(EqkReduction, EqualInstancesAlwaysReportedEqual) {
  // One-sidedness across seeds.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::SharedRandomness shared(seed);
    sim::Channel ch;
    std::vector<util::BitBuffer> xs;
    std::vector<util::BitBuffer> ys;
    for (std::uint64_t i = 0; i < 32; ++i) {
      xs.push_back(str(i ^ seed));
      ys.push_back(str(i % 2 == 0 ? (i ^ seed) : ~(i ^ seed)));
    }
    const auto got = reductions::eqk_via_intersection(ch, shared, seed, xs, ys);
    for (std::uint64_t i = 0; i < 32; i += 2) EXPECT_TRUE(got[i]) << seed;
  }
}

TEST(EqkReduction, CommunicationIsOrderK) {
  // The reduction's point: k equality instances cost O(k log^(r) k) bits
  // total — a handful of bits per instance, not per input bit.
  sim::SharedRandomness shared(3);
  sim::Channel ch;
  std::vector<util::BitBuffer> xs;
  std::vector<util::BitBuffer> ys;
  const std::size_t k = 2048;
  for (std::uint64_t i = 0; i < k; ++i) {
    xs.push_back(str(i));
    ys.push_back(str(i % 2 == 0 ? i : i + 5000));
  }
  const auto got = reductions::eqk_via_intersection(ch, shared, 0, xs, ys);
  (void)got;
  const double per_instance =
      static_cast<double>(ch.cost().bits_total) / static_cast<double>(k);
  EXPECT_LT(per_instance, 64.0);  // far below the 64 bits of input each
}

TEST(EqkReduction, LongStringsCostNoMore) {
  // Cost must not scale with the string length n (here: 64 vs 4096 bits).
  sim::SharedRandomness shared(4);
  const std::size_t k = 256;
  auto run = [&](unsigned nbits) {
    sim::Channel ch;
    std::vector<util::BitBuffer> xs;
    std::vector<util::BitBuffer> ys;
    for (std::uint64_t i = 0; i < k; ++i) {
      util::BitBuffer x;
      util::BitBuffer y;
      for (unsigned w = 0; w < nbits; w += 64) {
        x.append_bits(i * 31 + w, 64);
        y.append_bits(i % 3 == 0 ? i * 31 + w : i * 31 + w + 1, 64);
      }
      xs.push_back(std::move(x));
      ys.push_back(std::move(y));
    }
    reductions::eqk_via_intersection(ch, shared, nbits, xs, ys);
    return ch.cost().bits_total;
  };
  const std::uint64_t short_cost = run(64);
  const std::uint64_t long_cost = run(4096);
  EXPECT_LT(long_cost, short_cost * 2);
}

TEST(EqkReduction, EmptyAndMismatched) {
  sim::SharedRandomness shared(5);
  sim::Channel ch;
  EXPECT_TRUE(reductions::eqk_via_intersection(ch, shared, 0, {}, {}).empty());
  std::vector<util::BitBuffer> one(1, str(1));
  std::vector<util::BitBuffer> two(2, str(1));
  EXPECT_THROW(reductions::eqk_via_intersection(ch, shared, 0, one, two),
               std::invalid_argument);
}

TEST(EqkReduction, SingleInstance) {
  sim::SharedRandomness shared(6);
  {
    sim::Channel ch;
    std::vector<util::BitBuffer> xs{str(99)};
    std::vector<util::BitBuffer> ys{str(99)};
    EXPECT_TRUE(reductions::eqk_via_intersection(ch, shared, 0, xs, ys)[0]);
  }
  {
    sim::Channel ch;
    std::vector<util::BitBuffer> xs{str(99)};
    std::vector<util::BitBuffer> ys{str(100)};
    EXPECT_FALSE(reductions::eqk_via_intersection(ch, shared, 1, xs, ys)[0]);
  }
}

}  // namespace
}  // namespace setint
