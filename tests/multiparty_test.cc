// Tests for the multi-party protocols (Corollaries 4.1 and 4.2):
// correctness across m sweeps (including recursion over coordinator
// levels), the verified two-party wrapper, and per-player cost shapes.
#include <gtest/gtest.h>

#include <cstdint>

#include "multiparty/coordinator.h"
#include "multiparty/tournament.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- verified two-party wrapper ----------

TEST(VerifiedTwoParty, ExactAcrossManyRuns) {
  util::Rng wrng(1);
  sim::SharedRandomness shared(1);
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 64, 32);
    const auto vr = multiparty::verified_two_party_intersection(
        shared, trial, 1u << 24, p.s, p.t, {}, 64);
    EXPECT_EQ(vr.intersection, p.expected_intersection) << trial;
    EXPECT_GE(vr.repetitions, 1u);
    EXPECT_LE(vr.repetitions, 3u);  // expected O(1)
  }
}

TEST(VerifiedTwoParty, SurvivesSabotagedInnerProtocol) {
  // Cripple the inner equality tests; the certificate + re-runs (and in
  // the worst case the deterministic backstop) must still deliver the
  // exact intersection.
  core::VerificationTreeParams hostile;
  hostile.rounds_r = 2;
  hostile.eq_bits_scale = 1e-9;
  hostile.bi_range_scale = 1e-6;
  util::Rng wrng(2);
  sim::SharedRandomness shared(2);
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 22, 32, 16);
    const auto vr = multiparty::verified_two_party_intersection(
        shared, trial, 1u << 22, p.s, p.t, hostile, 32);
    EXPECT_EQ(vr.intersection, p.expected_intersection) << trial;
  }
}

// ---------- coordinator protocol (Corollary 4.1) ----------

struct MpCase {
  std::size_t players;
  std::size_t k;
  std::size_t shared;
};

class Coordinator : public ::testing::TestWithParam<MpCase> {};

TEST_P(Coordinator, ComputesExactMWayIntersection) {
  const MpCase c = GetParam();
  util::Rng wrng(c.players * 131 + c.k);
  const util::MultiSetInstance inst = util::random_multi_sets(
      wrng, std::uint64_t{1} << 26, c.players, c.k, c.shared);
  sim::Network net(c.players);
  sim::SharedRandomness shared(c.players + 7);
  const auto result =
      multiparty::coordinator_intersection(net, shared, std::uint64_t{1} << 26,
                                           inst.sets);
  EXPECT_EQ(result.intersection, inst.expected_intersection);
  if (c.players > 1) {
    EXPECT_GT(net.total_bits(), 0u);
    EXPECT_GT(net.rounds(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Coordinator,
    ::testing::Values(MpCase{1, 16, 4}, MpCase{2, 16, 4}, MpCase{3, 16, 0},
                      MpCase{5, 16, 16}, MpCase{8, 8, 4},
                      // m > 2k forces recursion over coordinator levels
                      MpCase{40, 8, 4}, MpCase{100, 4, 2},
                      MpCase{64, 32, 16}));

TEST(Coordinator, RecursionLevelsMatchGroupMath) {
  // 100 players, k = 4 -> groups of 8: 100 -> 13 -> 2 -> 1: three levels.
  util::Rng wrng(3);
  const util::MultiSetInstance inst =
      util::random_multi_sets(wrng, 1u << 20, 100, 4, 2);
  sim::Network net(100);
  sim::SharedRandomness shared(3);
  const auto result =
      multiparty::coordinator_intersection(net, shared, 1u << 20, inst.sets);
  EXPECT_EQ(result.levels, 3u);
  EXPECT_EQ(result.intersection, inst.expected_intersection);
}

TEST(Coordinator, AveragePerPlayerBitsStaysFlatAsMGrows) {
  // Corollary 4.1's headline: average communication per player is
  // O(k log^(r) k), independent of m.
  util::Rng wrng(4);
  const std::size_t k = 16;
  double avg_small = 0;
  double avg_large = 0;
  {
    const auto inst = util::random_multi_sets(wrng, 1u << 24, 8, k, 8);
    sim::Network net(8);
    sim::SharedRandomness shared(4);
    multiparty::coordinator_intersection(net, shared, 1u << 24, inst.sets);
    avg_small = net.average_player_bits();
  }
  {
    const auto inst = util::random_multi_sets(wrng, 1u << 24, 256, k, 8);
    sim::Network net(256);
    sim::SharedRandomness shared(5);
    multiparty::coordinator_intersection(net, shared, 1u << 24, inst.sets);
    avg_large = net.average_player_bits();
  }
  EXPECT_LT(avg_large, avg_small * 3.0);
}

TEST(Coordinator, CoordinatorCarriesTheWorstCaseLoad) {
  // In a single group the coordinator touches ~2k conversations while a
  // member touches one: max-player bits should far exceed the average.
  util::Rng wrng(5);
  const auto inst = util::random_multi_sets(wrng, 1u << 24, 32, 16, 8);
  sim::Network net(32);
  sim::SharedRandomness shared(6);
  multiparty::coordinator_intersection(net, shared, 1u << 24, inst.sets);
  EXPECT_GT(static_cast<double>(net.max_player_bits()),
            3.0 * net.average_player_bits());
}

TEST(Coordinator, RejectsMismatchedPlayerCount) {
  sim::Network net(3);
  sim::SharedRandomness shared(7);
  std::vector<util::Set> two_sets{util::Set{1}, util::Set{2}};
  EXPECT_THROW(
      multiparty::coordinator_intersection(net, shared, 100, two_sets),
      std::invalid_argument);
}

TEST(Coordinator, DisjointPlayersYieldEmptyIntersection) {
  // Sets with pairwise-empty overlap.
  std::vector<util::Set> sets{util::Set{1, 2}, util::Set{3, 4},
                              util::Set{5, 6}};
  sim::Network net(3);
  sim::SharedRandomness shared(8);
  const auto result =
      multiparty::coordinator_intersection(net, shared, 100, sets);
  EXPECT_TRUE(result.intersection.empty());
}

TEST(Coordinator, AllPlayersIdentical) {
  const util::Set s{2, 4, 6, 8};
  std::vector<util::Set> sets(6, s);
  sim::Network net(6);
  sim::SharedRandomness shared(9);
  const auto result =
      multiparty::coordinator_intersection(net, shared, 100, sets);
  EXPECT_EQ(result.intersection, s);
}

TEST(Coordinator, BroadcastDeliversResultToEveryPlayer) {
  util::Rng wrng(14);
  const auto inst = util::random_multi_sets(wrng, 1u << 22, 12, 16, 8);
  multiparty::MultipartyParams params;
  params.broadcast_result = true;
  sim::Network net(12);
  sim::SharedRandomness shared(14);
  const auto result = multiparty::coordinator_intersection(
      net, shared, 1u << 22, inst.sets, params);
  EXPECT_EQ(result.intersection, inst.expected_intersection);
  EXPECT_GT(result.broadcast_bits, 0u);
  // Every player touched at least the broadcast message.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_GT(net.player(i).bits_touched(), 0u) << i;
  }
  // Without broadcast, the same run bills fewer total bits.
  sim::Network plain_net(12);
  const auto plain = multiparty::coordinator_intersection(
      plain_net, shared, 1u << 22, inst.sets, {});
  EXPECT_EQ(plain.broadcast_bits, 0u);
  EXPECT_EQ(net.total_bits(), plain_net.total_bits() + result.broadcast_bits);
}

// ---------- tournament protocol (Corollary 4.2) ----------

class Tournament : public ::testing::TestWithParam<MpCase> {};

TEST_P(Tournament, ComputesExactMWayIntersection) {
  const MpCase c = GetParam();
  util::Rng wrng(c.players * 37 + c.k);
  const util::MultiSetInstance inst = util::random_multi_sets(
      wrng, std::uint64_t{1} << 26, c.players, c.k, c.shared);
  sim::Network net(c.players);
  sim::SharedRandomness shared(c.players + 11);
  const auto result = multiparty::tournament_intersection(
      net, shared, std::uint64_t{1} << 26, inst.sets);
  EXPECT_EQ(result.intersection, inst.expected_intersection);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Tournament,
    ::testing::Values(MpCase{1, 16, 4}, MpCase{2, 16, 4}, MpCase{3, 16, 0},
                      MpCase{7, 16, 16}, MpCase{8, 8, 4}, MpCase{40, 8, 4},
                      MpCase{100, 4, 2}, MpCase{64, 32, 16}));

TEST(Tournament, SpreadsLoadMoreEvenlyThanCoordinator) {
  // Corollary 4.2's point: the worst-case player cost drops relative to
  // the coordinator protocol (which concentrates 2k conversations on one
  // player).
  util::Rng wrng(10);
  const auto inst = util::random_multi_sets(wrng, 1u << 24, 64, 32, 16);
  sim::SharedRandomness shared(12);
  sim::Network coord_net(64);
  multiparty::coordinator_intersection(coord_net, shared, 1u << 24,
                                       inst.sets);
  sim::Network tour_net(64);
  multiparty::tournament_intersection(tour_net, shared, 1u << 24, inst.sets);
  EXPECT_LT(tour_net.max_player_bits(), coord_net.max_player_bits());
}

TEST(Tournament, UsesMoreRoundsThanCoordinator) {
  // The price of the balanced load: O(r * depth) rounds per level.
  util::Rng wrng(11);
  const auto inst = util::random_multi_sets(wrng, 1u << 24, 32, 16, 8);
  sim::SharedRandomness shared(13);
  sim::Network coord_net(32);
  multiparty::coordinator_intersection(coord_net, shared, 1u << 24,
                                       inst.sets);
  sim::Network tour_net(32);
  multiparty::tournament_intersection(tour_net, shared, 1u << 24, inst.sets);
  EXPECT_GT(tour_net.rounds(), coord_net.rounds());
}

TEST(MultipartyFuzz, RandomTopologiesBothProtocols) {
  // ~40 random (m, k, overlap) topologies through both multi-party
  // protocols, with and without broadcast, all checked against local
  // ground truth.
  util::Rng meta(0xF00);
  for (int instance = 0; instance < 40; ++instance) {
    const std::size_t m = 1 + meta.below(24);
    const std::size_t k = 2 + meta.below(24);
    const std::size_t shared_count = meta.below(k + 1);
    util::Rng wrng(meta.next());
    const auto inst =
        util::random_multi_sets(wrng, 1u << 22, m, k, shared_count);
    sim::SharedRandomness shared(meta.next());

    multiparty::MultipartyParams params;
    params.broadcast_result = (instance % 2 == 0);
    sim::Network coord_net(m);
    const auto coord = multiparty::coordinator_intersection(
        coord_net, shared, 1u << 22, inst.sets, params);
    ASSERT_EQ(coord.intersection, inst.expected_intersection)
        << "coordinator m=" << m << " k=" << k;

    sim::Network tour_net(m);
    const auto tour = multiparty::tournament_intersection(
        tour_net, shared, 1u << 22, inst.sets);
    ASSERT_EQ(tour.intersection, inst.expected_intersection)
        << "tournament m=" << m << " k=" << k;
  }
}

TEST(Tournament, OddPlayerCountsCarryByes) {
  util::Rng wrng(12);
  for (std::size_t players : {3u, 5u, 9u, 17u}) {
    const auto inst =
        util::random_multi_sets(wrng, 1u << 20, players, 8, 4);
    sim::Network net(players);
    sim::SharedRandomness shared(players);
    const auto result =
        multiparty::tournament_intersection(net, shared, 1u << 20, inst.sets);
    EXPECT_EQ(result.intersection, inst.expected_intersection) << players;
  }
}

}  // namespace
}  // namespace setint
