// Tests for the observability layer: span nesting and cost attribution on
// the tracer, histogram bucketing edge cases, the JSON builder/exporters
// (golden outputs), and the end-to-end invariant that a traced
// verification-tree run attributes every bit of CostStats::bits_total to
// a phase.
#include <gtest/gtest.h>

#include <sstream>

#include "core/verification_tree.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

util::BitBuffer bits_of(std::uint64_t v, unsigned w) {
  util::BitBuffer b;
  b.append_bits(v, w);
  return b;
}

// ---------- Json builder ----------

TEST(Json, GoldenCompactDump) {
  obs::Json doc = obs::Json::object();
  doc["name"] = "run";
  doc["count"] = std::uint64_t{42};
  doc["negative"] = -3;
  doc["ratio"] = 0.5;
  doc["flag"] = true;
  doc["nothing"];  // null
  obs::Json& arr = doc["items"] = obs::Json::array();
  arr.push_back(std::uint64_t{1});
  arr.push_back("two\n\"quoted\"");
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"run\",\"count\":42,\"negative\":-3,\"ratio\":0.5,"
            "\"flag\":true,\"nothing\":null,"
            "\"items\":[1,\"two\\n\\\"quoted\\\"\"]}");
}

TEST(Json, GoldenPrettyDump) {
  obs::Json doc = obs::Json::object();
  doc["a"] = std::uint64_t{1};
  obs::Json& inner = doc["b"] = obs::Json::object();
  inner["c"] = "x";
  EXPECT_EQ(doc.dump(2),
            "{\n  \"a\": 1,\n  \"b\": {\n    \"c\": \"x\"\n  }\n}\n");
}

TEST(Json, ObjectKeysKeepInsertionOrder) {
  obs::Json doc = obs::Json::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  doc["zebra"] = 3;  // update in place, order unchanged
  EXPECT_EQ(doc.dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(Json, FromCellTypesNumbers) {
  EXPECT_EQ(obs::Json::from_cell("123").dump(), "123");
  EXPECT_EQ(obs::Json::from_cell("1.50").dump(), "1.5");
  EXPECT_EQ(obs::Json::from_cell("-2.5").dump(), "-2.5");
  EXPECT_EQ(obs::Json::from_cell("12 (r=4)").dump(), "\"12 (r=4)\"");
  EXPECT_EQ(obs::Json::from_cell("yes").dump(), "\"yes\"");
  EXPECT_EQ(obs::Json::from_cell("").dump(), "\"\"");
}

TEST(Json, DoublesRoundTripShortest) {
  EXPECT_EQ(obs::Json(0.1).dump(), "0.1");
  EXPECT_EQ(obs::Json(1.0).dump(), "1");
  EXPECT_EQ(obs::Json(1e300).dump(), "1e+300");
}

// ---------- Histogram ----------

TEST(Histogram, BucketOfEdgeCases) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4);
  // Power-of-two boundaries land in the bucket they open.
  for (int p = 0; p < 64; ++p) {
    EXPECT_EQ(obs::Histogram::bucket_of(std::uint64_t{1} << p), p + 1);
  }
  EXPECT_EQ(obs::Histogram::bucket_of((std::uint64_t{1} << 20) - 1), 20);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 64);
}

TEST(Histogram, ObserveTracksStats) {
  obs::Histogram h;
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not UINT64_MAX
  h.observe(0);
  h.observe(1);
  h.observe(16);
  h.observe(17);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 34u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 17u);
  EXPECT_DOUBLE_EQ(h.mean(), 8.5);
  EXPECT_EQ(h.bucket_count(0), 1u);  // the 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // the 1
  EXPECT_EQ(h.bucket_count(5), 2u);  // 16 and 17 in [16, 32)
}

TEST(MetricsRegistry, ExportsSortedAndTyped) {
  obs::MetricsRegistry reg;
  reg.counter("z.late").add(2);
  reg.counter("a.early").add(1);
  reg.histogram("m.sizes").observe(5);
  const std::string json = reg.ToJson().dump();
  // Lexicographic order regardless of registration order.
  EXPECT_LT(json.find("a.early"), json.find("z.late"));
  EXPECT_NE(json.find("\"m.sizes\""), std::string::npos);
}

TEST(HistogramMerge, ExactlyEqualsObservingBothStreams) {
  util::Rng rng(0x4157);
  obs::Histogram a;
  obs::Histogram b;
  obs::Histogram both;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next() >> rng.below(64);
    ((i % 3 == 0) ? a : b).observe(v);
    both.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (int bucket = 0; bucket < obs::Histogram::kBuckets; ++bucket) {
    EXPECT_EQ(a.bucket_count(bucket), both.bucket_count(bucket)) << bucket;
  }
}

TEST(HistogramMerge, EmptyOperandsPreserveMinMax) {
  obs::Histogram empty;
  obs::Histogram h;
  h.observe(7);
  h.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
  obs::Histogram target;
  target.merge(h);  // merging INTO an empty histogram copies it
  EXPECT_EQ(target.count(), 1u);
  EXPECT_EQ(target.min(), 7u);
  EXPECT_EQ(target.max(), 7u);
}

TEST(MetricsRegistryMerge, FoldIsOrderIndependentAndExact) {
  // Three per-session registries with overlapping and disjoint names —
  // the batch engine's post-barrier fold. Any fold order must serialize
  // identically to one registry fed every stream.
  auto fill = [](obs::MetricsRegistry& reg, std::uint64_t session) {
    reg.counter("shared.runs").add(session + 1);
    reg.counter("only." + std::to_string(session)).add(7);
    reg.histogram("shared.sizes").observe(session * 10);
  };
  obs::MetricsRegistry combined;
  obs::MetricsRegistry reversed;
  obs::MetricsRegistry reference;
  std::vector<obs::MetricsRegistry> sessions(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    fill(sessions[i], i);
    fill(reference, i);
  }
  for (std::uint64_t i = 0; i < 3; ++i) combined.merge(sessions[i]);
  for (std::uint64_t i = 3; i-- > 0;) reversed.merge(sessions[i]);
  EXPECT_EQ(combined.ToJson().dump(2), reference.ToJson().dump(2));
  EXPECT_EQ(reversed.ToJson().dump(2), reference.ToJson().dump(2));
  EXPECT_EQ(combined.counters().at("shared.runs").value(), 6u);
}

// ---------- Tracer ----------

TEST(Tracer, AttributesSelfCostToInnermostSpan) {
  obs::Tracer tracer;
  sim::Channel ch;
  ch.set_tracer(&tracer);
  {
    obs::Span outer(&tracer, "outer");
    ch.send(sim::PartyId::kAlice, bits_of(0, 10));
    {
      obs::Span inner(&tracer, "inner");
      ch.send(sim::PartyId::kBob, bits_of(0, 4));
    }
    ch.send(sim::PartyId::kBob, bits_of(0, 1));
  }
  const obs::PhaseNode* outer = tracer.root().child("outer");
  ASSERT_NE(outer, nullptr);
  const obs::PhaseNode* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->self_bits, 11u);
  EXPECT_EQ(inner->self_bits, 4u);
  EXPECT_EQ(outer->total_bits(), 15u);
  EXPECT_EQ(tracer.total_bits(), 15u);
  EXPECT_EQ(outer->total_messages(), 3u);
  EXPECT_EQ(outer->total_rounds(), 2u);  // A | B B
}

TEST(Tracer, ChildTotalsSumToParentWhenAllTrafficIsNested) {
  obs::Tracer tracer;
  sim::Channel ch;
  ch.set_tracer(&tracer);
  {
    obs::Span root_span(&tracer, "protocol");
    {
      obs::Span a(&tracer, "phase_a");
      ch.send(sim::PartyId::kAlice, bits_of(0, 8));
    }
    {
      obs::Span b(&tracer, "phase_b");
      ch.send(sim::PartyId::kBob, bits_of(0, 24));
    }
  }
  const obs::PhaseNode* protocol = tracer.root().child("protocol");
  ASSERT_NE(protocol, nullptr);
  EXPECT_EQ(protocol->self_bits, 0u);
  EXPECT_EQ(protocol->child("phase_a")->total_bits() +
                protocol->child("phase_b")->total_bits(),
            protocol->total_bits());
}

TEST(Tracer, ReenteringLabelMergesIntoOneNode) {
  obs::Tracer tracer;
  sim::Channel ch;
  ch.set_tracer(&tracer);
  for (int i = 0; i < 3; ++i) {
    obs::Span s(&tracer, "repeated");
    ch.send(sim::PartyId::kAlice, bits_of(0, 2));
  }
  const obs::PhaseNode* node = tracer.root().child("repeated");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->enters, 3u);
  EXPECT_EQ(node->self_bits, 6u);
  EXPECT_EQ(tracer.root().children.size(), 1u);
}

TEST(Tracer, NullTracerSpansAreNoOps) {
  obs::Span s(nullptr, "nothing");
  s.end();
  obs::count(nullptr, "ctr");
  obs::observe(nullptr, "hist", 7);  // must not crash
}

TEST(Tracer, SpanEndIsIdempotent) {
  obs::Tracer tracer;
  obs::Span s(&tracer, "phase");
  s.end();
  s.end();  // second end is a no-op, not a double pop
  EXPECT_EQ(tracer.depth(), 0);
}

TEST(Tracer, BreakdownRowsCoverTreePreOrderWithRootFirst) {
  obs::Tracer tracer;
  sim::Channel ch;
  ch.set_tracer(&tracer);
  {
    obs::Span outer(&tracer, "outer");
    {
      obs::Span inner(&tracer, "inner");
      ch.send(sim::PartyId::kAlice, bits_of(0, 3));
    }
  }
  const std::vector<obs::PhaseRow> rows = tracer.breakdown();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].path, "");  // synthetic total row
  EXPECT_EQ(rows[0].depth, -1);
  EXPECT_EQ(rows[0].bits, 3u);
  EXPECT_EQ(rows[1].path, "outer");
  EXPECT_EQ(rows[2].path, "outer/inner");
  EXPECT_EQ(rows[2].depth, 1);
  EXPECT_EQ(rows[2].self_bits, 3u);
}

TEST(Tracer, UnbalancedPopThrows) {
  obs::Tracer tracer;
  EXPECT_THROW(tracer.pop(), std::logic_error);
}

// ---------- End-to-end attribution ----------

TEST(TracedVerificationTree, PerLevelBitsSumToCostStatsTotal) {
  const std::uint64_t universe = std::uint64_t{1} << 32;
  for (std::size_t k : {256u, 2048u}) {
    for (int r = 2; r <= 4; ++r) {
      util::Rng wrng(k);
      const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
      core::VerificationTreeParams params;
      params.rounds_r = r;
      obs::Tracer tracer;
      sim::SharedRandomness shared(k + static_cast<std::uint64_t>(r));
      sim::Channel ch;
      ch.set_tracer(&tracer);
      core::verification_tree_intersection(ch, shared, 1, universe, p.s, p.t,
                                           params);
      // Every transmitted bit is attributed: the tracer's clock, the
      // protocol span's total, and the per-level totals all equal the
      // channel meter.
      EXPECT_EQ(tracer.total_bits(), ch.cost().bits_total);
      const obs::PhaseNode* tree = tracer.root().child("verification_tree");
      ASSERT_NE(tree, nullptr);
      EXPECT_EQ(tree->total_bits(), ch.cost().bits_total);
      EXPECT_EQ(tree->total_messages(), ch.cost().messages);
      EXPECT_EQ(tree->total_rounds(), ch.cost().rounds);
      std::uint64_t level_bits = tree->self_bits;
      for (const auto& child : tree->children) {
        level_bits += child->total_bits();
      }
      EXPECT_EQ(level_bits, ch.cost().bits_total)
          << "k=" << k << " r=" << r;
    }
  }
}

TEST(TracedVerificationTree, PublishesProofSideMetrics) {
  const std::uint64_t universe = std::uint64_t{1} << 30;
  const std::size_t k = 1024;
  util::Rng wrng(3);
  const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
  obs::Tracer tracer;
  sim::SharedRandomness shared(3);
  sim::Channel ch;
  ch.set_tracer(&tracer);
  core::verification_tree_intersection(ch, shared, 3, universe, p.s, p.t, {});
  const auto& metrics = tracer.metrics();
  EXPECT_GT(metrics.histograms().at("vt.bucket_size").count(), 0u);
  EXPECT_GT(metrics.counters().at("bi.batches").value(), 0u);
  EXPECT_GT(metrics.histograms().at("vt.leaf_reruns").count(), 0u);
}

TEST(Facade, RunReportCarriesPhasesAndMetrics) {
  util::Set a, b;
  for (std::uint64_t i = 0; i < 300; ++i) a.push_back(3 * i + 1);
  for (std::uint64_t i = 0; i < 300; ++i) b.push_back(6 * i + 1);
  obs::Tracer tracer;
  IntersectOptions options;
  options.tracer = &tracer;
  const IntersectResult result = intersect(a, b, options);
  EXPECT_EQ(result.report.cost.bits_total, result.bits);
  ASSERT_FALSE(result.report.phases.empty());
  EXPECT_EQ(result.report.phases[0].bits, result.bits);
  EXPECT_FALSE(result.report.metrics.is_null());
  const obs::Json doc = result.report.ToJson();
  EXPECT_NE(doc.find("cost"), nullptr);
  EXPECT_NE(doc.find("phases"), nullptr);
  EXPECT_NE(doc.find("metrics"), nullptr);
}

// ---------- Exporters ----------

TEST(Export, MetricsJsonlGolden) {
  obs::MetricsRegistry reg;
  reg.counter("runs").add(2);
  reg.histogram("sizes").observe(0);
  reg.histogram("sizes").observe(5);
  std::ostringstream os;
  obs::write_metrics_jsonl(reg, os);
  EXPECT_EQ(os.str(),
            "{\"metric\":\"runs\",\"type\":\"counter\",\"value\":2}\n"
            "{\"metric\":\"sizes\",\"type\":\"histogram\",\"count\":2,"
            "\"sum\":5,\"min\":0,\"max\":5,\"mean\":2.5,"
            "\"buckets\":[{\"lt\":1,\"count\":1},{\"lt\":8,\"count\":1}]}\n");
}

TEST(Export, ChromeTraceFromTranscript) {
  sim::Transcript t;
  t.record(sim::PartyId::kAlice, bits_of(0, 10), "offer");
  t.record(sim::PartyId::kBob, bits_of(0, 6), "reply");
  std::ostringstream os;
  obs::write_chrome_trace(t, os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"offer\""), std::string::npos);
  EXPECT_NE(trace.find("\"reply\""), std::string::npos);
  EXPECT_NE(trace.find("round 2"), std::string::npos);
  // Second message starts at the 10-bit offset of the first.
  EXPECT_NE(trace.find("\"ts\": 10"), std::string::npos);
}

TEST(Export, ChromeTraceFromTracerRequiresEventRecording) {
  obs::Tracer silent;
  std::ostringstream os;
  EXPECT_THROW(obs::write_chrome_trace(silent, os), std::logic_error);

  obs::Tracer recording(/*record_events=*/true);
  sim::Channel ch;
  ch.set_tracer(&recording);
  {
    obs::Span s(&recording, "phase");
    ch.send(sim::PartyId::kAlice, bits_of(0, 5), "msg");
  }
  std::ostringstream os2;
  obs::write_chrome_trace(recording, os2);
  const std::string trace = os2.str();
  EXPECT_NE(trace.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(trace.find("\"phase\""), std::string::npos);
  EXPECT_NE(trace.find("\"msg\""), std::string::npos);
}

TEST(Export, IdenticalRunsExportIdenticalJson) {
  auto run_once = []() {
    const std::uint64_t universe = std::uint64_t{1} << 28;
    util::Rng wrng(11);
    const util::SetPair p = util::random_set_pair(wrng, universe, 512, 256);
    obs::Tracer tracer;
    sim::SharedRandomness shared(11);
    sim::Channel ch;
    ch.set_tracer(&tracer);
    core::verification_tree_intersection(ch, shared, 11, universe, p.s, p.t,
                                         {});
    return obs::make_run_report(ch.cost(), tracer).ToJson().dump(2);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace setint
