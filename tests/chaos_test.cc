// Chaos layer: crash/restart, partitions, bursty links, and the session
// recovery built on core::Checkpoint (docs/ROBUSTNESS.md § crash faults).
//
// Invariants pinned here:
//  * ChaosSpec / FaultSpec probabilities are validated at construction —
//    std::invalid_argument outside [0, 1], bad links, bad windows.
//  * Every chaos decision is a deterministic function of (protocol seed,
//    chaos seed): identical sessions produce identical costs, restarts,
//    and answers.
//  * Transient crashes and healed partitions recover to the EXACT
//    intersection; a player that never returns degrades honestly (flagged
//    superset, never an unflagged wrong answer).
//  * Checkpointed recovery replays fewer bits than full-session retry
//    under the same crash schedule.
//  * Facade incident dumps carry the replay context block tools/replay
//    rebuilds sessions from.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "multiparty/coordinator.h"
#include "obs/recorder.h"
#include "setint.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

constexpr std::uint64_t kUniverse = std::uint64_t{1} << 18;

util::SetPair make_pair(std::uint64_t seed) {
  util::Rng rng(seed);
  return util::random_set_pair(rng, kUniverse, 64, 16);
}

// ------------------------------------------------------------------
// Construction-time validation (satellite: fail fast on bad specs).

TEST(ChaosValidation, CrashProbabilityOutOfRange) {
  sim::ChaosSpec spec;
  spec.crash.crash_prob = 1.5;
  EXPECT_THROW(sim::ChaosPlan{spec}, std::invalid_argument);
  spec.crash.crash_prob = -0.1;
  EXPECT_THROW(sim::ChaosPlan{spec}, std::invalid_argument);
}

TEST(ChaosValidation, OverrideValidatedToo) {
  sim::ChaosSpec spec;
  sim::CrashSchedule bad;
  bad.crash_prob = 2.0;
  spec.crash_overrides.emplace_back(1, bad);
  EXPECT_THROW(sim::ChaosPlan{spec}, std::invalid_argument);

  sim::ChaosSpec out_of_range;
  out_of_range.crash_overrides.emplace_back(5, sim::CrashSchedule{});
  EXPECT_THROW(sim::ChaosPlan{out_of_range}, std::invalid_argument);
}

TEST(ChaosValidation, BurstProbabilitiesOutOfRange) {
  const auto bad = [](auto set_field) {
    sim::ChaosSpec spec;
    set_field(spec.burst);
    EXPECT_THROW(sim::ChaosPlan{spec}, std::invalid_argument);
  };
  bad([](sim::GilbertElliott& b) { b.p_good_to_bad = 1.01; });
  bad([](sim::GilbertElliott& b) { b.p_bad_to_good = -0.5; });
  bad([](sim::GilbertElliott& b) { b.loss_good = 7.0; });
  bad([](sim::GilbertElliott& b) { b.loss_bad = -1.0; });
  bad([](sim::GilbertElliott& b) { b.flip_good = 1.5; });
  bad([](sim::GilbertElliott& b) { b.flip_bad = 2.0; });
}

TEST(ChaosValidation, PartitionWindowsValidated) {
  sim::ChaosSpec backwards;
  sim::PartitionWindow w;
  w.start_tick = 10;
  w.end_tick = 5;
  backwards.partitions.push_back(w);
  EXPECT_THROW(sim::ChaosPlan{backwards}, std::invalid_argument);

  sim::ChaosSpec self_link;
  w = {};
  w.a = 1;
  w.b = 1;
  w.end_tick = 4;
  self_link.partitions.push_back(w);
  EXPECT_THROW(sim::ChaosPlan{self_link}, std::invalid_argument);
}

TEST(ChaosValidation, PlayersAndLinkFaults) {
  sim::ChaosSpec spec;
  spec.players = 1;
  EXPECT_THROW(sim::ChaosPlan{spec}, std::invalid_argument);

  sim::ChaosPlan plan{sim::ChaosSpec{}};
  sim::FaultSpec bad;
  bad.flip_per_bit = 3.0;  // FaultPlan's own validation
  EXPECT_THROW(plan.set_link_faults(0, 1, bad), std::invalid_argument);
  EXPECT_THROW(plan.set_link_faults(0, 7, sim::FaultSpec{}),
               std::invalid_argument);
}

TEST(ChaosValidation, FaultSpecOutOfRange) {
  sim::FaultSpec spec;
  spec.drop_prob = 1.2;
  EXPECT_THROW(sim::FaultPlan{spec}, std::invalid_argument);
}

// ------------------------------------------------------------------
// Determinism: chaos is a pure function of (protocol seed, chaos seed).

IntersectResult run_with_chaos(const sim::ChaosSpec& spec, bool checkpoint,
                               std::uint64_t session_seed) {
  const util::SetPair p = make_pair(9001);
  sim::ChaosPlan plan(spec, session_seed);
  IntersectOptions options;
  options.universe = kUniverse;
  options.seed = session_seed;
  options.chaos_plan = &plan;
  options.checkpoint = checkpoint;
  return intersect(p.s, p.t, options);
}

TEST(Chaos, DeterministicAcrossRuns) {
  sim::ChaosSpec spec;
  spec.crash.crash_prob = 0.03;
  spec.crash.restart_ticks = 5;
  spec.burst.p_good_to_bad = 0.02;
  spec.burst.p_bad_to_good = 0.25;
  spec.burst.flip_bad = 5e-4;

  const IntersectResult a = run_with_chaos(spec, true, 777);
  const IntersectResult b = run_with_chaos(spec, true, 777);
  EXPECT_EQ(a.intersection, b.intersection);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.bits_replayed, b.bits_replayed);
  EXPECT_EQ(a.verified, b.verified);

  // A different protocol seed draws a different chaos stream (same spec).
  const IntersectResult c = run_with_chaos(spec, true, 778);
  EXPECT_TRUE(c.verified || c.degraded);
}

// ------------------------------------------------------------------
// Recovery semantics.

TEST(Chaos, TransientCrashesRecoverExactly) {
  const util::SetPair p = make_pair(31);
  sim::ChaosSpec spec;
  spec.crash.crash_prob = 0.05;
  spec.crash.restart_ticks = 6;

  std::uint64_t restarts = 0;
  for (std::uint64_t t = 0; t < 8; ++t) {
    sim::ChaosPlan plan(spec, util::mix64(0xCAFE, t));
    IntersectOptions options;
    options.universe = kUniverse;
    options.seed = util::mix64(0xCAFE, t);
    options.chaos_plan = &plan;
    const IntersectResult r = intersect(p.s, p.t, options);
    ASSERT_TRUE(r.verified || r.degraded);
    if (r.verified) {
      EXPECT_EQ(r.intersection, p.expected_intersection);
    }
    // Degraded answers must still be flagged supersets.
    EXPECT_TRUE(util::is_subset(p.expected_intersection, r.intersection));
    restarts += r.restarts;
  }
  // At 5% crash-per-send SOME run must have waited out a crash.
  EXPECT_GT(restarts, 0u);
}

TEST(Chaos, PartitionHealsAndSessionResumes) {
  const util::SetPair p = make_pair(44);
  sim::ChaosSpec spec;
  sim::PartitionWindow w;
  w.a = sim::kAllLinks;
  w.start_tick = 6;
  w.end_tick = 18;
  spec.partitions.push_back(w);

  sim::ChaosPlan plan(spec, 123);
  IntersectOptions options;
  options.universe = kUniverse;
  options.seed = 123;
  options.chaos_plan = &plan;
  const IntersectResult r = intersect(p.s, p.t, options);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.intersection, p.expected_intersection);
  EXPECT_GE(r.restarts, 1u);
  EXPECT_GT(plan.stats().partition_blocks, 0u);
}

TEST(Chaos, DeadPeerDegradesHonestly) {
  const util::SetPair p = make_pair(55);
  sim::ChaosSpec spec;
  sim::CrashSchedule dead;
  dead.crash_prob = 1.0;
  dead.max_crashes = 0;  // never comes back
  spec.crash_overrides.emplace_back(1, dead);

  sim::ChaosPlan plan(spec, 321);
  IntersectOptions options;
  options.universe = kUniverse;
  options.seed = 321;
  options.chaos_plan = &plan;
  const IntersectResult r = intersect(p.s, p.t, options);
  EXPECT_FALSE(r.verified);
  EXPECT_TRUE(r.degraded);
  // Input fallback: an honest superset even though the peer vanished.
  EXPECT_TRUE(util::is_subset(p.expected_intersection, r.intersection));
  EXPECT_GT(plan.stats().permanent_losses, 0u);
}

TEST(Chaos, CheckpointedRecoveryReplaysFewerBits) {
  sim::ChaosSpec spec;
  spec.crash.crash_prob = 0.05;
  spec.crash.restart_ticks = 6;

  std::uint64_t with_ckpt = 0;
  std::uint64_t without_ckpt = 0;
  for (std::uint64_t t = 0; t < 10; ++t) {
    // Same session seed on both arms => identical crash schedules; the
    // only difference is what recovery replays.
    const std::uint64_t seed = util::mix64(0xD00D, t);
    with_ckpt += run_with_chaos(spec, true, seed).bits_replayed;
    without_ckpt += run_with_chaos(spec, false, seed).bits_replayed;
  }
  EXPECT_LT(with_ckpt, without_ckpt);
}

TEST(Chaos, BurstyLinkDamagesFramesButSessionSurvives) {
  const util::SetPair p = make_pair(66);
  sim::ChaosSpec spec;
  spec.burst.p_good_to_bad = 0.05;
  spec.burst.p_bad_to_good = 0.3;
  spec.burst.loss_bad = 0.4;
  spec.burst.flip_bad = 1e-3;

  sim::ChaosPlan plan(spec, 555);
  ASSERT_TRUE(plan.corrupts_links());
  IntersectOptions options;
  options.universe = kUniverse;
  options.seed = 555;
  options.chaos_plan = &plan;
  const IntersectResult r = intersect(p.s, p.t, options);
  EXPECT_TRUE(r.verified || r.degraded);
  EXPECT_TRUE(util::is_subset(p.expected_intersection, r.intersection));
  EXPECT_GT(plan.stats().burst_state_entries, 0u);
  EXPECT_GT(plan.stats().content_events, 0u);
}

// ------------------------------------------------------------------
// Multiparty: the coordinator survives crash-restart and skips the dead.

TEST(Chaos, CoordinatorSurvivesTransientCrashes) {
  util::Rng wrng(202);
  const auto inst =
      util::random_multi_sets(wrng, std::uint64_t{1} << 14, 6, 32, 8);
  sim::ChaosSpec spec;
  spec.players = 6;
  spec.crash.crash_prob = 0.02;
  spec.crash.restart_ticks = 4;
  sim::ChaosPlan plan(spec, 88);

  sim::Network net(6);
  net.set_chaos_plan(&plan);
  sim::SharedRandomness sh(99);
  const auto res = multiparty::coordinator_intersection(
      net, sh, std::uint64_t{1} << 14, inst.sets);
  if (!res.degraded) {
    EXPECT_EQ(res.intersection, inst.expected_intersection);
  }
  EXPECT_TRUE(util::is_subset(inst.expected_intersection, res.intersection));
}

TEST(Chaos, CoordinatorDegradesWhenAPlayerNeverReturns) {
  util::Rng wrng(303);
  const auto inst =
      util::random_multi_sets(wrng, std::uint64_t{1} << 14, 6, 32, 8);
  sim::ChaosSpec spec;
  spec.players = 6;
  sim::CrashSchedule dead;
  dead.crash_prob = 1.0;
  dead.max_crashes = 0;
  spec.crash_overrides.emplace_back(3, dead);
  sim::ChaosPlan plan(spec, 77);

  sim::Network net(6);
  net.set_chaos_plan(&plan);
  sim::SharedRandomness sh(99);
  const auto res = multiparty::coordinator_intersection(
      net, sh, std::uint64_t{1} << 14, inst.sets);
  EXPECT_TRUE(res.degraded);
  EXPECT_GT(res.degraded_pairs, 0u);
  // Honest degradation: still a superset of the true m-way intersection.
  EXPECT_TRUE(util::is_subset(inst.expected_intersection, res.intersection));
}

// ------------------------------------------------------------------
// Satellite: incident dumps carry the tools/replay context block.

TEST(Chaos, IncidentDumpCarriesReplayContext) {
  const util::SetPair p = make_pair(91);
  obs::FlightRecorder rec(/*capacity=*/128);
  const std::string prefix = testing::TempDir() + "chaos_dump";
  rec.set_dump_path(prefix, /*max_dumps=*/4);

  sim::FaultSpec fault;
  fault.flip_per_bit = 5e-3;  // loud enough to raise an integrity incident
  fault.seed = 1234;
  sim::FaultPlan faults(fault);

  IntersectOptions options;
  options.universe = kUniverse;
  options.seed = 77;
  options.recorder = &rec;
  options.fault_plan = &faults;
  const IntersectResult r = intersect(p.s, p.t, options);
  EXPECT_TRUE(util::is_subset(p.expected_intersection, r.intersection));

  ASSERT_FALSE(rec.dump_files().empty());
  std::ifstream in(rec.dump_files().front());
  ASSERT_TRUE(in.good());
  std::string meta_line;
  ASSERT_TRUE(std::getline(in, meta_line));
  // The meta line is what tools/replay rebuilds the session from.
  EXPECT_NE(meta_line.find("\"transcript_digest\""), std::string::npos);
  EXPECT_NE(meta_line.find("\"context\""), std::string::npos);
  EXPECT_NE(meta_line.find("\"kind\":\"two_party\""), std::string::npos);
  EXPECT_NE(meta_line.find("\"fault.flip_per_bit\""), std::string::npos);
  EXPECT_NE(meta_line.find("\"retry.max_attempts\""), std::string::npos);
  EXPECT_NE(meta_line.find("\"s\""), std::string::npos);
}

}  // namespace
}  // namespace setint
