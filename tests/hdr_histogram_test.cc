// Tests for the log-bucketed HDR histogram (obs/hdr_histogram.h): the
// exact linear region, the 6.25% relative-resolution claim of the bin
// geometry, deterministic percentiles, and the exact/commutative/
// associative merge contract the MetricsRegistry hdr family extends to
// (docs/OBSERVABILITY.md § merging).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace setint {
namespace {

using obs::HdrHistogram;

// ---------- bin geometry ----------

TEST(HdrHistogram, LinearRegionIsExact) {
  for (std::uint64_t v = 0; v < HdrHistogram::kSubBuckets; ++v) {
    const int bin = HdrHistogram::bin_of(v);
    EXPECT_EQ(bin, static_cast<int>(v));
    EXPECT_EQ(HdrHistogram::bin_lower(bin), v);
    EXPECT_EQ(HdrHistogram::bin_upper(bin), v);
  }
}

TEST(HdrHistogram, BinBoundsBracketTheValue) {
  util::Rng rng(0x4D2);
  std::vector<std::uint64_t> values = {16,         17,     255,  256,
                                       257,        1u << 20, ~std::uint64_t{0},
                                       (1ull << 63) + 12345};
  for (int i = 0; i < 2000; ++i) {
    values.push_back(rng.next() >> (i % 60));
  }
  for (std::uint64_t v : values) {
    const int bin = HdrHistogram::bin_of(v);
    ASSERT_GE(bin, 0);
    ASSERT_LT(bin, HdrHistogram::kBins);
    EXPECT_LE(HdrHistogram::bin_lower(bin), v) << v;
    EXPECT_GE(HdrHistogram::bin_upper(bin), v) << v;
    // Resolution: the bin's width never exceeds 2^-4 of the value, so any
    // statistic read back from bins is within 6.25% of the truth.
    const std::uint64_t width =
        HdrHistogram::bin_upper(bin) - HdrHistogram::bin_lower(bin);
    EXPECT_LE(width, v / HdrHistogram::kSubBuckets) << v;
  }
}

TEST(HdrHistogram, BinIndicesAreMonotone) {
  // Bin boundaries tile the axis: each bin's lower bound is exactly one
  // past the previous bin's upper bound.
  for (int bin = 1; bin < HdrHistogram::kBins; ++bin) {
    ASSERT_EQ(HdrHistogram::bin_lower(bin),
              HdrHistogram::bin_upper(bin - 1) + 1)
        << bin;
  }
}

// ---------- moments ----------

TEST(HdrHistogram, MomentsAreExact) {
  HdrHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.value_at_percentile(50), 0u);  // empty -> 0

  h.observe(100);
  h.observe(7, 3);  // weighted
  h.observe(100000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 100u + 3 * 7 + 100000);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 100000u);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 5.0);
  h.observe(50, 0);  // zero weight is a no-op
  EXPECT_EQ(h.count(), 5u);
}

// ---------- percentiles ----------

TEST(HdrHistogram, PercentilesWithinRelativeError) {
  HdrHistogram h;
  util::Rng rng(0xBEEF);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = 1 + rng.below(1u << 20);
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(p / 100.0 * values.size())));
    const double exact = static_cast<double>(values[rank - 1]);
    const double reported = static_cast<double>(h.value_at_percentile(p));
    // Reported value is the bin's upper bound: never below the true
    // order statistic, and at most 6.25% above it.
    EXPECT_GE(reported, exact) << p;
    EXPECT_LE(reported, exact * (1.0 + 1.0 / HdrHistogram::kSubBuckets)) << p;
  }
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.max());
}

TEST(HdrHistogram, PercentileNeverExceedsObservedMax) {
  HdrHistogram h;
  h.observe(1000);  // bin upper bound overshoots 1000
  EXPECT_EQ(h.p99(), 1000u);
  EXPECT_EQ(h.value_at_percentile(100), 1000u);
}

// ---------- merge contract ----------

HdrHistogram observe_all(const std::vector<std::uint64_t>& values) {
  HdrHistogram h;
  for (std::uint64_t v : values) h.observe(v);
  return h;
}

TEST(HdrHistogram, MergeIsCommutativeAssociativeAndExact) {
  util::Rng rng(0x1234);
  std::vector<std::uint64_t> sa, sb, sc, all;
  for (int i = 0; i < 700; ++i) sa.push_back(rng.next() >> (i % 50));
  for (int i = 0; i < 300; ++i) sb.push_back(1 + rng.below(1u << 10));
  for (int i = 0; i < 500; ++i) sc.push_back(rng.below(1u << 30));
  for (auto* s : {&sa, &sb, &sc}) all.insert(all.end(), s->begin(), s->end());

  const HdrHistogram a = observe_all(sa);
  const HdrHistogram b = observe_all(sb);
  const HdrHistogram c = observe_all(sc);

  // (a + b) + c
  HdrHistogram left = a;
  left.merge(b);
  left.merge(c);
  // a + (b + c)  — associativity
  HdrHistogram bc = b;
  bc.merge(c);
  HdrHistogram right = a;
  right.merge(bc);
  // c + b + a  — commutativity
  HdrHistogram reversed = c;
  reversed.merge(b);
  reversed.merge(a);
  // One histogram observing every stream directly — exactness.
  const HdrHistogram direct = observe_all(all);

  const std::string expected = direct.ToJson().dump();
  EXPECT_EQ(left.ToJson().dump(), expected);
  EXPECT_EQ(right.ToJson().dump(), expected);
  EXPECT_EQ(reversed.ToJson().dump(), expected);
}

TEST(HdrHistogram, MergeWithEmptyIsIdentity) {
  HdrHistogram h;
  h.observe(42);
  const std::string before = h.ToJson().dump();
  HdrHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h.ToJson().dump(), before);
  HdrHistogram target;
  target.merge(h);
  EXPECT_EQ(target.ToJson().dump(), before);
}

// ---------- registry integration ----------

TEST(MetricsRegistry, HdrFamilyMergesLikeDirectObservation) {
  obs::MetricsRegistry r1, r2, direct;
  r1.hdr("run.bits").observe(1000);
  r1.hdr("run.bits").observe(2000);
  r2.hdr("run.bits").observe(3000);
  r2.hdr("run.rounds").observe(8);
  direct.hdr("run.bits").observe(1000);
  direct.hdr("run.bits").observe(2000);
  direct.hdr("run.bits").observe(3000);
  direct.hdr("run.rounds").observe(8);

  obs::MetricsRegistry merged;
  merged.merge(r2);
  merged.merge(r1);  // order must not matter
  EXPECT_EQ(merged.ToJson().dump(), direct.ToJson().dump());
  EXPECT_EQ(merged.hdrs().size(), 2u);
}

TEST(MetricsRegistry, HdrKeyAbsentUntilUsed) {
  // Byte-stability of pre-hdr dumps: the "hdr" key only appears once an
  // hdr metric exists.
  obs::MetricsRegistry plain;
  plain.counter("x").add();
  EXPECT_EQ(plain.ToJson().dump().find("\"hdr\""), std::string::npos);
  obs::MetricsRegistry with;
  with.counter("x").add();
  with.hdr("run.bits").observe(1);
  EXPECT_NE(with.ToJson().dump().find("\"hdr\""), std::string::npos);
}

}  // namespace
}  // namespace setint
