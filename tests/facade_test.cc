// Tests for the setint.h facade plus whole-zoo differential fuzzing:
// hundreds of random instances with mixed shapes run through every
// protocol and checked against local ground truth.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/private_coin.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "setint.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- facade ----------

TEST(Facade, BasicUsage) {
  util::Rng wrng(1);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 500, 123);
  const IntersectResult r = intersect(p.s, p.t, {.universe = 1u << 24});
  EXPECT_EQ(r.intersection, p.expected_intersection);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.bits, 0u);
  EXPECT_GT(r.rounds, 0u);
}

TEST(Facade, InfersUniverse) {
  const util::Set s{5, 100, 2000};
  const util::Set t{100, 2000, 3000};
  const IntersectResult r = intersect(s, t);
  EXPECT_EQ(r.intersection, (util::Set{100, 2000}));
}

TEST(Facade, EmptyInputs) {
  const IntersectResult r = intersect(util::Set{}, util::Set{});
  EXPECT_TRUE(r.intersection.empty());
  EXPECT_TRUE(r.verified);
}

// Degenerate-input validation: universe = 0 with both sets empty used to
// bottom out in the log*/floor-log2 parameter derivations; it now returns
// an empty verified answer without running a protocol (zero cost, zero
// attempts).
TEST(Facade, ExplicitZeroUniverseWithEmptySets) {
  IntersectOptions options;
  options.universe = 0;
  const IntersectResult r = intersect(util::Set{}, util::Set{}, options);
  EXPECT_TRUE(r.intersection.empty());
  EXPECT_TRUE(r.verified);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.bits, 0u);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.repetitions, 0u);
}

TEST(Facade, OneEmptySideShortCircuits) {
  const util::Set s{2, 5, 9};
  for (const bool left_empty : {true, false}) {
    const IntersectResult r =
        left_empty ? intersect(util::Set{}, s) : intersect(s, util::Set{});
    EXPECT_TRUE(r.intersection.empty());
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.bits, 0u);
    EXPECT_EQ(r.repetitions, 0u);
  }
  // The short-circuit still validates the non-empty side.
  EXPECT_THROW(intersect(util::Set{3, 1}, util::Set{}),
               std::invalid_argument);
  IntersectOptions bounded;
  bounded.universe = 4;
  EXPECT_THROW(intersect(util::Set{7}, util::Set{}, bounded),
               std::invalid_argument);
}

TEST(Facade, RoundsParameterControlsTradeoff) {
  util::Rng wrng(2);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 26, 4096, 2048);
  const IntersectResult r1 =
      intersect(p.s, p.t, {.universe = 1u << 26, .rounds_r = 1});
  const IntersectResult r3 =
      intersect(p.s, p.t, {.universe = 1u << 26, .rounds_r = 3});
  EXPECT_EQ(r1.intersection, p.expected_intersection);
  EXPECT_EQ(r3.intersection, p.expected_intersection);
  EXPECT_LT(r3.bits, r1.bits);     // more rounds, fewer bits
  EXPECT_GT(r3.rounds, r1.rounds);
}

TEST(Facade, RejectsNonCanonicalInput) {
  EXPECT_THROW(intersect(util::Set{3, 1}, util::Set{}),
               std::invalid_argument);
}

TEST(Facade, DeterministicForSeed) {
  util::Rng wrng(3);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 20, 128, 64);
  const IntersectResult a =
      intersect(p.s, p.t, {.universe = 1u << 20, .seed = 42});
  const IntersectResult b =
      intersect(p.s, p.t, {.universe = 1u << 20, .seed = 42});
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.rounds, b.rounds);
}

// ---------- whole-zoo differential fuzz ----------

std::vector<std::unique_ptr<core::IntersectionProtocol>> fuzz_zoo() {
  std::vector<std::unique_ptr<core::IntersectionProtocol>> zoo;
  zoo.push_back(std::make_unique<core::OneRoundHashProtocol>());
  zoo.push_back(std::make_unique<core::ToyBucketProtocol>());
  zoo.push_back(std::make_unique<core::BucketEqProtocol>());
  zoo.push_back(std::make_unique<core::VerificationTreeProtocol>());
  zoo.push_back(std::make_unique<core::PrivateCoinProtocol>());
  return zoo;
}

TEST(DifferentialFuzz, RandomInstancesAcrossTheZoo) {
  // ~150 random instances with wildly mixed shapes. Invariants checked on
  // every protocol: subset-of-input and superset-of-truth ALWAYS; exact
  // output in all but a vanishing fraction of runs (bounded below).
  const auto zoo = fuzz_zoo();
  util::Rng meta(0xF022);
  int runs = 0;
  int inexact = 0;
  for (int instance = 0; instance < 150; ++instance) {
    const std::uint64_t universe =
        16 + (std::uint64_t{1} << meta.below(40));
    const std::size_t max_k = static_cast<std::size_t>(
        std::min<std::uint64_t>(universe / 2, 1 + meta.below(400)));
    const std::size_t k = 1 + meta.below(max_k);
    const std::size_t shared_count = meta.below(k + 1);
    util::Rng wrng(meta.next());
    const util::SetPair p =
        util::random_set_pair(wrng, universe, k, shared_count);
    for (const auto& proto : zoo) {
      const core::RunResult r =
          proto->run(meta.next(), universe, p.s, p.t);
      ++runs;
      ASSERT_TRUE(util::is_subset(r.output.alice, p.s))
          << proto->name() << " instance " << instance;
      ASSERT_TRUE(util::is_subset(r.output.bob, p.t))
          << proto->name() << " instance " << instance;
      ASSERT_TRUE(util::is_subset(p.expected_intersection, r.output.alice))
          << proto->name() << " instance " << instance;
      ASSERT_TRUE(util::is_subset(p.expected_intersection, r.output.bob))
          << proto->name() << " instance " << instance;
      inexact += (r.output.alice != p.expected_intersection ||
                  r.output.bob != p.expected_intersection);
    }
  }
  // 750 runs; randomized protocols at small k may miss occasionally.
  EXPECT_LE(inexact, runs / 100) << inexact << " of " << runs;
}

TEST(DifferentialFuzz, AdversarialShapes) {
  // Hand-picked nasty shapes: dense universe, all-consecutive elements,
  // maximum overlap, singleton overlap at the universe edge.
  const auto zoo = fuzz_zoo();
  struct Shape {
    util::Set s;
    util::Set t;
    std::uint64_t universe;
  };
  std::vector<Shape> shapes;
  {
    util::Set a;
    util::Set b;
    for (std::uint64_t i = 0; i < 64; ++i) {
      a.push_back(i);
      b.push_back(i + 32);
    }
    shapes.push_back({a, b, 128});  // dense consecutive, half overlap
  }
  {
    util::Set a;
    for (std::uint64_t i = 0; i < 100; ++i) a.push_back(i * 2);
    shapes.push_back({a, a, 256});  // identical even numbers
  }
  {
    shapes.push_back({util::Set{0}, util::Set{0}, 1});  // minimal universe
  }
  {
    const std::uint64_t top = (std::uint64_t{1} << 40) - 1;
    shapes.push_back({util::Set{0, top}, util::Set{top}, top + 1});
  }
  for (const Shape& shape : shapes) {
    const util::Set truth = util::set_intersection(shape.s, shape.t);
    for (const auto& proto : fuzz_zoo()) {
      const core::RunResult r =
          proto->run(0xAD, shape.universe, shape.s, shape.t);
      EXPECT_EQ(r.output.alice, truth) << proto->name();
      EXPECT_EQ(r.output.bob, truth) << proto->name();
    }
  }
}

}  // namespace
}  // namespace setint
