// Tests for the constructive private-coin wrapper (Section 3.1): same
// outputs as the shared-coin protocol, additive O(log k + log log n) seed
// cost, and FKS prime negotiation.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/private_coin.h"
#include "sim/channel.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

struct Case {
  std::size_t k;
  std::size_t shared;
  std::uint64_t universe;
};

class PrivateCoin : public ::testing::TestWithParam<Case> {};

TEST_P(PrivateCoin, ComputesExactIntersection) {
  const Case c = GetParam();
  util::Rng wrng(c.k * 13 + c.shared);
  const util::SetPair p =
      util::random_set_pair(wrng, c.universe, c.k, c.shared);
  util::Rng private_rng(c.k + 7);
  sim::Channel ch;
  const core::IntersectionOutput out = core::private_coin_intersection(
      ch, private_rng, c.universe, p.s, p.t);
  EXPECT_EQ(out.alice, p.expected_intersection);
  EXPECT_EQ(out.bob, p.expected_intersection);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrivateCoin,
    ::testing::Values(Case{4, 2, 1u << 16}, Case{64, 0, 1u << 20},
                      Case{64, 64, 1u << 20}, Case{256, 128, 1u << 28},
                      Case{256, 128, std::uint64_t{1} << 55},
                      Case{1024, 512, std::uint64_t{1} << 40}));

TEST(PrivateCoin, SeedCostIsLogarithmic) {
  // The explicit randomness must cost O(log k + log log n) + O(1) bits —
  // double the universe exponent and the seed grows by O(1) bits only.
  util::Rng wrng(3);
  const std::size_t k = 256;
  std::uint64_t cost_small = 0;
  std::uint64_t cost_large = 0;
  {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 25, k, k / 2);
    util::Rng prng(4);
    sim::Channel ch;
    core::PrivateCoinStats stats;
    core::private_coin_intersection(ch, prng, 1u << 25, p.s, p.t, {}, &stats);
    cost_small = stats.seed_bits;
  }
  {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 50, k, k / 2);
    util::Rng prng(5);
    sim::Channel ch;
    core::PrivateCoinStats stats;
    core::private_coin_intersection(ch, prng, std::uint64_t{1} << 50, p.s,
                                    p.t, {}, &stats);
    cost_large = stats.seed_bits;
  }
  EXPECT_LT(cost_small, 200u);
  EXPECT_LT(cost_large, cost_small + 40u);
}

TEST(PrivateCoin, ExpectedConstantPrimeAttempts) {
  util::Rng wrng(6);
  std::uint64_t attempts = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 128, 64);
    util::Rng prng(static_cast<std::uint64_t>(trial));
    sim::Channel ch;
    core::PrivateCoinStats stats;
    core::private_coin_intersection(ch, prng, 1u << 24, p.s, p.t, {}, &stats);
    attempts += stats.prime_attempts;
  }
  EXPECT_LT(static_cast<double>(attempts) / trials, 1.5);
}

TEST(PrivateCoin, OverheadVersusSharedCoinIsAdditiveAndSmall) {
  util::Rng wrng(7);
  const std::size_t k = 512;
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 40, k, k / 2);
  // Shared-coin cost.
  sim::Channel shared_ch;
  sim::SharedRandomness sr(7);
  core::verification_tree_intersection(shared_ch, sr, 0,
                                       std::uint64_t{1} << 40, p.s, p.t, {});
  // Private-coin cost.
  util::Rng prng(8);
  sim::Channel private_ch;
  core::private_coin_intersection(private_ch, prng, std::uint64_t{1} << 40,
                                  p.s, p.t, {});
  // Same ballpark: the seed overhead is ~100 bits but the two runs use
  // different randomness, so bound the difference loosely both ways
  // (run-to-run variance at k=512 is a few hundred bits).
  EXPECT_LT(private_ch.cost().bits_total,
            shared_ch.cost().bits_total + 2500);
  EXPECT_GT(private_ch.cost().bits_total,
            shared_ch.cost().bits_total / 3);
}

TEST(PrivateCoin, EdgeCases) {
  util::Rng prng(9);
  {
    sim::Channel ch;
    const auto out = core::private_coin_intersection(ch, prng, 1000,
                                                     util::Set{}, util::Set{});
    EXPECT_TRUE(out.alice.empty());
  }
  {
    sim::Channel ch;
    const util::Set s{42};
    const auto out = core::private_coin_intersection(ch, prng, 1000, s, s);
    EXPECT_EQ(out.alice, s);
    EXPECT_EQ(out.bob, s);
  }
}

TEST(PrivateCoinWrapper, RunInterface) {
  const core::PrivateCoinProtocol proto;
  EXPECT_EQ(proto.name(), "private-coin-tree");
  util::Rng wrng(10);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 20, 64, 32);
  const core::RunResult r = proto.run(11, 1u << 20, p.s, p.t);
  EXPECT_EQ(r.output.alice, p.expected_intersection);
  EXPECT_EQ(r.output.bob, p.expected_intersection);
}

}  // namespace
}  // namespace setint
