// Tests for the warm-up O(k log log k) protocol ("Our Technique" section):
// correctness, cost position between R^(1) and the tree, and the
// verify/re-run loop behaviour.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/one_round_hash.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

struct Case {
  std::size_t k;
  std::size_t shared;
};

class ToyProtocol : public ::testing::TestWithParam<Case> {};

TEST_P(ToyProtocol, ComputesExactIntersection) {
  const Case c = GetParam();
  util::Rng wrng(c.k * 11 + c.shared);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 30, c.k, c.shared);
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    sim::SharedRandomness shared(c.k + trial);
    sim::Channel ch;
    const core::IntersectionOutput out = core::toy_bucket_intersection(
        ch, shared, trial, std::uint64_t{1} << 30, p.s, p.t);
    EXPECT_EQ(out.alice, p.expected_intersection) << trial;
    EXPECT_EQ(out.bob, p.expected_intersection) << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ToyProtocol,
                         ::testing::Values(Case{1, 0}, Case{1, 1},
                                           Case{16, 8}, Case{64, 0},
                                           Case{64, 64}, Case{256, 128},
                                           Case{1024, 512},
                                           Case{4096, 1024}));

TEST(ToyProtocolCost, SitsBetweenOneRoundAndTree) {
  // O(k log log k): cheaper than R^(1) = O(k log k) at large k, costlier
  // than (or comparable to) the log*-round tree.
  util::Rng wrng(1);
  const std::size_t k = 16384;
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
  const core::RunResult toy =
      core::ToyBucketProtocol{}.run(1, std::uint64_t{1} << 30, p.s, p.t);
  const core::RunResult one_round =
      core::OneRoundHashProtocol{}.run(1, std::uint64_t{1} << 30, p.s, p.t);
  EXPECT_LT(toy.cost.bits_total, one_round.cost.bits_total);
}

TEST(ToyProtocolCost, GrowsSlowlyWithK) {
  // bits/k should track log log k: nearly flat across a 64x range of k.
  util::Rng wrng(2);
  double rate_small = 0;
  double rate_large = 0;
  {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, 512, 256);
    const auto r = core::ToyBucketProtocol{}.run(2, std::uint64_t{1} << 30,
                                                 p.s, p.t);
    rate_small = static_cast<double>(r.cost.bits_total) / 512;
  }
  {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, 32768, 16384);
    const auto r = core::ToyBucketProtocol{}.run(3, std::uint64_t{1} << 30,
                                                 p.s, p.t);
    rate_large = static_cast<double>(r.cost.bits_total) / 32768;
  }
  EXPECT_LT(rate_large, rate_small * 1.6);
}

TEST(ToyProtocol, DiagnosticsShowConvergence) {
  util::Rng wrng(3);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 26, 4096, 2048);
  sim::SharedRandomness shared(3);
  sim::Channel ch;
  core::ToyProtocolDiag diag;
  core::toy_bucket_intersection(ch, shared, 0, 1u << 26, p.s, p.t, &diag);
  EXPECT_GT(diag.buckets, 0u);
  EXPECT_LT(diag.buckets, 4096u);  // k / log k buckets
  EXPECT_GE(diag.iterations, 1u);
  EXPECT_LE(diag.iterations, 6u);  // expected O(1) sweeps
  EXPECT_EQ(diag.fallback_buckets, 0u);
  // Expected re-runs per bucket < 1.
  EXPECT_LT(static_cast<double>(diag.total_reruns),
            static_cast<double>(diag.buckets));
}

TEST(ToyProtocol, EdgeCases) {
  sim::SharedRandomness shared(4);
  {
    sim::Channel ch;
    const auto out = core::toy_bucket_intersection(ch, shared, 0, 100,
                                                   util::Set{}, util::Set{});
    EXPECT_TRUE(out.alice.empty());
  }
  {
    sim::Channel ch;
    const util::Set s{1, 2, 3};
    const auto out = core::toy_bucket_intersection(ch, shared, 0, 100, s, s);
    EXPECT_EQ(out.alice, s);
    EXPECT_EQ(out.bob, s);
  }
  {
    sim::Channel ch;
    const auto out = core::toy_bucket_intersection(
        ch, shared, 0, 100, util::Set{1, 3}, util::Set{2, 4});
    EXPECT_TRUE(out.alice.empty());
    EXPECT_TRUE(out.bob.empty());
  }
}

TEST(ToyProtocol, SupersetInvariantAcrossSeeds) {
  util::Rng wrng(5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 256, 128);
    sim::SharedRandomness shared(seed);
    sim::Channel ch;
    const auto out = core::toy_bucket_intersection(ch, shared, seed, 1u << 24,
                                                   p.s, p.t);
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.alice));
    EXPECT_TRUE(util::is_subset(out.alice, p.s));
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.bob));
    EXPECT_TRUE(util::is_subset(out.bob, p.t));
  }
}

}  // namespace
}  // namespace setint
