// Structure-aware fuzz targets for every hostile-input surface
// (docs/ROBUSTNESS.md, "Fuzzing"): the unary/gamma/Rice decoders, the
// set codecs, and the end-to-end facade with and without a Byzantine
// adversary. One entry point, libFuzzer-compatible:
//
//   run_one(data, size)  // data[0] selects the target, the rest is input
//
// The invariant every target enforces (aborting the process on violation,
// so both the in-tree driver and a libFuzzer build flag it as a crash):
//
//   * no crash: only the *named* rejection exceptions may escape a decode
//     (std::invalid_argument, std::out_of_range, std::length_error,
//     core::ResourceLimitError) — anything else is a bug;
//   * no hang / unbounded allocation: decoded work is bounded by the
//     input size and the installed ResourceLimits;
//   * never an unflagged wrong answer: end-to-end results are checked
//     against a std::set_intersection differential oracle whenever the
//     run reports verified=true and no frame was crafted.
#pragma once

#include <cstddef>
#include <cstdint>

namespace setint::fuzz {

// Number of distinct fuzz targets run_one dispatches over (data[0] mod
// kNumTargets). The driver uses it to rotate coverage evenly.
inline constexpr unsigned kNumTargets = 7;

// Human-readable name of target `index` (index < kNumTargets).
const char* target_name(unsigned index);

// Execute one fuzz input. Returns 0 always (libFuzzer convention);
// aborts the process with a diagnostic on any invariant violation.
int run_one(const std::uint8_t* data, std::size_t size);

}  // namespace setint::fuzz
