#include "fuzz_targets.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string>

#include "core/resource_limits.h"
#include "setint.h"
#include "sim/adversary.h"
#include "sim/fault.h"
#include "util/bitio.h"
#include "util/set_util.h"

namespace setint::fuzz {

namespace {

// Abort loudly on an invariant violation so every harness (ctest driver,
// libFuzzer, sanitizer builds) reports it as a crash at the exact input.
#define FUZZ_CHECK(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "fuzz: invariant violated: %s [%s]\n",    \
                   (msg), #cond);                                    \
      std::abort();                                                  \
    }                                                                \
  } while (0)

// The only exceptions a decoder is allowed to reject hostile input with.
// Returns true if `fn` completed or threw one of them; aborts otherwise.
template <typename Fn>
bool run_decode(Fn&& fn, const char* what) {
  try {
    fn();
    return true;
  } catch (const core::ResourceLimitError&) {
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  } catch (const std::length_error&) {
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz: %s threw unexpected %s\n", what, e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fuzz: %s threw a non-std exception\n", what);
    std::abort();
  }
  return false;
}

// Sequential byte cursor over the fuzz input; wraps deterministically at
// the end (reading past the input yields a fixed stream, never UB).
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    if (size_ == 0) return 0;
    const std::uint8_t b = data_[pos_ % size_];
    ++pos_;
    return b;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | u8();
    return v;
  }

  bool fresh() const { return pos_ < size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// The remainder of the input as a raw bit buffer — the shape wire frames
// actually arrive in.
util::BitBuffer bits_from(const std::uint8_t* data, std::size_t size) {
  util::BitBuffer buffer;
  for (std::size_t i = 0; i < size; ++i) {
    for (unsigned b = 0; b < 8; ++b) buffer.append_bit((data[i] >> b) & 1);
  }
  return buffer;
}

// A small canonical set derived from the cursor: bounded size, bounded
// universe, so end-to-end targets stay fast on any input.
util::Set small_set_from(Cursor& cursor, std::uint64_t universe,
                         std::size_t max_size) {
  const std::size_t size = cursor.u8() % (max_size + 1);
  util::Set out;
  std::uint64_t next = cursor.u8() % 7;
  for (std::size_t i = 0; i < size && next < universe; ++i) {
    out.push_back(next);
    next += 1 + cursor.u8() % 16;
  }
  return out;
}

// Limits tight enough that every decoder-level cap is reachable from a
// few-hundred-byte input.
core::ResourceLimits tight_limits() {
  core::ResourceLimits limits;
  limits.max_decoded_items = 512;
  return limits;
}

// ---- targets -------------------------------------------------------------

// Targets 0-3: raw decoder surfaces. Each decodes the input buffer until
// exhaustion or a (named) rejection; the work per call is bounded by the
// input length, and the items budget bounds materialized memory.
void target_gamma(const std::uint8_t* data, std::size_t size) {
  const util::BitBuffer buffer = bits_from(data, size);
  const core::ResourceLimits limits = tight_limits();
  util::BitReader reader(buffer, &limits);
  run_decode(
      [&] {
        while (!reader.exhausted()) {
          (void)reader.read_gamma64();
          reader.charge_items(1, "fuzz-gamma");
        }
      },
      "gamma decode");
}

void target_rice(const std::uint8_t* data, std::size_t size) {
  Cursor cursor(data, size);
  const unsigned b = cursor.u8() % 24;
  const util::BitBuffer buffer = bits_from(data, size);
  const core::ResourceLimits limits = tight_limits();
  util::BitReader reader(buffer, &limits);
  run_decode(
      [&] {
        while (!reader.exhausted()) {
          (void)reader.read_rice(b);
          reader.charge_items(1, "fuzz-rice");
        }
      },
      "rice decode");
}

void target_read_set(const std::uint8_t* data, std::size_t size) {
  const util::BitBuffer buffer = bits_from(data, size);
  const core::ResourceLimits limits = tight_limits();
  util::BitReader reader(buffer, &limits);
  util::Set decoded;
  if (run_decode([&] { decoded = util::read_set(reader); }, "read_set")) {
    FUZZ_CHECK(util::is_canonical_set(decoded),
               "read_set returned a non-canonical set");
    FUZZ_CHECK(decoded.size() <= limits.max_decoded_items,
               "read_set materialized more items than the budget");
  }
}

void target_read_set_rice(const std::uint8_t* data, std::size_t size) {
  Cursor cursor(data, size);
  const std::uint64_t universe = 2 + cursor.u64() % (1u << 20);
  const util::BitBuffer buffer = bits_from(data, size);
  const core::ResourceLimits limits = tight_limits();
  util::BitReader reader(buffer, &limits);
  util::Set decoded;
  if (run_decode([&] { decoded = util::read_set_rice(reader, universe); },
                 "read_set_rice")) {
    FUZZ_CHECK(util::is_canonical_set(decoded),
               "read_set_rice returned a non-canonical set");
    FUZZ_CHECK(decoded.size() <= limits.max_decoded_items,
               "read_set_rice materialized more items than the budget");
  }
}

// Target 4: honest end-to-end differential — the facade vs
// std::set_intersection on inputs derived from the fuzz bytes.
void target_e2e_honest(const std::uint8_t* data, std::size_t size) {
  Cursor cursor(data, size);
  const std::uint64_t universe = 64 + cursor.u64() % 4096;
  const util::Set s = small_set_from(cursor, universe, 12);
  const util::Set t = small_set_from(cursor, universe, 12);
  IntersectOptions options;
  options.universe = universe;
  options.seed = cursor.u64() | 1;
  const IntersectResult result = intersect(s, t, options);
  const util::Set oracle = util::set_intersection(s, t);
  FUZZ_CHECK(result.verified, "honest run not verified");
  FUZZ_CHECK(!result.degraded, "honest run flagged degraded");
  FUZZ_CHECK(result.intersection == oracle,
             "honest run disagrees with std::set_intersection");
}

// Target 5: end-to-end with a Byzantine Bob and workload-derived limits.
// The one guarantee a lying peer leaves standing: the honest side never
// crashes, the run terminates, and the output is a subset of its own
// input.
void target_e2e_adversary(const std::uint8_t* data, std::size_t size) {
  Cursor cursor(data, size);
  const std::uint64_t universe = 64 + cursor.u64() % 4096;
  const util::Set s = small_set_from(cursor, universe, 12);
  const util::Set t = small_set_from(cursor, universe, 12);
  if (s.empty() || t.empty()) return;

  sim::AdversarySpec spec;
  spec.party = sim::PartyId::kBob;
  static constexpr sim::AttackClass kClasses[] = {
      sim::AttackClass::kInflatedLength, sim::AttackClass::kUnaryBomb,
      sim::AttackClass::kRandomGarbage,  sim::AttackClass::kReplay,
      sim::AttackClass::kTruncate,       sim::AttackClass::kSemanticLie,
      sim::AttackClass::kMixed,
  };
  spec.attack = kClasses[cursor.u8() % std::size(kClasses)];
  spec.attack_prob = (1 + cursor.u8() % 4) / 4.0;
  spec.frame_bits = 64 + cursor.u64() % 4096;
  spec.lie_universe = universe;
  spec.seed = cursor.u64() | 1;
  sim::Adversary adversary(spec);

  IntersectOptions options;
  options.universe = universe;
  options.seed = cursor.u64() | 1;
  options.adversary = &adversary;
  options.limits = core::ResourceLimits::for_workload(
      universe, std::max(s.size(), t.size()));
  options.retry.max_attempts = 4;
  options.retry.degraded_attempts = 2;

  IntersectResult result;
  try {
    result = intersect(s, t, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz: adversary run escaped the retry layer: %s\n",
                 e.what());
    std::abort();
  }
  FUZZ_CHECK(util::is_subset(result.intersection, s),
             "honest side's output is not a subset of its own input");
  if (adversary.stats().frames_crafted == 0) {
    // The adversary left every frame alone: the differential oracle
    // applies in full.
    const util::Set oracle = util::set_intersection(s, t);
    FUZZ_CHECK(result.intersection == oracle,
               "crafted-frame-free run disagrees with the oracle");
  }
}

// Target 6: end-to-end under stochastic faults. The PR-2 contract:
// verified implies exact, otherwise the run is flagged degraded and the
// answer is a superset of the true intersection.
void target_e2e_faults(const std::uint8_t* data, std::size_t size) {
  Cursor cursor(data, size);
  const std::uint64_t universe = 64 + cursor.u64() % 4096;
  const util::Set s = small_set_from(cursor, universe, 12);
  const util::Set t = small_set_from(cursor, universe, 12);
  if (s.empty() || t.empty()) return;

  sim::FaultSpec spec;
  spec.flip_per_bit = (cursor.u8() % 32) / 1024.0;
  spec.truncate_prob = (cursor.u8() % 16) / 256.0;
  spec.drop_prob = (cursor.u8() % 16) / 256.0;
  spec.duplicate_prob = (cursor.u8() % 16) / 256.0;
  spec.seed = cursor.u64() | 1;
  sim::FaultPlan plan(spec);

  IntersectOptions options;
  options.universe = universe;
  options.seed = cursor.u64() | 1;
  options.fault_plan = &plan;
  options.limits = core::ResourceLimits::for_workload(
      universe, std::max(s.size(), t.size()));
  options.retry.max_attempts = 6;
  options.retry.degraded_attempts = 2;

  IntersectResult result;
  try {
    result = intersect(s, t, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz: faulty run escaped the retry layer: %s\n",
                 e.what());
    std::abort();
  }
  const util::Set oracle = util::set_intersection(s, t);
  if (result.verified) {
    FUZZ_CHECK(!result.degraded, "verified and degraded at once");
    FUZZ_CHECK(result.intersection == oracle,
               "verified faulty run disagrees with the oracle");
  } else {
    FUZZ_CHECK(result.degraded, "unverified result not flagged degraded");
    FUZZ_CHECK(util::is_subset(oracle, result.intersection),
               "degraded answer is not a superset of the intersection");
  }
}

}  // namespace

const char* target_name(unsigned index) {
  switch (index % kNumTargets) {
    case 0: return "gamma";
    case 1: return "rice";
    case 2: return "read_set";
    case 3: return "read_set_rice";
    case 4: return "e2e_honest";
    case 5: return "e2e_adversary";
    case 6: return "e2e_faults";
  }
  return "unknown";
}

int run_one(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const unsigned target = data[0] % kNumTargets;
  const std::uint8_t* body = data + 1;
  const std::size_t body_size = size - 1;
  switch (target) {
    case 0: target_gamma(body, body_size); break;
    case 1: target_rice(body, body_size); break;
    case 2: target_read_set(body, body_size); break;
    case 3: target_read_set_rice(body, body_size); break;
    case 4: target_e2e_honest(body, body_size); break;
    case 5: target_e2e_adversary(body, body_size); break;
    case 6: target_e2e_faults(body, body_size); break;
  }
  return 0;
}

}  // namespace setint::fuzz
