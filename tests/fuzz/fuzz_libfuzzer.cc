// libFuzzer entry point — built only under -DSETINT_FUZZ=ON with a Clang
// toolchain (-fsanitize=fuzzer needs compiler-rt; gcc builds use the
// seeded fuzz_driver instead). Run against the committed corpus:
//
//   cmake -B build-fuzz -DSETINT_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz --target fuzz_libfuzzer
//   ./build-fuzz/tests/fuzz/fuzz_libfuzzer tests/fuzz/corpus

#include <cstddef>
#include <cstdint>

#include "fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return setint::fuzz::run_one(data, size);
}
