// Seeded in-tree fuzz driver — the ctest-exercised harness (`fuzz_smoke`,
// label "robustness"). No fuzzing engine required: inputs come from a
// deterministic structure-aware generator, so a failure reproduces from
// (seed, iteration) alone.
//
//   fuzz_driver [--iterations=N] [--seed=S] [--corpus=DIR]
//
// Every committed corpus file is replayed first, then N generated inputs
// cycle round-robin over all targets (tests/fuzz/fuzz_targets.h), mixing
// four strategies per input: raw random bytes, valid encodings mutated by
// bit flips/truncation, pathological frames (all-zeros, all-ones,
// inflated gamma length prefixes), and splices of valid encodings. Any
// invariant violation aborts the process, which ctest reports as a
// failure naming the reproducing seed.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_targets.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using setint::util::BitBuffer;
using setint::util::Rng;

// Serialize a bit buffer the way fuzz_targets::bits_from deserializes it:
// LSB-first within each byte, zero-padded tail.
std::vector<std::uint8_t> to_bytes(const BitBuffer& bits) {
  std::vector<std::uint8_t> out((bits.size_bits() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size_bits(); ++i) {
    if (bits.bit(i)) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

// A syntactically valid payload for the given target: well-formed
// encodings are the highest-value mutation substrate, since a mutated
// valid frame exercises deep decoder paths instead of dying on byte 0.
std::vector<std::uint8_t> valid_payload(unsigned target, Rng& rng) {
  BitBuffer bits;
  switch (target % setint::fuzz::kNumTargets) {
    case 0: {  // gamma stream
      const std::uint64_t n = 1 + rng.below(24);
      for (std::uint64_t i = 0; i < n; ++i) {
        bits.append_gamma64(rng.below(std::uint64_t{1} << rng.below(32)));
      }
      break;
    }
    case 1: {  // rice stream; byte 0 doubles as the rice parameter
      const unsigned b = static_cast<unsigned>(rng.below(24));
      bits.append_bits(b, 8);
      const std::uint64_t n = 1 + rng.below(24);
      for (std::uint64_t i = 0; i < n; ++i) {
        bits.append_rice(rng.below(std::uint64_t{1} << (b + 4)), b);
      }
      break;
    }
    case 2: {  // canonical set, gamma-delta coded
      Rng set_rng(rng.next());
      const auto set =
          setint::util::random_set(set_rng, 1u << 16, rng.below(24));
      setint::util::append_set(bits, set);
      break;
    }
    case 3: {  // canonical set, rice coded; first 8 bytes pick the universe
      const std::uint64_t universe = 2 + rng.below(1u << 16);
      for (int i = 0; i < 8; ++i) bits.append_bits(rng.below(256), 8);
      Rng set_rng(rng.next());
      const auto set = setint::util::random_set(
          set_rng, universe, rng.below(std::min<std::uint64_t>(24, universe)));
      setint::util::append_set_rice(bits, set, universe);
      break;
    }
    default: {  // end-to-end targets consume raw cursor bytes
      const std::uint64_t n = 8 + rng.below(48);
      for (std::uint64_t i = 0; i < n; ++i) bits.append_bits(rng.below(256), 8);
      break;
    }
  }
  return to_bytes(bits);
}

std::vector<std::uint8_t> pathological_payload(Rng& rng) {
  BitBuffer bits;
  switch (rng.below(3)) {
    case 0:  // all zeros: gamma zero-run torture
      for (std::uint64_t i = 0; i < 64 + rng.below(2048); ++i) {
        bits.append_bit(false);
      }
      break;
    case 1:  // all ones: rice unary torture / giant gamma values
      for (std::uint64_t i = 0; i < 64 + rng.below(2048); ++i) {
        bits.append_bit(true);
      }
      break;
    default:  // inflated length prefix: gamma64(huge) + short tail
      bits.append_gamma64(1 + rng.below(std::uint64_t{1} << 40));
      for (std::uint64_t i = 0; i < rng.below(64); ++i) {
        bits.append_bit(rng.coin());
      }
      break;
  }
  return to_bytes(bits);
}

void mutate(std::vector<std::uint8_t>& payload, Rng& rng) {
  if (payload.empty()) return;
  const std::uint64_t flips = rng.below(9);
  for (std::uint64_t i = 0; i < flips; ++i) {
    payload[rng.below(payload.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
  }
  if (rng.coin() && payload.size() > 1) {
    payload.resize(1 + rng.below(payload.size()));  // truncate
  }
}

std::vector<std::uint8_t> generate(unsigned target, Rng& rng) {
  std::vector<std::uint8_t> body;
  switch (rng.below(4)) {
    case 0: {  // raw random bytes
      body.resize(1 + rng.below(200));
      for (auto& b : body) b = static_cast<std::uint8_t>(rng.below(256));
      break;
    }
    case 1: {  // valid encoding, then mutated
      body = valid_payload(target, rng);
      mutate(body, rng);
      break;
    }
    case 2: {  // pathological frame
      body = pathological_payload(rng);
      break;
    }
    default: {  // splice of two valid encodings, then mutated
      body = valid_payload(target, rng);
      const auto second = valid_payload(target, rng);
      body.insert(body.end(), second.begin(), second.end());
      mutate(body, rng);
      break;
    }
  }
  std::vector<std::uint8_t> input;
  input.reserve(body.size() + 1);
  input.push_back(static_cast<std::uint8_t>(target));
  input.insert(input.end(), body.begin(), body.end());
  return input;
}

int replay_corpus(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) return 0;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // deterministic replay order
  int replayed = 0;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    setint::fuzz::run_one(reinterpret_cast<const std::uint8_t*>(raw.data()),
                          raw.size());
    ++replayed;
  }
  return replayed;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 12000;
  std::uint64_t seed = 24145;
  std::string corpus;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--iterations=", 0) == 0) {
      iterations = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus = arg.substr(9);
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_driver [--iterations=N] [--seed=S] "
                   "[--corpus=DIR]\n");
      return 2;
    }
  }

  const int replayed = corpus.empty() ? 0 : replay_corpus(corpus);
  if (replayed > 0) {
    std::printf("fuzz: replayed %d corpus inputs from %s\n", replayed,
                corpus.c_str());
  }

  Rng rng(seed);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    // Round-robin over targets guarantees every decoder entry point gets
    // iterations/kNumTargets structure-aware inputs regardless of N.
    const unsigned target =
        static_cast<unsigned>(i % setint::fuzz::kNumTargets);
    const std::vector<std::uint8_t> input = generate(target, rng);
    setint::fuzz::run_one(input.data(), input.size());
    if ((i + 1) % 4000 == 0) {
      std::printf("fuzz: %llu/%llu inputs (last target: %s)\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(iterations),
                  setint::fuzz::target_name(target));
      std::fflush(stdout);
    }
  }
  std::printf("fuzz: OK — %llu generated inputs + %d corpus inputs, "
              "seed %llu, no invariant violations\n",
              static_cast<unsigned long long>(iterations), replayed,
              static_cast<unsigned long long>(seed));
  return 0;
}
