// Tests for the protocol planner: cost-model accuracy (within 2x of
// measured), budget handling, and end-to-end plan execution.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/planner.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

double measured_bits(const core::Plan& plan, std::uint64_t universe,
                     std::size_t k) {
  util::Rng wrng(k + plan.rounds_r);
  const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
  const auto proto = core::instantiate(plan);
  const core::RunResult r = proto->run(7, universe, p.s, p.t);
  return static_cast<double>(r.cost.bits_total);
}

TEST(Planner, EstimatesWithinFactorTwoOfMeasurement) {
  for (std::size_t k : {256u, 4096u, 32768u}) {
    for (std::uint64_t log_n : {24u, 40u}) {
      core::PlannerQuery query;
      query.universe = std::uint64_t{1} << log_n;
      query.k = k;
      for (const core::Plan& plan : core::enumerate_plans(query)) {
        const double measured = measured_bits(plan, query.universe, k);
        EXPECT_LT(plan.estimated_bits, measured * 2.0)
            << plan.description << " k=" << k << " n=2^" << log_n;
        EXPECT_GT(plan.estimated_bits, measured / 2.0)
            << plan.description << " k=" << k << " n=2^" << log_n;
      }
    }
  }
}

TEST(Planner, PicksDeterministicForSmallUniverses) {
  core::PlannerQuery query;
  query.universe = 1u << 16;
  query.k = 4096;  // n/k = 16: shipping the set costs ~6 bits/element
  const core::Plan plan = core::choose_plan(query);
  EXPECT_EQ(plan.kind, core::PlanKind::kDeterministicExchange);
}

TEST(Planner, PicksRandomizedForHugeUniverses) {
  core::PlannerQuery query;
  query.universe = std::uint64_t{1} << 60;
  query.k = 4096;
  const core::Plan plan = core::choose_plan(query);
  EXPECT_NE(plan.kind, core::PlanKind::kDeterministicExchange);
}

TEST(Planner, RespectsRoundBudget) {
  core::PlannerQuery query;
  query.universe = std::uint64_t{1} << 60;
  query.k = 4096;
  query.round_budget = 2;
  const core::Plan plan = core::choose_plan(query);
  EXPECT_LE(plan.estimated_rounds, 2u);
  // With only 2 rounds, the options are deterministic or one-round hash.
  EXPECT_TRUE(plan.kind == core::PlanKind::kDeterministicExchange ||
              plan.kind == core::PlanKind::kOneRoundHash);
}

TEST(Planner, UnlimitedBudgetOffersEverything) {
  core::PlannerQuery query;
  query.universe = 1u << 30;
  query.k = 1024;
  const auto plans = core::enumerate_plans(query);
  EXPECT_GE(plans.size(), 5u);
  // Sorted by estimated bits.
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].estimated_bits, plans[i].estimated_bits);
  }
}

TEST(Planner, ChosenPlanRunsAndIsExact) {
  for (std::uint64_t log_n : {16u, 30u, 50u}) {
    core::PlannerQuery query;
    query.universe = std::uint64_t{1} << log_n;
    query.k = 512;
    const core::Plan plan = core::choose_plan(query);
    util::Rng wrng(log_n);
    const util::SetPair p =
        util::random_set_pair(wrng, query.universe, query.k, query.k / 2);
    const auto proto = core::instantiate(plan);
    const core::RunResult r = proto->run(3, query.universe, p.s, p.t);
    EXPECT_EQ(r.output.alice, p.expected_intersection) << plan.description;
  }
}

TEST(Planner, RejectsMalformedQueries) {
  EXPECT_THROW(core::choose_plan({}), std::invalid_argument);
  core::PlannerQuery impossible;
  impossible.universe = 1u << 20;
  impossible.k = 64;
  impossible.round_budget = 1;  // nothing finishes in one round
  EXPECT_THROW(core::choose_plan(impossible), std::invalid_argument);
}

}  // namespace
}  // namespace setint
