// Tests for the protocol planner: cost-model accuracy (within 2x of
// measured), budget handling, and end-to-end plan execution.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/planner.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

double measured_bits(const core::Plan& plan, std::uint64_t universe,
                     std::size_t k) {
  util::Rng wrng(k + plan.rounds_r);
  const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
  const auto proto = core::instantiate(plan);
  const core::RunResult r = proto->run(7, universe, p.s, p.t);
  return static_cast<double>(r.cost.bits_total);
}

TEST(Planner, EstimatesWithinFactorTwoOfMeasurement) {
  for (std::size_t k : {256u, 4096u, 32768u}) {
    for (std::uint64_t log_n : {24u, 40u}) {
      core::PlannerQuery query;
      query.universe = std::uint64_t{1} << log_n;
      query.k = k;
      for (const core::Plan& plan : core::enumerate_plans(query)) {
        const double measured = measured_bits(plan, query.universe, k);
        EXPECT_LT(plan.estimated_bits, measured * 2.0)
            << plan.description << " k=" << k << " n=2^" << log_n;
        EXPECT_GT(plan.estimated_bits, measured / 2.0)
            << plan.description << " k=" << k << " n=2^" << log_n;
      }
    }
  }
}

TEST(Planner, PicksDeterministicForSmallUniverses) {
  core::PlannerQuery query;
  query.universe = 1u << 16;
  query.k = 4096;  // n/k = 16: shipping the set costs ~6 bits/element
  const core::Plan plan = core::choose_plan(query);
  EXPECT_EQ(plan.kind, core::PlanKind::kDeterministicExchange);
}

TEST(Planner, PicksRandomizedForHugeUniverses) {
  core::PlannerQuery query;
  query.universe = std::uint64_t{1} << 60;
  query.k = 4096;
  const core::Plan plan = core::choose_plan(query);
  EXPECT_NE(plan.kind, core::PlanKind::kDeterministicExchange);
}

TEST(Planner, RespectsRoundBudget) {
  core::PlannerQuery query;
  query.universe = std::uint64_t{1} << 60;
  query.k = 4096;
  query.round_budget = 2;
  const core::Plan plan = core::choose_plan(query);
  EXPECT_LE(plan.estimated_rounds, 2u);
  // With only 2 rounds, the options are deterministic or one-round hash.
  EXPECT_TRUE(plan.kind == core::PlanKind::kDeterministicExchange ||
              plan.kind == core::PlanKind::kOneRoundHash);
}

TEST(Planner, UnlimitedBudgetOffersEverything) {
  core::PlannerQuery query;
  query.universe = 1u << 30;
  query.k = 1024;
  const auto plans = core::enumerate_plans(query);
  EXPECT_GE(plans.size(), 5u);
  // Sorted by estimated bits.
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].estimated_bits, plans[i].estimated_bits);
  }
}

TEST(Planner, ChosenPlanRunsAndIsExact) {
  for (std::uint64_t log_n : {16u, 30u, 50u}) {
    core::PlannerQuery query;
    query.universe = std::uint64_t{1} << log_n;
    query.k = 512;
    const core::Plan plan = core::choose_plan(query);
    util::Rng wrng(log_n);
    const util::SetPair p =
        util::random_set_pair(wrng, query.universe, query.k, query.k / 2);
    const auto proto = core::instantiate(plan);
    const core::RunResult r = proto->run(3, query.universe, p.s, p.t);
    EXPECT_EQ(r.output.alice, p.expected_intersection) << plan.description;
  }
}

TEST(Planner, RejectsMalformedQueries) {
  EXPECT_THROW(core::choose_plan({}), std::invalid_argument);
  core::PlannerQuery impossible;
  impossible.universe = 1u << 20;
  impossible.k = 64;
  impossible.round_budget = 1;  // nothing finishes in one round
  EXPECT_THROW(core::choose_plan(impossible), std::invalid_argument);
}

TEST(Planner, PlansCarryTheDispatchedKernelTier) {
  core::PlannerQuery query;
  query.universe = std::uint64_t{1} << 24;
  query.k = 4096;
  for (const core::Plan& plan : core::enumerate_plans(query)) {
    EXPECT_EQ(plan.kernel_tier, simd::active_tier()) << plan.description;
    EXPECT_GT(plan.estimated_local_ns, 0.0) << plan.description;
  }
}

TEST(Planner, LocalCostKnowsTheKernelTier) {
  core::PlannerQuery query;
  query.universe = std::uint64_t{1} << 24;
  query.k = 4096;
  for (const core::PlanKind kind :
       {core::PlanKind::kDeterministicExchange, core::PlanKind::kOneRoundHash,
        core::PlanKind::kToyBuckets, core::PlanKind::kBucketEq,
        core::PlanKind::kVerificationTree}) {
    const double scalar_ns =
        core::estimate_local_ns(kind, query, /*rounds_r=*/3,
                                simd::Tier::kScalar);
    const double sse41_ns =
        core::estimate_local_ns(kind, query, 3, simd::Tier::kSse41);
    const double avx2_ns =
        core::estimate_local_ns(kind, query, 3, simd::Tier::kAvx2);
    // Monotone down the ladder: a wider tier is never priced higher.
    EXPECT_GE(scalar_ns, sse41_ns) << static_cast<int>(kind);
    EXPECT_GE(sse41_ns, avx2_ns) << static_cast<int>(kind);
    // The intersection-bearing protocols genuinely get cheaper on AVX2;
    // hash lanes default-route to the batched scalar pipeline on every
    // tier (measured crossover — see simd/kernels.cc), so purely
    // hash-bound kinds price the same up and down the ladder.
    if (kind == core::PlanKind::kBucketEq ||
        kind == core::PlanKind::kVerificationTree) {
      EXPECT_EQ(scalar_ns, avx2_ns) << static_cast<int>(kind);
    } else {
      EXPECT_GT(scalar_ns, avx2_ns) << static_cast<int>(kind);
    }
  }
}

TEST(Planner, KernelTierBreaksBitTies) {
  // estimate_local_ns is part of the sort key (after bits): the ordering
  // produced by enumerate_plans must be non-decreasing in bits, and
  // within equal bits non-decreasing in local cost.
  core::PlannerQuery query;
  query.universe = std::uint64_t{1} << 30;
  query.k = 1024;
  const auto plans = core::enumerate_plans(query);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    const bool bits_ordered =
        plans[i - 1].estimated_bits < plans[i].estimated_bits;
    const bool tie_ordered =
        plans[i - 1].estimated_bits == plans[i].estimated_bits &&
        plans[i - 1].estimated_local_ns <= plans[i].estimated_local_ns;
    EXPECT_TRUE(bits_ordered || tie_ordered) << i;
  }
}

}  // namespace
}  // namespace setint
