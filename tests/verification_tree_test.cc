// Tests for the main protocol (Algorithm 1 / Theorems 1.1, 3.6): layout
// construction, exactness across (k, r, overlap) sweeps, the always-true
// superset invariant, round bounds, diagnostics, stress with hostile
// parameters, and the worst-case fallback.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- tree layout ----------

TEST(TreeLayout, PartitionsAreNestedAndComplete) {
  for (std::size_t leaves : {1u, 2u, 7u, 64u, 1000u, 4096u}) {
    for (int r : {1, 2, 3, 4, 6}) {
      const auto layout = core::verification_tree_layout(leaves, r);
      ASSERT_EQ(layout.size(), static_cast<std::size_t>(r) + 1);
      // Root covers everything.
      ASSERT_EQ(layout.back().size(), 1u);
      EXPECT_EQ(layout.back()[0].first, 0u);
      EXPECT_EQ(layout.back()[0].second, leaves);
      // Level 0 is the singletons.
      ASSERT_EQ(layout[0].size(), leaves);
      for (std::size_t i = 0; i < leaves; ++i) {
        EXPECT_EQ(layout[0][i].first, i);
        EXPECT_EQ(layout[0][i].second, i + 1);
      }
      // Each level partitions [0, leaves) and nests inside the next.
      for (std::size_t lvl = 0; lvl + 1 < layout.size(); ++lvl) {
        std::size_t cursor = 0;
        std::size_t parent = 0;
        for (const auto& [lo, hi] : layout[lvl]) {
          EXPECT_EQ(lo, cursor);
          EXPECT_LT(lo, hi);
          cursor = hi;
          while (layout[lvl + 1][parent].second <= lo) ++parent;
          EXPECT_GE(lo, layout[lvl + 1][parent].first);
          EXPECT_LE(hi, layout[lvl + 1][parent].second);
        }
        EXPECT_EQ(cursor, leaves);
      }
    }
  }
}

TEST(TreeLayout, CoverSizesFollowIteratedLog) {
  const std::size_t k = 4096;
  const int r = 4;
  const auto layout = core::verification_tree_layout(k, r);
  // Level-i nodes cover ~log^(r-i) k leaves.
  for (int i = 1; i < r; ++i) {
    const double expect = util::iterated_log(r - i, static_cast<double>(k));
    const auto& ranges = layout[static_cast<std::size_t>(i)];
    const double avg = static_cast<double>(k) / static_cast<double>(ranges.size());
    EXPECT_NEAR(avg, expect, expect * 0.8 + 1.5) << "level " << i;
  }
}

TEST(TreeLayout, RejectsBadArguments) {
  EXPECT_THROW(core::verification_tree_layout(0, 2), std::invalid_argument);
  EXPECT_THROW(core::verification_tree_layout(8, 0), std::invalid_argument);
}

// ---------- protocol correctness ----------

struct TreeCase {
  std::size_t k;
  double alpha;  // intersection fraction
  int r;         // 0 = auto (log* k)
};

class TreeProtocol : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeProtocol, ComputesExactIntersection) {
  const TreeCase c = GetParam();
  util::Rng wrng(c.k + static_cast<std::uint64_t>(c.alpha * 100) + c.r);
  const auto shared_count =
      static_cast<std::size_t>(c.alpha * static_cast<double>(c.k));
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 30, c.k, shared_count);

  core::VerificationTreeParams params;
  params.rounds_r = c.r;
  int exact = 0;
  const int trials = 5;
  for (int trial = 0; trial < trials; ++trial) {
    sim::SharedRandomness shared(1000u * c.k + static_cast<std::uint64_t>(trial));
    sim::Channel ch;
    const core::IntersectionOutput out = core::verification_tree_intersection(
        ch, shared, trial, std::uint64_t{1} << 30, p.s, p.t, params);
    // Invariant (always): outputs are supersets of the truth.
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.alice));
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.bob));
    // And subsets of own input.
    EXPECT_TRUE(util::is_subset(out.alice, p.s));
    EXPECT_TRUE(util::is_subset(out.bob, p.t));
    exact += (out.alice == p.expected_intersection &&
              out.bob == p.expected_intersection);
  }
  EXPECT_EQ(exact, trials);  // 1 - 1/poly(k) success at these sizes
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeProtocol,
    ::testing::Values(TreeCase{2, 0.5, 0}, TreeCase{8, 0.0, 0},
                      TreeCase{8, 1.0, 0}, TreeCase{64, 0.5, 2},
                      TreeCase{64, 0.5, 3}, TreeCase{256, 0.25, 0},
                      TreeCase{256, 1.0, 2}, TreeCase{1024, 0.0, 3},
                      TreeCase{1024, 0.9, 4}, TreeCase{1024, 0.5, 6},
                      TreeCase{4096, 0.5, 0}, TreeCase{4096, 0.75, 2}));

TEST(TreeProtocolEdge, EmptySets) {
  sim::SharedRandomness shared(1);
  sim::Channel ch;
  const core::IntersectionOutput out = core::verification_tree_intersection(
      ch, shared, 0, 1000, util::Set{}, util::Set{}, {});
  EXPECT_TRUE(out.alice.empty());
  EXPECT_TRUE(out.bob.empty());
}

TEST(TreeProtocolEdge, OneSideEmpty) {
  sim::SharedRandomness shared(2);
  sim::Channel ch;
  const core::IntersectionOutput out = core::verification_tree_intersection(
      ch, shared, 0, 1000, util::Set{1, 2, 3}, util::Set{}, {});
  EXPECT_TRUE(out.alice.empty());
  EXPECT_TRUE(out.bob.empty());
}

TEST(TreeProtocolEdge, IdenticalSets) {
  sim::SharedRandomness shared(3);
  sim::Channel ch;
  const util::Set s{10, 20, 30, 40, 50};
  const core::IntersectionOutput out =
      core::verification_tree_intersection(ch, shared, 0, 1000, s, s, {});
  EXPECT_EQ(out.alice, s);
  EXPECT_EQ(out.bob, s);
}

TEST(TreeProtocolEdge, SingletonSets) {
  sim::SharedRandomness shared(4);
  {
    sim::Channel ch;
    const auto out = core::verification_tree_intersection(
        ch, shared, 0, 100, util::Set{7}, util::Set{7}, {});
    EXPECT_EQ(out.alice, (util::Set{7}));
  }
  {
    sim::Channel ch;
    const auto out = core::verification_tree_intersection(
        ch, shared, 0, 100, util::Set{7}, util::Set{8}, {});
    EXPECT_TRUE(out.alice.empty());
    EXPECT_TRUE(out.bob.empty());
  }
}

TEST(TreeProtocolEdge, TinyUniverse) {
  sim::SharedRandomness shared(5);
  sim::Channel ch;
  const auto out = core::verification_tree_intersection(
      ch, shared, 0, 4, util::Set{0, 1, 2, 3}, util::Set{1, 3}, {});
  EXPECT_EQ(out.alice, (util::Set{1, 3}));
  EXPECT_EQ(out.bob, (util::Set{1, 3}));
}

TEST(TreeProtocolEdge, AsymmetricSizes) {
  util::Rng wrng(6);
  const util::Set big = util::random_set(wrng, 1u << 20, 500);
  const util::Set small{big[3], big[77], big[401]};
  sim::SharedRandomness shared(6);
  sim::Channel ch;
  const auto out = core::verification_tree_intersection(
      ch, shared, 0, 1u << 20, big, small, {});
  EXPECT_EQ(out.alice, small);
  EXPECT_EQ(out.bob, small);
}

TEST(TreeProtocol, RejectsInvalidInputs) {
  sim::SharedRandomness shared(7);
  sim::Channel ch;
  EXPECT_THROW(core::verification_tree_intersection(
                   ch, shared, 0, 10, util::Set{9, 2}, util::Set{}, {}),
               std::invalid_argument);
  EXPECT_THROW(core::verification_tree_intersection(
                   ch, shared, 0, 0, util::Set{}, util::Set{}, {}),
               std::invalid_argument);
  core::VerificationTreeParams bad;
  bad.rounds_r = -3;
  EXPECT_THROW(core::verification_tree_intersection(
                   ch, shared, 0, 100, util::Set{1}, util::Set{1}, bad),
               std::invalid_argument);
}

// ---------- round and cost accounting ----------

TEST(TreeProtocol, RoundsAtMostSixPerStage) {
  util::Rng wrng(8);
  for (int r : {2, 3, 4, 5}) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 512, 256);
    core::VerificationTreeParams params;
    params.rounds_r = r;
    sim::SharedRandomness shared(50 + static_cast<std::uint64_t>(r));
    sim::Channel ch;
    core::verification_tree_intersection(ch, shared, 0, 1u << 24, p.s, p.t,
                                         params);
    EXPECT_LE(ch.cost().rounds, static_cast<std::uint64_t>(6 * r)) << r;
  }
}

TEST(TreeProtocol, RoundOneDelegatesToHashExchange) {
  util::Rng wrng(9);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 256, 128);
  core::VerificationTreeParams params;
  params.rounds_r = 1;
  sim::SharedRandomness shared(9);
  sim::Channel ch;
  const auto out = core::verification_tree_intersection(ch, shared, 0,
                                                        1u << 24, p.s, p.t,
                                                        params);
  EXPECT_EQ(ch.cost().rounds, 2u);  // one message each way
  EXPECT_EQ(out.alice, p.expected_intersection);
}

TEST(TreeProtocol, DiagnosticsAreConsistent) {
  util::Rng wrng(10);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 1024, 512);
  core::VerificationTreeParams params;
  params.rounds_r = 3;
  core::VerificationTreeDiag diag;
  sim::SharedRandomness shared(10);
  sim::Channel ch;
  core::verification_tree_intersection(ch, shared, 0, 1u << 24, p.s, p.t,
                                       params, &diag);
  ASSERT_EQ(diag.stage_failures.size(), 3u);
  ASSERT_EQ(diag.stage_eq_bits.size(), 3u);
  ASSERT_EQ(diag.stage_bi_bits.size(), 3u);
  EXPECT_FALSE(diag.fallback_used);
  // Re-run totals match the per-leaf counters.
  std::uint64_t reruns = 0;
  for (std::uint32_t c : diag.leaf_reruns) reruns += c;
  EXPECT_EQ(reruns, diag.total_bi_runs);
  // Stage 0 compares raw buckets, so with 50% overlap most leaves fail.
  EXPECT_GT(diag.stage_failures[0], 200u);
  // Communication recorded in diag accounts for most of the channel bits.
  std::uint64_t diag_bits = 0;
  for (std::uint64_t b : diag.stage_eq_bits) diag_bits += b;
  for (std::uint64_t b : diag.stage_bi_bits) diag_bits += b;
  EXPECT_EQ(diag_bits, ch.cost().bits_total);
}

TEST(TreeProtocol, ExpectedConstantRerunsPerLeaf) {
  // Lemma 3.10: E[n_u] = O(1). Measure the average rerun count per leaf.
  util::Rng wrng(11);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 26, 4096, 2048);
  core::VerificationTreeDiag diag;
  sim::SharedRandomness shared(11);
  sim::Channel ch;
  core::verification_tree_intersection(ch, shared, 0, 1u << 26, p.s, p.t, {},
                                       &diag);
  const double avg = static_cast<double>(diag.total_bi_runs) / 4096.0;
  EXPECT_LT(avg, 2.0);
}

// ---------- hostile parameters / failure injection ----------

TEST(TreeProtocolStress, SupersetInvariantSurvivesSabotagedEqualityTests) {
  // Scale the equality hashes down to 1 bit: tests pass falsely all the
  // time, re-runs fire constantly — but the outputs must STILL be
  // supersets of the truth and subsets of the inputs (those hold with
  // probability 1), and the protocol must terminate.
  core::VerificationTreeParams hostile;
  hostile.rounds_r = 3;
  hostile.eq_bits_scale = 1e-9;  // floor: 1 bit per equality test
  util::Rng wrng(12);
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 22, 128, 64);
    sim::SharedRandomness shared(trial);
    sim::Channel ch;
    const auto out = core::verification_tree_intersection(
        ch, shared, trial, 1u << 22, p.s, p.t, hostile);
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.alice));
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.bob));
    EXPECT_TRUE(util::is_subset(out.alice, p.s));
    EXPECT_TRUE(util::is_subset(out.bob, p.t));
  }
}

TEST(TreeProtocolStress, SabotagedBasicIntersectionStillOneSided) {
  core::VerificationTreeParams hostile;
  hostile.rounds_r = 3;
  hostile.bi_range_scale = 1e-6;  // clamps hash failure target at 25%
  util::Rng wrng(13);
  int inexact = 0;
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 22, 128, 64);
    sim::SharedRandomness shared(100 + trial);
    sim::Channel ch;
    const auto out = core::verification_tree_intersection(
        ch, shared, trial, 1u << 22, p.s, p.t, hostile);
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.alice));
    EXPECT_TRUE(util::is_subset(out.alice, p.s));
    inexact += (out.alice != p.expected_intersection);
  }
  // With 25%-failure Basic-Intersection the later verification stages
  // still repair most runs; we only require the invariants above, but
  // sanity-check the repair machinery is doing something.
  EXPECT_LT(inexact, 20);
}

TEST(TreeProtocol, WorstCaseCutoffFallsBackToExactExchange) {
  core::VerificationTreeParams params;
  params.rounds_r = 3;
  params.worst_case_cutoff_factor = 0.0001;  // absurdly tight budget
  util::Rng wrng(14);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 22, 256, 128);
  core::VerificationTreeDiag diag;
  sim::SharedRandomness shared(14);
  sim::Channel ch;
  const auto out = core::verification_tree_intersection(
      ch, shared, 0, 1u << 22, p.s, p.t, params, &diag);
  EXPECT_TRUE(diag.fallback_used);
  EXPECT_EQ(out.alice, p.expected_intersection);  // fallback is exact
  EXPECT_EQ(out.bob, p.expected_intersection);
}

TEST(TreeProtocol, ExplicitBucketCountsStayExact) {
  // The bucket count is a free parameter (the paper uses k); off-default
  // values trade constants but never correctness.
  util::Rng wrng(21);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 512, 256);
  for (std::size_t buckets : {64u, 128u, 2048u, 8192u}) {
    core::VerificationTreeParams params;
    params.rounds_r = 3;
    params.bucket_count = buckets;
    sim::SharedRandomness shared(buckets);
    sim::Channel ch;
    const auto out = core::verification_tree_intersection(
        ch, shared, 0, 1u << 24, p.s, p.t, params);
    EXPECT_EQ(out.alice, p.expected_intersection) << buckets;
    EXPECT_EQ(out.bob, p.expected_intersection) << buckets;
  }
}

TEST(TreeProtocol, DeterministicGivenSeeds) {
  util::Rng wrng(15);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 22, 256, 128);
  sim::SharedRandomness shared(15);
  sim::Channel ch1(/*record_transcript=*/true);
  sim::Channel ch2(/*record_transcript=*/true);
  core::verification_tree_intersection(ch1, shared, 0, 1u << 22, p.s, p.t, {});
  core::verification_tree_intersection(ch2, shared, 0, 1u << 22, p.s, p.t, {});
  EXPECT_EQ(ch1.transcript()->digest(), ch2.transcript()->digest());
  EXPECT_EQ(ch1.cost().bits_total, ch2.cost().bits_total);
}

TEST(TreeProtocol, FreshNoncesChangeTranscript) {
  util::Rng wrng(16);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 22, 256, 128);
  sim::SharedRandomness shared(16);
  sim::Channel ch1(/*record_transcript=*/true);
  sim::Channel ch2(/*record_transcript=*/true);
  core::verification_tree_intersection(ch1, shared, 1, 1u << 22, p.s, p.t, {});
  core::verification_tree_intersection(ch2, shared, 2, 1u << 22, p.s, p.t, {});
  EXPECT_NE(ch1.transcript()->digest(), ch2.transcript()->digest());
}

// ---------- polymorphic wrapper ----------

TEST(TreeProtocolWrapper, RunsAndNames) {
  core::VerificationTreeParams params;
  params.rounds_r = 2;
  const core::VerificationTreeProtocol proto(params);
  EXPECT_EQ(proto.name(), "verification-tree[r=2]");
  EXPECT_EQ(core::VerificationTreeProtocol{}.name(),
            "verification-tree[r=log*k]");
  util::Rng wrng(17);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 20, 64, 32);
  const core::RunResult r = proto.run(17, 1u << 20, p.s, p.t);
  EXPECT_EQ(r.output.alice, p.expected_intersection);
  EXPECT_GT(r.cost.bits_total, 0u);
}

}  // namespace
}  // namespace setint
