// Tests for the Theorem 3.1 protocol: bucketed amortized equality.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/bucket_eq.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

struct Case {
  std::size_t k;
  std::size_t shared;
};

class BucketEq : public ::testing::TestWithParam<Case> {};

TEST_P(BucketEq, ComputesExactIntersection) {
  const Case c = GetParam();
  util::Rng wrng(c.k * 7 + c.shared);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 30, c.k, c.shared);
  sim::SharedRandomness shared(c.k + 99);
  sim::Channel ch;
  const core::IntersectionOutput out = core::bucket_eq_intersection(
      ch, shared, 0, std::uint64_t{1} << 30, p.s, p.t);
  EXPECT_EQ(out.alice, p.expected_intersection);
  EXPECT_EQ(out.bob, p.expected_intersection);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BucketEq,
                         ::testing::Values(Case{1, 0}, Case{1, 1},
                                           Case{16, 8}, Case{64, 0},
                                           Case{64, 64}, Case{256, 128},
                                           Case{1024, 512},
                                           Case{1024, 1023}));

TEST(BucketEqStats, InstanceCountNearSixK) {
  // Theorem 3.1 equation (1): E[|E|] <= 6k. Measure it.
  util::Rng wrng(5);
  double total_instances = 0;
  const int trials = 10;
  const std::size_t k = 1024;
  for (int trial = 0; trial < trials; ++trial) {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
    sim::SharedRandomness shared(static_cast<std::uint64_t>(trial));
    sim::Channel ch;
    core::BucketEqStats stats;
    core::bucket_eq_intersection(ch, shared, 0, std::uint64_t{1} << 30, p.s,
                                 p.t, 3, &stats);
    total_instances += static_cast<double>(stats.instances);
  }
  const double avg = total_instances / trials;
  EXPECT_LT(avg, 6.0 * static_cast<double>(k));
  EXPECT_GT(avg, 0.5 * static_cast<double>(k));
}

TEST(BucketEq, CommunicationScalesLinearlyInK) {
  util::Rng wrng(6);
  double rate_small = 0;
  double rate_large = 0;
  {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, 256, 128);
    sim::SharedRandomness shared(1);
    sim::Channel ch;
    core::bucket_eq_intersection(ch, shared, 0, std::uint64_t{1} << 30, p.s,
                                 p.t);
    rate_small = static_cast<double>(ch.cost().bits_total) / 256;
  }
  {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, 4096, 2048);
    sim::SharedRandomness shared(2);
    sim::Channel ch;
    core::bucket_eq_intersection(ch, shared, 0, std::uint64_t{1} << 30, p.s,
                                 p.t);
    rate_large = static_cast<double>(ch.cost().bits_total) / 4096;
  }
  EXPECT_LT(rate_large, rate_small * 2.0);
}

TEST(BucketEq, OutputsAreSubsetsOfInputs) {
  util::Rng wrng(7);
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 24, 128, 32);
    sim::SharedRandomness shared(trial);
    sim::Channel ch;
    const auto out = core::bucket_eq_intersection(
        ch, shared, trial, std::uint64_t{1} << 24, p.s, p.t);
    EXPECT_TRUE(util::is_subset(out.alice, p.s));
    EXPECT_TRUE(util::is_subset(out.bob, p.t));
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.alice));
  }
}

TEST(BucketEq, EmptyAndDegenerate) {
  sim::SharedRandomness shared(8);
  {
    sim::Channel ch;
    const auto out = core::bucket_eq_intersection(ch, shared, 0, 100,
                                                  util::Set{}, util::Set{});
    EXPECT_TRUE(out.alice.empty());
  }
  {
    sim::Channel ch;
    const auto out = core::bucket_eq_intersection(
        ch, shared, 0, 100, util::Set{5}, util::Set{});
    EXPECT_TRUE(out.alice.empty());
    EXPECT_TRUE(out.bob.empty());
  }
  {
    sim::Channel ch;
    const auto out = core::bucket_eq_intersection(
        ch, shared, 0, 100, util::Set{5, 6}, util::Set{5, 6});
    EXPECT_EQ(out.alice, (util::Set{5, 6}));
  }
}

TEST(BucketEq, RejectsBadStrength) {
  sim::SharedRandomness shared(9);
  sim::Channel ch;
  EXPECT_THROW(core::bucket_eq_intersection(ch, shared, 0, 100, util::Set{1},
                                            util::Set{1}, 2),
               std::invalid_argument);
}

TEST(BucketEqWrapper, RunInterface) {
  const core::BucketEqProtocol proto;
  EXPECT_EQ(proto.name(), "bucket-eq[FKNN]");
  util::Rng wrng(10);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 20, 64, 32);
  const core::RunResult r = proto.run(10, 1u << 20, p.s, p.t);
  EXPECT_EQ(r.output.alice, p.expected_intersection);
}

}  // namespace
}  // namespace setint
