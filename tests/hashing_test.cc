// Tests for the hashing substrate: modular arithmetic, Miller-Rabin,
// random primes, the Carter-Wegman pairwise family, FKS compression, and
// GF(2) mask hashing.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "hashing/barrett.h"
#include "hashing/fks.h"
#include "hashing/mask_hash.h"
#include "hashing/modmath.h"
#include "hashing/pairwise.h"
#include "hashing/primes.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- modular arithmetic ----------

TEST(ModMath, MulmodSmall) {
  EXPECT_EQ(hashing::mulmod(7, 8, 13), 56 % 13);
  EXPECT_EQ(hashing::mulmod(0, 123, 7), 0u);
  EXPECT_EQ(hashing::mulmod(12, 12, 13), 144 % 13);
}

TEST(ModMath, MulmodLargeOperands) {
  const std::uint64_t p = 0xffff'ffff'ffff'ffc5ull;  // largest 64-bit prime
  // (p-1)^2 mod p == 1.
  EXPECT_EQ(hashing::mulmod(p - 1, p - 1, p), 1u);
  EXPECT_EQ(hashing::mulmod(p - 1, 2, p), p - 2);
}

TEST(ModMath, AddmodWrapsWithoutOverflow) {
  const std::uint64_t m = ~std::uint64_t{0} - 1;
  EXPECT_EQ(hashing::addmod(m - 1, m - 1, m), m - 2);
  EXPECT_EQ(hashing::addmod(5, 6, 7), 4u);
}

TEST(ModMath, PowmodMatchesFermat) {
  // a^(p-1) = 1 mod p for prime p, a not divisible by p.
  for (std::uint64_t p : {13ull, 104729ull, 2147483647ull}) {
    for (std::uint64_t a : {2ull, 3ull, 12345ull}) {
      EXPECT_EQ(hashing::powmod(a, p - 1, p), 1u) << a << " " << p;
    }
  }
  EXPECT_EQ(hashing::powmod(2, 10, 1), 0u);
  EXPECT_THROW(hashing::powmod(2, 2, 0), std::invalid_argument);
}

// ---------- primality ----------

TEST(Primes, AgreesWithSieveUpTo100000) {
  const int limit = 100000;
  std::vector<bool> sieve(limit, true);
  sieve[0] = sieve[1] = false;
  for (int i = 2; i * i < limit; ++i) {
    if (sieve[static_cast<std::size_t>(i)]) {
      for (int j = i * i; j < limit; j += i) {
        sieve[static_cast<std::size_t>(j)] = false;
      }
    }
  }
  for (int i = 0; i < limit; ++i) {
    ASSERT_EQ(hashing::is_prime(static_cast<std::uint64_t>(i)),
              sieve[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(Primes, KnownCarmichaelNumbersAreComposite) {
  for (std::uint64_t c : {561ull, 1105ull, 1729ull, 2465ull, 6601ull,
                          8911ull, 825265ull, 321197185ull}) {
    EXPECT_FALSE(hashing::is_prime(c)) << c;
  }
}

TEST(Primes, KnownLargePrimes) {
  EXPECT_TRUE(hashing::is_prime(2147483647ull));            // 2^31 - 1
  EXPECT_TRUE(hashing::is_prime(2305843009213693951ull));   // 2^61 - 1
  EXPECT_TRUE(hashing::is_prime(0xffff'ffff'ffff'ffc5ull));
  EXPECT_FALSE(hashing::is_prime(2305843009213693951ull * 3));
}

TEST(Primes, NextPrimeAtLeast) {
  EXPECT_EQ(hashing::next_prime_at_least(0), 2u);
  EXPECT_EQ(hashing::next_prime_at_least(2), 2u);
  EXPECT_EQ(hashing::next_prime_at_least(3), 3u);
  EXPECT_EQ(hashing::next_prime_at_least(4), 5u);
  EXPECT_EQ(hashing::next_prime_at_least(90), 97u);
}

TEST(Primes, RandomPrimeInRange) {
  util::Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t p = hashing::random_prime_in(rng, 1000, 2000);
    EXPECT_GE(p, 1000u);
    EXPECT_LT(p, 2000u);
    EXPECT_TRUE(hashing::is_prime(p));
  }
  EXPECT_THROW(hashing::random_prime_in(rng, 10, 10), std::invalid_argument);
  EXPECT_THROW(hashing::random_prime_in(rng, 24, 29), std::invalid_argument);
}

// ---------- pairwise hashing ----------

TEST(PairwiseHash, OutputsInRange) {
  util::Rng rng(5);
  const auto h = hashing::PairwiseHash::sample(rng, 1u << 20, 97);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(h(rng.below(1u << 20)), 97u);
  }
}

TEST(PairwiseHash, DeterministicForFixedSeedStream) {
  util::Rng r1(5);
  util::Rng r2(5);
  const auto h1 = hashing::PairwiseHash::sample(r1, 1u << 20, 1024);
  const auto h2 = hashing::PairwiseHash::sample(r2, 1u << 20, 1024);
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h1(x), h2(x));
}

TEST(PairwiseHash, EmpiricalCollisionRateNearPairwiseBound) {
  // For random distinct pairs, collisions should occur at rate about
  // collision_probability() (<= 2/t); allow generous slack.
  util::Rng rng(13);
  const std::uint64_t range = 256;
  int collisions = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    auto h = hashing::PairwiseHash::sample(rng, 1u << 30, range);
    const std::uint64_t x = rng.below(1u << 30);
    std::uint64_t y = rng.below(1u << 30);
    if (y == x) y = (y + 1) % (1u << 30);
    collisions += (h(x) == h(y));
  }
  const double rate = static_cast<double>(collisions) / trials;
  EXPECT_LT(rate, 3.0 / static_cast<double>(range));
}

TEST(PairwiseHash, RoughlyUniformOverRange) {
  util::Rng rng(19);
  const auto h = hashing::PairwiseHash::sample(rng, 1u << 24, 16);
  std::vector<int> counts(16, 0);
  const int trials = 64000;
  for (int i = 0; i < trials; ++i) {
    counts[h(rng.below(1u << 24))]++;
  }
  for (int c : counts) EXPECT_NEAR(c, trials / 16, trials / 80);
}

TEST(PairwiseHash, SeedRoundtrip) {
  util::Rng rng(7);
  const auto h = hashing::PairwiseHash::sample(rng, 1u << 22, 555);
  util::BitBuffer buf;
  h.append_seed(buf);
  EXPECT_EQ(buf.size_bits(), h.seed_bits());
  util::BitReader reader(buf);
  const auto h2 = hashing::PairwiseHash::read_seed(reader, 555);
  for (std::uint64_t x = 0; x < 2000; x += 7) EXPECT_EQ(h(x), h2(x));
}

TEST(PairwiseHash, RejectsBadParameters) {
  util::Rng rng(7);
  EXPECT_THROW(hashing::PairwiseHash::sample(rng, 100, 0),
               std::invalid_argument);
}

// ---------- FKS compression ----------

TEST(Fks, InjectiveOnSmallSetsWithHighProbability) {
  util::Rng rng(3);
  int failures = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const util::Set s = util::random_set(rng, std::uint64_t{1} << 40, 64);
    const auto fks =
        hashing::FksCompressor::sample(rng, std::uint64_t{1} << 40, 64);
    failures += !fks.injective_on(s);
  }
  // Strength 3 with 64 elements: failure well below 1/64 per trial.
  EXPECT_LE(failures, 3);
}

TEST(Fks, RangeIsPolynomiallySmall) {
  util::Rng rng(3);
  const std::uint64_t universe = std::uint64_t{1} << 40;
  const auto fks = hashing::FksCompressor::sample(rng, universe, 64);
  // q ~ O(k^3 log^2 n) << n.
  EXPECT_LT(fks.range(), universe >> 8);
  EXPECT_GT(fks.range(), std::uint64_t{64} * 64 * 64);
}

TEST(Fks, DetectsCollisions) {
  util::Rng rng(9);
  const auto fks = hashing::FksCompressor::sample(rng, 1u << 20, 4);
  const std::uint64_t q = fks.range();
  const util::Set colliding{5, 5 + q};
  EXPECT_FALSE(fks.injective_on(colliding));
}

TEST(Fks, SeedRoundtrip) {
  util::Rng rng(9);
  const auto fks = hashing::FksCompressor::sample(rng, 1u << 20, 16);
  util::BitBuffer buf;
  fks.append_seed(buf);
  EXPECT_EQ(buf.size_bits(), fks.seed_bits());
  util::BitReader reader(buf);
  const auto fks2 = hashing::FksCompressor::read_seed(reader);
  EXPECT_EQ(fks.range(), fks2.range());
}

TEST(Fks, SeedCostIsLogarithmic) {
  // O(log k + log log n) bits: tiny even for a 2^60 universe.
  util::Rng rng(9);
  const auto fks =
      hashing::FksCompressor::sample(rng, std::uint64_t{1} << 60, 256);
  EXPECT_LT(fks.seed_bits(), 100u);
}

// ---------- mask hashing ----------

TEST(MaskHash, EqualInputsAlwaysHashEqual) {
  util::Rng stream(42);
  util::BitBuffer a;
  a.append_bits(0xdeadbeef, 32);
  util::BitBuffer b;
  b.append_bits(0xdeadbeef, 32);
  for (int i = 0; i < 50; ++i) {
    util::Rng s = stream.substream(i);
    EXPECT_EQ(hashing::mask_hash(a, 16, s), hashing::mask_hash(b, 16, s));
  }
}

TEST(MaskHash, UnequalInputsDisagreePerBitAboutHalfTheTime) {
  util::Rng stream(42);
  util::BitBuffer a;
  a.append_bits(0x1111, 16);
  util::BitBuffer b;
  b.append_bits(0x1112, 16);
  int disagreements = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    util::Rng s = stream.substream(i);
    disagreements +=
        (hashing::mask_hash(a, 1, s) != hashing::mask_hash(b, 1, s));
  }
  EXPECT_NEAR(disagreements, trials / 2, trials / 10);
}

TEST(MaskHash, MultiBitCollisionRateIsGeometric) {
  util::Rng stream(7);
  util::BitBuffer a;
  a.append_bits(123456, 24);
  util::BitBuffer b;
  b.append_bits(654321, 24);
  const unsigned bits = 6;  // expected collision rate 1/64
  int collisions = 0;
  const int trials = 64000;
  for (int i = 0; i < trials; ++i) {
    util::Rng s = stream.substream(i);
    collisions +=
        (hashing::mask_hash(a, bits, s) == hashing::mask_hash(b, bits, s));
  }
  EXPECT_NEAR(collisions, trials / 64, trials / 200);
}

TEST(MaskHash, PrefixInputsStillSeparate) {
  // One message a strict bit-prefix of the other (same leading content).
  util::Rng stream(21);
  util::BitBuffer a;
  a.append_bits(0xff, 8);
  util::BitBuffer b;
  b.append_bits(0xff, 8);
  b.append_bit(false);
  int collisions = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    util::Rng s = stream.substream(i);
    collisions +=
        (hashing::mask_hash(a, 8, s) == hashing::mask_hash(b, 8, s));
  }
  EXPECT_LT(collisions, trials / 50);
}

TEST(MaskHash, WideMatchesRequestedWidth) {
  util::Rng stream(33);
  util::BitBuffer data;
  data.append_bits(0xabcdef, 24);
  for (std::size_t bits : {1u, 63u, 64u, 65u, 130u, 200u}) {
    util::BitBuffer out;
    hashing::mask_hash_wide(data, bits, stream, out);
    EXPECT_EQ(out.size_bits(), bits);
  }
}

TEST(MaskHash, WideIsDeterministicAndContentSensitive) {
  util::Rng stream(33);
  util::BitBuffer d1;
  d1.append_bits(111, 32);
  util::BitBuffer d2;
  d2.append_bits(222, 32);
  util::BitBuffer o1;
  util::BitBuffer o1again;
  util::BitBuffer o2;
  hashing::mask_hash_wide(d1, 100, stream, o1);
  hashing::mask_hash_wide(d1, 100, stream, o1again);
  hashing::mask_hash_wide(d2, 100, stream, o2);
  EXPECT_TRUE(o1 == o1again);
  EXPECT_FALSE(o1 == o2);
}

TEST(MaskHash, RejectsOverwideSingle) {
  util::BitBuffer data;
  util::Rng stream(1);
  EXPECT_THROW(hashing::mask_hash(data, 65, stream), std::invalid_argument);
}

// --- The division-free reduction engine (hashing/barrett.h) -----------------
// Exactness over the full 64-bit domain is the whole contract: these
// reducers replace `%` inside hash evaluation, and golden transcripts pin
// that the replacement changes no computed value.

TEST(Reducer64, MatchesHardwareRemainderRandomized) {
  util::Rng rng(0xbad5eed);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint64_t d = rng.next() | 1;  // random odd divisor
    const std::uint64_t a = rng.next();
    const hashing::Reducer64 red(d);
    ASSERT_EQ(red.mod(a), a % d) << "a=" << a << " d=" << d;
  }
}

TEST(Reducer64, EdgeDivisorsAndValues) {
  const std::uint64_t max64 = ~std::uint64_t{0};
  const std::uint64_t divisors[] = {1,       2,        3,          4,
                                    5,       (1u << 16), (1ull << 32), (1ull << 62),
                                    max64 - 1, max64};
  const std::uint64_t values[] = {0, 1, 2, 3, (1ull << 32) - 1, (1ull << 32),
                                  (1ull << 63), max64 - 1, max64};
  for (std::uint64_t d : divisors) {
    const hashing::Reducer64 red(d);
    for (std::uint64_t a : values) {
      ASSERT_EQ(red.mod(a), a % d) << "a=" << a << " d=" << d;
    }
  }
}

TEST(Reducer64, RejectsZeroDivisor) {
  EXPECT_THROW(hashing::Reducer64(0), std::invalid_argument);
}

TEST(Montgomery64, MulMatchesMulmodRandomized) {
  util::Rng rng(0x5ca1ab1e);
  for (int trial = 0; trial < 20000; ++trial) {
    // Random odd modulus in [3, 2^63).
    const std::uint64_t m = (rng.below((std::uint64_t{1} << 62) - 2) * 2) + 3;
    const std::uint64_t a = rng.below(m);
    const std::uint64_t b = rng.below(m);
    const hashing::Montgomery64 mont(m);
    // Mixed-domain product: mul(to_mont(a), b) == a*b mod m.
    const std::uint64_t am = mont.to_mont(a);
    ASSERT_EQ(mont.mul(am, b), hashing::mulmod(a, b, m))
        << "a=" << a << " b=" << b << " m=" << m;
    ASSERT_EQ(mont.from_mont(am), a);
  }
}

TEST(Montgomery64, RejectsUnusableModuli) {
  EXPECT_THROW(hashing::Montgomery64(0), std::invalid_argument);
  EXPECT_THROW(hashing::Montgomery64(1), std::invalid_argument);
  EXPECT_THROW(hashing::Montgomery64(4), std::invalid_argument);  // even
  EXPECT_THROW(hashing::Montgomery64(std::uint64_t{1} << 63),
               std::invalid_argument);
}

TEST(PairwiseHash, EngineMatchesPlainFormula) {
  util::Rng rng(7331);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t universe = 2 + rng.below(std::uint64_t{1} << 40);
    const std::uint64_t range = 2 + rng.below(1u << 20);
    const auto h = hashing::PairwiseHash::sample(rng, universe, range);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t x = rng.below(universe);
      const std::uint64_t p = h.prime();
      const std::uint64_t expected =
          (hashing::mulmod(h.multiplier(), x % p, p) + h.offset()) % p %
          h.range();
      ASSERT_EQ(h(x), expected) << "x=" << x << " p=" << p;
    }
  }
}

// --- The next-prime memo (hashing/primes.h) ---------------------------------

TEST(PrimeCache, WarmLookupsHitAndAgree) {
  hashing::prime_cache_clear();
  const auto before = hashing::prime_cache_stats();
  EXPECT_EQ(before.entries, 0u);
  EXPECT_EQ(before.hits, 0u);

  util::Rng rng(99);
  std::vector<std::uint64_t> candidates(64);
  for (auto& c : candidates) c = 100 + rng.below(1u << 26);

  std::vector<std::uint64_t> cold;
  for (std::uint64_t c : candidates) {
    cold.push_back(hashing::next_prime_at_least(c));
  }
  const auto after_cold = hashing::prime_cache_stats();
  EXPECT_EQ(after_cold.misses, candidates.size());
  EXPECT_EQ(after_cold.entries, candidates.size());

  std::vector<std::uint64_t> warm;
  for (std::uint64_t c : candidates) {
    warm.push_back(hashing::next_prime_at_least(c));
  }
  EXPECT_EQ(warm, cold);
  const auto after_warm = hashing::prime_cache_stats();
  EXPECT_EQ(after_warm.hits, candidates.size());
  EXPECT_EQ(after_warm.entries, candidates.size());
}

TEST(PrimeCache, DoesNotChangeWhichPrimeASessionPicks) {
  // The satellite contract: caching must preserve seed-determinism of
  // WHICH prime a session samples — cold and warm runs of the same seeded
  // stream agree.
  hashing::prime_cache_clear();
  std::vector<std::uint64_t> cold_primes;
  {
    util::Rng rng(4242);
    for (int i = 0; i < 32; ++i) {
      cold_primes.push_back(
          hashing::random_prime_in(rng, 1u << 16, 1u << 22));
    }
  }
  std::vector<std::uint64_t> warm_primes;
  {
    util::Rng rng(4242);
    for (int i = 0; i < 32; ++i) {
      warm_primes.push_back(
          hashing::random_prime_in(rng, 1u << 16, 1u << 22));
    }
  }
  EXPECT_EQ(warm_primes, cold_primes);
}

}  // namespace
}  // namespace setint
