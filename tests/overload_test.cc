// Overload governance (core/budget.h, core/breaker.h): unit tests for
// the budget / backoff / pool / admission / breaker primitives, plus
// end-to-end degradation-ladder behavior through the facade and both
// multiparty variants.
//
// The load-bearing contracts (docs/ROBUSTNESS.md § overload governance):
//  - a session that never hits a budget runs bit-identically to one with
//    no budget installed (governance is free until it fires);
//  - budget exhaustion descends the ladder — flagged Lemma-3.3 superset,
//    input fallback, or an explicit refusal — never an unflagged wrong
//    answer;
//  - checkpoint-resumed sessions charge replayed bits against the budget
//    exactly once (the channel's monotonic counter IS the meter);
//  - the breaker stops retry spend on persistently dead links, the shared
//    pool bounds retry spend across a whole multiparty run, and admission
//    control sheds deterministically when the pool runs critical.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/breaker.h"
#include "core/budget.h"
#include "multiparty/coordinator.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

std::uint64_t counter_value(const obs::Tracer& tracer, std::string_view name) {
  const auto& counters = tracer.metrics().counters();
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second.value();
}

// ---------------------------------------------------------------------
// SessionBudget

TEST(Budget, DisabledSpecNeverTrips) {
  sim::CostStats cost;
  cost.bits_total = ~std::uint64_t{0};
  cost.rounds = ~std::uint64_t{0};
  core::SessionBudget budget({}, &cost);
  EXPECT_NO_THROW(budget.check());
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.reason(), core::BudgetDimension::kNone);
}

TEST(Budget, BitCapTripsStickilyWithDimension) {
  sim::CostStats cost;
  core::SessionBudgetSpec spec;
  spec.max_bits = 100;
  core::SessionBudget budget(spec, &cost);

  cost.bits_total = 100;  // at the cap: still fine (cap is inclusive)
  EXPECT_NO_THROW(budget.check());
  cost.bits_total = 101;
  EXPECT_THROW(budget.check(), core::BudgetExhaustedError);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.reason(), core::BudgetDimension::kBits);
  EXPECT_EQ(budget.bits_observed(), 101u);

  // Sticky: the budget keeps refusing with the original dimension even if
  // the observed spend later looks legal again.
  cost.bits_total = 0;
  try {
    budget.check();
    FAIL() << "sticky exhaustion must rethrow";
  } catch (const core::BudgetExhaustedError& e) {
    EXPECT_EQ(e.dimension, core::BudgetDimension::kBits);
  }
}

TEST(Budget, RepeatedChecksOfSameSpendChargeNothing) {
  // Exactly-once semantics at the unit level: the budget reads a
  // monotonic external counter, so observing the same spend N times is
  // not N charges.
  sim::CostStats cost;
  cost.bits_total = 60;
  core::SessionBudgetSpec spec;
  spec.max_bits = 64;
  core::SessionBudget budget(spec, &cost);
  for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(budget.check());
  EXPECT_EQ(budget.checks(), 100u);
  EXPECT_EQ(budget.bits_observed(), 60u);
}

TEST(Budget, DeadlineFallsBackToRoundClockWithoutChaos) {
  sim::CostStats cost;
  core::SessionBudgetSpec spec;
  spec.deadline_ticks = 5;
  core::SessionBudget budget(spec, &cost, /*clock=*/nullptr);
  cost.rounds = 5;
  EXPECT_NO_THROW(budget.check());
  cost.rounds = 6;
  EXPECT_THROW(budget.check(), core::BudgetExhaustedError);
  EXPECT_EQ(budget.reason(), core::BudgetDimension::kDeadline);
}

TEST(Budget, MarkExhaustedRecordsFirstReasonOnly) {
  sim::CostStats cost;
  core::SessionBudget budget({}, &cost);
  budget.mark_exhausted(core::BudgetDimension::kPool);
  budget.mark_exhausted(core::BudgetDimension::kAttempts);
  EXPECT_EQ(budget.reason(), core::BudgetDimension::kPool);
  EXPECT_THROW(budget.check(), core::BudgetExhaustedError);
}

TEST(Budget, NamesAreStable) {
  EXPECT_STREQ(core::degrade_rung_name(core::DegradeRung::kExact), "exact");
  EXPECT_STREQ(core::degrade_rung_name(core::DegradeRung::kFlaggedSuperset),
               "flagged_superset");
  EXPECT_STREQ(core::degrade_rung_name(core::DegradeRung::kInputFallback),
               "input_fallback");
  EXPECT_STREQ(core::degrade_rung_name(core::DegradeRung::kRefused),
               "refused");
  EXPECT_STREQ(core::budget_dimension_name(core::BudgetDimension::kDeadline),
               "deadline");
}

// ---------------------------------------------------------------------
// Backoff schedule

TEST(Backoff, DefaultKnobsReproduceFlatSchedule) {
  // multiplier 1 + jitter 0 is the PR-2 flat policy bit-for-bit — the
  // property that keeps golden transcripts of retrying sessions stable.
  core::BackoffPolicy flat;
  flat.base_rounds = 7;
  for (std::uint64_t attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(core::backoff_rounds_for_attempt(flat, 123, attempt), 7u);
    EXPECT_EQ(core::backoff_rounds_for_attempt(flat, 456, attempt), 7u);
  }
  // Zero base stays free whatever the other knobs say.
  core::BackoffPolicy zero;
  zero.multiplier = 8.0;
  zero.jitter = 1.0;
  EXPECT_EQ(core::backoff_rounds_for_attempt(zero, 1, 5), 0u);
}

TEST(Backoff, ExponentialGrowthIsCapped) {
  core::BackoffPolicy expo;
  expo.base_rounds = 4;
  expo.multiplier = 2.0;
  expo.cap_rounds = 20;
  EXPECT_EQ(core::backoff_rounds_for_attempt(expo, 9, 1), 4u);
  EXPECT_EQ(core::backoff_rounds_for_attempt(expo, 9, 2), 8u);
  EXPECT_EQ(core::backoff_rounds_for_attempt(expo, 9, 3), 16u);
  EXPECT_EQ(core::backoff_rounds_for_attempt(expo, 9, 4), 20u);  // capped
  EXPECT_EQ(core::backoff_rounds_for_attempt(expo, 9, 50), 20u);
}

TEST(Backoff, JitterIsDeterministicAndBounded) {
  core::BackoffPolicy jittered;
  jittered.base_rounds = 16;
  jittered.multiplier = 2.0;
  jittered.cap_rounds = 1024;
  jittered.jitter = 0.5;
  bool saw_nonbase = false;
  for (std::uint64_t attempt = 1; attempt <= 8; ++attempt) {
    const std::uint64_t a =
        core::backoff_rounds_for_attempt(jittered, 77, attempt);
    const std::uint64_t b =
        core::backoff_rounds_for_attempt(jittered, 77, attempt);
    EXPECT_EQ(a, b) << "same (seed, attempt) must draw the same jitter";
    core::BackoffPolicy plain = jittered;
    plain.jitter = 0.0;
    const std::uint64_t step =
        core::backoff_rounds_for_attempt(plain, 77, attempt);
    EXPECT_GE(a, step);
    EXPECT_LE(a, step + step / 2 + 1);
    if (a != step) saw_nonbase = true;
  }
  EXPECT_TRUE(saw_nonbase) << "jitter 0.5 never moved any attempt";
}

// ---------------------------------------------------------------------
// RetryBudgetPool + AdmissionController

TEST(Pool, TokensDenialsAndFractions) {
  core::RetryBudgetPool pool(3);
  EXPECT_TRUE(pool.enabled());
  EXPECT_DOUBLE_EQ(pool.remaining_fraction(), 1.0);
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_FALSE(pool.try_acquire());
  EXPECT_FALSE(pool.try_acquire());
  EXPECT_EQ(pool.spent(), 3u);
  EXPECT_EQ(pool.remaining(), 0u);
  EXPECT_EQ(pool.denials(), 2u);
  EXPECT_DOUBLE_EQ(pool.remaining_fraction(), 0.0);

  core::RetryBudgetPool unlimited(0);
  EXPECT_FALSE(unlimited.enabled());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(unlimited.try_acquire());
  EXPECT_EQ(unlimited.denials(), 0u);
  EXPECT_DOUBLE_EQ(unlimited.remaining_fraction(), 1.0);
}

TEST(Admission, HealthyPoolAdmitsEverything) {
  core::RetryBudgetPool pool(10);
  core::AdmissionPolicy policy;
  policy.critical_fraction = 0.5;
  core::AdmissionController ctrl(policy, &pool);
  for (std::uint64_t nonce = 0; nonce < 64; ++nonce) {
    EXPECT_TRUE(ctrl.admit(nonce));
  }
  EXPECT_EQ(ctrl.shed(), 0u);
  EXPECT_DOUBLE_EQ(ctrl.shed_fraction(), 0.0);
}

TEST(Admission, DrainedPoolShedsEverythingDeterministically) {
  core::RetryBudgetPool pool(2);
  core::AdmissionPolicy policy;
  policy.critical_fraction = 1.0;
  core::AdmissionController ctrl(policy, &pool);
  while (pool.try_acquire()) {
  }
  EXPECT_DOUBLE_EQ(ctrl.shed_fraction(), 1.0);
  // shed_fraction 1.0 rejects every priority in [0, 1).
  for (std::uint64_t nonce = 0; nonce < 64; ++nonce) {
    EXPECT_FALSE(ctrl.admit(nonce));
  }
  EXPECT_EQ(ctrl.shed(), 64u);
}

TEST(Admission, DecisionsAreAPureFunctionOfSeedNonceAndLevel) {
  // Two controllers over identically-drained pools make identical
  // decisions — the property the bench determinism contract needs.
  const auto decide = [](std::uint64_t seed) {
    core::RetryBudgetPool pool(4);
    pool.try_acquire();
    pool.try_acquire();
    pool.try_acquire();  // 1/4 remaining, below critical 0.5 -> shed 0.5
    core::AdmissionPolicy policy;
    policy.critical_fraction = 0.5;
    policy.seed = seed;
    core::AdmissionController ctrl(policy, &pool);
    std::uint64_t mask = 0;
    for (std::uint64_t nonce = 0; nonce < 64; ++nonce) {
      if (ctrl.admit(nonce)) mask |= std::uint64_t{1} << nonce;
    }
    return mask;
  };
  EXPECT_EQ(decide(11), decide(11));
  EXPECT_NE(decide(11), decide(12)) << "seed must matter";
  const std::uint64_t mask = decide(11);
  EXPECT_NE(mask, 0u) << "partial pressure must admit some";
  EXPECT_NE(mask, ~std::uint64_t{0}) << "partial pressure must shed some";
}

// ---------------------------------------------------------------------
// CircuitBreaker

TEST(Breaker, ClosedToOpenToHalfOpenToClosed) {
  core::BreakerPolicy policy;
  policy.failure_threshold = 2;
  policy.cooldown = 2;
  policy.close_after = 1;
  core::CircuitBreaker breaker(policy);

  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  breaker.on_failure();  // 2nd consecutive failure trips it
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  // Open: one denial of the two-call cooldown, then a half-open probe.
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.denials(), 1u);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), core::BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.half_opens(), 1u);

  // Successful probe closes it (close_after = 1).
  breaker.on_success();
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  EXPECT_EQ(breaker.closes(), 1u);

  // A success in closed state resets the failure streak.
  breaker.on_failure();
  breaker.on_success();
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
}

TEST(Breaker, FailedProbeReopensForAFreshCooldown) {
  core::BreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.cooldown = 2;
  core::CircuitBreaker breaker(policy);
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());
  EXPECT_TRUE(breaker.allow());  // half-open probe
  breaker.on_failure();          // probe fails
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.allow()) << "re-open must start a fresh cooldown";
}

TEST(Breaker, DisabledPolicyIsTransparent) {
  core::CircuitBreaker breaker;  // failure_threshold 0 = disabled
  for (int i = 0; i < 100; ++i) {
    breaker.on_failure();
    EXPECT_TRUE(breaker.allow());
  }
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(Breaker, BoardKeysLinksUnordered) {
  core::BreakerPolicy policy;
  policy.failure_threshold = 1;
  core::BreakerBoard board(policy);
  board.link(3, 1).on_failure();
  EXPECT_EQ(board.link(1, 3).state(), core::BreakerState::kOpen);
  EXPECT_EQ(board.open_links(), 1u);
  EXPECT_EQ(board.total_opens(), 1u);
  EXPECT_EQ(board.link(1, 2).state(), core::BreakerState::kClosed);
}

// ---------------------------------------------------------------------
// End-to-end: the degradation ladder through the facade

TEST(OverloadE2E, UnhitBudgetIsBitIdenticalToNoBudget) {
  // Governance must be free until it fires: a run whose budget is never
  // hit spends exactly the bits of an unbudgeted run and still certifies.
  util::Rng rng(0xB1D);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 20, 64, 24);
  IntersectOptions plain;
  plain.universe = 1u << 20;
  const IntersectResult base = intersect(pair.s, pair.t, plain);
  ASSERT_TRUE(base.verified);

  IntersectOptions budgeted = plain;
  budgeted.budget.max_bits = base.bits * 4;
  budgeted.budget.max_rounds = base.rounds * 4;
  const IntersectResult governed = intersect(pair.s, pair.t, budgeted);
  EXPECT_TRUE(governed.verified);
  EXPECT_EQ(governed.rung, core::DegradeRung::kExact);
  EXPECT_EQ(governed.bits, base.bits);
  EXPECT_EQ(governed.rounds, base.rounds);
  EXPECT_EQ(governed.intersection, base.intersection);
  EXPECT_EQ(governed.budget_reason, core::BudgetDimension::kNone);
}

TEST(OverloadE2E, BitBudgetDescendsToFlaggedSuperset) {
  // A bit budget far below the protocol's cost trips at the first phase
  // boundary. On a clean transport the ladder's middle rung — the
  // Lemma-3.3 superset via Basic-Intersection — succeeds and is honestly
  // flagged. The exact-or-flagged contract must survive.
  util::Rng rng(0xB2D);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 20, 64, 16);
  obs::Tracer tracer;
  IntersectOptions options;
  options.universe = 1u << 20;
  options.tracer = &tracer;
  options.budget.max_bits = 64;
  const IntersectResult result = intersect(pair.s, pair.t, options);
  EXPECT_FALSE(result.verified);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.refused);
  EXPECT_EQ(result.rung, core::DegradeRung::kFlaggedSuperset);
  EXPECT_EQ(result.budget_reason, core::BudgetDimension::kBits);
  EXPECT_TRUE(util::is_subset(pair.expected_intersection, result.intersection));
  EXPECT_GE(counter_value(tracer, "budget.exhaustions"), 1u);
  EXPECT_EQ(counter_value(tracer, "budget.exhausted_bits"),
            counter_value(tracer, "budget.exhaustions"));
  EXPECT_EQ(counter_value(tracer, "degraded.runs"), 1u);
}

TEST(OverloadE2E, RefuseOnExhaustionReturnsEmptyRefusal) {
  util::Rng rng(0xB3D);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 20, 64, 16);
  obs::Tracer tracer;
  IntersectOptions options;
  options.universe = 1u << 20;
  options.tracer = &tracer;
  options.budget.max_bits = 64;
  options.budget.refuse_on_exhaustion = true;
  const IntersectResult result = intersect(pair.s, pair.t, options);
  EXPECT_FALSE(result.verified);
  EXPECT_FALSE(result.degraded) << "refusal is not a superset answer";
  EXPECT_TRUE(result.refused);
  EXPECT_EQ(result.rung, core::DegradeRung::kRefused);
  EXPECT_TRUE(result.intersection.empty());
  EXPECT_EQ(counter_value(tracer, "budget.refusals"), 1u);
  EXPECT_EQ(counter_value(tracer, "degraded.runs"), 0u)
      << "a refusal must not also count as a degraded run";
}

TEST(OverloadE2E, BlownDeadlineSkipsToInputFallback) {
  // The deadline rung has no time for the Lemma-3.3 exchange: the run
  // must land on the input fallback (the zero-communication superset).
  util::Rng rng(0xB4D);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 20, 64, 16);
  IntersectOptions options;
  options.universe = 1u << 20;
  options.budget.deadline_ticks = 1;  // round clock without a chaos plan
  const IntersectResult result = intersect(pair.s, pair.t, options);
  EXPECT_FALSE(result.verified);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.rung, core::DegradeRung::kInputFallback);
  EXPECT_EQ(result.budget_reason, core::BudgetDimension::kDeadline);
  EXPECT_EQ(result.intersection, pair.s);
}

// ---------------------------------------------------------------------
// Satellite: checkpoint-resume x budget — replayed bits charge once.

TEST(OverloadE2E, CrashResumeChargesReplayedBitsExactlyOnce) {
  // A session that crashes mid-phase and resumes from its checkpoint
  // replays bits past the last boundary; those replayed bits flow through
  // the channel's monotonic counter exactly once, so a budget equal to
  // the session's total observed spend must NOT trip — double-charging
  // the replay would push the observed total past the cap.
  util::Rng rng(0xB5D);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 18, 96, 32);
  sim::ChaosSpec spec;
  spec.crash.crash_prob = 0.05;
  spec.crash.restart_ticks = 4;

  const auto run = [&](std::uint64_t seed, std::uint64_t max_bits) {
    sim::ChaosPlan plan(spec, seed);
    IntersectOptions options;
    options.universe = 1u << 18;
    options.seed = seed;
    options.chaos_plan = &plan;
    options.budget.max_bits = max_bits;
    return intersect(pair.s, pair.t, options);
  };

  // Deterministic seed scan for a run that certified AND replayed bits
  // past a checkpoint while recovering from a crash — the interesting
  // double-charging candidate.
  std::uint64_t seed = 0;
  IntersectResult unbudgeted;
  bool found = false;
  for (std::uint64_t candidate = 1; candidate <= 64 && !found; ++candidate) {
    unbudgeted = run(candidate, 0);
    if (unbudgeted.verified && unbudgeted.restarts > 0 &&
        unbudgeted.bits_replayed > 0) {
      seed = candidate;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 1..64 produced a certified crash-resume "
                        "run with replayed bits";

  // Budget == exact observed spend: identical run, still verified. If the
  // budget double-charged the replayed bits it would observe
  // bits + bits_replayed > max_bits and trip.
  const IntersectResult exact_fit = run(seed, unbudgeted.bits);
  EXPECT_TRUE(exact_fit.verified);
  EXPECT_FALSE(exact_fit.degraded);
  EXPECT_EQ(exact_fit.bits, unbudgeted.bits);
  EXPECT_EQ(exact_fit.bits_replayed, unbudgeted.bits_replayed);
  EXPECT_EQ(exact_fit.intersection, unbudgeted.intersection);
  EXPECT_EQ(exact_fit.budget_reason, core::BudgetDimension::kNone);

  // Vacuity guard: a budget far below the protocol's cost must trip on
  // the same configuration (the budget IS being consulted).
  const IntersectResult too_tight = run(seed, 64);
  EXPECT_FALSE(too_tight.verified);
  EXPECT_EQ(too_tight.budget_reason, core::BudgetDimension::kBits);
}

// ---------------------------------------------------------------------
// Multiparty: pool, breaker, admission, refusal accounting

// A 4-player star (coordinator variant): one level, coordinator 0 runs
// pairwise sessions against 1, 2 and 3. The chaos plan's per-link fault
// overlay makes link (0, 3) permanently dead (drops every frame) while
// (0, 1) and (0, 2) stay clean.
struct StarFixture {
  std::uint64_t universe = 1u << 16;
  util::MultiSetInstance inst;

  StarFixture() {
    util::Rng rng(0xA11);
    inst = util::random_multi_sets(rng, universe, /*players=*/4, /*k=*/24,
                                   /*shared=*/8);
  }

  multiparty::MultipartyResult run(const multiparty::MultipartyParams& params,
                                   sim::ChaosPlan* chaos,
                                   obs::Tracer* tracer = nullptr) const {
    sim::Network network(4);
    if (tracer != nullptr) network.set_tracer(tracer);
    sim::SharedRandomness shared(0x5747);
    multiparty::MultipartyParams p = params;
    p.chaos = chaos;
    return multiparty::coordinator_intersection(network, shared, universe,
                                                inst.sets, p);
  }

  static sim::ChaosPlan dead_link_plan() {
    sim::ChaosSpec spec;
    spec.players = 4;
    sim::ChaosPlan plan(spec, 0xDEAD);
    sim::FaultSpec drop_all;
    drop_all.drop_prob = 1.0;
    drop_all.seed = 99;
    plan.set_link_faults(0, 3, drop_all);
    return plan;
  }
};

TEST(OverloadMP, BreakerStopsRetrySpendOnDeadLink) {
  StarFixture fx;
  multiparty::MultipartyParams flat;
  flat.retry.max_attempts = 8;
  flat.retry.degraded_attempts = 1;

  sim::ChaosPlan plan_a = StarFixture::dead_link_plan();
  const multiparty::MultipartyResult without = fx.run(flat, &plan_a);

  multiparty::MultipartyParams governed = flat;
  governed.breaker.failure_threshold = 2;
  sim::ChaosPlan plan_b = StarFixture::dead_link_plan();
  const multiparty::MultipartyResult with = fx.run(governed, &plan_b);

  // Both answers honor the superset contract and flag the dead pair.
  EXPECT_TRUE(
      util::is_subset(fx.inst.expected_intersection, without.intersection));
  EXPECT_TRUE(
      util::is_subset(fx.inst.expected_intersection, with.intersection));
  EXPECT_TRUE(without.degraded);
  EXPECT_TRUE(with.degraded);
  // The flat policy burns all 8 attempts on the dead link; the breaker
  // trips after 2 consecutive failures and stops the spend.
  EXPECT_LT(with.total_repetitions, without.total_repetitions);
  EXPECT_GE(with.breaker_opens, 1u);
  // Honest per-player accounting: both endpoints of the dead pair are
  // charged, healthy players are not.
  ASSERT_EQ(with.per_player_degraded.size(), 4u);
  EXPECT_GE(with.per_player_degraded[0], 1u);
  EXPECT_GE(with.per_player_degraded[3], 1u);
  EXPECT_EQ(with.per_player_degraded[1], 0u);
  EXPECT_EQ(with.per_player_degraded[2], 0u);
}

TEST(OverloadMP, SharedPoolBoundsRetriesAcrossTheRun) {
  StarFixture fx;
  multiparty::MultipartyParams params;
  params.retry.max_attempts = 16;
  params.retry.degraded_attempts = 1;
  params.retry_pool_attempts = 5;

  sim::ChaosPlan plan = StarFixture::dead_link_plan();
  obs::Tracer tracer;
  const multiparty::MultipartyResult result = fx.run(params, &plan, &tracer);

  EXPECT_TRUE(
      util::is_subset(fx.inst.expected_intersection, result.intersection));
  // Re-attempts across the WHOLE run are capped by the pool: each of the
  // 3 pairwise sessions gets a free first attempt, all further attempts
  // draw pool tokens — so total repetitions <= sessions + capacity even
  // though the dead link alone would happily burn its 16.
  EXPECT_LE(result.total_repetitions, 3u + 5u);
  EXPECT_GE(result.pool_retry_denials, 1u);
  // The dead link drains the whole pool before giving up.
  EXPECT_EQ(counter_value(tracer, "budget.pool_spent"), 5u);
}

TEST(OverloadMP, DrainedPoolShedsLaterPairsDeterministically) {
  StarFixture fx;
  multiparty::MultipartyParams params;
  params.retry.max_attempts = 16;
  params.retry.degraded_attempts = 1;
  params.retry_pool_attempts = 2;
  params.admission.critical_fraction = 1.0;
  // Make EVERY link lossy so the first pair drains the 2-token pool and
  // later pairs face shed_fraction 1.0.
  sim::FaultSpec drop_all;
  drop_all.drop_prob = 1.0;
  drop_all.seed = 7;
  sim::FaultPlan faults(drop_all);
  params.fault_plan = &faults;

  sim::Network network(4);
  obs::Tracer tracer;
  network.set_tracer(&tracer);
  sim::SharedRandomness shared(0x5747);
  const multiparty::MultipartyResult result =
      multiparty::coordinator_intersection(network, shared, fx.universe,
                                           fx.inst.sets, params);

  EXPECT_TRUE(
      util::is_subset(fx.inst.expected_intersection, result.intersection));
  EXPECT_GE(result.shed_pairs, 1u);
  EXPECT_EQ(counter_value(tracer, "budget.shed"), result.shed_pairs);
  // Determinism: the same run sheds the same pairs.
  sim::Network network2(4);
  sim::FaultPlan faults2(drop_all);
  multiparty::MultipartyParams params2 = params;
  params2.fault_plan = &faults2;
  const multiparty::MultipartyResult again =
      multiparty::coordinator_intersection(network2, shared, fx.universe,
                                           fx.inst.sets, params2);
  EXPECT_EQ(again.shed_pairs, result.shed_pairs);
  EXPECT_EQ(again.intersection, result.intersection);
}

TEST(OverloadMP, RefusedPairsKeepTheSupersetInvariant) {
  // Every pair refuses (tiny bit budget + refuse_on_exhaustion) — the
  // final answer must still be a superset of the m-way intersection, NOT
  // the empty set a naive intersect-the-refusal would produce.
  StarFixture fx;
  multiparty::MultipartyParams params;
  params.budget.max_bits = 64;
  params.budget.refuse_on_exhaustion = true;
  const multiparty::MultipartyResult result = fx.run(params, nullptr);
  EXPECT_GE(result.refused_pairs, 1u);
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(
      util::is_subset(fx.inst.expected_intersection, result.intersection));
  EXPECT_FALSE(result.intersection.empty());
}

}  // namespace
}  // namespace setint
