// Tests for the communication simulator: bit/message/round accounting on
// the two-party channel, transcript recording, shared randomness
// synchronization, and the m-party network's per-player billing.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/channel.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/bitio.h"

namespace setint {
namespace {

util::BitBuffer bits_of(std::uint64_t v, unsigned w) {
  util::BitBuffer b;
  b.append_bits(v, w);
  return b;
}

TEST(Channel, CountsBitsByDirection) {
  sim::Channel ch;
  ch.send(sim::PartyId::kAlice, bits_of(0, 10));
  ch.send(sim::PartyId::kBob, bits_of(0, 3));
  ch.send(sim::PartyId::kAlice, bits_of(0, 7));
  EXPECT_EQ(ch.cost().bits_total, 20u);
  EXPECT_EQ(ch.cost().bits_from_alice, 17u);
  EXPECT_EQ(ch.cost().bits_from_bob, 3u);
  EXPECT_EQ(ch.cost().messages, 3u);
}

TEST(Channel, RoundsCountMaximalSameDirectionRuns) {
  sim::Channel ch;
  // A A B B B A -> 3 rounds.
  ch.send(sim::PartyId::kAlice, bits_of(0, 1));
  ch.send(sim::PartyId::kAlice, bits_of(0, 1));
  ch.send(sim::PartyId::kBob, bits_of(0, 1));
  ch.send(sim::PartyId::kBob, bits_of(0, 1));
  ch.send(sim::PartyId::kBob, bits_of(0, 1));
  ch.send(sim::PartyId::kAlice, bits_of(0, 1));
  EXPECT_EQ(ch.cost().rounds, 3u);
  EXPECT_EQ(ch.cost().messages, 6u);
}

TEST(Channel, DeliveredPayloadIsExactlyWhatWasSent) {
  sim::Channel ch;
  util::BitBuffer payload;
  payload.append_bits(0x2bad, 16);
  const util::BitBuffer got = ch.send(sim::PartyId::kAlice, payload);
  EXPECT_TRUE(got == payload);
}

TEST(Channel, ZeroBitMessageStillCountsMessageAndRound) {
  sim::Channel ch;
  ch.send(sim::PartyId::kAlice, util::BitBuffer{});
  EXPECT_EQ(ch.cost().bits_total, 0u);
  EXPECT_EQ(ch.cost().messages, 1u);
  EXPECT_EQ(ch.cost().rounds, 1u);
}

// Regression: an empty payload is a real protocol action ("I have
// nothing") — it must advance the round on a direction change exactly
// like a non-empty one, and same-direction empties must NOT open rounds.
TEST(Channel, ZeroBitMessageAdvancesRoundOnDirectionChange) {
  sim::Channel ch;
  ch.send(sim::PartyId::kAlice, bits_of(0, 5));
  ch.send(sim::PartyId::kBob, util::BitBuffer{});     // new direction
  ch.send(sim::PartyId::kBob, util::BitBuffer{});     // same direction
  ch.send(sim::PartyId::kAlice, util::BitBuffer{});   // new direction
  EXPECT_EQ(ch.cost().bits_total, 5u);
  EXPECT_EQ(ch.cost().messages, 4u);
  EXPECT_EQ(ch.cost().rounds, 3u);
}

TEST(Channel, TranscriptRecordsWhenEnabled) {
  sim::Channel plain;
  EXPECT_EQ(plain.transcript(), nullptr);

  sim::Channel recording(/*record_transcript=*/true);
  recording.send(sim::PartyId::kAlice, bits_of(5, 4), "first");
  recording.send(sim::PartyId::kBob, bits_of(9, 8), "second");
  ASSERT_NE(recording.transcript(), nullptr);
  const auto& entries = recording.transcript()->entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].from, sim::PartyId::kAlice);
  EXPECT_EQ(entries[0].label, "first");
  EXPECT_EQ(entries[0].payload.size_bits(), 4u);
  EXPECT_EQ(entries[1].from, sim::PartyId::kBob);
}

TEST(Transcript, DigestIsOrderSensitive) {
  sim::Transcript t1;
  sim::Transcript t2;
  util::BitBuffer a = bits_of(1, 4);
  util::BitBuffer b = bits_of(2, 4);
  t1.record(sim::PartyId::kAlice, a, "");
  t1.record(sim::PartyId::kAlice, b, "");
  t2.record(sim::PartyId::kAlice, b, "");
  t2.record(sim::PartyId::kAlice, a, "");
  EXPECT_NE(t1.digest(), t2.digest());
}

TEST(CostStats, Accumulates) {
  sim::CostStats a{10, 6, 4, 2, 2};
  const sim::CostStats b{5, 5, 0, 1, 1};
  a += b;
  EXPECT_EQ(a.bits_total, 15u);
  EXPECT_EQ(a.bits_from_alice, 11u);
  EXPECT_EQ(a.bits_from_bob, 4u);
  EXPECT_EQ(a.messages, 3u);
  EXPECT_EQ(a.rounds, 3u);
}

TEST(CostStats, EqualityAndToString) {
  const sim::CostStats a{20, 17, 3, 3, 3};
  const sim::CostStats b{20, 17, 3, 3, 3};
  sim::CostStats c = a;
  c.rounds = 4;
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.ToString(),
            "CostStats{bits=20 (alice 17, bob 3), messages=3, rounds=3}");
  std::ostringstream os;
  os << a;
  EXPECT_EQ(os.str(), a.ToString());
}

TEST(Transcript, EqualityAndToString) {
  sim::Transcript t1;
  sim::Transcript t2;
  t1.record(sim::PartyId::kAlice, bits_of(5, 4), "hello");
  t2.record(sim::PartyId::kAlice, bits_of(5, 4), "hello");
  EXPECT_EQ(t1, t2);
  t2.record(sim::PartyId::kBob, bits_of(1, 1), "");
  EXPECT_NE(t1, t2);
  const std::string text = t2.ToString();
  EXPECT_NE(text.find("2 messages"), std::string::npos);
  EXPECT_NE(text.find("hello"), std::string::npos);
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("bob"), std::string::npos);
}

TEST(SharedRandomness, BothPartiesDeriveIdenticalStreams) {
  sim::SharedRandomness alice_view(1234);
  sim::SharedRandomness bob_view(1234);
  util::Rng a = alice_view.stream("hash", 3, 7);
  util::Rng b = bob_view.stream("hash", 3, 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SharedRandomness, StreamsAreLabelSeparated) {
  sim::SharedRandomness sr(1234);
  util::Rng a = sr.stream("x", 0, 0);
  util::Rng b = sr.stream("x", 1, 0);
  util::Rng c = sr.stream("y", 0, 0);
  EXPECT_NE(a.next(), b.next());
  EXPECT_NE(sr.stream("x", 0, 0).next(), c.next());
}

// ---------- Network ----------

TEST(Network, BillsBothEndpoints) {
  sim::Network net(4);
  sim::CostStats cost{100, 60, 40, 4, 4};
  net.bill_pairwise(0, 2, cost);
  EXPECT_EQ(net.player(0).bits_sent, 60u);
  EXPECT_EQ(net.player(0).bits_received, 40u);
  EXPECT_EQ(net.player(2).bits_sent, 40u);
  EXPECT_EQ(net.player(2).bits_received, 60u);
  EXPECT_EQ(net.player(1).bits_touched(), 0u);
  EXPECT_EQ(net.total_bits(), 100u);
  EXPECT_EQ(net.rounds(), 4u);
}

TEST(Network, BatchTakesMaxRounds) {
  sim::Network net(4);
  net.begin_batch();
  net.bill_pairwise_in_batch(0, 1, sim::CostStats{10, 10, 0, 2, 2});
  net.bill_pairwise_in_batch(2, 3, sim::CostStats{10, 10, 0, 7, 7});
  net.end_batch();
  EXPECT_EQ(net.rounds(), 7u);  // parallel conversations: max, not sum
  EXPECT_EQ(net.total_bits(), 20u);
}

TEST(Network, MaxAndAveragePlayerBits) {
  sim::Network net(2);
  net.bill_pairwise(0, 1, sim::CostStats{30, 20, 10, 2, 2});
  EXPECT_EQ(net.max_player_bits(), 30u);  // each touches all 30 bits
  EXPECT_DOUBLE_EQ(net.average_player_bits(), 30.0);
}

TEST(Network, RejectsBadIds) {
  sim::Network net(2);
  EXPECT_THROW(net.bill_pairwise(0, 0, {}), std::invalid_argument);
  EXPECT_THROW(net.bill_pairwise(0, 5, {}), std::invalid_argument);
  EXPECT_THROW(sim::Network(0), std::invalid_argument);
}

TEST(Network, BatchProtocolErrors) {
  sim::Network net(2);
  EXPECT_THROW(net.end_batch(), std::logic_error);
  EXPECT_THROW(net.bill_pairwise_in_batch(0, 1, {}), std::logic_error);
  net.begin_batch();
  EXPECT_THROW(net.begin_batch(), std::logic_error);
  net.end_batch();
}

}  // namespace
}  // namespace setint
