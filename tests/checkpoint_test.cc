// core::Checkpoint unit tests + protocol resume equivalence.
//
// The snapshot store itself is trivial (single slot, clear/restore
// counters, the interrupt_after test knob); what matters is the contract
// the checkpointable protocols build on it: interrupting at any phase
// boundary and re-entering with the same Checkpoint yields the SAME
// outputs as an uninterrupted run, because interrupt_after stores the
// snapshot before throwing — the interruption lands exactly on the
// boundary. Transcript-level bit-identity of resumed runs is pinned
// separately in tests/transcript_digest_test.cc.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/basic_intersection.h"
#include "core/checkpoint.h"
#include "core/verification_tree.h"
#include "eq/amortized_eq.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

TEST(Checkpoint, SaveRestoreRoundTrip) {
  core::Checkpoint ckpt;
  EXPECT_TRUE(ckpt.empty());
  EXPECT_FALSE(ckpt.has("vt"));
  EXPECT_EQ(ckpt.snapshots(), 0u);

  util::BitBuffer blob;
  blob.append_gamma64(42);
  ckpt.save("vt", 3, blob, 1234);
  EXPECT_FALSE(ckpt.empty());
  EXPECT_TRUE(ckpt.has("vt"));
  EXPECT_FALSE(ckpt.has("bi"));
  EXPECT_EQ(ckpt.tag(), "vt");
  EXPECT_EQ(ckpt.phase(), 3u);
  EXPECT_EQ(ckpt.bits_at_boundary(), 1234u);
  EXPECT_EQ(ckpt.snapshots(), 1u);
  util::BitReader reader(ckpt.state());
  EXPECT_EQ(reader.read_gamma64(), 42u);

  // A newer snapshot replaces the old one regardless of tag.
  ckpt.save("bi", 1, util::BitBuffer{}, 2000);
  EXPECT_TRUE(ckpt.has("bi"));
  EXPECT_FALSE(ckpt.has("vt"));
  EXPECT_EQ(ckpt.snapshots(), 2u);

  ckpt.note_restore();
  EXPECT_EQ(ckpt.restores(), 1u);

  ckpt.clear();
  EXPECT_TRUE(ckpt.empty());
  // Counters survive clear(): they are session-lifetime telemetry.
  EXPECT_EQ(ckpt.snapshots(), 2u);
  EXPECT_EQ(ckpt.restores(), 1u);
}

TEST(Checkpoint, InterruptKnobStoresThenThrowsOnce) {
  core::Checkpoint ckpt;
  ckpt.interrupt_after("vt", 2);
  // Wrong tag / earlier phase: the knob stays armed, save succeeds.
  EXPECT_NO_THROW(ckpt.save("bi", 5, util::BitBuffer{}, 0));
  EXPECT_NO_THROW(ckpt.save("vt", 1, util::BitBuffer{}, 10));
  // Matching save: the snapshot lands, THEN the interrupt fires.
  EXPECT_THROW(ckpt.save("vt", 2, util::BitBuffer{}, 20),
               core::CheckpointInterrupt);
  EXPECT_TRUE(ckpt.has("vt"));
  EXPECT_EQ(ckpt.phase(), 2u);
  EXPECT_EQ(ckpt.bits_at_boundary(), 20u);
  // Disarmed after firing: the same save no longer throws.
  EXPECT_NO_THROW(ckpt.save("vt", 3, util::BitBuffer{}, 30));
}

// Interrupt Basic-Intersection at each of its phase boundaries; the
// resumed run must produce the identical candidate pair.
TEST(Checkpoint, BasicIntersectionResumeMatchesUninterrupted) {
  const std::uint64_t universe = std::uint64_t{1} << 20;
  util::Rng wrng(7101);
  const util::SetPair p = util::random_set_pair(wrng, universe, 96, 32);
  sim::SharedRandomness sh(4242);

  sim::Channel clean;
  const auto want =
      core::basic_intersection(clean, sh, 11, universe, p.s, p.t, 0.01);

  for (std::uint64_t phase = 1; phase <= 2; ++phase) {
    SCOPED_TRACE(testing::Message() << "interrupt at bi phase " << phase);
    sim::Channel ch;
    core::Checkpoint ckpt;
    ckpt.interrupt_after("bi", phase);
    EXPECT_THROW(core::basic_intersection(ch, sh, 11, universe, p.s, p.t, 0.01,
                                          &ckpt),
                 core::CheckpointInterrupt);
    const auto got =
        core::basic_intersection(ch, sh, 11, universe, p.s, p.t, 0.01, &ckpt);
    EXPECT_EQ(got.s_candidate, want.s_candidate);
    EXPECT_EQ(got.t_candidate, want.t_candidate);
    EXPECT_EQ(ckpt.restores(), 1u);
    EXPECT_TRUE(util::is_subset(p.expected_intersection, got.s_candidate));
  }
}

// Interrupt the amortized-EQ ladder after every level; resumed verdicts
// must match the uninterrupted run's exactly.
TEST(Checkpoint, AmortizedEqResumeMatchesUninterrupted) {
  util::Rng rng(515);
  std::vector<util::BitBuffer> xs(12), ys(12);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::uint64_t v = rng.next() & 0xFFFF;
    xs[i].append_bits(v, 16);
    // Half the pairs agree, half differ.
    ys[i].append_bits(i % 2 == 0 ? v : v ^ 0x11, 16);
  }
  sim::SharedRandomness sh(990);

  sim::Channel clean;
  const std::vector<bool> want = eq::amortized_equality(clean, sh, 3, xs, ys);

  for (std::uint64_t level = 1; level <= 4; ++level) {
    SCOPED_TRACE(testing::Message() << "interrupt after level " << level);
    sim::Channel ch;
    core::Checkpoint ckpt;
    ckpt.interrupt_after("amortized_eq", level);
    try {
      (void)eq::amortized_equality(ch, sh, 3, xs, ys, nullptr, &ckpt);
      // The ladder may finish in fewer levels than `level`; then the knob
      // never fires and the run above IS the uninterrupted run.
      continue;
    } catch (const core::CheckpointInterrupt&) {
    }
    const std::vector<bool> got =
        eq::amortized_equality(ch, sh, 3, xs, ys, nullptr, &ckpt);
    EXPECT_EQ(got, want);
    EXPECT_EQ(ckpt.restores(), 1u);
  }
}

// The verification tree checkpoints per stage; resuming mid-tree must not
// change the final intersection.
TEST(Checkpoint, VerificationTreeResumeMatchesUninterrupted) {
  const std::uint64_t universe = std::uint64_t{1} << 20;
  util::Rng wrng(808);
  const util::SetPair p = util::random_set_pair(wrng, universe, 128, 48);
  sim::SharedRandomness sh(31337);
  core::VerificationTreeParams params;
  params.rounds_r = 0;  // auto depth: several checkpointable stages

  sim::Channel clean;
  const auto want = core::verification_tree_intersection(clean, sh, 9, universe,
                                                         p.s, p.t, params);
  EXPECT_EQ(want.alice, p.expected_intersection);

  for (std::uint64_t stage = 1; stage <= 3; ++stage) {
    SCOPED_TRACE(testing::Message() << "interrupt after stage " << stage);
    sim::Channel ch;
    core::Checkpoint ckpt;
    ckpt.interrupt_after("vt", stage);
    try {
      (void)core::verification_tree_intersection(ch, sh, 9, universe, p.s, p.t,
                                                 params, nullptr, &ckpt);
      continue;  // tree shallower than `stage`: nothing to resume
    } catch (const core::CheckpointInterrupt&) {
    }
    const auto got = core::verification_tree_intersection(
        ch, sh, 9, universe, p.s, p.t, params, nullptr, &ckpt);
    EXPECT_EQ(got.alice, want.alice);
    EXPECT_GE(ckpt.restores(), 1u);
  }
}

}  // namespace
}  // namespace setint
