// Differential harness for the sans-IO engine (core/engine.h), the
// event-loop scheduler (runtime/scheduler.h) and the resumable certified
// session (multiparty/session_machine.h).
//
// The load-bearing invariant everywhere below: a protocol machine driven
// through ANY delivery schedule — sequential acks, byte-at-a-time
// trickle, randomly re-chunked frames, seeded per-tick shuffles across
// thousands of interleaved sessions, 1 or N scheduler shards — produces
// a transcript digest (and output fingerprint, bits, rounds) that is
// BIT-IDENTICAL to the blocking protocol function run on the same seed.
// Framing/re-chunking exercises the one byte-stream seam the partial-
// read audit in core/engine.h identifies: FrameAssembler must park on a
// truncated frame (never throw, never hand a short buffer to a
// BitReader::expect_at_least site), which is pinned here as a
// regression test.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/basic_intersection.h"
#include "core/bucket_eq.h"
#include "core/engine.h"
#include "core/verification_tree.h"
#include "eq/amortized_eq.h"
#include "multiparty/coordinator.h"
#include "multiparty/session_machine.h"
#include "obs/tracer.h"
#include "runtime/scheduler.h"
#include "sim/chaos.h"
#include "sim/channel.h"
#include "sim/fault.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- shared helpers ----------

struct BlockingRef {
  std::uint64_t digest = 0;
  std::uint64_t bits = 0;
  std::uint64_t rounds = 0;
};

// The blocking engine: the bare protocol function over a digest-enabled
// channel. No sans-IO machinery anywhere near this code path.
BlockingRef blocking_reference(std::string_view kind,
                               const core::MachineConfig& cfg) {
  sim::Channel channel;
  channel.enable_digest();
  const sim::SharedRandomness shared(cfg.seed);
  if (kind == "bi") {
    core::basic_intersection(channel, shared, cfg.nonce, cfg.universe, cfg.s,
                             cfg.t, cfg.bi_target_failure);
  } else if (kind == "vt") {
    core::verification_tree_intersection(channel, shared, cfg.nonce,
                                         cfg.universe, cfg.s, cfg.t, cfg.tree);
  } else if (kind == "bucket_eq") {
    core::bucket_eq_intersection(channel, shared, cfg.nonce, cfg.universe,
                                 cfg.s, cfg.t, cfg.bucket_eq_strength);
  } else if (kind == "amortized_eq") {
    std::vector<util::BitBuffer> xs, ys;
    core::make_amortized_eq_inputs(
        cfg.seed,
        cfg.eq_instances != 0 ? cfg.eq_instances
                              : std::max<std::size_t>(cfg.s.size(), 4),
        &xs, &ys);
    eq::amortized_equality(channel, shared, cfg.nonce, xs, ys);
  } else {
    ADD_FAILURE() << "unknown kind " << kind;
  }
  return {channel.digest(), channel.cost().bits_total, channel.cost().rounds};
}

core::MachineConfig make_cfg(std::uint64_t seed, std::uint64_t idx) {
  core::MachineConfig cfg;
  cfg.seed = util::mix64(seed, 2 * idx + 1);
  cfg.nonce = util::mix64(seed, util::mix64(0xA0CE, idx));
  cfg.universe = std::uint64_t{1} << 14;
  util::Rng rng(util::mix64(cfg.seed, 0x5e7));
  const std::size_t k = 6 + rng.below(15);  // 6..20
  const auto pair = util::random_set_pair(rng, cfg.universe, k,
                                          rng.below(k + 1));
  cfg.s = pair.s;
  cfg.t = pair.t;
  cfg.eq_instances = 4;
  return cfg;
}

// Sequential engine drive: immediate whole-frame acks, one boundary per
// round-trip. `wire` (optional) collects every byte the machine emits.
void drive_sequential(core::ProtocolMachine& m,
                      std::vector<std::uint8_t>* wire = nullptr) {
  core::MachineOutput out = m.start();
  if (wire != nullptr) {
    wire->insert(wire->end(), out.bytes.begin(), out.bytes.end());
  }
  std::uint64_t ack = 0;
  while (m.status() == core::MachineStatus::kNeedInput) {
    std::vector<std::uint8_t> acks;
    for (std::uint32_t i = 0; i < out.frames; ++i) {
      core::append_ack_frame(acks, ack++);
    }
    out = m.on_bytes(acks.data(), acks.size());
    if (wire != nullptr) {
      wire->insert(wire->end(), out.bytes.begin(), out.bytes.end());
    }
  }
}

// ---------- framing ----------

TEST(SansioFraming, FrameRoundTrip) {
  core::ProgressFrame f;
  f.kind = core::FrameKind::kProgress;
  f.step = 7;
  f.bits_total = 123456789;
  f.digest = 0xDEADBEEFCAFE;
  std::vector<std::uint8_t> bytes;
  core::append_frame(bytes, f);
  ASSERT_GT(bytes.size(), core::kFrameHeaderBytes);

  core::FrameAssembler asmr;
  asmr.push(bytes.data(), bytes.size());
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(asmr.next(payload));
  core::ProgressFrame back;
  ASSERT_TRUE(core::parse_frame_payload(payload, &back));
  EXPECT_EQ(back.kind, f.kind);
  EXPECT_EQ(back.step, f.step);
  EXPECT_EQ(back.bits_total, f.bits_total);
  EXPECT_EQ(back.digest, f.digest);
  EXPECT_EQ(asmr.pending_bytes(), 0u);
  EXPECT_FALSE(asmr.next(payload));
}

// Property: pushing a frame stream in ANY chunking (split/merged at
// arbitrary byte boundaries) yields the identical frame sequence —
// satellite 2's re-chunking invariance at the assembler level.
TEST(SansioFraming, AssemblerRechunkingProperty) {
  util::Rng rng(0x5A11);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t frames = 1 + rng.below(8);
    std::vector<std::uint8_t> stream;
    std::vector<std::uint64_t> steps;
    for (std::size_t i = 0; i < frames; ++i) {
      core::ProgressFrame f;
      f.kind = static_cast<core::FrameKind>(rng.below(4));
      f.step = rng.next();
      f.bits_total = rng.next();
      f.digest = rng.next();
      steps.push_back(f.step);
      core::append_frame(stream, f);
    }
    core::FrameAssembler asmr;
    std::vector<std::uint64_t> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + rng.below(8), stream.size() - pos);
      asmr.push(stream.data() + pos, len);
      pos += len;
      std::vector<std::uint8_t> payload;
      while (asmr.next(payload)) {
        core::ProgressFrame f;
        ASSERT_TRUE(core::parse_frame_payload(payload, &f));
        got.push_back(f.step);
      }
    }
    EXPECT_EQ(got, steps) << "trial " << trial;
    EXPECT_EQ(asmr.pending_bytes(), 0u);
  }
}

TEST(SansioFraming, OversizedHeaderThrowsLengthError) {
  // A header claiming more than kMaxFramePayloadBytes must fail fast —
  // never buffer toward a lying length (the assembler-level analogue of
  // BitReader::expect_at_least).
  std::vector<std::uint8_t> bytes(core::kFrameHeaderBytes, 0xFF);
  core::FrameAssembler asmr;
  asmr.push(bytes.data(), bytes.size());
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(asmr.next(payload), std::length_error);
}

// ---------- single-machine engine behavior ----------

TEST(SansioMachine, TruncatedAckParksNeverThrows) {
  // Satellite 3's regression pin: a partial inbound frame must SUSPEND
  // the machine (kNeedInput + frame_parks), not throw and not advance.
  auto m = core::make_machine("bi", make_cfg(0x717A, 0));
  core::MachineOutput out = m->start();
  ASSERT_EQ(m->status(), core::MachineStatus::kNeedInput);
  ASSERT_EQ(out.frames, 1u);

  std::vector<std::uint8_t> ack;
  core::append_ack_frame(ack, 0);
  const std::uint64_t steps_before = m->steps();
  // First half of the ack: park.
  ASSERT_NO_THROW(m->on_bytes(ack.data(), ack.size() / 2));
  EXPECT_EQ(m->status(), core::MachineStatus::kNeedInput);
  EXPECT_EQ(m->steps(), steps_before);
  EXPECT_EQ(m->frame_parks(), 1u);
  // Second half: resume, one boundary crossed.
  ASSERT_NO_THROW(
      m->on_bytes(ack.data() + ack.size() / 2, ack.size() - ack.size() / 2));
  EXPECT_EQ(m->steps(), steps_before + 1);
}

TEST(SansioMachine, OversizedInboundFrameFailsSession) {
  auto m = core::make_machine("bi", make_cfg(0x717B, 0));
  m->start();
  std::vector<std::uint8_t> lying(core::kFrameHeaderBytes, 0xFF);
  core::MachineOutput out;
  ASSERT_NO_THROW(out = m->on_bytes(lying.data(), lying.size()));
  EXPECT_EQ(m->status(), core::MachineStatus::kFailed);
  EXPECT_FALSE(m->error().empty());
  // The machine still told the peer: one kFailed frame.
  ASSERT_EQ(out.frames, 1u);
}

TEST(SansioMachine, StartTwiceAndEarlyBytesThrow) {
  auto m = core::make_machine("vt", make_cfg(0x717C, 0));
  std::vector<std::uint8_t> b(1, 0);
  EXPECT_THROW(m->on_bytes(b.data(), 1), std::logic_error);
  m->start();
  EXPECT_THROW(m->start(), std::logic_error);
}

TEST(SansioMachine, StreamingDigestMatchesTranscriptDigest) {
  // The channel's streaming digest must equal the recording transcript's
  // digest — by construction (sim::fold_digest at the same point), pinned
  // here so the construction can't drift.
  const core::MachineConfig cfg = make_cfg(0xD167, 3);
  sim::Channel channel(/*record_transcript=*/true);
  channel.enable_digest();
  const sim::SharedRandomness shared(cfg.seed);
  core::verification_tree_intersection(channel, shared, cfg.nonce,
                                       cfg.universe, cfg.s, cfg.t, cfg.tree);
  ASSERT_NE(channel.transcript(), nullptr);
  EXPECT_EQ(channel.digest(), channel.transcript()->digest());
  EXPECT_GT(channel.cost().messages, 0u);
}

// Step-by-step replay: the same machine config driven twice emits the
// identical byte stream, frame for frame.
TEST(SansioMachine, SequentialReplayIsByteIdentical) {
  for (const std::string_view kind : core::kMachineKinds) {
    const core::MachineConfig cfg = make_cfg(0x3E9, 11);
    auto m1 = core::make_machine(kind, cfg);
    auto m2 = core::make_machine(kind, cfg);
    std::vector<std::uint8_t> wire1, wire2;
    drive_sequential(*m1, &wire1);
    drive_sequential(*m2, &wire2);
    ASSERT_EQ(m1->status(), core::MachineStatus::kDone) << kind;
    EXPECT_EQ(wire1, wire2) << kind;
    EXPECT_EQ(m1->digest(), m2->digest()) << kind;
    EXPECT_EQ(m1->steps(), m2->steps()) << kind;
    EXPECT_EQ(m1->result_fingerprint(), m2->result_fingerprint()) << kind;
  }
}

// Mid-message park/resume: a byte-at-a-time ack trickle (parking the
// machine between every byte) ends in the identical digest and output.
TEST(SansioMachine, ByteAtATimeTrickleMatchesWholeFrames) {
  for (const std::string_view kind : core::kMachineKinds) {
    const core::MachineConfig cfg = make_cfg(0x7B1C, 5);
    auto whole = core::make_machine(kind, cfg);
    drive_sequential(*whole);
    ASSERT_EQ(whole->status(), core::MachineStatus::kDone) << kind;

    auto trickle = core::make_machine(kind, cfg);
    core::MachineOutput out = trickle->start();
    std::uint64_t ack = 0;
    while (trickle->status() == core::MachineStatus::kNeedInput) {
      std::vector<std::uint8_t> acks;
      for (std::uint32_t i = 0; i < out.frames; ++i) {
        core::append_ack_frame(acks, ack++);
      }
      out = core::MachineOutput{};
      for (std::size_t i = 0;
           i < acks.size() &&
           trickle->status() == core::MachineStatus::kNeedInput;
           ++i) {
        out = trickle->on_bytes(&acks[i], 1);
      }
    }
    ASSERT_EQ(trickle->status(), core::MachineStatus::kDone) << kind;
    EXPECT_GT(trickle->frame_parks(), 0u) << kind;
    EXPECT_EQ(trickle->digest(), whole->digest()) << kind;
    EXPECT_EQ(trickle->result_fingerprint(), whole->result_fingerprint())
        << kind;
    EXPECT_EQ(trickle->cost().bits_total, whole->cost().bits_total) << kind;
  }
}

// ---------- the differential harness proper ----------

// Per core protocol, 200 seeded sessions through the scheduler — seeded
// per-tick shuffle, chunked acks, staggered arrivals — each asserted
// digest-identical (and bits/rounds-identical) to the blocking engine.
TEST(SansioDifferential, SchedulerMatchesBlockingPerKind) {
  constexpr std::size_t kSessions = 200;
  for (const std::string_view kind : core::kMachineKinds) {
    std::vector<BlockingRef> refs(kSessions);
    runtime::Scheduler sched([] {
      runtime::SchedulerOptions o;
      o.seed = 0x5EED;
      o.shuffle = true;
      o.max_ack_latency = 4;
      o.chunk_bytes = 9;  // ack frames are 29 bytes: guaranteed splits
      o.arrival_window = 32;
      return o;
    }());
    for (std::size_t g = 0; g < kSessions; ++g) {
      const core::MachineConfig cfg =
          make_cfg(util::mix64(0xD1FF, std::uint64_t(kind.size())), g);
      refs[g] = blocking_reference(kind, cfg);
      sched.add(core::make_machine(kind, cfg), g);
    }
    sched.run();
    std::uint64_t parked = 0;
    for (std::size_t g = 0; g < kSessions; ++g) {
      const runtime::SessionRecord& rec = sched.record(g);
      ASSERT_EQ(rec.final_status, core::MachineStatus::kDone)
          << kind << " session " << g;
      EXPECT_EQ(rec.digest, refs[g].digest) << kind << " session " << g;
      EXPECT_EQ(rec.bits_total, refs[g].bits) << kind << " session " << g;
      parked += rec.frame_parks;
    }
    EXPECT_EQ(sched.completed(), kSessions) << kind;
    EXPECT_EQ(sched.failed(), 0u) << kind;
    // Chunked acks must have produced real mid-message parks somewhere.
    EXPECT_GT(parked, 0u) << kind;
  }
}

// Random re-chunking property at the machine level (satellite 2): any
// split/merge of the ack stream leaves output and digest unchanged.
TEST(SansioDifferential, RandomRechunkingPropertyPerKind) {
  util::Rng rng(0xC4C4);
  for (const std::string_view kind : core::kMachineKinds) {
    const core::MachineConfig cfg = make_cfg(0xC4C5, 17);
    auto reference = core::make_machine(kind, cfg);
    drive_sequential(*reference);
    ASSERT_EQ(reference->status(), core::MachineStatus::kDone);

    for (int trial = 0; trial < 25; ++trial) {
      auto m = core::make_machine(kind, cfg);
      core::MachineOutput out = m->start();
      std::uint64_t ack = 0;
      std::vector<std::uint8_t> pending;
      while (m->status() == core::MachineStatus::kNeedInput) {
        for (std::uint32_t i = 0; i < out.frames; ++i) {
          core::append_ack_frame(pending, ack++);
        }
        // Deliver a random-size chunk (possibly spanning several frames,
        // possibly mid-frame; occasionally empty).
        const std::size_t len =
            std::min<std::size_t>(rng.below(40), pending.size());
        out = m->on_bytes(pending.data(), len);
        pending.erase(pending.begin(),
                      pending.begin() + static_cast<std::ptrdiff_t>(len));
        if (len == 0 && pending.empty()) break;  // nothing left to feed
      }
      // Flush whatever is still pending.
      while (m->status() == core::MachineStatus::kNeedInput) {
        out = m->on_bytes(pending.data(), pending.size());
        pending.clear();
        for (std::uint32_t i = 0; i < out.frames; ++i) {
          core::append_ack_frame(pending, ack++);
        }
      }
      ASSERT_EQ(m->status(), core::MachineStatus::kDone)
          << kind << " trial " << trial;
      EXPECT_EQ(m->digest(), reference->digest()) << kind << " " << trial;
      EXPECT_EQ(m->result_fingerprint(), reference->result_fingerprint())
          << kind << " " << trial;
    }
  }
}

// Thread invariance: the same fleet sharded over 1, 2 and 4 schedulers
// produces identical aggregates (runtime/scheduler.h's contract).
TEST(SansioDifferential, ServiceRunThreadInvariance) {
  constexpr std::size_t kSessions = 96;
  runtime::SchedulerOptions opts;
  opts.seed = 0x7123;
  opts.max_ack_latency = 3;
  opts.chunk_bytes = 7;
  opts.arrival_window = 16;
  auto build = [] {
    std::vector<std::unique_ptr<core::ProtocolMachine>> machines;
    for (std::size_t g = 0; g < kSessions; ++g) {
      machines.push_back(core::make_machine(core::kMachineKinds[g % 4],
                                            make_cfg(0x9137, g)));
    }
    return machines;
  };
  const runtime::ServiceRun one = runtime::run_service(build(), opts, 1);
  const runtime::ServiceRun two = runtime::run_service(build(), opts, 2);
  const runtime::ServiceRun four = runtime::run_service(build(), opts, 4);
  ASSERT_EQ(one.completed, kSessions);
  ASSERT_EQ(one.failed, 0u);
  for (const runtime::ServiceRun* run : {&two, &four}) {
    EXPECT_EQ(run->digest_fold, one.digest_fold);
    EXPECT_EQ(run->completed, one.completed);
    EXPECT_EQ(run->failed, one.failed);
    EXPECT_EQ(run->peak_inflight, one.peak_inflight);
    EXPECT_EQ(run->events_processed, one.events_processed);
    EXPECT_EQ(run->ack_rtt.count(), one.ack_rtt.count());
    EXPECT_EQ(run->ack_rtt.sum(), one.ack_rtt.sum());
    EXPECT_EQ(run->completion_ticks.count(), one.completion_ticks.count());
    EXPECT_EQ(run->completion_ticks.sum(), one.completion_ticks.sum());
  }
  // And per-session records line up with direct blocking runs.
  for (std::size_t g = 0; g < kSessions; ++g) {
    const BlockingRef ref = blocking_reference(core::kMachineKinds[g % 4],
                                               make_cfg(0x9137, g));
    EXPECT_EQ(one.record(g).digest, ref.digest) << g;
    EXPECT_EQ(four.record(g).digest, ref.digest) << g;
  }
}

// ---------- the resumable certified session (interop satellites) ----------

using multiparty::SessionHooks;
using multiparty::SessionMachineConfig;
using multiparty::VerifiedRunResult;
using multiparty::VerifiedSessionMachine;

std::map<std::string, std::uint64_t> counter_snapshot(const obs::Tracer& tr) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : tr.metrics().counters()) {
    if (name.rfind("engine.", 0) == 0) continue;  // engine-only family
    out[name] = counter.value();
  }
  return out;
}

void expect_results_match(const VerifiedRunResult& a,
                          const VerifiedRunResult& b) {
  EXPECT_EQ(a.intersection, b.intersection);
  EXPECT_EQ(a.repetitions, b.repetitions);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(a.peer_lost, b.peer_lost);
  EXPECT_EQ(a.rung, b.rung);
  EXPECT_EQ(a.budget_reason, b.budget_reason);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.bits_replayed, b.bits_replayed);
  EXPECT_EQ(a.cost.bits_total, b.cost.bits_total);
  EXPECT_EQ(a.cost.rounds, b.cost.rounds);
  EXPECT_EQ(a.cost.messages, b.cost.messages);
  EXPECT_EQ(multiparty::fingerprint_verified_result(a),
            multiparty::fingerprint_verified_result(b));
}

struct SessionInputs {
  std::uint64_t seed, nonce, universe;
  util::Set s, t;
  core::RetryPolicy retry;
};

SessionInputs certified_inputs(std::uint64_t seed) {
  SessionInputs in;
  in.seed = seed;
  in.nonce = util::mix64(seed, 0xCE55);
  in.universe = std::uint64_t{1} << 12;
  util::Rng rng(util::mix64(seed, 0x1235));
  const auto pair = util::random_set_pair(rng, in.universe, 16, 6);
  in.s = pair.s;
  in.t = pair.t;
  return in;
}

// Runs the blocking path and the engine-driven machine under two
// identically-seeded copies of the hook environment; `rig` installs the
// environment into the hooks for one run (called once per mode).
template <typename Rig>
void differential_certified_session(std::uint64_t seed, Rig rig,
                                    VerifiedRunResult* blocking_out = nullptr,
                                    VerifiedRunResult* machine_out = nullptr) {
  const SessionInputs in = certified_inputs(seed);

  obs::Tracer tr_blocking;
  SessionHooks hooks_blocking;
  hooks_blocking.tracer = &tr_blocking;
  auto env_blocking = rig(hooks_blocking);
  (void)env_blocking;
  const sim::SharedRandomness shared(in.seed);
  const VerifiedRunResult blocking = multiparty::verified_two_party_intersection(
      shared, in.nonce, in.universe, in.s, in.t, {}, 0, in.retry,
      hooks_blocking);

  obs::Tracer tr_machine;
  SessionMachineConfig cfg;
  cfg.seed = in.seed;
  cfg.nonce = in.nonce;
  cfg.universe = in.universe;
  cfg.s = in.s;
  cfg.t = in.t;
  cfg.retry = in.retry;
  cfg.hooks.tracer = &tr_machine;
  auto env_machine = rig(cfg.hooks);
  (void)env_machine;
  VerifiedSessionMachine machine(std::move(cfg));
  drive_sequential(machine);
  ASSERT_EQ(machine.status(), core::MachineStatus::kDone);

  expect_results_match(blocking, machine.result());
  // Every counter family the session emits — retry.*, checkpoint.*,
  // budget.*, chaos.*, fault.*, degraded.*, mp.* — must match exactly
  // (engine.* excluded: park resumes exist only in resumable mode).
  EXPECT_EQ(counter_snapshot(tr_blocking), counter_snapshot(tr_machine));
  if (blocking_out != nullptr) *blocking_out = blocking;
  if (machine_out != nullptr) *machine_out = machine.result();
}

TEST(SansioCertified, CleanSessionMatchesBlocking) {
  VerifiedRunResult blocking;
  differential_certified_session(
      0xC1EA,
      [](SessionHooks&) { return 0; },
      &blocking);
  EXPECT_TRUE(blocking.verified);
  EXPECT_EQ(blocking.rung, core::DegradeRung::kExact);
}

TEST(SansioCertified, FaultPlanInteropMatchesBlocking) {
  // Unreliable transport: flips + drops force retries; the machine's
  // park/resume stepping must leave the retry ladder's behavior — and
  // every fault.*/retry.* counter — untouched.
  sim::FaultSpec spec;
  spec.flip_per_bit = 5e-4;
  spec.drop_prob = 0.03;
  spec.seed = 0xFA17;
  std::vector<std::unique_ptr<sim::FaultPlan>> plans;
  VerifiedRunResult blocking;
  differential_certified_session(
      0xFA07,
      [&](SessionHooks& hooks) {
        plans.push_back(std::make_unique<sim::FaultPlan>(spec));
        hooks.faults = plans.back().get();
        return 0;
      },
      &blocking);
  // The fault stream must actually have bitten (else the test is vacuous).
  EXPECT_GT(plans.front()->stats().bits_flipped +
                plans.front()->stats().dropped_messages,
            0u);
}

TEST(SansioCertified, ChaosPlanInteropMatchesBlocking) {
  // Crash/restart chaos: checkpoint resume in both modes, with
  // checkpoint.snapshots / checkpoint.restores / chaos.* counters and
  // restarts/bits_replayed asserted identical by the harness. Park
  // resumes must NOT leak into checkpoint.restores.
  sim::ChaosSpec spec;
  spec.players = 2;
  spec.seed = 0xC405;
  spec.crash.crash_prob = 0.04;
  spec.crash.restart_ticks = 3;
  std::vector<std::unique_ptr<sim::ChaosPlan>> plans;
  VerifiedRunResult blocking, machined;
  differential_certified_session(
      0xC406,
      [&](SessionHooks& hooks) {
        plans.push_back(std::make_unique<sim::ChaosPlan>(spec, 0xC407));
        hooks.chaos = plans.back().get();
        return 0;
      },
      &blocking, &machined);
  EXPECT_GT(plans.front()->stats().crashes, 0u);
  EXPECT_GT(blocking.restarts, 0u);
  EXPECT_EQ(blocking.restarts, machined.restarts);
}

TEST(SansioCertified, BudgetCapInteropMatchesBlocking) {
  // A bit cap that trips mid-session: identical ladder descent
  // (retry -> degrade) and identical budget.checks/budget.exhaustions in
  // both modes — the park-resume stepping must not re-run (or skip) any
  // between-attempt budget check.
  VerifiedRunResult blocking;
  differential_certified_session(
      0xB0D6,
      [](SessionHooks& hooks) {
        hooks.budget.max_bits = 64;
        return 0;
      },
      &blocking);
  EXPECT_TRUE(blocking.degraded);
  EXPECT_EQ(blocking.budget_reason, core::BudgetDimension::kBits);
}

TEST(SansioCertified, BudgetRefusalInteropMatchesBlocking) {
  // Bottom rung: strict-SLA refusal instead of a superset, same in both
  // modes (retry -> degrade -> REFUSE end of the ladder).
  VerifiedRunResult blocking;
  differential_certified_session(
      0xB0D7,
      [](SessionHooks& hooks) {
        hooks.budget.max_bits = 64;
        hooks.budget.refuse_on_exhaustion = true;
        return 0;
      },
      &blocking);
  EXPECT_TRUE(blocking.refused);
  EXPECT_TRUE(blocking.intersection.empty());
  EXPECT_EQ(blocking.rung, core::DegradeRung::kRefused);
}

TEST(SansioCertified, SchedulerDrivesCertifiedSessions) {
  // Certified sessions as scheduler citizens: a small interleaved fleet,
  // each compared against its blocking twin. Every session gets its own
  // tracer (thread/session affinity), faults on odd sessions.
  constexpr std::size_t kSessions = 24;
  sim::FaultSpec spec;
  spec.flip_per_bit = 3e-4;
  spec.seed = 0x0DD5;

  std::vector<VerifiedRunResult> blocking(kSessions);
  for (std::size_t g = 0; g < kSessions; ++g) {
    const SessionInputs in = certified_inputs(util::mix64(0x5CED, g));
    sim::FaultPlan plan(spec);
    SessionHooks hooks;
    if (g % 2 == 1) hooks.faults = &plan;
    const sim::SharedRandomness shared(in.seed);
    blocking[g] = multiparty::verified_two_party_intersection(
        shared, in.nonce, in.universe, in.s, in.t, {}, 0, in.retry, hooks);
  }

  runtime::Scheduler sched([] {
    runtime::SchedulerOptions o;
    o.seed = 0x5CEE;
    o.chunk_bytes = 9;
    o.arrival_window = 8;
    return o;
  }());
  std::vector<std::unique_ptr<sim::FaultPlan>> plans;
  for (std::size_t g = 0; g < kSessions; ++g) {
    const SessionInputs in = certified_inputs(util::mix64(0x5CED, g));
    SessionMachineConfig cfg;
    cfg.seed = in.seed;
    cfg.nonce = in.nonce;
    cfg.universe = in.universe;
    cfg.s = in.s;
    cfg.t = in.t;
    cfg.retry = in.retry;
    if (g % 2 == 1) {
      plans.push_back(std::make_unique<sim::FaultPlan>(spec));
      cfg.hooks.faults = plans.back().get();
    }
    sched.add(std::make_unique<VerifiedSessionMachine>(std::move(cfg)), g);
  }
  sched.run();
  EXPECT_EQ(sched.completed(), kSessions);
  for (std::size_t g = 0; g < kSessions; ++g) {
    ASSERT_EQ(sched.record(g).final_status, core::MachineStatus::kDone) << g;
    EXPECT_EQ(sched.record(g).result_fingerprint,
              multiparty::fingerprint_verified_result(blocking[g]))
        << g;
    EXPECT_EQ(sched.record(g).bits_total, blocking[g].cost.bits_total) << g;
  }
}

}  // namespace
}  // namespace setint
