// Tests for the skewed workload generators and protocol robustness on
// non-uniform inputs (the protocols' guarantees are distribution-free;
// these tests check the implementation honours that).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"
#include "util/workloads.h"

namespace setint {
namespace {

TEST(ZipfSet, BasicProperties) {
  util::Rng rng(1);
  const util::Set s = util::zipf_set(rng, 1u << 24, 500, 1.0);
  EXPECT_EQ(s.size(), 500u);
  EXPECT_TRUE(util::is_canonical_set(s));
  EXPECT_LT(s.back(), 1u << 24);
}

TEST(ZipfSet, ThetaZeroIsRoughlyUniform) {
  // At theta = 0 the rank distribution is uniform; the id mixing keeps it
  // uniform, so the mean element should be near universe/2.
  util::Rng rng(2);
  const std::uint64_t universe = 1u << 20;
  const util::Set s = util::zipf_set(rng, universe, 2000, 0.0);
  double mean = 0;
  for (std::uint64_t x : s) mean += static_cast<double>(x);
  mean /= static_cast<double>(s.size());
  EXPECT_NEAR(mean, static_cast<double>(universe) / 2,
              static_cast<double>(universe) / 12);
}

TEST(ZipfSet, HighThetaConcentratesOnFewRanks) {
  // With strong skew, repeatedly sampled sets share many elements (the
  // popular ranks map to the same mixed ids).
  util::Rng rng(3);
  const util::Set a = util::zipf_set(rng, 1u << 24, 200, 1.4);
  const util::Set b = util::zipf_set(rng, 1u << 24, 200, 1.4);
  EXPECT_GT(util::set_intersection(a, b).size(), 50u);
}

TEST(ZipfSet, ThetaExactlyOneUsesLogarithmicBranch) {
  // theta == 1 takes a dedicated inverse-CDF branch; it must produce a
  // valid skewed set like its neighbours.
  util::Rng rng(21);
  const util::Set s = util::zipf_set(rng, 1u << 22, 300, 1.0);
  EXPECT_EQ(s.size(), 300u);
  EXPECT_TRUE(util::is_canonical_set(s));
  // Skew sanity: two theta=1 draws share noticeably more than uniform
  // draws would (300^2 / 2^22 ~ 0.02 expected collisions for uniform).
  const util::Set s2 = util::zipf_set(rng, 1u << 22, 300, 1.0);
  EXPECT_GT(util::set_intersection(s, s2).size(), 20u);
}

TEST(ClusteredSet, WrapsAroundUniverseEnd) {
  // Force a cluster near the top so the (start + i) % universe wrap path
  // runs; the set must remain canonical and inside the universe.
  util::Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const util::Set s = util::clustered_set(rng, 1000, 400, 1);
    EXPECT_EQ(s.size(), 400u);
    EXPECT_TRUE(util::is_canonical_set(s));
    EXPECT_LT(s.back(), 1000u);
  }
}

TEST(ZipfSet, RejectsBadParameters) {
  util::Rng rng(4);
  EXPECT_THROW(util::zipf_set(rng, 100, 60, 1.0), std::invalid_argument);
  EXPECT_THROW(util::zipf_set(rng, 100, 10, -0.5), std::invalid_argument);
}

TEST(ClusteredSet, BasicProperties) {
  util::Rng rng(5);
  const util::Set s = util::clustered_set(rng, 1u << 24, 400, 4);
  EXPECT_EQ(s.size(), 400u);
  EXPECT_TRUE(util::is_canonical_set(s));
  // Clustered: most adjacent gaps are exactly 1.
  std::size_t unit_gaps = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    unit_gaps += (s[i] - s[i - 1] == 1);
  }
  EXPECT_GT(unit_gaps, s.size() * 8 / 10);
}

TEST(ClusteredSet, RejectsBadParameters) {
  util::Rng rng(6);
  EXPECT_THROW(util::clustered_set(rng, 100, 10, 0), std::invalid_argument);
}

struct SkewCase {
  double theta;
  std::size_t clusters;
};

class SkewedPair : public ::testing::TestWithParam<SkewCase> {};

TEST_P(SkewedPair, ExactOverlapAndProtocolCorrectness) {
  util::Rng rng(7 + static_cast<std::uint64_t>(GetParam().theta * 10) +
                GetParam().clusters);
  util::SkewedPairOptions options;
  options.universe = 1u << 26;
  options.k = 1024;
  options.shared = 512;
  options.zipf_theta = GetParam().theta;
  options.clusters = GetParam().clusters;
  const util::SetPair p = util::skewed_set_pair(rng, options);
  EXPECT_EQ(p.s.size(), options.k);
  EXPECT_EQ(p.t.size(), options.k);
  EXPECT_EQ(p.expected_intersection.size(), options.shared);

  // The protocol must be exactly as reliable on skewed inputs: the bucket
  // hash is the protocol's own randomness, not the adversary's.
  sim::SharedRandomness shared(99);
  sim::Channel ch;
  const auto out = core::verification_tree_intersection(
      ch, shared, 0, options.universe, p.s, p.t, {});
  EXPECT_EQ(out.alice, p.expected_intersection);
  EXPECT_EQ(out.bob, p.expected_intersection);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SkewedPair,
                         ::testing::Values(SkewCase{0.0, 0},
                                           SkewCase{0.8, 0},
                                           SkewCase{1.2, 0},
                                           SkewCase{0.0, 2},
                                           SkewCase{0.0, 16}));

TEST(SkewRobustness, CostsMatchUniformWithinTolerance) {
  // Communication on skewed inputs should be within a small factor of the
  // uniform-workload cost at the same (k, overlap).
  const std::size_t k = 4096;
  auto cost_of = [&](const util::SetPair& p) {
    sim::SharedRandomness shared(5);
    sim::Channel ch;
    core::verification_tree_intersection(ch, shared, 0, 1u << 26, p.s, p.t,
                                         {});
    return static_cast<double>(ch.cost().bits_total);
  };
  util::Rng rng(8);
  const util::SetPair uniform = util::random_set_pair(rng, 1u << 26, k, k / 2);
  util::SkewedPairOptions zipf_options;
  zipf_options.universe = 1u << 26;
  zipf_options.k = k;
  zipf_options.shared = k / 2;
  zipf_options.zipf_theta = 1.1;
  const util::SetPair zipf = util::skewed_set_pair(rng, zipf_options);
  util::SkewedPairOptions cluster_options;
  cluster_options.universe = 1u << 26;
  cluster_options.k = k;
  cluster_options.shared = k / 2;
  cluster_options.clusters = 8;
  const util::SetPair clustered = util::skewed_set_pair(rng, cluster_options);

  const double base = cost_of(uniform);
  EXPECT_NEAR(cost_of(zipf), base, base * 0.25);
  EXPECT_NEAR(cost_of(clustered), base, base * 0.25);
}

}  // namespace
}  // namespace setint
