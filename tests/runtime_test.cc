// Tests for the strictly-separated execution mode: scheduler behaviour,
// party correctness, and BIT-FOR-BIT transcript equivalence with the
// driver-style implementations — the strongest evidence that the driver
// versions use no out-of-band knowledge.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/basic_intersection.h"
#include "core/one_round_hash.h"
#include "core/parties.h"
#include "eq/equality.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "sim/runtime.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

util::BitBuffer content(std::uint64_t v) {
  util::BitBuffer b;
  b.append_bits(v, 40);
  return b;
}

// ---------- scheduler ----------

class StallingParty final : public sim::Party {
 public:
  std::optional<util::BitBuffer> start() override { return util::BitBuffer{}; }
  std::optional<util::BitBuffer> on_message(const util::BitBuffer&) override {
    return std::nullopt;  // never finishes, never replies
  }
  bool done() const override { return false; }
};

TEST(Runtime, DetectsStalledConversations) {
  sim::Channel ch;
  StallingParty a;
  StallingParty b;
  EXPECT_THROW(sim::run_two_party(ch, a, b), std::runtime_error);
}

class ChattyParty final : public sim::Party {
 public:
  std::optional<util::BitBuffer> start() override { return util::BitBuffer{}; }
  std::optional<util::BitBuffer> on_message(const util::BitBuffer&) override {
    return util::BitBuffer{};  // ping-pong forever
  }
  bool done() const override { return false; }
};

TEST(Runtime, EnforcesMessageBudget) {
  sim::Channel ch;
  ChattyParty a;
  ChattyParty b;
  EXPECT_THROW(sim::run_two_party(ch, a, b, /*max_messages=*/100),
               std::runtime_error);
}

// ---------- equality parties ----------

TEST(RuntimeEquality, CorrectVerdicts) {
  sim::SharedRandomness shared(1);
  {
    sim::Channel ch;
    core::EqualitySender alice(shared, 0, content(7), 24);
    core::EqualityResponder bob(shared, 0, content(7), 24);
    sim::run_two_party(ch, alice, bob);
    EXPECT_TRUE(alice.declared_equal());
    EXPECT_TRUE(bob.declared_equal());
    EXPECT_EQ(ch.cost().bits_total, 25u);
    EXPECT_EQ(ch.cost().rounds, 2u);
  }
  {
    sim::Channel ch;
    core::EqualitySender alice(shared, 1, content(7), 24);
    core::EqualityResponder bob(shared, 1, content(8), 24);
    sim::run_two_party(ch, alice, bob);
    EXPECT_FALSE(alice.declared_equal());
    EXPECT_FALSE(bob.declared_equal());
  }
}

TEST(RuntimeEquality, TranscriptMatchesDriverBitForBit) {
  for (std::uint64_t nonce = 0; nonce < 20; ++nonce) {
    sim::SharedRandomness shared(42);
    const util::BitBuffer xa = content(nonce * 3);
    const util::BitBuffer xb = content(nonce % 2 ? nonce * 3 : nonce * 3 + 1);

    sim::Channel driver_ch(/*record_transcript=*/true);
    const bool driver_verdict =
        eq::equality_test(driver_ch, shared, nonce, xa, xb, 16);

    sim::Channel fsm_ch(/*record_transcript=*/true);
    core::EqualitySender alice(shared, nonce, xa, 16);
    core::EqualityResponder bob(shared, nonce, xb, 16);
    sim::run_two_party(fsm_ch, alice, bob);

    EXPECT_EQ(driver_ch.transcript()->digest(), fsm_ch.transcript()->digest())
        << nonce;
    EXPECT_EQ(driver_verdict, alice.declared_equal()) << nonce;
    EXPECT_EQ(driver_ch.cost().bits_total, fsm_ch.cost().bits_total);
  }
}

// ---------- one-round hashing parties ----------

TEST(RuntimeOneRound, ComputesIntersection) {
  util::Rng wrng(2);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 256, 128);
  sim::SharedRandomness shared(2);
  sim::Channel ch;
  const std::uint64_t k_bound = 256;
  core::OneRoundHashAlice alice(shared, 0, 1u << 24, p.s, k_bound);
  core::OneRoundHashBob bob(shared, 0, 1u << 24, p.t, k_bound);
  sim::run_two_party(ch, alice, bob);
  EXPECT_EQ(alice.candidates(), p.expected_intersection);
  EXPECT_EQ(bob.candidates(), p.expected_intersection);
  EXPECT_EQ(ch.cost().rounds, 2u);
}

TEST(RuntimeOneRound, TranscriptMatchesDriverBitForBit) {
  util::Rng wrng(3);
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const std::size_t k = 16 + wrng.below(200);
    const util::SetPair p =
        util::random_set_pair(wrng, 1u << 26, k, wrng.below(k + 1));
    sim::SharedRandomness shared(trial);

    sim::Channel driver_ch(/*record_transcript=*/true);
    const core::IntersectionOutput driver_out =
        core::one_round_hash(driver_ch, shared, trial, 1u << 26, p.s, p.t);

    sim::Channel fsm_ch(/*record_transcript=*/true);
    // The driver derives the bound from both inputs; pass the same value.
    const std::uint64_t k_bound = std::max(p.s.size(), p.t.size());
    core::OneRoundHashAlice alice(shared, trial, 1u << 26, p.s, k_bound);
    core::OneRoundHashBob bob(shared, trial, 1u << 26, p.t, k_bound);
    sim::run_two_party(fsm_ch, alice, bob);

    EXPECT_EQ(driver_ch.transcript()->digest(), fsm_ch.transcript()->digest())
        << trial;
    EXPECT_EQ(driver_out.alice, alice.candidates()) << trial;
    EXPECT_EQ(driver_out.bob, bob.candidates()) << trial;
  }
}

// ---------- Basic-Intersection parties ----------

TEST(RuntimeBasicIntersection, LemmaProperties) {
  util::Rng wrng(4);
  for (std::uint64_t trial = 0; trial < 15; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 64, 32);
    sim::SharedRandomness shared(trial);
    sim::Channel ch;
    core::BasicIntersectionAlice alice(shared, trial, 1u << 24, p.s, 0.01);
    core::BasicIntersectionBob bob(shared, trial, 1u << 24, p.t, 0.01);
    sim::run_two_party(ch, alice, bob);
    EXPECT_TRUE(util::is_subset(alice.candidates(), p.s));
    EXPECT_TRUE(util::is_subset(bob.candidates(), p.t));
    EXPECT_TRUE(util::is_subset(p.expected_intersection, alice.candidates()));
    EXPECT_TRUE(util::is_subset(p.expected_intersection, bob.candidates()));
    EXPECT_EQ(ch.cost().rounds, 4u);
  }
}

TEST(RuntimeBasicIntersection, TranscriptMatchesDriverBitForBit) {
  util::Rng wrng(5);
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const std::size_t k = 4 + wrng.below(100);
    const util::SetPair p =
        util::random_set_pair(wrng, 1u << 22, k, wrng.below(k + 1));
    sim::SharedRandomness shared(trial * 7);

    sim::Channel driver_ch(/*record_transcript=*/true);
    const core::CandidatePair driver_out = core::basic_intersection(
        driver_ch, shared, trial, 1u << 22, p.s, p.t, 0.05);

    sim::Channel fsm_ch(/*record_transcript=*/true);
    core::BasicIntersectionAlice alice(shared, trial, 1u << 22, p.s, 0.05);
    core::BasicIntersectionBob bob(shared, trial, 1u << 22, p.t, 0.05);
    sim::run_two_party(fsm_ch, alice, bob);

    EXPECT_EQ(driver_ch.transcript()->digest(), fsm_ch.transcript()->digest())
        << trial;
    EXPECT_EQ(driver_out.s_candidate, alice.candidates()) << trial;
    EXPECT_EQ(driver_out.t_candidate, bob.candidates()) << trial;
  }
}

TEST(RuntimeBasicIntersection, EmptySideShortCircuits) {
  sim::SharedRandomness shared(6);
  sim::Channel ch;
  core::BasicIntersectionAlice alice(shared, 0, 1000, util::Set{}, 0.01);
  core::BasicIntersectionBob bob(shared, 0, 1000, util::Set{1, 2}, 0.01);
  sim::run_two_party(ch, alice, bob);
  EXPECT_TRUE(alice.candidates().empty());
  EXPECT_TRUE(bob.candidates().empty());
  EXPECT_LT(ch.cost().bits_total, 10u);
}

}  // namespace
}  // namespace setint
