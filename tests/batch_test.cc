// The batch engine's contract: parallel execution is bit-identical to
// serial execution. Engine-level tests cover scheduling, exception
// determinism and transcript digests (the machinery of runtime_test.cc);
// facade-level tests pin results, per-session reports and merged metrics
// JSON across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/verification_tree.h"
#include "obs/tracer.h"
#include "runtime/batch.h"
#include "setint.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- engine scheduling ----------

TEST(RunSessions, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    runtime::run_sessions(hits.size(), threads,
                          [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(RunSessions, ZeroCountIsANoop) {
  runtime::run_sessions(0, 8, [](std::size_t) { FAIL(); });
}

TEST(RunSessions, ResolveThreads) {
  EXPECT_EQ(runtime::resolve_threads(1), 1);
  EXPECT_EQ(runtime::resolve_threads(5), 5);
  EXPECT_GE(runtime::resolve_threads(0), 1);  // hardware concurrency
}

TEST(RunSessions, RethrowsLowestIndexRegardlessOfThreads) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(64);
    try {
      runtime::run_sessions(hits.size(), threads, [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (i == 7 || i == 41) {
          throw std::runtime_error("session " + std::to_string(i));
        }
      });
      FAIL() << "expected a rethrow at threads=" << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "session 7") << "threads " << threads;
    }
    // Every session still ran despite the failures — exception handling
    // must not change which sessions execute.
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

// ---------- engine-level transcript determinism ----------

// Each session runs the full verification-tree protocol on a recording
// channel and reports its transcript digest — the strongest per-session
// observable (every message, bit for bit, in order).
std::vector<std::uint64_t> transcript_digests(int threads) {
  constexpr std::size_t kSessions = 24;
  std::vector<std::uint64_t> digests(kSessions);
  runtime::run_sessions(kSessions, threads, [&](std::size_t i) {
    const std::uint64_t seed = batch_session_seed(0xD16E57, i);
    util::Rng wrng(seed);
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 96, 48);
    sim::SharedRandomness shared(seed);
    sim::Channel ch(/*record_transcript=*/true);
    core::verification_tree_intersection(ch, shared, seed, 1u << 24, p.s,
                                         p.t, {});
    digests[i] = ch.transcript()->digest();
  });
  return digests;
}

TEST(BatchDeterminism, TranscriptDigestsIdenticalAcrossThreadCounts) {
  const std::vector<std::uint64_t> serial = transcript_digests(1);
  EXPECT_EQ(serial, transcript_digests(2));
  EXPECT_EQ(serial, transcript_digests(8));
}

// ---------- facade-level determinism ----------

struct Workload {
  std::vector<util::SetPair> pairs;
  std::vector<Instance> instances;
};

Workload make_workload(std::size_t sessions) {
  Workload w;
  w.pairs.reserve(sessions);
  util::Rng wrng(0xBA7C);
  for (std::size_t i = 0; i < sessions; ++i) {
    w.pairs.push_back(
        util::random_set_pair(wrng, 1u << 22, 48 + wrng.below(64),
                              wrng.below(32)));
  }
  for (const util::SetPair& p : w.pairs) {
    w.instances.push_back({p.s, p.t});
  }
  return w;
}

TEST(BatchDeterminism, RunBatchBitIdenticalAcrossThreadCounts) {
  const Workload w = make_workload(32);
  const IntersectOptions options{.universe = 1u << 22, .seed = 99};

  const BatchResult serial =
      run_batch(options, w.instances, {.threads = 1, .trace = true});
  ASSERT_EQ(serial.results.size(), w.instances.size());

  for (int threads : {2, 8}) {
    const BatchResult parallel =
        run_batch(options, w.instances, {.threads = threads, .trace = true});
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      const IntersectResult& a = serial.results[i];
      const IntersectResult& b = parallel.results[i];
      EXPECT_EQ(a.intersection, b.intersection) << i;
      EXPECT_EQ(a.bits, b.bits) << i;
      EXPECT_EQ(a.rounds, b.rounds) << i;
      EXPECT_EQ(a.verified, b.verified) << i;
      EXPECT_EQ(a.repetitions, b.repetitions) << i;
      // Per-session run reports serialize byte-for-byte identically.
      EXPECT_EQ(a.report.ToJson().dump(2), b.report.ToJson().dump(2)) << i;
    }
    // Merged metrics JSON: byte-for-byte independent of thread count.
    EXPECT_EQ(serial.metrics.ToJson().dump(2),
              parallel.metrics.ToJson().dump(2))
        << "threads=" << threads;
  }
}

TEST(RunBatch, ResultsAreCorrectAndSeedReproducible) {
  const Workload w = make_workload(8);
  const IntersectOptions options{.universe = 1u << 22, .seed = 7};
  const BatchResult out = run_batch(options, w.instances, {.threads = 2});
  for (std::size_t i = 0; i < w.pairs.size(); ++i) {
    EXPECT_EQ(out.results[i].intersection, w.pairs[i].expected_intersection)
        << i;
    EXPECT_TRUE(out.results[i].verified) << i;
    // Any batch session is reproducible standalone via the published
    // seed derivation.
    IntersectOptions single = options;
    single.seed = batch_session_seed(options.seed, i);
    const IntersectResult solo =
        intersect(w.instances[i].s, w.instances[i].t, single);
    EXPECT_EQ(solo.intersection, out.results[i].intersection) << i;
    EXPECT_EQ(solo.bits, out.results[i].bits) << i;
  }
}

TEST(RunBatch, MergedMetricsEqualSessionOrderFold) {
  const Workload w = make_workload(6);
  const IntersectOptions options{.universe = 1u << 22, .seed = 3};
  const BatchResult batched =
      run_batch(options, w.instances, {.threads = 8, .trace = true});

  // Reference fold: run each session standalone and merge in order.
  obs::MetricsRegistry expected;
  for (std::size_t i = 0; i < w.instances.size(); ++i) {
    obs::Tracer tracer;
    IntersectOptions single = options;
    single.seed = batch_session_seed(options.seed, i);
    single.tracer = &tracer;
    intersect(w.instances[i].s, w.instances[i].t, single);
    expected.merge(tracer.metrics());
  }
  EXPECT_EQ(batched.metrics.ToJson().dump(2), expected.ToJson().dump(2));
}

TEST(RunBatch, RejectsSharedStatefulHooks) {
  const Workload w = make_workload(2);
  obs::Tracer tracer;
  IntersectOptions options{.universe = 1u << 22};
  options.tracer = &tracer;
  EXPECT_THROW(run_batch(options, w.instances, {}), std::invalid_argument);
}

TEST(RunBatch, EmptyBatch) {
  const BatchResult out = run_batch({}, {}, {.threads = 4});
  EXPECT_TRUE(out.results.empty());
  EXPECT_TRUE(out.metrics.empty());
}

}  // namespace
}  // namespace setint
