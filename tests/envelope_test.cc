// Tests for the theory-conformance auditor (obs/envelope.h): predicted
// bit shapes, constant fitting, hard-fail triggers (bit bound, round
// budget, missing coverage), the Chernoff error-budget audit, and golden
// audits pinned against the reference-instance transcript digests shared
// with tests/golden_test.cc and exp_cpu's E-CPU.0 gate.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/bucket_eq.h"
#include "core/one_round_hash.h"
#include "core/verification_tree.h"
#include "obs/envelope.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/channel.h"
#include "sim/fault.h"
#include "sim/randomness.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

using obs::EnvelopeAuditor;
using obs::EnvelopeSample;

// ---------- predicted shapes ----------

TEST(Envelope, PredictedShapesMatchTheTheoremCosts) {
  // bucket_eq / basic_intersection are linear in k (Theorem 3.1 /
  // Lemma 3.9).
  EXPECT_DOUBLE_EQ(EnvelopeAuditor::predicted_bits("bucket_eq", 1024, 0),
                   1024.0);
  EXPECT_DOUBLE_EQ(
      EnvelopeAuditor::predicted_bits("basic_intersection", 4096, 0), 4096.0);
  // one_round_hash: k * log2 k (the r = 1 base case).
  EXPECT_DOUBLE_EQ(EnvelopeAuditor::predicted_bits("one_round_hash", 512, 0),
                   512.0 * 9.0);
  // verification_tree: k * (ilog_r k + r), Theorem 3.6's telescoped cost.
  const double expected =
      512.0 * (std::max(1.0, util::iterated_log(2, 512.0)) + 2.0);
  EXPECT_DOUBLE_EQ(EnvelopeAuditor::predicted_bits("verification_tree", 512, 2),
                   expected);
  // repetitions scale the verified-run envelope linearly.
  EXPECT_DOUBLE_EQ(
      EnvelopeAuditor::predicted_bits("verified_intersection", 512, 2, 3),
      3.0 * EnvelopeAuditor::predicted_bits("verified_intersection", 512, 2, 1));
}

TEST(Envelope, EffectiveRResolvesAutoToLogStar) {
  EXPECT_EQ(EnvelopeAuditor::effective_r(512, 3), 3);
  const int auto_r = EnvelopeAuditor::effective_r(512, 0);
  EXPECT_EQ(auto_r, std::max(1, util::log_star(512.0)));
}

TEST(Envelope, RoundBudgetsMatchTheoremOneDotOne) {
  EXPECT_EQ(EnvelopeAuditor::rounds_budget("verification_tree", 512, 4), 24u);
  EXPECT_EQ(EnvelopeAuditor::rounds_budget("one_round_hash", 512, 0), 2u);
  EXPECT_EQ(EnvelopeAuditor::rounds_budget("basic_intersection", 512, 0), 4u);
  // bucket_eq: 8 per binary-search level.
  EXPECT_EQ(EnvelopeAuditor::rounds_budget("bucket_eq", 512, 0), 8u * 9u);
  // verified_intersection: (6r + 4) per certified attempt.
  EXPECT_EQ(EnvelopeAuditor::rounds_budget("verified_intersection", 512, 2, 3),
            3u * (6u * 2u + 4u));
}

TEST(Envelope, UnknownProtocolThrows) {
  EnvelopeAuditor auditor;
  EXPECT_THROW(auditor.expect("quantum_telepathy"), std::invalid_argument);
  EXPECT_THROW(EnvelopeAuditor::predicted_bits("nope", 8, 1),
               std::invalid_argument);
  EXPECT_FALSE(EnvelopeAuditor::known_protocol("nope"));
  EXPECT_TRUE(EnvelopeAuditor::known_protocol("verification_tree"));
}

// ---------- fitting and verdicts ----------

TEST(Envelope, FitsTheWorstCaseConstant) {
  EnvelopeAuditor auditor;
  const double p1 = EnvelopeAuditor::predicted_bits("bucket_eq", 100, 0);
  const double p2 = EnvelopeAuditor::predicted_bits("bucket_eq", 1000, 0);
  auditor.add("bucket_eq",
              {100, 0, static_cast<std::uint64_t>(5 * p1), 8, 1});
  auditor.add("bucket_eq",
              {1000, 0, static_cast<std::uint64_t>(20 * p2), 8, 1});
  const auto audits = auditor.audit();
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_NEAR(audits[0].fitted_c, 20.0, 1e-9);
  EXPECT_NEAR(audits[0].mean_c, 12.5, 1e-9);
  EXPECT_EQ(audits[0].worst_k, 1000u);
  EXPECT_NEAR(audits[0].slack, 30.0 / 20.0, 1e-9);
  EXPECT_TRUE(audits[0].within());  // 20 <= bound 30
  EXPECT_TRUE(auditor.all_within());
}

TEST(Envelope, BitBoundViolationTripsTheAudit) {
  EnvelopeAuditor auditor;
  const double p = EnvelopeAuditor::predicted_bits("bucket_eq", 256, 0);
  auditor.add("bucket_eq",
              {256, 0, static_cast<std::uint64_t>(31 * p), 8, 1});
  const auto audits = auditor.audit();
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_FALSE(audits[0].bits_within);
  EXPECT_LT(audits[0].slack, 1.0);
  EXPECT_FALSE(auditor.all_within());
}

TEST(Envelope, RoundBudgetViolationTripsTheAudit) {
  EnvelopeAuditor auditor;
  // Cheap on bits, but one round over the 6r budget.
  auditor.add("verification_tree", {512, 1, 512, 7, 1});
  const auto audits = auditor.audit();
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_TRUE(audits[0].bits_within);
  EXPECT_EQ(audits[0].rounds_violations, 1u);
  EXPECT_FALSE(audits[0].within());
  EXPECT_FALSE(auditor.all_within());
}

TEST(Envelope, RegisteredButUnsampledProtocolFails) {
  // Coverage silently vanishing is a regression: a bench that stops
  // feeding a protocol it promised must go red, not green.
  EnvelopeAuditor auditor;
  auditor.expect("one_round_hash");
  const auto audits = auditor.audit();
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_EQ(audits[0].samples, 0u);
  EXPECT_FALSE(audits[0].within());
  EXPECT_FALSE(auditor.all_within());
}

TEST(Envelope, EmptyAuditorIsNotAPass) {
  EXPECT_FALSE(EnvelopeAuditor().all_within());
}

TEST(Envelope, ToJsonCarriesTheVerdict) {
  EnvelopeAuditor auditor;
  auditor.add("bucket_eq", {64, 0, 640, 8, 1});
  const obs::Json doc = auditor.ToJson();
  EXPECT_TRUE(doc.find("all_within")->as_bool());
  ASSERT_EQ(doc.find("protocols")->size(), 1u);
  const obs::Json& entry = doc.find("protocols")->at(0);
  EXPECT_EQ(entry.find("protocol")->as_string(), "bucket_eq");
  EXPECT_TRUE(entry.find("within")->as_bool());
}

// ---------- golden-pinned audits ----------

// Constants shared with tests/golden_test.cc and exp_cpu's E-CPU.0 gate:
// the reference instance (seeds independent of any flag) must stay
// bit-identical AND inside its envelope. If a digest here changes, the
// protocol changed; if a digest holds but the envelope trips, the
// calibration drifted — the two failure modes are distinguishable.
struct GoldenRun {
  std::uint64_t bits = 0;
  std::uint64_t rounds = 0;
  std::uint64_t digest = 0;
};

GoldenRun run_reference(const char* protocol) {
  util::Rng wrng(12345);
  const util::SetPair pair =
      util::random_set_pair(wrng, 1u << 24, 512, 256);
  sim::SharedRandomness shared{777};
  sim::Channel ch(/*record_transcript=*/true);
  const std::string name = protocol;
  if (name == "verification_tree") {
    core::verification_tree_intersection(ch, shared, 42, 1u << 24, pair.s,
                                         pair.t, {});
  } else if (name == "one_round_hash") {
    core::one_round_hash(ch, shared, 42, 1u << 24, pair.s, pair.t);
  } else {
    core::bucket_eq_intersection(ch, shared, 42, 1u << 24, pair.s, pair.t);
  }
  return {ch.cost().bits_total, ch.cost().rounds, ch.transcript()->digest()};
}

TEST(EnvelopeGolden, VerificationTreeReferenceWithinEnvelope) {
  const GoldenRun run = run_reference("verification_tree");
  EXPECT_EQ(run.bits, 17718u);
  EXPECT_EQ(run.rounds, 16u);
  EXPECT_EQ(run.digest, 0x076458b27132f643ull);
  EnvelopeAuditor auditor;
  auditor.add("verification_tree", {512, 0, run.bits, run.rounds, 1});
  EXPECT_TRUE(auditor.all_within());
}

TEST(EnvelopeGolden, OneRoundHashReferenceWithinEnvelope) {
  const GoldenRun run = run_reference("one_round_hash");
  EXPECT_EQ(run.bits, 27686u);
  EXPECT_EQ(run.digest, 0x9e818e562ca190cfull);
  EnvelopeAuditor auditor;
  auditor.add("one_round_hash", {512, 0, run.bits, run.rounds, 1});
  EXPECT_TRUE(auditor.all_within());
}

TEST(EnvelopeGolden, BucketEqReferenceWithinEnvelope) {
  const GoldenRun run = run_reference("bucket_eq");
  EXPECT_EQ(run.bits, 10201u);
  EXPECT_EQ(run.digest, 0xc18884eae55cd105ull);
  EnvelopeAuditor auditor;
  auditor.add("bucket_eq", {512, 0, run.bits, run.rounds, 1});
  EXPECT_TRUE(auditor.all_within());
}

// ---------- single-run audit + facade integration ----------

TEST(Envelope, AuditSingleRunReportsSlack) {
  const GoldenRun run = run_reference("verification_tree");
  const obs::Json audit = obs::audit_single_run(
      "verification_tree", {512, 0, run.bits, run.rounds, 1});
  EXPECT_EQ(audit.find("protocol")->as_string(), "verification_tree");
  EXPECT_TRUE(audit.find("within")->as_bool());
  EXPECT_GT(audit.find("slack")->number_or(0), 1.0);
  EXPECT_GT(audit.find("predicted_bits")->number_or(0), 0.0);
}

TEST(Envelope, FacadeAttachesAuditToCleanTracedRuns) {
  util::Rng rng(0xE57);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 20, 64, 32);
  obs::Tracer tracer;
  IntersectOptions options;
  options.universe = 1u << 20;
  options.seed = 9;
  options.tracer = &tracer;
  const IntersectResult result = intersect(pair.s, pair.t, options);
  ASSERT_TRUE(result.verified);
  const obs::Json report = result.report.ToJson();
  const obs::Json* envelope = report.find("envelope");
  ASSERT_NE(envelope, nullptr);
  EXPECT_EQ(envelope->find("protocol")->as_string(), "verified_intersection");
  EXPECT_TRUE(envelope->find("within")->as_bool());
  // The facade also publishes per-run hdr distributions.
  EXPECT_EQ(tracer.metrics().hdrs().count("run.bits"), 1u);
}

TEST(Envelope, FacadeOmitsAuditOutsideTheCleanModel) {
  // A faulted transport is outside the clean-protocol cost model; the
  // audit must be absent rather than wrong.
  util::Rng rng(0xE58);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 16, 32, 16);
  sim::FaultSpec spec;
  spec.flip_per_bit = 1e-3;
  spec.seed = 11;
  sim::FaultPlan plan(spec);
  obs::Tracer tracer;
  IntersectOptions options;
  options.universe = 1u << 16;
  options.seed = 13;
  options.tracer = &tracer;
  options.fault_plan = &plan;
  const IntersectResult result = intersect(pair.s, pair.t, options);
  const obs::Json report = result.report.ToJson();
  EXPECT_EQ(report.find("envelope"), nullptr);
}

// ---------- error-budget audit ----------

TEST(Envelope, ErrorBudgetAllowsChernoffMargin) {
  // mean = 10, sigma ~ 3.15: 15 failures sit inside the 3-sigma margin,
  // 30 do not.
  const obs::ErrorBudgetAudit ok = obs::audit_error_rate(15, 1000, 0.01);
  EXPECT_TRUE(ok.within);
  EXPECT_NEAR(ok.allowed, 10.0 + 3.0 * std::sqrt(10.0 * 0.99), 1e-9);
  const obs::ErrorBudgetAudit bad = obs::audit_error_rate(30, 1000, 0.01);
  EXPECT_FALSE(bad.within);
  EXPECT_TRUE(obs::audit_error_rate(0, 1000, 0.01).within);
  EXPECT_EQ(bad.ToJson().find("within")->as_bool(), false);
}

}  // namespace
}  // namespace setint
