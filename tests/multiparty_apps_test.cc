// Tests for the multi-party applications (m-way join, replica audit,
// similarity matrix) and incremental reconciliation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/multiparty_apps.h"
#include "apps/reconcile.h"
#include "sim/channel.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

std::vector<apps::Row> table_for(const util::Set& keys,
                                 const std::string& prefix) {
  std::vector<apps::Row> rows;
  for (std::uint64_t k : keys) {
    rows.push_back(apps::Row{k, prefix + std::to_string(k)});
  }
  return rows;
}

// ---------- m-way join ----------

TEST(MultipartyJoin, GathersPayloadsForCommonKeys) {
  util::Rng wrng(1);
  const auto inst = util::random_multi_sets(wrng, 1u << 22, 5, 64, 16);
  std::vector<std::vector<apps::Row>> tables;
  for (std::size_t p = 0; p < 5; ++p) {
    tables.push_back(table_for(inst.sets[p], "srv" + std::to_string(p) + "-"));
  }
  sim::Network net(5);
  sim::SharedRandomness shared(1);
  const apps::MultipartyJoinResult res =
      apps::multiparty_join(net, shared, 1u << 22, tables);
  ASSERT_EQ(res.rows.size(), inst.expected_intersection.size());
  for (std::size_t i = 0; i < res.rows.size(); ++i) {
    const std::uint64_t key = inst.expected_intersection[i];
    EXPECT_EQ(res.rows[i].key, key);
    ASSERT_EQ(res.rows[i].payloads.size(), 5u);
    for (std::size_t p = 0; p < 5; ++p) {
      EXPECT_EQ(res.rows[i].payloads[p],
                "srv" + std::to_string(p) + "-" + std::to_string(key));
    }
  }
  EXPECT_GT(res.key_bits, 0u);
  EXPECT_GT(res.payload_bits, 0u);
}

TEST(MultipartyJoin, SinglePlayerIsLocal) {
  std::vector<std::vector<apps::Row>> tables{
      table_for(util::Set{1, 2, 3}, "x")};
  sim::Network net(1);
  sim::SharedRandomness shared(2);
  const auto res = apps::multiparty_join(net, shared, 100, tables);
  EXPECT_EQ(res.rows.size(), 3u);
  EXPECT_EQ(res.payload_bits, 0u);
}

TEST(MultipartyJoin, RejectsDuplicateKeys) {
  std::vector<std::vector<apps::Row>> tables{
      {{1, "a"}, {1, "b"}}, {{1, "c"}}};
  sim::Network net(2);
  sim::SharedRandomness shared(3);
  EXPECT_THROW(apps::multiparty_join(net, shared, 100, tables),
               std::invalid_argument);
}

// ---------- replica audit ----------

TEST(ReplicaAudit, ReportsCoreAndDivergence) {
  util::Rng wrng(4);
  const auto inst = util::random_multi_sets(wrng, 1u << 22, 6, 100, 40);
  sim::Network net(6);
  sim::SharedRandomness shared(4);
  const apps::ReplicaAuditReport report =
      apps::replica_audit(net, shared, 1u << 22, inst.sets);
  EXPECT_EQ(report.fully_replicated, inst.expected_intersection);
  ASSERT_EQ(report.extra_count.size(), 6u);
  for (std::size_t p = 0; p < 6; ++p) {
    EXPECT_EQ(report.extra_count[p], 100u - 40u);
  }
  EXPECT_DOUBLE_EQ(report.replication_factor, 0.4);
  EXPECT_GT(report.protocol_bits, 0u);
}

TEST(ReplicaAudit, PerfectReplication) {
  const util::Set s{1, 5, 9};
  std::vector<util::Set> replicas(4, s);
  sim::Network net(4);
  sim::SharedRandomness shared(5);
  const auto report = apps::replica_audit(net, shared, 100, replicas);
  EXPECT_EQ(report.fully_replicated, s);
  EXPECT_DOUBLE_EQ(report.replication_factor, 1.0);
  for (std::size_t extra : report.extra_count) EXPECT_EQ(extra, 0u);
}

// ---------- similarity matrix ----------

TEST(SimilarityMatrix, MatchesLocalJaccard) {
  util::Rng wrng(6);
  std::vector<util::Set> sets;
  for (int i = 0; i < 4; ++i) {
    sets.push_back(util::random_set(wrng, 1u << 20, 64));
  }
  sim::Network net(4);
  sim::SharedRandomness shared(6);
  const auto matrix =
      apps::similarity_matrix(net, shared, 1u << 20, sets);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i][i], 1.0);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
      if (i != j) {
        const double inter = static_cast<double>(
            util::set_intersection(sets[i], sets[j]).size());
        const double uni =
            static_cast<double>(util::set_union(sets[i], sets[j]).size());
        EXPECT_DOUBLE_EQ(matrix[i][j], uni == 0 ? 1.0 : inter / uni);
      }
    }
  }
}

// ---------- incremental reconciliation ----------

struct ReconcileFixture {
  util::Set s_new;
  util::Set t_new;
  util::Set old_intersection;
  apps::Delta alice;
  apps::Delta bob;
  util::Set expected;
};

ReconcileFixture make_fixture(util::Rng& rng, std::size_t k,
                              std::size_t delta_size) {
  const util::SetPair base = util::random_set_pair(rng, 1u << 26, k, k / 2);
  ReconcileFixture f;
  f.old_intersection = base.expected_intersection;
  // Alice: remove `delta_size` of her elements, add `delta_size` fresh.
  f.s_new = base.s;
  f.t_new = base.t;
  auto apply_delta = [&rng](util::Set& set, apps::Delta& delta,
                            std::size_t count, std::uint64_t salt) {
    for (std::size_t i = 0; i < count && !set.empty(); ++i) {
      const std::size_t pos = rng.below(set.size());
      delta.removed.push_back(set[pos]);
      set.erase(set.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    std::sort(delta.removed.begin(), delta.removed.end());
    for (std::size_t i = 0; i < count; ++i) {
      for (;;) {
        const std::uint64_t x = (rng.next() ^ salt) % (1u << 26);
        if (!util::set_contains(set, x)) {
          set.insert(std::upper_bound(set.begin(), set.end(), x), x);
          delta.added.push_back(x);
          break;
        }
      }
    }
    std::sort(delta.added.begin(), delta.added.end());
  };
  apply_delta(f.s_new, f.alice, delta_size, 0x11);
  apply_delta(f.t_new, f.bob, delta_size, 0x22);
  f.expected = util::set_intersection(f.s_new, f.t_new);
  return f;
}

TEST(Reconcile, ExactAcrossRandomDeltas) {
  util::Rng rng(7);
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const ReconcileFixture f = make_fixture(rng, 256, 16);
    sim::SharedRandomness shared(trial);
    sim::Channel ch;
    const apps::ReconcileResult res = apps::reconcile_intersection(
        ch, shared, trial, 1u << 26, f.s_new, f.t_new, f.old_intersection,
        f.alice, f.bob);
    EXPECT_EQ(res.intersection, f.expected) << trial;
  }
}

TEST(Reconcile, CostScalesWithDeltaNotK) {
  util::Rng rng(8);
  const std::size_t k = 8192;
  const ReconcileFixture f = make_fixture(rng, k, 32);
  sim::SharedRandomness shared(8);
  sim::Channel delta_ch;
  const auto res = apps::reconcile_intersection(
      delta_ch, shared, 0, 1u << 26, f.s_new, f.t_new, f.old_intersection,
      f.alice, f.bob);
  ASSERT_EQ(res.intersection, f.expected);
  ASSERT_FALSE(res.used_fallback);

  sim::Channel full_ch;
  core::verification_tree_intersection(full_ch, shared, 1, 1u << 26, f.s_new,
                                       f.t_new, {});
  // Delta reconciliation should be at least 10x cheaper than a full run
  // at this delta/k ratio (32 of 8192).
  EXPECT_LT(delta_ch.cost().bits_total * 10, full_ch.cost().bits_total);
}

TEST(Reconcile, EmptyDeltasCostAlmostNothing) {
  util::Rng rng(9);
  const util::SetPair base = util::random_set_pair(rng, 1u << 24, 512, 256);
  sim::SharedRandomness shared(9);
  sim::Channel ch;
  const auto res = apps::reconcile_intersection(
      ch, shared, 0, 1u << 24, base.s, base.t, base.expected_intersection,
      {}, {});
  EXPECT_EQ(res.intersection, base.expected_intersection);
  EXPECT_LT(ch.cost().bits_total, 100u);
}

TEST(Reconcile, PureRemovals) {
  util::Rng rng(10);
  ReconcileFixture f;
  const util::SetPair base = util::random_set_pair(rng, 1u << 24, 128, 64);
  f.s_new = base.s;
  f.t_new = base.t;
  f.old_intersection = base.expected_intersection;
  // Alice removes the first three common elements.
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t victim = f.old_intersection[static_cast<std::size_t>(i)];
    f.alice.removed.push_back(victim);
    f.s_new.erase(std::find(f.s_new.begin(), f.s_new.end(), victim));
  }
  f.expected = util::set_intersection(f.s_new, f.t_new);
  sim::SharedRandomness shared(10);
  sim::Channel ch;
  const auto res = apps::reconcile_intersection(
      ch, shared, 0, 1u << 24, f.s_new, f.t_new, f.old_intersection, f.alice,
      f.bob);
  EXPECT_EQ(res.intersection, f.expected);
  EXPECT_EQ(res.intersection.size(), f.old_intersection.size() - 3);
}

TEST(Reconcile, OverlappingAdds) {
  // Both sides insert the same new element: it must join the intersection.
  util::Rng rng(11);
  const util::SetPair base = util::random_set_pair(rng, 1u << 24, 64, 32);
  ReconcileFixture f;
  f.s_new = base.s;
  f.t_new = base.t;
  f.old_intersection = base.expected_intersection;
  const std::uint64_t fresh = (1u << 24) - 7;
  ASSERT_FALSE(util::set_contains(f.s_new, fresh));
  f.s_new.insert(std::upper_bound(f.s_new.begin(), f.s_new.end(), fresh),
                 fresh);
  f.t_new.insert(std::upper_bound(f.t_new.begin(), f.t_new.end(), fresh),
                 fresh);
  f.alice.added.push_back(fresh);
  f.bob.added.push_back(fresh);
  f.expected = util::set_intersection(f.s_new, f.t_new);
  sim::SharedRandomness shared(11);
  sim::Channel ch;
  const auto res = apps::reconcile_intersection(
      ch, shared, 0, 1u << 24, f.s_new, f.t_new, f.old_intersection, f.alice,
      f.bob);
  EXPECT_EQ(res.intersection, f.expected);
  EXPECT_TRUE(util::set_contains(res.intersection, fresh));
}

}  // namespace
}  // namespace setint
