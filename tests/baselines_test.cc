// Tests for the baselines: deterministic exchange, one-round hashing, and
// the Hastad-Wigderson disjointness protocol.
#include <gtest/gtest.h>

#include <cstdint>

#include "baselines/hw_disjointness.h"
#include "baselines/st13_disjointness.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- deterministic exchange ----------

TEST(DeterministicExchange, AlwaysExact) {
  util::Rng wrng(1);
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 100, 50);
    sim::Channel ch;
    const auto out =
        core::deterministic_exchange(ch, 1u << 24, p.s, p.t, true);
    EXPECT_EQ(out.alice, p.expected_intersection);
    EXPECT_EQ(out.bob, p.expected_intersection);
  }
}

TEST(DeterministicExchange, OneSidedModeUsesSingleMessage) {
  util::Rng wrng(2);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 100, 50);
  sim::Channel ch;
  const auto out = core::deterministic_exchange(ch, 1u << 24, p.s, p.t,
                                                /*both_sides=*/false);
  EXPECT_EQ(ch.cost().messages, 1u);
  EXPECT_EQ(ch.cost().rounds, 1u);
  EXPECT_EQ(out.bob, p.expected_intersection);
}

TEST(DeterministicExchange, CostTracksKLogNOverK) {
  // Cost per element should grow with log(n/k): doubling the universe
  // exponent roughly doubles the per-element cost.
  util::Rng wrng(3);
  const std::size_t k = 256;
  const util::SetPair small =
      util::random_set_pair(wrng, std::uint64_t{1} << 20, k, 0);
  const util::SetPair large =
      util::random_set_pair(wrng, std::uint64_t{1} << 40, k, 0);
  sim::Channel ch_small;
  core::deterministic_exchange(ch_small, std::uint64_t{1} << 20, small.s,
                               small.t, false);
  sim::Channel ch_large;
  core::deterministic_exchange(ch_large, std::uint64_t{1} << 40, large.s,
                               large.t, false);
  const double per_small =
      static_cast<double>(ch_small.cost().bits_total) / k;
  const double per_large =
      static_cast<double>(ch_large.cost().bits_total) / k;
  EXPECT_GT(per_large, per_small * 1.5);
}

TEST(DeterministicExchange, EmptySets) {
  sim::Channel ch;
  const auto out =
      core::deterministic_exchange(ch, 100, util::Set{}, util::Set{}, true);
  EXPECT_TRUE(out.alice.empty());
  EXPECT_TRUE(out.bob.empty());
}

// ---------- one-round hashing ----------

struct HashCase {
  std::size_t k;
  std::size_t shared;
};

class OneRound : public ::testing::TestWithParam<HashCase> {};

TEST_P(OneRound, ExactWithHighProbability) {
  const HashCase c = GetParam();
  util::Rng wrng(c.k * 3 + c.shared);
  int exact = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, c.k, c.shared);
    sim::SharedRandomness shared(static_cast<std::uint64_t>(trial));
    sim::Channel ch;
    const auto out = core::one_round_hash(ch, shared, trial,
                                          std::uint64_t{1} << 30, p.s, p.t);
    EXPECT_EQ(ch.cost().rounds, 2u);
    EXPECT_TRUE(util::is_subset(p.expected_intersection, out.alice));
    EXPECT_TRUE(util::is_subset(out.alice, p.s));
    exact += (out.alice == p.expected_intersection &&
              out.bob == p.expected_intersection);
  }
  EXPECT_GE(exact, trials - 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OneRound,
                         ::testing::Values(HashCase{1, 1}, HashCase{16, 8},
                                           HashCase{64, 0}, HashCase{256, 256},
                                           HashCase{1024, 512}));

TEST(OneRound, CostIsOrderKLogK) {
  util::Rng wrng(4);
  const std::size_t k = 1024;
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 40, k, k / 2);
  sim::SharedRandomness shared(4);
  sim::Channel ch;
  core::one_round_hash(ch, shared, 0, std::uint64_t{1} << 40, p.s, p.t);
  const double per_element = static_cast<double>(ch.cost().bits_total) /
                             static_cast<double>(2 * k);
  // c log2 k with c = 3: 30 bits per element, plus small framing.
  EXPECT_NEAR(per_element, 30.0, 6.0);
}

TEST(OneRound, StrengthControlsErrorAndCost) {
  util::Rng wrng(5);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 256, 0);
  sim::SharedRandomness shared(5);
  sim::Channel weak;
  core::one_round_hash(weak, shared, 0, 1u << 24, p.s, p.t, 3);
  sim::Channel strong;
  core::one_round_hash(strong, shared, 0, 1u << 24, p.s, p.t, 5);
  EXPECT_GT(strong.cost().bits_total, weak.cost().bits_total);
  EXPECT_THROW(core::one_round_hash(weak, shared, 0, 1u << 24, p.s, p.t, 2),
               std::invalid_argument);
}

// ---------- HW disjointness ----------

TEST(HwDisjointness, DisjointInputsAnswerDisjoint) {
  util::Rng wrng(6);
  int correct = 0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 26, 128, 0);
    sim::SharedRandomness shared(static_cast<std::uint64_t>(trial));
    sim::Channel ch;
    const auto res =
        baselines::hw_disjointness(ch, shared, trial, 1u << 26, p.s, p.t);
    correct += res.disjoint;
  }
  EXPECT_GE(correct, trials - 2);  // errors only via rare hash collisions
}

TEST(HwDisjointness, IntersectingInputsNeverAnswerDisjoint) {
  // One-sided: a surviving common element is always found.
  util::Rng wrng(7);
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 26, 128, 1);
    sim::SharedRandomness shared(trial);
    sim::Channel ch;
    const auto res =
        baselines::hw_disjointness(ch, shared, trial, 1u << 26, p.s, p.t);
    EXPECT_FALSE(res.disjoint) << trial;
  }
}

TEST(HwDisjointness, CommunicationScalesLinearlyInK) {
  util::Rng wrng(8);
  double rate_small = 0;
  double rate_large = 0;
  {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 28, 128, 0);
    sim::SharedRandomness shared(1);
    sim::Channel ch;
    baselines::hw_disjointness(ch, shared, 0, 1u << 28, p.s, p.t);
    rate_small = static_cast<double>(ch.cost().bits_total) / 128;
  }
  {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 28, 4096, 0);
    sim::SharedRandomness shared(2);
    sim::Channel ch;
    baselines::hw_disjointness(ch, shared, 0, 1u << 28, p.s, p.t);
    rate_large = static_cast<double>(ch.cost().bits_total) / 4096;
  }
  EXPECT_LT(rate_large, rate_small * 2.5);
}

// ---------- ST13 sparse disjointness ----------

class St13Rounds : public ::testing::TestWithParam<int> {};

TEST_P(St13Rounds, DisjointInputsAnswerDisjoint) {
  const int r = GetParam();
  util::Rng wrng(static_cast<std::uint64_t>(r) * 3);
  int correct = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 26, 256, 0);
    sim::SharedRandomness shared(static_cast<std::uint64_t>(trial));
    sim::Channel ch;
    const auto res = baselines::st13_disjointness(ch, shared, trial,
                                                  1u << 26, p.s, p.t, r);
    correct += res.disjoint;
  }
  EXPECT_GE(correct, trials - 2);
}

TEST_P(St13Rounds, IntersectingInputsNeverAnswerDisjoint) {
  const int r = GetParam();
  util::Rng wrng(static_cast<std::uint64_t>(r) * 5);
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    const util::SetPair p = util::random_set_pair(wrng, 1u << 26, 256, 3);
    sim::SharedRandomness shared(trial);
    sim::Channel ch;
    const auto res = baselines::st13_disjointness(ch, shared, trial,
                                                  1u << 26, p.s, p.t, r);
    EXPECT_FALSE(res.disjoint) << "r=" << r << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, St13Rounds, ::testing::Values(1, 2, 3, 5));

TEST(St13, CommunicationDecaysWithRounds) {
  // The r-round tradeoff: more rounds, fewer bits (k log^(r) k).
  util::Rng wrng(9);
  const std::size_t k = 4096;
  const util::SetPair p = util::random_set_pair(wrng, 1u << 28, k, 0);
  sim::SharedRandomness shared(9);
  std::uint64_t bits_r1 = 0;
  std::uint64_t bits_r3 = 0;
  {
    sim::Channel ch;
    baselines::st13_disjointness(ch, shared, 0, 1u << 28, p.s, p.t, 1);
    bits_r1 = ch.cost().bits_total;
  }
  {
    sim::Channel ch;
    baselines::st13_disjointness(ch, shared, 1, 1u << 28, p.s, p.t, 3);
    bits_r3 = ch.cost().bits_total;
  }
  EXPECT_LT(bits_r3, bits_r1 / 2);
}

TEST(St13, RejectsBadRounds) {
  sim::SharedRandomness shared(10);
  sim::Channel ch;
  EXPECT_THROW(baselines::st13_disjointness(ch, shared, 0, 100, util::Set{1},
                                            util::Set{2}, 0),
               std::invalid_argument);
}

TEST(St13, TinyInputs) {
  sim::SharedRandomness shared(11);
  {
    sim::Channel ch;
    const auto res = baselines::st13_disjointness(ch, shared, 0, 100,
                                                  util::Set{}, util::Set{5},
                                                  2);
    EXPECT_TRUE(res.disjoint);
  }
  {
    sim::Channel ch;
    const auto res = baselines::st13_disjointness(ch, shared, 0, 100,
                                                  util::Set{5}, util::Set{5},
                                                  2);
    EXPECT_FALSE(res.disjoint);
  }
}

TEST(HwDisjointness, TinyInputs) {
  sim::SharedRandomness shared(9);
  {
    sim::Channel ch;
    const auto res = baselines::hw_disjointness(ch, shared, 0, 100,
                                                util::Set{}, util::Set{});
    EXPECT_TRUE(res.disjoint);
  }
  {
    sim::Channel ch;
    const auto res = baselines::hw_disjointness(ch, shared, 0, 100,
                                                util::Set{5}, util::Set{5});
    EXPECT_FALSE(res.disjoint);
  }
  {
    sim::Channel ch;
    const auto res = baselines::hw_disjointness(ch, shared, 0, 100,
                                                util::Set{5}, util::Set{6});
    EXPECT_TRUE(res.disjoint);
  }
}

}  // namespace
}  // namespace setint
