// Robustness of the stack under an unreliable transport.
//
// Part 1 — decode paths: protocols assume a reliable channel, so a
// corrupted or truncated message must fail LOUDLY (std::exception) or
// decode to values whose downstream invariants catch the damage — never
// read out of bounds or loop forever. These tests flip bits in real
// protocol messages and hammer the decoders with adversarial bytes.
//
// Part 2 — end-to-end recovery (docs/ROBUSTNESS.md): with a sim::FaultPlan
// injecting flips/truncations/drops/duplicates, the facade and multiparty
// protocols must return either a certified exact answer (verified=true) or
// an honestly-flagged superset (degraded=true) — never an unflagged wrong
// answer — while the PR-1 cost-accounting invariant (tracer root == channel
// cost) keeps holding, fault overhead included.
#include <gtest/gtest.h>

#include <cstdint>

#include "multiparty/coordinator.h"
#include "multiparty/tournament.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/channel.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

util::BitBuffer flip_bit(const util::BitBuffer& original, std::size_t index) {
  util::BitBuffer out;
  for (std::size_t i = 0; i < original.size_bits(); ++i) {
    out.append_bit(i == index ? !original.bit(i) : original.bit(i));
  }
  return out;
}

util::BitBuffer truncate(const util::BitBuffer& original, std::size_t bits) {
  util::BitBuffer out;
  for (std::size_t i = 0; i < bits && i < original.size_bits(); ++i) {
    out.append_bit(original.bit(i));
  }
  return out;
}

// Decoding a set after any single-bit flip either throws or yields SOME
// set; it must never crash or hang. When it yields a set, re-encoding
// must not reproduce the corrupted buffer unless the decode round-trips.
TEST(Robustness, SetDecodingSurvivesSingleBitFlips) {
  util::Rng rng(1);
  const util::Set s = util::random_set(rng, 1u << 20, 40);
  util::BitBuffer encoded;
  util::append_set(encoded, s);
  int throws = 0;
  int decodes = 0;
  for (std::size_t i = 0; i < encoded.size_bits(); ++i) {
    const util::BitBuffer corrupted = flip_bit(encoded, i);
    util::BitReader reader(corrupted);
    try {
      const util::Set got = util::read_set(reader);
      ++decodes;
      // If it decoded cleanly it must at least be canonical (the format
      // guarantees strictly increasing output by construction).
      EXPECT_TRUE(util::is_canonical_set(got)) << i;
    } catch (const std::exception&) {
      ++throws;
    }
  }
  EXPECT_GT(throws + decodes, 0);
  EXPECT_GT(throws, 0);  // length-field corruption must be detected
}

TEST(Robustness, RiceSetDecodingSurvivesSingleBitFlips) {
  util::Rng rng(2);
  const std::uint64_t universe = 1u << 24;
  const util::Set s = util::random_set(rng, universe, 40);
  util::BitBuffer encoded;
  util::append_set_rice(encoded, s, universe);
  for (std::size_t i = 0; i < encoded.size_bits(); ++i) {
    const util::BitBuffer corrupted = flip_bit(encoded, i);
    util::BitReader reader(corrupted);
    try {
      const util::Set got = util::read_set_rice(reader, universe);
      EXPECT_TRUE(util::is_canonical_set(got)) << i;
    } catch (const std::exception&) {
      // loud failure is the desired outcome
    }
  }
}

TEST(Robustness, TruncatedMessagesThrow) {
  util::Rng rng(3);
  const util::Set s = util::random_set(rng, 1u << 20, 64);
  util::BitBuffer encoded;
  util::append_set(encoded, s);
  // Every strict prefix must throw (the decoder knows the count and runs
  // out of bits) — checked at several cut points.
  for (std::size_t cut : {std::size_t{1}, encoded.size_bits() / 4,
                          encoded.size_bits() / 2,
                          encoded.size_bits() - 1}) {
    const util::BitBuffer chopped = truncate(encoded, cut);
    util::BitReader reader(chopped);
    EXPECT_THROW(
        {
          const util::Set got = util::read_set(reader);
          // A prefix that happens to decode must at least be shorter.
          if (got.size() >= s.size()) throw std::runtime_error("impossible");
        },
        std::exception)
        << cut;
  }
}

TEST(Robustness, RandomGarbageNeverHangsDecoders) {
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    util::BitBuffer garbage;
    const std::size_t len = rng.below(512);
    for (std::size_t i = 0; i < len; ++i) garbage.append_bit(rng.coin());
    {
      util::BitReader reader(garbage);
      try {
        (void)util::read_set(reader);
      } catch (const std::exception&) {
      }
    }
    {
      util::BitReader reader(garbage);
      try {
        (void)util::read_set_rice(reader, 1u << 20);
      } catch (const std::exception&) {
      }
    }
    {
      util::BitReader reader(garbage);
      try {
        while (!reader.exhausted()) (void)reader.read_gamma64();
      } catch (const std::exception&) {
      }
    }
  }
  SUCCEED();  // reaching here means no hang, no crash
}

TEST(Robustness, GammaRejectsAllZeroRun) {
  // 64+ zero bits cannot start a valid gamma codeword.
  util::BitBuffer b;
  for (int i = 0; i < 70; ++i) b.append_bit(false);
  util::BitReader reader(b);
  EXPECT_THROW((void)reader.read_elias_gamma(), std::exception);
}

TEST(Robustness, RiceRejectsEndlessUnary) {
  util::BitBuffer b;
  for (int i = 0; i < 100; ++i) b.append_bit(true);
  util::BitReader reader(b);
  EXPECT_THROW((void)reader.read_rice(2), std::exception);
}

// A length prefix claiming more items than the buffer can possibly hold
// (a "decode bomb") must be rejected up front with a message naming the
// offending field — not by allocating and then running out of bits.
TEST(Robustness, LengthPrefixBombsThrowNamedErrors) {
  {
    util::BitBuffer bomb;
    bomb.append_gamma64(1u << 30);  // claims 2^30 set elements, has 0 bits
    util::BitReader reader(bomb);
    try {
      (void)util::read_set(reader);
      FAIL() << "read_set accepted a 2^30-element length prefix";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("set size"), std::string::npos)
          << e.what();
    }
  }
  {
    util::BitBuffer bomb;
    bomb.append_gamma64(1u << 30);
    util::BitReader reader(bomb);
    try {
      (void)util::read_set_rice(reader, 1u << 20);
      FAIL() << "read_set_rice accepted a 2^30-element length prefix";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("set size"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Robustness, FaultSpecRejectsBadProbabilities) {
  sim::FaultSpec spec;
  spec.flip_per_bit = 1.5;
  try {
    sim::FaultPlan plan(spec);
    FAIL() << "FaultPlan accepted flip_per_bit = 1.5";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("flip_per_bit"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Part 2: end-to-end runs over a faulty transport.
// ---------------------------------------------------------------------

sim::FaultSpec mixed_spec(std::uint64_t seed) {
  sim::FaultSpec spec;
  spec.flip_per_bit = 0.002;
  spec.truncate_prob = 0.05;
  spec.drop_prob = 0.05;
  spec.duplicate_prob = 0.1;
  spec.delay_prob = 0.1;
  spec.delay_rounds = 2;
  spec.seed = seed;
  return spec;
}

// The whole point of seeding the plan: two plans with the same seed must
// mutate identical payload streams identically and agree on every stat.
TEST(FaultPlan, SameSeedSameFaultStream) {
  sim::FaultPlan a(mixed_spec(99));
  sim::FaultPlan b(mixed_spec(99));
  util::Rng rng(5);
  for (int msg = 0; msg < 200; ++msg) {
    util::BitBuffer payload;
    const std::size_t len = 1 + rng.below(300);
    for (std::size_t i = 0; i < len; ++i) payload.append_bit(rng.coin());
    util::BitBuffer copy = payload;
    a.apply(payload);
    b.apply(copy);
    ASSERT_EQ(payload.size_bits(), copy.size_bits()) << msg;
    for (std::size_t i = 0; i < payload.size_bits(); ++i) {
      ASSERT_EQ(payload.bit(i), copy.bit(i)) << msg << ":" << i;
    }
  }
  EXPECT_EQ(a.stats().faults_injected, b.stats().faults_injected);
  EXPECT_EQ(a.stats().bits_flipped, b.stats().bits_flipped);
  EXPECT_EQ(a.stats().dropped_messages, b.stats().dropped_messages);
  EXPECT_EQ(a.stats().truncated_bits, b.stats().truncated_bits);
  EXPECT_GT(a.stats().faults_injected, 0u);  // the spec actually bites
}

TEST(FaultPlan, DisabledPlanIsIdentity) {
  sim::FaultPlan plan;  // default spec: all probabilities zero
  EXPECT_FALSE(plan.enabled());
  util::BitBuffer payload;
  for (int i = 0; i < 64; ++i) payload.append_bit(i % 3 == 0);
  const util::BitBuffer original = payload;
  const sim::AppliedFaults applied = plan.apply(payload);
  EXPECT_EQ(applied.events(), 0u);
  ASSERT_EQ(payload.size_bits(), original.size_bits());
  for (std::size_t i = 0; i < payload.size_bits(); ++i) {
    EXPECT_EQ(payload.bit(i), original.bit(i));
  }
  EXPECT_EQ(plan.stats().faults_injected, 0u);
  EXPECT_EQ(plan.stats().messages_seen, 1u);
}

// At a gentle flip rate the certificate-driven retry loop must converge:
// the overwhelming majority of runs certify, and — the load-bearing safety
// property — NO run ever returns a wrong answer without raising the
// degraded flag, and every degraded answer is still a superset.
TEST(FaultE2E, RetryConvergesAtLowFlipRate) {
  const std::uint64_t universe = 1u << 16;
  const std::size_t k = 32;
  const int runs = 120;
  int verified_count = 0;
  util::Rng rng(0xF1);
  for (int trial = 0; trial < runs; ++trial) {
    const util::SetPair pair =
        util::random_set_pair(rng, universe, k, k / 4);
    sim::FaultSpec spec;
    spec.flip_per_bit = 1e-3;
    spec.seed = util::mix64(0xFA, trial);
    sim::FaultPlan plan(spec);
    setint::IntersectOptions options;
    options.universe = universe;
    options.seed = util::mix64(0x5EED, trial);
    options.fault_plan = &plan;
    const setint::IntersectResult result =
        setint::intersect(pair.s, pair.t, options);
    // Safety: never verified AND degraded; wrong answers only behind the
    // degraded flag; degraded answers are supersets.
    ASSERT_FALSE(result.verified && result.degraded) << trial;
    if (!result.degraded) {
      ASSERT_EQ(result.intersection, pair.expected_intersection) << trial;
    } else {
      ASSERT_TRUE(
          util::is_subset(pair.expected_intersection, result.intersection))
          << trial;
    }
    if (result.verified) ++verified_count;
  }
  // The acceptance bar is >= 99% over 500 runs (checked by exp_faults);
  // here a slightly looser bound keeps the unit test fast and stable.
  EXPECT_GE(verified_count, (runs * 98) / 100)
      << verified_count << "/" << runs << " verified";
}

// Under a harsh mixed fault plan with a tight retry budget, degradation
// must actually trigger — and every degraded answer must still be an
// honestly-flagged superset of the true intersection.
TEST(FaultE2E, HarshFaultsDegradeToFlaggedSupersets) {
  const std::uint64_t universe = 1u << 14;
  const std::size_t k = 24;
  int degraded_count = 0;
  util::Rng rng(0xF2);
  for (int trial = 0; trial < 40; ++trial) {
    const util::SetPair pair =
        util::random_set_pair(rng, universe, k, k / 3);
    sim::FaultSpec spec;
    spec.flip_per_bit = 0.02;
    spec.drop_prob = 0.2;
    spec.truncate_prob = 0.2;
    spec.seed = util::mix64(0xBAD, trial);
    sim::FaultPlan plan(spec);
    setint::IntersectOptions options;
    options.universe = universe;
    options.seed = util::mix64(0x5EED2, trial);
    options.fault_plan = &plan;
    options.retry.max_attempts = 3;
    options.retry.degraded_attempts = 3;
    const setint::IntersectResult result =
        setint::intersect(pair.s, pair.t, options);
    ASSERT_FALSE(result.verified && result.degraded) << trial;
    ASSERT_TRUE(
        util::is_subset(pair.expected_intersection, result.intersection))
        << trial;
    if (result.verified) {
      ASSERT_EQ(result.intersection, pair.expected_intersection) << trial;
    }
    if (result.degraded) ++degraded_count;
  }
  EXPECT_GT(degraded_count, 0) << "fault plan never forced degradation";
}

// drop_prob = 1 delivers every message empty: no attempt can certify, no
// degraded Basic-Intersection run can finish cleanly, so the facade must
// burn exactly max_attempts repetitions, charge the backoff rounds, and
// fall back to Alice's own input — the unconditional superset.
TEST(FaultE2E, TotalLossFallsBackToOwnInput) {
  util::Rng rng(0xF3);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 12, 16, 4);
  sim::FaultSpec spec;
  spec.drop_prob = 1.0;
  spec.seed = 3;
  sim::FaultPlan plan(spec);
  setint::IntersectOptions options;
  options.universe = 1u << 12;
  options.fault_plan = &plan;
  options.retry.max_attempts = 4;
  options.retry.backoff_rounds = 5;
  options.retry.degraded_attempts = 2;
  const setint::IntersectResult result =
      setint::intersect(pair.s, pair.t, options);
  EXPECT_FALSE(result.verified);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.repetitions, 4u);
  EXPECT_EQ(result.intersection, pair.s);  // own-input fallback
  // 3 retries were preceded by a backoff charge of 5 rounds each.
  EXPECT_GE(result.rounds, 15u);
  EXPECT_GT(plan.stats().dropped_messages, 0u);
}

// Retry-exhaustion edge: max_attempts = 0 means NO certified attempts at
// all. Under a hostile transport the session must go straight to the
// degradation ladder — zero repetitions, zero retry.* activity, full
// degraded.* parity — instead of sneaking in a clamped first attempt.
TEST(FaultE2E, ZeroAttemptsGoStraightToDegradation) {
  util::Rng rng(0xF4);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 12, 16, 4);
  sim::FaultSpec spec;
  spec.drop_prob = 1.0;
  spec.seed = 3;
  sim::FaultPlan plan(spec);
  obs::Tracer tracer;
  setint::IntersectOptions options;
  options.universe = 1u << 12;
  options.fault_plan = &plan;
  options.tracer = &tracer;
  options.retry.max_attempts = 0;
  options.retry.degraded_attempts = 2;
  const setint::IntersectResult result =
      setint::intersect(pair.s, pair.t, options);
  EXPECT_FALSE(result.verified);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.repetitions, 0u);
  EXPECT_TRUE(util::is_subset(pair.expected_intersection, result.intersection));
  // Counter parity pinned: no certified attempt ran, exactly one
  // degraded run did.
  const auto& counters = tracer.metrics().counters();
  const auto value = [&counters](std::string_view name) -> std::uint64_t {
    const auto it = counters.find(std::string(name));
    return it == counters.end() ? 0 : it->second.value();
  };
  EXPECT_EQ(value("retry.attempts"), 0u);
  EXPECT_EQ(value("retry.decode_failures"), 0u);
  EXPECT_EQ(value("mp.verified_runs"), 0u);
  EXPECT_EQ(value("degraded.runs"), 1u);
}

// On a RELIABLE channel max_attempts = 0 skips the randomized attempts
// but still reaches the deterministic backstop: exact answer, verified,
// zero repetitions — refusing to try is not refusing to answer.
TEST(FaultE2E, ZeroAttemptsStillExactOnReliableChannel) {
  util::Rng rng(0xF5);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 12, 16, 4);
  setint::IntersectOptions options;
  options.universe = 1u << 12;
  options.retry.max_attempts = 0;
  const setint::IntersectResult result =
      setint::intersect(pair.s, pair.t, options);
  EXPECT_TRUE(result.verified);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.repetitions, 0u);
  EXPECT_EQ(result.intersection, pair.expected_intersection);
}

// PR-1 invariant, now with fault overhead in the stream: duplicate bits
// and delay/backoff rounds must land in BOTH the channel CostStats and the
// tracer's phase tree, so the synthetic root row still equals the total.
TEST(FaultE2E, CostInvariantHoldsUnderFaults) {
  util::Rng rng(0xF4);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 14, 32, 8);
  sim::FaultSpec spec;
  spec.flip_per_bit = 0.001;
  spec.duplicate_prob = 0.3;
  spec.delay_prob = 0.3;
  spec.delay_rounds = 2;
  spec.seed = 11;
  sim::FaultPlan plan(spec);
  obs::Tracer tracer;
  setint::IntersectOptions options;
  options.universe = 1u << 14;
  options.fault_plan = &plan;
  options.tracer = &tracer;
  const setint::IntersectResult result =
      setint::intersect(pair.s, pair.t, options);
  ASSERT_FALSE(result.report.phases.empty());
  const obs::PhaseRow& root = result.report.phases[0];  // synthetic root
  EXPECT_EQ(root.depth, -1);
  EXPECT_EQ(root.bits, result.report.cost.bits_total);
  EXPECT_EQ(root.messages, result.report.cost.messages);
  EXPECT_EQ(root.rounds, result.report.cost.rounds);
  // The fault stream was live and the channel published it.
  EXPECT_GT(plan.stats().faults_injected, 0u);
  EXPECT_EQ(tracer.metrics().counter("fault.injected").value(),
            plan.stats().faults_injected);
}

// Both multiparty topologies over a shared network-wide fault plan: the
// final answer is always a superset of the planted m-way intersection,
// exact whenever the run did not flag degradation.
TEST(FaultE2E, MultipartyCoordinatorSafeUnderFaults) {
  util::Rng rng(0xF5);
  const util::MultiSetInstance instance =
      util::random_multi_sets(rng, 1u << 14, /*players=*/6, /*k=*/24,
                              /*shared=*/6);
  sim::FaultSpec spec;
  spec.flip_per_bit = 0.005;
  spec.drop_prob = 0.05;
  spec.seed = 21;
  sim::FaultPlan plan(spec);
  sim::Network network(instance.sets.size());
  network.set_fault_plan(&plan);
  sim::SharedRandomness shared(0x6F5);
  multiparty::MultipartyParams params;
  params.retry.max_attempts = 8;
  const multiparty::MultipartyResult result =
      multiparty::coordinator_intersection(network, shared, 1u << 14,
                                           instance.sets, params);
  EXPECT_TRUE(
      util::is_subset(instance.expected_intersection, result.intersection));
  if (!result.degraded) {
    EXPECT_EQ(result.intersection, instance.expected_intersection);
  }
  EXPECT_GT(plan.stats().messages_seen, 0u);
}

TEST(FaultE2E, MultipartyTournamentSafeUnderFaults) {
  util::Rng rng(0xF6);
  const util::MultiSetInstance instance =
      util::random_multi_sets(rng, 1u << 14, /*players=*/8, /*k=*/24,
                              /*shared=*/5);
  sim::FaultSpec spec;
  spec.flip_per_bit = 0.005;
  spec.truncate_prob = 0.05;
  spec.seed = 31;
  sim::FaultPlan plan(spec);
  sim::Network network(instance.sets.size());
  network.set_fault_plan(&plan);
  sim::SharedRandomness shared(0x6F6);
  multiparty::MultipartyParams params;
  params.retry.max_attempts = 8;
  const multiparty::MultipartyResult result =
      multiparty::tournament_intersection(network, shared, 1u << 14,
                                          instance.sets, params);
  EXPECT_TRUE(
      util::is_subset(instance.expected_intersection, result.intersection));
  if (!result.degraded) {
    EXPECT_EQ(result.intersection, instance.expected_intersection);
  }
  EXPECT_GT(plan.stats().messages_seen, 0u);
}

// With a fault plan installed but every probability zero, behaviour must
// be bit-for-bit what a reliable channel produces: certified on the first
// attempt, exact, no degradation.
TEST(FaultE2E, ZeroRatePlanMatchesReliableChannel) {
  util::Rng rng(0xF7);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 14, 32, 8);
  setint::IntersectOptions clean;
  clean.universe = 1u << 14;
  const setint::IntersectResult baseline =
      setint::intersect(pair.s, pair.t, clean);

  sim::FaultPlan plan;  // disabled
  setint::IntersectOptions faulty = clean;
  faulty.fault_plan = &plan;
  const setint::IntersectResult result =
      setint::intersect(pair.s, pair.t, faulty);
  EXPECT_EQ(result.intersection, baseline.intersection);
  EXPECT_EQ(result.bits, baseline.bits);
  EXPECT_EQ(result.rounds, baseline.rounds);
  EXPECT_TRUE(result.verified);
  EXPECT_FALSE(result.degraded);
}

}  // namespace
}  // namespace setint
