// Robustness of the decode paths: protocols assume a reliable channel,
// so a corrupted or truncated message must fail LOUDLY (std::exception)
// or decode to values whose downstream invariants catch the damage —
// never read out of bounds or loop forever. These tests flip bits in
// real protocol messages and hammer the decoders with adversarial bytes.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

util::BitBuffer flip_bit(const util::BitBuffer& original, std::size_t index) {
  util::BitBuffer out;
  for (std::size_t i = 0; i < original.size_bits(); ++i) {
    out.append_bit(i == index ? !original.bit(i) : original.bit(i));
  }
  return out;
}

util::BitBuffer truncate(const util::BitBuffer& original, std::size_t bits) {
  util::BitBuffer out;
  for (std::size_t i = 0; i < bits && i < original.size_bits(); ++i) {
    out.append_bit(original.bit(i));
  }
  return out;
}

// Decoding a set after any single-bit flip either throws or yields SOME
// set; it must never crash or hang. When it yields a set, re-encoding
// must not reproduce the corrupted buffer unless the decode round-trips.
TEST(Robustness, SetDecodingSurvivesSingleBitFlips) {
  util::Rng rng(1);
  const util::Set s = util::random_set(rng, 1u << 20, 40);
  util::BitBuffer encoded;
  util::append_set(encoded, s);
  int throws = 0;
  int decodes = 0;
  for (std::size_t i = 0; i < encoded.size_bits(); ++i) {
    const util::BitBuffer corrupted = flip_bit(encoded, i);
    util::BitReader reader(corrupted);
    try {
      const util::Set got = util::read_set(reader);
      ++decodes;
      // If it decoded cleanly it must at least be canonical (the format
      // guarantees strictly increasing output by construction).
      EXPECT_TRUE(util::is_canonical_set(got)) << i;
    } catch (const std::exception&) {
      ++throws;
    }
  }
  EXPECT_GT(throws + decodes, 0);
  EXPECT_GT(throws, 0);  // length-field corruption must be detected
}

TEST(Robustness, RiceSetDecodingSurvivesSingleBitFlips) {
  util::Rng rng(2);
  const std::uint64_t universe = 1u << 24;
  const util::Set s = util::random_set(rng, universe, 40);
  util::BitBuffer encoded;
  util::append_set_rice(encoded, s, universe);
  for (std::size_t i = 0; i < encoded.size_bits(); ++i) {
    const util::BitBuffer corrupted = flip_bit(encoded, i);
    util::BitReader reader(corrupted);
    try {
      const util::Set got = util::read_set_rice(reader, universe);
      EXPECT_TRUE(util::is_canonical_set(got)) << i;
    } catch (const std::exception&) {
      // loud failure is the desired outcome
    }
  }
}

TEST(Robustness, TruncatedMessagesThrow) {
  util::Rng rng(3);
  const util::Set s = util::random_set(rng, 1u << 20, 64);
  util::BitBuffer encoded;
  util::append_set(encoded, s);
  // Every strict prefix must throw (the decoder knows the count and runs
  // out of bits) — checked at several cut points.
  for (std::size_t cut : {std::size_t{1}, encoded.size_bits() / 4,
                          encoded.size_bits() / 2,
                          encoded.size_bits() - 1}) {
    const util::BitBuffer chopped = truncate(encoded, cut);
    util::BitReader reader(chopped);
    EXPECT_THROW(
        {
          const util::Set got = util::read_set(reader);
          // A prefix that happens to decode must at least be shorter.
          if (got.size() >= s.size()) throw std::runtime_error("impossible");
        },
        std::exception)
        << cut;
  }
}

TEST(Robustness, RandomGarbageNeverHangsDecoders) {
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    util::BitBuffer garbage;
    const std::size_t len = rng.below(512);
    for (std::size_t i = 0; i < len; ++i) garbage.append_bit(rng.coin());
    {
      util::BitReader reader(garbage);
      try {
        (void)util::read_set(reader);
      } catch (const std::exception&) {
      }
    }
    {
      util::BitReader reader(garbage);
      try {
        (void)util::read_set_rice(reader, 1u << 20);
      } catch (const std::exception&) {
      }
    }
    {
      util::BitReader reader(garbage);
      try {
        while (!reader.exhausted()) (void)reader.read_gamma64();
      } catch (const std::exception&) {
      }
    }
  }
  SUCCEED();  // reaching here means no hang, no crash
}

TEST(Robustness, GammaRejectsAllZeroRun) {
  // 64+ zero bits cannot start a valid gamma codeword.
  util::BitBuffer b;
  for (int i = 0; i < 70; ++i) b.append_bit(false);
  util::BitReader reader(b);
  EXPECT_THROW((void)reader.read_elias_gamma(), std::exception);
}

TEST(Robustness, RiceRejectsEndlessUnary) {
  util::BitBuffer b;
  for (int i = 0; i < 100; ++i) b.append_bit(true);
  util::BitReader reader(b);
  EXPECT_THROW((void)reader.read_rice(2), std::exception);
}

}  // namespace
}  // namespace setint
