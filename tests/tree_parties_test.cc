// The main protocol under strictly-separated execution: correctness and
// bit-for-bit transcript equivalence with the driver implementation —
// the strongest evidence Algorithm 1 needs no out-of-band knowledge.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/tree_parties.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "sim/runtime.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

core::VerificationTreeParams params_for(std::size_t buckets, int r) {
  core::VerificationTreeParams params;
  params.bucket_count = buckets;
  params.rounds_r = r;
  return params;
}

struct TreeFsmCase {
  std::size_t k;
  std::size_t shared;
  int r;
};

class TreeFsm : public ::testing::TestWithParam<TreeFsmCase> {};

TEST_P(TreeFsm, ComputesExactIntersection) {
  const TreeFsmCase c = GetParam();
  util::Rng wrng(c.k * 7 + c.shared + static_cast<std::size_t>(c.r));
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 28, c.k, c.shared);
  const auto params = params_for(std::max<std::size_t>(c.k, 2), c.r);
  sim::SharedRandomness shared(c.k + 13);
  sim::Channel ch;
  core::TreeAlice alice(shared, 5, std::uint64_t{1} << 28, p.s, params);
  core::TreeBob bob(shared, 5, std::uint64_t{1} << 28, p.t, params);
  sim::run_two_party(ch, alice, bob);
  EXPECT_EQ(alice.output(), p.expected_intersection);
  EXPECT_EQ(bob.output(), p.expected_intersection);
  EXPECT_LE(ch.cost().rounds, static_cast<std::uint64_t>(6 * c.r));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeFsm,
    ::testing::Values(TreeFsmCase{8, 4, 2}, TreeFsmCase{64, 0, 2},
                      TreeFsmCase{64, 64, 3}, TreeFsmCase{256, 128, 3},
                      TreeFsmCase{1024, 512, 4}, TreeFsmCase{4096, 2048, 4},
                      TreeFsmCase{1024, 512, 6}));

TEST(TreeFsm, TranscriptMatchesDriverBitForBit) {
  util::Rng wrng(9);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const std::size_t k = 8 + wrng.below(600);
    const std::size_t shared_count = wrng.below(k + 1);
    const int r = 2 + static_cast<int>(wrng.below(4));
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 26, k, shared_count);
    // The driver derives buckets from max(|S|, |T|, 2); make it explicit
    // so both executions agree on the public bound.
    const auto params =
        params_for(std::max<std::size_t>({p.s.size(), p.t.size(), 2}), r);
    sim::SharedRandomness shared(trial * 31);

    sim::Channel driver_ch(/*record_transcript=*/true);
    const core::IntersectionOutput driver_out =
        core::verification_tree_intersection(driver_ch, shared, trial,
                                             std::uint64_t{1} << 26, p.s,
                                             p.t, params);

    sim::Channel fsm_ch(/*record_transcript=*/true);
    core::TreeAlice alice(shared, trial, std::uint64_t{1} << 26, p.s, params);
    core::TreeBob bob(shared, trial, std::uint64_t{1} << 26, p.t, params);
    sim::run_two_party(fsm_ch, alice, bob);

    ASSERT_EQ(driver_ch.transcript()->digest(), fsm_ch.transcript()->digest())
        << "trial " << trial << " k=" << k << " r=" << r;
    EXPECT_EQ(driver_ch.cost().bits_total, fsm_ch.cost().bits_total);
    EXPECT_EQ(driver_ch.cost().rounds, fsm_ch.cost().rounds);
    EXPECT_EQ(driver_out.alice, alice.output());
    EXPECT_EQ(driver_out.bob, bob.output());
  }
}

TEST(TreeFsm, RequiresExplicitPublicParameters) {
  sim::SharedRandomness shared(1);
  core::VerificationTreeParams no_buckets;
  no_buckets.rounds_r = 2;
  EXPECT_THROW(core::TreeAlice(shared, 0, 100, util::Set{1}, no_buckets),
               std::invalid_argument);
  core::VerificationTreeParams r1 = params_for(4, 1);
  EXPECT_THROW(core::TreeAlice(shared, 0, 100, util::Set{1}, r1),
               std::invalid_argument);
  core::VerificationTreeParams cutoff = params_for(4, 2);
  cutoff.worst_case_cutoff_factor = 1.0;
  EXPECT_THROW(core::TreeAlice(shared, 0, 100, util::Set{1}, cutoff),
               std::invalid_argument);
}

TEST(TreeFsm, EmptyAndDegenerateInputs) {
  sim::SharedRandomness shared(2);
  const auto params = params_for(4, 2);
  {
    sim::Channel ch;
    core::TreeAlice alice(shared, 0, 100, util::Set{}, params);
    core::TreeBob bob(shared, 0, 100, util::Set{}, params);
    sim::run_two_party(ch, alice, bob);
    EXPECT_TRUE(alice.output().empty());
  }
  {
    sim::Channel ch;
    core::TreeAlice alice(shared, 1, 100, util::Set{1, 2, 3}, params);
    core::TreeBob bob(shared, 1, 100, util::Set{}, params);
    sim::run_two_party(ch, alice, bob);
    EXPECT_TRUE(alice.output().empty());
    EXPECT_TRUE(bob.output().empty());
  }
}

}  // namespace
}  // namespace setint
