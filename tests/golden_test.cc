// Golden-transcript regression pins.
//
// Protocol behaviour is a pure function of (seed, nonce, inputs); these
// tests pin the exact bit counts and transcript digests of reference runs
// so that ANY change to an encoding, a substream label, or a parameter
// schedule is caught deliberately rather than slipping into measurements.
// If you change a protocol on purpose, re-derive the constants (the test
// failure message prints the new values) and update EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/bucket_eq.h"
#include "core/one_round_hash.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

struct Reference {
  util::SetPair pair;
  sim::SharedRandomness shared{777};
};

Reference make_reference() {
  Reference ref;
  util::Rng wrng(12345);
  ref.pair = util::random_set_pair(wrng, 1u << 24, 512, 256);
  return ref;
}

TEST(Golden, VerificationTreeReferenceRun) {
  Reference ref = make_reference();
  sim::Channel ch(/*record_transcript=*/true);
  const auto out = core::verification_tree_intersection(
      ch, ref.shared, 42, 1u << 24, ref.pair.s, ref.pair.t, {});
  EXPECT_EQ(out.alice, ref.pair.expected_intersection);
  EXPECT_EQ(ch.cost().bits_total, 17718u);
  EXPECT_EQ(ch.cost().rounds, 16u);
  EXPECT_EQ(ch.transcript()->digest(), 0x76458b27132f643ull);
}

TEST(Golden, OneRoundHashReferenceRun) {
  Reference ref = make_reference();
  sim::Channel ch(/*record_transcript=*/true);
  const auto out = core::one_round_hash(ch, ref.shared, 42, 1u << 24,
                                        ref.pair.s, ref.pair.t);
  EXPECT_EQ(out.alice, ref.pair.expected_intersection);
  EXPECT_EQ(ch.cost().bits_total, 27686u);
  EXPECT_EQ(ch.transcript()->digest(), 0x9e818e562ca190cfull);
}

TEST(Golden, BucketEqReferenceRun) {
  Reference ref = make_reference();
  sim::Channel ch(/*record_transcript=*/true);
  const auto out = core::bucket_eq_intersection(ch, ref.shared, 42, 1u << 24,
                                                ref.pair.s, ref.pair.t);
  EXPECT_EQ(out.alice, ref.pair.expected_intersection);
  EXPECT_EQ(ch.cost().bits_total, 10201u);
  EXPECT_EQ(ch.transcript()->digest(), 0xc18884eae55cd105ull);
}

TEST(Golden, WorkloadGeneratorIsStable) {
  // The reference instance itself is part of the pinned surface.
  Reference ref = make_reference();
  EXPECT_EQ(ref.pair.s.size(), 512u);
  EXPECT_EQ(ref.pair.expected_intersection.size(), 256u);
  EXPECT_EQ(ref.pair.s.front(), 26424u);
  EXPECT_EQ(ref.pair.t.back(), 16773962u);
}

}  // namespace
}  // namespace setint
