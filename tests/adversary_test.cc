// Byzantine-peer hardening (docs/ROBUSTNESS.md, "Threat model").
//
// The stochastic suite (robustness_test.cc) assumes an honest peer over a
// hostile link; here the PEER is hostile: a sim::Adversary substitutes one
// party's frames with crafted ones (inflated length prefixes, unary bombs,
// garbage, replays, truncations, semantic lies). Integrity framing cannot
// help — the adversary is the sender and checksums its own bytes — so the
// defenses under test are core::ResourceLimits (channel + decoder budget
// enforcement), the named decoder guards, and the certificate / retry /
// degradation machinery. The contract pinned here and by tests/fuzz:
//
//   * the honest side never crashes or hangs, whatever the peer sends;
//   * its output is always a subset of its own input;
//   * a Byzantine player corrupts only results derived from its own
//     input — multiparty runs between honest players stay exact;
//   * disabled limits are free: zero-fault runs are bit-for-bit identical
//     with and without a limits object installed.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/resource_limits.h"
#include "multiparty/coordinator.h"
#include "multiparty/tournament.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/adversary.h"
#include "sim/channel.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

std::uint64_t counter(obs::Tracer& tracer, const std::string& name) {
  return tracer.metrics().counter(name).value();
}

// ---- decoder guards (satellite: capped unary runs) -----------------------

// An all-zeros frame must hit the 63-bit zero-run cap with a NAMED
// rejection, not widen the decode loop past 64 bits.
TEST(DecoderHardening, GammaZeroRunRejectedByName) {
  util::BitBuffer zeros;
  for (int i = 0; i < 80; ++i) zeros.append_bit(false);
  util::BitReader reader(zeros);
  try {
    (void)reader.read_elias_gamma();
    FAIL() << "gamma decode accepted an 80-bit zero run";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("gamma"), std::string::npos)
        << e.what();
  }
}

// A zero-run truncated before the cap is an out-of-bits condition — still
// a loud, typed failure rather than a hang or a garbage value.
TEST(DecoderHardening, GammaTruncatedZeroBufferRejected) {
  util::BitBuffer zeros;
  for (int i = 0; i < 32; ++i) zeros.append_bit(false);
  util::BitReader reader(zeros);
  EXPECT_THROW((void)reader.read_elias_gamma(), std::out_of_range);
}

// A unary run claiming a quotient that cannot be part of any encodable
// 64-bit value is a crafted frame; the reader names the rice guard.
TEST(DecoderHardening, RiceUnaryOverflowRejectedByName) {
  util::BitBuffer ones;
  for (int i = 0; i < 80; ++i) ones.append_bit(true);
  util::BitReader reader(ones);
  try {
    // With b = 62 any quotient above 3 overflows q << b.
    (void)reader.read_rice(62);
    FAIL() << "rice decode accepted an overflowing unary quotient";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rice"), std::string::npos)
        << e.what();
  }
}

// Truncated mid-codeword rice input fails loudly too (the q <= max_q
// prefix is legal, the buffer just ends).
TEST(DecoderHardening, RiceTruncatedBufferRejected) {
  util::BitBuffer ones;
  for (int i = 0; i < 12; ++i) ones.append_bit(true);
  util::BitReader reader(ones);
  EXPECT_THROW((void)reader.read_rice(8), std::out_of_range);
}

// ---- resource limits: unit enforcement -----------------------------------

TEST(ResourceLimitsUnit, DisabledByDefault) {
  core::ResourceLimits limits;
  EXPECT_FALSE(limits.enabled());
  limits.max_decoded_items = 1;
  EXPECT_TRUE(limits.enabled());
}

TEST(ResourceLimitsUnit, ChannelEnforcesMaxMessageBits) {
  core::ResourceLimits limits;
  limits.max_message_bits = 64;
  obs::Tracer tracer;
  sim::Channel channel;
  channel.set_tracer(&tracer);
  channel.set_limits(&limits);

  util::BitBuffer small;
  small.append_bits(0x5a, 8);
  EXPECT_NO_THROW(channel.send(sim::PartyId::kAlice, small));

  util::BitBuffer big;
  for (int i = 0; i < 128; ++i) big.append_bit(i % 2 == 0);
  EXPECT_THROW(channel.send(sim::PartyId::kBob, big),
               core::ResourceLimitError);
  EXPECT_EQ(counter(tracer, "limit.message_bits_breaches"), 1u);
  // The oversized frame is still metered — the attacker pays for the
  // bandwidth even though delivery is refused.
  EXPECT_EQ(channel.cost().bits_total, 8u + 128u);
}

TEST(ResourceLimitsUnit, ChannelEnforcesMaxTotalBits) {
  core::ResourceLimits limits;
  limits.max_total_bits = 150;
  obs::Tracer tracer;
  sim::Channel channel;
  channel.set_tracer(&tracer);
  channel.set_limits(&limits);

  util::BitBuffer frame;
  for (int i = 0; i < 64; ++i) frame.append_bit(true);
  EXPECT_NO_THROW(channel.send(sim::PartyId::kAlice, frame));  // 64
  EXPECT_NO_THROW(channel.send(sim::PartyId::kBob, frame));    // 128
  EXPECT_THROW(channel.send(sim::PartyId::kAlice, frame),      // 192 > 150
               core::ResourceLimitError);
  EXPECT_EQ(counter(tracer, "limit.total_bits_breaches"), 1u);
}

TEST(ResourceLimitsUnit, ChargeExtraRoundsEnforcesMaxRounds) {
  core::ResourceLimits limits;
  limits.max_rounds = 3;
  obs::Tracer tracer;
  sim::Channel channel;
  channel.set_tracer(&tracer);
  channel.set_limits(&limits);
  EXPECT_NO_THROW(channel.charge_extra_rounds(2));
  EXPECT_THROW(channel.charge_extra_rounds(5), core::ResourceLimitError);
  EXPECT_EQ(counter(tracer, "limit.rounds_breaches"), 1u);
  // Like bits, the rounds are charged before the refusal.
  EXPECT_EQ(channel.cost().rounds, 7u);
}

TEST(ResourceLimitsUnit, ChannelReaderEnforcesMaxDecodedItems) {
  core::ResourceLimits limits;
  limits.max_decoded_items = 4;
  sim::Channel channel;
  channel.set_limits(&limits);

  util::BitBuffer encoded;
  util::append_set(encoded, util::Set{1, 3, 5, 7, 9, 11, 13, 15});
  util::BitReader reader = channel.reader(encoded);
  EXPECT_THROW((void)util::read_set(reader), core::ResourceLimitError);

  // The same frame decodes fine through a limit-free reader.
  util::BitReader free_reader(encoded);
  EXPECT_EQ(util::read_set(free_reader).size(), 8u);
}

// The items budget is per-reader (per decoder invocation), not global:
// two frames of 3 items each pass a cap of 4.
TEST(ResourceLimitsUnit, ItemsBudgetIsPerReader) {
  core::ResourceLimits limits;
  limits.max_decoded_items = 4;
  sim::Channel channel;
  channel.set_limits(&limits);
  util::BitBuffer encoded;
  util::append_set(encoded, util::Set{2, 4, 6});
  for (int pass = 0; pass < 2; ++pass) {
    util::BitReader reader = channel.reader(encoded);
    EXPECT_NO_THROW((void)util::read_set(reader));
  }
}

// ---- limits are free when unset (acceptance criterion) -------------------

// A zero-fault facade run must be bit-for-bit identical with no limits,
// with a default (disabled) limits object, and with the generous
// for_workload profile: enforcement adds no protocol bits, only checks.
TEST(ResourceLimitsUnit, LimitsAreFreeOnHonestRuns) {
  util::Rng rng(0xA1);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 14, 32, 8);

  IntersectOptions plain;
  plain.universe = 1u << 14;
  const IntersectResult baseline = intersect(pair.s, pair.t, plain);
  EXPECT_TRUE(baseline.verified);
  EXPECT_EQ(baseline.intersection, pair.expected_intersection);

  IntersectOptions limited = plain;
  limited.limits = core::ResourceLimits::for_workload(1u << 14, 32);
  ASSERT_TRUE(limited.limits.enabled());
  const IntersectResult capped = intersect(pair.s, pair.t, limited);

  EXPECT_EQ(capped.bits, baseline.bits);
  EXPECT_EQ(capped.rounds, baseline.rounds);
  EXPECT_EQ(capped.repetitions, baseline.repetitions);
  EXPECT_EQ(capped.intersection, baseline.intersection);
  EXPECT_TRUE(capped.verified);
  EXPECT_FALSE(capped.degraded);
}

// ---- the inflated-length attack, with and without the guard --------------

// gamma64(N) + N one-bits is a VALID canonical-set encoding of {0..N-1}:
// a few honest bytes of claimed length amplify into N materialized items.
// Without limits the decoder obligingly allocates all of it; with a
// max_decoded_items budget the same frame dies in expect_at_least before
// the allocation. This is the load-bearing demo for resource limits
// (bench/exp_adversary measures the same pair of outcomes).
TEST(AdversaryAttack, InflatedLengthBlowsPastItemsBudget) {
  sim::AdversarySpec spec;
  spec.party = sim::PartyId::kBob;
  spec.attack = sim::AttackClass::kInflatedLength;
  spec.attack_prob = 1.0;
  spec.frame_bits = 1u << 15;
  spec.seed = 7;

  // Unlimited decode: the crafted frame materializes frame_bits items.
  {
    sim::Adversary adversary(spec);
    sim::Channel channel;
    channel.set_adversary(&adversary);
    util::BitBuffer honest;
    util::append_set(honest, util::Set{1, 2, 3});
    const util::BitBuffer delivered =
        channel.send(sim::PartyId::kBob, honest);
    util::BitReader reader = channel.reader(delivered);
    const util::Set decoded = util::read_set(reader);
    EXPECT_EQ(decoded.size(), spec.frame_bits);
    EXPECT_EQ(adversary.stats().inflated_lengths, 1u);
  }

  // With the items budget the identical frame is refused up front.
  {
    sim::Adversary adversary(spec);
    core::ResourceLimits limits;
    limits.max_decoded_items = 64;
    sim::Channel channel;
    channel.set_adversary(&adversary);
    channel.set_limits(&limits);
    util::BitBuffer honest;
    util::append_set(honest, util::Set{1, 2, 3});
    const util::BitBuffer delivered =
        channel.send(sim::PartyId::kBob, honest);
    util::BitReader reader = channel.reader(delivered);
    EXPECT_THROW((void)util::read_set(reader), core::ResourceLimitError);
  }
}

// ---- end-to-end attack sweep (the facade survives every class) -----------

TEST(AdversaryAttack, EveryAttackClassIsSurvivable) {
  static constexpr sim::AttackClass kClasses[] = {
      sim::AttackClass::kInflatedLength, sim::AttackClass::kUnaryBomb,
      sim::AttackClass::kRandomGarbage,  sim::AttackClass::kReplay,
      sim::AttackClass::kTruncate,       sim::AttackClass::kSemanticLie,
      sim::AttackClass::kMixed,
  };
  int seed_salt = 0;
  for (const sim::AttackClass attack : kClasses) {
    const char* name = sim::attack_class_name(attack);
    util::Rng rng(0x5EED + seed_salt);
    const util::SetPair pair = util::random_set_pair(rng, 1u << 12, 24, 6);

    sim::AdversarySpec spec;
    spec.party = sim::PartyId::kBob;
    spec.attack = attack;
    spec.attack_prob = 1.0;
    spec.frame_bits = 1u << 12;
    spec.lie_universe = 1u << 12;
    spec.seed = 0xAD00 + static_cast<std::uint64_t>(seed_salt);
    sim::Adversary adversary(spec);

    IntersectOptions options;
    options.universe = 1u << 12;
    options.seed = 0xC0DE + static_cast<std::uint64_t>(seed_salt);
    options.adversary = &adversary;
    options.limits = core::ResourceLimits::for_workload(1u << 12, 24);
    options.retry.max_attempts = 4;
    options.retry.degraded_attempts = 2;

    IntersectResult result;
    EXPECT_NO_THROW(result = intersect(pair.s, pair.t, options)) << name;
    // The one unconditional guarantee against a lying peer: the honest
    // side's answer never contains an element it does not hold.
    EXPECT_TRUE(util::is_subset(result.intersection, pair.s)) << name;
    EXPECT_GT(adversary.stats().frames_seen, 0u) << name;
    EXPECT_GT(adversary.stats().frames_crafted, 0u) << name;
    ++seed_salt;
  }
}

// Same spec, same seeds, twice: identical results and identical attack
// streams (the BENCH_adversary.json determinism contract).
TEST(AdversaryAttack, AttackStreamIsDeterministic) {
  util::Rng rng(0xD7);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 12, 24, 6);
  auto run = [&pair] {
    sim::AdversarySpec spec;
    spec.party = sim::PartyId::kBob;
    spec.attack = sim::AttackClass::kMixed;
    spec.attack_prob = 0.5;
    spec.frame_bits = 1u << 12;
    spec.lie_universe = 1u << 12;
    spec.seed = 0xDA;
    sim::Adversary adversary(spec);
    IntersectOptions options;
    options.universe = 1u << 12;
    options.adversary = &adversary;
    options.limits = core::ResourceLimits::for_workload(1u << 12, 24);
    options.retry.max_attempts = 4;
    options.retry.degraded_attempts = 2;
    const IntersectResult result = intersect(pair.s, pair.t, options);
    return std::make_tuple(result.intersection, result.bits, result.rounds,
                           result.repetitions, result.degraded,
                           adversary.stats().frames_seen,
                           adversary.stats().frames_crafted);
  };
  EXPECT_EQ(run(), run());
}

// A pure resource-exhaustion attacker (oversized frames on every message)
// burns the retry budget through limit breaches, then the run degrades
// honestly to the own-input superset — and every step shows up in the
// adversary.* / limit.* / retry.* / degraded.* metrics.
TEST(AdversaryAttack, MetricsAttributeBreachesAndDegradation) {
  util::Rng rng(0xE1);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 12, 24, 6);

  sim::AdversarySpec spec;
  spec.party = sim::PartyId::kBob;
  spec.attack = sim::AttackClass::kInflatedLength;
  spec.attack_prob = 1.0;
  // Larger than for_workload's per-message cap, so every crafted frame is
  // a guaranteed message-bits breach.
  spec.frame_bits = 1u << 17;
  spec.seed = 0xE2;
  sim::Adversary adversary(spec);

  obs::Tracer tracer;
  IntersectOptions options;
  options.universe = 1u << 12;
  options.tracer = &tracer;
  options.adversary = &adversary;
  options.limits = core::ResourceLimits::for_workload(1u << 12, 24);
  options.retry.max_attempts = 4;
  options.retry.degraded_attempts = 2;
  ASSERT_GT(spec.frame_bits, options.limits.max_message_bits);

  const IntersectResult result = intersect(pair.s, pair.t, options);
  EXPECT_FALSE(result.verified);
  EXPECT_TRUE(result.degraded);
  // Every attempt (including the degraded ones) dies on the oversized
  // frame, so the fallback is the honest side's own input.
  EXPECT_EQ(result.intersection, pair.s);

  EXPECT_EQ(counter(tracer, "adversary.crafted"),
            adversary.stats().frames_crafted);
  EXPECT_EQ(counter(tracer, "adversary.inflated-length"),
            adversary.stats().inflated_lengths);
  EXPECT_GT(counter(tracer, "limit.message_bits_breaches"), 0u);
  // The certified attempts each breach once and burn a retry.
  EXPECT_EQ(counter(tracer, "limit.breaches"), options.retry.max_attempts);
  EXPECT_EQ(counter(tracer, "retry.attempts"), result.repetitions - 1);
  EXPECT_EQ(counter(tracer, "degraded.runs"), 1u);
  EXPECT_EQ(counter(tracer, "degraded.input_fallbacks"), 1u);
}

// ---- multiparty: one lying player ----------------------------------------

// Coordinator topology, honest coordinator, Byzantine member: every pair
// with an honest member stays exact, so the final intersection is a
// subset of every honest player's set — the lying player corrupts only
// results derived from its own input.
TEST(ByzantineMultiparty, CoordinatorHonestSetsStillConstrainResult) {
  util::Rng rng(0xB1);
  const util::MultiSetInstance instance =
      util::random_multi_sets(rng, 1u << 12, /*players=*/6, /*k=*/24,
                              /*shared=*/6);
  const std::size_t byzantine = 2;

  sim::AdversarySpec spec;
  spec.attack = sim::AttackClass::kMixed;
  spec.attack_prob = 1.0;
  spec.frame_bits = 1u << 12;
  spec.lie_universe = 1u << 12;
  spec.seed = 0xB2;
  sim::Adversary adversary(spec);

  obs::Tracer tracer;
  sim::Network network(instance.sets.size());
  network.set_tracer(&tracer);
  sim::SharedRandomness shared(0xB3);

  multiparty::MultipartyParams params;
  params.retry.max_attempts = 6;
  params.retry.degraded_attempts = 2;
  params.adversary = &adversary;
  params.byzantine_player = byzantine;
  params.limits = core::ResourceLimits::for_workload(1u << 12, 24);

  const multiparty::MultipartyResult result =
      multiparty::coordinator_intersection(network, shared, 1u << 12,
                                           instance.sets, params);

  util::Set honest_intersection;
  bool first = true;
  for (std::size_t i = 0; i < instance.sets.size(); ++i) {
    if (i == byzantine) continue;
    honest_intersection =
        first ? instance.sets[i]
              : util::set_intersection(honest_intersection, instance.sets[i]);
    first = false;
  }
  EXPECT_TRUE(util::is_subset(result.intersection, honest_intersection));
  EXPECT_GT(adversary.stats().frames_crafted, 0u);
  EXPECT_EQ(counter(tracer, "mp.byzantine_pairs"), 1u);
  // S3: the network-level counters agree with the result's own
  // accounting, Byzantine pressure included.
  EXPECT_EQ(counter(tracer, "mp.repetitions"), result.total_repetitions);
  EXPECT_EQ(counter(tracer, "mp.degraded_pairs"), result.degraded_pairs);
}

// Tournament topology: the Byzantine player's (uncertified) match is
// flagged and skipped, the rest of the bracket stays exact, and the
// certified root keeps the superset contract: the true m-way intersection
// is never lost, only the lying player's constraint.
TEST(ByzantineMultiparty, TournamentSkipsTheLiarsMatchAndStaysSafe) {
  util::Rng rng(0xB4);
  const util::MultiSetInstance instance =
      util::random_multi_sets(rng, 1u << 12, /*players=*/8, /*k=*/24,
                              /*shared=*/5);
  const std::size_t byzantine = 5;

  sim::AdversarySpec spec;
  spec.attack = sim::AttackClass::kMixed;
  spec.attack_prob = 1.0;
  spec.frame_bits = 1u << 12;
  spec.lie_universe = 1u << 12;
  spec.seed = 0xB5;
  sim::Adversary adversary(spec);

  obs::Tracer tracer;
  sim::Network network(instance.sets.size());
  network.set_tracer(&tracer);
  sim::SharedRandomness shared(0xB6);

  multiparty::MultipartyParams params;
  params.retry.max_attempts = 4;
  params.retry.degraded_attempts = 2;
  params.adversary = &adversary;
  params.byzantine_player = byzantine;
  params.limits = core::ResourceLimits::for_workload(1u << 12, 24);

  const multiparty::MultipartyResult result =
      multiparty::tournament_intersection(network, shared, 1u << 12,
                                          instance.sets, params);

  // Superset contract: no true element is ever silently dropped.
  EXPECT_TRUE(
      util::is_subset(instance.expected_intersection, result.intersection));
  // The carried candidate chain runs through honest player 0.
  EXPECT_TRUE(util::is_subset(result.intersection, instance.sets[0]));
  // The liar's match cannot advance (every attempt is crafted-frame
  // touched), so the run is flagged degraded.
  EXPECT_TRUE(result.degraded);
  EXPECT_GE(result.degraded_pairs, 1u);
  EXPECT_GE(counter(tracer, "mp.byzantine_pairs"), 1u);
  EXPECT_GT(counter(tracer, "mp.skipped_matches"), 0u);
  EXPECT_EQ(counter(tracer, "mp.repetitions"), result.total_repetitions);
  EXPECT_EQ(counter(tracer, "mp.degraded_pairs"), result.degraded_pairs);
}

// Control: the same multiparty workloads with no adversary stay exact —
// honest players are untouched by the Byzantine plumbing.
TEST(ByzantineMultiparty, HonestRunsStayExactWithByzantinePlumbingIdle) {
  util::Rng rng(0xB7);
  const util::MultiSetInstance instance =
      util::random_multi_sets(rng, 1u << 12, /*players=*/6, /*k=*/24,
                              /*shared=*/4);
  sim::Network network(instance.sets.size());
  sim::SharedRandomness shared(0xB8);
  multiparty::MultipartyParams params;
  params.limits = core::ResourceLimits::for_workload(1u << 12, 24);
  const multiparty::MultipartyResult result =
      multiparty::coordinator_intersection(network, shared, 1u << 12,
                                           instance.sets, params);
  EXPECT_EQ(result.intersection, instance.expected_intersection);
  EXPECT_FALSE(result.degraded);
}

// ---- S3: metrics match result fields under stochastic faults -------------

TEST(MetricsMatch, CoordinatorCountersMatchResultFields) {
  util::Rng rng(0xC1);
  const util::MultiSetInstance instance =
      util::random_multi_sets(rng, 1u << 12, /*players=*/6, /*k=*/24,
                              /*shared=*/5);
  sim::FaultSpec fault_spec;
  fault_spec.flip_per_bit = 0.004;
  fault_spec.drop_prob = 0.03;
  fault_spec.seed = 0xC2;
  sim::FaultPlan plan(fault_spec);

  obs::Tracer tracer;
  sim::Network network(instance.sets.size());
  network.set_tracer(&tracer);
  network.set_fault_plan(&plan);
  sim::SharedRandomness shared(0xC3);
  multiparty::MultipartyParams params;
  params.retry.max_attempts = 6;

  const multiparty::MultipartyResult result =
      multiparty::coordinator_intersection(network, shared, 1u << 12,
                                           instance.sets, params);

  EXPECT_GT(plan.stats().faults_injected, 0u);
  EXPECT_EQ(counter(tracer, "mp.pairwise_runs"), instance.sets.size() - 1);
  EXPECT_EQ(counter(tracer, "mp.repetitions"), result.total_repetitions);
  EXPECT_EQ(counter(tracer, "mp.degraded_pairs"), result.degraded_pairs);
  EXPECT_TRUE(
      util::is_subset(instance.expected_intersection, result.intersection));
}

TEST(MetricsMatch, TournamentCountersMatchResultFields) {
  util::Rng rng(0xC4);
  const util::MultiSetInstance instance =
      util::random_multi_sets(rng, 1u << 12, /*players=*/8, /*k=*/24,
                              /*shared=*/5);
  sim::FaultSpec fault_spec;
  fault_spec.flip_per_bit = 0.004;
  fault_spec.truncate_prob = 0.03;
  fault_spec.seed = 0xC5;
  sim::FaultPlan plan(fault_spec);

  obs::Tracer tracer;
  sim::Network network(instance.sets.size());
  network.set_tracer(&tracer);
  network.set_fault_plan(&plan);
  sim::SharedRandomness shared(0xC6);
  multiparty::MultipartyParams params;
  params.retry.max_attempts = 6;

  const multiparty::MultipartyResult result =
      multiparty::tournament_intersection(network, shared, 1u << 12,
                                          instance.sets, params);

  EXPECT_GT(plan.stats().faults_injected, 0u);
  // Only the certified root match contributes repetitions in the
  // tournament topology; the counter and the field must agree exactly.
  EXPECT_EQ(counter(tracer, "mp.repetitions"), result.total_repetitions);
  EXPECT_EQ(counter(tracer, "mp.degraded_pairs"), result.degraded_pairs);
  EXPECT_TRUE(
      util::is_subset(instance.expected_intersection, result.intersection));
}

TEST(MetricsMatch, FacadeRetryCountersMatchRepetitions) {
  util::Rng rng(0xC7);
  const util::SetPair pair = util::random_set_pair(rng, 1u << 12, 24, 6);
  sim::FaultSpec fault_spec;
  fault_spec.flip_per_bit = 0.01;
  fault_spec.seed = 0xC8;
  sim::FaultPlan plan(fault_spec);

  obs::Tracer tracer;
  IntersectOptions options;
  options.universe = 1u << 12;
  options.tracer = &tracer;
  options.fault_plan = &plan;
  options.retry.max_attempts = 8;

  const IntersectResult result = intersect(pair.s, pair.t, options);
  EXPECT_EQ(counter(tracer, "retry.attempts"), result.repetitions - 1);
  EXPECT_EQ(counter(tracer, "degraded.runs"), result.degraded ? 1u : 0u);
  if (result.verified) {
    EXPECT_EQ(counter(tracer, "mp.repetitions"), result.repetitions);
    EXPECT_EQ(result.intersection, pair.expected_intersection);
  } else {
    EXPECT_TRUE(result.degraded);
    EXPECT_TRUE(
        util::is_subset(pair.expected_intersection, result.intersection));
  }
}

}  // namespace
}  // namespace setint
