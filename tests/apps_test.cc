// Tests for the application layer: similarity statistics and the
// distributed join.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/join.h"
#include "apps/similarity.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// ---------- similarity ----------

struct SimCase {
  std::size_t k;
  std::size_t shared;
};

class Similarity : public ::testing::TestWithParam<SimCase> {};

TEST_P(Similarity, AllStatisticsMatchGroundTruth) {
  const SimCase c = GetParam();
  util::Rng wrng(c.k * 17 + c.shared);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 26, c.k, c.shared);
  sim::SharedRandomness shared(c.k + 3);
  sim::Channel ch;
  const apps::SimilarityReport rep = apps::similarity_report(
      ch, shared, 0, std::uint64_t{1} << 26, p.s, p.t);

  const util::Set uni = util::set_union(p.s, p.t);
  const util::Set sym = util::set_symmetric_difference(p.s, p.t);
  EXPECT_EQ(rep.size_s, p.s.size());
  EXPECT_EQ(rep.size_t_side, p.t.size());
  EXPECT_EQ(rep.intersection, p.expected_intersection);
  EXPECT_EQ(rep.intersection_size, p.expected_intersection.size());
  EXPECT_EQ(rep.union_size, uni.size());
  EXPECT_EQ(rep.symmetric_difference, sym.size());
  if (!uni.empty()) {
    EXPECT_DOUBLE_EQ(rep.jaccard,
                     static_cast<double>(p.expected_intersection.size()) /
                         static_cast<double>(uni.size()));
    EXPECT_DOUBLE_EQ(rep.rarity1, static_cast<double>(sym.size()) /
                                      static_cast<double>(uni.size()));
    EXPECT_DOUBLE_EQ(rep.rarity2, rep.jaccard);
    EXPECT_NEAR(rep.rarity1 + rep.rarity2, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Similarity,
                         ::testing::Values(SimCase{1, 0}, SimCase{1, 1},
                                           SimCase{16, 8}, SimCase{64, 0},
                                           SimCase{64, 64}, SimCase{256, 100},
                                           SimCase{1024, 512}));

TEST(Similarity, EmptyInputs) {
  sim::SharedRandomness shared(1);
  sim::Channel ch;
  const apps::SimilarityReport rep =
      apps::similarity_report(ch, shared, 0, 100, util::Set{}, util::Set{});
  EXPECT_EQ(rep.union_size, 0u);
  EXPECT_DOUBLE_EQ(rep.jaccard, 0.0);
  EXPECT_DOUBLE_EQ(rep.rarity1, 0.0);
}

TEST(Similarity, HammingDistanceOfSparseVectors) {
  // Sets as positions of ones: Hamming distance = |symmetric difference|.
  const util::Set a{1, 5, 9};
  const util::Set b{5, 9, 12, 13};
  sim::SharedRandomness shared(2);
  sim::Channel ch;
  const apps::SimilarityReport rep =
      apps::similarity_report(ch, shared, 0, 100, a, b);
  EXPECT_EQ(rep.symmetric_difference, 3u);  // {1, 12, 13}
}

TEST(Similarity, CostIsDominatedByIntersectionProtocol) {
  util::Rng wrng(3);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 512, 256);
  sim::SharedRandomness shared(3);
  sim::Channel ch;
  apps::similarity_report(ch, shared, 0, 1u << 24, p.s, p.t);
  // Size exchange adds ~2 gamma codes (< 50 bits) on top of the protocol.
  sim::Channel plain;
  core::verification_tree_intersection(plain, shared,
                                       util::mix64(0, 0x5171), 1u << 24, p.s,
                                       p.t, {});
  EXPECT_LT(ch.cost().bits_total, plain.cost().bits_total + 50);
}

// ---------- distributed join ----------

std::vector<apps::Row> make_table(const util::Set& keys,
                                  const std::string& prefix) {
  std::vector<apps::Row> rows;
  for (std::uint64_t k : keys) {
    rows.push_back(apps::Row{k, prefix + std::to_string(k)});
  }
  return rows;
}

TEST(Join, MatchesLocalJoin) {
  util::Rng wrng(4);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 20, 128, 64);
  sim::SharedRandomness shared(4);
  sim::Channel ch;
  const apps::JoinResult res = apps::distributed_join(
      ch, shared, 0, 1u << 20, make_table(p.s, "L"), make_table(p.t, "R"));
  ASSERT_EQ(res.rows.size(), p.expected_intersection.size());
  for (std::size_t i = 0; i < res.rows.size(); ++i) {
    const std::uint64_t key = p.expected_intersection[i];
    EXPECT_EQ(res.rows[i].key, key);
    EXPECT_EQ(res.rows[i].left_payload, "L" + std::to_string(key));
    EXPECT_EQ(res.rows[i].right_payload, "R" + std::to_string(key));
  }
}

TEST(Join, BeatsNaivePlanWhenJoinIsSelective) {
  // Large tables, small join: protocol + matched payloads must undercut
  // shipping the whole table.
  util::Rng wrng(5);
  const util::SetPair p = util::random_set_pair(wrng, 1u << 24, 2048, 16);
  sim::SharedRandomness shared(5);
  sim::Channel ch;
  const apps::JoinResult res = apps::distributed_join(
      ch, shared, 0, 1u << 24, make_table(p.s, "leftpayload-"),
      make_table(p.t, "rightpayload-"));
  EXPECT_EQ(res.rows.size(), 16u);
  EXPECT_LT(res.key_protocol_bits + res.payload_bits, res.naive_bits);
}

TEST(Join, EmptyTables) {
  sim::SharedRandomness shared(6);
  sim::Channel ch;
  const apps::JoinResult res =
      apps::distributed_join(ch, shared, 0, 100, {}, {});
  EXPECT_TRUE(res.rows.empty());
}

TEST(Join, NoMatches) {
  sim::SharedRandomness shared(7);
  sim::Channel ch;
  const apps::JoinResult res = apps::distributed_join(
      ch, shared, 0, 100, make_table(util::Set{1, 2, 3}, "a"),
      make_table(util::Set{4, 5, 6}, "b"));
  EXPECT_TRUE(res.rows.empty());
  EXPECT_EQ(res.payload_bits, 2u);  // two empty set encodings, 1 bit each
}

TEST(Join, UnsortedInputRowsAreHandled) {
  std::vector<apps::Row> left{{30, "c"}, {10, "a"}, {20, "b"}};
  std::vector<apps::Row> right{{20, "x"}, {40, "y"}, {10, "z"}};
  sim::SharedRandomness shared(8);
  sim::Channel ch;
  const apps::JoinResult res =
      apps::distributed_join(ch, shared, 0, 100, left, right);
  ASSERT_EQ(res.rows.size(), 2u);
  EXPECT_EQ(res.rows[0].key, 10u);
  EXPECT_EQ(res.rows[0].left_payload, "a");
  EXPECT_EQ(res.rows[0].right_payload, "z");
  EXPECT_EQ(res.rows[1].key, 20u);
}

TEST(Join, DuplicateKeysRejected) {
  std::vector<apps::Row> dup{{1, "a"}, {1, "b"}};
  sim::SharedRandomness shared(9);
  sim::Channel ch;
  EXPECT_THROW(apps::distributed_join(ch, shared, 0, 100, dup, {}),
               std::invalid_argument);
}

TEST(Join, PayloadsWithArbitraryBytes) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  std::vector<apps::Row> left{{5, binary}};
  std::vector<apps::Row> right{{5, "plain"}};
  sim::SharedRandomness shared(10);
  sim::Channel ch;
  const apps::JoinResult res =
      apps::distributed_join(ch, shared, 0, 100, left, right);
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0].left_payload, binary);
}

}  // namespace
}  // namespace setint
