file(REMOVE_RECURSE
  "libsetint.a"
)
