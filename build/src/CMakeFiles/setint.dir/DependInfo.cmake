
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/join.cc" "src/CMakeFiles/setint.dir/apps/join.cc.o" "gcc" "src/CMakeFiles/setint.dir/apps/join.cc.o.d"
  "/root/repo/src/apps/multiparty_apps.cc" "src/CMakeFiles/setint.dir/apps/multiparty_apps.cc.o" "gcc" "src/CMakeFiles/setint.dir/apps/multiparty_apps.cc.o.d"
  "/root/repo/src/apps/reconcile.cc" "src/CMakeFiles/setint.dir/apps/reconcile.cc.o" "gcc" "src/CMakeFiles/setint.dir/apps/reconcile.cc.o.d"
  "/root/repo/src/apps/similarity.cc" "src/CMakeFiles/setint.dir/apps/similarity.cc.o" "gcc" "src/CMakeFiles/setint.dir/apps/similarity.cc.o.d"
  "/root/repo/src/baselines/hw_disjointness.cc" "src/CMakeFiles/setint.dir/baselines/hw_disjointness.cc.o" "gcc" "src/CMakeFiles/setint.dir/baselines/hw_disjointness.cc.o.d"
  "/root/repo/src/baselines/st13_disjointness.cc" "src/CMakeFiles/setint.dir/baselines/st13_disjointness.cc.o" "gcc" "src/CMakeFiles/setint.dir/baselines/st13_disjointness.cc.o.d"
  "/root/repo/src/core/basic_intersection.cc" "src/CMakeFiles/setint.dir/core/basic_intersection.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/basic_intersection.cc.o.d"
  "/root/repo/src/core/bucket_eq.cc" "src/CMakeFiles/setint.dir/core/bucket_eq.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/bucket_eq.cc.o.d"
  "/root/repo/src/core/deterministic_exchange.cc" "src/CMakeFiles/setint.dir/core/deterministic_exchange.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/deterministic_exchange.cc.o.d"
  "/root/repo/src/core/one_round_hash.cc" "src/CMakeFiles/setint.dir/core/one_round_hash.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/one_round_hash.cc.o.d"
  "/root/repo/src/core/parties.cc" "src/CMakeFiles/setint.dir/core/parties.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/parties.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/CMakeFiles/setint.dir/core/planner.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/planner.cc.o.d"
  "/root/repo/src/core/private_coin.cc" "src/CMakeFiles/setint.dir/core/private_coin.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/private_coin.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/CMakeFiles/setint.dir/core/protocol.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/protocol.cc.o.d"
  "/root/repo/src/core/toy_protocol.cc" "src/CMakeFiles/setint.dir/core/toy_protocol.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/toy_protocol.cc.o.d"
  "/root/repo/src/core/tree_parties.cc" "src/CMakeFiles/setint.dir/core/tree_parties.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/tree_parties.cc.o.d"
  "/root/repo/src/core/verification_tree.cc" "src/CMakeFiles/setint.dir/core/verification_tree.cc.o" "gcc" "src/CMakeFiles/setint.dir/core/verification_tree.cc.o.d"
  "/root/repo/src/eq/amortized_eq.cc" "src/CMakeFiles/setint.dir/eq/amortized_eq.cc.o" "gcc" "src/CMakeFiles/setint.dir/eq/amortized_eq.cc.o.d"
  "/root/repo/src/eq/equality.cc" "src/CMakeFiles/setint.dir/eq/equality.cc.o" "gcc" "src/CMakeFiles/setint.dir/eq/equality.cc.o.d"
  "/root/repo/src/hashing/fks.cc" "src/CMakeFiles/setint.dir/hashing/fks.cc.o" "gcc" "src/CMakeFiles/setint.dir/hashing/fks.cc.o.d"
  "/root/repo/src/hashing/mask_hash.cc" "src/CMakeFiles/setint.dir/hashing/mask_hash.cc.o" "gcc" "src/CMakeFiles/setint.dir/hashing/mask_hash.cc.o.d"
  "/root/repo/src/hashing/modmath.cc" "src/CMakeFiles/setint.dir/hashing/modmath.cc.o" "gcc" "src/CMakeFiles/setint.dir/hashing/modmath.cc.o.d"
  "/root/repo/src/hashing/pairwise.cc" "src/CMakeFiles/setint.dir/hashing/pairwise.cc.o" "gcc" "src/CMakeFiles/setint.dir/hashing/pairwise.cc.o.d"
  "/root/repo/src/hashing/primes.cc" "src/CMakeFiles/setint.dir/hashing/primes.cc.o" "gcc" "src/CMakeFiles/setint.dir/hashing/primes.cc.o.d"
  "/root/repo/src/multiparty/coordinator.cc" "src/CMakeFiles/setint.dir/multiparty/coordinator.cc.o" "gcc" "src/CMakeFiles/setint.dir/multiparty/coordinator.cc.o.d"
  "/root/repo/src/multiparty/tournament.cc" "src/CMakeFiles/setint.dir/multiparty/tournament.cc.o" "gcc" "src/CMakeFiles/setint.dir/multiparty/tournament.cc.o.d"
  "/root/repo/src/reductions/eqk_to_int.cc" "src/CMakeFiles/setint.dir/reductions/eqk_to_int.cc.o" "gcc" "src/CMakeFiles/setint.dir/reductions/eqk_to_int.cc.o.d"
  "/root/repo/src/setint.cc" "src/CMakeFiles/setint.dir/setint.cc.o" "gcc" "src/CMakeFiles/setint.dir/setint.cc.o.d"
  "/root/repo/src/sim/channel.cc" "src/CMakeFiles/setint.dir/sim/channel.cc.o" "gcc" "src/CMakeFiles/setint.dir/sim/channel.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/setint.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/setint.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/runtime.cc" "src/CMakeFiles/setint.dir/sim/runtime.cc.o" "gcc" "src/CMakeFiles/setint.dir/sim/runtime.cc.o.d"
  "/root/repo/src/sim/transcript.cc" "src/CMakeFiles/setint.dir/sim/transcript.cc.o" "gcc" "src/CMakeFiles/setint.dir/sim/transcript.cc.o.d"
  "/root/repo/src/util/bitio.cc" "src/CMakeFiles/setint.dir/util/bitio.cc.o" "gcc" "src/CMakeFiles/setint.dir/util/bitio.cc.o.d"
  "/root/repo/src/util/iterated_log.cc" "src/CMakeFiles/setint.dir/util/iterated_log.cc.o" "gcc" "src/CMakeFiles/setint.dir/util/iterated_log.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/setint.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/setint.dir/util/rng.cc.o.d"
  "/root/repo/src/util/set_util.cc" "src/CMakeFiles/setint.dir/util/set_util.cc.o" "gcc" "src/CMakeFiles/setint.dir/util/set_util.cc.o.d"
  "/root/repo/src/util/workloads.cc" "src/CMakeFiles/setint.dir/util/workloads.cc.o" "gcc" "src/CMakeFiles/setint.dir/util/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
