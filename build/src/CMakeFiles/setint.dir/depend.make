# Empty dependencies file for setint.
# This may be replaced when dependencies are built.
