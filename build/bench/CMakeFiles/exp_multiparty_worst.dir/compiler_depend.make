# Empty compiler generated dependencies file for exp_multiparty_worst.
# This may be replaced when dependencies are built.
