file(REMOVE_RECURSE
  "CMakeFiles/exp_multiparty_worst.dir/exp_multiparty_worst.cc.o"
  "CMakeFiles/exp_multiparty_worst.dir/exp_multiparty_worst.cc.o.d"
  "exp_multiparty_worst"
  "exp_multiparty_worst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_multiparty_worst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
