# Empty dependencies file for exp_applications.
# This may be replaced when dependencies are built.
