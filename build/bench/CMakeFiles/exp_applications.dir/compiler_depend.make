# Empty compiler generated dependencies file for exp_applications.
# This may be replaced when dependencies are built.
