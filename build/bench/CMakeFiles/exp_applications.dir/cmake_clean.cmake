file(REMOVE_RECURSE
  "CMakeFiles/exp_applications.dir/exp_applications.cc.o"
  "CMakeFiles/exp_applications.dir/exp_applications.cc.o.d"
  "exp_applications"
  "exp_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
