# Empty compiler generated dependencies file for exp_eqk.
# This may be replaced when dependencies are built.
