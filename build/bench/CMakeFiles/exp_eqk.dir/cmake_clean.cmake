file(REMOVE_RECURSE
  "CMakeFiles/exp_eqk.dir/exp_eqk.cc.o"
  "CMakeFiles/exp_eqk.dir/exp_eqk.cc.o.d"
  "exp_eqk"
  "exp_eqk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_eqk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
