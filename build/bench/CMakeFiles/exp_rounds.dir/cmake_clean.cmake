file(REMOVE_RECURSE
  "CMakeFiles/exp_rounds.dir/exp_rounds.cc.o"
  "CMakeFiles/exp_rounds.dir/exp_rounds.cc.o.d"
  "exp_rounds"
  "exp_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
