# Empty dependencies file for exp_rounds.
# This may be replaced when dependencies are built.
