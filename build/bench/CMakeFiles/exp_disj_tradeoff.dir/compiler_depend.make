# Empty compiler generated dependencies file for exp_disj_tradeoff.
# This may be replaced when dependencies are built.
