file(REMOVE_RECURSE
  "CMakeFiles/exp_disj_tradeoff.dir/exp_disj_tradeoff.cc.o"
  "CMakeFiles/exp_disj_tradeoff.dir/exp_disj_tradeoff.cc.o.d"
  "exp_disj_tradeoff"
  "exp_disj_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_disj_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
