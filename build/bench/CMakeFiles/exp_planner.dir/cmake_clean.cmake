file(REMOVE_RECURSE
  "CMakeFiles/exp_planner.dir/exp_planner.cc.o"
  "CMakeFiles/exp_planner.dir/exp_planner.cc.o.d"
  "exp_planner"
  "exp_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
