# Empty dependencies file for exp_planner.
# This may be replaced when dependencies are built.
