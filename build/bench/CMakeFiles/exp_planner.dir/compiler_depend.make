# Empty compiler generated dependencies file for exp_planner.
# This may be replaced when dependencies are built.
