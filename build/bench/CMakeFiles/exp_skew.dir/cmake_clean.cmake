file(REMOVE_RECURSE
  "CMakeFiles/exp_skew.dir/exp_skew.cc.o"
  "CMakeFiles/exp_skew.dir/exp_skew.cc.o.d"
  "exp_skew"
  "exp_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
