# Empty dependencies file for exp_skew.
# This may be replaced when dependencies are built.
