# Empty compiler generated dependencies file for exp_zoo.
# This may be replaced when dependencies are built.
