file(REMOVE_RECURSE
  "CMakeFiles/exp_zoo.dir/exp_zoo.cc.o"
  "CMakeFiles/exp_zoo.dir/exp_zoo.cc.o.d"
  "exp_zoo"
  "exp_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
