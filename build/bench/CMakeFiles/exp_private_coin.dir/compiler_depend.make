# Empty compiler generated dependencies file for exp_private_coin.
# This may be replaced when dependencies are built.
