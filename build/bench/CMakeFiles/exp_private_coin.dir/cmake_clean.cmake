file(REMOVE_RECURSE
  "CMakeFiles/exp_private_coin.dir/exp_private_coin.cc.o"
  "CMakeFiles/exp_private_coin.dir/exp_private_coin.cc.o.d"
  "exp_private_coin"
  "exp_private_coin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_private_coin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
