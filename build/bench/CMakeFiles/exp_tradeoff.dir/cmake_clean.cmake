file(REMOVE_RECURSE
  "CMakeFiles/exp_tradeoff.dir/exp_tradeoff.cc.o"
  "CMakeFiles/exp_tradeoff.dir/exp_tradeoff.cc.o.d"
  "exp_tradeoff"
  "exp_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
