# Empty dependencies file for exp_tradeoff.
# This may be replaced when dependencies are built.
