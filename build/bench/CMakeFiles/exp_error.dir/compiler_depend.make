# Empty compiler generated dependencies file for exp_error.
# This may be replaced when dependencies are built.
