file(REMOVE_RECURSE
  "CMakeFiles/exp_error.dir/exp_error.cc.o"
  "CMakeFiles/exp_error.dir/exp_error.cc.o.d"
  "exp_error"
  "exp_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
