# Empty dependencies file for exp_internals.
# This may be replaced when dependencies are built.
