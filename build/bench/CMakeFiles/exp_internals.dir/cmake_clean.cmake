file(REMOVE_RECURSE
  "CMakeFiles/exp_internals.dir/exp_internals.cc.o"
  "CMakeFiles/exp_internals.dir/exp_internals.cc.o.d"
  "exp_internals"
  "exp_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
