file(REMOVE_RECURSE
  "CMakeFiles/exp_intersection_size.dir/exp_intersection_size.cc.o"
  "CMakeFiles/exp_intersection_size.dir/exp_intersection_size.cc.o.d"
  "exp_intersection_size"
  "exp_intersection_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_intersection_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
