# Empty dependencies file for exp_intersection_size.
# This may be replaced when dependencies are built.
