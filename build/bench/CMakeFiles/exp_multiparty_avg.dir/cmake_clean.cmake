file(REMOVE_RECURSE
  "CMakeFiles/exp_multiparty_avg.dir/exp_multiparty_avg.cc.o"
  "CMakeFiles/exp_multiparty_avg.dir/exp_multiparty_avg.cc.o.d"
  "exp_multiparty_avg"
  "exp_multiparty_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_multiparty_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
