# Empty compiler generated dependencies file for exp_multiparty_avg.
# This may be replaced when dependencies are built.
