# Empty compiler generated dependencies file for example_setint_cli.
# This may be replaced when dependencies are built.
