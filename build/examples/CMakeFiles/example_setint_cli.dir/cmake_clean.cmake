file(REMOVE_RECURSE
  "CMakeFiles/example_setint_cli.dir/setint_cli.cpp.o"
  "CMakeFiles/example_setint_cli.dir/setint_cli.cpp.o.d"
  "example_setint_cli"
  "example_setint_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_setint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
