file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_join.dir/distributed_join.cpp.o"
  "CMakeFiles/example_distributed_join.dir/distributed_join.cpp.o.d"
  "example_distributed_join"
  "example_distributed_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
