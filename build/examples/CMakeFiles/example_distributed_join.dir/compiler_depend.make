# Empty compiler generated dependencies file for example_distributed_join.
# This may be replaced when dependencies are built.
