# Empty dependencies file for example_multiparty_dedup.
# This may be replaced when dependencies are built.
