file(REMOVE_RECURSE
  "CMakeFiles/example_multiparty_dedup.dir/multiparty_dedup.cpp.o"
  "CMakeFiles/example_multiparty_dedup.dir/multiparty_dedup.cpp.o.d"
  "example_multiparty_dedup"
  "example_multiparty_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multiparty_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
