# Empty dependencies file for example_jaccard_similarity.
# This may be replaced when dependencies are built.
