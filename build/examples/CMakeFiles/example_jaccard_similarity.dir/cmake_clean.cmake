file(REMOVE_RECURSE
  "CMakeFiles/example_jaccard_similarity.dir/jaccard_similarity.cpp.o"
  "CMakeFiles/example_jaccard_similarity.dir/jaccard_similarity.cpp.o.d"
  "example_jaccard_similarity"
  "example_jaccard_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_jaccard_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
