# Empty dependencies file for basic_intersection_test.
# This may be replaced when dependencies are built.
