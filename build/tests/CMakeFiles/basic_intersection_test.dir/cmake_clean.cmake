file(REMOVE_RECURSE
  "CMakeFiles/basic_intersection_test.dir/basic_intersection_test.cc.o"
  "CMakeFiles/basic_intersection_test.dir/basic_intersection_test.cc.o.d"
  "basic_intersection_test"
  "basic_intersection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_intersection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
