file(REMOVE_RECURSE
  "CMakeFiles/toy_protocol_test.dir/toy_protocol_test.cc.o"
  "CMakeFiles/toy_protocol_test.dir/toy_protocol_test.cc.o.d"
  "toy_protocol_test"
  "toy_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
