# Empty compiler generated dependencies file for toy_protocol_test.
# This may be replaced when dependencies are built.
