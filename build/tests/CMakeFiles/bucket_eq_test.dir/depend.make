# Empty dependencies file for bucket_eq_test.
# This may be replaced when dependencies are built.
