file(REMOVE_RECURSE
  "CMakeFiles/bucket_eq_test.dir/bucket_eq_test.cc.o"
  "CMakeFiles/bucket_eq_test.dir/bucket_eq_test.cc.o.d"
  "bucket_eq_test"
  "bucket_eq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_eq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
