# Empty compiler generated dependencies file for verification_tree_test.
# This may be replaced when dependencies are built.
