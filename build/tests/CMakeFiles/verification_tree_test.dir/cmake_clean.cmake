file(REMOVE_RECURSE
  "CMakeFiles/verification_tree_test.dir/verification_tree_test.cc.o"
  "CMakeFiles/verification_tree_test.dir/verification_tree_test.cc.o.d"
  "verification_tree_test"
  "verification_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
