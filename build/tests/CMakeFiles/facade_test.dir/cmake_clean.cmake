file(REMOVE_RECURSE
  "CMakeFiles/facade_test.dir/facade_test.cc.o"
  "CMakeFiles/facade_test.dir/facade_test.cc.o.d"
  "facade_test"
  "facade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
