file(REMOVE_RECURSE
  "CMakeFiles/tree_parties_test.dir/tree_parties_test.cc.o"
  "CMakeFiles/tree_parties_test.dir/tree_parties_test.cc.o.d"
  "tree_parties_test"
  "tree_parties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_parties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
