# Empty dependencies file for amortized_eq_test.
# This may be replaced when dependencies are built.
