file(REMOVE_RECURSE
  "CMakeFiles/amortized_eq_test.dir/amortized_eq_test.cc.o"
  "CMakeFiles/amortized_eq_test.dir/amortized_eq_test.cc.o.d"
  "amortized_eq_test"
  "amortized_eq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amortized_eq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
