file(REMOVE_RECURSE
  "CMakeFiles/equality_test.dir/equality_test.cc.o"
  "CMakeFiles/equality_test.dir/equality_test.cc.o.d"
  "equality_test"
  "equality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
