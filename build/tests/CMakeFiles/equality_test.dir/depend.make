# Empty dependencies file for equality_test.
# This may be replaced when dependencies are built.
