file(REMOVE_RECURSE
  "CMakeFiles/protocol_zoo_test.dir/protocol_zoo_test.cc.o"
  "CMakeFiles/protocol_zoo_test.dir/protocol_zoo_test.cc.o.d"
  "protocol_zoo_test"
  "protocol_zoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
