# Empty dependencies file for protocol_zoo_test.
# This may be replaced when dependencies are built.
