file(REMOVE_RECURSE
  "CMakeFiles/multiparty_apps_test.dir/multiparty_apps_test.cc.o"
  "CMakeFiles/multiparty_apps_test.dir/multiparty_apps_test.cc.o.d"
  "multiparty_apps_test"
  "multiparty_apps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiparty_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
