# Empty compiler generated dependencies file for multiparty_apps_test.
# This may be replaced when dependencies are built.
