file(REMOVE_RECURSE
  "CMakeFiles/private_coin_test.dir/private_coin_test.cc.o"
  "CMakeFiles/private_coin_test.dir/private_coin_test.cc.o.d"
  "private_coin_test"
  "private_coin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_coin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
