# Empty compiler generated dependencies file for private_coin_test.
# This may be replaced when dependencies are built.
