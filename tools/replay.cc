// replay — deterministic incident replay for flight-recorder dumps
// (docs/ROBUSTNESS.md § replay workflow).
//
//   replay --record=<prefix> --scenario=<name> [--seed=<u64>]
//   replay <dump.jsonl>
//
// Record mode runs one canned facade session whose configuration is known
// to raise an incident (scenarios: integrity, crash, partition, degrade,
// overload)
// with the flight recorder's dump path set to <prefix>; it prints the
// JSONL post-mortem file it produced. Every facade session stamps its full
// configuration — seeds, inputs, retry policy, fault and chaos specs —
// into the recorder's context block, so the dump is self-describing.
//
// Replay mode parses a dump's meta line, rebuilds the exact session from
// the embedded context, re-executes it with a fresh recorder dumping into
// a scratch directory, and asserts that the re-run raises its incident at
// the same point with a bit-for-bit identical transcript digest (and that
// the regenerated dump matches the original byte-for-byte). This is the
// contract bench/exp_chaos and the chaos CI lane rely on: any incident the
// sim stack produces can be reproduced exactly from its post-mortem alone.
//
// Exit codes: 0 = replay matched (or record mode produced a dump),
// 1 = replay diverged, 2 = usage error or non-replayable dump (no context,
// adversary session, malformed JSON).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/recorder.h"
#include "setint.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "util/set_util.h"

namespace {

namespace fs = std::filesystem;
using setint::obs::Json;

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "replay: %s\n", msg);
  std::fprintf(stderr,
               "usage: replay --record=<prefix> --scenario=<name> "
               "[--seed=<u64>]\n"
               "       replay <dump.jsonl>\n"
               "scenarios: integrity, crash, partition, degrade, overload\n");
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

double parse_double(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

setint::util::Set parse_set(const std::string& csv) {
  setint::util::Set out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(parse_u64(csv.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

// --------------------------------------------------------------------
// Record mode: canned incident-raising sessions.

struct Scenario {
  setint::util::Set s;
  setint::util::Set t;
  setint::IntersectOptions options;  // chaos/fault pointers patched below
  std::optional<setint::sim::FaultSpec> fault;
  std::optional<setint::sim::ChaosSpec> chaos;
};

Scenario make_scenario(const std::string& name, std::uint64_t seed) {
  Scenario sc;
  setint::util::Rng rng(setint::util::mix64(seed, 0x5EED));
  const setint::util::SetPair pair = setint::util::random_set_pair(
      rng, /*universe=*/std::uint64_t{1} << 16, /*k=*/48, /*shared=*/16);
  sc.s = pair.s;
  sc.t = pair.t;
  sc.options.universe = std::uint64_t{1} << 16;
  sc.options.seed = seed;
  if (name == "integrity") {
    // Aggressive bit flips: the first damaged frame fails the integrity
    // check, which raises a channel incident immediately.
    setint::sim::FaultSpec spec;
    spec.flip_per_bit = 5e-3;
    sc.fault = spec;
  } else if (name == "crash") {
    // Peer dies on first contact: recovery declares it lost and the
    // degradation incident fires.
    setint::sim::ChaosSpec spec;
    setint::sim::CrashSchedule dead;
    dead.crash_prob = 1.0;
    dead.max_crashes = 0;
    spec.crash_overrides.emplace_back(1, dead);
    sc.chaos = spec;
  } else if (name == "partition") {
    // The link partitions early for longer than the resume-wait budget.
    setint::sim::ChaosSpec spec;
    setint::sim::PartitionWindow w;
    w.a = 0;
    w.b = 1;
    w.start_tick = 4;
    w.end_tick = 4 + (std::uint64_t{1} << 16);
    spec.partitions.push_back(w);
    sc.chaos = spec;
  } else if (name == "degrade") {
    // Bruising flip rate + a tiny retry budget: the session exhausts its
    // attempts and degrades.
    setint::sim::FaultSpec spec;
    spec.flip_per_bit = 2e-2;
    sc.fault = spec;
    sc.options.retry.max_attempts = 2;
    sc.options.retry.degraded_attempts = 2;
  } else if (name == "overload") {
    // A bit budget far below the protocol's cost: the first phase
    // boundary trips it and the session descends the degradation ladder
    // (core/budget.h), firing the budget-exhausted incident.
    sc.options.budget.max_bits = 64;
  } else {
    usage("unknown scenario");
  }
  return sc;
}

// Runs one scenario session with the recorder dumping under `prefix`.
// Returns the recorder so callers can inspect digest + dump files.
std::unique_ptr<setint::obs::FlightRecorder> run_session(
    Scenario& sc, const std::string& prefix) {
  auto rec = std::make_unique<setint::obs::FlightRecorder>(/*capacity=*/256);
  rec->set_dump_path(prefix, /*max_dumps=*/8);
  std::unique_ptr<setint::sim::FaultPlan> fault_plan;
  if (sc.fault) fault_plan = std::make_unique<setint::sim::FaultPlan>(*sc.fault);
  std::unique_ptr<setint::sim::ChaosPlan> chaos_plan;
  if (sc.chaos) {
    chaos_plan = std::make_unique<setint::sim::ChaosPlan>(*sc.chaos,
                                                          sc.options.seed);
  }
  sc.options.recorder = rec.get();
  sc.options.fault_plan = fault_plan.get();
  sc.options.chaos_plan = chaos_plan.get();
  (void)setint::intersect(sc.s, sc.t, sc.options);
  return rec;
}

int record_mode(const std::string& prefix, const std::string& scenario,
                std::uint64_t seed) {
  Scenario sc = make_scenario(scenario, seed);
  auto rec = run_session(sc, prefix);
  if (rec->dump_files().empty()) {
    // The scenario got lucky and raised nothing; still produce a
    // replayable post-mortem of the clean session.
    rec->incident("recorded session (no incident fired)");
  }
  if (rec->dump_files().empty()) {
    std::fprintf(stderr, "replay: failed to write a dump under %s\n",
                 prefix.c_str());
    return 2;
  }
  std::printf("%s\n", rec->dump_files().front().c_str());
  return 0;
}

// --------------------------------------------------------------------
// Replay mode.

std::string context_value(const Json& ctx, const char* key,
                          const std::string& fallback = "") {
  const Json* v = ctx.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

bool has_key(const Json& ctx, const char* key) {
  return ctx.find(key) != nullptr;
}

int replay_mode(const std::string& dump_path) {
  std::ifstream in(dump_path);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", dump_path.c_str());
    return 2;
  }
  std::string meta_line;
  if (!std::getline(in, meta_line)) {
    std::fprintf(stderr, "replay: %s is empty\n", dump_path.c_str());
    return 2;
  }
  Json meta;
  try {
    meta = Json::parse(meta_line);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay: bad meta line: %s\n", e.what());
    return 2;
  }
  const Json* ctx_ptr = meta.find("context");
  if (ctx_ptr == nullptr || !ctx_ptr->is_object()) {
    std::fprintf(stderr,
                 "replay: dump has no replay context (pre-chaos recorder, or "
                 "a non-facade session)\n");
    return 2;
  }
  const Json& ctx = *ctx_ptr;
  if (context_value(ctx, "kind") != "two_party") {
    std::fprintf(stderr, "replay: unsupported session kind\n");
    return 2;
  }
  if (has_key(ctx, "adversary")) {
    std::fprintf(stderr,
                 "replay: adversary sessions are recorded but not "
                 "replayable (crafted frames depend on live state)\n");
    return 2;
  }
  const Json* digest = meta.find("transcript_digest");
  const Json* incidents = meta.find("incidents");
  if (digest == nullptr || !digest->is_string() || incidents == nullptr) {
    std::fprintf(stderr, "replay: meta line lacks digest/incident count\n");
    return 2;
  }

  // Rebuild the session from the context block.
  const setint::util::Set s = parse_set(context_value(ctx, "s"));
  const setint::util::Set t = parse_set(context_value(ctx, "t"));
  setint::IntersectOptions options;
  options.seed = parse_u64(context_value(ctx, "seed", "0"));
  options.universe = parse_u64(context_value(ctx, "universe", "0"));
  options.rounds_r =
      static_cast<int>(parse_u64(context_value(ctx, "rounds_r", "0")));
  options.checkpoint = context_value(ctx, "checkpoint", "1") == "1";
  options.retry.max_attempts =
      parse_u64(context_value(ctx, "retry.max_attempts", "40"));
  options.retry.backoff_rounds =
      parse_u64(context_value(ctx, "retry.backoff_rounds", "0"));
  options.retry.backoff_multiplier =
      parse_double(context_value(ctx, "retry.backoff_multiplier", "1"));
  options.retry.backoff_cap_rounds =
      parse_u64(context_value(ctx, "retry.backoff_cap_rounds", "4096"));
  options.retry.backoff_jitter =
      parse_double(context_value(ctx, "retry.backoff_jitter", "0"));
  options.retry.degraded_attempts =
      parse_u64(context_value(ctx, "retry.degraded_attempts", "4"));
  options.retry.max_restarts =
      parse_u64(context_value(ctx, "retry.max_restarts", "16"));
  options.retry.max_resume_wait_rounds =
      parse_u64(context_value(ctx, "retry.max_resume_wait_rounds", "4096"));
  if (has_key(ctx, "budget.max_bits")) {
    options.budget.max_bits =
        parse_u64(context_value(ctx, "budget.max_bits", "0"));
    options.budget.max_rounds =
        parse_u64(context_value(ctx, "budget.max_rounds", "0"));
    options.budget.deadline_ticks =
        parse_u64(context_value(ctx, "budget.deadline_ticks", "0"));
    options.budget.refuse_on_exhaustion =
        context_value(ctx, "budget.refuse_on_exhaustion", "0") == "1";
  }
  if (has_key(ctx, "limits.max_total_bits")) {
    options.limits.max_message_bits =
        parse_u64(context_value(ctx, "limits.max_message_bits", "0"));
    options.limits.max_total_bits =
        parse_u64(context_value(ctx, "limits.max_total_bits", "0"));
    options.limits.max_rounds =
        parse_u64(context_value(ctx, "limits.max_rounds", "0"));
    options.limits.max_decoded_items =
        parse_u64(context_value(ctx, "limits.max_decoded_items", "0"));
  }
  std::unique_ptr<setint::sim::FaultPlan> fault_plan;
  if (has_key(ctx, "fault.seed")) {
    setint::sim::FaultSpec spec;
    spec.flip_per_bit = parse_double(context_value(ctx, "fault.flip_per_bit", "0"));
    spec.truncate_prob = parse_double(context_value(ctx, "fault.truncate_prob", "0"));
    spec.drop_prob = parse_double(context_value(ctx, "fault.drop_prob", "0"));
    spec.duplicate_prob =
        parse_double(context_value(ctx, "fault.duplicate_prob", "0"));
    spec.delay_prob = parse_double(context_value(ctx, "fault.delay_prob", "0"));
    spec.delay_rounds = parse_u64(context_value(ctx, "fault.delay_rounds", "1"));
    spec.seed = parse_u64(context_value(ctx, "fault.seed", "0"));
    fault_plan = std::make_unique<setint::sim::FaultPlan>(spec);
    options.fault_plan = fault_plan.get();
  }
  std::unique_ptr<setint::sim::ChaosPlan> chaos_plan;
  if (has_key(ctx, "chaos.seed")) {
    setint::sim::ChaosSpec spec;
    spec.players = parse_u64(context_value(ctx, "chaos.players", "2"));
    spec.seed = parse_u64(context_value(ctx, "chaos.seed", "0"));
    spec.crash.crash_prob =
        parse_double(context_value(ctx, "chaos.crash_prob", "0"));
    spec.crash.restart_ticks =
        parse_u64(context_value(ctx, "chaos.restart_ticks", "4"));
    spec.crash.max_crashes =
        parse_u64(context_value(ctx, "chaos.max_crashes",
                                std::to_string(setint::sim::kUnlimitedCrashes)));
    for (const std::string& field :
         split(context_value(ctx, "chaos.overrides"), ';')) {
      if (field.empty()) continue;
      const std::vector<std::string> parts = split(field, ':');
      if (parts.size() != 4) {
        std::fprintf(stderr, "replay: malformed chaos.overrides\n");
        return 2;
      }
      setint::sim::CrashSchedule sched;
      sched.crash_prob = parse_double(parts[1]);
      sched.restart_ticks = parse_u64(parts[2]);
      sched.max_crashes = parse_u64(parts[3]);
      spec.crash_overrides.emplace_back(parse_u64(parts[0]), sched);
    }
    if (has_key(ctx, "chaos.burst")) {
      const std::vector<std::string> parts =
          split(context_value(ctx, "chaos.burst"), ',');
      if (parts.size() != 6) {
        std::fprintf(stderr, "replay: malformed chaos.burst\n");
        return 2;
      }
      spec.burst.p_good_to_bad = parse_double(parts[0]);
      spec.burst.p_bad_to_good = parse_double(parts[1]);
      spec.burst.loss_good = parse_double(parts[2]);
      spec.burst.loss_bad = parse_double(parts[3]);
      spec.burst.flip_good = parse_double(parts[4]);
      spec.burst.flip_bad = parse_double(parts[5]);
    }
    for (const std::string& field :
         split(context_value(ctx, "chaos.partitions"), ';')) {
      if (field.empty()) continue;
      const std::vector<std::string> parts = split(field, ':');
      if (parts.size() != 4) {
        std::fprintf(stderr, "replay: malformed chaos.partitions\n");
        return 2;
      }
      setint::sim::PartitionWindow w;
      w.a = parse_u64(parts[0]);
      w.b = parse_u64(parts[1]);
      w.start_tick = parse_u64(parts[2]);
      w.end_tick = parse_u64(parts[3]);
      spec.partitions.push_back(w);
    }
    chaos_plan = std::make_unique<setint::sim::ChaosPlan>(
        spec, parse_u64(context_value(ctx, "chaos.protocol_seed", "0")));
    options.chaos_plan = chaos_plan.get();
  }

  // Re-execute with a fresh recorder dumping into a scratch prefix, then
  // compare the dump the re-run produced at the SAME incident index.
  const fs::path scratch =
      fs::temp_directory_path() /
      ("setint_replay_" + std::to_string(options.seed));
  fs::create_directories(scratch);
  const std::string prefix = (scratch / "replay").string();
  setint::obs::FlightRecorder rec(/*capacity=*/256);
  rec.set_dump_path(prefix, /*max_dumps=*/8);
  options.recorder = &rec;
  (void)setint::intersect(s, t, options);
  const std::uint64_t incident_index =
      static_cast<std::uint64_t>(incidents->number_or(0));
  const std::string expected_reason = context_value(meta, "reason");
  std::string regenerated =
      prefix + "." + std::to_string(incident_index) + ".jsonl";
  if (!fs::exists(regenerated) && expected_reason.rfind("recorded session", 0) == 0) {
    // The original dump was forced post-run by record mode; do the same.
    rec.incident(expected_reason);
    regenerated = rec.dump_files().empty() ? regenerated
                                           : rec.dump_files().back();
  }
  std::ifstream regen_in(regenerated);
  if (!regen_in) {
    std::fprintf(stderr,
                 "replay: DIVERGED — re-run raised %llu incident(s), "
                 "expected at least %llu\n",
                 static_cast<unsigned long long>(rec.incidents()),
                 static_cast<unsigned long long>(incident_index));
    return 1;
  }
  std::string regen_meta_line;
  std::getline(regen_in, regen_meta_line);
  Json regen_meta = Json::parse(regen_meta_line);
  const Json* regen_digest = regen_meta.find("transcript_digest");
  const std::string want = digest->as_string();
  const std::string got =
      regen_digest != nullptr && regen_digest->is_string()
          ? regen_digest->as_string()
          : "<missing>";
  if (got != want) {
    std::fprintf(stderr,
                 "replay: DIVERGED — transcript digest %s, recorded %s\n",
                 got.c_str(), want.c_str());
    return 1;
  }
  // Digest matched; the whole regenerated dump should be byte-identical.
  std::ostringstream original_rest;
  original_rest << meta_line << '\n' << in.rdbuf();
  std::ostringstream regen_rest;
  regen_rest << regen_meta_line << '\n' << regen_in.rdbuf();
  if (original_rest.str() != regen_rest.str()) {
    std::fprintf(stderr,
                 "replay: DIVERGED — digest matches but dump bytes differ\n");
    return 1;
  }
  std::printf("replay: OK — transcript digest %s reproduced bit-for-bit "
              "(%zu bytes)\n",
              want.c_str(), original_rest.str().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string record_prefix;
  std::string scenario;
  std::string dump;
  std::uint64_t seed = 0x5e71;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--record=", 0) == 0) {
      record_prefix = arg.substr(9);
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario = arg.substr(11);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = parse_u64(arg.substr(7));
    } else if (!arg.empty() && arg[0] != '-') {
      if (!dump.empty()) usage("more than one dump file");
      dump = arg;
    } else {
      usage(("unknown flag: " + arg).c_str());
    }
  }
  if (!record_prefix.empty()) {
    if (scenario.empty()) usage("--record needs --scenario");
    if (!dump.empty()) usage("--record and a dump file are exclusive");
    return record_mode(record_prefix, scenario, seed);
  }
  if (dump.empty()) usage(nullptr);
  try {
    return replay_mode(dump);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay: %s\n", e.what());
    return 2;
  }
}
