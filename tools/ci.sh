#!/usr/bin/env bash
# Single-entry CI gate: everything a green checkmark means, in order.
#
#   1. tier-1 build + full ctest suite (RelWithDebInfo, build/)
#   2. the robustness slice by label (fault injection, Byzantine adversary,
#      fuzz smoke) — redundant with (1) but printed separately so a
#      robustness regression is named, not buried
#   3. the observability slice by label (flight recorder, HDR histograms,
#      conformance envelopes, bench_compare smoke)
#   4. the chaos slice by label (crash/restart + partition recovery,
#      checkpoint/resume transcript pins, exp_chaos safety gates) plus an
#      incident-replay round-trip through the tools/replay CLI, and the
#      overload slice by label (budgets, breakers, retry pool, admission,
#      degradation ladder, exp_overload gates, bench_compare identity on
#      the committed BENCH_overload.json), and the sansio slice by label
#      (framing/park pins, re-chunking invariance, the scheduler-vs-
#      blocking digest differential, exp_service gates, bench_compare
#      identity on the committed BENCH_service.json)
#   4b. the simd slice by label (forced-tier differential suite for the
#      SIMD local-compute engine, golden + digest pins), run twice: with
#      native dispatch and under SETINT_FORCE_SCALAR=1
#   5. a longer seeded fuzz run than the in-suite smoke test
#   6. every bench binary end-to-end at smoke size (each one gates its own
#      safety/acceptance claims via its exit code)
#   7. the perf-smoke lane: exp_cpu --smoke, gating ONLY on the
#      golden-transcript bit-identity exit code and JSON emission (no
#      timing thresholds — CI containers are 1-core and noisy)
#   7b. the simd bench lane: exp_cpu re-run under SETINT_FORCE_SCALAR=1
#      and bench_compare'd against the native-dispatch record — every
#      checksum, digest, bits and rounds cell must be bit-identical across
#      tiers (timing is skipped as cross-tier incomparable) — plus an
#      ASan/UBSan pass over the intrinsics (ctest -L simd in
#      build-sanitize/)
#   8. the telemetry-overhead gate (exp_cpu --gate-overhead=50) and the
#      bench_compare self-diff + injected-regression check
#   9. the bench determinism contract (same seed => identical JSON modulo
#      wall_ms)
#  10. the ThreadSanitizer lane: the concurrency + statistical slices
#      rebuilt under TSan (build-tsan/) — the batch engine's data-race
#      gate — plus exp_service --threads=2/8 (the sharded event loop's
#      thread-invariance gate under TSan)
#
# Usage: tools/ci.sh [--fast]
#   --fast  skip steps 5-9 (inner-loop edit/test cycles)
#
# The ASan/UBSan gate is a separate entry point (it needs its own build
# tree): tools/run_sanitized_tests.sh.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$PWD"
BUILD_DIR="$REPO_ROOT/build"
JOBS="$(nproc)"

FAST=""
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

step() { echo; echo "=== [ci] $* ==="; }

step "tier-1: configure + build"
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"

step "tier-1: full ctest suite"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

step "robustness slice (ctest -L robustness)"
(cd "$BUILD_DIR" && ctest --output-on-failure -L robustness -j "$JOBS")

step "observability slice (ctest -L observability)"
# Flight recorder, HDR histograms, conformance envelopes, bench_compare
# smoke — cheap enough to keep inside the --fast inner loop.
(cd "$BUILD_DIR" && ctest --output-on-failure -L observability -j "$JOBS")

step "chaos slice (ctest -L chaos)"
# Crash/restart + partition recovery, checkpoint/resume transcript pins,
# exp_chaos safety gates, replay_roundtrip — the PR-7 lane.
(cd "$BUILD_DIR" && ctest --output-on-failure -L chaos -j "$JOBS")

step "overload slice (ctest -L overload)"
# Budgets, backoff, retry pool, admission control, circuit breakers, the
# degradation ladder, and the exp_overload safety/efficiency gates — the
# PR-8 lane. The sweep's own exit code carries the ladder-safety,
# breaker-beats-flat-retry and unhit-budget-bit-identity gates; on top of
# that, bench_compare must pass the committed BENCH_overload.json against
# itself (schema + identity check on the recorded trajectory).
(cd "$BUILD_DIR" && ctest --output-on-failure -L overload -j "$JOBS")
OVERLOAD_DIR="$BUILD_DIR/overload-lane"
rm -rf "$OVERLOAD_DIR"
mkdir -p "$OVERLOAD_DIR/committed"
"$BUILD_DIR/bench/exp_overload" --smoke --seed=24145 \
    --json="$OVERLOAD_DIR/exp_overload.json" > /dev/null
cp "$REPO_ROOT/BENCH_overload.json" "$OVERLOAD_DIR/committed/"
"$BUILD_DIR/tools/bench_compare" "$OVERLOAD_DIR/committed" \
    "$OVERLOAD_DIR/committed"

step "sansio slice (ctest -L sansio)"
# Sans-IO engine + scheduler — the PR-9 lane: framing/park regression
# pins, random re-chunking invariance, the scheduler-vs-blocking digest
# differential, and the exp_service gates (S1 digest identity against the
# blocking engine, S3 thread invariance) via its exit code. bench_compare
# must also pass the committed BENCH_service.json against itself.
(cd "$BUILD_DIR" && ctest --output-on-failure -L sansio -j "$JOBS")
SANSIO_DIR="$BUILD_DIR/sansio-lane"
rm -rf "$SANSIO_DIR"
mkdir -p "$SANSIO_DIR/committed"
"$BUILD_DIR/bench/exp_service" --smoke --seed=24145 --threads=2 \
    --json="$SANSIO_DIR/exp_service.json" > /dev/null
cp "$REPO_ROOT/BENCH_service.json" "$SANSIO_DIR/committed/"
"$BUILD_DIR/tools/bench_compare" "$SANSIO_DIR/committed" \
    "$SANSIO_DIR/committed"

step "simd slice (ctest -L simd), native dispatch + forced scalar"
# The PR-10 lane: randomized differential suite forcing every kernel
# family through each dispatch tier vs the scalar reference, plus the
# golden-transcript and digest pins. Run twice so the scalar fallback
# path is proven bit-identical on the same box that dispatches AVX2.
(cd "$BUILD_DIR" && ctest --output-on-failure -L simd -j "$JOBS")
(cd "$BUILD_DIR" &&
     SETINT_FORCE_SCALAR=1 ctest --output-on-failure -L simd -j "$JOBS")

step "incident replay round-trip (record -> replay, bit-for-bit)"
# Belt to replay_roundtrip's braces: drive the tools/replay CLI exactly as
# an operator would on a fresh incident dump.
REPLAY_DIR="$(mktemp -d)"
trap 'rm -rf "$REPLAY_DIR"' EXIT
DUMP="$("$BUILD_DIR/tools/replay" --record="$REPLAY_DIR/incident" \
    --scenario=integrity --seed=20260808)"
"$BUILD_DIR/tools/replay" "$DUMP"

if [[ -n "$FAST" ]]; then
  echo
  echo "[ci] --fast: skipping extended fuzz, bench smoke, determinism, TSan"
  echo "[ci] OK"
  exit 0
fi

step "extended fuzz (40k structure-aware inputs, fresh seed)"
"$BUILD_DIR/tests/fuzz/fuzz_driver" --iterations=40000 --seed=20260806 \
    --corpus="$REPO_ROOT/tests/fuzz/corpus"

step "bench pipeline at smoke size (safety gates live in the exit codes)"
# Into a scratch dir — the committed BENCH_*.json records at the repo root
# are full-size and only regenerated deliberately via tools/run_benches.sh.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$SMOKE_DIR-injected" "$REPLAY_DIR"' EXIT
for BIN in "$BUILD_DIR"/bench/exp_*; do
  [[ -x "$BIN" ]] || continue
  NAME="$(basename "$BIN")"
  echo "[ci] $NAME --smoke"
  "$BIN" --smoke --seed=24145 --json="$SMOKE_DIR/$NAME.json" > /dev/null
done

step "perf smoke: exp_cpu bit-identity gate + JSON emission"
# No timing thresholds — CI containers are 1-core and noisy. The gate is
# exp_cpu's exit code (golden-transcript bit identity, engine-vs-baseline
# checksums) plus the JSON record actually appearing.
"$BUILD_DIR/bench/exp_cpu" --smoke --seed=24145 \
    --json="$SMOKE_DIR/perf_smoke_cpu.json" > /dev/null
[[ -s "$SMOKE_DIR/perf_smoke_cpu.json" ]] || {
  echo "[ci] FAIL: exp_cpu produced no JSON record" >&2; exit 1; }

step "simd bench lane: forced-scalar exp_cpu vs native dispatch"
# The scalar-vs-SIMD trajectory gate: the same seed under
# SETINT_FORCE_SCALAR=1 must reproduce every deterministic cell of the
# native-dispatch record — transcript digests, engine checksums, bits,
# rounds. bench_compare skips wall_ms cells here by design (different
# dispatch tiers are timing-incomparable); the E-CPU.5 algo/tier columns
# legitimately differ and only warn (info class).
SETINT_FORCE_SCALAR=1 "$BUILD_DIR/bench/exp_cpu" --smoke --seed=24145 \
    --json="$SMOKE_DIR/perf_smoke_cpu_scalar.json" > /dev/null
"$BUILD_DIR/tools/bench_compare" "$SMOKE_DIR/perf_smoke_cpu.json" \
    "$SMOKE_DIR/perf_smoke_cpu_scalar.json"

step "simd sanitizer pass (ASan+UBSan over the intrinsics, -L simd)"
# Compress-stores write up to kIntersectPadding elements past the logical
# output; ASan proves the padding contract is honored, UBSan the pointer
# arithmetic in the gallop kernels. Reuses the build-sanitize/ tree.
tools/run_sanitized_tests.sh -L simd

step "telemetry overhead gate (exp_cpu --gate-overhead=50)"
# The recorder hook may cost at most 50% on the un-instrumented hot path
# at smoke size. Generous on purpose: a 1-core CI box is noisy and the
# point is catching an accidental O(n) in the hook, not a few percent.
"$BUILD_DIR/bench/exp_cpu" --smoke --seed=24145 --gate-overhead=50 \
    --json="$SMOKE_DIR/overhead_gate_cpu.json" > /dev/null

step "bench_compare: identity pass + injected-regression detection"
# Same records vs themselves must be clean; an injected +25% cost cell
# must flip the exit code — proves the trajectory gate can actually fail.
"$BUILD_DIR/tools/bench_compare" "$SMOKE_DIR" "$SMOKE_DIR"
"$BUILD_DIR/tools/bench_compare" --inject "$SMOKE_DIR" "$SMOKE_DIR-injected"
if "$BUILD_DIR/tools/bench_compare" "$SMOKE_DIR" "$SMOKE_DIR-injected" \
    > /dev/null; then
  echo "[ci] FAIL: bench_compare missed an injected cost regression" >&2
  exit 1
fi
rm -rf "$SMOKE_DIR-injected"

step "bench determinism contract"
tools/check_bench_determinism.sh build/bench/exp_rounds \
    build/bench/exp_faults build/bench/exp_adversary build/bench/exp_batch \
    build/bench/exp_chaos build/bench/exp_overload build/bench/exp_service

step "TSan lane: concurrency + statistical slices under ThreadSanitizer"
cmake --preset sanitize-thread > /dev/null
cmake --build --preset sanitize-thread -j "$JOBS" > /dev/null
(cd "$REPO_ROOT/build-tsan" &&
     ctest --output-on-failure -L "concurrency|statistical" -j "$JOBS")
# The sharded event loop with real threads: exp_service's S3 section runs
# the same fleet on 1/2/N scheduler shards and gates on bit-identical
# aggregates, so a data race in run_service shows up either as a TSan
# report or as a broken-invariance nonzero exit.
"$REPO_ROOT/build-tsan/bench/exp_service" --smoke --seed=24145 --threads=2 \
    --json="$REPO_ROOT/build-tsan/exp_service_tsan_t2.json" > /dev/null
"$REPO_ROOT/build-tsan/bench/exp_service" --smoke --seed=24145 --threads=8 \
    --json="$REPO_ROOT/build-tsan/exp_service_tsan_t8.json" > /dev/null

echo
echo "[ci] OK"
