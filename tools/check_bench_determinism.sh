#!/usr/bin/env bash
# Pins the bench determinism contract: two runs of the same binary with
# the same --seed must produce byte-identical BENCH JSON except lines
# mentioning wall_ms — the trailing wall_ms field (kept alone on its own
# line by bench_util.h) and any timing table column, whose names must
# contain "wall_ms" so this filter strips them.
#
# Usage: tools/check_bench_determinism.sh [<path-to-bench-binary>...]
# Default binaries: build/bench/exp_rounds, exp_faults and exp_adversary —
# exp_faults and exp_adversary additionally pin that the fault-injection
# and crafted-attack streams are reproducible from the seed alone (the
# BENCH_faults / BENCH_adversary contracts).
set -euo pipefail

cd "$(dirname "$0")/.."
BINS=("$@")
if [[ ${#BINS[@]} -eq 0 ]]; then
  BINS=(build/bench/exp_rounds build/bench/exp_faults build/bench/exp_adversary)
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for BIN in "${BINS[@]}"; do
  if [[ ! -x "$BIN" ]]; then
    cmake -B build -S . > /dev/null
    cmake --build build -j "$(nproc)" --target "$(basename "$BIN")" > /dev/null
  fi

  for run in a b; do
    "$BIN" --smoke --seed=42 --json="$TMP/$run.json" > /dev/null
    sed '/wall_ms/d' "$TMP/$run.json" > "$TMP/$run.filtered"
  done

  if ! cmp -s "$TMP/a.filtered" "$TMP/b.filtered"; then
    echo "FAIL: same-seed runs of $BIN differ beyond wall_ms:" >&2
    diff "$TMP/a.filtered" "$TMP/b.filtered" | head >&2
    exit 1
  fi
  echo "OK: $BIN is deterministic for a fixed seed (modulo wall_ms)"
done
