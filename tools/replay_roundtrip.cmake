# ctest driver for the incident-replay contract (docs/ROBUSTNESS.md):
# record a canned incident for each scenario, then replay its dump and
# require a bit-for-bit transcript-digest match (exit 0). Run with
#   cmake -DREPLAY=<bin> -DSCRATCH=<dir> -P replay_roundtrip.cmake
if(NOT REPLAY OR NOT SCRATCH)
  message(FATAL_ERROR "usage: cmake -DREPLAY=<bin> -DSCRATCH=<dir> -P replay_roundtrip.cmake")
endif()
file(MAKE_DIRECTORY ${SCRATCH})

foreach(scenario integrity crash partition degrade)
  execute_process(
    COMMAND ${REPLAY} --record=${SCRATCH}/${scenario} --scenario=${scenario}
            --seed=24145
    OUTPUT_VARIABLE dump_path
    OUTPUT_STRIP_TRAILING_WHITESPACE
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "record failed for scenario ${scenario} (rc=${rc})")
  endif()
  if(NOT EXISTS ${dump_path})
    message(FATAL_ERROR "scenario ${scenario}: dump ${dump_path} missing")
  endif()
  execute_process(
    COMMAND ${REPLAY} ${dump_path}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "replay diverged for scenario ${scenario} (rc=${rc})")
  endif()
endforeach()

# Negative test: a truncated dump (no meta line) must be rejected as
# unusable with exit 2, not reported as a clean match.
file(WRITE ${SCRATCH}/empty.jsonl "")
execute_process(COMMAND ${REPLAY} ${SCRATCH}/empty.jsonl RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "empty dump accepted (rc=${rc}, expected 2)")
endif()
message(STATUS "replay round-trip: all scenarios reproduced bit-for-bit")
