#!/usr/bin/env bash
# Regenerates every BENCH_<exp>.json perf-trajectory record at the repo
# root from a Release build with the pinned default seed.
#
# Usage: tools/run_benches.sh [--smoke] [--seed=<u64>] [--only=<exp,...>]
#
#   --smoke       tiny workloads (seconds instead of minutes)
#   --seed=N      override the pinned seed (default 24145 = 0x5e51)
#   --only=a,b    run only the named experiments (names without exp_)
#
# The records are deterministic for a fixed seed except the wall_ms field;
# tools/check_bench_determinism.sh pins that contract.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$PWD"
BUILD_DIR="$REPO_ROOT/build-bench"

SMOKE=""
SEED="--seed=24145"
ONLY=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE="--smoke" ;;
    --seed=*) SEED="$arg" ;;
    --only=*) ONLY="${arg#--only=}" ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

cmake --preset release-bench > /dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" > /dev/null

# Refuse to record BENCH JSON from anything but a Release build: committed
# perf-trajectory numbers (the CPU lane especially) must never mix
# optimization levels.
BUILD_TYPE="$(grep -E '^CMAKE_BUILD_TYPE:' "$BUILD_DIR/CMakeCache.txt" \
              | cut -d= -f2)"
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "run_benches: $BUILD_DIR is CMAKE_BUILD_TYPE=$BUILD_TYPE, not Release;" \
       "refusing to record BENCH JSON" >&2
  exit 1
fi

EXPERIMENTS=(tradeoff rounds zoo error multiparty_avg multiparty_worst
             applications intersection_size private_coin eqk internals
             ablation disj_tradeoff skew planner faults adversary batch cpu
             chaos overload service)

for exp in "${EXPERIMENTS[@]}"; do
  if [[ -n "$ONLY" && ",$ONLY," != *",$exp,"* ]]; then
    continue
  fi
  echo "[run_benches] exp_$exp"
  "$BUILD_DIR/bench/exp_$exp" $SMOKE "$SEED" \
      "--json=$REPO_ROOT/BENCH_$exp.json" > /dev/null
done
echo "[run_benches] wrote $(ls "$REPO_ROOT"/BENCH_*.json | wc -l) records"
