# ctest driver for bench_compare: self-compare must pass, and comparing
# against an --inject'ed copy must fail with exit code 1 (the comparator
# has to be able to go red to be a gate). Run as
#   cmake -DBENCH_COMPARE=... -DRECORD=... -DSCRATCH=... -P this_file
foreach(var BENCH_COMPARE RECORD SCRATCH)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${SCRATCH}")

execute_process(COMMAND "${BENCH_COMPARE}" "${RECORD}" "${RECORD}"
                RESULT_VARIABLE SELF_RC)
if(NOT SELF_RC EQUAL 0)
  message(FATAL_ERROR "self-compare of ${RECORD} failed (rc=${SELF_RC})")
endif()

execute_process(COMMAND "${BENCH_COMPARE}" --inject "${RECORD}"
                        "${SCRATCH}/injected.json"
                RESULT_VARIABLE INJECT_RC)
if(NOT INJECT_RC EQUAL 0)
  message(FATAL_ERROR "--inject failed (rc=${INJECT_RC})")
endif()

execute_process(COMMAND "${BENCH_COMPARE}" "${RECORD}" "${SCRATCH}/injected.json"
                RESULT_VARIABLE REGRESSION_RC)
if(NOT REGRESSION_RC EQUAL 1)
  message(FATAL_ERROR
          "comparator did not flag the injected cost regression "
          "(rc=${REGRESSION_RC}, expected 1)")
endif()
