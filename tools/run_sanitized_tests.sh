#!/usr/bin/env bash
# Builds with AddressSanitizer + UBSanitizer (-DSETINT_SANITIZE=ON, its own
# build-sanitize/ tree so the regular build stays untouched) and runs the
# full ctest suite under the sanitizers. The decoder-hardening and
# fault-injection tests exercise every adversarial decode path, so this is
# the memory-safety gate for the robustness layer (docs/ROBUSTNESS.md).
#
# Usage: tools/run_sanitized_tests.sh [ctest args...]
#   tools/run_sanitized_tests.sh                 # everything
#   tools/run_sanitized_tests.sh -L robustness   # just the robustness slice
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$PWD"
BUILD_DIR="$REPO_ROOT/build-sanitize"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DSETINT_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" > /dev/null

# halt_on_error keeps UBSan failures fatal even where the compiler default
# differs; detect_leaks stays on (default) for ASan.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)" "$@"
