// bench_compare — diff two BENCH_*.json records (or two directories of
// them) and fail on cost or identity regressions.
//
//   bench_compare OLD NEW [--tol=<pct>] [--perf-tol=<pct>]
//   bench_compare --inject SRC DST
//
// OLD/NEW are either two record files or two directories; in directory
// mode records pair up by basename, and a record that disappeared from NEW
// is itself a regression (lost coverage). Sections match by title, rows by
// index. Every cell is classified by its column name:
//
//   timing    name contains "wall_ms" — ignored unless --perf-tol is
//             given (clocks are excluded from the determinism contract;
//             see bench_util.h). Even with --perf-tol, timing cells are
//             only compared when both records carry the same
//             environment.cpu.dispatch_tier (schema v3): numbers measured
//             on different SIMD tiers are incomparable, so a tier change
//             downgrades the whole timing comparison to a note.
//   identity  digest / checksum / identical / identity / within /
//             verdict / exact / ok — must match byte-for-byte
//   quality   verified / speedup / slack — fails when NEW < OLD·(1-tol)
//   cost      bits / rounds / messages / attempts / violations /
//             unflagged / degraded / breaches / failures / retries /
//             total — fails when NEW > OLD·(1+tol)
//   info      everything else — printed when it changed, never fails
//
// --tol defaults to 0: records produced from the same seed are
// deterministic, so any cost increase is a real regression. On top of the
// table diff the tool fails when NEW's exit_code is non-zero, when NEW's
// notes.envelope_audit went red (all_within = false), and when a
// robustness family total (fault/adversary/retry/degraded/limit) grew.
// Environment-block differences are reported but informational — they
// explain a perf delta, they are not one.
//
// --inject copies SRC to DST, inflating the first cost-classified cell it
// finds by 25% + 1. That perturbed copy is how ci.sh proves the comparator
// actually fails on a cost regression (a comparator that cannot fail is
// not a gate).
//
// Exit codes: 0 = no regression, 1 = regression, 2 = usage error,
// unreadable/malformed input, or incomparable records (different
// experiment, seed or smoke flag).
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

namespace fs = std::filesystem;
using setint::obs::Json;

struct Options {
  std::string old_path;
  std::string new_path;
  double tol_pct = 0.0;        // cost/quality tolerance
  double perf_tol_pct = -1.0;  // timing tolerance; < 0 = skip timing cells
  bool inject = false;
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "bench_compare: %s\n", msg);
  std::fprintf(stderr,
               "usage: bench_compare OLD NEW [--tol=<pct>] [--perf-tol=<pct>]\n"
               "       bench_compare --inject SRC DST\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--inject") {
      o.inject = true;
    } else if (arg.rfind("--tol=", 0) == 0) {
      o.tol_pct = std::strtod(arg.c_str() + 6, nullptr);
    } else if (arg.rfind("--perf-tol=", 0) == 0) {
      o.perf_tol_pct = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      usage(("unknown flag: " + arg).c_str());
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) usage("expected exactly two paths");
  o.old_path = positional[0];
  o.new_path = positional[1];
  return o;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Column classification
// ---------------------------------------------------------------------------

enum class Class { kTiming, kIdentity, kQuality, kCost, kInfo };

bool contains_any(const std::string& name,
                  std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (name.find(n) != std::string::npos) return true;
  }
  return false;
}

Class classify(const std::string& column) {
  std::string name(column.size(), '\0');
  std::transform(column.begin(), column.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  // Timing first: bench_util.h requires every clock-derived cell to live
  // in a column whose name contains "wall_ms", so this test dominates
  // (e.g. "speedup (wall_ms ratio)" is timing, not quality).
  if (name.find("wall_ms") != std::string::npos) return Class::kTiming;
  if (contains_any(name, {"digest", "checksum", "identical", "identity",
                          "within", "verdict", "exact"}) ||
      name == "ok") {
    return Class::kIdentity;
  }
  if (contains_any(name, {"verified", "speedup", "slack"})) {
    return Class::kQuality;
  }
  if (contains_any(name, {"bits", "rounds", "messages", "attempts",
                          "violations", "unflagged", "degraded", "breaches",
                          "failures", "retries", "total"})) {
    return Class::kCost;
  }
  return Class::kInfo;
}

// ---------------------------------------------------------------------------
// Record comparison
// ---------------------------------------------------------------------------

struct Verdict {
  int regressions = 0;
  int warnings = 0;
  int cells_checked = 0;

  void fail(const std::string& record, const std::string& where,
            const std::string& what) {
    ++regressions;
    std::printf("[bench_compare] FAIL %s: %s: %s\n", record.c_str(),
                where.c_str(), what.c_str());
  }
  void warn(const std::string& record, const std::string& where,
            const std::string& what) {
    ++warnings;
    std::printf("[bench_compare] note %s: %s: %s\n", record.c_str(),
                where.c_str(), what.c_str());
  }
};

const Json* find_section(const Json& doc, const std::string& title) {
  const Json* sections = doc.find("sections");
  if (sections == nullptr) return nullptr;
  for (const Json& s : sections->array_items()) {
    const Json* t = s.find("title");
    if (t != nullptr && t->is_string() && t->as_string() == title) return &s;
  }
  return nullptr;
}

void compare_cell(Verdict& v, const std::string& record,
                  const std::string& where, const std::string& column,
                  const Json& oldc, const Json& newc, const Options& opts) {
  Class cls = classify(column);
  if (cls == Class::kTiming) {
    if (opts.perf_tol_pct < 0.0) return;  // clocks excluded by default
    cls = Class::kCost;                   // opt-in: compare with perf-tol
  }
  const double tol =
      (classify(column) == Class::kTiming ? opts.perf_tol_pct : opts.tol_pct) /
      100.0;
  ++v.cells_checked;
  const double oldn = oldc.number_or(NAN);
  const double newn = newc.number_or(NAN);
  const bool numeric = !std::isnan(oldn) && !std::isnan(newn);
  switch (cls) {
    case Class::kIdentity:
      if (oldc.dump() != newc.dump()) {
        v.fail(record, where,
               "identity column \"" + column + "\" changed: " + oldc.dump() +
                   " -> " + newc.dump());
      }
      break;
    case Class::kQuality:
      if (numeric && newn < oldn * (1.0 - tol)) {
        v.fail(record, where,
               "quality column \"" + column + "\" dropped: " + oldc.dump() +
                   " -> " + newc.dump());
      } else if (!numeric && oldc.dump() != newc.dump()) {
        v.fail(record, where,
               "quality column \"" + column + "\" changed: " + oldc.dump() +
                   " -> " + newc.dump());
      }
      break;
    case Class::kCost:
      if (numeric && newn > oldn * (1.0 + tol)) {
        char pct[48];
        std::snprintf(pct, sizeof(pct), "%+.1f%%",
                      oldn > 0 ? (newn / oldn - 1.0) * 100.0 : INFINITY);
        v.fail(record, where,
               "cost column \"" + column + "\" grew " + pct + ": " +
                   oldc.dump() + " -> " + newc.dump());
      }
      break;
    case Class::kInfo:
      if (oldc.dump() != newc.dump()) {
        v.warn(record, where,
               "\"" + column + "\": " + oldc.dump() + " -> " + newc.dump());
      }
      break;
    case Class::kTiming:
      break;  // unreachable (rewritten to kCost above)
  }
}

void compare_sections(Verdict& v, const std::string& record, const Json& olddoc,
                      const Json& newdoc, const Options& opts) {
  const Json* old_sections = olddoc.find("sections");
  if (old_sections == nullptr) return;
  for (const Json& olds : old_sections->array_items()) {
    const Json* title = olds.find("title");
    if (title == nullptr || !title->is_string()) continue;
    const Json* news = find_section(newdoc, title->as_string());
    if (news == nullptr) {
      v.fail(record, title->as_string(), "section missing from new record");
      continue;
    }
    const Json* old_rows_j = olds.find("rows");
    const Json* new_rows_j = news->find("rows");
    if (old_rows_j == nullptr || new_rows_j == nullptr) continue;
    const auto& old_rows = old_rows_j->array_items();
    const auto& new_rows = new_rows_j->array_items();
    if (old_rows.size() != new_rows.size()) {
      v.warn(record, title->as_string(),
             "row count changed (" + std::to_string(old_rows.size()) + " -> " +
                 std::to_string(new_rows.size()) + "); comparing common prefix");
    }
    const std::size_t n = std::min(old_rows.size(), new_rows.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto& old_cells = old_rows[i].object_items();
      const std::string where =
          title->as_string() + " row " + std::to_string(i);
      // Label drift (first column, usually the sweep key) means the rows
      // no longer describe the same workload — skip, don't compare apples
      // to oranges.
      if (!old_cells.empty()) {
        const Json* newc = new_rows[i].find(old_cells.front().first);
        if (newc == nullptr ||
            old_cells.front().second.dump() != newc->dump()) {
          if (classify(old_cells.front().first) == Class::kInfo) {
            v.warn(record, where, "row label changed; skipping row");
            continue;
          }
        }
      }
      for (const auto& [column, oldc] : old_cells) {
        const Json* newc = new_rows[i].find(column);
        if (newc == nullptr) {
          v.warn(record, where, "column \"" + column + "\" missing from new");
          continue;
        }
        compare_cell(v, record, where, column, oldc, *newc, opts);
      }
    }
  }
}

void compare_robustness(Verdict& v, const std::string& record,
                        const Json& olddoc, const Json& newdoc,
                        const Options& opts) {
  const Json* oldr = olddoc.find("robustness");
  const Json* newr = newdoc.find("robustness");
  if (oldr == nullptr || newr == nullptr) return;  // v1 record: no block
  const double tol = opts.tol_pct / 100.0;
  for (const auto& [family, oldblock] : oldr->object_items()) {
    const Json* newblock = newr->find(family);
    if (newblock == nullptr) continue;
    const double oldt = oldblock.find("total")
                            ? oldblock.find("total")->number_or(0)
                            : 0;
    const double newt = newblock->find("total")
                            ? newblock->find("total")->number_or(0)
                            : 0;
    if (newt > oldt * (1.0 + tol)) {
      v.fail(record, "robustness." + family,
             "family total grew: " + std::to_string(oldt) + " -> " +
                 std::to_string(newt));
    }
  }
}

void compare_envelope(Verdict& v, const std::string& record,
                      const Json& olddoc, const Json& newdoc) {
  const Json* oldn = olddoc.find("notes");
  const Json* newn = newdoc.find("notes");
  const Json* olda = oldn != nullptr ? oldn->find("envelope_audit") : nullptr;
  const Json* newa = newn != nullptr ? newn->find("envelope_audit") : nullptr;
  if (olda != nullptr && newa == nullptr) {
    v.warn(record, "notes.envelope_audit", "audit disappeared from new record");
    return;
  }
  if (newa == nullptr) return;
  const Json* within = newa->find("all_within");
  if (within != nullptr && !within->as_bool()) {
    v.fail(record, "notes.envelope_audit",
           "theory-conformance envelope violated (all_within = false)");
  }
}

// Compares one OLD/NEW record pair. Returns 2 (propagated by the caller)
// when the pair is incomparable, 0 otherwise; regressions accumulate in v.
int compare_records(Verdict& v, const std::string& record, const Json& olddoc,
                    const Json& newdoc, const Options& opts) {
  for (const char* key : {"experiment", "seed", "smoke"}) {
    const Json* o = olddoc.find(key);
    const Json* n = newdoc.find(key);
    const std::string od = o != nullptr ? o->dump() : "<absent>";
    const std::string nd = n != nullptr ? n->dump() : "<absent>";
    if (od != nd) {
      std::fprintf(stderr,
                   "[bench_compare] %s: incomparable records: %s %s vs %s\n",
                   record.c_str(), key, od.c_str(), nd.c_str());
      return 2;
    }
  }
  const Json* old_exit = olddoc.find("exit_code");
  const Json* new_exit = newdoc.find("exit_code");
  if (old_exit != nullptr && old_exit->number_or(0) != 0) {
    v.warn(record, "exit_code", "baseline record was already failing");
  }
  if (new_exit != nullptr && new_exit->number_or(0) != 0) {
    v.fail(record, "exit_code",
           "new record exited non-zero (" + new_exit->dump() + ")");
  }
  // Environment drift is context, not a verdict: a changed box or compiler
  // explains a perf delta but the cost columns above are seed-deterministic
  // and still comparable.
  const Json* olde = olddoc.find("environment");
  const Json* newe = newdoc.find("environment");
  if (olde != nullptr && newe != nullptr) {
    for (const auto& [key, oldval] : olde->object_items()) {
      const Json* newval = newe->find(key);
      if (newval != nullptr && oldval.dump() != newval->dump()) {
        v.warn(record, "environment." + key,
               oldval.dump() + " -> " + newval->dump());
      }
    }
  }
  // Timing cells are only meaningful between runs on the same SIMD
  // dispatch tier: an AVX2 box vs a scalar box differ by design, not by
  // regression. A tier mismatch (or a v2 record without the cpu block)
  // turns --perf-tol off for this pair and leaves a note.
  Options eff = opts;
  if (opts.perf_tol_pct >= 0.0 && olde != nullptr && newe != nullptr) {
    auto tier_of = [](const Json* env) -> std::string {
      const Json* cpu = env->find("cpu");
      const Json* tier = cpu != nullptr ? cpu->find("dispatch_tier") : nullptr;
      return tier != nullptr ? tier->dump() : "<absent>";
    };
    const std::string old_tier = tier_of(olde);
    const std::string new_tier = tier_of(newe);
    if (old_tier != new_tier) {
      v.warn(record, "environment.cpu.dispatch_tier",
             "timing incomparable across SIMD tiers (" + old_tier + " -> " +
                 new_tier + "); skipping wall_ms cells despite --perf-tol");
      eff.perf_tol_pct = -1.0;
    }
  }
  compare_sections(v, record, olddoc, newdoc, eff);
  compare_robustness(v, record, olddoc, newdoc, eff);
  compare_envelope(v, record, olddoc, newdoc);
  return 0;
}

// ---------------------------------------------------------------------------
// --inject: write a copy of SRC with one cost cell inflated.
// ---------------------------------------------------------------------------

// The Json model is write-once (const iteration, operator[] insert), so
// injection re-builds the mutated parts instead of editing in place:
// the first cost-classified numeric cell gets +25% + 1.
Json inject_copy(const Json& doc, bool& injected) {
  Json out = Json::object();
  for (const auto& [key, value] : doc.object_items()) {
    if (key != "sections" || injected) {
      out[key] = value;
      continue;
    }
    Json sections = Json::array();
    for (const Json& section : value.array_items()) {
      if (injected) {
        sections.push_back(section);
        continue;
      }
      Json news = Json::object();
      for (const auto& [skey, sval] : section.object_items()) {
        if (skey != "rows" || injected) {
          news[skey] = sval;
          continue;
        }
        Json rows = Json::array();
        for (const Json& row : sval.array_items()) {
          if (injected) {
            rows.push_back(row);
            continue;
          }
          Json newrow = Json::object();
          for (const auto& [column, cell] : row.object_items()) {
            const double n = cell.number_or(NAN);
            if (!injected && classify(column) == Class::kCost &&
                !std::isnan(n)) {
              newrow[column] =
                  static_cast<std::uint64_t>(std::llround(n * 1.25) + 1);
              injected = true;
              std::printf("[bench_compare] injected +25%% into \"%s\"\n",
                          column.c_str());
            } else {
              newrow[column] = cell;
            }
          }
          rows.push_back(std::move(newrow));
        }
        news[skey] = std::move(rows);
      }
      sections.push_back(std::move(news));
    }
    out[key] = std::move(sections);
  }
  return out;
}

void write_text(const std::string& path, const std::string& contents) {
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf || !(outf << contents)) {
    throw std::runtime_error("cannot write " + path);
  }
}

int run_inject(const Options& opts) {
  std::vector<std::pair<std::string, std::string>> files;
  if (fs::is_directory(opts.old_path)) {
    fs::create_directories(opts.new_path);
    for (const auto& entry : fs::directory_iterator(opts.old_path)) {
      if (entry.path().extension() != ".json") continue;
      files.emplace_back(entry.path().string(),
                         (fs::path(opts.new_path) / entry.path().filename())
                             .string());
    }
    std::sort(files.begin(), files.end());
  } else {
    files.emplace_back(opts.old_path, opts.new_path);
  }
  if (files.empty()) usage("--inject: no .json records in SRC");
  bool injected_any = false;
  for (const auto& [src, dst] : files) {
    const Json doc = Json::parse(read_file(src));
    bool injected = false;
    const Json copy = inject_copy(doc, injected);
    injected_any = injected_any || injected;
    write_text(dst, copy.dump(2));
  }
  if (!injected_any) {
    std::fprintf(stderr,
                 "[bench_compare] --inject: no cost-classified numeric cell "
                 "found in SRC\n");
    return 2;
  }
  return 0;
}

// ---------------------------------------------------------------------------

int run_compare(const Options& opts) {
  std::vector<std::pair<std::string, std::string>> pairs;  // (record, oldpath)
  const bool old_dir = fs::is_directory(opts.old_path);
  const bool new_dir = fs::is_directory(opts.new_path);
  if (old_dir != new_dir) usage("OLD and NEW must both be files or both dirs");

  Verdict v;
  if (old_dir) {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(opts.old_path)) {
      if (entry.path().extension() == ".json") {
        names.push_back(entry.path().filename().string());
      }
    }
    std::sort(names.begin(), names.end());
    if (names.empty()) usage("no .json records in OLD directory");
    for (const std::string& name : names) {
      pairs.emplace_back(name, name);
    }
    for (const auto& entry : fs::directory_iterator(opts.new_path)) {
      if (entry.path().extension() != ".json") continue;
      const std::string name = entry.path().filename().string();
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        v.warn(name, "directory", "record only present in NEW (new coverage)");
      }
    }
  } else {
    pairs.emplace_back(fs::path(opts.new_path).filename().string(), "");
  }

  for (const auto& [record, name] : pairs) {
    const std::string oldp =
        old_dir ? (fs::path(opts.old_path) / name).string() : opts.old_path;
    const std::string newp =
        old_dir ? (fs::path(opts.new_path) / name).string() : opts.new_path;
    if (old_dir && !fs::exists(newp)) {
      v.fail(record, "directory", "record missing from NEW (lost coverage)");
      continue;
    }
    Json olddoc, newdoc;
    try {
      olddoc = Json::parse(read_file(oldp));
      newdoc = Json::parse(read_file(newp));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench_compare] %s\n", e.what());
      return 2;
    }
    const int rc = compare_records(v, record, olddoc, newdoc, opts);
    if (rc != 0) return rc;
  }

  std::printf(
      "[bench_compare] %zu record(s), %d cell(s) checked, %d regression(s), "
      "%d note(s)\n",
      pairs.size(), v.cells_checked, v.regressions, v.warnings);
  return v.regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  try {
    return opts.inject ? run_inject(opts) : run_compare(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench_compare] %s\n", e.what());
    return 2;
  }
}
