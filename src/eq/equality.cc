#include "eq/equality.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hashing/mask_hash.h"

namespace setint::eq {

std::size_t bits_for_failure(double target_failure) {
  if (!(target_failure > 0.0) || target_failure >= 1.0) {
    return 1;
  }
  const double b = std::ceil(std::log2(1.0 / target_failure));
  return b < 1.0 ? 1 : static_cast<std::size_t>(b);
}

bool equality_test(sim::Channel& channel, const sim::SharedRandomness& shared,
                   std::uint64_t nonce, const util::BitBuffer& xa,
                   const util::BitBuffer& xb, std::size_t bits) {
  std::vector<util::BitBuffer> va(1);
  std::vector<util::BitBuffer> vb(1);
  va[0].append_buffer(xa);
  vb[0].append_buffer(xb);
  return batch_equality_test(channel, shared, nonce, va, vb, bits)[0];
}

std::vector<bool> batch_equality_test(sim::Channel& channel,
                                      const sim::SharedRandomness& shared,
                                      std::uint64_t nonce,
                                      std::span<const util::BitBuffer> xa,
                                      std::span<const util::BitBuffer> xb,
                                      std::size_t bits) {
  if (xa.size() != xb.size()) {
    throw std::invalid_argument("batch_equality_test: size mismatch");
  }
  if (bits == 0) throw std::invalid_argument("batch_equality_test: 0 bits");
  const std::size_t n = xa.size();
  if (n == 0) return {};

  // Alice -> Bob: concatenated hashes, one per instance.
  util::BitBuffer alice_msg;
  alice_msg.reserve_bits(n * bits);
  for (std::size_t i = 0; i < n; ++i) {
    hashing::mask_hash_wide(xa[i], bits, shared.stream("eq", nonce, i),
                            alice_msg);
  }
  const util::BitBuffer delivered =
      channel.send(sim::PartyId::kAlice, std::move(alice_msg), "eq-hashes");

  // Bob compares against his own hashes and replies the verdict bitmap.
  util::BitReader reader = channel.reader(delivered);
  // All n instances at `bits` hash bits each must be present up front — a
  // short (truncated or crafted) frame is rejected by name here instead
  // of failing bit-by-bit mid-comparison.
  reader.expect_at_least(n, bits, "eq hashes");
  util::BitBuffer verdicts;
  std::vector<bool> result(n);
  // One pooled scratch buffer for all n expected-hash encodes: cleared
  // per instance, word storage reused across instances AND across calls
  // within the session (the channel owns the pool).
  util::PooledBuffer expected(channel.buffer_pool());
  for (std::size_t i = 0; i < n; ++i) {
    expected->clear();
    hashing::mask_hash_wide(xb[i], bits, shared.stream("eq", nonce, i),
                            *expected);
    // Word-chunked comparison: same bits consumed from `reader` as the old
    // bit-by-bit loop, 64 at a time.
    bool match = true;
    util::BitReader er(*expected);
    for (std::size_t b = 0; b < bits; b += 64) {
      const unsigned chunk =
          static_cast<unsigned>(std::min<std::size_t>(64, bits - b));
      if (reader.read_bits(chunk) != er.read_bits(chunk)) match = false;
    }
    result[i] = match;
    verdicts.append_bit(match);
  }
  const util::BitBuffer verdicts_delivered =
      channel.send(sim::PartyId::kBob, std::move(verdicts), "eq-verdicts");

  // Alice decodes the same verdicts; both parties now agree on `result`.
  util::BitReader vr = channel.reader(verdicts_delivered);
  vr.expect_at_least(n, 1, "eq verdicts");
  for (std::size_t i = 0; i < n; ++i) {
    const bool v = vr.read_bit();
    if (v != result[i]) throw std::logic_error("equality verdict mismatch");
  }
  return result;
}

}  // namespace setint::eq
