// The equality test of Fact 3.5 and its batched form.
//
// Shared-randomness protocol for EQ on arbitrary bit strings:
//   * x == y  ->  both output "equal" with probability 1 (one-sided);
//   * x != y  ->  both output "not equal" with probability >= 1 - 2^-b.
// Cost: b hash bits Alice -> Bob plus a 1-bit verdict Bob -> Alice; two
// rounds. The batched variant tests many instances at once in the same two
// rounds — this is what lets every stage of the verification-tree protocol
// run all of its equality tests "in parallel" (Theorem 3.6's round count).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"

namespace setint::eq {

// Single equality test with `bits` hash bits (error 2^-bits). `nonce`
// must be fresh per invocation so repeated tests use fresh randomness.
bool equality_test(sim::Channel& channel, const sim::SharedRandomness& shared,
                   std::uint64_t nonce, const util::BitBuffer& xa,
                   const util::BitBuffer& xb, std::size_t bits);

// Batched: instance i compares xa[i] (Alice's side) against xb[i] (Bob's).
// Returns the per-instance verdicts (true = declared equal), known to both
// parties. Two rounds total regardless of the number of instances:
// Alice sends all hashes, Bob replies the verdict bitmap.
std::vector<bool> batch_equality_test(sim::Channel& channel,
                                      const sim::SharedRandomness& shared,
                                      std::uint64_t nonce,
                                      std::span<const util::BitBuffer> xa,
                                      std::span<const util::BitBuffer> xb,
                                      std::size_t bits);

// Hash width needed for failure probability <= `target_failure` (Fact 3.5:
// b = ceil(log2(1/target_failure))), clamped to at least 1 bit.
std::size_t bits_for_failure(double target_failure);

}  // namespace setint::eq
