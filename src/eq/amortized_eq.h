// Amortized equality: EQ^K with O(K) expected total communication.
//
// Stand-in for the Feder-Kushilevitz-Naor-Nisan protocol the paper cites
// as Theorem 3.2 (see DESIGN.md section 3 for the substitution argument).
// Construction: a binary merge tree over the K instances. At level j the
// surviving instances are grouped into blocks of ~2^j; each block's
// concatenated contents are compared with a beta_j = Theta(2^(j/2))-bit
// mask hash. A mismatching block certainly contains an unequal instance
// and is binary-searched down; a singleton mismatch resolves that instance
// as "not equal" (exactly, one-sided). Blocks that pass are merged
// pairwise and move up a level.
//
// Guarantees (matching or beating Theorem 3.2):
//   * communication: sum_j (K / 2^j) * beta_j = O(K) expected;
//   * error: an unequal instance is declared equal only if it passes
//     sum_j beta_j = Omega(sqrt(K)) independent hash bits -> 2^-Omega(sqrt K);
//   * equal instances are never declared unequal (one-sided);
//   * rounds: O(log^2 K) worst case, within the theorem's O(sqrt K).
#pragma once

#include <cstdint>
#include <vector>

#include "core/checkpoint.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"

namespace setint::eq {

struct AmortizedEqStats {
  std::uint64_t levels = 0;
  std::uint64_t split_tests = 0;  // extra hash tests spent isolating culprits
};

// Instance i compares xs[i] (Alice) with ys[i] (Bob). Returns per-instance
// verdicts known to both parties; fills *stats if non-null. With a
// Checkpoint installed (tag "amortized_eq"), a snapshot of the resolved
// verdicts and surviving groups is saved after every completed level, and
// a crashed session resumes at the first unfinished level — each level
// draws from an independent nonce substream, so the resumed transcript is
// bit-identical to an uninterrupted one.
std::vector<bool> amortized_equality(sim::Channel& channel,
                                     const sim::SharedRandomness& shared,
                                     std::uint64_t nonce,
                                     const std::vector<util::BitBuffer>& xs,
                                     const std::vector<util::BitBuffer>& ys,
                                     AmortizedEqStats* stats = nullptr,
                                     core::Checkpoint* ckpt = nullptr);

}  // namespace setint::eq
