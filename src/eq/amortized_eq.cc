#include "eq/amortized_eq.h"

#include <cmath>
#include <stdexcept>

#include "eq/equality.h"
#include "obs/tracer.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint::eq {

namespace {

using Group = std::vector<std::size_t>;

// Self-delimiting concatenation of one side's contents for a group:
// gamma(length) + payload per item, so distinct item tuples encode
// distinctly. Appends into a caller-owned buffer so word storage is
// reused across tests.
void group_content(const Group& group,
                   const std::vector<util::BitBuffer>& side,
                   util::BitBuffer& out) {
  out.clear();
  for (std::size_t idx : group) {
    out.append_gamma64(side[idx].size_bits());
    out.append_buffer(side[idx]);
  }
}

// Content-encode scratch shared by every test_groups call in one
// amortized_equality run: the level-0 test has the most groups, so later
// (smaller) batches reuse its buffers' word storage instead of
// re-allocating per call.
struct ContentScratch {
  std::vector<util::BitBuffer> a;
  std::vector<util::BitBuffer> b;
};

// One batched hash comparison over `groups` with `bits` bits per group.
// Two rounds. Returns per-group pass flags.
std::vector<bool> test_groups(sim::Channel& channel,
                              const sim::SharedRandomness& shared,
                              std::uint64_t batch_nonce,
                              const std::vector<Group>& groups,
                              const std::vector<util::BitBuffer>& xs,
                              const std::vector<util::BitBuffer>& ys,
                              std::size_t bits, ContentScratch& scratch) {
  if (scratch.a.size() < groups.size()) {
    scratch.a.resize(groups.size());
    scratch.b.resize(groups.size());
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_content(groups[g], xs, scratch.a[g]);
    group_content(groups[g], ys, scratch.b[g]);
  }
  return batch_equality_test(
      channel, shared, batch_nonce,
      std::span<const util::BitBuffer>(scratch.a.data(), groups.size()),
      std::span<const util::BitBuffer>(scratch.b.data(), groups.size()), bits);
}

}  // namespace

std::vector<bool> amortized_equality(sim::Channel& channel,
                                     const sim::SharedRandomness& shared,
                                     std::uint64_t nonce,
                                     const std::vector<util::BitBuffer>& xs,
                                     const std::vector<util::BitBuffer>& ys,
                                     AmortizedEqStats* stats,
                                     core::Checkpoint* ckpt) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("amortized_equality: size mismatch");
  }
  const std::size_t k = xs.size();
  std::vector<bool> equal(k, true);  // overwritten for resolved-unequal items
  if (k == 0) return equal;

  std::vector<Group> groups;
  unsigned start_level = 0;
  if (ckpt != nullptr && ckpt->has("amortized_eq")) {
    // Crash resume: resolved verdicts and surviving groups come out of the
    // snapshot; the protocol continues at the first unfinished level.
    util::BitReader rd(ckpt->state());
    const std::uint64_t saved_k = rd.read_gamma64();
    if (saved_k != k) {
      throw std::logic_error("amortized_equality: checkpoint instance count "
                             "mismatch");
    }
    for (std::size_t i = 0; i < k; ++i) equal[i] = rd.read_bit();
    const std::uint64_t ngroups = rd.read_gamma64();
    groups.reserve(ngroups);
    for (std::uint64_t g = 0; g < ngroups; ++g) {
      Group group(rd.read_gamma64());
      for (std::size_t& idx : group) {
        idx = static_cast<std::size_t>(rd.read_gamma64());
      }
      groups.push_back(std::move(group));
    }
    start_level = static_cast<unsigned>(ckpt->phase());
    ckpt->note_restore();
  } else {
    groups.reserve(k);
    for (std::size_t i = 0; i < k; ++i) groups.push_back(Group{i});
  }

  const unsigned max_level = k >= 2 ? util::ceil_log2(k) : 0;
  ContentScratch scratch;
  AmortizedEqStats local_stats;
  obs::Tracer* tracer = channel.tracer();
  obs::Span protocol_span(tracer, "amortized_eq");
  obs::count(tracer, "eq.amortized_instances", k);

  for (unsigned level = start_level; level <= max_level + 16; ++level) {
    obs::Span level_span(tracer, "level=" + std::to_string(level));
    const auto beta = static_cast<std::size_t>(
        std::max(1.0, std::round(std::pow(2.0, level / 2.0))));
    obs::observe(tracer, "eq.mask_bits", beta);
    std::uint64_t batch = 0;
    const auto batch_nonce = [&](std::uint64_t b) {
      return util::mix64(nonce, util::mix64(level, b));
    };

    const std::vector<bool> pass = test_groups(
        channel, shared, batch_nonce(batch++), groups, xs, ys, beta, scratch);

    std::vector<Group> survivors;
    std::vector<Group> pending;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      (pass[g] ? survivors : pending).push_back(std::move(groups[g]));
    }

    // Binary-search the failed groups down to the unequal culprits. Each
    // BFS wave is one more batched test (two rounds); all failed groups
    // advance together so round cost stays O(level) per level.
    while (!pending.empty()) {
      std::vector<Group> halves;
      for (Group& g : pending) {
        if (g.size() == 1) {
          // The mismatching hash already certifies inequality (one-sided).
          equal[g[0]] = false;
          continue;
        }
        const std::size_t mid = g.size() / 2;
        halves.emplace_back(g.begin(), g.begin() + mid);
        halves.emplace_back(g.begin() + mid, g.end());
      }
      if (halves.empty()) break;
      local_stats.split_tests += halves.size();
      obs::count(tracer, "eq.split_tests", halves.size());
      obs::Span split_span(tracer, "binary_search");
      const std::vector<bool> half_pass =
          test_groups(channel, shared, batch_nonce(batch++), halves, xs, ys,
                      beta, scratch);
      pending.clear();
      for (std::size_t h = 0; h < halves.size(); ++h) {
        (half_pass[h] ? survivors : pending).push_back(std::move(halves[h]));
      }
    }

    groups = std::move(survivors);
    local_stats.levels = level + 1;
    if (groups.empty()) break;
    if (level >= max_level && groups.size() <= 1) break;

    // Merge adjacent survivors pairwise for the next level.
    std::vector<Group> merged;
    merged.reserve((groups.size() + 1) / 2);
    for (std::size_t g = 0; g + 1 < groups.size(); g += 2) {
      Group m = std::move(groups[g]);
      m.insert(m.end(), groups[g + 1].begin(), groups[g + 1].end());
      merged.push_back(std::move(m));
    }
    if (groups.size() % 2 == 1) merged.push_back(std::move(groups.back()));
    groups = std::move(merged);

    // Phase boundary: level complete, both parties agree on the verdicts
    // so far and the merged survivor groups. (Not reached when the run
    // finished above, so a restored snapshot always has live groups.)
    if (ckpt != nullptr) {
      util::BitBuffer blob;
      blob.append_gamma64(k);
      for (std::size_t i = 0; i < k; ++i) blob.append_bit(equal[i]);
      blob.append_gamma64(groups.size());
      for (const Group& g : groups) {
        blob.append_gamma64(g.size());
        for (std::size_t idx : g) blob.append_gamma64(idx);
      }
      ckpt->save("amortized_eq", level + 1, std::move(blob),
                 channel.cost().bits_total);
    }
  }

  obs::observe(tracer, "eq.levels", local_stats.levels);
  if (stats != nullptr) *stats = local_stats;
  return equal;
}

}  // namespace setint::eq
