// Hierarchical phase attribution for protocol runs.
//
// A Tracer maintains a stack of labeled phases ("spans"); every bit,
// message and round metered by sim::Channel / sim::Network while a span is
// the innermost open one is attributed to that span's node in a phase
// tree. Protocols open spans RAII-style:
//
//   obs::Span stage(channel.tracer(), "level=2");
//   obs::Span eq(channel.tracer(), "equality");   // nested
//
// yielding paths such as
// `verification_tree/level=2/basic_intersection/hash_exchange`. A node's
// total cost is its own plus its descendants', so sibling totals sum to
// the parent total whenever all traffic happens inside child spans — the
// invariant the observability tests pin.
//
// Null tracers are free: Span and the channel hook both test one pointer
// and do nothing else, so un-traced runs pay a single predictable branch
// per send.
//
// The tracer also owns a MetricsRegistry (obs/metrics.h) so protocols can
// publish scalar internals ("vt.bi_runs", "bucket_eq.instances", ...)
// through the same plumbing: obs::count() / obs::observe() below no-op on
// a null tracer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/transcript.h"

namespace setint::obs {

struct PhaseNode {
  std::string label;
  // Cost of traffic metered while this node was the innermost open span
  // (excludes descendants).
  std::uint64_t self_bits = 0;
  std::uint64_t self_messages = 0;
  std::uint64_t self_rounds = 0;
  std::uint64_t enters = 0;  // times a span with this label was opened here
  std::vector<std::unique_ptr<PhaseNode>> children;

  std::uint64_t total_bits() const;
  std::uint64_t total_messages() const;
  std::uint64_t total_rounds() const;

  // Child with the given label, or nullptr.
  const PhaseNode* child(std::string_view label) const;
};

// One row of the flattened (pre-order) phase breakdown.
struct PhaseRow {
  std::string path;  // '/'-joined labels from the root span down
  int depth = 0;
  std::uint64_t bits = 0;       // total: self + descendants
  std::uint64_t self_bits = 0;  // excludes descendants
  std::uint64_t messages = 0;   // total
  std::uint64_t rounds = 0;     // total
  std::uint64_t enters = 0;
};

// Timeline event, recorded only when the tracer is constructed with
// record_events = true (exported to Chrome trace format by obs/export.h).
// Timestamps are cumulative transmitted bits, the simulator's clock.
struct TraceEvent {
  enum class Kind { kSpanBegin, kSpanEnd, kMessage };
  Kind kind;
  std::string label;          // span label or message label
  std::uint64_t bit_offset;   // total bits transmitted before this event
  std::uint64_t bits = 0;     // message payload size (kMessage only)
  int party = -1;             // sim::index(from) for kMessage, -1 for spans
};

class Tracer {
 public:
  explicit Tracer(bool record_events = false)
      : record_events_(record_events) {
    root_.label = "root";
    root_.enters = 1;
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Span control — prefer the RAII Span wrapper below. Re-entering a label
  // that already exists under the current node accumulates into the same
  // child (phases merge by label; the event log keeps individual entries).
  void push(std::string_view label);
  void pop();
  int depth() const { return static_cast<int>(stack_.size()) - 1; }

  // Metering hook called by sim::Channel / sim::Network per delivered
  // message. `new_round` marks a direction change (a round boundary).
  void on_message(sim::PartyId from, std::uint64_t bits, bool new_round,
                  std::string_view label = {});

  // Aggregate billing hook (sim::Network): attributes a completed
  // sub-protocol's whole cost to the current span in one step. No timeline
  // event is recorded — per-message structure lives on the sub-protocol's
  // own channel.
  void on_cost(const sim::CostStats& cost);

  const PhaseNode& root() const { return root_; }
  std::uint64_t total_bits() const { return bit_clock_; }

  std::vector<PhaseRow> breakdown() const;

  // Breakdown as a JSON array of row objects (schema in
  // docs/OBSERVABILITY.md).
  Json BreakdownJson() const;

  bool recording_events() const { return record_events_; }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  PhaseNode root_;
  std::vector<PhaseNode*> stack_{&root_};
  MetricsRegistry metrics_;
  std::uint64_t bit_clock_ = 0;  // total bits metered so far
  bool record_events_;
  std::vector<TraceEvent> events_;
};

// RAII span. Safe to construct with a null tracer (does nothing).
class Span {
 public:
  Span(Tracer* tracer, std::string_view label) : tracer_(tracer) {
    if (tracer_ != nullptr) tracer_->push(label);
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Close the span before scope exit (for phases that end mid-function).
  // Idempotent.
  void end() {
    if (tracer_ != nullptr) tracer_->pop();
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
};

// Null-safe metric helpers: protocols call these unconditionally; with no
// tracer installed they cost one branch.
inline void count(Tracer* tracer, std::string_view name,
                  std::uint64_t delta = 1) {
  if (tracer != nullptr) tracer->metrics().counter(name).add(delta);
}

inline void observe(Tracer* tracer, std::string_view name,
                    std::uint64_t value) {
  if (tracer != nullptr) tracer->metrics().histogram(name).observe(value);
}

// Cost summary + phase breakdown + metrics for one protocol run — what the
// facade hands back when a tracer is installed.
struct RunReport {
  sim::CostStats cost;
  std::vector<PhaseRow> phases;
  Json metrics;  // MetricsRegistry::ToJson() snapshot
  // Theory-conformance audit of this run against the protocol's cost
  // envelope (obs/envelope.h, audit_single_run). Null — and absent from
  // ToJson(), keeping pre-envelope dumps byte-stable — when the run was
  // degraded, faulted, or otherwise outside the clean-protocol model.
  Json envelope;

  Json ToJson() const;
};

RunReport make_run_report(const sim::CostStats& cost, const Tracer& tracer);

}  // namespace setint::obs
