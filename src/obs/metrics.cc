#include "obs/metrics.h"

#include <bit>

namespace setint::obs {

int Histogram::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}

void Histogram::observe(std::uint64_t value) {
  buckets_[bucket_of(value)] += 1;
  count_ += 1;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).merge(c);
  for (const auto& [name, h] : other.histograms_) histogram(name).merge(h);
  for (const auto& [name, h] : other.hdrs_) hdr(name).merge(h);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

HdrHistogram& MetricsRegistry::hdr(std::string_view name) {
  auto it = hdrs_.find(name);
  if (it == hdrs_.end()) {
    it = hdrs_.emplace(std::string(name), HdrHistogram{}).first;
  }
  return it->second;
}

Json MetricsRegistry::ToJson() const {
  Json out = Json::object();
  Json& counters = out["counters"] = Json::object();
  for (const auto& [name, c] : counters_) counters[name] = c.value();
  Json& histograms = out["histograms"] = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json& record = histograms[name] = Json::object();
    record["count"] = h.count();
    record["sum"] = h.sum();
    record["min"] = h.min();
    record["max"] = h.max();
    record["mean"] = h.mean();
    Json& buckets = record["buckets"] = Json::array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket_count(b) == 0) continue;
      Json entry = Json::object();
      // Upper bound (exclusive) of the bucket: 1 for the zero bucket,
      // 2^b otherwise; the top bucket's bound saturates.
      entry["lt"] = b == 0 ? std::uint64_t{1}
                   : b >= 64 ? ~std::uint64_t{0}
                             : std::uint64_t{1} << b;
      entry["count"] = h.bucket_count(b);
      buckets.push_back(std::move(entry));
    }
  }
  if (!hdrs_.empty()) {
    Json& hdr = out["hdr"] = Json::object();
    for (const auto& [name, h] : hdrs_) hdr[name] = h.ToJson();
  }
  return out;
}

}  // namespace setint::obs
