// Named counters and log-scale histograms for protocol internals.
//
// Protocols publish the quantities the paper's proofs reason about —
// Basic-Intersection rerun counts (Lemma 3.10), bucket-size distributions
// (Eq. (1)), equality hash-bit budgets, per-level bit spend — into a
// MetricsRegistry instead of growing one ad-hoc Stats struct per module.
// Metric names are dotted paths, `<module>.<quantity>` (see
// docs/OBSERVABILITY.md for the naming scheme and the full inventory).
//
// The registry is deterministic: iteration order is lexicographic by name
// and nothing here reads clocks, so two identical runs export identical
// JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/hdr_histogram.h"
#include "obs/json.h"

namespace setint::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

  // Accumulates another counter's total (commutative and associative, so
  // a merge in any order yields the same value).
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

// Power-of-two bucketed histogram over uint64 values. Bucket 0 holds the
// value 0; bucket b >= 1 holds values in [2^(b-1), 2^b). 65 buckets cover
// the whole uint64 range, so observe() never clamps or drops.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(std::uint64_t value);

  // Accumulates another histogram (bucket-wise sum; min/max/count/sum
  // combine exactly). merge(a); merge(b) equals merge(b); merge(a), and
  // the result is identical to observing both value streams directly.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t bucket_count(int bucket) const { return buckets_[bucket]; }

  // Index of the bucket `value` falls into.
  static int bucket_of(std::uint64_t value);

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);
  // High-dynamic-range family (obs/hdr_histogram.h): log-bucketed with
  // 6.25% relative resolution and deterministic percentiles — for
  // bits/rounds/CPU-ns style distributions where p99 matters.
  HdrHistogram& hdr(std::string_view name);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, HdrHistogram, std::less<>>& hdrs() const {
    return hdrs_;
  }

  bool empty() const {
    return counters_.empty() && histograms_.empty() && hdrs_.empty();
  }

  // Accumulates every metric of `other` into this registry (creating
  // missing names). Counters and histograms merge exactly, so folding N
  // per-session registries — in any order — yields the same registry as
  // publishing all N metric streams into one. This is how the batch
  // engine (runtime/batch.h) combines per-session registries after the
  // barrier; see docs/OBSERVABILITY.md § thread affinity.
  void merge(const MetricsRegistry& other);

  // {"counters": {name: value, ...},
  //  "histograms": {name: {count, sum, min, max, mean,
  //                        buckets: [{le, count}, ...nonzero only]}, ...},
  //  "hdr": {name: HdrHistogram::ToJson(), ...}}  -- key present only
  // when at least one hdr metric is registered, so pre-hdr dumps are
  // byte-stable.
  Json ToJson() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, HdrHistogram, std::less<>> hdrs_;
};

}  // namespace setint::obs
