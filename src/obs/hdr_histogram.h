// Log-bucketed high-dynamic-range histogram with bounded relative error.
//
// The power-of-two obs::Histogram answers "what order of magnitude", which
// is enough for bucket-size distributions but too coarse for latency-style
// quantities (bits per run, rounds per run, CPU-ns per session) where a
// p99 that is 2x the p50 must be visible. HdrHistogram refines every
// power-of-two octave into 2^kSubBucketBits linear sub-buckets, so any
// recorded value is representable within a relative error of
// 2^-kSubBucketBits (6.25%) while still covering the whole uint64 range
// with a fixed, allocation-free bin array.
//
// Like the coarse histogram, merging is EXACT, commutative and
// associative: bins add, count/sum/min/max combine, so folding N
// per-session histograms in any order equals observing all N value
// streams directly. This is the same contract MetricsRegistry::merge
// relies on (docs/OBSERVABILITY.md § merging), extended to the hdr
// family; pinned by tests/hdr_histogram_test.cc.
//
// Nothing here reads clocks or allocates after construction, so two
// identical observation streams always serialize to identical JSON.
#pragma once

#include <cstdint>

#include "obs/json.h"

namespace setint::obs {

class HdrHistogram {
 public:
  // Sub-bucket resolution: each octave [2^e, 2^(e+1)) splits into
  // 2^kSubBucketBits linear bins. Values below 2^kSubBucketBits are
  // recorded exactly (one bin per value).
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  // Exact linear region + 16 bins per octave for exponents 4..63.
  static constexpr int kBins = kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  void observe(std::uint64_t value, std::uint64_t weight = 1);

  // Exact accumulation of another histogram (bin-wise sum). merge(a);
  // merge(b) equals merge(b); merge(a) and equals observing both streams.
  void merge(const HdrHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t bin_count(int bin) const { return bins_[bin]; }

  // Smallest recorded-bin upper bound V such that at least
  // ceil(percentile/100 * count) observations are <= V. Deterministic:
  // depends only on the observation multiset. Returns 0 on an empty
  // histogram. `percentile` is clamped to [0, 100].
  std::uint64_t value_at_percentile(double percentile) const;
  std::uint64_t p50() const { return value_at_percentile(50.0); }
  std::uint64_t p90() const { return value_at_percentile(90.0); }
  std::uint64_t p99() const { return value_at_percentile(99.0); }

  // Bin index of `value`; inverse bounds of a bin. For any value v,
  // bin_lower(bin_of(v)) <= v <= bin_upper(bin_of(v)) and
  // bin_upper - bin_lower < 2^-kSubBucketBits * v (the resolution claim).
  static int bin_of(std::uint64_t value);
  static std::uint64_t bin_lower(int bin);
  static std::uint64_t bin_upper(int bin);

  // {"count", "sum", "min", "max", "mean", "p50", "p90", "p99",
  //  "bins": [{le, count}, ... nonzero only]}
  Json ToJson() const;

 private:
  std::uint64_t bins_[kBins] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace setint::obs
