#include "obs/hdr_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace setint::obs {

int HdrHistogram::bin_of(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int exponent = 63 - std::countl_zero(value);  // >= kSubBucketBits
  const int sub = static_cast<int>(
      (value >> (exponent - kSubBucketBits)) & (kSubBuckets - 1));
  return kSubBuckets + (exponent - kSubBucketBits) * kSubBuckets + sub;
}

std::uint64_t HdrHistogram::bin_lower(int bin) {
  if (bin < kSubBuckets) return static_cast<std::uint64_t>(bin);
  const int exponent = kSubBucketBits + (bin - kSubBuckets) / kSubBuckets;
  const int sub = (bin - kSubBuckets) % kSubBuckets;
  return (std::uint64_t{kSubBuckets} + static_cast<std::uint64_t>(sub))
         << (exponent - kSubBucketBits);
}

std::uint64_t HdrHistogram::bin_upper(int bin) {
  if (bin < kSubBuckets) return static_cast<std::uint64_t>(bin);
  const int exponent = kSubBucketBits + (bin - kSubBuckets) / kSubBuckets;
  const std::uint64_t width = std::uint64_t{1} << (exponent - kSubBucketBits);
  return bin_lower(bin) + (width - 1);
}

void HdrHistogram::observe(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  bins_[bin_of(value)] += weight;
  count_ += weight;
  sum_ += value * weight;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void HdrHistogram::merge(const HdrHistogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBins; ++b) bins_[b] += other.bins_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::uint64_t HdrHistogram::value_at_percentile(double percentile) const {
  if (count_ == 0) return 0;
  const double p = std::clamp(percentile, 0.0, 100.0);
  // Rank of the target observation (1-based, at least 1 so p=0 returns the
  // minimum's bin).
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBins; ++b) {
    seen += bins_[b];
    if (seen >= target) {
      // Never report beyond the true maximum (the top bin's upper bound
      // can overshoot it by up to 6.25%).
      return std::min(bin_upper(b), max_);
    }
  }
  return max_;
}

Json HdrHistogram::ToJson() const {
  Json out = Json::object();
  out["count"] = count_;
  out["sum"] = sum_;
  out["min"] = min();
  out["max"] = max_;
  out["mean"] = mean();
  out["p50"] = p50();
  out["p90"] = p90();
  out["p99"] = p99();
  Json& bins = out["bins"] = Json::array();
  for (int b = 0; b < kBins; ++b) {
    if (bins_[b] == 0) continue;
    Json entry = Json::object();
    entry["le"] = bin_upper(b);
    entry["count"] = bins_[b];
    bins.push_back(std::move(entry));
  }
  return out;
}

}  // namespace setint::obs
