#include "obs/export.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace setint::obs {

void write_metrics_jsonl(const MetricsRegistry& metrics, std::ostream& os) {
  for (const auto& [name, c] : metrics.counters()) {
    Json line = Json::object();
    line["metric"] = name;
    line["type"] = "counter";
    line["value"] = c.value();
    os << line.dump() << '\n';
  }
  for (const auto& [name, h] : metrics.histograms()) {
    Json line = Json::object();
    line["metric"] = name;
    line["type"] = "histogram";
    line["count"] = h.count();
    line["sum"] = h.sum();
    line["min"] = h.min();
    line["max"] = h.max();
    line["mean"] = h.mean();
    Json& buckets = line["buckets"] = Json::array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket_count(b) == 0) continue;
      Json entry = Json::object();
      entry["lt"] = b == 0 ? std::uint64_t{1}
                   : b >= 64 ? ~std::uint64_t{0}
                             : std::uint64_t{1} << b;
      entry["count"] = h.bucket_count(b);
      buckets.push_back(std::move(entry));
    }
    os << line.dump() << '\n';
  }
  for (const auto& [name, h] : metrics.hdrs()) {
    Json line = h.ToJson();
    // Prepend-style ordering is not available on the insertion-ordered
    // Json, so build a fresh record with metric/type first.
    Json record = Json::object();
    record["metric"] = name;
    record["type"] = "hdr";
    for (const auto& [key, value] : line.object_items()) record[key] = value;
    os << record.dump() << '\n';
  }
}

namespace {

Json trace_header() {
  Json doc = Json::object();
  doc["displayTimeUnit"] = "ms";
  doc["otherData"] =
      Json::object();  // placeholder so traceEvents is not the only key
  doc["otherData"]["clock"] = "1us = 1 transmitted bit";
  doc["traceEvents"] = Json::array();
  return doc;
}

Json event(const char* ph, std::string name, std::uint64_t ts, int tid) {
  Json e = Json::object();
  e["name"] = std::move(name);
  e["ph"] = ph;
  e["ts"] = ts;
  e["pid"] = 0;
  e["tid"] = tid;
  return e;
}

const char* party_name(int tid) { return tid == 0 ? "alice" : "bob"; }

Json thread_name_event(int tid, std::string name) {
  Json e = event("M", "thread_name", 0, tid);
  e["args"] = Json::object();
  e["args"]["name"] = std::move(name);
  return e;
}

}  // namespace

void write_chrome_trace(const sim::Transcript& transcript, std::ostream& os) {
  Json doc = trace_header();
  Json& events = doc["traceEvents"];
  events.push_back(thread_name_event(0, "alice (sends)"));
  events.push_back(thread_name_event(1, "bob (sends)"));

  std::uint64_t offset = 0;
  std::uint64_t round = 0;
  bool has_direction = false;
  sim::PartyId last = sim::PartyId::kAlice;
  for (const auto& entry : transcript.entries()) {
    if (!has_direction || last != entry.from) {
      round += 1;
      has_direction = true;
      last = entry.from;
      Json marker =
          event("i", "round " + std::to_string(round), offset, sim::index(entry.from));
      marker["s"] = "g";  // global-scope instant: full-height line
      events.push_back(std::move(marker));
    }
    Json e = event("X",
                   entry.label.empty() ? std::string("message") : entry.label,
                   offset, sim::index(entry.from));
    e["dur"] = entry.payload.size_bits();
    e["args"] = Json::object();
    e["args"]["bits"] = entry.payload.size_bits();
    e["args"]["from"] = party_name(sim::index(entry.from));
    e["args"]["round"] = round;
    events.push_back(std::move(e));
    offset += entry.payload.size_bits();
  }
  os << doc.dump(1);
}

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  if (!tracer.recording_events()) {
    throw std::logic_error(
        "write_chrome_trace: tracer was not recording events");
  }
  constexpr int kPhaseTid = 2;
  Json doc = trace_header();
  Json& events = doc["traceEvents"];
  events.push_back(thread_name_event(0, "alice (sends)"));
  events.push_back(thread_name_event(1, "bob (sends)"));
  events.push_back(thread_name_event(kPhaseTid, "phase stack"));

  for (const TraceEvent& ev : tracer.events()) {
    switch (ev.kind) {
      case TraceEvent::Kind::kSpanBegin:
        events.push_back(event("B", ev.label, ev.bit_offset, kPhaseTid));
        break;
      case TraceEvent::Kind::kSpanEnd:
        events.push_back(event("E", ev.label, ev.bit_offset, kPhaseTid));
        break;
      case TraceEvent::Kind::kMessage: {
        Json e = event("X",
                       ev.label.empty() ? std::string("message") : ev.label,
                       ev.bit_offset, ev.party);
        e["dur"] = ev.bits;
        e["args"] = Json::object();
        e["args"]["bits"] = ev.bits;
        e["args"]["from"] = party_name(ev.party);
        events.push_back(std::move(e));
        break;
      }
    }
  }
  os << doc.dump(1);
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace setint::obs
