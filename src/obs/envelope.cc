#include "obs/envelope.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/iterated_log.h"

namespace setint::obs {

namespace {

// Calibration: fitted constants measured on the committed BENCH_*
// trajectory (seed 24145) with ~40% headroom; see the table in
// docs/OBSERVABILITY.md § conformance envelopes before changing one.
struct EnvelopeDef {
  const char* protocol;
  double c_bound;
};

constexpr EnvelopeDef kEnvelopes[] = {
    {"verification_tree", 12.0},    // measured max c_hat ~8.6
    {"verified_intersection", 13.0},  // tree + 2k-bit certificate
    {"one_round_hash", 10.0},       // measured ~6.1
    {"bucket_eq", 30.0},            // measured ~20
    {"basic_intersection", 72.0},   // measured ~48 at eps = 0.01
};

const EnvelopeDef* find_def(std::string_view protocol) {
  for (const EnvelopeDef& def : kEnvelopes) {
    if (protocol == def.protocol) return &def;
  }
  return nullptr;
}

}  // namespace

bool EnvelopeAuditor::known_protocol(std::string_view protocol) {
  return find_def(protocol) != nullptr;
}

double EnvelopeAuditor::default_c_bound(std::string_view protocol) {
  const EnvelopeDef* def = find_def(protocol);
  if (def == nullptr) {
    throw std::invalid_argument("EnvelopeAuditor: unknown protocol '" +
                                std::string(protocol) + "'");
  }
  return def->c_bound;
}

int EnvelopeAuditor::effective_r(std::uint64_t k, int r) {
  if (r > 0) return r;
  return std::max(1, util::log_star(static_cast<double>(std::max<std::uint64_t>(k, 2))));
}

double EnvelopeAuditor::predicted_bits(std::string_view protocol,
                                       std::uint64_t k, int r,
                                       std::uint64_t repetitions) {
  const double kd = static_cast<double>(std::max<std::uint64_t>(k, 2));
  const double reps = static_cast<double>(std::max<std::uint64_t>(repetitions, 1));
  const int er = effective_r(k, r);
  if (protocol == "verification_tree" || protocol == "verified_intersection") {
    const double ilog =
        std::max(1.0, util::iterated_log(er, kd));
    return kd * (ilog + static_cast<double>(er)) * reps;
  }
  if (protocol == "one_round_hash") {
    return kd * std::max(1.0, std::log2(kd));
  }
  if (protocol == "bucket_eq" || protocol == "basic_intersection") {
    return kd;
  }
  throw std::invalid_argument("EnvelopeAuditor: unknown protocol '" +
                              std::string(protocol) + "'");
}

std::uint64_t EnvelopeAuditor::rounds_budget(std::string_view protocol,
                                             std::uint64_t k, int r,
                                             std::uint64_t repetitions) {
  const std::uint64_t reps = std::max<std::uint64_t>(repetitions, 1);
  const std::uint64_t er =
      static_cast<std::uint64_t>(effective_r(k, r));
  if (protocol == "verification_tree") return 6 * er;
  if (protocol == "verified_intersection") return (6 * er + 4) * reps;
  if (protocol == "one_round_hash") return 2;
  if (protocol == "basic_intersection") return 4;
  if (protocol == "bucket_eq") {
    return 8 * std::max<std::uint64_t>(
                   1, util::ceil_log2(std::max<std::uint64_t>(k, 2)));
  }
  throw std::invalid_argument("EnvelopeAuditor: unknown protocol '" +
                              std::string(protocol) + "'");
}

void EnvelopeAuditor::expect(std::string_view protocol, double c_bound) {
  const double bound =
      c_bound > 0.0 ? c_bound : default_c_bound(protocol);  // validates name
  auto it = protocols_.find(protocol);
  if (it == protocols_.end()) {
    protocols_.emplace(std::string(protocol),
                       std::make_pair(bound, std::vector<EnvelopeSample>{}));
  } else {
    it->second.first = bound;
  }
}

void EnvelopeAuditor::add(std::string_view protocol,
                          const EnvelopeSample& sample) {
  auto it = protocols_.find(protocol);
  if (it == protocols_.end()) {
    expect(protocol);
    it = protocols_.find(protocol);
  }
  it->second.second.push_back(sample);
}

std::vector<EnvelopeAudit> EnvelopeAuditor::audit() const {
  std::vector<EnvelopeAudit> out;
  for (const auto& [name, entry] : protocols_) {
    const auto& [c_bound, samples] = entry;
    EnvelopeAudit a;
    a.protocol = name;
    a.samples = samples.size();
    a.c_bound = c_bound;
    double c_sum = 0.0;
    for (const EnvelopeSample& s : samples) {
      const double predicted =
          predicted_bits(name, s.k, s.r, s.repetitions);
      const double c = static_cast<double>(s.bits) / predicted;
      c_sum += c;
      if (c > a.fitted_c) {
        a.fitted_c = c;
        a.worst_k = s.k;
        a.worst_r = effective_r(s.k, s.r);
      }
      if (s.rounds > rounds_budget(name, s.k, s.r, s.repetitions)) {
        a.rounds_violations += 1;
      }
    }
    if (!samples.empty()) {
      a.mean_c = c_sum / static_cast<double>(samples.size());
    }
    a.slack = a.fitted_c > 0.0 ? a.c_bound / a.fitted_c : 0.0;
    // A protocol registered but never measured fails the audit: coverage
    // silently vanishing is exactly the regression this exists to catch.
    a.bits_within = !samples.empty() && a.fitted_c <= a.c_bound;
    a.rounds_within = !samples.empty() && a.rounds_violations == 0;
    out.push_back(std::move(a));
  }
  return out;
}

bool EnvelopeAuditor::all_within() const {
  const std::vector<EnvelopeAudit> audits = audit();
  if (audits.empty()) return false;
  for (const EnvelopeAudit& a : audits) {
    if (!a.within()) return false;
  }
  return true;
}

Json EnvelopeAudit::ToJson() const {
  Json out = Json::object();
  out["protocol"] = protocol;
  out["samples"] = static_cast<std::uint64_t>(samples);
  out["fitted_c"] = fitted_c;
  out["mean_c"] = mean_c;
  out["c_bound"] = c_bound;
  out["slack"] = slack;
  out["worst_k"] = worst_k;
  out["worst_r"] = worst_r;
  out["rounds_violations"] = rounds_violations;
  out["within"] = within();
  return out;
}

Json EnvelopeAuditor::ToJson() const {
  Json out = Json::object();
  out["all_within"] = all_within();
  Json& protocols = out["protocols"] = Json::array();
  for (const EnvelopeAudit& a : audit()) protocols.push_back(a.ToJson());
  return out;
}

Json audit_single_run(std::string_view protocol,
                      const EnvelopeSample& sample) {
  const double predicted = EnvelopeAuditor::predicted_bits(
      protocol, sample.k, sample.r, sample.repetitions);
  const std::uint64_t budget = EnvelopeAuditor::rounds_budget(
      protocol, sample.k, sample.r, sample.repetitions);
  const double c_bound = EnvelopeAuditor::default_c_bound(protocol);
  const double fitted = static_cast<double>(sample.bits) / predicted;
  Json out = Json::object();
  out["protocol"] = protocol;
  out["k"] = sample.k;
  out["r"] = EnvelopeAuditor::effective_r(sample.k, sample.r);
  out["repetitions"] = sample.repetitions;
  out["bits"] = sample.bits;
  out["rounds"] = sample.rounds;
  out["predicted_bits"] = predicted;
  out["fitted_c"] = fitted;
  out["c_bound"] = c_bound;
  out["slack"] = fitted > 0.0 ? c_bound / fitted : 0.0;
  out["rounds_budget"] = budget;
  out["within"] = fitted <= c_bound && sample.rounds <= budget;
  return out;
}

ErrorBudgetAudit audit_error_rate(std::uint64_t failures,
                                  std::uint64_t trials, double budget_eps,
                                  double z) {
  ErrorBudgetAudit a;
  a.trials = trials;
  a.failures = failures;
  a.budget_eps = budget_eps;
  const double n = static_cast<double>(trials);
  const double mean = n * budget_eps;
  a.allowed = mean + z * std::sqrt(std::max(0.0, mean * (1.0 - budget_eps)));
  a.within = static_cast<double>(failures) <= a.allowed;
  return a;
}

Json ErrorBudgetAudit::ToJson() const {
  Json out = Json::object();
  out["trials"] = trials;
  out["failures"] = failures;
  out["budget_eps"] = budget_eps;
  out["allowed"] = allowed;
  out["within"] = within;
  return out;
}

}  // namespace setint::obs
