#include "obs/recorder.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <ostream>

#include "obs/json.h"

namespace setint::obs {

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kMessage: return "message";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kIntegrityFailure: return "integrity_failure";
    case FlightEventKind::kLimitBreach: return "limit_breach";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kBackstop: return "backstop";
    case FlightEventKind::kDegrade: return "degrade";
    case FlightEventKind::kIncident: return "incident";
    case FlightEventKind::kCrash: return "crash";
    case FlightEventKind::kPartition: return "partition";
    case FlightEventKind::kRestart: return "restart";
    case FlightEventKind::kBudgetExhausted: return "budget_exhausted";
    case FlightEventKind::kBreakerOpen: return "breaker_open";
    case FlightEventKind::kShed: return "shed";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  capacity_ = std::bit_ceil(std::max<std::size_t>(capacity, 8));
  mask_ = capacity_ - 1;
  ring_ = std::make_unique<FlightEvent[]>(capacity_);
}

void FlightRecorder::record(FlightEventKind kind, std::string_view label,
                            int party, std::uint64_t bits,
                            std::uint64_t bit_offset) {
  const std::uint64_t seq = head_.load(std::memory_order_relaxed);
  FlightEvent& slot = ring_[seq & mask_];
  slot.sequence = seq;
  slot.bit_offset = bit_offset;
  slot.bits = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(bits, ~std::uint32_t{0}));
  slot.party = static_cast<std::int8_t>(party);
  slot.kind = kind;
  const std::size_t n =
      std::min(label.size(), FlightEvent::kLabelCapacity - 1);
  std::memcpy(slot.label, label.data(), n);
  slot.label[n] = '\0';
  // Publish: a consumer that acquire-loads the head sees this event fully
  // written.
  head_.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::set_dump_path(std::string prefix,
                                   std::uint64_t max_dumps) {
  dump_prefix_ = std::move(prefix);
  max_dumps_ = max_dumps;
}

void FlightRecorder::set_context(std::string_view key,
                                 std::string_view value) {
  for (auto& [k, v] : context_) {
    if (k == key) {
      v.assign(value);
      return;
    }
  }
  context_.emplace_back(std::string(key), std::string(value));
}

void FlightRecorder::mix_payload(std::uint64_t fingerprint) {
  // splitmix64-style fold: order-sensitive, cheap, and stable across
  // platforms (the digest is compared across separate process runs).
  std::uint64_t x = transcript_digest_ ^
                    (fingerprint + 0x9e3779b97f4a7c15ull +
                     (transcript_digest_ << 6) + (transcript_digest_ >> 2));
  transcript_digest_ = x;
  deliveries_ += 1;
}

void FlightRecorder::incident(std::string_view reason) {
  record(FlightEventKind::kIncident, reason);
  incidents_ += 1;
  if (dump_prefix_.empty() || dump_files_.size() >= max_dumps_) return;
  const std::string path =
      dump_prefix_ + "." + std::to_string(incidents_) + ".jsonl";
  std::ofstream os(path);
  if (!os) return;  // post-mortems are best-effort; never fail the run
  dump_jsonl(os, reason);
  dump_files_.push_back(path);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, capacity_);
  std::vector<FlightEvent> out;
  out.reserve(n);
  for (std::uint64_t seq = head - n; seq < head; ++seq) {
    out.push_back(ring_[seq & mask_]);
  }
  return out;
}

void FlightRecorder::dump_jsonl(std::ostream& os,
                                std::string_view reason) const {
  const std::vector<FlightEvent> events = snapshot();
  {
    Json meta = Json::object();
    meta["kind"] = "meta";
    if (!reason.empty()) meta["reason"] = reason;
    meta["recorded"] = recorded();
    meta["overwritten"] = overwritten();
    meta["capacity"] = static_cast<std::uint64_t>(capacity_);
    meta["incidents"] = incidents_;
    // Decimal strings: the digest is a full 64-bit value and must survive
    // a JSON round-trip exactly (parsers may go through double).
    meta["transcript_digest"] = std::to_string(transcript_digest_);
    meta["deliveries"] = deliveries_;
    if (!context_.empty()) {
      Json ctx = Json::object();
      for (const auto& [k, v] : context_) ctx[k] = v;
      meta["context"] = std::move(ctx);
    }
    os << meta.dump() << '\n';
  }
  for (const FlightEvent& e : events) {
    Json line = Json::object();
    line["seq"] = e.sequence;
    line["kind"] = flight_event_kind_name(e.kind);
    if (e.party >= 0) line["party"] = static_cast<std::int64_t>(e.party);
    if (e.kind == FlightEventKind::kMessage) {
      line["bits"] = static_cast<std::uint64_t>(e.bits);
    }
    line["bit_offset"] = e.bit_offset;
    line["label"] = std::string_view(e.label);
    os << line.dump() << '\n';
  }
}

}  // namespace setint::obs
