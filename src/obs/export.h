// Exporters: metric dumps as JSON-lines, per-run summary records, and
// Chrome-trace-format (chrome://tracing / Perfetto) timelines of round
// structure.
//
// The simulator has no wall clock worth plotting — the honest time axis is
// "bits transmitted so far", so Chrome trace timestamps are bit offsets
// (1 "microsecond" = 1 bit). Messages render as slices on the sending
// party's track; span begin/end events (when the tracer recorded them)
// render the phase stack on a third track.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/transcript.h"

namespace setint::obs {

// One JSON object per line: {"metric": name, "type": "counter"|"histogram",
// ...fields}. Suitable for appending across runs and for line-wise diffing.
void write_metrics_jsonl(const MetricsRegistry& metrics, std::ostream& os);

// Chrome trace from a recorded transcript: every message is a complete
// ("ph":"X") event with ts = bits sent before it, dur = its payload bits,
// on the sending party's thread; round boundaries are instant events.
void write_chrome_trace(const sim::Transcript& transcript, std::ostream& os);

// Chrome trace from a tracer's event log (requires record_events = true;
// throws std::logic_error otherwise). Spans become nested B/E events,
// messages complete events, all on the bit-offset clock.
void write_chrome_trace(const Tracer& tracer, std::ostream& os);

// Convenience: serialize and write to `path`, throwing std::runtime_error
// on I/O failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace setint::obs
