// Minimal JSON document builder for the observability exporters and the
// bench pipeline.
//
// Deliberately tiny: build-and-serialize only (no parsing), with ordered
// objects so that a given construction order always serializes to the
// same bytes — the bench determinism test diffs raw files. Doubles are
// rendered with std::to_chars (shortest round-trip form), so equal values
// always print identically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace setint::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(std::uint64_t v) : type_(Type::kUint), uint_(v) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}
  Json(std::string_view v) : type_(Type::kString), string_(v) {}
  Json(const char* v) : type_(Type::kString), string_(v) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  // If the cell text is entirely one number, returns it typed (uint or
  // double); otherwise returns it as a string. Lets the bench tables emit
  // typed JSON without each caller tracking cell types.
  static Json from_cell(const std::string& cell);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // Array append. Converts a null value to an empty array first.
  Json& push_back(Json v);

  // Object insert-or-lookup (insertion-ordered). Converts a null value to
  // an empty object first.
  Json& operator[](std::string_view key);
  void set(std::string_view key, Json v) { (*this)[key] = std::move(v); }
  const Json* find(std::string_view key) const;

  std::size_t size() const;

  // indent < 0: compact single line. indent >= 0: pretty-printed with that
  // many spaces per level (one key per line — downstream tooling filters
  // volatile fields line-wise).
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace setint::obs
