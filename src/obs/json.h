// Minimal JSON document model for the observability exporters and the
// bench pipeline.
//
// Deliberately tiny, with ordered objects so that a given construction
// order always serializes to the same bytes — the bench determinism test
// diffs raw files. Doubles are rendered with std::to_chars (shortest
// round-trip form), so equal values always print identically.
//
// parse() exists for the bench-comparison tooling (tools/bench_compare)
// that consumes the BENCH_*.json records this class produced; it accepts
// standard JSON (no comments, no trailing commas) and preserves object
// key order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace setint::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(std::uint64_t v) : type_(Type::kUint), uint_(v) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}
  Json(std::string_view v) : type_(Type::kString), string_(v) {}
  Json(const char* v) : type_(Type::kString), string_(v) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  // If the cell text is entirely one number, returns it typed (uint or
  // double); otherwise returns it as a string. Lets the bench tables emit
  // typed JSON without each caller tracking cell types.
  static Json from_cell(const std::string& cell);

  // Parses a JSON document; throws std::runtime_error with a byte offset
  // on malformed input. Integral numbers come back kUint (non-negative)
  // or kInt, everything else kDouble.
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const {
    return type_ == Type::kUint || type_ == Type::kInt ||
           type_ == Type::kDouble;
  }

  // Typed reads for parsed documents. as_double/as_string throw
  // std::logic_error on a type mismatch; number_or returns `fallback`
  // for non-numbers.
  double as_double() const;
  double number_or(double fallback) const;
  const std::string& as_string() const;
  bool as_bool() const { return type_ == Type::kBool && bool_; }

  // Parsed-document iteration (empty for other types).
  const std::vector<Json>& array_items() const;
  const std::vector<std::pair<std::string, Json>>& object_items() const;
  const Json& at(std::size_t index) const { return array_.at(index); }

  // Array append. Converts a null value to an empty array first.
  Json& push_back(Json v);

  // Object insert-or-lookup (insertion-ordered). Converts a null value to
  // an empty object first.
  Json& operator[](std::string_view key);
  void set(std::string_view key, Json v) { (*this)[key] = std::move(v); }
  const Json* find(std::string_view key) const;

  std::size_t size() const;

  // indent < 0: compact single line. indent >= 0: pretty-printed with that
  // many spaces per level (one key per line — downstream tooling filters
  // volatile fields line-wise).
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace setint::obs
