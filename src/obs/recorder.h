// Flight recorder: a lock-free, fixed-capacity ring buffer of the last N
// protocol events, dumped as JSONL when a failure path fires.
//
// The tracer answers "where did the bits go" for a run you planned to
// observe; the recorder answers "what just happened" for a run that
// failed. A session keeps one FlightRecorder attached to its channel
// (sim::Channel::set_recorder / IntersectOptions::recorder); every send,
// injected fault, integrity failure, resource-limit breach, retry and
// degradation appends one fixed-size event — no allocation, no lock, one
// masked index and a release store — and the ring keeps only the newest
// `capacity()` events. When an incident fires (ChannelIntegrityError or
// ResourceLimitError thrown at the channel, a retry or a degradation in
// the recovery layer), the recorder snapshots the ring to a JSONL
// post-mortem file automatically if a dump path is configured.
//
// Concurrency contract (matches docs/OBSERVABILITY.md § thread affinity):
// record() is wait-free and belongs to the single session thread (the
// producer). The ring publishes each event with a release store, so a
// consumer on another thread that loads the head with acquire sees fully
// written events for every index below it — but slots more than
// `capacity()` behind the head are being rewritten and must not be read.
// snapshot()/dump_jsonl() therefore read only the newest capacity()
// events, and are exact when the session is quiescent (the in-tree use:
// incident dumps run on the session thread itself).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace setint::obs {

enum class FlightEventKind : std::uint8_t {
  kMessage = 0,      // a metered Channel::send delivery
  kFault,            // the fault plan damaged/duplicated/delayed a frame
  kIntegrityFailure, // a frame failed the delivery-side checksum
  kLimitBreach,      // a resource cap fired (core::ResourceLimitError)
  kRetry,            // the recovery layer started a fresh attempt
  kBackstop,         // fell back to the deterministic exchange
  kDegrade,          // retry budget exhausted; degraded superset answer
  kIncident,         // explicit incident marker (dumps the ring)
  kCrash,            // chaos: a send hit a crashed/dead endpoint
  kPartition,        // chaos: a send hit a partitioned link
  kRestart,          // recovery layer resumed after a crash/partition wait
  kBudgetExhausted,  // a session budget dimension tripped (core/budget.h)
  kBreakerOpen,      // a per-link circuit breaker tripped open
  kShed,             // admission control shed a pair-session pre-start
};

// Stable lowercase name ("message", "integrity_failure", ...).
const char* flight_event_kind_name(FlightEventKind kind);

// Fixed-size POD event record. Labels are truncated to fit — the recorder
// must never allocate on the hot path.
struct FlightEvent {
  static constexpr std::size_t kLabelCapacity = 30;

  std::uint64_t sequence = 0;    // monotone per recorder, starts at 0
  std::uint64_t bit_offset = 0;  // channel bits_total at record time
  std::uint32_t bits = 0;        // message payload size (kMessage only)
  std::int8_t party = -1;        // sim::index(from) for kMessage, else -1
  FlightEventKind kind = FlightEventKind::kMessage;
  char label[kLabelCapacity] = {};  // NUL-terminated, possibly truncated
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  // Capacity is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one event; wait-free, overwrites the oldest event when full.
  void record(FlightEventKind kind, std::string_view label, int party = -1,
              std::uint64_t bits = 0, std::uint64_t bit_offset = 0);

  // Records a kIncident event and, if a dump path is configured and the
  // dump budget is not exhausted, writes the ring as JSONL to
  // "<prefix>.<incident-index>.jsonl".
  void incident(std::string_view reason);

  // Enables automatic post-mortem dumps. `max_dumps` bounds how many
  // files one recorder will write (retry storms fire many incidents).
  void set_dump_path(std::string prefix, std::uint64_t max_dumps = 8);

  // Replay context: string key/value pairs emitted under "context" in the
  // dump meta line. The facade records everything tools/replay needs to
  // re-execute the session (seeds, inputs, fault/chaos specs) so every
  // incident dump is a self-contained reproduction recipe. Setting an
  // existing key overwrites it. Not on the hot path.
  void set_context(std::string_view key, std::string_view value);
  const std::vector<std::pair<std::string, std::string>>& context() const {
    return context_;
  }

  // Folds one delivered payload fingerprint into the running transcript
  // digest (called by sim::Channel per successful delivery). Order- and
  // content-sensitive: two sessions have equal digests iff they delivered
  // the same bodies in the same order (modulo fingerprint collisions) —
  // the bit-for-bit assertion behind tools/replay.
  void mix_payload(std::uint64_t fingerprint);
  std::uint64_t transcript_digest() const { return transcript_digest_; }
  std::uint64_t deliveries() const { return deliveries_; }

  // Newest-to-oldest ordering is chronological: events are returned
  // oldest first, at most capacity() of them.
  std::vector<FlightEvent> snapshot() const;

  // One JSON object per line, oldest event first, preceded by one meta
  // line {"kind":"meta","reason":...,"recorded":N,"overwritten":M,...}.
  void dump_jsonl(std::ostream& os, std::string_view reason = {}) const;

  std::size_t capacity() const { return capacity_; }
  // Total events ever recorded (not capped by capacity).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  // Events lost to ring wraparound.
  std::uint64_t overwritten() const {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  std::uint64_t incidents() const { return incidents_; }
  const std::vector<std::string>& dump_files() const { return dump_files_; }

 private:
  std::size_t capacity_;  // power of two
  std::size_t mask_;
  std::unique_ptr<FlightEvent[]> ring_;
  std::atomic<std::uint64_t> head_{0};  // next sequence number
  std::uint64_t incidents_ = 0;
  std::string dump_prefix_;
  std::uint64_t max_dumps_ = 0;
  std::vector<std::string> dump_files_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::uint64_t transcript_digest_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace setint::obs
