// Theory-conformance auditor: checks measured runs against the paper's
// cost envelopes.
//
// The paper's contribution is quantitative — an r-round protocol finding
// the intersection in O(k * ilog_r k) bits (Theorem 1.1 / 3.6) with at
// most 6r rounds — so the honest regression surface is "do measured
// transcripts still sit inside those envelopes". The auditor encodes,
// per protocol, a predicted bit shape P(k, r) (the O(.) argument with the
// constant divided out) and a hard round budget; callers feed measured
// (k, r, bits, rounds) samples, the auditor fits the implied constant
//
//     c_hat = max over samples of bits / P(k, r)
//
// and reports the slack against a calibrated hard-fail bound c_bound.
// A run OUTSIDE the envelope (c_hat > c_bound, or any rounds-budget
// violation) is a theory-conformance regression: exp_tradeoff, exp_rounds
// and exp_cpu wire all_within() into their exit codes, tools/bench_compare
// fails on an envelope-audit section that went red, and the facade
// attaches a per-run audit to RunReport::envelope.
//
// Bit shapes (k = set-size bound, r = effective stage count):
//   verification_tree      k * (max(1, ilog_r k) + r)
//       Theorem 3.6's telescoped cost: the stage-0 equality tests pay
//       O(k * ilog_r k) and each of the r stages adds O(k) for its
//       shallower levels — fitting one constant against ilog_r k alone
//       would conflate those two terms and drift with r.
//   verified_intersection  same shape, scaled by certified attempts
//       (the facade's amplified run: tree + 2k-bit certificate per
//       attempt; see multiparty/coordinator.h)
//   one_round_hash         k * max(1, log2 k)        (r = 1 base case)
//   bucket_eq              k                          (Theorem 3.1, O(k))
//   basic_intersection     k                          (Lemma 3.9, fixed eps)
//
// Round budgets: verification_tree 6r; verified_intersection (6r + 4) per
// attempt; one_round_hash 2; basic_intersection 4; bucket_eq
// 8 * max(1, ceil_log2 k) (amortized-equality binary searches).
//
// Default c_bounds are calibrated from the committed BENCH_* trajectory
// with ~40% headroom (see docs/OBSERVABILITY.md § conformance envelopes);
// a bound that trips means the protocol's constant factor regressed, not
// that the asymptotics are in doubt.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace setint::obs {

struct EnvelopeSample {
  std::uint64_t k = 0;
  // Requested stage count; 0 = auto, resolved to log*(k) like
  // core::VerificationTreeParams does.
  int r = 0;
  std::uint64_t bits = 0;
  std::uint64_t rounds = 0;
  // Certified attempts consumed (verified_intersection only): budgets
  // scale per attempt.
  std::uint64_t repetitions = 1;
};

// Audit verdict for one protocol's sample set.
struct EnvelopeAudit {
  std::string protocol;
  std::size_t samples = 0;
  double fitted_c = 0.0;  // max bits / predicted over samples
  double mean_c = 0.0;
  double c_bound = 0.0;
  // c_bound / fitted_c: > 1 means inside the envelope with that much
  // margin, < 1 means the bit bound is violated.
  double slack = 0.0;
  std::uint64_t worst_k = 0;  // sample attaining fitted_c
  int worst_r = 0;
  std::uint64_t rounds_violations = 0;
  bool bits_within = false;
  bool rounds_within = false;

  bool within() const { return bits_within && rounds_within; }
  Json ToJson() const;
};

class EnvelopeAuditor {
 public:
  // Registers `protocol` (even with zero samples, so a bench that never
  // feeds it still reports the gap). `c_bound` = 0 uses the calibrated
  // default. Throws std::invalid_argument for unknown protocol names.
  void expect(std::string_view protocol, double c_bound = 0.0);

  // Adds a measured sample; auto-registers the protocol.
  void add(std::string_view protocol, const EnvelopeSample& sample);

  std::vector<EnvelopeAudit> audit() const;
  bool all_within() const;

  // {"all_within": bool, "protocols": [EnvelopeAudit..., name-sorted]}
  Json ToJson() const;

  // The envelope primitives (also used by the single-run facade audit).
  static double predicted_bits(std::string_view protocol, std::uint64_t k,
                               int r, std::uint64_t repetitions = 1);
  static std::uint64_t rounds_budget(std::string_view protocol,
                                     std::uint64_t k, int r,
                                     std::uint64_t repetitions = 1);
  static double default_c_bound(std::string_view protocol);
  // 0 = auto resolves to log* k (the facade / params convention).
  static int effective_r(std::uint64_t k, int r);
  static bool known_protocol(std::string_view protocol);

 private:
  std::map<std::string, std::pair<double, std::vector<EnvelopeSample>>,
           std::less<>>
      protocols_;  // name -> (c_bound, samples)
};

// One-sample convenience audit (what the facade attaches to
// RunReport::envelope): {"protocol", "k", "r", "bits", "rounds",
// "predicted_bits", "fitted_c", "c_bound", "slack", "rounds_budget",
// "within"}.
Json audit_single_run(std::string_view protocol, const EnvelopeSample& sample);

// Lemma 3.3 / Fact 3.5 error-budget audit: `failures` bad outcomes out of
// `trials` against a per-trial budget `eps`, allowing a z-sigma Chernoff
// margin above the mean (z = 3 keeps the false-alarm rate ~1e-3 while
// still catching a budget that is off by a constant).
struct ErrorBudgetAudit {
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  double budget_eps = 0.0;
  double allowed = 0.0;  // trials*eps + z*sqrt(trials*eps*(1-eps))
  bool within = false;
  Json ToJson() const;
};

ErrorBudgetAudit audit_error_rate(std::uint64_t failures,
                                  std::uint64_t trials, double budget_eps,
                                  double z = 3.0);

}  // namespace setint::obs
