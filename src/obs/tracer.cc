#include "obs/tracer.h"

#include <stdexcept>

namespace setint::obs {

std::uint64_t PhaseNode::total_bits() const {
  std::uint64_t total = self_bits;
  for (const auto& c : children) total += c->total_bits();
  return total;
}

std::uint64_t PhaseNode::total_messages() const {
  std::uint64_t total = self_messages;
  for (const auto& c : children) total += c->total_messages();
  return total;
}

std::uint64_t PhaseNode::total_rounds() const {
  std::uint64_t total = self_rounds;
  for (const auto& c : children) total += c->total_rounds();
  return total;
}

const PhaseNode* PhaseNode::child(std::string_view label) const {
  for (const auto& c : children) {
    if (c->label == label) return c.get();
  }
  return nullptr;
}

void Tracer::push(std::string_view label) {
  PhaseNode* parent = stack_.back();
  PhaseNode* node = nullptr;
  for (const auto& c : parent->children) {
    if (c->label == label) {
      node = c.get();
      break;
    }
  }
  if (node == nullptr) {
    parent->children.push_back(std::make_unique<PhaseNode>());
    node = parent->children.back().get();
    node->label = std::string(label);
  }
  node->enters += 1;
  stack_.push_back(node);
  if (record_events_) {
    events_.push_back(TraceEvent{TraceEvent::Kind::kSpanBegin,
                                 std::string(label), bit_clock_, 0, -1});
  }
}

void Tracer::pop() {
  if (stack_.size() <= 1) throw std::logic_error("Tracer: pop past root");
  if (record_events_) {
    events_.push_back(TraceEvent{TraceEvent::Kind::kSpanEnd,
                                 stack_.back()->label, bit_clock_, 0, -1});
  }
  stack_.pop_back();
}

void Tracer::on_message(sim::PartyId from, std::uint64_t bits, bool new_round,
                        std::string_view label) {
  PhaseNode* node = stack_.back();
  node->self_bits += bits;
  node->self_messages += 1;
  if (new_round) node->self_rounds += 1;
  if (record_events_) {
    events_.push_back(TraceEvent{TraceEvent::Kind::kMessage,
                                 std::string(label), bit_clock_, bits,
                                 sim::index(from)});
  }
  bit_clock_ += bits;
}

void Tracer::on_cost(const sim::CostStats& cost) {
  PhaseNode* node = stack_.back();
  node->self_bits += cost.bits_total;
  node->self_messages += cost.messages;
  node->self_rounds += cost.rounds;
  bit_clock_ += cost.bits_total;
}

namespace {

void flatten(const PhaseNode& node, const std::string& prefix, int depth,
             std::vector<PhaseRow>& out) {
  for (const auto& child : node.children) {
    const std::string path =
        prefix.empty() ? child->label : prefix + "/" + child->label;
    PhaseRow row;
    row.path = path;
    row.depth = depth;
    row.bits = child->total_bits();
    row.self_bits = child->self_bits;
    row.messages = child->total_messages();
    row.rounds = child->total_rounds();
    row.enters = child->enters;
    out.push_back(std::move(row));
    flatten(*child, path, depth + 1, out);
  }
}

}  // namespace

std::vector<PhaseRow> Tracer::breakdown() const {
  std::vector<PhaseRow> rows;
  // The synthetic root row first, so consumers can check that phase sums
  // cover the whole run (root.bits == CostStats::bits_total).
  PhaseRow root_row;
  root_row.path = "";
  root_row.depth = -1;
  root_row.bits = root_.total_bits();
  root_row.self_bits = root_.self_bits;
  root_row.messages = root_.total_messages();
  root_row.rounds = root_.total_rounds();
  root_row.enters = root_.enters;
  rows.push_back(std::move(root_row));
  flatten(root_, "", 0, rows);
  return rows;
}

namespace {

Json rows_to_json(const std::vector<PhaseRow>& rows) {
  Json out = Json::array();
  for (const PhaseRow& row : rows) {
    Json record = Json::object();
    record["path"] = row.path;
    record["depth"] = row.depth;
    record["bits"] = row.bits;
    record["self_bits"] = row.self_bits;
    record["messages"] = row.messages;
    record["rounds"] = row.rounds;
    record["enters"] = row.enters;
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace

Json Tracer::BreakdownJson() const { return rows_to_json(breakdown()); }

Json RunReport::ToJson() const {
  Json out = Json::object();
  Json& c = out["cost"] = Json::object();
  c["bits_total"] = cost.bits_total;
  c["bits_from_alice"] = cost.bits_from_alice;
  c["bits_from_bob"] = cost.bits_from_bob;
  c["messages"] = cost.messages;
  c["rounds"] = cost.rounds;
  out["phases"] = rows_to_json(phases);
  out["metrics"] = metrics;
  if (!envelope.is_null()) out["envelope"] = envelope;
  return out;
}

RunReport make_run_report(const sim::CostStats& cost, const Tracer& tracer) {
  RunReport report;
  report.cost = cost;
  report.phases = tracer.breakdown();
  report.metrics = tracer.metrics().ToJson();
  return report;
}

}  // namespace setint::obs
