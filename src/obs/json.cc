#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace setint::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan; null is the conventional stand-in
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

Json Json::from_cell(const std::string& cell) {
  if (cell.empty()) return Json(cell);
  const char* begin = cell.c_str();
  char* end = nullptr;
  if (cell.find_first_not_of("0123456789") == std::string::npos) {
    const unsigned long long u = std::strtoull(begin, &end, 10);
    if (end == begin + cell.size()) return Json(static_cast<std::uint64_t>(u));
  }
  const double d = std::strtod(begin, &end);
  if (end == begin + cell.size()) return Json(d);
  return Json(cell);
}

Json& Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::logic_error("Json: push_back on non-array");
  array_.push_back(std::move(v));
  return array_.back();
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::logic_error("Json: [] on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kUint: out += std::to_string(uint_); break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace setint::obs
