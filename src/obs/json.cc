#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace setint::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan; null is the conventional stand-in
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

Json Json::from_cell(const std::string& cell) {
  if (cell.empty()) return Json(cell);
  const char* begin = cell.c_str();
  char* end = nullptr;
  if (cell.find_first_not_of("0123456789") == std::string::npos) {
    const unsigned long long u = std::strtoull(begin, &end, 10);
    if (end == begin + cell.size()) return Json(static_cast<std::uint64_t>(u));
  }
  const double d = std::strtod(begin, &end);
  if (end == begin + cell.size()) return Json(d);
  return Json(cell);
}

namespace {

// Recursive-descent parser over a string_view; positions reported in the
// exception message are byte offsets into the original text.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume("true")) return Json(true);
    if (consume("false")) return Json(false);
    if (consume("null")) return Json();
    return parse_number();
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':'");
      ++pos_;
      out[key] = parse_value();
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    ++pos_;  // '['
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8 and keep it simple (no surrogates).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      if (token[0] == '-') {
        char* end = nullptr;
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (end == token.c_str() + token.size()) {
          return Json(static_cast<std::int64_t>(v));
        }
      } else {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (end == token.c_str() + token.size()) {
          return Json(static_cast<std::uint64_t>(v));
        }
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number '" + token + "'");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

double Json::as_double() const {
  switch (type_) {
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kInt: return static_cast<double>(int_);
    case Type::kDouble: return double_;
    default: throw std::logic_error("Json: as_double on a non-number");
  }
}

double Json::number_or(double fallback) const {
  return is_number() ? as_double() : fallback;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) {
    throw std::logic_error("Json: as_string on a non-string");
  }
  return string_;
}

const std::vector<Json>& Json::array_items() const {
  static const std::vector<Json> kEmpty;
  return type_ == Type::kArray ? array_ : kEmpty;
}

const std::vector<std::pair<std::string, Json>>& Json::object_items() const {
  static const std::vector<std::pair<std::string, Json>> kEmpty;
  return type_ == Type::kObject ? object_ : kEmpty;
}

Json& Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::logic_error("Json: push_back on non-array");
  array_.push_back(std::move(v));
  return array_.back();
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::logic_error("Json: [] on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kUint: out += std::to_string(uint_); break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace setint::obs
