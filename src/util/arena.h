// Session-scoped bump-allocated scratch memory.
//
// The hot protocol paths need short-lived uint64 arrays — hashed images,
// bucket keys, counting-sort tables — whose lifetimes nest exactly like
// the call stack. ScratchArena extends the util::BufferPool idea (recycle
// capacity, never give it back to the allocator mid-session) from
// BitBuffers to raw word arrays: allocation is a pointer bump into
// chunked blocks, and a Frame rewinds the bump mark on scope exit so
// nested protocol stages reuse the same storage round after round.
//
// Ownership rules (docs/PERFORMANCE.md):
//   * an arena belongs to exactly ONE protocol session — sim::Channel owns
//     one per channel, same single-thread affinity as its BufferPool;
//   * spans handed out are valid until the enclosing Frame is destroyed
//     (blocks never move or shrink inside a frame);
//   * protocol entry points open a Frame; helpers borrow the arena but
//     never hold spans past their caller's frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace setint::util {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // Uninitialized scratch words, valid until the enclosing Frame closes.
  std::span<std::uint64_t> alloc_u64(std::size_t n);

  // Same, but zero-filled (counting-sort tables).
  std::span<std::uint64_t> alloc_u64_zeroed(std::size_t n);

  // Observability: words currently in use / high-water across the session.
  std::size_t words_in_use() const { return words_in_use_; }
  std::size_t high_water_words() const { return high_water_words_; }
  std::uint64_t allocations() const { return allocations_; }

  // RAII rewind mark. Frames nest; destroying a frame invalidates every
  // span allocated after it was opened.
  class Frame {
   public:
    explicit Frame(ScratchArena& arena)
        : arena_(&arena),
          block_(arena.current_block_),
          offset_(arena.offset_),
          words_(arena.words_in_use_) {}
    ~Frame() {
      arena_->current_block_ = block_;
      arena_->offset_ = offset_;
      arena_->words_in_use_ = words_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    ScratchArena* arena_;
    std::size_t block_;
    std::size_t offset_;
    std::size_t words_;
  };

 private:
  struct Block {
    std::unique_ptr<std::uint64_t[]> words;
    std::size_t capacity = 0;
  };

  static constexpr std::size_t kMinBlockWords = 1024;

  std::vector<Block> blocks_;
  std::size_t current_block_ = 0;  // index of the block being bumped
  std::size_t offset_ = 0;         // words used in the current block
  std::size_t words_in_use_ = 0;
  std::size_t high_water_words_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace setint::util
