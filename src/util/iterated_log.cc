#include "util/iterated_log.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace setint::util {

double iterated_log(int times, double k) {
  if (times < 0) throw std::invalid_argument("iterated_log: times < 0");
  if (!(k > 0)) throw std::invalid_argument("iterated_log: k must be > 0");
  double v = k;
  for (int i = 0; i < times; ++i) {
    if (v <= 1.0) return 1.0;
    v = std::log2(v);
  }
  return v < 1.0 ? 1.0 : v;
}

std::uint64_t iterated_log_ceil(int times, std::uint64_t k) {
  if (k == 0) throw std::invalid_argument("iterated_log_ceil: k == 0");
  const double v = iterated_log(times, static_cast<double>(k));
  const double c = std::ceil(v);
  return c < 1.0 ? 1 : static_cast<std::uint64_t>(c);
}

int log_star(double k) {
  if (!(k > 0)) throw std::invalid_argument("log_star: k must be > 0");
  int r = 0;
  double v = k;
  while (v > 1.0) {
    v = std::log2(v);
    ++r;
    if (r > 10) break;  // log*(anything representable) < 6; safety stop
  }
  return r;
}

unsigned floor_log2(std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("floor_log2: v == 0");
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

unsigned ceil_log2(std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("ceil_log2: v == 0");
  const unsigned f = floor_log2(v);
  return (std::uint64_t{1} << f) == v ? f : f + 1;
}

}  // namespace setint::util
