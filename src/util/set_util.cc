#include "util/set_util.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "simd/kernels.h"

namespace setint::util {

bool is_canonical_set(SetView s) {
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i - 1] >= s[i]) return false;
  }
  return true;
}

void validate_set(SetView s, std::uint64_t universe) {
  if (!is_canonical_set(s)) {
    throw std::invalid_argument("set must be strictly increasing");
  }
  if (!s.empty() && s.back() >= universe) {
    throw std::invalid_argument("set element exceeds universe bound");
  }
}

Set set_intersection(SetView a, SetView b) {
  // Adaptive SIMD oracle (scalar merge / galloping / block kernels by
  // size ratio and dispatch tier — src/simd/kernels.h). The over-sized
  // allocation is the kernel's compress-store padding contract; the
  // resize trims it to the exact result.
  Set out(std::min(a.size(), b.size()) + simd::kIntersectPadding);
  const std::size_t n = simd::intersect_sorted(a, b, out);
  out.resize(n);
  return out;
}

Set set_union(SetView a, SetView b) {
  Set out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Set set_difference(SetView a, SetView b) {
  Set out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

Set set_symmetric_difference(SetView a, SetView b) {
  Set out;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

bool set_contains(SetView s, std::uint64_t x) {
  return std::binary_search(s.begin(), s.end(), x);
}

bool is_subset(SetView a, SetView b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

void append_set(BitBuffer& out, SetView s) {
  out.append_gamma64(s.size());
  if (s.empty()) return;
  out.append_gamma64(s[0]);
  for (std::size_t i = 1; i < s.size(); ++i) {
    out.append_gamma64(s[i] - s[i - 1] - 1);
  }
}

Set read_set(BitReader& in) {
  const std::uint64_t size = in.read_gamma64();
  // Every element costs at least one gamma bit, so a corrupted size prefix
  // is caught before it drives the reserve below.
  in.expect_at_least(size, 1, "set size");
  Set s;
  s.reserve(size);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t v;
    if (i == 0) {
      v = in.read_gamma64();
    } else {
      const std::uint64_t gap = in.read_gamma64();
      if (prev == std::numeric_limits<std::uint64_t>::max() ||
          gap > std::numeric_limits<std::uint64_t>::max() - prev - 1) {
        throw std::invalid_argument(
            "decode: set element delta overflows 64 bits (field 'delta')");
      }
      v = prev + gap + 1;
    }
    s.push_back(v);
    prev = v;
  }
  return s;
}

std::size_t set_encoding_cost_bits(SetView s) {
  std::size_t bits = gamma64_cost_bits(s.size());
  if (s.empty()) return bits;
  bits += gamma64_cost_bits(s[0]);
  for (std::size_t i = 1; i < s.size(); ++i) {
    bits += gamma64_cost_bits(s[i] - s[i - 1] - 1);
  }
  return bits;
}

namespace {

// Rice parameter shared by encoder and decoder: sized so the average gap
// (~universe / size) has a quotient near 1.
unsigned rice_parameter(std::uint64_t universe, std::uint64_t size) {
  if (size == 0) return 0;
  std::uint64_t ratio = universe / size;
  unsigned b = 0;
  while (ratio > 1 && b < 63) {
    ratio >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void append_set_rice(BitBuffer& out, SetView s, std::uint64_t universe) {
  out.append_gamma64(s.size());
  if (s.empty()) return;
  const unsigned b = rice_parameter(universe, s.size());
  out.append_rice(s[0], b);
  for (std::size_t i = 1; i < s.size(); ++i) {
    out.append_rice(s[i] - s[i - 1] - 1, b);
  }
}

Set read_set_rice(BitReader& in, std::uint64_t universe) {
  const std::uint64_t size = in.read_gamma64();
  const unsigned b = rice_parameter(universe, size);
  // A Rice codeword costs at least 1 + b bits, bounding any honest size.
  in.expect_at_least(size, 1 + b, "set size");
  Set s;
  s.reserve(size);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t v;
    if (i == 0) {
      v = in.read_rice(b);
    } else {
      const std::uint64_t gap = in.read_rice(b);
      if (prev == std::numeric_limits<std::uint64_t>::max() ||
          gap > std::numeric_limits<std::uint64_t>::max() - prev - 1) {
        throw std::invalid_argument(
            "decode: set element delta overflows 64 bits (field 'delta')");
      }
      v = prev + gap + 1;
    }
    s.push_back(v);
    prev = v;
  }
  return s;
}

std::size_t set_rice_cost_bits(SetView s, std::uint64_t universe) {
  std::size_t bits = gamma64_cost_bits(s.size());
  if (s.empty()) return bits;
  const unsigned b = rice_parameter(universe, s.size());
  bits += rice_cost_bits(s[0], b);
  for (std::size_t i = 1; i < s.size(); ++i) {
    bits += rice_cost_bits(s[i] - s[i - 1] - 1, b);
  }
  return bits;
}

Set random_set(Rng& rng, std::uint64_t universe, std::size_t size) {
  if (size > universe) {
    throw std::invalid_argument("random_set: size > universe");
  }
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(size * 2);
  // Floyd's algorithm: uniform without replacement, O(size) samples.
  for (std::uint64_t j = universe - size; j < universe; ++j) {
    const std::uint64_t t = rng.below(j + 1);
    chosen.insert(chosen.count(t) ? j : t);
  }
  Set out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

SetPair random_set_pair(Rng& rng, std::uint64_t universe, std::size_t k,
                        std::size_t shared) {
  if (shared > k) throw std::invalid_argument("random_set_pair: shared > k");
  if (2 * k - shared > universe) {
    throw std::invalid_argument("random_set_pair: universe too small");
  }
  // Draw 2k - shared distinct elements, then deal them out: the first
  // `shared` go to both sets, the next k - shared to S only, the rest to T
  // only. A random permutation of the pooled draw keeps the roles uniform.
  Set pool = random_set(rng, universe, 2 * k - shared);
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.below(i)]);
  }
  SetPair out;
  out.s.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(k));
  out.t.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(shared));
  out.t.insert(out.t.end(), pool.begin() + static_cast<std::ptrdiff_t>(k),
               pool.end());
  std::sort(out.s.begin(), out.s.end());
  std::sort(out.t.begin(), out.t.end());
  out.expected_intersection = set_intersection(out.s, out.t);
  return out;
}

MultiSetInstance random_multi_sets(Rng& rng, std::uint64_t universe,
                                   std::size_t players, std::size_t k,
                                   std::size_t shared) {
  if (players == 0) throw std::invalid_argument("random_multi_sets: players == 0");
  if (shared > k) throw std::invalid_argument("random_multi_sets: shared > k");
  if (universe < 2 * k + 1) {
    throw std::invalid_argument("random_multi_sets: universe too small");
  }
  MultiSetInstance out;
  out.expected_intersection = random_set(rng, universe, shared);
  const Set& core = out.expected_intersection;
  out.sets.resize(players);
  for (std::size_t p = 0; p < players; ++p) {
    std::unordered_set<std::uint64_t> fill;
    while (fill.size() < k - shared) {
      const std::uint64_t x = rng.below(universe);
      if (!set_contains(core, x)) fill.insert(x);
    }
    Set s(core.begin(), core.end());
    s.insert(s.end(), fill.begin(), fill.end());
    std::sort(s.begin(), s.end());
    out.sets[p] = std::move(s);
  }
  if (players == 1) {
    out.expected_intersection = out.sets[0];
  } else {
    // Fillers may coincide across all players by chance; evict such
    // elements from player 0 and resample so the planted core is exactly
    // the m-way intersection.
    for (;;) {
      Set inter = out.sets[0];
      for (std::size_t p = 1; p < players; ++p) {
        inter = set_intersection(inter, out.sets[p]);
      }
      Set extras = set_difference(inter, core);
      if (extras.empty()) break;
      Set& s0 = out.sets[0];
      for (std::uint64_t e : extras) {
        s0.erase(std::find(s0.begin(), s0.end(), e));
        for (;;) {
          const std::uint64_t x = rng.below(universe);
          if (!set_contains(core, x) && !set_contains(s0, x)) {
            s0.insert(std::upper_bound(s0.begin(), s0.end(), x), x);
            break;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace setint::util
