#include "util/rng.h"

#include <bit>
#include <stdexcept>

namespace setint::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ull);
  std::uint64_t m = splitmix64(s);
  return splitmix64(s) ^ m;
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::below: bound == 0");
  // Rejection sampling on the top range to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % bound;
}

double Rng::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::substream(std::uint64_t label) const {
  return Rng(mix64(seed_, label));
}

Rng Rng::substream(std::string_view label, std::uint64_t a,
                   std::uint64_t b) const {
  // FNV-1a over the label text, then fold in the numeric qualifiers.
  std::uint64_t h = 14695981039346656037ull;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return Rng(mix64(mix64(seed_, h), mix64(a, b)));
}

}  // namespace setint::util
