#include "util/bitio.h"

#include <bit>

namespace setint::util {

void BitBuffer::append_bit(bool b) {
  const std::size_t word = size_bits_ / 64;
  const unsigned offset = static_cast<unsigned>(size_bits_ % 64);
  if (word == words_.size()) words_.push_back(0);
  if (b) words_[word] |= (std::uint64_t{1} << offset);
  ++size_bits_;
}

void BitBuffer::append_bits(std::uint64_t value, unsigned width) {
  if (width > 64) throw std::invalid_argument("append_bits: width > 64");
  if (width < 64 && (value >> width) != 0) {
    throw std::invalid_argument("append_bits: value does not fit in width");
  }
  if (width == 0) return;
  // Word-wise write: place the low (64 - offset) bits into the current
  // tail word, spill the rest into a fresh word. Bit layout is identical
  // to `width` append_bit calls — only the allocator traffic changes.
  const std::size_t word = size_bits_ / 64;
  const unsigned offset = static_cast<unsigned>(size_bits_ % 64);
  if (word == words_.size()) words_.push_back(0);
  words_[word] |= value << offset;  // offset < 64 always
  const unsigned placed = 64 - offset;
  if (width > placed) words_.push_back(value >> placed);
  size_bits_ += width;
}

void BitBuffer::append_buffer(const BitBuffer& other) {
  reserve_bits(size_bits_ + other.size_bits_);
  const std::size_t full = other.size_bits_ / 64;
  for (std::size_t i = 0; i < full; ++i) append_bits(other.words_[i], 64);
  const unsigned tail = static_cast<unsigned>(other.size_bits_ % 64);
  if (tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    append_bits(other.words_[full] & mask, tail);
  }
}

void BitBuffer::reserve_bits(std::size_t bits) {
  words_.reserve((bits + 63) / 64);
}

void BitBuffer::truncate(std::size_t new_size_bits) {
  if (new_size_bits >= size_bits_) return;
  words_.resize((new_size_bits + 63) / 64);
  const unsigned tail = static_cast<unsigned>(new_size_bits % 64);
  if (tail != 0) {
    // Re-zero the dropped bits so append_bit's OR-in stays correct and
    // word-level consumers (fingerprint, mask_hash) see a normalized tail.
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  size_bits_ = new_size_bits;
}

void BitBuffer::append_elias_gamma(std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("elias gamma requires v >= 1");
  const unsigned n = 63u - static_cast<unsigned>(std::countl_zero(v));
  for (unsigned i = 0; i < n; ++i) append_bit(false);
  // v MSB-first, n + 1 bits.
  for (unsigned i = 0; i <= n; ++i) {
    append_bit((v >> (n - i)) & 1);
  }
}

void BitBuffer::append_rice(std::uint64_t v, unsigned b) {
  if (b > 63) throw std::invalid_argument("rice: parameter > 63");
  const std::uint64_t q = v >> b;
  if (q > (std::uint64_t{1} << 20)) {
    // A quotient this large means the parameter is badly mis-sized for
    // the data; refuse rather than emit megabit unary runs.
    throw std::invalid_argument("rice: quotient too large for parameter");
  }
  for (std::uint64_t i = 0; i < q; ++i) append_bit(true);
  append_bit(false);
  append_bits(v & ((std::uint64_t{1} << b) - 1), b);
}

bool BitBuffer::bit(std::size_t i) const {
  if (i >= size_bits_) throw std::out_of_range("BitBuffer::bit");
  return (words_[i / 64] >> (i % 64)) & 1;
}

void BitBuffer::toggle_bit(std::size_t i) {
  if (i >= size_bits_) throw std::out_of_range("BitBuffer::toggle_bit");
  words_[i / 64] ^= (std::uint64_t{1} << (i % 64));
}

std::uint64_t BitBuffer::fingerprint() const {
  // FNV-1a over words plus the bit length.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(size_bits_);
  const std::size_t full = size_bits_ / 64;
  for (std::size_t i = 0; i < full; ++i) mix(words_[i]);
  const unsigned tail = static_cast<unsigned>(size_bits_ % 64);
  if (tail != 0) {
    const std::uint64_t mask =
        tail == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << tail) - 1);
    mix(words_[full] & mask);
  }
  return h;
}

bool BitBuffer::operator==(const BitBuffer& other) const {
  if (size_bits_ != other.size_bits_) return false;
  for (std::size_t i = 0; i < size_bits_; ++i) {
    if (bit(i) != other.bit(i)) return false;
  }
  return true;
}

void BitBuffer::clear() {
  words_.clear();
  size_bits_ = 0;
}

std::string BitBuffer::to_string() const {
  std::string s;
  s.reserve(size_bits_);
  for (std::size_t i = 0; i < size_bits_; ++i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

bool BitReader::read_bit() {
  if (pos_ >= buffer_->size_bits()) {
    throw std::out_of_range("BitReader: read past end of message");
  }
  return buffer_->bit(pos_++);
}

std::uint64_t BitReader::read_bits(unsigned width) {
  if (width > 64) throw std::invalid_argument("read_bits: width > 64");
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    if (read_bit()) value |= (std::uint64_t{1} << i);
  }
  return value;
}

void BitReader::expect_at_least(std::uint64_t items,
                                std::uint64_t bits_per_item,
                                const char* field) {
  const std::uint64_t per = bits_per_item == 0 ? 1 : bits_per_item;
  if (items > remaining() / per) {
    throw std::invalid_argument(
        std::string("decode: length prefix '") + field + "' = " +
        std::to_string(items) + " needs " + std::to_string(per) +
        " bits/item but only " + std::to_string(remaining()) +
        " bits remain");
  }
  charge_items(items, field);
}

void BitReader::charge_items(std::uint64_t items, const char* field) {
  items_charged_ += items;
  if (limits_ != nullptr && limits_->max_decoded_items > 0 &&
      items_charged_ > limits_->max_decoded_items) {
    throw core::ResourceLimitError(
        std::string("max_decoded_items: field '") + field + "' brings the "
        "decode to " + std::to_string(items_charged_) + " items, cap " +
        std::to_string(limits_->max_decoded_items));
  }
}

std::uint64_t BitReader::read_elias_gamma() {
  unsigned n = 0;
  while (!read_bit()) {
    ++n;
    if (n > 63) {
      // 64+ leading zeros cannot start a codeword for a 64-bit value; a
      // crafted all-zeros frame lands here instead of widening past 64.
      throw std::invalid_argument(
          "decode: gamma zero-run exceeds 63 bits (field 'gamma')");
    }
  }
  std::uint64_t v = 1;  // the leading 1 bit just consumed
  for (unsigned i = 0; i < n; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(read_bit());
  }
  return v;
}

std::uint64_t BitReader::read_rice(unsigned b) {
  if (b > 63) throw std::invalid_argument("rice: parameter > 63");
  // Largest quotient whose value q << b still fits in 64 bits; anything
  // beyond is unencodable, so a longer unary run is a crafted frame.
  const std::uint64_t max_q = ~std::uint64_t{0} >> b;
  std::uint64_t q = 0;
  while (read_bit()) {
    ++q;
    if (q > (std::uint64_t{1} << 20) || q > max_q) {
      throw std::invalid_argument(
          "decode: rice unary quotient overflows the 64-bit value "
          "(field 'rice')");
    }
  }
  return (q << b) | read_bits(b);
}

BitBuffer BufferPool::acquire() {
  ++acquired_;
  if (free_.empty()) return BitBuffer{};
  ++recycled_;
  BitBuffer b = std::move(free_.back());
  free_.pop_back();
  return b;
}

void BufferPool::release(BitBuffer&& buffer) {
  buffer.clear();  // retains word capacity
  free_.push_back(std::move(buffer));
}

std::size_t rice_cost_bits(std::uint64_t v, unsigned b) {
  return static_cast<std::size_t>(v >> b) + 1 + b;
}

std::size_t gamma64_cost_bits(std::uint64_t v) {
  const std::uint64_t g = v + 1;
  const unsigned n = 63u - static_cast<unsigned>(std::countl_zero(g));
  return 2 * static_cast<std::size_t>(n) + 1;
}

}  // namespace setint::util
