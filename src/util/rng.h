// Deterministic pseudo-randomness for protocol simulation.
//
// All randomness in the library flows through Rng so that every protocol
// run is reproducible from a single 64-bit seed. Substreams derived by
// label make "the shared hash function used at stage i" a pure function of
// (master seed, label) — exactly how a common random string is consumed by
// both parties without communication.
#pragma once

#include <cstdint>
#include <string_view>

namespace setint::util {

// xoshiro256** seeded via SplitMix64. Not cryptographic; statistically
// strong enough for the hash families and sampling used here.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();

  // Uniform value in [0, bound) via rejection sampling; bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  // Uniform double in [0, 1) with 53 bits of precision.
  double unit();

  bool coin() { return next() & 1; }

  // A fresh, statistically independent generator determined by this
  // generator's seed and the given label (the generator's own state is not
  // advanced). Both parties holding the same seed derive identical
  // substreams — the mechanism behind shared randomness.
  Rng substream(std::uint64_t label) const;
  Rng substream(std::string_view label, std::uint64_t a = 0,
                std::uint64_t b = 0) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
};

// SplitMix64 single step; exposed because hash derivations elsewhere use it
// as a cheap 64-bit mixer.
std::uint64_t splitmix64(std::uint64_t& state);

// Stateless 64-bit mix of two words (used for label hashing).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

}  // namespace setint::util
