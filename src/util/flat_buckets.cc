#include "util/flat_buckets.h"

#include <cassert>

namespace setint::util {

namespace {

// Shared counting-sort skeleton: payload(i) decides what lands in data.
template <typename Payload>
FlatBuckets build_impl(std::span<const std::uint64_t> keys,
                       std::size_t num_buckets, ScratchArena& arena,
                       Payload payload) {
  const std::span<std::uint64_t> offsets =
      arena.alloc_u64_zeroed(num_buckets + 1);
  for (const std::uint64_t k : keys) {
    assert(k < num_buckets);
    ++offsets[k + 1];
  }
  for (std::size_t b = 1; b <= num_buckets; ++b) offsets[b] += offsets[b - 1];
  const std::span<std::uint64_t> data = arena.alloc_u64(keys.size());
  const std::span<std::uint64_t> cursor = arena.alloc_u64(num_buckets);
  for (std::size_t b = 0; b < num_buckets; ++b) cursor[b] = offsets[b];
  for (std::size_t i = 0; i < keys.size(); ++i) {
    data[cursor[keys[i]]++] = payload(i);
  }
  // Occupancy bitmap: one pass over the counts just computed. Trailing
  // bits beyond num_buckets stay zero (alloc_u64_zeroed), which the
  // bitmap AND kernels rely on.
  const std::span<std::uint64_t> occupancy =
      arena.alloc_u64_zeroed((num_buckets + 63) / 64);
  for (std::size_t b = 0; b < num_buckets; ++b) {
    if (offsets[b + 1] != offsets[b]) {
      occupancy[b >> 6] |= std::uint64_t{1} << (b & 63);
    }
  }
  return FlatBuckets{offsets, data, occupancy};
}

}  // namespace

FlatBuckets build_flat_buckets(std::span<const std::uint64_t> keys,
                               std::size_t num_buckets, ScratchArena& arena) {
  return build_impl(keys, num_buckets, arena,
                    [](std::size_t i) { return static_cast<std::uint64_t>(i); });
}

FlatBuckets build_flat_buckets_values(std::span<const std::uint64_t> keys,
                                      std::span<const std::uint64_t> values,
                                      std::size_t num_buckets,
                                      ScratchArena& arena) {
  assert(values.size() == keys.size());
  return build_impl(keys, num_buckets, arena,
                    [values](std::size_t i) { return values[i]; });
}

}  // namespace setint::util
