// Sorted-vector set representation and workload generation.
//
// Throughout the library a "set" is a strictly increasing
// std::vector<uint64_t> of elements drawn from a universe [0, n). SetView
// is the non-owning read-only view protocols take as input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitio.h"
#include "util/rng.h"

namespace setint::util {

using SetView = std::span<const std::uint64_t>;
using Set = std::vector<std::uint64_t>;

// True iff strictly increasing (sorted, duplicate-free).
bool is_canonical_set(SetView s);

// Throws std::invalid_argument unless is_canonical_set(s) and every element
// is < universe. Protocol entry points call this on their inputs.
void validate_set(SetView s, std::uint64_t universe);

Set set_intersection(SetView a, SetView b);
Set set_union(SetView a, SetView b);
Set set_difference(SetView a, SetView b);
Set set_symmetric_difference(SetView a, SetView b);
bool set_contains(SetView s, std::uint64_t x);
bool is_subset(SetView a, SetView b);

// Canonical self-delimiting encoding: gamma64(size), gamma64(first
// element), then gamma64 of successive deltas - 1. Injective on canonical
// sets; cost ~ |s| * (2 log2(n/|s|) + O(1)) bits for a spread-out set,
// which is how the trivial D^(1) = O(k log(n/k)) bound is realized.
void append_set(BitBuffer& out, SetView s);
Set read_set(BitReader& in);

// Exact encoded size in bits of append_set(s).
std::size_t set_encoding_cost_bits(SetView s);

// Rice-coded set encoding: gamma64(size), then element gaps Rice-coded
// with parameter b = floor(log2(universe / size)). Both parties must know
// `universe` (a protocol constant). Total cost is at most
// |s| * (log2(n/|s|) + 3) bits — within ~1.5 bits/element of the
// information-theoretic optimum log2 C(n, |s|), and roughly half the cost
// of the gamma encoding for spread-out sets. This is what makes the
// deterministic-exchange baseline as strong as possible.
void append_set_rice(BitBuffer& out, SetView s, std::uint64_t universe);
Set read_set_rice(BitReader& in, std::uint64_t universe);
std::size_t set_rice_cost_bits(SetView s, std::uint64_t universe);

// Uniform random canonical set of exactly `size` elements from [0, n).
// Requires size <= n.
Set random_set(Rng& rng, std::uint64_t universe, std::size_t size);

// A pair of sets (S, T), |S| = |T| = k, with exactly `shared` common
// elements, drawn from [0, n). Requires 2*k - shared <= n and shared <= k.
struct SetPair {
  Set s;
  Set t;
  Set expected_intersection;
};
SetPair random_set_pair(Rng& rng, std::uint64_t universe, std::size_t k,
                        std::size_t shared);

// m sets of size k over [0, n) whose m-way intersection is exactly a given
// planted common core of size `shared` (other elements are sampled to avoid
// accidentally enlarging the full intersection).
struct MultiSetInstance {
  std::vector<Set> sets;
  Set expected_intersection;
};
MultiSetInstance random_multi_sets(Rng& rng, std::uint64_t universe,
                                   std::size_t players, std::size_t k,
                                   std::size_t shared);

}  // namespace setint::util
