// Bit-level message buffers.
//
// Every bit a protocol transmits is appended to a BitBuffer; the receiving
// side decodes it with a BitReader. Channel accounting (sim/channel.h) uses
// BitBuffer::size_bits() as the ground truth for communication cost, so all
// encoders here are exact about the number of bits they emit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/resource_limits.h"

namespace setint::util {

// Append-only sequence of bits. Bits are stored LSB-first within 64-bit
// words; append_bits() writes `width` low-order bits of `value` so that
// read_bits(width) on the other side returns `value` unchanged.
class BitBuffer {
 public:
  BitBuffer() = default;

  void append_bit(bool b);

  // Appends the `width` low-order bits of `value` (LSB first). Requires
  // width <= 64 and, when width < 64, value < 2^width.
  void append_bits(std::uint64_t value, unsigned width);

  // Appends the entire contents of `other`, bit for bit.
  void append_buffer(const BitBuffer& other);

  // Elias gamma code for v >= 1: floor(log2 v) zeros, then v MSB-first.
  // Costs 2*floor(log2 v) + 1 bits.
  void append_elias_gamma(std::uint64_t v);

  // Gamma code shifted to cover zero: encodes v as gamma(v + 1).
  void append_gamma64(std::uint64_t v) { append_elias_gamma(v + 1); }

  // Rice (Golomb power-of-two) code with parameter b: quotient v >> b in
  // unary, then b remainder bits. Costs (v >> b) + 1 + b bits — the
  // near-entropy-optimal code for values around 2^b, used to ship sorted
  // deltas at ~log2(range/count) + 1.5 bits each.
  void append_rice(std::uint64_t v, unsigned b);

  std::size_t size_bits() const { return size_bits_; }
  bool empty() const { return size_bits_ == 0; }

  // Pre-allocates word storage for `bits` total bits. Never changes
  // contents; encoders that know their output size call this once instead
  // of growing word by word.
  void reserve_bits(std::size_t bits);

  // Drops every bit at index >= new_size_bits (no-op if already shorter).
  // Storage is normalized — the tail word is re-zeroed past the new end —
  // so fingerprints, equality and words() behave as if the buffer had been
  // built at the shorter size. Used by sim::Channel to strip integrity
  // frames in place instead of re-copying the body bit by bit.
  void truncate(std::size_t new_size_bits);

  bool bit(std::size_t i) const;

  // Inverts bit i in place (used by the fault-injection layer,
  // sim/fault.h). Throws std::out_of_range past the end.
  void toggle_bit(std::size_t i);

  const std::vector<std::uint64_t>& words() const { return words_; }

  // 64-bit content fingerprint (not cryptographic); used by tests and by
  // transcript digests. Equal buffers hash equal; differing buffers almost
  // surely differ.
  std::uint64_t fingerprint() const;

  bool operator==(const BitBuffer& other) const;

  void clear();

  // Debug rendering, e.g. "1011" (first-appended bit leftmost).
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_bits_ = 0;
};

// Sequential decoder over a BitBuffer. Reading past the end throws
// std::out_of_range: a protocol that decodes more bits than its peer sent
// is a bug we want loud.
//
// Byzantine hardening (docs/ROBUSTNESS.md): a reader optionally carries a
// core::ResourceLimits (not owned). Decoders charge every length prefix
// against limits->max_decoded_items via expect_at_least/charge_items, so
// a lying count is rejected with core::ResourceLimitError before it
// drives an allocation — the guard sim::Channel::reader() wires in for
// every delivered frame. Unary codes (gamma zero-runs, Rice quotients)
// are capped unconditionally: a crafted all-zeros or all-ones frame
// throws a named std::invalid_argument instead of scanning unboundedly
// or overflowing the decoded width past 64 bits.
class BitReader {
 public:
  explicit BitReader(const BitBuffer& buffer,
                     const core::ResourceLimits* limits = nullptr)
      : buffer_(&buffer), limits_(limits) {}

  bool read_bit();
  std::uint64_t read_bits(unsigned width);
  std::uint64_t read_elias_gamma();
  std::uint64_t read_gamma64() { return read_elias_gamma() - 1; }
  std::uint64_t read_rice(unsigned b);

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return buffer_->size_bits() - pos_; }
  bool exhausted() const { return remaining() == 0; }

  // Guard for length-prefixed decodes: throws std::invalid_argument naming
  // `field` unless at least `items * bits_per_item` bits remain, and
  // charges `items` against the decoded-items budget (charge_items).
  // Decoders call this right after reading a count so that a corrupted or
  // hostile length prefix is rejected BEFORE it drives an allocation or a
  // long decode loop (see docs/ROBUSTNESS.md).
  void expect_at_least(std::uint64_t items, std::uint64_t bits_per_item,
                       const char* field);

  // Adds `items` to this reader's running decoded-item count and throws
  // core::ResourceLimitError naming `field` if the total exceeds
  // limits->max_decoded_items. No-op without limits (or with the cap 0).
  void charge_items(std::uint64_t items, const char* field);

  std::uint64_t items_charged() const { return items_charged_; }
  const core::ResourceLimits* limits() const { return limits_; }

 private:
  const BitBuffer* buffer_;
  const core::ResourceLimits* limits_;
  std::size_t pos_ = 0;
  std::uint64_t items_charged_ = 0;
};

// Capacity-recycling free list of BitBuffers. acquire() returns an empty
// buffer that keeps whatever word storage a previously released buffer
// had grown, so per-message scratch encoding stops hitting the allocator
// once a session reaches steady state. Single-threaded by design: a pool
// belongs to exactly one protocol session (sim::Channel owns one per
// channel); the batch engine gives every session its own channel, so
// pools are never shared across threads.
class BufferPool {
 public:
  // Empty buffer, reusing released storage when available.
  BitBuffer acquire();

  // Returns a buffer's storage to the pool. The buffer's contents are
  // discarded (cleared); only capacity is retained.
  void release(BitBuffer&& buffer);

  // Observability: how many acquires were served from the free list.
  std::uint64_t recycled() const { return recycled_; }
  std::uint64_t acquired() const { return acquired_; }

 private:
  std::vector<BitBuffer> free_;
  std::uint64_t recycled_ = 0;
  std::uint64_t acquired_ = 0;
};

// RAII lease on a pooled buffer: acquires on construction, releases on
// scope exit. `*lease` / `lease->` reach the buffer.
class PooledBuffer {
 public:
  explicit PooledBuffer(BufferPool& pool)
      : pool_(&pool), buffer_(pool.acquire()) {}
  ~PooledBuffer() { pool_->release(std::move(buffer_)); }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  BitBuffer& operator*() { return buffer_; }
  BitBuffer* operator->() { return &buffer_; }

 private:
  BufferPool* pool_;
  BitBuffer buffer_;
};

// Exact cost in bits of the gamma64 encoding of v. Lets callers reason
// about message sizes without building a buffer.
std::size_t gamma64_cost_bits(std::uint64_t v);

// Exact cost in bits of the Rice encoding of v with parameter b.
std::size_t rice_cost_bits(std::uint64_t v, unsigned b);

}  // namespace setint::util
