// Non-uniform workload generators for robustness experiments.
//
// The paper's protocols make no distributional assumption on the inputs —
// only the SHARED bucket hash needs to behave well, and it is chosen by
// the protocol, not the adversary. These generators produce the shapes a
// database would actually see (Zipfian key popularity, clustered id
// ranges, document shingles) so E14 can check that costs match the
// uniform-workload results.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/set_util.h"

namespace setint::util {

// A set of `size` distinct keys drawn Zipf(theta)-style from [universe):
// key ranks are sampled with probability proportional to 1/rank^theta and
// mapped to scattered ids. theta = 0 degenerates to uniform; theta ~ 1 is
// the classic web/database skew.
Set zipf_set(Rng& rng, std::uint64_t universe, std::size_t size,
             double theta);

// A set of `size` keys concentrated in `clusters` contiguous runs (e.g.
// auto-increment id ranges from different shards).
Set clustered_set(Rng& rng, std::uint64_t universe, std::size_t size,
                  std::size_t clusters);

// A pair of sets with the given overlap where both sides are drawn from
// the same skewed generator; `expected_intersection` is exact.
struct SkewedPairOptions {
  std::uint64_t universe = 1u << 30;
  std::size_t k = 1024;
  std::size_t shared = 512;
  double zipf_theta = 0.0;    // > 0 selects the Zipf generator
  std::size_t clusters = 0;   // > 0 selects the clustered generator
};
SetPair skewed_set_pair(Rng& rng, const SkewedPairOptions& options);

}  // namespace setint::util
