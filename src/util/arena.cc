#include "util/arena.h"

#include <algorithm>
#include <cstring>

namespace setint::util {

std::span<std::uint64_t> ScratchArena::alloc_u64(std::size_t n) {
  ++allocations_;
  words_in_use_ += n;
  high_water_words_ = std::max(high_water_words_, words_in_use_);
  if (n == 0) return {};
  // Advance through existing blocks (their capacity survives frame
  // rewinds) before growing a new one.
  while (current_block_ < blocks_.size()) {
    Block& block = blocks_[current_block_];
    if (block.capacity - offset_ >= n) {
      std::uint64_t* out = block.words.get() + offset_;
      offset_ += n;
      return {out, n};
    }
    ++current_block_;
    offset_ = 0;
  }
  Block fresh;
  fresh.capacity = std::max({kMinBlockWords, n,
                             blocks_.empty() ? 0 : blocks_.back().capacity * 2});
  fresh.words = std::make_unique_for_overwrite<std::uint64_t[]>(fresh.capacity);
  blocks_.push_back(std::move(fresh));
  current_block_ = blocks_.size() - 1;
  offset_ = n;
  return {blocks_.back().words.get(), n};
}

std::span<std::uint64_t> ScratchArena::alloc_u64_zeroed(std::size_t n) {
  const std::span<std::uint64_t> out = alloc_u64(n);
  std::memset(out.data(), 0, n * sizeof(std::uint64_t));
  return out;
}

}  // namespace setint::util
