// Iterated logarithms: the paper's round/communication tradeoff is stated
// in terms of log^(r) k (log applied r times) and log* k (the number of
// applications needed to reach <= 1). All protocol parameter schedules in
// core/ consult these functions.
#pragma once

#include <cstdint>

namespace setint::util {

// Base-2 logarithm iterated `times` times, as a real value:
//   iterated_log(0, k) = k
//   iterated_log(1, k) = log2 k
//   iterated_log(2, k) = log2 log2 k, ...
// Once the value drops to <= 1 further iterations would be undefined; the
// result is clamped to 1.0 from there on (matching the convention that
// log^(r) k = O(1) for r >= log* k).
double iterated_log(int times, double k);

// Integer convenience: ceil(iterated_log(times, k)) clamped to >= 1.
std::uint64_t iterated_log_ceil(int times, std::uint64_t k);

// log* k: smallest r >= 0 with iterated_log(r, k) <= 1.
int log_star(double k);

// floor(log2 v) for v >= 1.
unsigned floor_log2(std::uint64_t v);

// ceil(log2 v) for v >= 1; ceil_log2(1) == 0.
unsigned ceil_log2(std::uint64_t v);

}  // namespace setint::util
