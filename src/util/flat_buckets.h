// Flat CSR bucket tables built by counting sort.
//
// The protocol hot paths (bucket-EQ^k, verification-tree levels, Lemma 3.3
// exchanges) used to materialise vector-of-vector bucket tables: one heap
// allocation per bucket, pointer-chasing on every scan. A FlatBuckets view
// is the CSR equivalent — one offsets array of size num_buckets + 1 and one
// data array of size n, both bump-allocated from the session's ScratchArena,
// filled by a stable counting sort.
//
// Stability is load-bearing for transcript bit-identity: the original code
// appended elements to buckets in input order, and counting sort reproduces
// exactly that per-bucket order, so every downstream encode walks elements
// in the same sequence as before.
//
// Lifetime: the returned spans live in the caller's arena frame (see
// util/arena.h); a FlatBuckets must not outlive the frame it was built in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/arena.h"

namespace setint::util {

struct FlatBuckets {
  // offsets.size() == num_buckets + 1; bucket b occupies
  // data[offsets[b] .. offsets[b + 1]).
  std::span<const std::uint64_t> offsets;
  std::span<const std::uint64_t> data;
  // One bit per bucket (ceil(num_buckets / 64) words, trailing bits 0):
  // bit b set iff bucket b is non-empty. Built alongside the counting
  // sort so the SIMD bitmap kernels (simd::bitmap_and_count and friends)
  // can join two tables' membership without touching the offsets — the
  // StormBitmaps-style fast path core/bucket_eq uses to skip buckets
  // empty on either side.
  std::span<const std::uint64_t> occupancy;

  std::size_t num_buckets() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t size() const { return data.size(); }
  std::span<const std::uint64_t> bucket(std::size_t b) const {
    return data.subspan(offsets[b], offsets[b + 1] - offsets[b]);
  }
  std::size_t bucket_size(std::size_t b) const {
    return offsets[b + 1] - offsets[b];
  }
  bool occupied(std::size_t b) const {
    return (occupancy[b >> 6] >> (b & 63)) & 1u;
  }
};

// Groups the original indices 0..keys.size() by keys[i] (each key must be
// < num_buckets): bucket b holds, in increasing i order, every index i with
// keys[i] == b.
FlatBuckets build_flat_buckets(std::span<const std::uint64_t> keys,
                               std::size_t num_buckets, ScratchArena& arena);

// Same grouping, but stores values[i] instead of the index i — the common
// case where the bucketed payload is the element itself and no companion
// array is consulted. keys and values must have equal length.
FlatBuckets build_flat_buckets_values(std::span<const std::uint64_t> keys,
                                      std::span<const std::uint64_t> values,
                                      std::size_t num_buckets,
                                      ScratchArena& arena);

}  // namespace setint::util
