#include "util/workloads.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace setint::util {

namespace {

// Continuous inverse-CDF sample of a power-law rank in [1, max_rank].
double sample_rank(Rng& rng, double max_rank, double theta) {
  const double u = rng.unit();
  if (theta == 1.0) {
    return std::pow(max_rank, u);
  }
  const double one_minus = 1.0 - theta;
  const double top = std::pow(max_rank, one_minus);
  return std::pow(1.0 + u * (top - 1.0), 1.0 / one_minus);
}

// Fixed mixing of rank -> id, so popular ranks land on scattered ids
// (deterministic across both parties' view of the workload).
std::uint64_t rank_to_id(std::uint64_t rank, std::uint64_t universe) {
  std::uint64_t state = rank * 0x9e3779b97f4a7c15ull + 0x243f6a8885a308d3ull;
  return splitmix64(state) % universe;
}

}  // namespace

Set zipf_set(Rng& rng, std::uint64_t universe, std::size_t size,
             double theta) {
  if (size > universe / 2) {
    throw std::invalid_argument("zipf_set: size too large for universe");
  }
  if (theta < 0.0 || theta > 2.0) {
    throw std::invalid_argument("zipf_set: theta out of [0, 2]");
  }
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(size * 2);
  const double max_rank = static_cast<double>(universe);
  std::size_t attempts = 0;
  while (chosen.size() < size) {
    if (++attempts > size * 200 + 1000) {
      throw std::runtime_error("zipf_set: sampling did not converge");
    }
    const auto rank =
        static_cast<std::uint64_t>(sample_rank(rng, max_rank, theta));
    chosen.insert(rank_to_id(rank, universe));
  }
  Set out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

Set clustered_set(Rng& rng, std::uint64_t universe, std::size_t size,
                  std::size_t clusters) {
  if (clusters == 0) throw std::invalid_argument("clustered_set: 0 clusters");
  if (size > universe / 2) {
    throw std::invalid_argument("clustered_set: size too large");
  }
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(size * 2);
  const std::size_t per_cluster = (size + clusters - 1) / clusters;
  while (chosen.size() < size) {
    const std::uint64_t start = rng.below(universe);
    for (std::size_t i = 0; i < per_cluster && chosen.size() < size; ++i) {
      chosen.insert((start + i) % universe);
    }
  }
  Set out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

SetPair skewed_set_pair(Rng& rng, const SkewedPairOptions& options) {
  if (options.shared > options.k) {
    throw std::invalid_argument("skewed_set_pair: shared > k");
  }
  const std::size_t pool_size = 2 * options.k - options.shared;
  Set pool;
  if (options.zipf_theta > 0.0) {
    pool = zipf_set(rng, options.universe, pool_size, options.zipf_theta);
  } else if (options.clusters > 0) {
    pool = clustered_set(rng, options.universe, pool_size, options.clusters);
  } else {
    pool = random_set(rng, options.universe, pool_size);
  }
  // Deal the pool: first `shared` to both, next k - shared to S, rest to T
  // (after a shuffle so roles are uniform over the skewed pool).
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.below(i)]);
  }
  SetPair out;
  out.s.assign(pool.begin(),
               pool.begin() + static_cast<std::ptrdiff_t>(options.k));
  out.t.assign(pool.begin(),
               pool.begin() + static_cast<std::ptrdiff_t>(options.shared));
  out.t.insert(out.t.end(),
               pool.begin() + static_cast<std::ptrdiff_t>(options.k),
               pool.end());
  std::sort(out.s.begin(), out.s.end());
  std::sort(out.t.begin(), out.t.end());
  out.expected_intersection = set_intersection(out.s, out.t);
  return out;
}

}  // namespace setint::util
