// Portable scalar reference kernels. Every vector tier is
// differential-tested against these; the hash lanes reproduce the exact
// arithmetic of hashing::Reducer64 / hashing::Montgomery64 from raw
// constants so that dispatching here is bit-identical to the pre-SIMD
// code paths.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels_internal.h"

namespace setint::simd::scalar {

namespace {

// a % d via the Lemire-Kaser magic number M = ceil(2^128/d), given as two
// 64-bit halves. Mirrors Reducer64::mod term for term: first M*a mod
// 2^128, then the 128x64 mulhi with d.
inline std::uint64_t reduce_one(const ReduceConstants& c, std::uint64_t a) {
  const unsigned __int128 p0 = static_cast<unsigned __int128>(c.m_lo) * a;
  const std::uint64_t lo = static_cast<std::uint64_t>(p0);
  const std::uint64_t hi =
      static_cast<std::uint64_t>(p0 >> 64) + c.m_hi * a;  // mod 2^64
  const unsigned __int128 bottom =
      (static_cast<unsigned __int128>(lo) * c.d) >> 64;
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(hi) * c.d + bottom) >> 64);
}

// Montgomery REDC, exactly as Montgomery64::redc.
inline std::uint64_t redc(std::uint64_t m, std::uint64_t neg_inv,
                          unsigned __int128 x) {
  const std::uint64_t q = static_cast<std::uint64_t>(x) * neg_inv;
  const std::uint64_t t = static_cast<std::uint64_t>(
      (x + static_cast<unsigned __int128>(q) * m) >> 64);
  return t >= m ? t - m : t;
}

}  // namespace

void reduce_mod_many(const ReduceConstants& c, const std::uint64_t* xs,
                     std::size_t n, std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = reduce_one(c, xs[i]);
}

void pairwise_hash_many(const PairwiseConstants& c, const std::uint64_t* xs,
                        std::size_t n, std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t xr = reduce_one(c.red_p, xs[i]);
    const std::uint64_t ax =
        redc(c.p, c.neg_inv, static_cast<unsigned __int128>(c.a_mont) * xr);
    const std::uint64_t space = c.p - ax;
    const std::uint64_t v = c.b >= space ? c.b - space : ax + c.b;
    out[i] = reduce_one(c.red_t, v);
  }
}

std::size_t intersect_merge(const std::uint64_t* a, std::size_t na,
                            const std::uint64_t* b, std::size_t nb,
                            std::uint64_t* out) {
  std::size_t i = 0, j = 0, c = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[c++] = a[i];
      ++i;
      ++j;
    }
  }
  return c;
}

namespace {

// First index >= start with arr[index] >= key (n if none): exponential
// probe doubling from start, then binary search inside the bracket.
inline std::size_t gallop_lower_bound(const std::uint64_t* arr, std::size_t n,
                                      std::size_t start, std::uint64_t key) {
  if (start >= n || arr[start] >= key) return start;
  std::size_t offset = 1;
  while (start + offset < n && arr[start + offset] < key) offset <<= 1;
  std::size_t lo = start + (offset >> 1);       // arr[lo] < key
  std::size_t hi = std::min(n, start + offset); // arr[hi] >= key, or hi == n
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (arr[mid] < key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

std::size_t intersect_gallop(const std::uint64_t* small, std::size_t ns,
                             const std::uint64_t* large, std::size_t nl,
                             std::uint64_t* out) {
  std::size_t pos = 0, c = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    pos = gallop_lower_bound(large, nl, pos, small[i]);
    if (pos == nl) break;
    if (large[pos] == small[i]) out[c++] = small[i];
  }
  return c;
}

std::uint64_t bitmap_and_count(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<std::uint64_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<std::uint64_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return c0 + c1 + c2 + c3;
}

void bitmap_and(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] & b[i];
}

}  // namespace setint::simd::scalar
