// Dispatch layer of the SIMD engine: validates arguments, consults the
// tier ladder (simd/dispatch.h), and routes each kernel-family call to
// the best implementation the active tier allows. This is the only file
// that knows which tiers implement which family.

#include "simd/kernels.h"

#include <algorithm>
#include <stdexcept>

#include "simd/kernels_internal.h"

namespace setint::simd {

namespace {

// Per-family routing for the hash lanes. Measured crossover (see
// docs/PERFORMANCE.md "honest numbers"): the scalar pipeline's 64-bit
// mulhi is one MULX, while AVX2 has no 64-bit multiply and must emulate
// it from four 32-bit limb products — on AVX2-class cores the emulation
// LOSES to scalar by ~2x, so default dispatch keeps hash lanes on the
// scalar tier at every hardware level. A pinned tier (ScopedTierOverride
// or SETINT_FORCE_*) is honored so the differential suites and exp_cpu's
// E-CPU.7 gate still execute the vector hash kernels; the lanes also
// stay the landing slot for AVX-512 IFMA parts, where 52-bit multipliers
// flip the crossover.
Tier hash_lane_tier() {
  return tier_forced() ? active_tier() : Tier::kScalar;
}

}  // namespace

void reduce_mod_many(const ReduceConstants& c,
                     std::span<const std::uint64_t> xs,
                     std::span<std::uint64_t> out) {
  if (out.size() < xs.size()) {
    throw std::invalid_argument("simd::reduce_mod_many: output too small");
  }
#if defined(__x86_64__) || defined(_M_X64)
  // sse41 tier has no hash lanes (2-wide mulhi does not pay; see
  // kernels_internal.h) — only avx2 diverges from scalar here.
  if (hash_lane_tier() == Tier::kAvx2) {
    avx2::reduce_mod_many(c, xs.data(), xs.size(), out.data());
    return;
  }
#endif
  scalar::reduce_mod_many(c, xs.data(), xs.size(), out.data());
}

void pairwise_hash_many(const PairwiseConstants& c,
                        std::span<const std::uint64_t> xs,
                        std::span<std::uint64_t> out) {
  if (out.size() < xs.size()) {
    throw std::invalid_argument("simd::pairwise_hash_many: output too small");
  }
#if defined(__x86_64__) || defined(_M_X64)
  if (hash_lane_tier() == Tier::kAvx2) {
    avx2::pairwise_hash_many(c, xs.data(), xs.size(), out.data());
    return;
  }
#endif
  scalar::pairwise_hash_many(c, xs.data(), xs.size(), out.data());
}

const char* intersect_algo_name(IntersectAlgo algo) {
  switch (algo) {
    case IntersectAlgo::kScalarMerge:
      return "scalar_merge";
    case IntersectAlgo::kGallop:
      return "gallop";
    case IntersectAlgo::kBlock:
      return "block";
    case IntersectAlgo::kBlockGallop:
      return "block_gallop";
  }
  return "unknown";
}

IntersectAlgo plan_intersect(std::size_t na, std::size_t nb, Tier tier) {
  if (na > nb) std::swap(na, nb);
  if (na == 0) return IntersectAlgo::kScalarMerge;  // nothing to intersect
  const std::size_t ratio = nb / na;
  if (ratio >= kBlockGallopRatio) {
    return tier >= Tier::kSse41 ? IntersectAlgo::kBlockGallop
                                : IntersectAlgo::kGallop;
  }
  if (ratio >= kGallopRatio) return IntersectAlgo::kGallop;
  if (tier >= Tier::kSse41 && na >= kBlockMinSmall) {
    return IntersectAlgo::kBlock;
  }
  return IntersectAlgo::kScalarMerge;
}

namespace {

std::size_t run_intersect(IntersectAlgo algo, Tier tier,
                          const std::uint64_t* a, std::size_t na,
                          const std::uint64_t* b, std::size_t nb,
                          std::uint64_t* out) {
  // The gallop family wants (small, large); intersection is symmetric.
  const std::uint64_t* s = a;
  const std::uint64_t* l = b;
  std::size_t ns = na, nl = nb;
  if (ns > nl) {
    std::swap(s, l);
    std::swap(ns, nl);
  }
  switch (algo) {
    case IntersectAlgo::kScalarMerge:
      return scalar::intersect_merge(a, na, b, nb, out);
    case IntersectAlgo::kGallop:
      return scalar::intersect_gallop(s, ns, l, nl, out);
    case IntersectAlgo::kBlock:
#if defined(__x86_64__) || defined(_M_X64)
      if (tier == Tier::kAvx2) return avx2::intersect_block(a, na, b, nb, out);
      if (tier == Tier::kSse41) {
        return sse41::intersect_block(a, na, b, nb, out);
      }
#endif
      // Scalar tier: the block kernel's natural degradation is the merge.
      return scalar::intersect_merge(a, na, b, nb, out);
    case IntersectAlgo::kBlockGallop:
#if defined(__x86_64__) || defined(_M_X64)
      if (tier == Tier::kAvx2) {
        return avx2::intersect_block_gallop(s, ns, l, nl, out);
      }
      if (tier == Tier::kSse41) {
        return sse41::intersect_block_gallop(s, ns, l, nl, out);
      }
#endif
      return scalar::intersect_gallop(s, ns, l, nl, out);
  }
  return scalar::intersect_merge(a, na, b, nb, out);
}

void check_out_capacity(std::size_t na, std::size_t nb, std::size_t out_size) {
  const std::size_t bound = std::min(na, nb) + kIntersectPadding;
  if (out_size < bound) {
    throw std::invalid_argument(
        "simd::intersect_sorted: output smaller than min(na, nb) + padding");
  }
}

}  // namespace

std::size_t intersect_sorted(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b,
                             std::span<std::uint64_t> out) {
  check_out_capacity(a.size(), b.size(), out.size());
  const Tier tier = active_tier();
  const IntersectAlgo algo = plan_intersect(a.size(), b.size(), tier);
  return run_intersect(algo, tier, a.data(), a.size(), b.data(), b.size(),
                       out.data());
}

std::size_t intersect_sorted_with(IntersectAlgo algo, Tier tier,
                                  std::span<const std::uint64_t> a,
                                  std::span<const std::uint64_t> b,
                                  std::span<std::uint64_t> out) {
  check_out_capacity(a.size(), b.size(), out.size());
  // Clamp to the hardware: forcing avx2 on a box without it must degrade,
  // never fault. (Deliberately detected_tier, not active_tier: the forced
  // entry exists to reach every real tier even under SETINT_FORCE_SCALAR.)
  const Tier hw = detected_tier();
  if (tier > hw) tier = hw;
  return run_intersect(algo, tier, a.data(), a.size(), b.data(), b.size(),
                       out.data());
}

std::uint64_t bitmap_and_count(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("simd::bitmap_and_count: length mismatch");
  }
#if defined(__x86_64__) || defined(_M_X64)
  const Tier tier = active_tier();
  if (tier == Tier::kAvx2) {
    return avx2::bitmap_and_count(a.data(), b.data(), a.size());
  }
  if (tier == Tier::kSse41) {
    return sse41::bitmap_and_count(a.data(), b.data(), a.size());
  }
#endif
  return scalar::bitmap_and_count(a.data(), b.data(), a.size());
}

void bitmap_and(std::span<const std::uint64_t> a,
                std::span<const std::uint64_t> b,
                std::span<std::uint64_t> out) {
  if (a.size() != b.size() || out.size() < a.size()) {
    throw std::invalid_argument("simd::bitmap_and: length mismatch");
  }
#if defined(__x86_64__) || defined(_M_X64)
  const Tier tier = active_tier();
  if (tier == Tier::kAvx2) {
    avx2::bitmap_and(a.data(), b.data(), out.data(), a.size());
    return;
  }
  if (tier == Tier::kSse41) {
    sse41::bitmap_and(a.data(), b.data(), out.data(), a.size());
    return;
  }
#endif
  scalar::bitmap_and(a.data(), b.data(), out.data(), a.size());
}

}  // namespace setint::simd
