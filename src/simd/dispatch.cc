#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace setint::simd {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports reads cpuid once per process under the hood
  // (libgcc caches the feature words after __builtin_cpu_init).
  f.avx2 = __builtin_cpu_supports("avx2");
  f.sse4_1 = __builtin_cpu_supports("sse4.1");
  f.popcnt = __builtin_cpu_supports("popcnt");
#endif
  return f;
}

Tier tier_from_features(const CpuFeatures& f) {
  // POPCNT gates both vector tiers: the SSE4.1 kernels lean on hardware
  // popcount and every AVX2 part has it anyway.
  if (f.avx2 && f.popcnt) return Tier::kAvx2;
  if (f.sse4_1 && f.popcnt) return Tier::kSse41;
  return Tier::kScalar;
}

// Environment cap, parsed once. SETINT_FORCE_SCALAR=1 (or any value other
// than "0"/"") wins over SETINT_FORCE_TIER.
struct EnvTier {
  Tier tier;
  bool forced;  // an env override was present and recognized
};

EnvTier env_capped_tier() {
  const Tier hw = tier_from_features(detected_features());
  const char* scalar = std::getenv("SETINT_FORCE_SCALAR");
  if (scalar != nullptr && scalar[0] != '\0' &&
      !(scalar[0] == '0' && scalar[1] == '\0')) {
    return {Tier::kScalar, true};
  }
  const char* name = std::getenv("SETINT_FORCE_TIER");
  if (name != nullptr) {
    Tier requested = hw;
    bool recognized = false;
    if (std::strcmp(name, "scalar") == 0) {
      requested = Tier::kScalar;
      recognized = true;
    } else if (std::strcmp(name, "sse41") == 0) {
      requested = Tier::kSse41;
      recognized = true;
    } else if (std::strcmp(name, "avx2") == 0) {
      requested = Tier::kAvx2;
      recognized = true;
    }
    // Clamp: forcing a tier the hardware lacks must not SIGILL.
    if (static_cast<int>(requested) < static_cast<int>(hw)) {
      return {requested, recognized};
    }
    return {hw, recognized};
  }
  return {hw, false};
}

const EnvTier& env_tier_cached() {
  static const EnvTier env = env_capped_tier();
  return env;
}

// -1 = no override; otherwise the forced tier (already clamped).
std::atomic<int> g_override{-1};

}  // namespace

const CpuFeatures& detected_features() {
  static const CpuFeatures features = detect();
  return features;
}

Tier detected_tier() { return tier_from_features(detected_features()); }

Tier active_tier() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  return env_tier_cached().tier;
}

bool tier_forced() {
  return g_override.load(std::memory_order_relaxed) >= 0 ||
         env_tier_cached().forced;
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse41:
      return "sse41";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

ScopedTierOverride::ScopedTierOverride(Tier tier)
    : previous_(g_override.load(std::memory_order_relaxed)) {
  int requested = static_cast<int>(tier);
  const int hw = static_cast<int>(detected_tier());
  if (requested > hw) requested = hw;
  g_override.store(requested, std::memory_order_relaxed);
}

ScopedTierOverride::~ScopedTierOverride() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace setint::simd
