// Runtime CPU dispatch for the SIMD local-compute engine.
//
// The wire format is sacred; the local compute between messages is not.
// Every kernel in src/simd/ exists in up to three tiers — portable scalar,
// SSE4.1, AVX2 — selected ONCE per process from cpuid, so callers never
// see intrinsics and a binary built with the per-file ISA flags still runs
// on any x86-64 (the AVX2 translation unit is only entered when cpuid says
// the instructions exist). Every tier computes bit-identical results: the
// golden transcripts and all protocol digests are pinned across forced
// dispatch modes (tests/golden_test.cc, tests/transcript_digest_test.cc,
// bench/exp_cpu E-CPU.0), and tests/simd_test.cc drives every tier against
// the scalar reference on randomized inputs.
//
// Overrides, in precedence order:
//   1. simd::ScopedTierOverride — test-only forced dispatch, clamped to
//      what the hardware supports;
//   2. SETINT_FORCE_SCALAR=1 — environment knob for whole-process scalar
//      runs (the ci.sh simd lane re-runs the label slice under it);
//   3. SETINT_FORCE_TIER=scalar|sse41|avx2 — pin a specific tier, again
//      clamped to the detected feature set.
//
// See docs/PERFORMANCE.md ("The SIMD dispatch ladder") for the kernel
// inventory and the selection heuristics.
#pragma once

#include <cstdint>

namespace setint::simd {

// Kernel tiers, ordered: a higher tier implies every capability of the
// lower ones. kSse41 additionally assumes POPCNT (true on all SSE4.1-era
// and later x86-64 parts we dispatch to; detection checks both bits).
enum class Tier : int {
  kScalar = 0,
  kSse41 = 1,
  kAvx2 = 2,
};

inline constexpr int kNumTiers = 3;

// CPU feature bits the engine cares about, as reported by cpuid. Recorded
// in every BENCH_*.json environment block (bench/bench_util.h).
struct CpuFeatures {
  bool avx2 = false;
  bool sse4_1 = false;
  bool popcnt = false;
};

// Features of the machine we are running on (detected once, cached).
const CpuFeatures& detected_features();

// Best tier the hardware supports (ignores overrides).
Tier detected_tier();

// The tier kernels actually dispatch to right now: detected_tier() capped
// by the environment overrides and any live ScopedTierOverride.
Tier active_tier();

// True when active_tier() comes from an override (scoped or environment)
// rather than plain hardware detection. Kernel families whose measured
// crossover says a narrower tier wins by default (the 64-bit hash lanes:
// scalar mulx beats AVX2 32-bit-limb emulation) still honor a pinned
// tier, so forced-dispatch differential suites reach every code path.
bool tier_forced();

// Stable lowercase name ("scalar", "sse41", "avx2") — used in BENCH
// environment blocks, bench_compare classification, and test logs.
const char* tier_name(Tier tier);

// Test/bench-only forced dispatch. Requests above detected_tier() are
// clamped (you cannot execute AVX2 code on a box without AVX2). Nests;
// restores the previous override on destruction. NOT thread-safe — the
// differential suites that use it are single-threaded by design.
class ScopedTierOverride {
 public:
  explicit ScopedTierOverride(Tier tier);
  ~ScopedTierOverride();
  ScopedTierOverride(const ScopedTierOverride&) = delete;
  ScopedTierOverride& operator=(const ScopedTierOverride&) = delete;

 private:
  int previous_;
};

}  // namespace setint::simd
