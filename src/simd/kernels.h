// The stable kernel API of the SIMD local-compute engine.
//
// Three kernel families, each dispatched at runtime across the tier
// ladder of simd/dispatch.h (scalar / SSE4.1 / AVX2). Callers never see
// intrinsics; they see plain functions over spans whose results are
// bit-identical on every tier:
//
//   1. hash lanes — array-batched Barrett/Montgomery evaluation for the
//      hash families in src/hashing/ (the pairwise Carter-Wegman pipeline
//      and plain fixed-divisor reduction). The AVX2 tier runs 4-wide
//      64-bit mulhi pipelines built from 32-bit limb products; the math is
//      exact, so seeded draw order and golden transcripts are unchanged.
//      Default dispatch keeps these lanes on the batched scalar pipeline
//      (measured crossover: scalar MULX beats the limb emulation on
//      AVX2-class cores — kernels.cc hash_lane_tier); pinning a tier via
//      ScopedTierOverride / SETINT_FORCE_* executes the vector kernels.
//   2. adaptive sorted-set intersection — an intersectInt-style oracle
//      (Lemire/Kurz lineage): a size-ratio heuristic selects scalar merge,
//      galloping, a SIMD block-compare kernel, or SIMD galloping. Backs
//      util::set_intersection (the plaintext baseline, result
//      verification, and the per-bucket set-reconcile steps).
//   3. bitmap AND + popcount — StormBitmaps-style bucket-membership
//      kernels over the occupancy bitmaps that util::FlatBuckets CSR
//      tables carry (core/bucket_eq joins them to skip memberless
//      buckets).
//
// Contract shared by every kernel: results equal the scalar reference for
// all inputs (randomized differential suite: tests/simd_test.cc, pinned
// again at bench time by exp_cpu's scalar-vs-SIMD gate). The selection
// heuristic and crossover table are documented in docs/PERFORMANCE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "simd/dispatch.h"

namespace setint::simd {

// ---------------------------------------------------------------------------
// Family 1: hash lanes
// ---------------------------------------------------------------------------

// Constants for a Lemire-Kaser fixed-divisor reduction: M = ceil(2^128/d)
// split into 64-bit halves, plus d itself. Mirrors hashing::Reducer64
// (which exposes them via magic_hi()/magic_lo()).
struct ReduceConstants {
  std::uint64_t m_hi = 0;
  std::uint64_t m_lo = 0;
  std::uint64_t d = 1;
};

// out[i] = xs[i] mod d, exactly as hashing::Reducer64::mod computes it.
// Requires out.size() >= xs.size().
void reduce_mod_many(const ReduceConstants& c,
                     std::span<const std::uint64_t> xs,
                     std::span<std::uint64_t> out);

// Constants for the full Carter-Wegman pipeline
// ((a*x + b) mod p) mod t with a Montgomery product: everything
// hashing::PairwiseHash precomputes, flattened to PODs so the kernel
// layer needs no hashing types.
struct PairwiseConstants {
  std::uint64_t p = 0;
  std::uint64_t b = 0;
  std::uint64_t t = 0;
  std::uint64_t a_mont = 0;   // a in Montgomery form (R = 2^64)
  std::uint64_t neg_inv = 0;  // -p^-1 mod 2^64 (REDC constant)
  ReduceConstants red_p;      // x mod p
  ReduceConstants red_t;      // v mod t
};

// out[i] = ((a*xs[i] + b) mod p) mod t, bit-identical to the scalar
// PairwiseHash::operator() chain. Requires out.size() >= xs.size().
void pairwise_hash_many(const PairwiseConstants& c,
                        std::span<const std::uint64_t> xs,
                        std::span<std::uint64_t> out);

// ---------------------------------------------------------------------------
// Family 2: adaptive sorted-set intersection
// ---------------------------------------------------------------------------

// The algorithms behind the adaptive oracle. Selection is by size ratio
// (crossover table in docs/PERFORMANCE.md); every algorithm produces the
// identical output on canonical inputs.
enum class IntersectAlgo : int {
  kScalarMerge = 0,  // textbook two-pointer merge
  kGallop = 1,       // per-element exponential + binary search
  kBlock = 2,        // SIMD block-compare (v1-style, 2- or 4-wide)
  kBlockGallop = 3,  // galloping with a SIMD block finish
};

const char* intersect_algo_name(IntersectAlgo algo);

// The heuristic: which algorithm intersect_sorted would run for input
// lengths (na, nb) at `tier`. Exposed so the planner's local-cost model
// and the docs' crossover table stay truthful to the dispatcher.
IntersectAlgo plan_intersect(std::size_t na, std::size_t nb, Tier tier);

// Crossover constants of plan_intersect (documented, tested, and quoted
// by docs/PERFORMANCE.md — change all three places together).
inline constexpr std::size_t kGallopRatio = 50;       // large/small >= 50
inline constexpr std::size_t kBlockGallopRatio = 1000;
inline constexpr std::size_t kBlockMinSmall = 16;     // block needs >= 16

// SIMD compress-stores write whole vectors: `out` must have room for
// min(a.size(), b.size()) + kIntersectPadding elements on EVERY tier (the
// requirement is tier-independent so buffer sizing cannot depend on
// dispatch).
inline constexpr std::size_t kIntersectPadding = 8;

// Intersection of two canonical (strictly increasing) sets into out;
// returns the number of elements written. Output is strictly increasing.
// Throws std::invalid_argument when out is smaller than the padded bound.
std::size_t intersect_sorted(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b,
                             std::span<std::uint64_t> out);

// Forced algorithm + tier entry point for the differential suite and the
// bench lane. `tier` above the detected maximum is clamped; kBlock /
// kBlockGallop at the scalar tier degrade to their scalar counterparts.
std::size_t intersect_sorted_with(IntersectAlgo algo, Tier tier,
                                  std::span<const std::uint64_t> a,
                                  std::span<const std::uint64_t> b,
                                  std::span<std::uint64_t> out);

// ---------------------------------------------------------------------------
// Family 3: bitmap AND + popcount
// ---------------------------------------------------------------------------

// popcount(a & b) over two equal-length word arrays (StormBitmaps-style
// intersect-count). Requires a.size() == b.size().
std::uint64_t bitmap_and_count(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b);

// out[i] = a[i] & b[i]. Requires equal lengths, out.size() >= a.size().
void bitmap_and(std::span<const std::uint64_t> a,
                std::span<const std::uint64_t> b,
                std::span<std::uint64_t> out);

// Bit test helper for occupancy bitmaps (bit i of the word array).
inline bool bitmap_test(std::span<const std::uint64_t> bits, std::size_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1u;
}

}  // namespace setint::simd
