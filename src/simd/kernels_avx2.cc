// AVX2 tier: 4-wide 64-bit kernels. This translation unit is compiled
// with -mavx2 -mpopcnt (per-file flags in src/CMakeLists.txt) and must
// only be entered when the dispatcher has confirmed those features via
// cpuid — nothing here may be called from generic code paths directly.
//
// All arithmetic is exact: the mulhi pipelines decompose 64x64->128
// multiplies into 32-bit limb products (_mm256_mul_epu32) and reassemble
// the precise high/low halves, so every lane equals the scalar
// unsigned __int128 computation bit for bit.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels_internal.h"

namespace setint::simd::avx2 {

namespace {

// NOTE: no namespace-scope __m256i constants in this TU — their dynamic
// initializers would execute AVX2 instructions at program startup even on
// hardware the dispatcher would never route here. All vector constants
// are materialized inside the functions (hoisted by the compiler).

// Exact 64x64 -> 128 multiply per lane: four 32x32 partial products.
// t = (ll >> 32) + lo32(lh) + lo32(hl) fits 64 bits (< 3 * 2^32); the
// final hi never overflows because the true product high half is < 2^64.
inline void mul64x64(__m256i a, __m256i b, __m256i* hi, __m256i* lo) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffff);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i t = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(ll, 32), _mm256_and_si256(lh, mask32)),
      _mm256_and_si256(hl, mask32));
  *lo = _mm256_or_si256(_mm256_and_si256(ll, mask32),
                        _mm256_slli_epi64(t, 32));
  *hi = _mm256_add_epi64(
      _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(hl, 32), _mm256_srli_epi64(t, 32)));
}

// High 64 bits only (the low half of the product is discarded).
inline __m256i mulhi64(__m256i a, __m256i b) {
  __m256i hi, lo;
  mul64x64(a, b, &hi, &lo);
  return hi;
}

// Low 64 bits of the per-lane product (cross terms shifted into place).
inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
                       _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                          _mm256_slli_epi64(cross, 32));
}

// Unsigned per-lane a < b (AVX2 only has signed cmpgt: bias both signs).
inline __m256i cmplt_u64(__m256i a, __m256i b) {
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                            _mm256_xor_si256(a, bias));
}

struct ReduceVecConstants {
  __m256i m_hi, m_lo, d;
};

inline ReduceVecConstants broadcast(const ReduceConstants& c) {
  return {_mm256_set1_epi64x(static_cast<long long>(c.m_hi)),
          _mm256_set1_epi64x(static_cast<long long>(c.m_lo)),
          _mm256_set1_epi64x(static_cast<long long>(c.d))};
}

// Lemire-Kaser reduction, vectorized mirror of scalar::reduce_one:
//   low128 = M * a mod 2^128; result = mulhi_128x64(low128, d).
inline __m256i reduce_vec(const ReduceVecConstants& c, __m256i a) {
  __m256i p_hi, p_lo;
  mul64x64(c.m_lo, a, &p_hi, &p_lo);
  const __m256i hi = _mm256_add_epi64(p_hi, mullo64(c.m_hi, a));  // mod 2^64
  const __m256i bottom = mulhi64(p_lo, c.d);
  // result = hi64(hi * d + bottom); the 128-bit sum cannot overflow.
  __m256i hd_hi, hd_lo;
  mul64x64(hi, c.d, &hd_hi, &hd_lo);
  const __m256i sum_lo = _mm256_add_epi64(hd_lo, bottom);
  const __m256i carry = cmplt_u64(sum_lo, bottom);  // all-ones on carry
  return _mm256_sub_epi64(hd_hi, carry);            // subtracting -1 adds 1
}

// REDC of the 128-bit lanes (x_hi, x_lo) for modulus m: mirror of
// Montgomery64::redc. x_lo + q*m is 0 mod 2^64 by construction, so the
// carry into the high half is exactly (x_lo != 0).
inline __m256i redc_vec(__m256i x_hi, __m256i x_lo, __m256i m,
                        __m256i neg_inv) {
  const __m256i q = mullo64(x_lo, neg_inv);
  const __m256i qm_hi = mulhi64(q, m);
  const __m256i is_zero =
      _mm256_cmpeq_epi64(x_lo, _mm256_setzero_si256());  // all-ones when 0
  const __m256i carry =
      _mm256_add_epi64(_mm256_set1_epi64x(1), is_zero);  // 1, or 0 when x_lo==0
  __m256i t = _mm256_add_epi64(_mm256_add_epi64(x_hi, qm_hi), carry);
  // t >= m ? t - m : t
  const __m256i keep = cmplt_u64(t, m);  // all-ones where t < m
  return _mm256_sub_epi64(t, _mm256_andnot_si256(keep, m));
}

}  // namespace

void reduce_mod_many(const ReduceConstants& c, const std::uint64_t* xs,
                     std::size_t n, std::uint64_t* out) {
  const ReduceVecConstants vc = broadcast(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        reduce_vec(vc, x));
  }
  if (i < n) scalar::reduce_mod_many(c, xs + i, n - i, out + i);
}

void pairwise_hash_many(const PairwiseConstants& c, const std::uint64_t* xs,
                        std::size_t n, std::uint64_t* out) {
  const ReduceVecConstants red_p = broadcast(c.red_p);
  const ReduceVecConstants red_t = broadcast(c.red_t);
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(c.p));
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(c.b));
  const __m256i a_mont = _mm256_set1_epi64x(static_cast<long long>(c.a_mont));
  const __m256i neg_inv = _mm256_set1_epi64x(static_cast<long long>(c.neg_inv));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    const __m256i xr = reduce_vec(red_p, x);
    __m256i ax_hi, ax_lo;
    mul64x64(a_mont, xr, &ax_hi, &ax_lo);
    const __m256i ax = redc_vec(ax_hi, ax_lo, p, neg_inv);
    // v = b >= space ? b - space : ax + b, space = p - ax
    const __m256i space = _mm256_sub_epi64(p, ax);
    const __m256i wrap = _mm256_sub_epi64(b, space);
    const __m256i plain = _mm256_add_epi64(ax, b);
    const __m256i lt = cmplt_u64(b, space);  // all-ones where b < space
    const __m256i v = _mm256_blendv_epi8(wrap, plain, lt);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        reduce_vec(red_t, v));
  }
  if (i < n) scalar::pairwise_hash_many(c, xs + i, n - i, out + i);
}

namespace {

// Compress-store LUT: for each 4-bit match mask, the permutevar8x32
// indices that pack the selected 64-bit lanes (as 32-bit pairs) to the
// front. Unselected tail lanes are don't-care (the output padding
// contract absorbs the full-vector store).
struct PermLut {
  alignas(32) std::uint32_t idx[16][8];
};

constexpr PermLut make_perm_lut() {
  PermLut lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int c = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1) {
        lut.idx[mask][2 * c] = static_cast<std::uint32_t>(2 * lane);
        lut.idx[mask][2 * c + 1] = static_cast<std::uint32_t>(2 * lane + 1);
        ++c;
      }
    }
  }
  return lut;
}

constexpr PermLut kPermLut = make_perm_lut();

}  // namespace

std::size_t intersect_block(const std::uint64_t* a, std::size_t na,
                            const std::uint64_t* b, std::size_t nb,
                            std::uint64_t* out) {
  std::size_t i = 0, j = 0, c = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    // Compare va against vb and its three lane rotations: every a-lane
    // meets every b-lane once.
    const __m256i r1 = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(0, 3, 2, 1));
    const __m256i r2 = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256i r3 = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(2, 1, 0, 3));
    const __m256i eq = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi64(va, vb),
                        _mm256_cmpeq_epi64(va, r1)),
        _mm256_or_si256(_mm256_cmpeq_epi64(va, r2),
                        _mm256_cmpeq_epi64(va, r3)));
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPermLut.idx[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c),
                        _mm256_permutevar8x32_epi32(va, perm));
    c += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mask)));
    const std::uint64_t a_max = a[i + 3];
    const std::uint64_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  return c + scalar::intersect_merge(a + i, na - i, b + j, nb - j, out + c);
}

std::size_t intersect_block_gallop(const std::uint64_t* small, std::size_t ns,
                                   const std::uint64_t* large, std::size_t nl,
                                   std::uint64_t* out) {
  const std::size_t nblocks = nl / 4;
  std::size_t c = 0, blk = 0, k = 0;
  for (; k < ns && blk < nblocks; ++k) {
    const std::uint64_t x = small[k];
    if (large[blk * 4 + 3] < x) {
      // Gallop over 4-element blocks by block max, then binary search.
      std::size_t offset = 1;
      while (blk + offset < nblocks && large[(blk + offset) * 4 + 3] < x) {
        offset <<= 1;
      }
      std::size_t lo = blk + (offset >> 1);        // block max < x
      std::size_t hi = std::min(nblocks, blk + offset);
      while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (large[mid * 4 + 3] < x) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      blk = hi;
      if (blk >= nblocks) break;  // x beyond every full block: tail below
    }
    const __m256i vx = _mm256_set1_epi64x(static_cast<long long>(x));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(large + blk * 4));
    const __m256i eq = _mm256_cmpeq_epi64(vx, vb);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) != 0) out[c++] = x;
  }
  // Remaining small elements can only match in the ragged tail of large.
  return c + scalar::intersect_gallop(small + k, ns - k, large + nblocks * 4,
                                      nl - nblocks * 4, out + c);
}

namespace {

// Mula nibble-LUT popcount: per-byte counts via two PSHUFB lookups,
// horizontally summed into the four 64-bit lanes by SAD against zero.
inline __m256i popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

}  // namespace

std::uint64_t bitmap_and_count(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount256(_mm256_and_si256(va, vb)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

void bitmap_and(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) out[i] = a[i] & b[i];
}

}  // namespace setint::simd::avx2

#endif  // x86-64
