// SSE4.1 tier: 2-wide 64-bit intersect and bitmap kernels. Compiled with
// -msse4.1 -mpopcnt (per-file flags in src/CMakeLists.txt); only entered
// after cpuid confirms both features.
//
// This tier deliberately carries NO hash lanes: a 2-wide 64-bit mulhi
// pipeline spends more on 32-bit limb shuffling than it saves over the
// scalar 128-bit multiply, so the dispatcher routes sse41-tier hash
// calls to the scalar reference (see kernels.cc). The win here is the
// block intersect (the only 64-bit vector compare SSE4.1 offers is
// PCMPEQQ — exactly what the block kernel needs; all ordering decisions
// are scalar) and hardware-POPCNT bitmap loops.

#if defined(__x86_64__) || defined(_M_X64)

#include <smmintrin.h>

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels_internal.h"

namespace setint::simd::sse41 {

namespace {

// Compress-store LUT for the 2-bit match mask: PSHUFB byte indices that
// pack the selected 64-bit lanes to the front. Unselected tail bytes are
// don't-care (absorbed by the output padding contract).
struct ShufLut {
  alignas(16) std::uint8_t idx[4][16];
};

constexpr ShufLut make_shuf_lut() {
  ShufLut lut{};
  for (int mask = 0; mask < 4; ++mask) {
    int c = 0;
    for (int lane = 0; lane < 2; ++lane) {
      if ((mask >> lane) & 1) {
        for (int byte = 0; byte < 8; ++byte) {
          lut.idx[mask][c * 8 + byte] =
              static_cast<std::uint8_t>(lane * 8 + byte);
        }
        ++c;
      }
    }
  }
  return lut;
}

constexpr ShufLut kShufLut = make_shuf_lut();

}  // namespace

std::size_t intersect_block(const std::uint64_t* a, std::size_t na,
                            const std::uint64_t* b, std::size_t nb,
                            std::uint64_t* out) {
  std::size_t i = 0, j = 0, c = 0;
  while (i + 2 <= na && j + 2 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    // va vs vb and vb with its halves swapped: all four lane pairs.
    const __m128i swapped = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
    const __m128i eq = _mm_or_si128(_mm_cmpeq_epi64(va, vb),
                                    _mm_cmpeq_epi64(va, swapped));
    const int mask = _mm_movemask_pd(_mm_castsi128_pd(eq));
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kShufLut.idx[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + c),
                     _mm_shuffle_epi8(va, shuf));
    c += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mask)));
    const std::uint64_t a_max = a[i + 1];
    const std::uint64_t b_max = b[j + 1];
    if (a_max <= b_max) i += 2;
    if (b_max <= a_max) j += 2;
  }
  return c + scalar::intersect_merge(a + i, na - i, b + j, nb - j, out + c);
}

std::size_t intersect_block_gallop(const std::uint64_t* small, std::size_t ns,
                                   const std::uint64_t* large, std::size_t nl,
                                   std::uint64_t* out) {
  const std::size_t nblocks = nl / 2;
  std::size_t c = 0, blk = 0, k = 0;
  for (; k < ns && blk < nblocks; ++k) {
    const std::uint64_t x = small[k];
    if (large[blk * 2 + 1] < x) {
      // Gallop over 2-element blocks by block max, then binary search.
      std::size_t offset = 1;
      while (blk + offset < nblocks && large[(blk + offset) * 2 + 1] < x) {
        offset <<= 1;
      }
      std::size_t lo = blk + (offset >> 1);        // block max < x
      std::size_t hi = std::min(nblocks, blk + offset);
      while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (large[mid * 2 + 1] < x) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      blk = hi;
      if (blk >= nblocks) break;  // x beyond every full block: tail below
    }
    const __m128i vx = _mm_set1_epi64x(static_cast<long long>(x));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(large + blk * 2));
    const __m128i eq = _mm_cmpeq_epi64(vx, vb);
    if (_mm_movemask_pd(_mm_castsi128_pd(eq)) != 0) out[c++] = x;
  }
  return c + scalar::intersect_gallop(small + k, ns - k, large + nblocks * 2,
                                      nl - nblocks * 2, out + c);
}

std::uint64_t bitmap_and_count(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  // std::popcount compiles to the POPCNT instruction in this TU.
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<std::uint64_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<std::uint64_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return c0 + c1 + c2 + c3;
}

void bitmap_and(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_and_si128(va, vb));
  }
  for (; i < n; ++i) out[i] = a[i] & b[i];
}

}  // namespace setint::simd::sse41

#endif  // x86-64
