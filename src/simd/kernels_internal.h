// Per-tier kernel entry points, shared between the dispatch layer
// (kernels.cc) and the tier translation units. Internal to src/simd/ —
// callers use simd/kernels.h.
//
// Each vector TU is compiled with exactly the ISA flags its tier needs
// (see src/CMakeLists.txt); code outside that TU must never call into it
// unless cpuid says the instructions exist. The scalar namespace is the
// reference implementation every other tier is differential-tested
// against (tests/simd_test.cc).
//
// Tier notes:
//   * sse41 carries real intersect + bitmap kernels but NO hash lanes:
//     a 2-wide 64-bit mulhi pipeline spends more on limb shuffling than
//     it saves over the scalar 128-bit multiply, so the dispatcher
//     routes sse41-tier hash calls to the scalar lanes (measured; see
//     docs/PERFORMANCE.md).
//   * avx2 implements all three families 4-wide.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

namespace setint::simd {

namespace scalar {

void reduce_mod_many(const ReduceConstants& c, const std::uint64_t* xs,
                     std::size_t n, std::uint64_t* out);
void pairwise_hash_many(const PairwiseConstants& c, const std::uint64_t* xs,
                        std::size_t n, std::uint64_t* out);

// Two-pointer merge; accepts the operands in either order.
std::size_t intersect_merge(const std::uint64_t* a, std::size_t na,
                            const std::uint64_t* b, std::size_t nb,
                            std::uint64_t* out);

// Exponential + binary search of each element of the SMALL set in the
// large one; callers pass the smaller operand first.
std::size_t intersect_gallop(const std::uint64_t* small, std::size_t ns,
                             const std::uint64_t* large, std::size_t nl,
                             std::uint64_t* out);

std::uint64_t bitmap_and_count(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n);
void bitmap_and(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t n);

}  // namespace scalar

#if defined(__x86_64__) || defined(_M_X64)

namespace sse41 {

std::size_t intersect_block(const std::uint64_t* a, std::size_t na,
                            const std::uint64_t* b, std::size_t nb,
                            std::uint64_t* out);
std::size_t intersect_block_gallop(const std::uint64_t* small, std::size_t ns,
                                   const std::uint64_t* large, std::size_t nl,
                                   std::uint64_t* out);
std::uint64_t bitmap_and_count(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n);
void bitmap_and(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t n);

}  // namespace sse41

namespace avx2 {

void reduce_mod_many(const ReduceConstants& c, const std::uint64_t* xs,
                     std::size_t n, std::uint64_t* out);
void pairwise_hash_many(const PairwiseConstants& c, const std::uint64_t* xs,
                        std::size_t n, std::uint64_t* out);
std::size_t intersect_block(const std::uint64_t* a, std::size_t na,
                            const std::uint64_t* b, std::size_t nb,
                            std::uint64_t* out);
std::size_t intersect_block_gallop(const std::uint64_t* small, std::size_t ns,
                                   const std::uint64_t* large, std::size_t nl,
                                   std::uint64_t* out);
std::uint64_t bitmap_and_count(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n);
void bitmap_and(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out, std::size_t n);

}  // namespace avx2

#endif  // x86-64

}  // namespace setint::simd
