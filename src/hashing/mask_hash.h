// GF(2) mask hashing: the hash family behind the equality test of
// Fact 3.5. Each output bit is the inner product (mod 2) of the message
// with a fresh pseudo-random mask derived from a shared substream. For
// x != y each bit matches with probability exactly 1/2 independently, so a
// b-bit hash gives one-sided error 2^-b; for x == y the hashes are always
// identical.
#pragma once

#include <cstdint>

#include "util/bitio.h"
#include "util/rng.h"

namespace setint::hashing {

// b-bit mask hash of `data` using masks drawn from `stream` (the stream is
// consumed; both parties must pass identically-seeded streams). b <= 64.
std::uint64_t mask_hash(const util::BitBuffer& data, unsigned bits,
                        util::Rng stream);

// Arbitrary-width mask hash: appends exactly `bits` hash bits to `out`
// (composed of independent <= 64-bit chunks). Used where the error budget
// calls for more than 64 bits, e.g. the top levels of the amortized
// equality tree.
void mask_hash_wide(const util::BitBuffer& data, std::size_t bits,
                    const util::Rng& stream, util::BitBuffer& out);

}  // namespace setint::hashing
