// 64-bit modular arithmetic. Correct for all moduli up to 2^63 via
// unsigned __int128 intermediates.
#pragma once

#include <cstdint>

namespace setint::hashing {

// (a * b) mod m; m must be nonzero.
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

// (a + b) mod m without overflow; requires a, b < m.
std::uint64_t addmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

// (base ^ exp) mod m; m must be nonzero.
std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

}  // namespace setint::hashing
