#include "hashing/modmath.h"

#include <stdexcept>

namespace setint::hashing {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("mulmod: modulus 0");
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t addmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("addmod: modulus 0");
  a %= m;
  b %= m;
  const std::uint64_t space = m - a;
  return b >= space ? b - space : a + b;
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("powmod: modulus 0");
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

}  // namespace setint::hashing
