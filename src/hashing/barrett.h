// Division-free modular reduction with precomputed constants.
//
// Every hash evaluation in the library is "(a*x + b) mod p mod t" or
// "x mod q" with a modulus that is FIXED for the lifetime of the hash
// function, yet the original paths paid a hardware divide (u128 `%`) per
// element. The two engines here hoist all division into construction:
//
//   * Reducer64 — Lemire-Kaser direct remainder ("fastmod") for a fixed
//     64-bit divisor d: precompute M = ceil(2^128 / d) once; then
//     a % d == mulhi_128x64(M * a, d) exactly for every 64-bit a. Two
//     multiplies per reduction, no divide.
//   * Montgomery64 — Montgomery multiplication for a fixed odd modulus
//     m < 2^63: (a * b) mod m via one wide multiply plus one REDC step.
//     Used for the pairwise-hash product a*x mod p and for the modular
//     exponentiation inside Miller-Rabin.
//
// Both are EXACT drop-in replacements for `%` — the compute engine
// changes how bits are computed, never which bits are sent (the golden
// transcripts in tests/golden_test.cc and tests/transcript_digest_test.cc
// pin this). Equivalence against the plain-division reference is tested
// over randomized inputs in tests/hashing_test.cc and gated again at
// bench time by `exp_cpu` (docs/PERFORMANCE.md).
#pragma once

#include <cstdint>

namespace setint::hashing {

// a % d for a fixed divisor d >= 1, division-free at evaluation time.
class Reducer64 {
 public:
  // Identity-free default so containers can hold reducers; mod() on a
  // default-constructed instance reduces mod 1 (always 0).
  Reducer64() : m_(0), d_(1) {}

  explicit Reducer64(std::uint64_t d);

  std::uint64_t divisor() const { return d_; }

  // Halves of the precomputed magic M = ceil(2^128 / d) (0 when d == 1),
  // exported so the SIMD hash lanes (src/simd/kernels.h) can replicate
  // mod() exactly from plain 64-bit constants.
  std::uint64_t magic_hi() const { return static_cast<std::uint64_t>(m_ >> 64); }
  std::uint64_t magic_lo() const { return static_cast<std::uint64_t>(m_); }

  // Exact a % d for any 64-bit a (Lemire & Kaser 2019, Theorem 1 with
  // N = 64, F = 2^128).
  std::uint64_t mod(std::uint64_t a) const {
    const unsigned __int128 low = m_ * a;  // M * a mod 2^128
    // mulhi of the 128-bit product with the 64-bit divisor.
    const std::uint64_t lo = static_cast<std::uint64_t>(low);
    const std::uint64_t hi = static_cast<std::uint64_t>(low >> 64);
    const unsigned __int128 bottom =
        (static_cast<unsigned __int128>(lo) * d_) >> 64;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(hi) * d_ + bottom) >> 64);
  }

 private:
  unsigned __int128 m_;  // ceil(2^128 / d), wrapped (0 when d == 1)
  std::uint64_t d_;
};

// (a * b) mod m for a fixed odd modulus 3 <= m < 2^63.
class Montgomery64 {
 public:
  explicit Montgomery64(std::uint64_t m);

  std::uint64_t modulus() const { return m_; }

  // The REDC constant -m^-1 mod 2^64, exported for the SIMD hash lanes.
  std::uint64_t neg_inv() const { return neg_inv_; }

  // a * R mod m (R = 2^64): enter the Montgomery domain.
  std::uint64_t to_mont(std::uint64_t a) const {
    return redc(static_cast<unsigned __int128>(a) * r2_);
  }

  // a * R^-1 mod m: leave the Montgomery domain.
  std::uint64_t from_mont(std::uint64_t a) const {
    return redc(static_cast<unsigned __int128>(a));
  }

  // REDC(a_mont * b): with a_mont = to_mont(a) and plain b < 2^64 this is
  // exactly (a * b) mod m — the mixed-domain product the pairwise hash
  // uses (one REDC per element, no conversion of x).
  std::uint64_t mul(std::uint64_t a_mont, std::uint64_t b) const {
    return redc(static_cast<unsigned __int128>(a_mont) * b);
  }

  // x * R^-1 mod m for x < m * 2^64; result < m.
  std::uint64_t redc(unsigned __int128 x) const {
    const std::uint64_t q = static_cast<std::uint64_t>(x) * neg_inv_;
    const std::uint64_t t = static_cast<std::uint64_t>(
        (x + static_cast<unsigned __int128>(q) * m_) >> 64);
    return t >= m_ ? t - m_ : t;
  }

 private:
  std::uint64_t m_;
  std::uint64_t neg_inv_;  // -m^-1 mod 2^64
  std::uint64_t r2_;       // 2^128 mod m
};

}  // namespace setint::hashing
