#include "hashing/pairwise.h"

#include <algorithm>
#include <stdexcept>

#include "hashing/primes.h"
#include "simd/kernels.h"
#include "util/iterated_log.h"

namespace setint::hashing {

PairwiseHash::PairwiseHash(std::uint64_t p, std::uint64_t a, std::uint64_t b,
                           std::uint64_t t)
    : p_(p), a_(a), b_(b), t_(t), red_p_(p), red_t_(t) {
  if ((p & 1) != 0 && p >= 3 && p < (std::uint64_t{1} << 63)) {
    mont_.emplace(p);
    a_mont_ = mont_->to_mont(a);
  }
}

PairwiseHash PairwiseHash::sample(util::Rng& rng, std::uint64_t universe,
                                  std::uint64_t range) {
  if (range == 0) throw std::invalid_argument("PairwiseHash: range == 0");
  const std::uint64_t floor = std::max<std::uint64_t>({universe, range, 2});
  if (floor > (std::uint64_t{1} << 62)) {
    throw std::invalid_argument("PairwiseHash: universe too large");
  }
  // A prime in [floor, 2*floor] always exists (Bertrand).
  const std::uint64_t p = random_prime_in(rng, floor, 2 * floor + 1);
  const std::uint64_t a = 1 + rng.below(p - 1);
  const std::uint64_t b = rng.below(p);
  return PairwiseHash(p, a, b, range);
}

void PairwiseHash::hash_many(std::span<const std::uint64_t> xs,
                             std::span<std::uint64_t> out) const {
  if (out.size() < xs.size()) {
    throw std::invalid_argument("PairwiseHash::hash_many: output too small");
  }
  if (mont_) {
    // Hand the whole batch to the SIMD engine (4-wide mulhi pipelines on
    // the AVX2 tier, the identical scalar chain otherwise). Exact on
    // every tier, so batched == scalar == pre-SIMD output bit for bit.
    simd::PairwiseConstants c;
    c.p = p_;
    c.b = b_;
    c.t = t_;
    c.a_mont = a_mont_;
    c.neg_inv = mont_->neg_inv();
    c.red_p = {red_p_.magic_hi(), red_p_.magic_lo(), red_p_.divisor()};
    c.red_t = {red_t_.magic_hi(), red_t_.magic_lo(), red_t_.divisor()};
    simd::pairwise_hash_many(c, xs, out);
    return;
  }
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (*this)(xs[i]);
}

void PairwiseHash::append_seed(util::BitBuffer& out) const {
  out.append_gamma64(p_);
  const unsigned w = util::ceil_log2(p_ + 1);
  out.append_bits(a_, w);
  out.append_bits(b_, w);
}

PairwiseHash PairwiseHash::read_seed(util::BitReader& in,
                                     std::uint64_t range) {
  const std::uint64_t p = in.read_gamma64();
  const unsigned w = util::ceil_log2(p + 1);
  const std::uint64_t a = in.read_bits(w);
  const std::uint64_t b = in.read_bits(w);
  if (p < 2 || a == 0 || a >= p || b >= p || range == 0) {
    throw std::invalid_argument("PairwiseHash: malformed seed");
  }
  return PairwiseHash(p, a, b, range);
}

std::size_t PairwiseHash::seed_bits() const {
  return util::gamma64_cost_bits(p_) + 2 * util::ceil_log2(p_ + 1);
}

double PairwiseHash::collision_probability() const {
  // (a*x+b) mod p is a pairwise-uniform injection into [p); folding mod t
  // makes at most ceil(p/t) values coincide per residue.
  const double buckets_per_residue =
      static_cast<double>((p_ + t_ - 1) / t_);
  return buckets_per_residue / static_cast<double>(p_);
}

}  // namespace setint::hashing
