// FKS-style universe compression (Fredman-Komlos-Szemeredi [FKS84], as
// used in Section 3.1 of the paper): map [n] -> [q] by x mod q for a random
// prime q = O~(k^2 log n). For any fixed set of at most k elements the map
// is injective with probability 1 - 1/poly(k), and the prime costs only
// O(log k + log log n) bits to communicate — the key to the constructive
// private-randomness protocol.
//
// Evaluation is division-free: the reduction mod q goes through a
// precomputed Lemire reducer (hashing/barrett.h) with values identical to
// plain `x % q`.
#pragma once

#include <cstdint>
#include <span>

#include "hashing/barrett.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint::hashing {

class FksCompressor {
 public:
  // Compressor for sets of total size <= max_elements over [universe),
  // with per-run failure probability roughly 1/max_elements^(c-2) for the
  // chosen strength c >= 3 (range q ~ max_elements^c-flavored; see .cc).
  static FksCompressor sample(util::Rng& rng, std::uint64_t universe,
                              std::uint64_t max_elements, int strength = 3);

  std::uint64_t operator()(std::uint64_t x) const { return red_q_.mod(x); }
  std::uint64_t range() const { return q_; }

  // Array-batched evaluation: out[i] = xs[i] mod q. Requires out.size()
  // >= xs.size().
  void hash_many(std::span<const std::uint64_t> xs,
                 std::span<std::uint64_t> out) const;

  // True iff the map is injective on s (all images distinct).
  bool injective_on(util::SetView s) const;

  void append_seed(util::BitBuffer& out) const;
  static FksCompressor read_seed(util::BitReader& in);
  std::size_t seed_bits() const;

 private:
  explicit FksCompressor(std::uint64_t q) : q_(q), red_q_(q) {}
  std::uint64_t q_;
  Reducer64 red_q_;  // derived from q_, never serialized
};

}  // namespace setint::hashing
