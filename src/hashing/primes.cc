#include "hashing/primes.h"

#include <array>
#include <atomic>
#include <bit>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>

#include "hashing/barrett.h"
#include "hashing/modmath.h"

namespace setint::hashing {

namespace {

constexpr std::uint64_t kWitnesses[] = {2, 3, 5, 7, 11, 13, 17, 19,
                                        23, 29, 31, 37};

// Miller-Rabin witness check in the Montgomery domain: all the squarings
// of the powmod ladder run division-free. Exact for any odd n in [3, 2^63).
bool miller_rabin_witness_mont(const Montgomery64& mont, std::uint64_t n,
                               std::uint64_t a, std::uint64_t d, unsigned r) {
  const std::uint64_t one = mont.to_mont(1);
  const std::uint64_t minus_one = mont.to_mont(n - 1);
  std::uint64_t base = mont.to_mont(a % n);
  std::uint64_t x = one;
  std::uint64_t exp = d;
  while (exp > 0) {
    if (exp & 1) x = mont.mul(x, base);
    base = mont.mul(base, base);
    exp >>= 1;
  }
  if (x == one || x == minus_one) return false;  // not a witness
  for (unsigned i = 1; i < r; ++i) {
    x = mont.mul(x, x);
    if (x == minus_one) return false;
  }
  return true;  // witnesses compositeness
}

// Reference ladder via u128 `%` for the rare n >= 2^63 (outside the
// Montgomery domain's modulus range).
bool miller_rabin_witness_wide(std::uint64_t n, std::uint64_t a,
                               std::uint64_t d, unsigned r) {
  std::uint64_t x = powmod(a % n, d, n);
  if (x == 1 || x == n - 1) return false;
  for (unsigned i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;
}

// Next-prime memo, sharded by candidate bit-width (the satellite contract:
// one thread-safe table per magnitude class, so concurrent batch sessions
// probing different size regimes never contend on one lock). Bounded per
// shard; a full shard stops inserting but stays correct.
struct CacheShard {
  std::shared_mutex mu;
  std::unordered_map<std::uint64_t, std::uint64_t> next_prime;
};

constexpr std::size_t kMaxEntriesPerShard = 1 << 14;

std::array<CacheShard, 64>& cache_shards() {
  static std::array<CacheShard, 64> shards;
  return shards;
}

CacheShard& shard_for(std::uint64_t n) {
  return cache_shards()[63 - static_cast<unsigned>(std::countl_zero(n | 1))];
}

std::atomic<std::uint64_t> g_cache_hits{0};
std::atomic<std::uint64_t> g_cache_misses{0};

std::uint64_t next_prime_uncached(std::uint64_t n) {
  std::uint64_t c = n | 1;  // first odd >= n
  while (true) {
    if (is_prime(c)) return c;
    if (c > std::numeric_limits<std::uint64_t>::max() - 2) {
      throw std::overflow_error("next_prime_at_least: no 64-bit prime");
    }
    c += 2;
  }
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : kWitnesses) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  if (n < (std::uint64_t{1} << 63)) {
    // n is odd here (even n were divisible by witness 2 above).
    const Montgomery64 mont(n);
    for (std::uint64_t a : kWitnesses) {
      if (miller_rabin_witness_mont(mont, n, a, d, r)) return false;
    }
    return true;
  }
  for (std::uint64_t a : kWitnesses) {
    if (miller_rabin_witness_wide(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime_at_least(std::uint64_t n) {
  if (n <= 2) return 2;
  CacheShard& shard = shard_for(n);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.next_prime.find(n);
    if (it != shard.next_prime.end()) {
      g_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  g_cache_misses.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t p = next_prime_uncached(n);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    if (shard.next_prime.size() < kMaxEntriesPerShard) {
      shard.next_prime.emplace(n, p);
    }
  }
  return p;
}

std::uint64_t random_prime_in(util::Rng& rng, std::uint64_t lo,
                              std::uint64_t hi) {
  if (lo >= hi) throw std::invalid_argument("random_prime_in: empty range");
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const std::uint64_t candidate = lo + rng.below(hi - lo);
    const std::uint64_t p = next_prime_at_least(candidate);
    if (p < hi) return p;
  }
  // Range may still contain a prime near its start even if sampling missed.
  const std::uint64_t p = next_prime_at_least(lo);
  if (p < hi) return p;
  throw std::invalid_argument("random_prime_in: no prime in range");
}

PrimeCacheStats prime_cache_stats() {
  PrimeCacheStats stats;
  stats.hits = g_cache_hits.load(std::memory_order_relaxed);
  stats.misses = g_cache_misses.load(std::memory_order_relaxed);
  for (CacheShard& shard : cache_shards()) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    stats.entries += shard.next_prime.size();
  }
  return stats;
}

void prime_cache_clear() {
  for (CacheShard& shard : cache_shards()) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.next_prime.clear();
  }
  g_cache_hits.store(0, std::memory_order_relaxed);
  g_cache_misses.store(0, std::memory_order_relaxed);
}

}  // namespace setint::hashing
