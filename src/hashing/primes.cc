#include "hashing/primes.h"

#include <limits>
#include <stdexcept>

#include "hashing/modmath.h"

namespace setint::hashing {

namespace {

bool miller_rabin_witness(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                          unsigned r) {
  std::uint64_t x = powmod(a % n, d, n);
  if (x == 1 || x == n - 1) return false;  // not a witness
  for (unsigned i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;  // witnesses compositeness
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime_at_least(std::uint64_t n) {
  if (n <= 2) return 2;
  std::uint64_t c = n | 1;  // first odd >= n
  while (true) {
    if (is_prime(c)) return c;
    if (c > std::numeric_limits<std::uint64_t>::max() - 2) {
      throw std::overflow_error("next_prime_at_least: no 64-bit prime");
    }
    c += 2;
  }
}

std::uint64_t random_prime_in(util::Rng& rng, std::uint64_t lo,
                              std::uint64_t hi) {
  if (lo >= hi) throw std::invalid_argument("random_prime_in: empty range");
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const std::uint64_t candidate = lo + rng.below(hi - lo);
    const std::uint64_t p = next_prime_at_least(candidate);
    if (p < hi) return p;
  }
  // Range may still contain a prime near its start even if sampling missed.
  const std::uint64_t p = next_prime_at_least(lo);
  if (p < hi) return p;
  throw std::invalid_argument("random_prime_in: no prime in range");
}

}  // namespace setint::hashing
