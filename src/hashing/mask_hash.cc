#include "hashing/mask_hash.h"

#include <bit>
#include <stdexcept>

namespace setint::hashing {

std::uint64_t mask_hash(const util::BitBuffer& data, unsigned bits,
                        util::Rng stream) {
  if (bits > 64) throw std::invalid_argument("mask_hash: bits > 64");
  const auto& words = data.words();
  const std::size_t nbits = data.size_bits();
  const std::size_t full = nbits / 64;
  const unsigned tail = static_cast<unsigned>(nbits % 64);
  const std::uint64_t tail_mask =
      tail == 0 ? 0 : ((tail == 64) ? ~std::uint64_t{0}
                                    : ((std::uint64_t{1} << tail) - 1));
  std::uint64_t out = 0;
  if (nbits > 0 && nbits <= 64) {
    // Single-word fast path (the common case: bucketed element payloads
    // fit one word). Exactly two stream draws per hash bit, in the same
    // order as the generic loop below, so the output is bit-identical.
    const std::uint64_t word =
        tail == 0 ? words[0] : (words[0] & tail_mask);
    for (unsigned b = 0; b < bits; ++b) {
      unsigned parity = std::popcount(stream.next() & nbits) & 1u;
      parity ^= std::popcount(stream.next() & word) & 1u;
      out |= static_cast<std::uint64_t>(parity) << b;
    }
    return out;
  }
  for (unsigned b = 0; b < bits; ++b) {
    // Parity of AND between data and a fresh mask. Length information is
    // folded in via an extra mask word keyed on nbits so that messages that
    // are prefixes of one another still hash independently.
    unsigned parity = std::popcount(stream.next() & nbits) & 1u;
    for (std::size_t w = 0; w < full; ++w) {
      parity ^= std::popcount(stream.next() & words[w]) & 1u;
    }
    if (tail != 0) {
      parity ^= std::popcount(stream.next() & words[full] & tail_mask) & 1u;
    }
    out |= static_cast<std::uint64_t>(parity) << b;
  }
  return out;
}

void mask_hash_wide(const util::BitBuffer& data, std::size_t bits,
                    const util::Rng& stream, util::BitBuffer& out) {
  std::size_t emitted = 0;
  std::uint64_t chunk_index = 0;
  while (emitted < bits) {
    const unsigned chunk =
        static_cast<unsigned>(std::min<std::size_t>(64, bits - emitted));
    out.append_bits(mask_hash(data, chunk, stream.substream(chunk_index)),
                    chunk);
    emitted += chunk;
    ++chunk_index;
  }
}

}  // namespace setint::hashing
