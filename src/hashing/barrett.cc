#include "hashing/barrett.h"

#include <stdexcept>

namespace setint::hashing {

Reducer64::Reducer64(std::uint64_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("Reducer64: divisor 0");
  // ceil(2^128 / d) = floor((2^128 - 1) / d) + 1 for d not a power of two;
  // for d a power of two the +1 still yields the exact constant because
  // the discarded low bits of M*a are what the mulhi truncates. For d == 1
  // the constant wraps to 0 and mod() correctly returns 0 everywhere.
  m_ = ~static_cast<unsigned __int128>(0) / d + 1;
}

Montgomery64::Montgomery64(std::uint64_t m) : m_(m) {
  if ((m & 1) == 0 || m < 3 || m >= (std::uint64_t{1} << 63)) {
    throw std::invalid_argument("Montgomery64: modulus must be odd, in [3, 2^63)");
  }
  // Newton-Hensel iteration: each step doubles the number of correct low
  // bits of m^-1 mod 2^64; six steps cover all 64.
  std::uint64_t inv = m;
  for (int i = 0; i < 6; ++i) inv *= 2 - m * inv;
  neg_inv_ = ~inv + 1;
  const std::uint64_t r = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(1) << 64) % m);  // 2^64 mod m
  r2_ = static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(r) * r % m);  // 2^128 mod m
}

}  // namespace setint::hashing
