// Primality testing and random prime sampling.
//
// Random primes back the Carter-Wegman pairwise family and the FKS
// universe-compression step; both need primes of a prescribed magnitude,
// sampled from few random bits.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace setint::hashing {

// Deterministic Miller-Rabin, exact for all 64-bit inputs (fixed witness
// set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}).
bool is_prime(std::uint64_t n);

// Smallest prime >= n; throws if none fits in 64 bits.
std::uint64_t next_prime_at_least(std::uint64_t n);

// Uniform-ish random prime in [lo, hi): samples uniform candidates and
// takes the next prime at or after the sample (standard density argument;
// adequate for hash-seed purposes). Requires a prime to exist in range.
std::uint64_t random_prime_in(util::Rng& rng, std::uint64_t lo,
                              std::uint64_t hi);

}  // namespace setint::hashing
