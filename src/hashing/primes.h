// Primality testing and random prime sampling.
//
// Random primes back the Carter-Wegman pairwise family and the FKS
// universe-compression step; both need primes of a prescribed magnitude,
// sampled from few random bits.
//
// Perf engine (docs/PERFORMANCE.md): Miller-Rabin exponentiation runs in
// the Montgomery domain (hashing/barrett.h) for odd inputs below 2^63,
// and every next-prime search result is memoized in a thread-safe table
// sharded by candidate bit-width. Caching never changes WHICH prime a
// session picks — the candidate draw still consumes the same Rng values,
// and next_prime_at_least is a pure function of its argument — it only
// skips re-verifying a prime that an earlier session already verified.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace setint::hashing {

// Deterministic Miller-Rabin, exact for all 64-bit inputs (fixed witness
// set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}).
bool is_prime(std::uint64_t n);

// Smallest prime >= n; throws if none fits in 64 bits. Results are
// memoized in the process-wide prime cache.
std::uint64_t next_prime_at_least(std::uint64_t n);

// Uniform-ish random prime in [lo, hi): samples uniform candidates and
// takes the next prime at or after the sample (standard density argument;
// adequate for hash-seed purposes). Requires a prime to exist in range.
std::uint64_t random_prime_in(util::Rng& rng, std::uint64_t lo,
                              std::uint64_t hi);

// Observability for the next-prime memo table. `entries` is the current
// number of cached (candidate -> prime) pairs across all bit-width shards;
// hits/misses count next_prime_at_least lookups process-wide.
struct PrimeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};
PrimeCacheStats prime_cache_stats();

// Drops every cached entry and zeroes the hit/miss counters (tests and
// cold-vs-warm benchmarking).
void prime_cache_clear();

}  // namespace setint::hashing
