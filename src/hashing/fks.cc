#include "hashing/fks.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "hashing/primes.h"
#include "simd/kernels.h"
#include "util/iterated_log.h"

namespace setint::hashing {

FksCompressor FksCompressor::sample(util::Rng& rng, std::uint64_t universe,
                                    std::uint64_t max_elements,
                                    int strength) {
  if (max_elements == 0 || strength < 3) {
    throw std::invalid_argument("FksCompressor: bad parameters");
  }
  // x mod q collides for x != y iff q divides |x - y| < universe. A value
  // below universe has at most log2(universe)/log2(M) prime factors >= M,
  // so with q uniform among primes in [M, 2M] (>= M/(2 ln M) of them) the
  // pairwise collision probability is O(log universe * log M / M). Choose
  // M = max_elements^strength * log2(universe)^2 to push the union over
  // <= max_elements^2 pairs below 1/max_elements^(strength-2).
  const double lg_u =
      std::max(2.0, std::log2(static_cast<double>(universe) + 1.0));
  double m = std::pow(static_cast<double>(max_elements),
                      static_cast<double>(strength)) *
             lg_u * lg_u;
  m = std::max(m, 16.0);
  if (m > 0x1p62) throw std::invalid_argument("FksCompressor: range overflow");
  const auto lo = static_cast<std::uint64_t>(m);
  const std::uint64_t q = random_prime_in(rng, lo, 2 * lo + 1);
  return FksCompressor(q);
}

void FksCompressor::hash_many(std::span<const std::uint64_t> xs,
                              std::span<std::uint64_t> out) const {
  if (out.size() < xs.size()) {
    throw std::invalid_argument("FksCompressor::hash_many: output too small");
  }
  // Batched fixed-divisor reduction through the SIMD engine (exact on
  // every tier, so the image — and anything seeded from it — is
  // unchanged).
  const simd::ReduceConstants c{red_q_.magic_hi(), red_q_.magic_lo(),
                                red_q_.divisor()};
  simd::reduce_mod_many(c, xs, out);
}

bool FksCompressor::injective_on(util::SetView s) const {
  // Sort-and-scan beats a hash set for the small sets this sees, and does
  // no per-element allocation.
  std::vector<std::uint64_t> images(s.size());
  hash_many(s, images);
  std::sort(images.begin(), images.end());
  return std::adjacent_find(images.begin(), images.end()) == images.end();
}

void FksCompressor::append_seed(util::BitBuffer& out) const {
  out.append_gamma64(q_);
}

FksCompressor FksCompressor::read_seed(util::BitReader& in) {
  const std::uint64_t q = in.read_gamma64();
  if (q < 2) throw std::invalid_argument("FksCompressor: malformed seed");
  return FksCompressor(q);
}

std::size_t FksCompressor::seed_bits() const {
  return util::gamma64_cost_bits(q_);
}

}  // namespace setint::hashing
