// Carter-Wegman pairwise-independent hashing h(x) = ((a*x + b) mod p) mod t.
//
// This is the h: [n] -> [t] the paper invokes in Fact 2.2 and throughout:
// for any x != y, Pr[h(x) = h(y)] <= 2/t (the extra factor of <= 2 comes
// from the final mod t; range sizing in callers accounts for it). The seed
// is O(log p) bits, which is what makes the constructive private-coin
// variant (Section 3.1) cheap.
//
// Evaluation is division-free: construction precomputes a Montgomery
// context for the a*x product and Lemire reducers for the two folds
// (hashing/barrett.h), so the per-element cost is a handful of multiplies.
// The values produced are bit-identical to the plain (a*x + b) % p % t
// formula — golden transcripts pin this (docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "hashing/barrett.h"
#include "hashing/modmath.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint::hashing {

class PairwiseHash {
 public:
  // Hash from [universe) onto [range). Draws a prime p >= max(universe,
  // range, 2) and uniform a in [1, p), b in [0, p).
  static PairwiseHash sample(util::Rng& rng, std::uint64_t universe,
                             std::uint64_t range);

  std::uint64_t operator()(std::uint64_t x) const {
    const std::uint64_t xr = red_p_.mod(x);
    const std::uint64_t ax =
        mont_ ? mont_->mul(a_mont_, xr) : mulmod(a_, xr, p_);
    // addmod without overflow: both operands are < p.
    const std::uint64_t space = p_ - ax;
    const std::uint64_t v = b_ >= space ? b_ - space : ax + b_;
    return red_t_.mod(v);
  }

  // Array-batched evaluation: out[i] = (*this)(xs[i]). Requires
  // out.size() >= xs.size(). Same values as the scalar loop (pinned by
  // tests/bitio_property_test.cc), with the per-call branch on the
  // Montgomery context hoisted out of the loop.
  void hash_many(std::span<const std::uint64_t> xs,
                 std::span<std::uint64_t> out) const;

  std::uint64_t range() const { return t_; }
  std::uint64_t prime() const { return p_; }
  // Seed constants (already public via append_seed); reference baselines
  // in tests and the CPU bench recompute ((a*x + b) % p) % t from these.
  std::uint64_t multiplier() const { return a_; }
  std::uint64_t offset() const { return b_; }

  // Seed serialization: lets one party sample the function privately and
  // ship it to the peer (private-coin protocols). The universe/range are
  // protocol constants and are not re-transmitted.
  void append_seed(util::BitBuffer& out) const;
  static PairwiseHash read_seed(util::BitReader& in, std::uint64_t range);
  std::size_t seed_bits() const;

  // Pairwise collision bound for this instance: Pr[h(x)=h(y)] for x != y.
  double collision_probability() const;

 private:
  PairwiseHash(std::uint64_t p, std::uint64_t a, std::uint64_t b,
               std::uint64_t t);

  std::uint64_t p_;
  std::uint64_t a_;
  std::uint64_t b_;
  std::uint64_t t_;

  // Precomputed reduction state (derived from p_, a_, t_; never
  // serialized). mont_ is absent only for p == 2, where the plain mulmod
  // fallback runs (a prime that small never reaches a hot path).
  Reducer64 red_p_;
  Reducer64 red_t_;
  std::optional<Montgomery64> mont_;
  std::uint64_t a_mont_ = 0;  // a in Montgomery form, when mont_ is set
};

}  // namespace setint::hashing
