// Carter-Wegman pairwise-independent hashing h(x) = ((a*x + b) mod p) mod t.
//
// This is the h: [n] -> [t] the paper invokes in Fact 2.2 and throughout:
// for any x != y, Pr[h(x) = h(y)] <= 2/t (the extra factor of <= 2 comes
// from the final mod t; range sizing in callers accounts for it). The seed
// is O(log p) bits, which is what makes the constructive private-coin
// variant (Section 3.1) cheap.
#pragma once

#include <cstdint>

#include "util/bitio.h"
#include "util/rng.h"

namespace setint::hashing {

class PairwiseHash {
 public:
  // Hash from [universe) onto [range). Draws a prime p >= max(universe,
  // range, 2) and uniform a in [1, p), b in [0, p).
  static PairwiseHash sample(util::Rng& rng, std::uint64_t universe,
                             std::uint64_t range);

  std::uint64_t operator()(std::uint64_t x) const;

  std::uint64_t range() const { return t_; }
  std::uint64_t prime() const { return p_; }

  // Seed serialization: lets one party sample the function privately and
  // ship it to the peer (private-coin protocols). The universe/range are
  // protocol constants and are not re-transmitted.
  void append_seed(util::BitBuffer& out) const;
  static PairwiseHash read_seed(util::BitReader& in, std::uint64_t range);
  std::size_t seed_bits() const;

  // Pairwise collision bound for this instance: Pr[h(x)=h(y)] for x != y.
  double collision_probability() const;

 private:
  PairwiseHash(std::uint64_t p, std::uint64_t a, std::uint64_t b,
               std::uint64_t t)
      : p_(p), a_(a), b_(b), t_(t) {}

  std::uint64_t p_;
  std::uint64_t a_;
  std::uint64_t b_;
  std::uint64_t t_;
};

}  // namespace setint::hashing
