// Fact 2.1 / Section 2: solving EQ^k_n through INT_k.
//
// Each equality instance (x_i, y_i) becomes the pair-element
// (i, H_i(x_i)) packed into a single integer; the i-th instance is equal
// iff its element lands in the set intersection. Running the
// verification-tree protocol on the resulting sets answers all k equality
// instances at the protocol's O(k log^(r) k) cost and O(r) rounds — a
// round-complexity improvement from O(sqrt k) [FKNN95] to O(log* k) for
// amortized equality, one of the paper's corollaries.
//
// One-sided: equal instances are always reported equal; an unequal
// instance is misreported only on an H_i collision (prob 2^-hash_bits) or
// an inner-protocol failure.
#pragma once

#include <cstdint>
#include <vector>

#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"

namespace setint::reductions {

std::vector<bool> eqk_via_intersection(
    sim::Channel& channel, const sim::SharedRandomness& shared,
    std::uint64_t nonce, const std::vector<util::BitBuffer>& xs,
    const std::vector<util::BitBuffer>& ys,
    const core::VerificationTreeParams& params = {});

}  // namespace setint::reductions
