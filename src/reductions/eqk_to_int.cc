#include "reductions/eqk_to_int.h"

#include <algorithm>
#include <stdexcept>

#include "hashing/mask_hash.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint::reductions {

std::vector<bool> eqk_via_intersection(
    sim::Channel& channel, const sim::SharedRandomness& shared,
    std::uint64_t nonce, const std::vector<util::BitBuffer>& xs,
    const std::vector<util::BitBuffer>& ys,
    const core::VerificationTreeParams& params) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("eqk_via_intersection: size mismatch");
  }
  const std::size_t k = xs.size();
  if (k == 0) return {};

  // Hash width: 2 log2 k + 8 bits pushes the union-bound collision error
  // below 1/(256 k); keep the packed (index, hash) element within 63 bits.
  const unsigned index_bits = util::ceil_log2(std::max<std::uint64_t>(k, 2));
  const unsigned hash_bits = std::min<unsigned>(2 * index_bits + 8,
                                                63 - index_bits);
  if (hash_bits == 0) {
    throw std::invalid_argument("eqk_via_intersection: k too large to pack");
  }
  const std::uint64_t universe = std::uint64_t{1}
                                 << (index_bits + hash_bits);

  auto build_set = [&](const std::vector<util::BitBuffer>& side) {
    util::Set out;
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t h = hashing::mask_hash(
          side[i], hash_bits, shared.stream("eqk-h", nonce, i));
      out.push_back((static_cast<std::uint64_t>(i) << hash_bits) | h);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  const util::Set sa = build_set(xs);
  const util::Set tb = build_set(ys);

  const core::IntersectionOutput out = core::verification_tree_intersection(
      channel, shared, util::mix64(nonce, 0xE02), universe, sa, tb, params);

  // Instance i is "equal" iff its packed element survived on both sides.
  std::vector<bool> equal(k, false);
  const util::Set agreed = util::set_intersection(out.alice, out.bob);
  for (std::uint64_t e : agreed) {
    equal[static_cast<std::size_t>(e >> hash_bits)] = true;
  }
  return equal;
}

}  // namespace setint::reductions
