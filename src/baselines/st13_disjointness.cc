#include "baselines/st13_disjointness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hashing/pairwise.h"
#include "util/bitio.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint::baselines {

namespace {

// Pseudorandom membership of element e in the round's sparse coin set,
// with density 2^-b (elements of the announced set are members by
// construction; this decides the rest).
bool sparse_coin(const sim::SharedRandomness& shared, std::uint64_t nonce,
                 std::uint64_t round, std::uint64_t e, unsigned b) {
  util::Rng stream = shared.stream("st13-z", util::mix64(nonce, round), e);
  return (stream.next() & ((std::uint64_t{1} << b) - 1)) == 0;
}

}  // namespace

SparseDisjointnessResult st13_disjointness(sim::Channel& channel,
                                           const sim::SharedRandomness& shared,
                                           std::uint64_t nonce,
                                           std::uint64_t universe,
                                           util::SetView s, util::SetView t,
                                           int rounds_r) {
  util::validate_set(s, universe);
  util::validate_set(t, universe);
  if (rounds_r < 1) throw std::invalid_argument("st13: rounds_r < 1");
  const std::uint64_t k = std::max<std::uint64_t>({s.size(), t.size(), 2});

  // Compress to poly(k) so the endgame costs O(log k) per element.
  const double nd = static_cast<double>(k) * k * k;
  const std::uint64_t big_n = std::max<std::uint64_t>(
      1u << 16, static_cast<std::uint64_t>(std::min(nd, 0x1p62)));
  util::Rng hstream = shared.stream("st13-H", nonce);
  const auto big_h = hashing::PairwiseHash::sample(hstream, universe, big_n);
  auto image_of = [&big_h](util::SetView v) {
    util::Set image;
    image.reserve(v.size());
    for (std::uint64_t x : v) image.push_back(big_h(x));
    std::sort(image.begin(), image.end());
    image.erase(std::unique(image.begin(), image.end()), image.end());
    return image;
  };
  util::Set a_cur = image_of(s);
  util::Set b_cur = image_of(t);

  SparseDisjointnessResult result{true, 0};
  bool alice_turn = true;
  for (int round = 1; round <= rounds_r; ++round) {
    // Density schedule: b_i ~ log^(r-i+1) k, so round 1 costs
    // k log^(r) k and survivor counts telescope tower-fast.
    const auto b = static_cast<unsigned>(std::min(
        62.0,
        std::max(1.0, std::ceil(util::iterated_log(
                          rounds_r - round + 1, static_cast<double>(k))))));
    util::Set& announced = alice_turn ? a_cur : b_cur;
    util::Set& filtered = alice_turn ? b_cur : a_cur;
    if (announced.empty() || filtered.empty()) break;

    // Entropy-equivalent announcement of the first coin-set index
    // containing `announced`: |announced| * b + Theta(log) bits.
    const std::size_t index_bits =
        announced.size() * b + 2 * util::ceil_log2(announced.size() + 2) + 2;
    util::BitBuffer msg;
    for (std::size_t i = 0; i < index_bits; ++i) msg.append_bit(false);
    channel.send(alice_turn ? sim::PartyId::kAlice : sim::PartyId::kBob,
                 std::move(msg), "st13-index");
    result.sparse_rounds += 1;

    util::Set kept;
    for (std::uint64_t e : filtered) {
      if (util::set_contains(announced, e) ||
          sparse_coin(shared, nonce, static_cast<std::uint64_t>(round), e,
                      b)) {
        kept.push_back(e);
      }
    }
    filtered = std::move(kept);
    alice_turn = !alice_turn;
  }

  // Endgame: ship the smaller survivor set verbatim; any survivor overlap
  // decides the answer (common elements always survive every round).
  const bool alice_sends = a_cur.size() <= b_cur.size();
  const util::Set& small = alice_sends ? a_cur : b_cur;
  const util::Set& large = alice_sends ? b_cur : a_cur;
  util::BitBuffer final_msg;
  util::append_set(final_msg, small);
  const util::BitBuffer delivered = channel.send(
      alice_sends ? sim::PartyId::kAlice : sim::PartyId::kBob,
      std::move(final_msg), "st13-final");
  util::BitReader reader(delivered);
  const util::Set received = util::read_set(reader);
  result.disjoint = util::set_intersection(received, large).empty();

  util::BitBuffer verdict;
  verdict.append_bit(result.disjoint);
  channel.send(alice_sends ? sim::PartyId::kBob : sim::PartyId::kAlice,
               std::move(verdict), "st13-verdict");
  return result;
}

}  // namespace setint::baselines
