// Hastad-Wigderson randomized set disjointness [HW07]: R(DISJ_k) = O(k).
//
// Baseline for E8: the paper's INT_k protocols strictly generalize this —
// disjointness only decides |S cap T| = 0, and the classic HW trick
// (restricting to public-coin random supersets of the sender's set) breaks
// down exactly when the intersection is large, which is the case INT_k
// must handle.
//
// Protocol: first hash into a poly(k) universe, then repeat: the party
// with the smaller surviving set announces the index of the first shared
// random set containing its set; the peer keeps only elements inside that
// set (common elements always survive, others die with prob 1/2). After
// O(log k) phases the survivor sets are tiny and are exchanged verbatim.
//
// Simulation note (documented in DESIGN.md): the announced index is
// astronomically large, so the simulator transmits its entropy-equivalent
// cost (|S'| + Theta(log |S'|) bits, the expected Elias-gamma length of a
// Geometric(2^-|S'|) index) and derives the random set's membership from
// the shared stream — exactly the distribution the real protocol induces.
#pragma once

#include <cstdint>

#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::baselines {

struct DisjointnessResult {
  bool disjoint;            // protocol's answer
  std::uint64_t phases;     // halving phases executed
};

DisjointnessResult hw_disjointness(sim::Channel& channel,
                                   const sim::SharedRandomness& shared,
                                   std::uint64_t nonce, std::uint64_t universe,
                                   util::SetView s, util::SetView t);

}  // namespace setint::baselines
