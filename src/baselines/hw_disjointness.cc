#include "baselines/hw_disjointness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hashing/pairwise.h"
#include "util/bitio.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint::baselines {

namespace {

// Pseudorandom membership of element e in the phase's random superset Z
// (for elements outside the announced set; those inside are members by
// construction). Derived from shared randomness so both the driver and the
// "receiving party" evaluate it identically.
bool z_coin(const sim::SharedRandomness& shared, std::uint64_t nonce,
            std::uint64_t phase, std::uint64_t e) {
  return shared.stream("hw-z", util::mix64(nonce, phase), e).coin();
}

}  // namespace

DisjointnessResult hw_disjointness(sim::Channel& channel,
                                   const sim::SharedRandomness& shared,
                                   std::uint64_t nonce, std::uint64_t universe,
                                   util::SetView s, util::SetView t) {
  util::validate_set(s, universe);
  util::validate_set(t, universe);
  const std::uint64_t k = std::max<std::uint64_t>({s.size(), t.size(), 2});

  // Compress to a poly(k) universe so the endgame exchange costs O(log k)
  // per element (collision error O(1/k)).
  const double nd = static_cast<double>(k) * k * k;
  const std::uint64_t big_n =
      std::max<std::uint64_t>(64, static_cast<std::uint64_t>(std::min(nd, 0x1p62)));
  util::Rng hstream = shared.stream("hw-H", nonce);
  const auto big_h = hashing::PairwiseHash::sample(hstream, universe, big_n);

  auto image_of = [&big_h](util::SetView v) {
    util::Set image;
    image.reserve(v.size());
    for (std::uint64_t x : v) image.push_back(big_h(x));
    std::sort(image.begin(), image.end());
    image.erase(std::unique(image.begin(), image.end()), image.end());
    return image;
  };
  util::Set s_cur = image_of(s);
  util::Set t_cur = image_of(t);

  DisjointnessResult result{true, 0};
  const std::uint64_t max_phases = 6 * util::ceil_log2(k) + 12;
  bool alice_announces = true;
  while (std::min(s_cur.size(), t_cur.size()) > 8 &&
         result.phases < max_phases) {
    const util::Set& announced = alice_announces ? s_cur : t_cur;
    util::Set& filtered = alice_announces ? t_cur : s_cur;

    // Entropy-equivalent transmission of the index of the first shared
    // random set containing `announced`: Geometric(2^-|announced|) gamma-
    // coded, i.e. |announced| + Theta(log |announced|) bits.
    const std::size_t index_bits =
        announced.size() + 2 * util::ceil_log2(announced.size() + 2) + 2;
    util::BitBuffer msg;
    msg.append_bits(0, 0);
    for (std::size_t i = 0; i < index_bits; ++i) msg.append_bit(false);
    channel.send(alice_announces ? sim::PartyId::kAlice : sim::PartyId::kBob,
                 std::move(msg), "hw-index");

    // Receiver keeps elements of Z: members of `announced` always, others
    // with probability 1/2.
    util::Set kept;
    for (std::uint64_t e : filtered) {
      if (util::set_contains(announced, e) ||
          z_coin(shared, nonce, result.phases, e)) {
        kept.push_back(e);
      }
    }
    filtered = std::move(kept);
    alice_announces = !alice_announces;
    result.phases += 1;
  }

  // Endgame: smaller survivor set is sent verbatim.
  const bool alice_sends = s_cur.size() <= t_cur.size();
  const util::Set& small = alice_sends ? s_cur : t_cur;
  const util::Set& large = alice_sends ? t_cur : s_cur;
  util::BitBuffer final_msg;
  util::append_set(final_msg, small);
  const util::BitBuffer delivered = channel.send(
      alice_sends ? sim::PartyId::kAlice : sim::PartyId::kBob,
      std::move(final_msg), "hw-final");
  util::BitReader reader(delivered);
  const util::Set received = util::read_set(reader);
  const util::Set common = util::set_intersection(received, large);
  result.disjoint = common.empty();

  // One-bit verdict back so both parties know the answer.
  util::BitBuffer verdict;
  verdict.append_bit(result.disjoint);
  channel.send(alice_sends ? sim::PartyId::kBob : sim::PartyId::kAlice,
               std::move(verdict), "hw-verdict");
  return result;
}

}  // namespace setint::baselines
