// Saglam-Tardos-style r-round sparse set disjointness [ST13].
//
// The paper's optimality claims rest on the Omega(k log^(r) k) r-round
// DISJ lower bound of [ST13], which is matched by their sparse-set upper
// bound: interpret the public coin as a sequence of SPARSE random sets;
// the active party announces the index of the first coin set containing
// its current set. With per-round densities q_i = 2^-b_i,
// b_i ~ log^(r-i+1) k, announcing costs |current| * b_i bits while the
// peer's non-common elements survive only with probability 2^-b_i — the
// survivor counts telescope tower-fast and the total is O(k log^(r) k).
//
// The paper's "Our Technique" discussion points out these protocols are
// specific to k-disj: common elements NEVER die (S is always inside the
// announced set), so nothing here recovers the intersection — the gap
// INT_k protocols must close. This baseline exists to reproduce exactly
// that r-round tradeoff for the decision problem next to the paper's
// tradeoff for the search problem (bench/exp_disj_tradeoff).
//
// Simulation note: like the HW baseline, the astronomically large coin
// index is transmitted as its entropy-equivalent bit count with set
// membership derived from the shared stream (DESIGN.md section 3).
#pragma once

#include <cstdint>

#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::baselines {

struct SparseDisjointnessResult {
  bool disjoint;
  std::uint64_t sparse_rounds; // index-announcement rounds executed
};

// r >= 1 controls the round/communication tradeoff, exactly as in the
// paper's Theorem 1.1 but for the decision problem.
SparseDisjointnessResult st13_disjointness(sim::Channel& channel,
                                           const sim::SharedRandomness& shared,
                                           std::uint64_t nonce,
                                           std::uint64_t universe,
                                           util::SetView s, util::SetView t,
                                           int rounds_r);

}  // namespace setint::baselines
