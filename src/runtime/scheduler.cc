#include "runtime/scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "runtime/batch.h"
#include "util/rng.h"

namespace setint::runtime {

namespace {

// Domain-separation tags for the per-session schedule draws. Everything
// mixes the GLOBAL session key so resharding cannot move a timeline.
constexpr std::uint64_t kLatencyTag = 0x5ced01a7;
constexpr std::uint64_t kArrivalTag = 0x5ceda221;
constexpr std::uint64_t kChunkTag = 0x5cedc4c4;
constexpr std::uint64_t kShuffleTag = 0x5ced5f1e;

}  // namespace

struct Scheduler::Session {
  std::unique_ptr<core::ProtocolMachine> machine;
  util::Rng chunk_rng{0};     // per-session chunk-boundary stream
  std::uint64_t pending_events = 0;  // undelivered events in the heap
  bool started = false;
  bool finished = false;
};

struct Scheduler::Event {
  std::uint64_t tick = 0;
  std::uint64_t seq = 0;  // FIFO tiebreak: same-tick order is insertion order
  std::uint32_t session = 0;
  bool is_start = false;
  std::vector<std::uint8_t> bytes;
};

// Min-heap comparator (std::push_heap builds a max-heap, so invert).
struct Scheduler::EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.tick != b.tick) return a.tick > b.tick;
    return a.seq > b.seq;
  }
};

Scheduler::Scheduler(const SchedulerOptions& options) : options_(options) {
  if (options_.max_ack_latency == 0) options_.max_ack_latency = 1;
}

Scheduler::~Scheduler() = default;

void Scheduler::add(std::unique_ptr<core::ProtocolMachine> machine,
                    std::uint64_t key) {
  if (ran_) throw std::logic_error("Scheduler::add after run");
  Session s;
  s.machine = std::move(machine);
  s.chunk_rng = util::Rng(util::mix64(options_.seed, util::mix64(key, kChunkTag)));
  sessions_.push_back(std::move(s));
  SessionRecord rec;
  rec.key = key;
  rec.ack_latency =
      1 + util::mix64(options_.seed, util::mix64(key, kLatencyTag)) %
              options_.max_ack_latency;
  rec.start_tick =
      options_.arrival_window == 0
          ? 0
          : util::mix64(options_.seed, util::mix64(key, kArrivalTag)) %
                (options_.arrival_window + 1);
  records_.push_back(rec);
}

std::size_t Scheduler::session_count() const { return sessions_.size(); }

core::ProtocolMachine& Scheduler::machine(std::size_t local_index) {
  return *sessions_.at(local_index).machine;
}

const SessionRecord& Scheduler::record(std::size_t local_index) const {
  return records_.at(local_index);
}

void Scheduler::schedule_bytes(std::size_t idx, std::vector<std::uint8_t> bytes,
                               std::uint64_t tick) {
  Event ev;
  ev.tick = tick;
  ev.seq = next_seq_++;
  ev.session = static_cast<std::uint32_t>(idx);
  ev.bytes = std::move(bytes);
  sessions_[idx].pending_events += 1;
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void Scheduler::handle_output(std::size_t idx, const core::MachineOutput& out) {
  Session& s = sessions_[idx];
  SessionRecord& rec = records_[idx];
  if (out.status == core::MachineStatus::kNeedInput && out.frames > 0) {
    // One ack per emitted frame, all landing after this session's fixed
    // latency. With chunking on, the ack byte stream is cut at seeded
    // boundaries and the pieces arrive on successive ticks — in order
    // (the heap's seq tiebreak is FIFO), but forcing mid-frame parks.
    std::vector<std::uint8_t> acks;
    for (std::uint32_t i = 0; i < out.frames; ++i) {
      core::append_ack_frame(acks, rec.acks + i);
    }
    const std::uint64_t due = now_ + rec.ack_latency;
    if (options_.chunk_bytes == 0) {
      schedule_bytes(idx, std::move(acks), due);
    } else {
      std::size_t pos = 0;
      std::uint64_t piece = 0;
      while (pos < acks.size()) {
        const std::size_t len = std::min<std::size_t>(
            1 + s.chunk_rng.below(options_.chunk_bytes), acks.size() - pos);
        schedule_bytes(idx,
                       std::vector<std::uint8_t>(
                           acks.begin() + static_cast<std::ptrdiff_t>(pos),
                           acks.begin() + static_cast<std::ptrdiff_t>(pos + len)),
                       due + piece);
        pos += len;
        piece += 1;
      }
    }
    return;
  }
  if (out.status == core::MachineStatus::kDone ||
      out.status == core::MachineStatus::kFailed) {
    if (!s.finished) {
      s.finished = true;
      rec.end_tick = now_;
      rec.final_status = out.status;
      rec.steps = s.machine->steps();
      rec.acks = s.machine->acks();
      rec.frame_parks = s.machine->frame_parks();
      rec.bits_total = s.machine->cost().bits_total;
      rec.digest = s.machine->digest();
      rec.result_fingerprint = out.status == core::MachineStatus::kDone
                                   ? s.machine->result_fingerprint()
                                   : 0;
      completion_.observe(rec.end_tick - rec.start_tick + 1);
      if (out.status == core::MachineStatus::kDone) {
        completed_ += 1;
      } else {
        failed_ += 1;
      }
      inflight_ -= 1;
    }
  }
}

void Scheduler::deliver(std::size_t idx, const std::vector<std::uint8_t>& bytes,
                        bool is_start) {
  Session& s = sessions_[idx];
  SessionRecord& rec = records_[idx];
  if (s.finished) return;  // stale chunk events after completion
  if (is_start) {
    s.started = true;
    inflight_ += 1;
    peak_inflight_ = std::max(peak_inflight_, inflight_);
    const core::MachineOutput out = s.machine->start();
    handle_output(idx, out);
    return;
  }
  const std::uint64_t acks_before = s.machine->acks();
  const core::MachineOutput out = s.machine->on_bytes(bytes.data(), bytes.size());
  const std::uint64_t consumed = s.machine->acks() - acks_before;
  if (consumed > 0) ack_rtt_.observe(rec.ack_latency, consumed);
  rec.acks = s.machine->acks();
  handle_output(idx, out);
}

void Scheduler::run() {
  if (ran_) throw std::logic_error("Scheduler::run called twice");
  ran_ = true;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Event ev;
    ev.tick = records_[i].start_tick;
    ev.seq = next_seq_++;
    ev.session = static_cast<std::uint32_t>(i);
    ev.is_start = true;
    sessions_[i].pending_events += 1;
    heap_.push_back(std::move(ev));
  }
  std::make_heap(heap_.begin(), heap_.end(), EventAfter{});

  std::vector<Event> batch;
  std::vector<std::uint32_t> ready;           // unique sessions, seq order
  std::vector<std::vector<std::size_t>> by_session;  // event idxs per ready[i]
  // session -> slot in `ready` this tick, stamped to avoid an O(sessions)
  // clear per tick.
  std::vector<std::uint64_t> slot_stamp(sessions_.size(), 0);
  std::vector<std::size_t> slot_of(sessions_.size(), 0);
  std::uint64_t stamp = 0;
  while (!heap_.empty()) {
    now_ = heap_.front().tick;
    stamp += 1;
    // Drain every event due this tick, grouping by session while keeping
    // each session's events in (tick, seq) pop order — i.e. FIFO.
    batch.clear();
    ready.clear();
    while (!heap_.empty() && heap_.front().tick == now_) {
      std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
      Event ev = std::move(heap_.back());
      heap_.pop_back();
      if (slot_stamp[ev.session] != stamp) {
        slot_stamp[ev.session] = stamp;
        slot_of[ev.session] = ready.size();
        ready.push_back(ev.session);
        if (by_session.size() < ready.size()) by_session.emplace_back();
        by_session[ready.size() - 1].clear();
      }
      by_session[slot_of[ev.session]].push_back(batch.size());
      batch.push_back(std::move(ev));
    }
    // Seeded Fisher-Yates over the READY SESSIONS: adversarial
    // interleaving across sessions, per-session byte order untouched —
    // reordering bytes within one stream would be corruption, not
    // scheduling.
    if (options_.shuffle && ready.size() > 1) {
      util::Rng shuffle_rng(
          util::mix64(options_.seed, util::mix64(now_, kShuffleTag)));
      for (std::size_t i = ready.size() - 1; i > 0; --i) {
        std::swap(ready[i], ready[shuffle_rng.below(i + 1)]);
      }
    }
    for (const std::uint32_t session : ready) {
      for (const std::size_t idx : by_session[slot_of[session]]) {
        Event& e = batch[idx];
        events_processed_ += 1;
        sessions_[e.session].pending_events -= 1;
        deliver(e.session, e.bytes, e.is_start);
      }
    }
  }
  // Every session must have resolved; a live machine with an empty heap
  // would mean the engine lost an ack (a bug worth failing loudly on).
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (!sessions_[i].finished) {
      throw std::logic_error("scheduler: session " +
                             std::to_string(records_[i].key) +
                             " stalled with no pending events");
    }
  }
}

std::uint64_t fold_session(std::uint64_t key, std::uint64_t digest,
                           std::uint64_t result_fingerprint) {
  return util::mix64(util::mix64(key + 1, digest), result_fingerprint);
}

core::ProtocolMachine& ServiceRun::machine(std::size_t g) {
  const std::size_t shard_count = shards.size();
  return shards[g % shard_count]->machine(g / shard_count);
}

const SessionRecord& ServiceRun::record(std::size_t g) const {
  const std::size_t shard_count = shards.size();
  return shards[g % shard_count]->record(g / shard_count);
}

std::size_t ServiceRun::session_count() const {
  std::size_t n = 0;
  for (const auto& s : shards) n += s->session_count();
  return n;
}

ServiceRun run_service(
    std::vector<std::unique_ptr<core::ProtocolMachine>> machines,
    const SchedulerOptions& options, int threads) {
  ServiceRun out;
  const std::size_t shard_count = static_cast<std::size_t>(std::min<std::size_t>(
      std::max(1, resolve_threads(threads)),
      std::max<std::size_t>(1, machines.size())));
  out.shards.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    out.shards.push_back(std::make_unique<Scheduler>(options));
  }
  for (std::size_t g = 0; g < machines.size(); ++g) {
    out.shards[g % shard_count]->add(std::move(machines[g]), g);
  }
  run_sessions(shard_count, static_cast<int>(shard_count),
               [&](std::size_t i) { out.shards[i]->run(); });
  // Aggregate. Histogram merges are exact and commutative; the digest fold
  // is an order-invariant XOR; peak concurrency needs the interval sweep.
  std::vector<std::uint64_t> starts, ends;
  for (const auto& shard : out.shards) {
    out.completed += shard->completed();
    out.failed += shard->failed();
    out.events_processed += shard->events_processed();
    out.ack_rtt.merge(shard->ack_rtt());
    out.completion_ticks.merge(shard->completion_ticks());
    for (const SessionRecord& rec : shard->records()) {
      out.digest_fold ^= fold_session(rec.key, rec.digest, rec.result_fingerprint);
      starts.push_back(rec.start_tick);
      ends.push_back(rec.end_tick);
    }
  }
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  std::size_t si = 0, ei = 0;
  std::uint64_t live = 0;
  while (si < starts.size()) {
    // A session occupies [start, end] inclusive: pop ends strictly before
    // the next start.
    if (ends[ei] < starts[si]) {
      live -= 1;
      ei += 1;
    } else {
      live += 1;
      si += 1;
      out.peak_inflight = std::max(out.peak_inflight, live);
    }
  }
  return out;
}

}  // namespace setint::runtime
