// Event-loop scheduler for sans-IO protocol machines.
//
// One Scheduler multiplexes thousands to millions of core::ProtocolMachine
// sessions on a single thread over a SIMULATED tick clock: no sockets, no
// wall time, no OS scheduler — every byte movement is an event in a
// deterministic priority queue. Per tick the ready sessions are visited in
// a seeded Fisher-Yates order, each delivered its due bytes via
// machine->on_bytes(); frames the machine emits are answered with one ack
// frame each, scheduled one-or-more ticks later (per-session deterministic
// latency). With chunk_bytes > 0 the ack bytes are additionally re-chunked
// at seeded byte boundaries and the pieces land on successive ticks, which
// forces genuine mid-message parks (FrameAssembler suspensions) on live
// sessions — the adversarial delivery schedule the differential tests run
// under.
//
// Determinism + thread invariance (the load-bearing property): a session's
// entire timeline — start tick, ack latency, chunk boundaries, every tick
// it wakes on — is a pure function of (options.seed, session key). Sessions
// never interact, so ALL aggregate statistics are independent of how the
// sessions are sharded across schedulers: run_service() with 1, 2 or N
// threads produces bit-identical records, histograms, digests and peak
// concurrency. bench/exp_service gates on exactly this, and
// tests/sansio_test.cc pins the per-session digests against blocking runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "obs/hdr_histogram.h"

namespace setint::runtime {

struct SchedulerOptions {
  std::uint64_t seed = 1;         // schedule randomness master seed
  bool shuffle = true;            // seeded per-tick shuffle of ready sessions
  std::uint64_t max_ack_latency = 4;   // per-session ack delay in [1, max]
  std::uint64_t chunk_bytes = 0;  // > 0: re-chunk ack bytes, pieces <= this
  std::uint64_t arrival_window = 0;    // session start ticks in [0, window]
};

// Everything the differential harness needs to compare one scheduler-driven
// session against its blocking reference, plus the latency samples the
// service bench aggregates. Pure function of (options.seed, key, machine
// inputs) — never of sharding or thread count.
struct SessionRecord {
  std::uint64_t key = 0;          // caller-assigned global session key
  std::uint64_t start_tick = 0;
  std::uint64_t end_tick = 0;
  core::MachineStatus final_status = core::MachineStatus::kIdle;
  std::uint64_t steps = 0;
  std::uint64_t acks = 0;
  std::uint64_t frame_parks = 0;  // mid-message suspensions observed
  std::uint64_t ack_latency = 0;  // this session's deterministic ack delay
  std::uint64_t bits_total = 0;
  std::uint64_t digest = 0;       // streaming transcript digest
  std::uint64_t result_fingerprint = 0;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options);
  // Out of line: Session/Event are incomplete here, so the implicit
  // (inline) destructor would not compile in other translation units.
  ~Scheduler();

  // Registers a session under `key` (the GLOBAL session identity: every
  // per-session schedule draw mixes the key, not the local index, so a
  // session's timeline survives resharding). Call before run().
  void add(std::unique_ptr<core::ProtocolMachine> machine, std::uint64_t key);

  // Runs the event loop until every session is kDone or kFailed.
  void run();

  std::size_t session_count() const;
  core::ProtocolMachine& machine(std::size_t local_index);
  const SessionRecord& record(std::size_t local_index) const;
  const std::vector<SessionRecord>& records() const { return records_; }

  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  // Peak number of simultaneously live (started, unfinished) sessions.
  std::uint64_t peak_inflight() const { return peak_inflight_; }
  std::uint64_t ticks() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }
  const obs::HdrHistogram& ack_rtt() const { return ack_rtt_; }
  const obs::HdrHistogram& completion_ticks() const { return completion_; }

 private:
  struct Session;
  struct Event;
  struct EventAfter;
  void deliver(std::size_t idx, const std::vector<std::uint8_t>& bytes,
               bool is_start);
  void handle_output(std::size_t idx, const core::MachineOutput& out);
  void schedule_bytes(std::size_t idx, std::vector<std::uint8_t> bytes,
                      std::uint64_t tick);

  SchedulerOptions options_;
  std::vector<Session> sessions_;
  std::vector<SessionRecord> records_;
  std::vector<Event> heap_;  // min-heap on (tick, seq)
  std::uint64_t next_seq_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t inflight_ = 0;
  std::uint64_t peak_inflight_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  obs::HdrHistogram ack_rtt_;
  obs::HdrHistogram completion_;
  bool ran_ = false;
};

// A sharded multi-threaded service run: machine g lives on shard g % S and
// keeps global key g, so every aggregate below is identical for any thread
// count (wall-clock aside). Shards are plain single-threaded Schedulers —
// the thread-affinity contract of docs/OBSERVABILITY.md holds because no
// session, channel or histogram is ever touched by two threads.
struct ServiceRun {
  std::vector<std::unique_ptr<Scheduler>> shards;

  // The machine registered under global key g.
  core::ProtocolMachine& machine(std::size_t g);
  const SessionRecord& record(std::size_t g) const;
  std::size_t session_count() const;

  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  // True global peak concurrency, recomputed by an endpoint sweep over all
  // shards' session intervals (per-shard peaks can max at different ticks,
  // so summing them would overcount and break thread invariance).
  std::uint64_t peak_inflight = 0;
  std::uint64_t events_processed = 0;
  obs::HdrHistogram ack_rtt;          // exact merge across shards
  obs::HdrHistogram completion_ticks; // exact merge across shards
  // Order-invariant fold of every session's (key, digest, result
  // fingerprint) — the one number exp_service compares across thread
  // counts and against the blocking reference fleet.
  std::uint64_t digest_fold = 0;
};

// Runs `machines` (machine g under global key g) across
// resolve_threads(threads) shards via runtime::run_sessions.
ServiceRun run_service(std::vector<std::unique_ptr<core::ProtocolMachine>> machines,
                       const SchedulerOptions& options, int threads);

// The order-invariant per-session fold run_service accumulates; exposed so
// a blocking reference fleet can compute the identical number.
std::uint64_t fold_session(std::uint64_t key, std::uint64_t digest,
                           std::uint64_t result_fingerprint);

}  // namespace setint::runtime
