#include "runtime/batch.h"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace setint::runtime {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void run_sessions(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  int workers = resolve_threads(threads);
  if (static_cast<std::size_t>(workers) > count) {
    workers = static_cast<int>(count);
  }

  // Index-addressed exception slots: a session that throws parks its
  // exception at its own index; every other session still runs. Rethrow
  // order is session order, not completion order — and the serial path
  // below uses the same run-all-then-rethrow semantics, so threads=1 and
  // threads=N are indistinguishable even for throwing workloads.
  std::vector<std::exception_ptr> errors(count);

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    return;
  }

  std::atomic<std::size_t> cursor{0};

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();  // the merge barrier

  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace setint::runtime
