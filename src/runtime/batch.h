// Parallel batch execution with serial-identical determinism.
//
// The protocols in this library are embarrassingly parallel at the
// session level: a bench sweep or an error-rate estimate runs thousands
// of independent seeded sessions, each with its own sim::Channel, its own
// RNG substream and (optionally) its own obs tracer. This engine runs
// those sessions across a worker pool while guaranteeing that EVERY
// observable output — results, metrics JSON, transcript digests — is
// byte-for-byte identical to a serial run of the same seeds:
//
//   * sessions never share mutable state: each body invocation owns its
//     channel, randomness and metrics (the thread-affinity contract in
//     docs/OBSERVABILITY.md);
//   * per-session randomness is a pure function of (master_seed,
//     session_index), so claiming order cannot leak into any RNG stream;
//   * outputs land in a pre-sized, index-addressed slot array and are
//     merged IN SESSION ORDER after the join barrier, so thread count and
//     scheduling affect wall-clock only.
//
// Exceptions keep the same discipline: a throwing session parks its
// exception in its slot, remaining sessions still run, and after the
// barrier the lowest-index exception is rethrown — the same one a serial
// loop would have surfaced first.
//
// setint::run_batch (setint.h) is the facade entry point built on this;
// the statistical test suite and the exp_batch bench drive it directly.
#pragma once

#include <cstddef>
#include <functional>

namespace setint::runtime {

// Resolves a thread-count request: n >= 1 is taken as-is, 0 means
// std::thread::hardware_concurrency() (at least 1).
int resolve_threads(int requested);

// Runs body(i) for every i in [0, count) across `threads` workers
// (resolve_threads applied; capped at count). Workers claim indices from
// a shared atomic cursor. threads <= 1 degenerates to a plain serial
// loop — the baseline parallel runs must be bit-identical to.
//
// Requirements on body: invocations for distinct indices must not share
// mutable state (no common Channel/Tracer/FaultPlan/Adversary/Rng) and
// must write their outputs only to index-owned slots.
//
// If any invocation throws, every claimed session still runs to
// completion (or parks its own exception); afterwards the exception of
// the LOWEST session index is rethrown.
void run_sessions(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace setint::runtime
