// Multi-party set intersection, coordinator variant (Corollary 4.1).
//
// Players are partitioned into groups of at most 2k; each group's first
// player coordinates, running the (amplified) two-party protocol with
// every other member in parallel and intersecting the verified results.
// Coordinators then recurse among themselves. The number of active
// players drops by a factor 2k per level, so total communication is
// dominated by the first level: O(k log^(r) k) average bits per player,
// rounds O(r * max(1, log(m)/log(k))), success 1 - 1/2^k via the 2k-bit
// verification equality checks.
#pragma once

#include <cstdint>
#include <vector>

#include <cstddef>

#include "core/breaker.h"
#include "core/budget.h"
#include "core/checkpoint.h"
#include "core/resource_limits.h"
#include "core/retry.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "obs/tracer.h"
#include "sim/adversary.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::obs {
class FlightRecorder;
}  // namespace setint::obs

namespace setint::multiparty {

// Two-party intersection amplified to success 1 - 2^-Theta(k): runs the
// verification-tree protocol, then a 2k-bit equality certificate on the
// two candidates; by the Corollary 3.4 invariant, equal candidates ARE the
// intersection, so a passing certificate certifies exactness. Failed
// certificates (hash collisions, or corruption when a fault plan is
// active) trigger re-runs with fresh randomness, bounded by the
// RetryPolicy. On a reliable channel a deterministic-exchange backstop
// guarantees exact termination; under an active fault plan budget
// exhaustion instead degrades to an honestly-flagged superset
// (verified = false, degraded = true) — see docs/ROBUSTNESS.md.
struct VerifiedRunResult {
  util::Set intersection;
  sim::CostStats cost;
  std::uint64_t repetitions = 1;  // certified attempts consumed
  bool verified = true;   // certificate (or exact backstop) vouches for it
  bool degraded = false;  // superset-only answer after budget exhaustion

  // Chaos recovery accounting (zero without an installed ChaosPlan).
  std::uint64_t restarts = 0;       // crash/partition blocks waited out
  std::uint64_t bits_replayed = 0;  // bits re-sent past the last checkpoint
  bool peer_lost = false;  // peer never came back; degraded without retries

  // Overload governance (core/budget.h): the degradation-ladder rung the
  // session ended on, and — when a session budget tripped — which
  // dimension. `refused` is the bottom rung: the session returned NO
  // answer (empty set, verified=false, degraded=false) because
  // SessionBudgetSpec::refuse_on_exhaustion asked for an explicit
  // ResourceExhausted over a weak superset.
  core::DegradeRung rung = core::DegradeRung::kExact;
  bool refused = false;
  core::BudgetDimension budget_reason = core::BudgetDimension::kNone;
};

// Environment for one certified session. None of the pointers are owned.
//
//   tracer    — installed on the internal channel, so phase spans and
//               metrics from the whole certified run (repetitions,
//               certificate, recovery) land under the caller's span.
//   faults    — iid fault plan (sim/fault.h); makes the channel unreliable.
//   adversary — makes one PARTY Byzantine (sim/adversary.h); because a
//               Byzantine peer could feed the deterministic-exchange
//               backstop lying bytes, an enabled adversary — like an
//               enabled fault plan or chaos plan — routes budget
//               exhaustion into the honest degraded path instead.
//   limits    — resource caps installed on the channel; breaches burn a
//               retry attempt like any decode failure.
//   recorder  — flight recorder (obs/recorder.h); besides the channel's
//               own events it receives kRetry/kBackstop/kDegrade/kRestart
//               markers from this recovery layer, and a degradation fires
//               FlightRecorder::incident().
//   chaos     — crash/partition/burst schedule (sim/chaos.h) driving the
//               session clock; player_a/player_b name this pair's global
//               player ids inside the plan. A crash or partition mid-
//               attempt is waited out (retry.max_resume_wait_rounds) and
//               the attempt resumes from its last phase checkpoint — or
//               from scratch when `checkpoint` is false — up to
//               retry.max_restarts times; a permanently dead peer yields
//               peer_lost + the degraded input-fallback superset.
//   budget    — per-session spending caps (core/budget.h), enforced at
//               phase boundaries (via the checkpoint hook) and between
//               attempts. Exhaustion ends certified attempts, skips the
//               backstop (which would spend more), and descends the
//               degradation ladder — or refuses outright when
//               refuse_on_exhaustion is set.
//   retry_pool— shared coordinator-level retry-token pool; every
//               RE-attempt draws one token, and a dry pool ends this
//               session's retries (budget_reason = kPool).
//   breaker   — per-link circuit breaker. The session feeds it attempt
//               outcomes (on_success on a passing certificate, on_failure
//               otherwise) and honors allow() before every attempt; the
//               coordinator additionally gates whole sessions on it.
struct SessionHooks {
  obs::Tracer* tracer = nullptr;
  sim::FaultPlan* faults = nullptr;
  sim::Adversary* adversary = nullptr;
  const core::ResourceLimits* limits = nullptr;
  obs::FlightRecorder* recorder = nullptr;
  sim::ChaosPlan* chaos = nullptr;
  std::size_t player_a = 0;
  std::size_t player_b = 1;
  bool checkpoint = true;  // phase-boundary resume (core/checkpoint.h)
  core::SessionBudgetSpec budget;
  core::RetryBudgetPool* retry_pool = nullptr;
  core::CircuitBreaker* breaker = nullptr;
};

VerifiedRunResult verified_two_party_intersection(
    const sim::SharedRandomness& shared, std::uint64_t nonce,
    std::uint64_t universe, util::SetView s, util::SetView t,
    const core::VerificationTreeParams& params, std::size_t k_bound,
    const core::RetryPolicy& retry = {}, const SessionHooks& hooks = {});

// The certified session — attempt loop, 2k-bit certificate, backstop,
// degradation ladder — as an explicitly re-enterable driver. It exists in
// two modes sharing ONE code path:
//
//   * blocking (resumable = false): run() executes the session start to
//     finish, byte-identical to the historical function above (which is
//     now a thin wrapper over this class);
//   * resumable (resumable = true): step() arms the checkpoint's
//     park-at-boundaries knob and advances the session exactly one phase
//     boundary of the underlying verification-tree protocol per call —
//     the seam multiparty/session_machine.h turns into a sans-IO
//     ProtocolMachine.
//
// A park-resume re-entry skips the between-attempt backoff/budget check
// (which the blocking path runs once per attempt, not per boundary) and
// lands in Checkpoint::park_resumes() rather than checkpoint.restores,
// so every checkpoint.*/budget.* metric and the final VerifiedRunResult
// match the blocking path exactly — pinned by tests/sansio_test.cc.
//
// Lifetime: `shared`, the SetView inputs and every SessionHooks pointer
// must outlive the driver. In resumable mode the driver forces a
// checkpoint store even without chaos/budget (parking needs a seam), but
// only emits checkpoint.* metrics when the blocking path would.
class VerifiedSessionDriver {
 public:
  VerifiedSessionDriver(const sim::SharedRandomness& shared,
                        std::uint64_t nonce, std::uint64_t universe,
                        util::SetView s, util::SetView t,
                        const core::VerificationTreeParams& params,
                        std::size_t k_bound, const core::RetryPolicy& retry,
                        const SessionHooks& hooks, bool resumable);

  // Blocking mode: the whole session in one call.
  VerifiedRunResult run();

  // Resumable mode: advances to the next phase boundary; returns true
  // once the session has finished and result() is final. With
  // hooks.checkpoint = false there is no parking seam and the first step
  // runs the session to completion.
  bool step();

  bool finished() const { return done_; }
  const VerifiedRunResult& result() const { return result_; }
  sim::Channel& channel() { return channel_; }
  core::Checkpoint* checkpoint() { return ckpt_; }

 private:
  // Returns true when the session finished inside the attempt loop (a
  // certified answer); false when control falls through to the ladder.
  bool run_attempt_loop();
  void run_ladder();
  void run_session();
  void finish();
  bool wait_out_block(std::uint64_t resume_tick, const char* what);

  const sim::SharedRandomness& shared_;
  const std::uint64_t nonce_;
  const std::uint64_t universe_;
  const util::SetView s_;
  const util::SetView t_;
  const core::VerificationTreeParams params_;
  const std::size_t k_bound_;
  const core::RetryPolicy retry_;
  const SessionHooks hooks_;
  const bool resumable_;

  obs::Tracer* tracer_;
  sim::FaultPlan* faults_;
  sim::Adversary* adversary_;
  obs::FlightRecorder* recorder_;
  sim::ChaosPlan* chaos_;
  sim::Channel channel_;
  obs::Span span_;
  core::SessionBudget budget_;
  bool budget_enabled_;
  core::RetryBudgetPool* pool_;
  core::CircuitBreaker* breaker_;
  core::Checkpoint ckpt_store_;
  core::Checkpoint* ckpt_;
  bool emit_ckpt_metrics_;

  std::uint64_t max_attempts_;
  VerifiedRunResult result_;
  std::uint64_t restarts_used_ = 0;
  std::uint64_t attempt_start_bits_ = 0;
  bool breaker_denied_ = false;

  // Resume cursor: which part of the session the next (re-)entry lands in.
  std::uint64_t rep_ = 0;     // current attempt index
  bool in_attempt_ = false;   // attempt initialized, inner loop live
  bool attempt_live_ = false;
  bool backoff_due_ = false;
  bool skip_pre_ = false;     // park-resume: skip backoff + budget precheck
  bool post_loop_ = false;    // attempt loop exhausted; ladder next
  bool done_ = false;
};

struct MultipartyParams {
  core::VerificationTreeParams tree;  // two-party sub-protocol parameters
  std::size_t k_bound = 0;            // 0 = auto: max input set size

  // If true, the final coordinator broadcasts the result so EVERY player
  // ends up holding the intersection (one extra parallel round; m-1
  // messages of |result| * O(log(n/|result|)) bits).
  bool broadcast_result = false;

  // Retry/degradation budget for every certified two-party sub-run.
  core::RetryPolicy retry;

  // Per-call fault plan override (not owned); when null the Network's
  // installed plan (sim::Network::set_fault_plan) is used, if any.
  sim::FaultPlan* fault_plan = nullptr;

  // Byzantine player model (docs/ROBUSTNESS.md): `adversary` (not owned)
  // replaces player index `byzantine_player`'s outbound frames in every
  // pairwise sub-run that player participates in. The adversary is
  // rebound (Adversary::set_party) to whichever channel role that player
  // holds in each pair; pairs of honest players run clean. Invariant the
  // tests pin: a lying player can only corrupt results derived from its
  // own input — with an honest root the final intersection is still a
  // subset of every honest player's set.
  sim::Adversary* adversary = nullptr;
  std::size_t byzantine_player = static_cast<std::size_t>(-1);

  // Resource limits installed on every internal pairwise channel. Default
  // (all zero) is disabled and free.
  core::ResourceLimits limits;

  // Per-call chaos plan override (not owned); when null the Network's
  // installed plan (sim::Network::set_chaos_plan) is used, if any. Pairs
  // are addressed inside the plan by their global player indices; a pair
  // with a permanently dead player is skipped (the accumulator keeps the
  // superset invariant) and counted in dead_player_skips.
  sim::ChaosPlan* chaos = nullptr;

  // Phase-boundary checkpointing for chaos recovery (core/checkpoint.h).
  bool checkpoint = true;

  // ---- Overload governance (core/budget.h, core/breaker.h) ----

  // Per-session spending caps applied to every pairwise sub-run. Default
  // (all zero) is disabled and free.
  core::SessionBudgetSpec budget;

  // Shared retry-token pool capacity across ALL pairwise sessions of this
  // run; 0 = unlimited. With a pool, one pathological link can exhaust
  // its own session's attempts but not starve the other m-1 sessions.
  std::uint64_t retry_pool_attempts = 0;

  // Per-link circuit breaker policy (failure_threshold 0 = disabled).
  // Breakers persist across levels of the recursion, so evidence about a
  // dead link accumulates; an open breaker short-circuits the whole pair
  // straight to honest degradation without spending a bit.
  core::BreakerPolicy breaker;

  // Deterministic admission control: when the retry pool drains below
  // admission.critical_fraction, new pair-sessions are shed by seeded
  // priority before they start (critical_fraction 0 = off).
  core::AdmissionPolicy admission;
};

struct MultipartyResult {
  util::Set intersection;
  std::size_t levels = 0;
  std::uint64_t total_repetitions = 0;  // two-party re-runs across all pairs
  std::uint64_t broadcast_bits = 0;     // 0 unless broadcast_result was set

  // Degradation accounting: pairwise sub-runs (coordinator) or matches
  // (tournament) that exhausted their retry budget or were skipped because
  // every attempt was fault-touched. When degraded is true the
  // intersection is still ALWAYS a superset of the true m-way
  // intersection, but may be strict.
  std::uint64_t degraded_pairs = 0;
  bool degraded = false;

  // Chaos recovery accounting across all pairwise sub-runs.
  std::uint64_t total_restarts = 0;
  std::uint64_t total_bits_replayed = 0;
  std::uint64_t dead_player_skips = 0;

  // Overload-governance accounting. Shed, short-circuited and refused
  // pairs are all also counted in degraded_pairs (the accumulator skipped
  // them, so the answer is a flagged superset).
  std::uint64_t shed_pairs = 0;              // admission control rejections
  std::uint64_t breaker_short_circuits = 0;  // open-breaker pair skips
  std::uint64_t refused_pairs = 0;           // sessions ending on kRefused
  std::uint64_t pool_retry_denials = 0;      // dry-pool retry denials
  std::uint64_t breaker_opens = 0;           // breaker trips across links

  // Honest per-player accounting: per_player_degraded[p] counts the
  // pairwise sub-runs involving global player p that ended degraded,
  // shed, short-circuited, refused or dead-skipped — both endpoints of a
  // governed-away pair are charged, so no player's loss is hidden.
  std::vector<std::uint64_t> per_player_degraded;
};

// Computes the m-way intersection of `sets` (each a subset of [universe)).
// Costs land in `network` (per-player bits + batched rounds).
MultipartyResult coordinator_intersection(sim::Network& network,
                                          const sim::SharedRandomness& shared,
                                          std::uint64_t universe,
                                          const std::vector<util::Set>& sets,
                                          const MultipartyParams& params = {});

}  // namespace setint::multiparty
