#include "multiparty/session_machine.h"

#include "util/rng.h"

namespace setint::multiparty {

VerifiedSessionMachine::VerifiedSessionMachine(SessionMachineConfig cfg)
    : cfg_(std::move(cfg)), shared_(cfg_.seed) {
  driver_ = std::make_unique<VerifiedSessionDriver>(
      shared_, cfg_.nonce, cfg_.universe, util::SetView(cfg_.s),
      util::SetView(cfg_.t), cfg_.tree, cfg_.k_bound, cfg_.retry, cfg_.hooks,
      /*resumable=*/true);
  driver_->channel().enable_digest();
}

std::uint64_t fingerprint_verified_result(const VerifiedRunResult& r) {
  std::uint64_t h = core::fingerprint_set(0x5e55, r.intersection);
  h = util::mix64(h, r.repetitions);
  h = util::mix64(h, (r.verified ? 1u : 0u) | (r.degraded ? 2u : 0u) |
                         (r.refused ? 4u : 0u) | (r.peer_lost ? 8u : 0u));
  h = util::mix64(h, static_cast<std::uint64_t>(r.rung));
  h = util::mix64(h, static_cast<std::uint64_t>(r.budget_reason));
  return h;
}

std::uint64_t VerifiedSessionMachine::result_fingerprint() const {
  return fingerprint_verified_result(result());
}

}  // namespace setint::multiparty
