// The certified multiparty session as a sans-IO protocol machine.
//
// core::CheckpointedMachine wraps one BARE protocol; the certified
// two-party session is bigger — retry loop, 2k-bit certificate,
// deterministic backstop, degradation ladder — and its control flow lives
// ABOVE the checkpointed verification tree. VerifiedSessionMachine
// therefore drives multiparty::VerifiedSessionDriver in resumable mode:
// each engine step calls driver.step(), which advances exactly one phase
// boundary of the underlying protocol (or one rung of the ladder) and
// parks. Everything the blocking verified_two_party_intersection()
// produces — VerifiedRunResult, checkpoint.*/budget.* metrics, the
// transcript digest — is available afterwards and must match the
// blocking run bit for bit; tests/sansio_test.cc pins this under fault,
// chaos and budget hooks.
//
// The machine owns copies of its inputs and its SharedRandomness, so a
// scheduler can hold 10^5 of them with no external lifetime obligations
// beyond the SessionHooks pointers (tracer/faults/chaos/...), which the
// caller must keep alive for the machine's lifetime — same contract as
// the blocking call.
#pragma once

#include <cstdint>
#include <memory>

#include "core/engine.h"
#include "multiparty/coordinator.h"

namespace setint::multiparty {

struct SessionMachineConfig {
  std::uint64_t seed = 1;   // SharedRandomness master seed
  std::uint64_t nonce = 0;
  std::uint64_t universe = std::uint64_t{1} << 20;
  util::Set s;
  util::Set t;
  core::VerificationTreeParams tree;
  std::size_t k_bound = 0;  // 0 = auto (max input size)
  core::RetryPolicy retry;
  SessionHooks hooks;       // pointers must outlive the machine
};

class VerifiedSessionMachine final : public core::ProtocolMachine {
 public:
  explicit VerifiedSessionMachine(SessionMachineConfig cfg);

  std::string_view kind() const override { return "verified_session"; }
  sim::Channel& channel() override { return driver_->channel(); }
  const VerifiedRunResult& result() const { return driver_->result(); }
  VerifiedSessionDriver& driver() { return *driver_; }

  // Hash over the answer AND its contract flags: a superset that arrives
  // flagged verified (or vice versa) must not compare equal.
  std::uint64_t result_fingerprint() const override;

 protected:
  bool advance() override { return driver_->step(); }

 private:
  SessionMachineConfig cfg_;
  sim::SharedRandomness shared_;
  std::unique_ptr<VerifiedSessionDriver> driver_;
};

// The same fingerprint over a blocking run's result, for differential
// comparison.
std::uint64_t fingerprint_verified_result(const VerifiedRunResult& r);

}  // namespace setint::multiparty
