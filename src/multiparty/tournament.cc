#include "multiparty/tournament.h"

#include <algorithm>
#include <stdexcept>

#include "obs/tracer.h"
#include "sim/channel.h"
#include "util/rng.h"

namespace setint::multiparty {

namespace {

// One bracket level of one group's tournament. Matches are billed into the
// surrounding network batch (all groups advance their brackets in the same
// batch, so rounds reflect network-wide parallelism). Returns the players
// advancing to the next bracket level.
std::vector<std::size_t> advance_bracket(
    sim::Network& network, const sim::SharedRandomness& shared,
    std::uint64_t universe, std::vector<util::Set>& current,
    const std::vector<std::size_t>& level,
    const core::VerificationTreeParams& tree, std::size_t k,
    std::uint64_t level_nonce, std::uint64_t* repetitions) {
  std::vector<std::size_t> next;
  const bool final_level = level.size() == 2;
  for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
    const std::size_t left = level[i];
    const std::size_t right = level[i + 1];
    const std::uint64_t nonce =
        util::mix64(level_nonce, util::mix64(left, right));
    if (final_level) {
      // Root match: certified — exactness for the whole bracket follows
      // from the subset/superset invariants (see header).
      VerifiedRunResult vr = verified_two_party_intersection(
          shared, nonce, universe, current[left], current[right], tree, k);
      network.bill_pairwise_in_batch(left, right, vr.cost);
      *repetitions += vr.repetitions;
      current[left] = std::move(vr.intersection);
    } else {
      sim::Channel channel;
      const core::IntersectionOutput out =
          core::verification_tree_intersection(channel, shared, nonce,
                                               universe, current[left],
                                               current[right], tree);
      network.bill_pairwise_in_batch(left, right, channel.cost());
      current[left] = out.alice;
      current[right] = out.bob;
    }
    next.push_back(left);
  }
  if (level.size() % 2 == 1) next.push_back(level.back());
  return next;
}

}  // namespace

MultipartyResult tournament_intersection(sim::Network& network,
                                         const sim::SharedRandomness& shared,
                                         std::uint64_t universe,
                                         const std::vector<util::Set>& sets,
                                         const MultipartyParams& params) {
  if (sets.size() != network.players()) {
    throw std::invalid_argument("tournament: players/sets mismatch");
  }
  std::size_t k = params.k_bound;
  for (const util::Set& s : sets) {
    util::validate_set(s, universe);
    if (params.k_bound == 0) k = std::max(k, s.size());
  }
  k = std::max<std::size_t>(k, 2);
  const std::size_t group_size = 2 * k;

  MultipartyResult result;
  std::vector<std::size_t> active(sets.size());
  for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;
  std::vector<util::Set> current = sets;

  // As in coordinator_intersection, attribution happens at the network
  // billing layer only.
  obs::Tracer* tracer = network.tracer();
  obs::Span protocol_span(tracer, "tournament");

  while (active.size() > 1) {
    obs::Span level_span(tracer, "level=" + std::to_string(result.levels));
    // Partition active players into groups; every group runs its bracket
    // level-synchronously so that matches across ALL groups share batches.
    std::vector<std::vector<std::size_t>> brackets;
    for (std::size_t lo = 0; lo < active.size(); lo += group_size) {
      const std::size_t hi = std::min(lo + group_size, active.size());
      brackets.emplace_back(active.begin() + static_cast<std::ptrdiff_t>(lo),
                            active.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    std::uint64_t depth = 0;
    while (std::any_of(brackets.begin(), brackets.end(),
                       [](const auto& b) { return b.size() > 1; })) {
      network.begin_batch();
      for (auto& bracket : brackets) {
        if (bracket.size() <= 1) continue;
        const std::uint64_t level_nonce = util::mix64(
            0x7031, util::mix64(result.levels, util::mix64(depth, bracket[0])));
        bracket = advance_bracket(network, shared, universe, current, bracket,
                                  params.tree, k, level_nonce,
                                  &result.total_repetitions);
      }
      network.end_batch();
      ++depth;
    }
    std::vector<std::size_t> winners;
    winners.reserve(brackets.size());
    for (const auto& bracket : brackets) winners.push_back(bracket[0]);
    active = std::move(winners);
    result.levels += 1;
  }
  result.intersection = current[active[0]];
  return result;
}

}  // namespace setint::multiparty
