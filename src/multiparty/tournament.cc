#include "multiparty/tournament.h"

#include <algorithm>
#include <stdexcept>

#include "obs/tracer.h"
#include "sim/channel.h"
#include "util/rng.h"

namespace setint::multiparty {

namespace {

// One bracket level of one group's tournament. Matches are billed into the
// surrounding network batch (all groups advance their brackets in the same
// batch, so rounds reflect network-wide parallelism). Returns the players
// advancing to the next bracket level.
//
// Non-final matches are uncertified, so under an active fault plan a
// corrupted match could silently break the candidates-are-supersets
// invariant the root certificate relies on. Guard: any match whose
// exchange was fault-touched (or threw) is discarded and retried with
// fresh randomness; if the retry budget runs out the match is SKIPPED —
// the left player advances with its set unchanged, which keeps every
// carried set a superset of the true intersection at the price of a
// degraded (possibly strict-superset) final answer.
// Overload-governance state shared by every match of one tournament run
// (core/budget.h, core/breaker.h): one retry-token pool, per-link
// breakers persisting across bracket levels, one admission controller.
struct Governance {
  core::RetryBudgetPool pool;
  core::BreakerBoard breakers;
  core::AdmissionController admission;

  explicit Governance(const MultipartyParams& params)
      : pool(params.retry_pool_attempts),
        breakers(params.breaker),
        admission(params.admission, &pool) {}
};

std::vector<std::size_t> advance_bracket(
    sim::Network& network, const sim::SharedRandomness& shared,
    std::uint64_t universe, std::vector<util::Set>& current,
    const std::vector<std::size_t>& level,
    const MultipartyParams& params, std::size_t k, std::uint64_t level_nonce,
    sim::FaultPlan* faults, sim::ChaosPlan* chaos, Governance* gov,
    MultipartyResult* result) {
  std::vector<std::size_t> next;
  obs::Tracer* tracer = network.tracer();
  // Honest accounting: a match governed or degraded away charges BOTH
  // players (the loser's constraint is what the final answer lost).
  const auto charge_pair = [result](std::size_t x, std::size_t y) {
    result->per_player_degraded[x] += 1;
    result->per_player_degraded[y] += 1;
  };
  const core::ResourceLimits* limits =
      params.limits.enabled() ? &params.limits : nullptr;
  // Bind the Byzantine player (if any) to the channel role it holds in a
  // given match; matches between honest players run with no adversary.
  const auto bind_adversary = [&params](std::size_t left,
                                        std::size_t right) -> sim::Adversary* {
    if (params.adversary == nullptr) return nullptr;
    if (left == params.byzantine_player) {
      params.adversary->set_party(sim::PartyId::kAlice);
      return params.adversary;
    }
    if (right == params.byzantine_player) {
      params.adversary->set_party(sim::PartyId::kBob);
      return params.adversary;
    }
    return nullptr;
  };
  const bool final_level = level.size() == 2;
  for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
    const std::size_t left = level[i];
    const std::size_t right = level[i + 1];
    // Dead players can't play: the match is skipped and the left player
    // advances unchanged, preserving the carried-superset invariant.
    if (chaos != nullptr &&
        (chaos->player_dead(left) || chaos->player_dead(right))) {
      result->degraded_pairs += 1;
      result->degraded = true;
      result->dead_player_skips += 1;
      charge_pair(left, right);
      obs::count(tracer, "chaos.dead_player_skips");
      obs::count(tracer, "mp.degraded_pairs");
      obs::count(tracer, "mp.skipped_matches");
      next.push_back(left);
      continue;
    }
    const std::uint64_t nonce =
        util::mix64(level_nonce, util::mix64(left, right));
    // Admission control: shed the match before it spends anything when
    // the shared retry pool is critical. Left advances unchanged —
    // exactly the skipped-match degradation, paid up front.
    if (!gov->admission.admit(nonce)) {
      result->shed_pairs += 1;
      result->degraded_pairs += 1;
      result->degraded = true;
      charge_pair(left, right);
      obs::count(tracer, "budget.shed");
      obs::count(tracer, "mp.degraded_pairs");
      obs::count(tracer, "mp.skipped_matches");
      next.push_back(left);
      continue;
    }
    // Circuit-breaker gate: an open link goes straight to the skip.
    core::CircuitBreaker* match_breaker =
        gov->breakers.enabled() ? &gov->breakers.link(left, right) : nullptr;
    if (match_breaker != nullptr && !match_breaker->allow()) {
      result->breaker_short_circuits += 1;
      result->degraded_pairs += 1;
      result->degraded = true;
      charge_pair(left, right);
      obs::count(tracer, "breaker.short_circuits");
      obs::count(tracer, "mp.degraded_pairs");
      obs::count(tracer, "mp.skipped_matches");
      next.push_back(left);
      continue;
    }
    sim::Adversary* match_adversary = bind_adversary(left, right);
    if (match_adversary != nullptr) obs::count(tracer, "mp.byzantine_pairs");
    if (final_level) {
      // Root match: certified — exactness for the whole bracket follows
      // from the subset/superset invariants (see header).
      SessionHooks hooks;
      hooks.faults = faults;
      hooks.adversary = match_adversary;
      hooks.limits = limits;
      hooks.chaos = chaos;
      hooks.player_a = left;
      hooks.player_b = right;
      hooks.checkpoint = params.checkpoint;
      hooks.budget = params.budget;
      hooks.retry_pool = gov->pool.enabled() ? &gov->pool : nullptr;
      hooks.breaker = match_breaker;
      VerifiedRunResult vr = verified_two_party_intersection(
          shared, nonce, universe, current[left], current[right], params.tree,
          k, params.retry, hooks);
      network.bill_pairwise_in_batch(left, right, vr.cost);
      result->total_repetitions += vr.repetitions;
      result->total_restarts += vr.restarts;
      result->total_bits_replayed += vr.bits_replayed;
      obs::count(tracer, "mp.pairwise_runs");
      obs::count(tracer, "mp.repetitions", vr.repetitions);
      if (vr.refused) {
        result->refused_pairs += 1;
        obs::count(tracer, "budget.refused_pairs");
      }
      if (vr.degraded || vr.refused) {
        result->degraded_pairs += 1;
        result->degraded = true;
        charge_pair(left, right);
        obs::count(tracer, "mp.degraded_pairs");
      }
      // A refused final match carries left's set up unchanged (still a
      // superset) — the refusal's empty answer must not be intersected in.
      if (!vr.refused) {
        current[left] = std::move(vr.intersection);
      }
    } else {
      // The per-match attempt budget, taken literally: 0 attempts means
      // the match is skipped outright (honest degradation), mirroring the
      // certified-session semantics.
      const std::uint64_t tries = params.retry.max_attempts;
      bool advanced = false;
      for (std::uint64_t attempt = 0; attempt < tries && !advanced;
           ++attempt) {
        if (match_breaker != nullptr && !match_breaker->allow()) {
          obs::count(tracer, "breaker.denials");
          break;
        }
        if (attempt > 0 && gov->pool.enabled() && !gov->pool.try_acquire()) {
          obs::count(tracer, "budget.pool_denials");
          break;
        }
        sim::Channel channel;
        channel.set_fault_plan(faults);
        channel.set_adversary(match_adversary);
        channel.set_limits(limits);
        // Crash/partition blocks in an uncertified match surface as plain
        // exceptions below: the attempt burns and the match may end up
        // skipped — honest degradation without a per-match recovery loop.
        if (chaos != nullptr) channel.set_chaos(chaos, left, right);
        // Duplicates and delays cost bandwidth but never corrupt content,
        // so only content-damaging fault classes disqualify the match
        // (the channel's integrity framing throws on most of them; this
        // snapshot closes the checksum-collision window). Crafted frames
        // disqualify it too: a semantic lie decodes cleanly but can knock
        // true elements out of the candidates, and an uncertified match
        // has no certificate to catch that.
        const auto content_events = [faults, match_adversary] {
          std::uint64_t events = 0;
          if (faults != nullptr) {
            events += faults->stats().bits_flipped +
                      faults->stats().truncated_bits +
                      faults->stats().dropped_messages;
          }
          if (match_adversary != nullptr) {
            events += match_adversary->stats().frames_crafted;
          }
          return events;
        };
        const std::uint64_t before = content_events();
        if (attempt > 0) obs::count(tracer, "retry.attempts");
        try {
          // Inside the try: the backoff charge can breach max_rounds when
          // limits are installed, which discards the attempt.
          if (attempt > 0) {
            const core::BackoffPolicy schedule{
                params.retry.backoff_rounds, params.retry.backoff_multiplier,
                params.retry.backoff_cap_rounds, params.retry.backoff_jitter};
            channel.charge_extra_rounds(
                core::backoff_rounds_for_attempt(schedule, nonce, attempt));
          }
          const core::IntersectionOutput out =
              core::verification_tree_intersection(
                  channel, shared, util::mix64(nonce, attempt), universe,
                  current[left], current[right], params.tree);
          network.bill_pairwise_in_batch(left, right, channel.cost());
          if (content_events() == before) {
            current[left] = out.alice;
            current[right] = out.bob;
            advanced = true;
          }
          // Fault-touched: the traffic is billed, the suspect candidates
          // are discarded, and the match re-runs with a fresh nonce.
        } catch (const core::ResourceLimitError&) {
          network.bill_pairwise_in_batch(left, right, channel.cost());
          obs::count(tracer, "limit.breaches");
          obs::count(tracer, "retry.decode_failures");
        } catch (const std::exception&) {
          network.bill_pairwise_in_batch(left, right, channel.cost());
          obs::count(tracer, "retry.decode_failures");
        }
        if (match_breaker != nullptr) {
          if (advanced) {
            match_breaker->on_success();
          } else {
            const core::BreakerState before = match_breaker->state();
            match_breaker->on_failure();
            if (before != core::BreakerState::kOpen &&
                match_breaker->state() == core::BreakerState::kOpen) {
              obs::count(tracer, "breaker.opens");
            }
          }
        }
      }
      if (!advanced) {
        // Skipped match: left carries its set up unchanged (still a
        // superset); right's constraint is lost, so flag degradation.
        result->degraded_pairs += 1;
        result->degraded = true;
        charge_pair(left, right);
        obs::count(tracer, "mp.degraded_pairs");
        obs::count(tracer, "mp.skipped_matches");
      }
    }
    next.push_back(left);
  }
  if (level.size() % 2 == 1) next.push_back(level.back());
  return next;
}

}  // namespace

MultipartyResult tournament_intersection(sim::Network& network,
                                         const sim::SharedRandomness& shared,
                                         std::uint64_t universe,
                                         const std::vector<util::Set>& sets,
                                         const MultipartyParams& params) {
  if (sets.size() != network.players()) {
    throw std::invalid_argument("tournament: players/sets mismatch");
  }
  std::size_t k = params.k_bound;
  for (const util::Set& s : sets) {
    util::validate_set(s, universe);
    if (params.k_bound == 0) k = std::max(k, s.size());
  }
  k = std::max<std::size_t>(k, 2);
  const std::size_t group_size = 2 * k;

  MultipartyResult result;
  std::vector<std::size_t> active(sets.size());
  for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;
  std::vector<util::Set> current = sets;

  // As in coordinator_intersection, attribution happens at the network
  // billing layer only.
  obs::Tracer* tracer = network.tracer();
  obs::Span protocol_span(tracer, "tournament");
  sim::FaultPlan* faults = params.fault_plan != nullptr
                               ? params.fault_plan
                               : network.fault_plan();
  sim::ChaosPlan* chaos =
      params.chaos != nullptr ? params.chaos : network.chaos_plan();
  if (chaos != nullptr && !chaos->enabled()) chaos = nullptr;

  Governance gov(params);
  result.per_player_degraded.assign(sets.size(), 0);

  while (active.size() > 1) {
    obs::Span level_span(tracer, "level=" + std::to_string(result.levels));
    // Partition active players into groups; every group runs its bracket
    // level-synchronously so that matches across ALL groups share batches.
    std::vector<std::vector<std::size_t>> brackets;
    for (std::size_t lo = 0; lo < active.size(); lo += group_size) {
      const std::size_t hi = std::min(lo + group_size, active.size());
      brackets.emplace_back(active.begin() + static_cast<std::ptrdiff_t>(lo),
                            active.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    std::uint64_t depth = 0;
    while (std::any_of(brackets.begin(), brackets.end(),
                       [](const auto& b) { return b.size() > 1; })) {
      network.begin_batch();
      for (auto& bracket : brackets) {
        if (bracket.size() <= 1) continue;
        const std::uint64_t level_nonce = util::mix64(
            0x7031, util::mix64(result.levels, util::mix64(depth, bracket[0])));
        bracket = advance_bracket(network, shared, universe, current, bracket,
                                  params, k, level_nonce, faults, chaos, &gov,
                                  &result);
      }
      network.end_batch();
      ++depth;
    }
    std::vector<std::size_t> winners;
    winners.reserve(brackets.size());
    for (const auto& bracket : brackets) winners.push_back(bracket[0]);
    active = std::move(winners);
    result.levels += 1;
  }
  result.pool_retry_denials = gov.pool.denials();
  result.breaker_opens = gov.breakers.total_opens();
  if (gov.pool.enabled()) {
    obs::count(tracer, "budget.pool_spent", gov.pool.spent());
  }
  result.intersection = current[active[0]];
  return result;
}

}  // namespace setint::multiparty
