#include "multiparty/coordinator.h"

#include <algorithm>
#include <stdexcept>

#include "core/basic_intersection.h"
#include "core/checkpoint.h"
#include "core/deterministic_exchange.h"
#include "eq/equality.h"
#include "obs/recorder.h"
#include "sim/channel.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint::multiparty {

VerifiedRunResult verified_two_party_intersection(
    const sim::SharedRandomness& shared, std::uint64_t nonce,
    std::uint64_t universe, util::SetView s, util::SetView t,
    const core::VerificationTreeParams& params, std::size_t k_bound,
    const core::RetryPolicy& retry, const SessionHooks& hooks) {
  if (k_bound == 0) k_bound = std::max<std::size_t>({s.size(), t.size(), 2});
  obs::Tracer* tracer = hooks.tracer;
  sim::FaultPlan* faults = hooks.faults;
  sim::Adversary* adversary = hooks.adversary;
  obs::FlightRecorder* recorder = hooks.recorder;
  sim::ChaosPlan* chaos =
      hooks.chaos != nullptr && hooks.chaos->enabled() ? hooks.chaos : nullptr;
  sim::Channel channel;
  channel.set_tracer(tracer);
  channel.set_recorder(recorder);
  channel.set_fault_plan(faults);
  channel.set_adversary(adversary);
  if (hooks.limits != nullptr && hooks.limits->enabled()) {
    channel.set_limits(hooks.limits);
  }
  if (chaos != nullptr) {
    channel.set_chaos(chaos, hooks.player_a, hooks.player_b);
  }
  obs::Span verified_span(tracer, "verified_intersection");

  // Phase-boundary checkpoint store, shared by every attempt. It only
  // earns its keep under chaos: iid faults corrupt single messages (the
  // retry loop is the right tool), while crash/partition blocks lose
  // whole half-finished sessions that a snapshot can rescue.
  core::Checkpoint ckpt_store;
  core::Checkpoint* ckpt =
      chaos != nullptr && hooks.checkpoint ? &ckpt_store : nullptr;

  const std::uint64_t max_attempts =
      std::max<std::uint64_t>(1, retry.max_attempts);
  VerifiedRunResult result;
  std::uint64_t restarts_used = 0;
  std::uint64_t attempt_start_bits = 0;
  const auto finish = [&]() -> VerifiedRunResult& {
    result.cost = channel.cost();
    if (ckpt != nullptr) {
      obs::count(tracer, "checkpoint.snapshots", ckpt->snapshots());
      obs::count(tracer, "checkpoint.restores", ckpt->restores());
    }
    return result;
  };

  // Waits out one crash/partition block: charges the outage as latency
  // rounds and advances the chaos clock past it. Returns false when the
  // peer should be declared lost instead (budget or wait cap exhausted,
  // or the wait itself breaches the round limit).
  const auto wait_out_block = [&](std::uint64_t resume_tick,
                                  const char* what) {
    // Bits sent since the last phase boundary — or since the attempt
    // began, when no snapshot exists yet — are lost and will be re-sent.
    const std::uint64_t boundary = ckpt != nullptr && !ckpt->empty()
                                       ? ckpt->bits_at_boundary()
                                       : attempt_start_bits;
    const std::uint64_t lost = channel.cost().bits_total - boundary;
    result.bits_replayed += lost;
    obs::count(tracer, "checkpoint.bits_replayed", lost);
    restarts_used += 1;
    if (restarts_used > retry.max_restarts) return false;
    const std::uint64_t now = chaos->now();
    const std::uint64_t wait = resume_tick > now ? resume_tick - now : 1;
    if (wait > retry.max_resume_wait_rounds) return false;
    try {
      channel.charge_extra_rounds(wait);
    } catch (const core::ResourceLimitError&) {
      obs::count(tracer, "limit.breaches");
      return false;
    }
    chaos->advance_to(resume_tick);
    result.restarts += 1;
    obs::count(tracer, "chaos.restarts");
    if (recorder != nullptr) {
      recorder->record(obs::FlightEventKind::kRestart, what, -1, wait,
                       channel.cost().bits_total);
    }
    return true;
  };

  for (std::uint64_t rep = 0; rep < max_attempts && !result.peer_lost;
       ++rep) {
    result.repetitions = rep + 1;
    attempt_start_bits = channel.cost().bits_total;
    // Attempts draw fresh randomness, so a snapshot from a previous
    // attempt describes a transcript that no longer exists.
    if (ckpt != nullptr) ckpt->clear();
    if (rep > 0) {
      obs::count(tracer, "retry.attempts");
      if (recorder != nullptr) {
        recorder->record(obs::FlightEventKind::kRetry,
                         "attempt " + std::to_string(rep + 1));
      }
    }
    bool backoff_due = rep > 0;
    // Inner recovery loop: a crash or partition inside the attempt is
    // waited out and the attempt resumes — from its last phase checkpoint
    // when one is installed, from scratch otherwise — under the SAME
    // nonce, so the replayed transcript is deterministic.
    bool attempt_live = true;
    while (attempt_live) {
      try {
        // Inside the try: with limits installed the backoff charge itself
        // can breach max_rounds, which burns the attempt like any failure.
        if (backoff_due) {
          backoff_due = false;
          channel.charge_extra_rounds(retry.backoff_rounds);
        }
        const core::IntersectionOutput out =
            core::verification_tree_intersection(
                channel, shared, util::mix64(nonce, rep), universe, s, t,
                params, /*diag=*/nullptr, ckpt);
        // 2k-bit certificate (Section 4): candidates are subsets of the
        // inputs and supersets of the intersection, so equality implies
        // exactness.
        util::BitBuffer ca;
        util::append_set(ca, out.alice);
        util::BitBuffer cb;
        util::append_set(cb, out.bob);
        obs::Span certificate_span(tracer, "certificate");
        const bool certified = eq::equality_test(
            channel, shared, util::mix64(nonce, util::mix64(0xCE27, rep)), ca,
            cb, 2 * k_bound);
        if (certified) {
          obs::count(tracer, "mp.verified_runs");
          obs::count(tracer, "mp.repetitions", result.repetitions);
          if (ckpt != nullptr && ckpt->restores() > 0) {
            obs::count(tracer, "checkpoint.resume_successes");
          }
          result.intersection = out.alice;
          return finish();
        }
        attempt_live = false;  // failed certificate: fresh attempt
      } catch (const sim::PlayerCrashError& e) {
        obs::count(tracer, "chaos.crashes");
        if (e.permanent || !wait_out_block(e.revive_tick, "crash")) {
          result.peer_lost = true;
          break;
        }
        // Without a checkpoint the wait still happened (the link is only
        // usable again after the outage) but the attempt burns.
        if (ckpt == nullptr) attempt_live = false;
      } catch (const sim::LinkPartitionedError& e) {
        obs::count(tracer, "chaos.partitions");
        if (!wait_out_block(e.heal_tick, "partition")) {
          result.peer_lost = true;
          break;
        }
        if (ckpt == nullptr) attempt_live = false;
      } catch (const core::ResourceLimitError&) {
        // A frame or a decode blew past a resource cap — the signature
        // move of a Byzantine peer. Burn the attempt like any decode
        // failure (an unlucky honest run near the cap retries too).
        obs::count(tracer, "limit.breaches");
        obs::count(tracer, "retry.decode_failures");
        attempt_live = false;
      } catch (const std::exception&) {
        // A corrupted message failed to decode (the hardened decoders
        // throw on damaged length prefixes and short reads). Same remedy
        // as a failed certificate: fresh randomness, next attempt.
        obs::count(tracer, "retry.decode_failures");
        attempt_live = false;
      }
    }
  }

  // The deterministic backstop trusts every byte the peer sends, so it is
  // only sound against an unreliable-but-honest transport. A Byzantine
  // peer (enabled adversary) would simply lie to it; degrade instead. A
  // chaos plan counts as hostile too: the backstop has no recovery layer
  // of its own, so a mid-exchange crash would escape it.
  const bool hostile = (faults != nullptr && faults->enabled()) ||
                       (adversary != nullptr && adversary->enabled()) ||
                       chaos != nullptr;
  if (!hostile) {
    // Reliable channel: only hash collisions (or limit breaches) can get
    // here, and the deterministic backstop is exact.
    obs::count(tracer, "mp.backstops");
    if (recorder != nullptr) {
      recorder->record(obs::FlightEventKind::kBackstop,
                       "deterministic exchange");
    }
    try {
      const core::IntersectionOutput exact =
          core::deterministic_exchange(channel, universe, s, t);
      result.intersection = exact.alice;
      return finish();
    } catch (const core::ResourceLimitError&) {
      // Limits tight enough that even the deterministic exchange breaches
      // them: fall through to the degraded superset path rather than let
      // the error escape the retry layer.
      obs::count(tracer, "limit.breaches");
    }
  }

  // Graceful degradation: the retry budget is gone and the transport is
  // hostile, so no exact answer can be promised. Basic-Intersection
  // candidates are supersets of S cap T whenever the exchange arrives
  // intact (Lemma 3.3): the channel's integrity framing already turns
  // damaged frames into exceptions, and the content-fault snapshot below
  // closes the residual 2^-32 checksum-collision window (duplicates and
  // delays cost bandwidth but never corrupt content, so they don't
  // disqualify a run).
  obs::Span degraded_span(tracer, "degraded");
  obs::count(tracer, "degraded.runs");
  if (recorder != nullptr) {
    recorder->record(obs::FlightEventKind::kDegrade, "superset answer");
    recorder->incident(result.peer_lost ? "degraded: peer lost"
                                        : "degraded: retry budget exhausted");
  }
  result.verified = false;
  result.degraded = true;
  // An attempt only counts as a clean superset if neither the stochastic
  // plan damaged content NOR the adversary substituted a frame during it —
  // a crafted frame that decodes cleanly can still lie, and a lie can
  // knock true elements out of the candidate (no superset guarantee).
  // Bursty chaos corruption counts for the same reason.
  const auto content_faults = [faults, adversary, chaos] {
    std::uint64_t events = 0;
    if (faults != nullptr) {
      const sim::FaultStats& st = faults->stats();
      events += st.bits_flipped + st.truncated_bits + st.dropped_messages;
    }
    if (adversary != nullptr) events += adversary->stats().frames_crafted;
    if (chaos != nullptr) events += chaos->stats().content_events;
    return events;
  };
  // A lost peer cannot answer Basic-Intersection either: go straight to
  // the input fallback instead of burning attempts against a dead link.
  const std::uint64_t degraded_attempts =
      result.peer_lost ? 0
                       : std::max<std::uint64_t>(1, retry.degraded_attempts);
  for (std::uint64_t d = 0; d < degraded_attempts; ++d) {
    const std::uint64_t before = content_faults();
    try {
      const core::CandidatePair cand = core::basic_intersection(
          channel, shared, util::mix64(nonce, util::mix64(0xDE64, d)),
          universe, s, t, /*target_failure=*/1.0 / 64.0);
      if (content_faults() == before) {
        obs::count(tracer, "degraded.clean_supersets");
        result.intersection = cand.s_candidate;
        return finish();
      }
    } catch (const std::exception&) {
      // Fault-touched attempt; fall through to the next one.
    }
  }
  // Every degraded attempt was corrupted (or the peer is gone): the
  // caller's own input is the one superset that survives any fault rate.
  obs::count(tracer, "degraded.input_fallbacks");
  result.intersection.assign(s.begin(), s.end());
  return finish();
}

MultipartyResult coordinator_intersection(sim::Network& network,
                                          const sim::SharedRandomness& shared,
                                          std::uint64_t universe,
                                          const std::vector<util::Set>& sets,
                                          const MultipartyParams& params) {
  if (sets.size() != network.players()) {
    throw std::invalid_argument("coordinator: players/sets mismatch");
  }
  std::size_t k = params.k_bound;
  for (const util::Set& s : sets) {
    util::validate_set(s, universe);
    if (params.k_bound == 0) k = std::max(k, s.size());
  }
  k = std::max<std::size_t>(k, 2);
  const std::size_t group_size = 2 * k;

  MultipartyResult result;
  std::vector<std::size_t> active(sets.size());
  for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;
  std::vector<util::Set> current = sets;

  // Attribution happens once, at the network billing layer — the inner
  // two-party channels run untraced so bits are not double-counted.
  obs::Tracer* tracer = network.tracer();
  obs::Span protocol_span(tracer, "coordinator");
  sim::FaultPlan* faults = params.fault_plan != nullptr
                               ? params.fault_plan
                               : network.fault_plan();
  const core::ResourceLimits* limits =
      params.limits.enabled() ? &params.limits : nullptr;
  sim::ChaosPlan* chaos =
      params.chaos != nullptr ? params.chaos : network.chaos_plan();
  if (chaos != nullptr && !chaos->enabled()) chaos = nullptr;

  while (active.size() > 1) {
    obs::Span level_span(tracer, "level=" + std::to_string(result.levels));
    std::vector<std::size_t> coordinators;
    network.begin_batch();
    for (std::size_t lo = 0; lo < active.size(); lo += group_size) {
      const std::size_t hi = std::min(lo + group_size, active.size());
      const std::size_t coord = active[lo];
      coordinators.push_back(coord);
      util::Set acc = current[coord];
      for (std::size_t j = lo + 1; j < hi; ++j) {
        const std::size_t member = active[j];
        // A permanently dead player cannot run its pairwise session at
        // all; skipping it leaves the accumulator unchanged — still a
        // superset of the m-way intersection, honestly flagged.
        if (chaos != nullptr &&
            (chaos->player_dead(coord) || chaos->player_dead(member))) {
          result.dead_player_skips += 1;
          result.degraded_pairs += 1;
          result.degraded = true;
          obs::count(tracer, "chaos.dead_player_skips");
          obs::count(tracer, "mp.degraded_pairs");
          continue;
        }
        const std::uint64_t nonce = util::mix64(
            util::mix64(result.levels, coord), util::mix64(member, 0xC0));
        // Bind the Byzantine player (if any) to the channel role it holds
        // in this pair; pairs of honest players run with no adversary.
        sim::Adversary* pair_adversary = nullptr;
        if (params.adversary != nullptr) {
          if (coord == params.byzantine_player) {
            params.adversary->set_party(sim::PartyId::kAlice);
            pair_adversary = params.adversary;
          } else if (member == params.byzantine_player) {
            params.adversary->set_party(sim::PartyId::kBob);
            pair_adversary = params.adversary;
          }
        }
        SessionHooks hooks;
        hooks.faults = faults;
        hooks.adversary = pair_adversary;
        hooks.limits = limits;
        hooks.chaos = chaos;
        hooks.player_a = coord;
        hooks.player_b = member;
        hooks.checkpoint = params.checkpoint;
        VerifiedRunResult vr = verified_two_party_intersection(
            shared, nonce, universe, current[coord], current[member],
            params.tree, k, params.retry, hooks);
        if (pair_adversary != nullptr) {
          obs::count(tracer, "mp.byzantine_pairs");
        }
        network.bill_pairwise_in_batch(coord, member, vr.cost);
        result.total_repetitions += vr.repetitions;
        result.total_restarts += vr.restarts;
        result.total_bits_replayed += vr.bits_replayed;
        obs::count(tracer, "mp.pairwise_runs");
        obs::count(tracer, "mp.repetitions", vr.repetitions);
        if (vr.degraded) {
          // The degraded answer is still a superset of coord-cap-member,
          // hence of the m-way intersection, so intersecting it into the
          // accumulator keeps the one-sided invariant.
          result.degraded_pairs += 1;
          result.degraded = true;
          obs::count(tracer, "mp.degraded_pairs");
        }
        acc = util::set_intersection(acc, vr.intersection);
      }
      current[coord] = std::move(acc);
    }
    network.end_batch();
    active = std::move(coordinators);
    result.levels += 1;
  }

  result.intersection = current[active[0]];

  if (params.broadcast_result && network.players() > 1) {
    obs::Span broadcast_span(tracer, "broadcast");
    // The root coordinator ships the result to every other player in one
    // parallel round.
    util::BitBuffer encoded;
    util::append_set(encoded, result.intersection);
    const std::uint64_t bits = encoded.size_bits();
    const std::size_t root = active[0];
    network.begin_batch();
    for (std::size_t i = 0; i < network.players(); ++i) {
      if (i == root) continue;
      sim::CostStats one_message;
      one_message.bits_total = bits;
      one_message.bits_from_alice = bits;
      one_message.messages = 1;
      one_message.rounds = 1;
      network.bill_pairwise_in_batch(root, i, one_message);
      result.broadcast_bits += bits;
    }
    network.end_batch();
  }
  return result;
}

}  // namespace setint::multiparty
