#include "multiparty/coordinator.h"

#include <algorithm>
#include <stdexcept>

#include "core/deterministic_exchange.h"
#include "eq/equality.h"
#include "sim/channel.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint::multiparty {

VerifiedRunResult verified_two_party_intersection(
    const sim::SharedRandomness& shared, std::uint64_t nonce,
    std::uint64_t universe, util::SetView s, util::SetView t,
    const core::VerificationTreeParams& params, std::size_t k_bound,
    obs::Tracer* tracer) {
  if (k_bound == 0) k_bound = std::max<std::size_t>({s.size(), t.size(), 2});
  sim::Channel channel;
  channel.set_tracer(tracer);
  obs::Span verified_span(tracer, "verified_intersection");
  constexpr std::uint64_t kMaxRepetitions = 24;
  VerifiedRunResult result;
  for (std::uint64_t rep = 0; rep < kMaxRepetitions; ++rep) {
    result.repetitions = rep + 1;
    const core::IntersectionOutput out = core::verification_tree_intersection(
        channel, shared, util::mix64(nonce, rep), universe, s, t, params);
    // 2k-bit certificate (Section 4): candidates are subsets of the inputs
    // and supersets of the intersection, so equality implies exactness.
    util::BitBuffer ca;
    util::append_set(ca, out.alice);
    util::BitBuffer cb;
    util::append_set(cb, out.bob);
    obs::Span certificate_span(tracer, "certificate");
    const bool certified = eq::equality_test(
        channel, shared, util::mix64(nonce, util::mix64(0xCE27, rep)), ca, cb,
        2 * k_bound);
    if (certified) {
      obs::count(tracer, "mp.verified_runs");
      obs::count(tracer, "mp.repetitions", result.repetitions);
      result.intersection = out.alice;
      result.cost = channel.cost();
      return result;
    }
  }
  // Deterministic backstop: exact, rarely reached.
  obs::count(tracer, "mp.backstops");
  const core::IntersectionOutput exact =
      core::deterministic_exchange(channel, universe, s, t);
  result.intersection = exact.alice;
  result.cost = channel.cost();
  return result;
}

MultipartyResult coordinator_intersection(sim::Network& network,
                                          const sim::SharedRandomness& shared,
                                          std::uint64_t universe,
                                          const std::vector<util::Set>& sets,
                                          const MultipartyParams& params) {
  if (sets.size() != network.players()) {
    throw std::invalid_argument("coordinator: players/sets mismatch");
  }
  std::size_t k = params.k_bound;
  for (const util::Set& s : sets) {
    util::validate_set(s, universe);
    if (params.k_bound == 0) k = std::max(k, s.size());
  }
  k = std::max<std::size_t>(k, 2);
  const std::size_t group_size = 2 * k;

  MultipartyResult result;
  std::vector<std::size_t> active(sets.size());
  for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;
  std::vector<util::Set> current = sets;

  // Attribution happens once, at the network billing layer — the inner
  // two-party channels run untraced so bits are not double-counted.
  obs::Tracer* tracer = network.tracer();
  obs::Span protocol_span(tracer, "coordinator");

  while (active.size() > 1) {
    obs::Span level_span(tracer, "level=" + std::to_string(result.levels));
    std::vector<std::size_t> coordinators;
    network.begin_batch();
    for (std::size_t lo = 0; lo < active.size(); lo += group_size) {
      const std::size_t hi = std::min(lo + group_size, active.size());
      const std::size_t coord = active[lo];
      coordinators.push_back(coord);
      util::Set acc = current[coord];
      for (std::size_t j = lo + 1; j < hi; ++j) {
        const std::size_t member = active[j];
        const std::uint64_t nonce = util::mix64(
            util::mix64(result.levels, coord), util::mix64(member, 0xC0));
        VerifiedRunResult vr = verified_two_party_intersection(
            shared, nonce, universe, current[coord], current[member],
            params.tree, k);
        network.bill_pairwise_in_batch(coord, member, vr.cost);
        result.total_repetitions += vr.repetitions;
        obs::count(tracer, "mp.pairwise_runs");
        obs::count(tracer, "mp.repetitions", vr.repetitions);
        acc = util::set_intersection(acc, vr.intersection);
      }
      current[coord] = std::move(acc);
    }
    network.end_batch();
    active = std::move(coordinators);
    result.levels += 1;
  }

  result.intersection = current[active[0]];

  if (params.broadcast_result && network.players() > 1) {
    obs::Span broadcast_span(tracer, "broadcast");
    // The root coordinator ships the result to every other player in one
    // parallel round.
    util::BitBuffer encoded;
    util::append_set(encoded, result.intersection);
    const std::uint64_t bits = encoded.size_bits();
    const std::size_t root = active[0];
    network.begin_batch();
    for (std::size_t i = 0; i < network.players(); ++i) {
      if (i == root) continue;
      sim::CostStats one_message;
      one_message.bits_total = bits;
      one_message.bits_from_alice = bits;
      one_message.messages = 1;
      one_message.rounds = 1;
      network.bill_pairwise_in_batch(root, i, one_message);
      result.broadcast_bits += bits;
    }
    network.end_batch();
  }
  return result;
}

}  // namespace setint::multiparty
