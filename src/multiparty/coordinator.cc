#include "multiparty/coordinator.h"

#include <algorithm>
#include <stdexcept>

#include "core/basic_intersection.h"
#include "core/checkpoint.h"
#include "core/deterministic_exchange.h"
#include "eq/equality.h"
#include "obs/recorder.h"
#include "sim/channel.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint::multiparty {

VerifiedRunResult verified_two_party_intersection(
    const sim::SharedRandomness& shared, std::uint64_t nonce,
    std::uint64_t universe, util::SetView s, util::SetView t,
    const core::VerificationTreeParams& params, std::size_t k_bound,
    const core::RetryPolicy& retry, const SessionHooks& hooks) {
  VerifiedSessionDriver driver(shared, nonce, universe, s, t, params, k_bound,
                               retry, hooks, /*resumable=*/false);
  return driver.run();
}

VerifiedSessionDriver::VerifiedSessionDriver(
    const sim::SharedRandomness& shared, std::uint64_t nonce,
    std::uint64_t universe, util::SetView s, util::SetView t,
    const core::VerificationTreeParams& params, std::size_t k_bound,
    const core::RetryPolicy& retry, const SessionHooks& hooks, bool resumable)
    : shared_(shared),
      nonce_(nonce),
      universe_(universe),
      s_(s),
      t_(t),
      params_(params),
      k_bound_(k_bound == 0 ? std::max<std::size_t>({s.size(), t.size(), 2})
                            : k_bound),
      retry_(retry),
      hooks_(hooks),
      resumable_(resumable),
      tracer_(hooks.tracer),
      faults_(hooks.faults),
      adversary_(hooks.adversary),
      recorder_(hooks.recorder),
      chaos_(hooks.chaos != nullptr && hooks.chaos->enabled() ? hooks.chaos
                                                              : nullptr),
      channel_(),
      span_(tracer_, "verified_intersection"),
      // Session budget (core/budget.h): reads the channel's monotonic cost
      // counter, so bits replayed after a checkpoint resume are charged
      // exactly once — the channel meters them once. The chaos plan, when
      // installed, is the deadline clock.
      budget_(hooks.budget, &channel_.cost(), chaos_),
      budget_enabled_(hooks.budget.enabled()),
      pool_(hooks.retry_pool),
      breaker_(hooks.breaker != nullptr && hooks.breaker->policy().enabled()
                   ? hooks.breaker
                   : nullptr),
      // Phase-boundary checkpoint store, shared by every attempt. It earns
      // its keep under chaos — iid faults corrupt single messages (the
      // retry loop is the right tool), while crash/partition blocks lose
      // whole half-finished sessions that a snapshot can rescue — and
      // under a budget, whose cooperative enforcement points are exactly
      // these boundaries (Checkpoint::set_budget). The sans-IO engine
      // additionally needs the store as its parking seam, so resumable
      // mode forces it on; emit_ckpt_metrics_ preserves the blocking
      // path's metric surface either way.
      emit_ckpt_metrics_((chaos_ != nullptr || budget_enabled_) &&
                         hooks.checkpoint),
      max_attempts_(retry.max_attempts) {
  channel_.set_tracer(tracer_);
  channel_.set_recorder(recorder_);
  channel_.set_fault_plan(faults_);
  channel_.set_adversary(adversary_);
  if (hooks_.limits != nullptr && hooks_.limits->enabled()) {
    channel_.set_limits(hooks_.limits);
  }
  if (chaos_ != nullptr) {
    channel_.set_chaos(chaos_, hooks_.player_a, hooks_.player_b);
  }
  ckpt_ = (emit_ckpt_metrics_ || (resumable_ && hooks_.checkpoint))
              ? &ckpt_store_
              : nullptr;
  if (ckpt_ != nullptr && budget_enabled_) ckpt_->set_budget(&budget_);
  result_.repetitions = 0;
}

void VerifiedSessionDriver::finish() {
  result_.cost = channel_.cost();
  result_.budget_reason = budget_.reason();
  if (ckpt_ != nullptr && emit_ckpt_metrics_) {
    obs::count(tracer_, "checkpoint.snapshots", ckpt_->snapshots());
    obs::count(tracer_, "checkpoint.restores", ckpt_->restores());
  }
  if (budget_enabled_) {
    obs::count(tracer_, "budget.checks", budget_.checks());
  }
  // Engine bookkeeping under its own family: park resumes are not crash
  // recoveries, and the checkpoint.* family totals must stay comparable
  // with the blocking path (tests/sansio_test.cc pins the parity).
  if (ckpt_ != nullptr && ckpt_->park_resumes() > 0) {
    obs::count(tracer_, "engine.park_resumes", ckpt_->park_resumes());
  }
  done_ = true;
}

// Waits out one crash/partition block: charges the outage as latency
// rounds and advances the chaos clock past it. Returns false when the
// peer should be declared lost instead (budget or wait cap exhausted, or
// the wait itself breaches the round limit).
bool VerifiedSessionDriver::wait_out_block(std::uint64_t resume_tick,
                                           const char* what) {
  // Bits sent since the last phase boundary — or since the attempt began,
  // when no snapshot exists yet — are lost and will be re-sent.
  const std::uint64_t boundary = ckpt_ != nullptr && !ckpt_->empty()
                                     ? ckpt_->bits_at_boundary()
                                     : attempt_start_bits_;
  const std::uint64_t lost = channel_.cost().bits_total - boundary;
  result_.bits_replayed += lost;
  obs::count(tracer_, "checkpoint.bits_replayed", lost);
  restarts_used_ += 1;
  if (restarts_used_ > retry_.max_restarts) return false;
  const std::uint64_t now = chaos_->now();
  const std::uint64_t wait = resume_tick > now ? resume_tick - now : 1;
  if (wait > retry_.max_resume_wait_rounds) return false;
  try {
    channel_.charge_extra_rounds(wait);
  } catch (const core::ResourceLimitError&) {
    obs::count(tracer_, "limit.breaches");
    return false;
  }
  chaos_->advance_to(resume_tick);
  result_.restarts += 1;
  obs::count(tracer_, "chaos.restarts");
  if (recorder_ != nullptr) {
    recorder_->record(obs::FlightEventKind::kRestart, what, -1, wait,
                      channel_.cost().bits_total);
  }
  return true;
}

bool VerifiedSessionDriver::run_attempt_loop() {
  // The per-session attempt budget, taken literally: 0 means no certified
  // attempt at all — straight to the backstop (reliable transport) or the
  // degradation ladder (hostile).
  while (true) {
    if (!in_attempt_) {
      if (!(rep_ < max_attempts_ && !result_.peer_lost &&
            !budget_.exhausted())) {
        return false;
      }
      if (breaker_ != nullptr && !breaker_->allow()) {
        // Open breaker: the accumulated evidence says this link is dead —
        // stop burning attempts (and pool tokens) and take the ladder.
        breaker_denied_ = true;
        obs::count(tracer_, "breaker.denials");
        return false;
      }
      if (rep_ > 0 && pool_ != nullptr && !pool_->try_acquire()) {
        // The shared retry pool is dry: no more re-attempts for anyone;
        // this session keeps its answer obligation via the ladder.
        budget_.mark_exhausted(core::BudgetDimension::kPool);
        obs::count(tracer_, "budget.pool_denials");
        return false;
      }
      result_.repetitions = rep_ + 1;
      attempt_start_bits_ = channel_.cost().bits_total;
      // Attempts draw fresh randomness, so a snapshot from a previous
      // attempt describes a transcript that no longer exists.
      if (ckpt_ != nullptr) ckpt_->clear();
      if (rep_ > 0) {
        obs::count(tracer_, "retry.attempts");
        if (recorder_ != nullptr) {
          recorder_->record(obs::FlightEventKind::kRetry,
                            "attempt " + std::to_string(rep_ + 1));
        }
      }
      backoff_due_ = rep_ > 0;
      attempt_live_ = true;
      skip_pre_ = false;
      in_attempt_ = true;
    }
    // Inner recovery loop: a crash or partition inside the attempt is
    // waited out and the attempt resumes — from its last phase checkpoint
    // when one is installed, from scratch otherwise — under the SAME
    // nonce, so the replayed transcript is deterministic. A sans-IO park
    // unwinds from here too (rethrown below) and re-enters with skip_pre_
    // set, because the blocking path runs backoff and the between-attempt
    // budget check once per attempt, not once per boundary.
    while (attempt_live_) {
      try {
        if (!skip_pre_) {
          // Inside the try: with limits installed the backoff charge
          // itself can breach max_rounds, which burns the attempt like
          // any failure.
          if (backoff_due_) {
            backoff_due_ = false;
            const core::BackoffPolicy schedule{
                retry_.backoff_rounds, retry_.backoff_multiplier,
                retry_.backoff_cap_rounds, retry_.backoff_jitter};
            channel_.charge_extra_rounds(
                core::backoff_rounds_for_attempt(schedule, nonce_, rep_));
          }
          // Between-attempt budget enforcement point (phase boundaries
          // inside the attempt are covered by the checkpoint hook).
          if (budget_enabled_) budget_.check();
        }
        skip_pre_ = false;
        const core::IntersectionOutput out =
            core::verification_tree_intersection(
                channel_, shared_, util::mix64(nonce_, rep_), universe_, s_,
                t_, params_, /*diag=*/nullptr, ckpt_);
        // 2k-bit certificate (Section 4): candidates are subsets of the
        // inputs and supersets of the intersection, so equality implies
        // exactness.
        util::BitBuffer ca;
        util::append_set(ca, out.alice);
        util::BitBuffer cb;
        util::append_set(cb, out.bob);
        obs::Span certificate_span(tracer_, "certificate");
        const bool certified = eq::equality_test(
            channel_, shared_,
            util::mix64(nonce_, util::mix64(0xCE27, rep_)), ca, cb,
            2 * k_bound_);
        if (certified) {
          obs::count(tracer_, "mp.verified_runs");
          obs::count(tracer_, "mp.repetitions", result_.repetitions);
          if (ckpt_ != nullptr && ckpt_->restores() > 0) {
            obs::count(tracer_, "checkpoint.resume_successes");
          }
          if (breaker_ != nullptr) {
            const core::BreakerState before = breaker_->state();
            breaker_->on_success();
            if (before != core::BreakerState::kClosed &&
                breaker_->state() == core::BreakerState::kClosed) {
              obs::count(tracer_, "breaker.closes");
            }
          }
          result_.intersection = out.alice;
          finish();
          return true;
        }
        attempt_live_ = false;  // failed certificate: fresh attempt
      } catch (const core::CheckpointPark&) {
        // Sans-IO park at a phase boundary: nothing failed — suspend the
        // session exactly here. MUST stay ahead of the generic handler
        // below, which would otherwise burn the attempt as a decode
        // failure.
        skip_pre_ = true;
        throw;
      } catch (const sim::PlayerCrashError& e) {
        obs::count(tracer_, "chaos.crashes");
        if (e.permanent || !wait_out_block(e.revive_tick, "crash")) {
          result_.peer_lost = true;
          break;
        }
        // Without a checkpoint the wait still happened (the link is only
        // usable again after the outage) but the attempt burns.
        if (ckpt_ == nullptr) attempt_live_ = false;
      } catch (const sim::LinkPartitionedError& e) {
        obs::count(tracer_, "chaos.partitions");
        if (!wait_out_block(e.heal_tick, "partition")) {
          result_.peer_lost = true;
          break;
        }
        if (ckpt_ == nullptr) attempt_live_ = false;
      } catch (const core::BudgetExhaustedError& e) {
        // A spending cap tripped at a phase boundary or between attempts.
        // The snapshot (if any) landed before the throw, so the boundary
        // loses nothing — but no further exact attempt can be afforded:
        // the sticky exhausted flag ends the outer loop and the run
        // descends the degradation ladder.
        obs::count(tracer_, "budget.exhaustions");
        obs::count(tracer_, std::string("budget.exhausted_") +
                                core::budget_dimension_name(e.dimension));
        if (recorder_ != nullptr) {
          recorder_->record(obs::FlightEventKind::kBudgetExhausted,
                            core::budget_dimension_name(e.dimension), -1, 0,
                            channel_.cost().bits_total);
        }
        attempt_live_ = false;
      } catch (const core::ResourceLimitError&) {
        // A frame or a decode blew past a resource cap — the signature
        // move of a Byzantine peer. Burn the attempt like any decode
        // failure (an unlucky honest run near the cap retries too).
        obs::count(tracer_, "limit.breaches");
        obs::count(tracer_, "retry.decode_failures");
        attempt_live_ = false;
      } catch (const std::exception&) {
        // A corrupted message failed to decode (the hardened decoders
        // throw on damaged length prefixes and short reads). Same remedy
        // as a failed certificate: fresh randomness, next attempt.
        obs::count(tracer_, "retry.decode_failures");
        attempt_live_ = false;
      }
    }
    in_attempt_ = false;
    // Every exit from the inner loop without a certificate is one failed
    // attempt — feed the breaker so persistent link failure trips it.
    if (breaker_ != nullptr) {
      const core::BreakerState before = breaker_->state();
      breaker_->on_failure();
      if (before != core::BreakerState::kOpen &&
          breaker_->state() == core::BreakerState::kOpen) {
        obs::count(tracer_, "breaker.opens");
        if (recorder_ != nullptr) {
          recorder_->record(obs::FlightEventKind::kBreakerOpen,
                            "link breaker open", -1, 0,
                            channel_.cost().bits_total);
        }
      }
    }
    rep_ += 1;
  }
}

void VerifiedSessionDriver::run_ladder() {
  // The deterministic backstop trusts every byte the peer sends, so it is
  // only sound against an unreliable-but-honest transport. A Byzantine
  // peer (enabled adversary) would simply lie to it; degrade instead. A
  // chaos plan counts as hostile too: the backstop has no recovery layer
  // of its own, so a mid-exchange crash would escape it.
  const bool hostile = (faults_ != nullptr && faults_->enabled()) ||
                       (adversary_ != nullptr && adversary_->enabled()) ||
                       chaos_ != nullptr;
  // An exhausted budget (or an open breaker) must not reach the backstop
  // either: the deterministic exchange costs Theta(k log(n/k)) bits the
  // session by definition can no longer afford.
  const bool overloaded = budget_.exhausted() || breaker_denied_;
  if (!hostile && !overloaded) {
    // Reliable channel: only hash collisions (or limit breaches) can get
    // here, and the deterministic backstop is exact.
    obs::count(tracer_, "mp.backstops");
    if (recorder_ != nullptr) {
      recorder_->record(obs::FlightEventKind::kBackstop,
                        "deterministic exchange");
    }
    try {
      const core::IntersectionOutput exact =
          core::deterministic_exchange(channel_, universe_, s_, t_);
      result_.intersection = exact.alice;
      finish();
      return;
    } catch (const core::ResourceLimitError&) {
      // Limits tight enough that even the deterministic exchange breaches
      // them: fall through to the degraded superset path rather than let
      // the error escape the retry layer.
      obs::count(tracer_, "limit.breaches");
    }
  }

  // Graceful degradation: the retry budget is gone and the transport is
  // hostile, so no exact answer can be promised. Basic-Intersection
  // candidates are supersets of S cap T whenever the exchange arrives
  // intact (Lemma 3.3): the channel's integrity framing already turns
  // damaged frames into exceptions, and the content-fault snapshot below
  // closes the residual 2^-32 checksum-collision window (duplicates and
  // delays cost bandwidth but never corrupt content, so they don't
  // disqualify a run).
  if (budget_.exhausted() && hooks_.budget.refuse_on_exhaustion) {
    // Bottom rung, by explicit request: a ResourceExhausted refusal
    // instead of a weak superset. Empty answer, flagged neither verified
    // nor degraded — `refused` is its own contract, and multiparty
    // callers must skip (not intersect) a refused pair to keep the
    // superset invariant.
    obs::count(tracer_, "budget.refusals");
    if (recorder_ != nullptr) {
      recorder_->record(obs::FlightEventKind::kBudgetExhausted, "refused");
      recorder_->incident("refused: session budget exhausted");
    }
    result_.verified = false;
    result_.degraded = false;
    result_.refused = true;
    result_.rung = core::DegradeRung::kRefused;
    result_.intersection.clear();
    finish();
    return;
  }

  obs::Span degraded_span(tracer_, "degraded");
  obs::count(tracer_, "degraded.runs");
  if (recorder_ != nullptr) {
    recorder_->record(obs::FlightEventKind::kDegrade, "superset answer");
    recorder_->incident(
        result_.peer_lost ? "degraded: peer lost"
        : budget_.exhausted()
            ? std::string("degraded: budget ") +
                  core::budget_dimension_name(budget_.reason())
        : breaker_denied_ ? "degraded: breaker open"
                          : "degraded: retry budget exhausted");
  }
  result_.verified = false;
  result_.degraded = true;
  // An attempt only counts as a clean superset if neither the stochastic
  // plan damaged content NOR the adversary substituted a frame during it —
  // a crafted frame that decodes cleanly can still lie, and a lie can
  // knock true elements out of the candidate (no superset guarantee).
  // Bursty chaos corruption counts for the same reason.
  const auto content_faults = [this] {
    std::uint64_t events = 0;
    if (faults_ != nullptr) {
      const sim::FaultStats& st = faults_->stats();
      events += st.bits_flipped + st.truncated_bits + st.dropped_messages;
    }
    if (adversary_ != nullptr) events += adversary_->stats().frames_crafted;
    if (chaos_ != nullptr) events += chaos_->stats().content_events;
    return events;
  };
  // A lost peer cannot answer Basic-Intersection either: go straight to
  // the input fallback instead of burning attempts against a dead link.
  // A blown deadline skips the middle rung for the same reason — the
  // Lemma-3.3 exchange takes rounds the clock no longer has — while bit,
  // round, attempt and pool exhaustion still afford the cheap superset.
  const bool past_deadline =
      budget_.reason() == core::BudgetDimension::kDeadline;
  const std::uint64_t degraded_attempts =
      result_.peer_lost || past_deadline
          ? 0
          : std::max<std::uint64_t>(1, retry_.degraded_attempts);
  for (std::uint64_t d = 0; d < degraded_attempts; ++d) {
    const std::uint64_t before = content_faults();
    try {
      const core::CandidatePair cand = core::basic_intersection(
          channel_, shared_, util::mix64(nonce_, util::mix64(0xDE64, d)),
          universe_, s_, t_, /*target_failure=*/1.0 / 64.0);
      if (content_faults() == before) {
        obs::count(tracer_, "degraded.clean_supersets");
        result_.rung = core::DegradeRung::kFlaggedSuperset;
        result_.intersection = cand.s_candidate;
        finish();
        return;
      }
    } catch (const std::exception&) {
      // Fault-touched attempt; fall through to the next one.
    }
  }
  // Every degraded attempt was corrupted (or the peer is gone): the
  // caller's own input is the one superset that survives any fault rate.
  obs::count(tracer_, "degraded.input_fallbacks");
  result_.rung = core::DegradeRung::kInputFallback;
  result_.intersection.assign(s_.begin(), s_.end());
  finish();
}

void VerifiedSessionDriver::run_session() {
  if (!post_loop_) {
    if (run_attempt_loop()) return;
    post_loop_ = true;
  }
  run_ladder();
}

VerifiedRunResult VerifiedSessionDriver::run() {
  if (done_) return result_;
  run_session();
  return result_;
}

bool VerifiedSessionDriver::step() {
  if (done_) return true;
  if (!resumable_) {
    throw std::logic_error(
        "VerifiedSessionDriver::step on a blocking-mode driver");
  }
  if (ckpt_ != nullptr) ckpt_->set_park_at_boundaries(true);
  try {
    run_session();
  } catch (const core::CheckpointPark&) {
    // Parked on a phase boundary inside the current attempt; the next
    // step re-enters run_session and resumes from the snapshot.
  } catch (...) {
    if (ckpt_ != nullptr) ckpt_->set_park_at_boundaries(false);
    throw;
  }
  if (ckpt_ != nullptr) ckpt_->set_park_at_boundaries(false);
  return done_;
}

MultipartyResult coordinator_intersection(sim::Network& network,
                                          const sim::SharedRandomness& shared,
                                          std::uint64_t universe,
                                          const std::vector<util::Set>& sets,
                                          const MultipartyParams& params) {
  if (sets.size() != network.players()) {
    throw std::invalid_argument("coordinator: players/sets mismatch");
  }
  std::size_t k = params.k_bound;
  for (const util::Set& s : sets) {
    util::validate_set(s, universe);
    if (params.k_bound == 0) k = std::max(k, s.size());
  }
  k = std::max<std::size_t>(k, 2);
  const std::size_t group_size = 2 * k;

  MultipartyResult result;
  std::vector<std::size_t> active(sets.size());
  for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;
  std::vector<util::Set> current = sets;

  // Attribution happens once, at the network billing layer — the inner
  // two-party channels run untraced so bits are not double-counted.
  obs::Tracer* tracer = network.tracer();
  obs::Span protocol_span(tracer, "coordinator");
  sim::FaultPlan* faults = params.fault_plan != nullptr
                               ? params.fault_plan
                               : network.fault_plan();
  const core::ResourceLimits* limits =
      params.limits.enabled() ? &params.limits : nullptr;
  sim::ChaosPlan* chaos =
      params.chaos != nullptr ? params.chaos : network.chaos_plan();
  if (chaos != nullptr && !chaos->enabled()) chaos = nullptr;

  // Overload governance, shared across every pairwise session of the run:
  // one retry-token pool, one breaker per link (persisting across levels
  // so evidence about a dead link accumulates), and a deterministic
  // admission controller shedding sessions when the pool runs critical.
  core::RetryBudgetPool pool(params.retry_pool_attempts);
  core::BreakerBoard breakers(params.breaker);
  core::AdmissionController admission(params.admission, &pool);
  result.per_player_degraded.assign(sets.size(), 0);
  // Honest accounting: a pair governed away (shed / short-circuited /
  // refused / degraded / dead-skipped) charges BOTH endpoints.
  const auto charge_pair = [&result](std::size_t x, std::size_t y) {
    result.per_player_degraded[x] += 1;
    result.per_player_degraded[y] += 1;
  };

  while (active.size() > 1) {
    obs::Span level_span(tracer, "level=" + std::to_string(result.levels));
    std::vector<std::size_t> coordinators;
    network.begin_batch();
    for (std::size_t lo = 0; lo < active.size(); lo += group_size) {
      const std::size_t hi = std::min(lo + group_size, active.size());
      const std::size_t coord = active[lo];
      coordinators.push_back(coord);
      util::Set acc = current[coord];
      for (std::size_t j = lo + 1; j < hi; ++j) {
        const std::size_t member = active[j];
        // A permanently dead player cannot run its pairwise session at
        // all; skipping it leaves the accumulator unchanged — still a
        // superset of the m-way intersection, honestly flagged.
        if (chaos != nullptr &&
            (chaos->player_dead(coord) || chaos->player_dead(member))) {
          result.dead_player_skips += 1;
          result.degraded_pairs += 1;
          result.degraded = true;
          charge_pair(coord, member);
          obs::count(tracer, "chaos.dead_player_skips");
          obs::count(tracer, "mp.degraded_pairs");
          continue;
        }
        const std::uint64_t nonce = util::mix64(
            util::mix64(result.levels, coord), util::mix64(member, 0xC0));
        // Admission control: under critical pool pressure, shed the
        // session before it spends anything. The seeded-priority decision
        // is a pure function of (admission seed, pair nonce, pool level),
        // so identical runs shed identical pairs.
        if (!admission.admit(nonce)) {
          result.shed_pairs += 1;
          result.degraded_pairs += 1;
          result.degraded = true;
          charge_pair(coord, member);
          obs::count(tracer, "budget.shed");
          obs::count(tracer, "mp.degraded_pairs");
          continue;
        }
        // Circuit-breaker gate: a link whose breaker is open goes
        // straight to degradation — the accumulator keeps the superset
        // invariant and the pool keeps its tokens.
        core::CircuitBreaker* pair_breaker =
            breakers.enabled() ? &breakers.link(coord, member) : nullptr;
        if (pair_breaker != nullptr && !pair_breaker->allow()) {
          result.breaker_short_circuits += 1;
          result.degraded_pairs += 1;
          result.degraded = true;
          charge_pair(coord, member);
          obs::count(tracer, "breaker.short_circuits");
          obs::count(tracer, "mp.degraded_pairs");
          continue;
        }
        // Bind the Byzantine player (if any) to the channel role it holds
        // in this pair; pairs of honest players run with no adversary.
        sim::Adversary* pair_adversary = nullptr;
        if (params.adversary != nullptr) {
          if (coord == params.byzantine_player) {
            params.adversary->set_party(sim::PartyId::kAlice);
            pair_adversary = params.adversary;
          } else if (member == params.byzantine_player) {
            params.adversary->set_party(sim::PartyId::kBob);
            pair_adversary = params.adversary;
          }
        }
        SessionHooks hooks;
        hooks.faults = faults;
        hooks.adversary = pair_adversary;
        hooks.limits = limits;
        hooks.chaos = chaos;
        hooks.player_a = coord;
        hooks.player_b = member;
        hooks.checkpoint = params.checkpoint;
        hooks.budget = params.budget;
        hooks.retry_pool = pool.enabled() ? &pool : nullptr;
        hooks.breaker = pair_breaker;
        VerifiedRunResult vr = verified_two_party_intersection(
            shared, nonce, universe, current[coord], current[member],
            params.tree, k, params.retry, hooks);
        if (pair_adversary != nullptr) {
          obs::count(tracer, "mp.byzantine_pairs");
        }
        network.bill_pairwise_in_batch(coord, member, vr.cost);
        result.total_repetitions += vr.repetitions;
        result.total_restarts += vr.restarts;
        result.total_bits_replayed += vr.bits_replayed;
        obs::count(tracer, "mp.pairwise_runs");
        obs::count(tracer, "mp.repetitions", vr.repetitions);
        if (vr.refused) {
          result.refused_pairs += 1;
          obs::count(tracer, "budget.refused_pairs");
        }
        if (vr.degraded || vr.refused) {
          // The degraded answer is still a superset of coord-cap-member,
          // hence of the m-way intersection, so intersecting it into the
          // accumulator keeps the one-sided invariant. A refusal carries
          // no answer at all and is handled below like a skip.
          result.degraded_pairs += 1;
          result.degraded = true;
          charge_pair(coord, member);
          obs::count(tracer, "mp.degraded_pairs");
        }
        // A refused session returned the EMPTY set by contract —
        // intersecting that in would silently destroy the superset
        // invariant, so a refused pair leaves the accumulator untouched.
        if (!vr.refused) {
          acc = util::set_intersection(acc, vr.intersection);
        }
      }
      current[coord] = std::move(acc);
    }
    network.end_batch();
    active = std::move(coordinators);
    result.levels += 1;
  }

  result.pool_retry_denials = pool.denials();
  result.breaker_opens = breakers.total_opens();
  if (pool.enabled()) {
    obs::count(tracer, "budget.pool_spent", pool.spent());
  }

  result.intersection = current[active[0]];

  if (params.broadcast_result && network.players() > 1) {
    obs::Span broadcast_span(tracer, "broadcast");
    // The root coordinator ships the result to every other player in one
    // parallel round.
    util::BitBuffer encoded;
    util::append_set(encoded, result.intersection);
    const std::uint64_t bits = encoded.size_bits();
    const std::size_t root = active[0];
    network.begin_batch();
    for (std::size_t i = 0; i < network.players(); ++i) {
      if (i == root) continue;
      sim::CostStats one_message;
      one_message.bits_total = bits;
      one_message.bits_from_alice = bits;
      one_message.messages = 1;
      one_message.rounds = 1;
      network.bill_pairwise_in_batch(root, i, one_message);
      result.broadcast_bits += bits;
    }
    network.end_batch();
  }
  return result;
}

}  // namespace setint::multiparty
