// Multi-party set intersection, tournament variant (Corollary 4.2).
//
// Same group structure as the coordinator protocol, but inside each group
// the players sit at the leaves of a binary tournament: matches run the
// two-party protocol pairwise, the left player of each match carries the
// candidate intersection up a level, and only the final (root) match is
// certified with a 2k-bit equality check. Because every match output is a
// subset of both of its inputs and a superset of the true intersection
// (the protocol's one-sided invariants), a passing root certificate
// certifies the whole tree at once — the paper's "repeat the entire tree"
// is refined here to "retry the root match", which preserves the claimed
// guarantees (see DESIGN.md).
//
// Effect vs. Corollary 4.1: no single player talks to 2k peers; the
// worst-case per-player communication drops to O(depth * k log^(r) k) at
// the price of a depth factor in rounds.
#pragma once

#include "multiparty/coordinator.h"

namespace setint::multiparty {

MultipartyResult tournament_intersection(sim::Network& network,
                                         const sim::SharedRandomness& shared,
                                         std::uint64_t universe,
                                         const std::vector<util::Set>& sets,
                                         const MultipartyParams& params = {});

}  // namespace setint::multiparty
