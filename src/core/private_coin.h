// Constructive private-randomness protocol (Section 3.1).
//
// Instead of Newman's non-constructive theorem, the paper prescribes:
// compress the universe with an FKS mod-prime map (q ~ O~(k^2 log n), so
// the prime costs O(log k + log log n) bits to send) and then ship the
// few explicit hash-seed bits the shared-randomness protocol consumes.
// We implement exactly that: Alice samples the FKS prime — resampling
// until it is injective on her own set — plus a master seed for the
// derived hash substreams, and sends both; Bob replies one bit indicating
// whether the prime is injective on his set too (if not, Alice resamples;
// expected O(1) attempts). The inner protocol then runs over the
// compressed universe [q) and each party lifts its candidates back through
// its own (injective) preimages.
//
// Measured guarantee (E9): additive O(log k + log log n) bits over the
// shared-randomness cost and +2 rounds, with no dependence on r.
#pragma once

#include <cstdint>

#include "core/protocol.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint::core {

struct PrivateCoinStats {
  std::uint64_t seed_bits = 0;      // explicit randomness shipped
  std::uint64_t prime_attempts = 0; // FKS resamples (expected O(1))
};

// `private_rng` is Alice's local randomness (Bob needs none beyond the
// shipped seed). Runs the verification-tree protocol underneath.
IntersectionOutput private_coin_intersection(
    sim::Channel& channel, util::Rng& private_rng, std::uint64_t universe,
    util::SetView s, util::SetView t,
    const VerificationTreeParams& params = {},
    PrivateCoinStats* stats = nullptr);

class PrivateCoinProtocol final : public IntersectionProtocol {
 public:
  explicit PrivateCoinProtocol(VerificationTreeParams params = {})
      : params_(params) {}
  std::string name() const override { return "private-coin-tree"; }
  RunResult run(std::uint64_t seed, std::uint64_t universe, util::SetView s,
                util::SetView t) const override;

 private:
  VerificationTreeParams params_;
};

}  // namespace setint::core
