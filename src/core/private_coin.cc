#include "core/private_coin.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "hashing/barrett.h"
#include "hashing/fks.h"
#include "obs/tracer.h"
#include "sim/randomness.h"
#include "util/bitio.h"

namespace setint::core {

IntersectionOutput private_coin_intersection(
    sim::Channel& channel, util::Rng& private_rng, std::uint64_t universe,
    util::SetView s, util::SetView t, const VerificationTreeParams& params,
    PrivateCoinStats* stats) {
  validate_instance(universe, s, t);
  const std::uint64_t k = std::max<std::uint64_t>({s.size(), t.size(), 2});

  obs::Span protocol_span(channel.tracer(), "private_coin");
  PrivateCoinStats local;
  std::uint64_t master_seed = 0;
  std::uint64_t q = 0;
  obs::Span seed_span(channel.tracer(), "seed_exchange");
  for (int attempt = 0; attempt < 64; ++attempt) {
    // Alice samples the FKS prime (retrying locally until injective on S)
    // and a master seed for all derived hash functions.
    hashing::FksCompressor fks = [&] {
      for (;;) {
        auto f = hashing::FksCompressor::sample(private_rng, universe, 2 * k);
        if (f.injective_on(s)) return f;
      }
    }();
    master_seed = private_rng.next();
    local.prime_attempts += 1;

    util::BitBuffer seed_msg;
    fks.append_seed(seed_msg);
    seed_msg.append_bits(master_seed, 64);
    local.seed_bits += seed_msg.size_bits();
    const util::BitBuffer delivered =
        channel.send(sim::PartyId::kAlice, std::move(seed_msg), "pc-seed");

    util::BitReader reader(delivered);
    const auto bob_fks = hashing::FksCompressor::read_seed(reader);
    const std::uint64_t bob_seed = reader.read_bits(64);

    // Bob accepts iff the prime is injective on his set too.
    util::BitBuffer ack;
    const bool ok = bob_fks.injective_on(t);
    ack.append_bit(ok);
    channel.send(sim::PartyId::kBob, std::move(ack), "pc-ack");
    if (!ok) continue;

    q = bob_fks.range();
    (void)bob_seed;  // == master_seed by construction
    break;
  }
  seed_span.end();
  if (q == 0) {
    throw std::runtime_error("private_coin: could not agree on FKS prime");
  }

  // Compress both sets into [q); injectivity on each side was just checked,
  // so each party can lift its own candidates back unambiguously. One
  // precomputed reducer serves compression and lifting (same exact values
  // as `% q`).
  const hashing::Reducer64 red_q(q);
  auto compress = [&red_q](util::SetView v) {
    util::Set image;
    image.reserve(v.size());
    for (std::uint64_t x : v) image.push_back(red_q.mod(x));
    std::sort(image.begin(), image.end());
    return image;
  };
  const util::Set cs = compress(s);
  const util::Set ct = compress(t);

  sim::SharedRandomness derived(master_seed);
  const IntersectionOutput compressed = verification_tree_intersection(
      channel, derived, /*nonce=*/0x9c, q, cs, ct, params);

  auto lift = [&red_q](util::SetView own, const util::Set& candidates) {
    std::unordered_map<std::uint64_t, std::uint64_t> preimage;
    preimage.reserve(own.size() * 2);
    for (std::uint64_t x : own) preimage.emplace(red_q.mod(x), x);
    util::Set out;
    out.reserve(candidates.size());
    for (std::uint64_t c : candidates) {
      const auto it = preimage.find(c);
      if (it != preimage.end()) out.push_back(it->second);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  IntersectionOutput out;
  out.alice = lift(s, compressed.alice);
  out.bob = lift(t, compressed.bob);
  if (stats != nullptr) *stats = local;
  return out;
}

RunResult PrivateCoinProtocol::run(std::uint64_t seed, std::uint64_t universe,
                                   util::SetView s, util::SetView t) const {
  sim::Channel channel;
  util::Rng private_rng(seed);
  RunResult r;
  r.output =
      private_coin_intersection(channel, private_rng, universe, s, t, params_);
  r.cost = channel.cost();
  return r;
}

}  // namespace setint::core
