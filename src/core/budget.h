// Overload governance: per-session resource budgets, the seeded
// exponential-backoff retry schedule, the coordinator-level shared retry
// pool, and deterministic admission control.
//
// The retry/degradation layer (core/retry.h) bounds how hard ONE session
// tries; this header bounds what a session — and a whole multiparty run —
// may *spend* while trying. Four pieces (docs/ROBUSTNESS.md § overload
// governance):
//
// 1. `SessionBudgetSpec` / `SessionBudget` — cooperative per-session caps
//    on bits, rounds and a simulated wall-clock deadline, enforced at
//    phase boundaries via the PR-7 `core::Checkpoint` hook
//    (`Checkpoint::set_budget`) and between retry attempts. Exhaustion
//    throws `BudgetExhaustedError`, which the recovery layer routes into
//    the degradation ladder instead of the next attempt. The retry-count
//    budget stays where it always lived, `RetryPolicy::max_attempts`.
// 2. `retry_backoff_rounds` — a deterministic seeded
//    exponential-backoff-with-jitter schedule replacing the flat
//    `backoff_rounds` charge. The default policy (multiplier 1, no
//    jitter) reproduces the flat schedule bit-for-bit, so transcripts of
//    pre-existing configurations are unchanged.
// 3. `RetryBudgetPool` — a shared pool of retry tokens across the m-1
//    pairwise sessions of one coordinator/tournament run, so one
//    pathological link cannot starve every healthy session of its retry
//    budget.
// 4. `AdmissionPolicy` / `AdmissionController` — when the pool drains
//    below a critical fraction, new pair-sessions are shed
//    deterministically by seeded priority before they spend anything,
//    with honest per-player degradation accounting.
//
// The degradation ladder itself is named by `DegradeRung`: every run ends
// on exactly one rung, each step cheaper (and more approximate) than the
// last — exact answer, flagged Lemma-3.3 superset, zero-communication
// input-fallback superset, or an explicit ResourceExhausted-style refusal
// (`SessionBudgetSpec::refuse_on_exhaustion`).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/transcript.h"

namespace setint::sim {
class ChaosPlan;
}  // namespace setint::sim

namespace setint::core {

// Which rung of the degradation ladder a run ended on. Ordered: every
// step down is cheaper and weaker than the one above it.
enum class DegradeRung : std::uint8_t {
  kExact = 0,          // verified (certificate or deterministic backstop)
  kFlaggedSuperset,    // Lemma-3.3 best-effort superset, honestly flagged
  kInputFallback,      // the caller's own input — the free superset
  kRefused,            // explicit refusal: no answer rather than a weak one
};

// Stable lowercase name ("exact", "flagged_superset", ...).
const char* degrade_rung_name(DegradeRung rung);

// The budget dimension that tripped first (sticky per session).
enum class BudgetDimension : std::uint8_t {
  kNone = 0,
  kBits,      // SessionBudgetSpec::max_bits
  kRounds,    // SessionBudgetSpec::max_rounds
  kDeadline,  // SessionBudgetSpec::deadline_ticks
  kPool,      // the shared RetryBudgetPool ran dry
  kAttempts,  // RetryPolicy::max_attempts (reported, never thrown)
};

const char* budget_dimension_name(BudgetDimension dim);

// Thrown by SessionBudget::check() when a cap is exceeded. The recovery
// layer catches it and descends the degradation ladder — it must never
// escape verified_two_party_intersection.
class BudgetExhaustedError : public std::runtime_error {
 public:
  BudgetExhaustedError(BudgetDimension dimension, const std::string& what)
      : std::runtime_error(what), dimension(dimension) {}

  BudgetDimension dimension;
};

// Cooperative per-session spending caps. All caps use 0 = unlimited;
// a default-constructed spec is disabled and free.
struct SessionBudgetSpec {
  // Total channel bits the session may spend (all attempts, certificates,
  // degraded runs and replayed-after-crash bits included — the channel
  // counter is monotonic, so a checkpoint resume charges the replayed
  // bits exactly once).
  std::uint64_t max_bits = 0;

  // Total rounds (message alternations plus charged latency: backoff,
  // injected delays, outage waits).
  std::uint64_t max_rounds = 0;

  // Simulated wall-clock deadline. The clock is the chaos plan's logical
  // tick clock when one is installed (one tick per attempted send,
  // advanced past outages by the recovery layer), else the channel round
  // clock — both deterministic, both monotone.
  std::uint64_t deadline_ticks = 0;

  // Strict-SLA mode: on budget exhaustion skip the degraded superset
  // rungs entirely and return an explicit refusal (DegradeRung::kRefused,
  // empty answer). Default: descend the ladder and return the best
  // affordable superset.
  bool refuse_on_exhaustion = false;

  bool enabled() const {
    return max_bits != 0 || max_rounds != 0 || deadline_ticks != 0;
  }
};

// One session's live budget: wraps the channel's monotonic CostStats (and
// optionally the chaos clock) and throws when a cap is crossed. Checks
// run at phase boundaries (via Checkpoint::set_budget) and between retry
// attempts — cooperative, like resource limits, so a session stops at the
// next boundary after blowing its budget rather than mid-message.
class SessionBudget {
 public:
  // `cost` is the session channel's live counter (not owned, must outlive
  // the budget); `clock` is the optional chaos plan providing the
  // deadline tick clock (not owned, may be null).
  SessionBudget(const SessionBudgetSpec& spec, const sim::CostStats* cost,
                const sim::ChaosPlan* clock = nullptr);

  // Throws BudgetExhaustedError on the first cap crossed; records the
  // tripped dimension (sticky) so repeated checks re-throw consistently.
  void check();

  // True once any dimension has tripped.
  bool exhausted() const { return reason_ != BudgetDimension::kNone; }
  BudgetDimension reason() const { return reason_; }

  // Marks the budget exhausted without a cap of its own having fired —
  // used when the shared pool denies a retry token (kPool) or the
  // per-session attempt budget dies (kAttempts), so the ladder descent
  // has one uniform reason record.
  void mark_exhausted(BudgetDimension dimension);

  // Channel bits observed at the last check — equals the channel's
  // bits_total, which counts crash-replayed bits exactly once (pinned by
  // tests/checkpoint_test.cc).
  std::uint64_t bits_observed() const { return bits_observed_; }
  std::uint64_t checks() const { return checks_; }

  const SessionBudgetSpec& spec() const { return spec_; }

 private:
  SessionBudgetSpec spec_;
  const sim::CostStats* cost_;
  const sim::ChaosPlan* clock_;
  BudgetDimension reason_ = BudgetDimension::kNone;
  std::uint64_t bits_observed_ = 0;
  std::uint64_t checks_ = 0;
};

// Deterministic seeded exponential-backoff-with-jitter schedule.
//
// Retry attempt `attempt` (1-based: the first RE-attempt is 1) waits
//   step   = min(backoff_rounds * multiplier^(attempt-1), cap)
//   jitter = hash(seed, attempt) mod (jitter_fraction * step + 1)
// rounds before running. Defaults (multiplier 1, jitter 0) reproduce the
// PR-2 flat schedule exactly; `backoff_rounds == 0` stays free whatever
// the other knobs say. Pure function of its arguments — replayable.
struct BackoffPolicy {
  std::uint64_t base_rounds = 0;     // 0 = immediate retry
  double multiplier = 1.0;           // >= 1; 2.0 = classic doubling
  std::uint64_t cap_rounds = 4096;   // upper bound on the deterministic step
  double jitter = 0.0;               // in [0, 1]: fraction of step randomized
};

std::uint64_t backoff_rounds_for_attempt(const BackoffPolicy& policy,
                                         std::uint64_t seed,
                                         std::uint64_t attempt);

// Shared retry-token pool for one multiparty run. Every RE-attempt (not
// first tries) in every pairwise session draws one token; when the pool
// runs dry, sessions stop retrying and degrade instead — one dead link
// can burn its own session's budget but not the whole run's.
// Single-threaded by design, like the coordinator that owns it.
class RetryBudgetPool {
 public:
  // capacity 0 = disabled: try_acquire always succeeds and the pool never
  // reports pressure.
  explicit RetryBudgetPool(std::uint64_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ != 0; }

  // Takes one retry token; false (and a recorded denial) when empty.
  bool try_acquire();

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t spent() const { return spent_; }
  std::uint64_t remaining() const {
    return capacity_ > spent_ ? capacity_ - spent_ : 0;
  }
  std::uint64_t denials() const { return denials_; }

  // 1.0 when disabled or untouched, 0.0 when dry.
  double remaining_fraction() const;

 private:
  std::uint64_t capacity_;
  std::uint64_t spent_ = 0;
  std::uint64_t denials_ = 0;
};

// Deterministic load shedding for coordinator/tournament pair-sessions.
// While the shared pool holds at least `critical_fraction` of its tokens
// every session is admitted; below that, sessions are shed with
// probability rising linearly to 1 as the pool approaches empty. The
// shed decision for a pair is a pure hash of (seed, pair nonce) against
// the current threshold — seeded priority, no RNG state — so reruns shed
// the same pairs and the bench determinism contract holds.
struct AdmissionPolicy {
  double critical_fraction = 0.0;  // 0 = admission control off
  std::uint64_t seed = 0xAD31;
};

class AdmissionController {
 public:
  // `pool` not owned, may be null (admission control needs a pool to
  // measure pressure; without one every session is admitted).
  AdmissionController(const AdmissionPolicy& policy,
                      const RetryBudgetPool* pool)
      : policy_(policy), pool_(pool) {}

  bool enabled() const {
    return policy_.critical_fraction > 0.0 && pool_ != nullptr &&
           pool_->enabled();
  }

  // Deterministic admit/shed decision for the pair-session identified by
  // `nonce`. Records shed sessions.
  bool admit(std::uint64_t nonce);

  // Current shed probability in [0, 1] — 0 while the pool is healthy.
  double shed_fraction() const;

  std::uint64_t shed() const { return shed_; }
  std::uint64_t admitted() const { return admitted_; }

 private:
  AdmissionPolicy policy_;
  const RetryBudgetPool* pool_;
  std::uint64_t shed_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace setint::core
