// The paper's main contribution: the verification-tree protocol
// (Algorithm 1, Theorems 1.1 / 3.6).
//
// Shape: hash both sets into k buckets (the tree's leaves) with a shared
// pairwise hash. Build a depth-r tree over the leaves whose level-i nodes
// cover |C(v)| = log^(r-i) k leaves (so level degrees are
// d_i = log^(r-i) k / log^(r-i+1) k, d_1 = log^(r-1) k). Then run r
// stages, i = 0..r-1:
//   1. batched equality tests on the concatenated per-leaf candidate
//      assignments at every level-i node, with failure probability
//      1/(log^(r-i-1) k)^4 (i.e. 4 log^(r-i) k hash bits) — 2 rounds;
//   2. for every failed node, re-run Basic-Intersection on all leaves in
//      its subtree with matching failure probability — 4 rounds.
// Six rounds per stage -> <= 6r rounds total. Expected communication
// O(k log^(r) k): the stage-0 equality tests dominate and every other
// level costs O(k) (proof of Theorem 3.6); with r = log* k this is the
// optimal O(k) bits.
//
// Correctness: candidate assignments are always supersets of the true
// per-bucket intersection (Lemma 3.3 / Proposition 3.9), and equal
// candidates are exactly the intersection (Corollary 3.4), so the output
// equals S cap T unless some final equality test passes falsely —
// probability <= 1/poly(k) (Corollary 3.8).
#pragma once

#include <cstdint>
#include <vector>

#include "core/checkpoint.h"
#include "core/protocol.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::core {

struct VerificationTreeParams {
  // Number of stages r. 0 means "auto": log*(k), the communication-optimal
  // choice (Theorem 1.1 with O(k) bits).
  int rounds_r = 0;

  // Number of buckets / tree leaves. 0 means "auto": max(|S|, |T|, 2).
  std::size_t bucket_count = 0;

  // Multiplier on the 4*log^(r-i) k equality-bit schedule (ablation knob;
  // 1.0 reproduces the paper's constants).
  double eq_bits_scale = 1.0;

  // Multiplier on Basic-Intersection hash ranges (ablation knob).
  double bi_range_scale = 1.0;

  // If > 0, abort the randomized protocol once communication exceeds
  // cutoff * k * log^(r) k bits and fall back to deterministic exchange —
  // the paper's trick for turning the expected bound into a worst-case
  // one. 0 disables.
  double worst_case_cutoff_factor = 0.0;
};

// Per-run internals, exported for tests and the E11 bench.
struct VerificationTreeDiag {
  std::vector<std::uint64_t> stage_failures;   // failed nodes per stage
  std::vector<std::uint64_t> stage_eq_bits;    // equality bits per stage
  std::vector<std::uint64_t> stage_bi_bits;    // Basic-Intersection bits
  std::vector<std::uint32_t> leaf_reruns;      // Basic-Intersection runs/leaf
  std::uint64_t total_bi_runs = 0;
  bool fallback_used = false;
};

// With a Checkpoint (core/checkpoint.h) installed, the protocol saves a
// snapshot (tag "vt") of the per-leaf candidate assignments after every
// completed stage and, on re-entry after a crash, restores it and resumes
// from the first unfinished stage — the transcript from that point on is
// bit-identical to an uninterrupted run, because every stage draws from an
// independent nonce substream. nullptr disables checkpointing (no
// serialization cost on the clean path).
IntersectionOutput verification_tree_intersection(
    sim::Channel& channel, const sim::SharedRandomness& shared,
    std::uint64_t nonce, std::uint64_t universe, util::SetView s,
    util::SetView t, const VerificationTreeParams& params = {},
    VerificationTreeDiag* diag = nullptr, Checkpoint* ckpt = nullptr);

class VerificationTreeProtocol final : public IntersectionProtocol {
 public:
  explicit VerificationTreeProtocol(VerificationTreeParams params = {})
      : params_(params) {}
  std::string name() const override;
  RunResult run(std::uint64_t seed, std::uint64_t universe, util::SetView s,
                util::SetView t) const override;

 private:
  VerificationTreeParams params_;
};

// The tree layout used by the protocol, exposed for tests: level_ranges[i]
// is the partition of [0, leaves) into the level-i node ranges
// (level_ranges[0] = singletons ... level_ranges[r] = one root range).
std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
verification_tree_layout(std::size_t leaves, int rounds_r);

}  // namespace setint::core
