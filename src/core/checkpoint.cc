#include "core/checkpoint.h"

#include "core/budget.h"

namespace setint::core {

void Checkpoint::save(std::string_view tag, std::uint64_t phase,
                      util::BitBuffer state, std::uint64_t bits_at_boundary) {
  tag_.assign(tag);
  phase_ = phase;
  state_ = std::move(state);
  bits_at_boundary_ = bits_at_boundary;
  snapshots_ += 1;
  if (interrupt_armed_ && tag_ == interrupt_tag_ && phase_ >= interrupt_phase_) {
    interrupt_armed_ = false;
    throw CheckpointInterrupt("checkpoint: injected interrupt after " + tag_ +
                              " phase " + std::to_string(phase_));
  }
  // Budget enforcement point: the snapshot is stored above, so a
  // BudgetExhaustedError here interrupts exactly on the boundary.
  if (budget_ != nullptr) budget_->check();
  // Sans-IO park, strictly after the budget hook: an exhausted budget at
  // this boundary surfaces as BudgetExhaustedError in the stepped path
  // exactly as it would blocking, and budget.checks counts stay equal.
  if (park_at_boundaries_) {
    park_pending_ = true;
    throw CheckpointPark("checkpoint: parked at " + tag_ + " phase " +
                         std::to_string(phase_));
  }
}

void Checkpoint::clear() {
  tag_.clear();
  phase_ = 0;
  state_.clear();
  bits_at_boundary_ = 0;
}

void Checkpoint::interrupt_after(std::string_view tag, std::uint64_t phase) {
  interrupt_tag_.assign(tag);
  interrupt_phase_ = phase;
  interrupt_armed_ = true;
}

}  // namespace setint::core
