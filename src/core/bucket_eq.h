// Theorem 3.1: O(k) communication via bucketing + amortized equality.
//
// The parties hash their elements through H: [n] -> [N], N = k^c (Fact 2.2
// makes H collision-free on S cup T w.h.p.), then bucket with
// h: [N] -> [k]. For every bucket i they form one equality instance per
// pair (s, t) in S_i x T_i — E[total instances] <= 6k by the binomial
// concentration argument of Theorem 3.1, equation (1) — and solve all of
// them with the amortized EQ^k protocol (eq/amortized_eq.h). An element is
// in the candidate intersection iff one of its instances resolves equal.
//
// Costs: O(k) expected bits; rounds are the amortized-equality protocol's
// O(log^2 k) (within the theorem's O(sqrt k) budget).
#pragma once

#include <cstdint>

#include "core/checkpoint.h"
#include "core/protocol.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::core {

struct BucketEqStats {
  std::uint64_t instances = 0;  // |E|, expected <= 6k
  std::uint64_t levels = 0;     // amortized-equality tree levels
};

// With a Checkpoint installed, the size exchange is one phase boundary
// (tag "bucket_eq") and the amortized-equality stage checkpoints per
// level (tag "amortized_eq", see eq/amortized_eq.h) — so a crashed
// session resumes mid-equality-tree instead of re-bucketing and
// re-sending everything.
IntersectionOutput bucket_eq_intersection(sim::Channel& channel,
                                          const sim::SharedRandomness& shared,
                                          std::uint64_t nonce,
                                          std::uint64_t universe,
                                          util::SetView s, util::SetView t,
                                          int strength = 3,
                                          BucketEqStats* stats = nullptr,
                                          Checkpoint* ckpt = nullptr);

class BucketEqProtocol final : public IntersectionProtocol {
 public:
  explicit BucketEqProtocol(int strength = 3) : strength_(strength) {}
  std::string name() const override { return "bucket-eq[FKNN]"; }
  RunResult run(std::uint64_t seed, std::uint64_t universe, util::SetView s,
                util::SetView t) const override;

 private:
  int strength_;
};

}  // namespace setint::core
