#include "core/parties.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/basic_intersection.h"
#include "hashing/mask_hash.h"
#include "util/iterated_log.h"

namespace setint::core {

namespace {

util::Set hashed_image(util::SetView s, const hashing::PairwiseHash& h) {
  util::Set image;
  image.reserve(s.size());
  for (std::uint64_t x : s) image.push_back(h(x));
  std::sort(image.begin(), image.end());
  image.erase(std::unique(image.begin(), image.end()), image.end());
  return image;
}

void append_fixed_width_image(util::BitBuffer& out, const util::Set& image,
                              unsigned width) {
  out.append_gamma64(image.size());
  for (std::uint64_t v : image) out.append_bits(v, width);
}

util::Set read_fixed_width_image(util::BitReader& in, unsigned width) {
  const std::uint64_t count = in.read_gamma64();
  in.expect_at_least(count, width, "image count");
  util::Set image(count);
  for (auto& v : image) v = in.read_bits(width);
  if (!util::is_canonical_set(image)) {
    throw std::invalid_argument(
        "decode: hashed image not strictly increasing (field 'image')");
  }
  return image;
}

util::Set filter_by_peer_image(util::SetView own,
                               const hashing::PairwiseHash& h,
                               util::SetView peer_image) {
  util::Set out;
  for (std::uint64_t x : own) {
    if (util::set_contains(peer_image, h(x))) out.push_back(x);
  }
  return out;
}

}  // namespace

// ---------- equality ----------

EqualitySender::EqualitySender(sim::SharedRandomness shared,
                               std::uint64_t nonce, util::BitBuffer content,
                               std::size_t bits)
    : shared_(shared), nonce_(nonce), content_(std::move(content)),
      bits_(bits) {
  if (bits == 0) throw std::invalid_argument("EqualitySender: 0 bits");
}

std::optional<util::BitBuffer> EqualitySender::start() {
  util::BitBuffer msg;
  hashing::mask_hash_wide(content_, bits_, shared_.stream("eq", nonce_, 0),
                          msg);
  return msg;
}

std::optional<util::BitBuffer> EqualitySender::on_message(
    const util::BitBuffer& message) {
  util::BitReader reader(message);
  declared_equal_ = reader.read_bit();
  done_ = true;
  return std::nullopt;
}

EqualityResponder::EqualityResponder(sim::SharedRandomness shared,
                                     std::uint64_t nonce,
                                     util::BitBuffer content,
                                     std::size_t bits)
    : shared_(shared), nonce_(nonce), content_(std::move(content)),
      bits_(bits) {
  if (bits == 0) throw std::invalid_argument("EqualityResponder: 0 bits");
}

std::optional<util::BitBuffer> EqualityResponder::on_message(
    const util::BitBuffer& message) {
  util::BitBuffer expected;
  hashing::mask_hash_wide(content_, bits_, shared_.stream("eq", nonce_, 0),
                          expected);
  util::BitReader got(message);
  util::BitReader want(expected);
  bool match = true;
  for (std::size_t b = 0; b < bits_; ++b) {
    if (got.read_bit() != want.read_bit()) match = false;
  }
  declared_equal_ = match;
  done_ = true;
  util::BitBuffer verdict;
  verdict.append_bit(match);
  return verdict;
}

// ---------- one-round hashing ----------

namespace {

// Identical derivation to core::one_round_hash: the size bound k is
// public protocol knowledge (|S|, |T| <= k), so parties take it as a
// constructor argument rather than peeking at the peer's input.
hashing::PairwiseHash one_round_hash_function(
    const sim::SharedRandomness& shared, std::uint64_t nonce,
    std::uint64_t universe, std::uint64_t k_bound, int strength) {
  const std::uint64_t k = std::max<std::uint64_t>(k_bound, 2);
  const double range =
      std::pow(static_cast<double>(k), static_cast<double>(strength));
  if (range > 0x1p62) throw std::invalid_argument("one-round: range overflow");
  const std::uint64_t big_n =
      std::max<std::uint64_t>(1u << 16, static_cast<std::uint64_t>(range));
  util::Rng stream = shared.stream("one-round-hash", nonce);
  return hashing::PairwiseHash::sample(stream, universe, big_n);
}

}  // namespace

OneRoundHashAlice::OneRoundHashAlice(sim::SharedRandomness shared,
                                     std::uint64_t nonce,
                                     std::uint64_t universe, util::Set input,
                                     std::uint64_t k_bound, int strength)
    : shared_(shared), nonce_(nonce), universe_(universe),
      input_(std::move(input)), k_bound_(k_bound), strength_(strength) {}

std::optional<util::BitBuffer> OneRoundHashAlice::start() {
  const auto h = one_round_hash_function(shared_, nonce_, universe_,
                                         k_bound_, strength_);
  util::BitBuffer msg;
  append_fixed_width_image(msg, hashed_image(input_, h),
                           util::ceil_log2(h.range()));
  return msg;
}

std::optional<util::BitBuffer> OneRoundHashAlice::on_message(
    const util::BitBuffer& message) {
  const auto h = one_round_hash_function(shared_, nonce_, universe_,
                                         k_bound_, strength_);
  util::BitReader reader(message);
  const util::Set peer_image =
      read_fixed_width_image(reader, util::ceil_log2(h.range()));
  candidates_ = filter_by_peer_image(input_, h, peer_image);
  done_ = true;
  return std::nullopt;
}

OneRoundHashBob::OneRoundHashBob(sim::SharedRandomness shared,
                                 std::uint64_t nonce, std::uint64_t universe,
                                 util::Set input, std::uint64_t k_bound,
                                 int strength)
    : shared_(shared), nonce_(nonce), universe_(universe),
      input_(std::move(input)), k_bound_(k_bound), strength_(strength) {}

std::optional<util::BitBuffer> OneRoundHashBob::on_message(
    const util::BitBuffer& message) {
  const auto h = one_round_hash_function(shared_, nonce_, universe_,
                                         k_bound_, strength_);
  const unsigned width = util::ceil_log2(h.range());
  util::BitReader reader(message);
  const util::Set peer_image = read_fixed_width_image(reader, width);
  candidates_ = filter_by_peer_image(input_, h, peer_image);
  done_ = true;
  util::BitBuffer reply;
  append_fixed_width_image(reply, hashed_image(input_, h), width);
  return reply;
}

// ---------- Basic-Intersection ----------

BasicIntersectionAlice::BasicIntersectionAlice(sim::SharedRandomness shared,
                                               std::uint64_t nonce,
                                               std::uint64_t universe,
                                               util::Set input,
                                               double target_failure)
    : shared_(shared), nonce_(nonce), universe_(universe),
      input_(std::move(input)), target_failure_(target_failure) {}

std::optional<util::BitBuffer> BasicIntersectionAlice::start() {
  state_ = State::kAwaitSizes;
  util::BitBuffer msg;
  msg.append_gamma64(input_.size());
  return msg;
}

std::optional<util::BitBuffer> BasicIntersectionAlice::on_message(
    const util::BitBuffer& message) {
  switch (state_) {
    case State::kAwaitSizes: {
      util::BitReader reader(message);
      peer_size_ = reader.read_gamma64();
      const std::uint64_t m = input_.size() + peer_size_;
      util::Rng stream = shared_.stream("basic-intersection", nonce_, 0);
      hash_ = hashing::PairwiseHash::sample(
          stream, universe_, basic_intersection_range(m, target_failure_));
      state_ = State::kAwaitPeerImage;
      util::BitBuffer msg;
      if (!input_.empty() && peer_size_ != 0) {
        append_fixed_width_image(
            msg, hashed_image(input_, *hash_),
            util::ceil_log2(std::max<std::uint64_t>(hash_->range(), 2)));
      }
      return msg;
    }
    case State::kAwaitPeerImage: {
      if (!input_.empty() && peer_size_ != 0) {
        util::BitReader reader(message);
        const util::Set peer_image = read_fixed_width_image(
            reader,
            util::ceil_log2(std::max<std::uint64_t>(hash_->range(), 2)));
        candidates_ = filter_by_peer_image(input_, *hash_, peer_image);
      }
      state_ = State::kDone;
      return std::nullopt;
    }
    default:
      throw std::logic_error("BasicIntersectionAlice: unexpected message");
  }
}

BasicIntersectionBob::BasicIntersectionBob(sim::SharedRandomness shared,
                                           std::uint64_t nonce,
                                           std::uint64_t universe,
                                           util::Set input,
                                           double target_failure)
    : shared_(shared), nonce_(nonce), universe_(universe),
      input_(std::move(input)), target_failure_(target_failure) {}

std::optional<util::BitBuffer> BasicIntersectionBob::on_message(
    const util::BitBuffer& message) {
  switch (state_) {
    case State::kAwaitSizes: {
      util::BitReader reader(message);
      peer_size_ = reader.read_gamma64();
      const std::uint64_t m = input_.size() + peer_size_;
      util::Rng stream = shared_.stream("basic-intersection", nonce_, 0);
      hash_ = hashing::PairwiseHash::sample(
          stream, universe_, basic_intersection_range(m, target_failure_));
      state_ = State::kAwaitImage;
      util::BitBuffer msg;
      msg.append_gamma64(input_.size());
      return msg;
    }
    case State::kAwaitImage: {
      state_ = State::kDone;
      util::BitBuffer reply;
      if (!input_.empty() && peer_size_ != 0) {
        const unsigned width =
            util::ceil_log2(std::max<std::uint64_t>(hash_->range(), 2));
        util::BitReader reader(message);
        const util::Set peer_image = read_fixed_width_image(reader, width);
        candidates_ = filter_by_peer_image(input_, *hash_, peer_image);
        append_fixed_width_image(reply, hashed_image(input_, *hash_), width);
      }
      return reply;
    }
    default:
      throw std::logic_error("BasicIntersectionBob: unexpected message");
  }
}

}  // namespace setint::core
