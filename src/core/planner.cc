#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "util/iterated_log.h"

namespace setint::core {

namespace {

void validate(const PlannerQuery& query) {
  if (query.universe == 0 || query.k == 0) {
    throw std::invalid_argument("planner: universe and k must be positive");
  }
}

double log2_clamped(double v) { return std::log2(std::max(2.0, v)); }

}  // namespace

double estimate_bits(PlanKind kind, const PlannerQuery& query, int rounds_r) {
  validate(query);
  const double k = static_cast<double>(query.k);
  const double n = static_cast<double>(query.universe);
  // Calibrated against EXPERIMENTS.md at 50% overlap; validated to within
  // a factor of two by tests/planner_test.cc.
  switch (kind) {
    case PlanKind::kDeterministicExchange: {
      // Rice-coded set one way plus the (~half-size) intersection reply.
      const double per = std::max(1.0, std::log2(n / k));
      return k * (1.5 * per + 4.5);
    }
    case PlanKind::kOneRoundHash: {
      const double width = std::max(16.0, 3.0 * log2_clamped(k));
      return 2.0 * k * width + 16;
    }
    case PlanKind::kToyBuckets: {
      return k * (3.0 * log2_clamped(log2_clamped(k)) + 16.0);
    }
    case PlanKind::kBucketEq: {
      return k * 18.5 + 64;
    }
    case PlanKind::kVerificationTree: {
      if (rounds_r <= 1) {
        return estimate_bits(PlanKind::kOneRoundHash, query, 1);
      }
      const double tower = util::iterated_log(rounds_r, k);
      return k * (4.0 * tower + 5.0 * rounds_r + 10.0);
    }
  }
  throw std::logic_error("planner: unknown kind");
}

double estimate_local_ns(PlanKind kind, const PlannerQuery& query,
                         int rounds_r, simd::Tier tier) {
  validate(query);
  // Per-element throughput constants (ns/element on the reference box,
  // BENCH_cpu.json SIMD lane). Hash lanes default-route to the batched
  // scalar pipeline at EVERY hardware tier — the measured crossover says
  // scalar MULX beats the AVX2 32-bit-limb mulhi emulation (see
  // simd/kernels.cc hash_lane_tier) — so their cost is tier-independent.
  // The intersection oracle genuinely gains on both vector tiers.
  const double hash_ns = 5.0;
  const double isect_ns = tier == simd::Tier::kAvx2  ? 0.6
                          : tier == simd::Tier::kSse41 ? 2.0
                                                       : 3.0;
  const double k = static_cast<double>(query.k);
  switch (kind) {
    case PlanKind::kDeterministicExchange:
      // One adaptive intersection over ~2k elements plus Rice coding.
      return k * (2.0 * isect_ns + 8.0);
    case PlanKind::kOneRoundHash:
      // Both parties hash k elements; verification re-intersects.
      return k * (2.0 * hash_ns + isect_ns + 4.0);
    case PlanKind::kToyBuckets:
      // Two expected verify/re-run sweeps: hashing both sides plus the
      // per-bucket reconcile intersections.
      return k * (4.0 * hash_ns + 2.0 * isect_ns + 8.0);
    case PlanKind::kBucketEq:
      // big_h then h over both inputs (4 hash passes), bucket build, and
      // the amortized-EQ instance stream.
      return k * (4.0 * hash_ns + 24.0);
    case PlanKind::kVerificationTree: {
      if (rounds_r <= 1) {
        return estimate_local_ns(PlanKind::kOneRoundHash, query, 1, tier);
      }
      // Each of the r stages re-hashes the surviving candidates.
      return k * (2.0 * static_cast<double>(rounds_r) * hash_ns + 12.0);
    }
  }
  throw std::logic_error("planner: unknown kind");
}

std::uint64_t estimate_rounds(PlanKind kind, const PlannerQuery& query,
                              int rounds_r) {
  validate(query);
  switch (kind) {
    case PlanKind::kDeterministicExchange:
    case PlanKind::kOneRoundHash:
      return 2;
    case PlanKind::kToyBuckets:
      return 18;  // expected ~2 verify/re-run sweeps of 6 rounds, slack
    case PlanKind::kBucketEq: {
      const auto lg = static_cast<std::uint64_t>(
          log2_clamped(6.0 * static_cast<double>(query.k)));
      return 2 + 5 * lg;
    }
    case PlanKind::kVerificationTree:
      return rounds_r <= 1 ? 2
                           : static_cast<std::uint64_t>(6 * rounds_r);
  }
  throw std::logic_error("planner: unknown kind");
}

std::vector<Plan> enumerate_plans(const PlannerQuery& query) {
  validate(query);
  std::vector<Plan> plans;
  const simd::Tier tier = simd::active_tier();
  auto add = [&](PlanKind kind, int r, std::string description) {
    Plan plan;
    plan.kind = kind;
    plan.rounds_r = r;
    plan.estimated_bits = estimate_bits(kind, query, r);
    plan.estimated_rounds = estimate_rounds(kind, query, r);
    plan.estimated_local_ns = estimate_local_ns(kind, query, r, tier);
    plan.kernel_tier = tier;
    plan.description = std::move(description);
    if (query.round_budget == 0 ||
        plan.estimated_rounds <= query.round_budget) {
      plans.push_back(std::move(plan));
    }
  };
  add(PlanKind::kDeterministicExchange, 0, "deterministic exchange");
  add(PlanKind::kOneRoundHash, 0, "one-round hashing");
  add(PlanKind::kToyBuckets, 0, "bucketed verify/re-run (k loglog k)");
  add(PlanKind::kBucketEq, 0, "bucketed amortized equality (Thm 3.1)");
  const int max_r = std::max(
      2, util::log_star(static_cast<double>(query.k)) + 1);
  for (int r = 2; r <= max_r; ++r) {
    add(PlanKind::kVerificationTree, r,
        "verification tree, r = " + std::to_string(r));
  }
  // Bits first (communication is the paper's currency); ties break toward
  // the plan that is locally cheaper on the dispatched kernel tier.
  std::sort(plans.begin(), plans.end(), [](const Plan& a, const Plan& b) {
    if (a.estimated_bits != b.estimated_bits) {
      return a.estimated_bits < b.estimated_bits;
    }
    return a.estimated_local_ns < b.estimated_local_ns;
  });
  return plans;
}

Plan choose_plan(const PlannerQuery& query) {
  const std::vector<Plan> plans = enumerate_plans(query);
  if (plans.empty()) {
    throw std::invalid_argument("planner: no plan fits the round budget");
  }
  return plans.front();
}

std::unique_ptr<IntersectionProtocol> instantiate(const Plan& plan) {
  switch (plan.kind) {
    case PlanKind::kDeterministicExchange:
      return std::make_unique<DeterministicExchangeProtocol>();
    case PlanKind::kOneRoundHash:
      return std::make_unique<OneRoundHashProtocol>();
    case PlanKind::kToyBuckets:
      return std::make_unique<ToyBucketProtocol>();
    case PlanKind::kBucketEq:
      return std::make_unique<BucketEqProtocol>();
    case PlanKind::kVerificationTree: {
      VerificationTreeParams params;
      params.rounds_r = plan.rounds_r;
      return std::make_unique<VerificationTreeProtocol>(params);
    }
  }
  throw std::logic_error("planner: unknown kind");
}

}  // namespace setint::core
