// Sans-IO protocol engine: resumable state machines over the blocking
// driver-style protocols.
//
// Every core protocol in this repo is a run-to-completion function over a
// synchronous sim::Channel — the right shape for bit-exact accounting,
// the wrong shape for a service multiplexing 10^4-10^6 concurrent
// sessions on a few threads. This engine makes each protocol resumable
// WITHOUT rewriting it: a ProtocolMachine re-enters the blocking function
// repeatedly with a core::Checkpoint whose park-at-boundaries knob is
// armed, so each entry restores the newest phase-boundary snapshot, runs
// exactly one boundary further, saves, and throws CheckpointPark back to
// the engine. The machine owns no sockets and performs no I/O ("sans-IO"):
// it consumes raw bytes (on_bytes) and produces raw bytes to transmit,
// and the caller — runtime/scheduler.h's event loop, or a test harness —
// decides how those bytes move.
//
// Wire model. Per phase boundary the machine emits ONE framed progress
// report (step index, cumulative bits, running transcript digest) and
// then suspends until one complete inbound frame — an ack/credit from the
// service peer — arrives; each complete ack frame advances the machine
// one boundary. A frame is a 4-byte little-endian payload-length header
// followed by the payload. Inbound bytes may be split or merged at ANY
// byte boundary: the FrameAssembler buffers partial frames and the
// machine parks (status kNeedInput, never a throw) until the rest shows
// up — the re-chunking invariance pinned by tests/sansio_test.cc.
//
// Partial-read audit (why the park lives HERE and nowhere deeper): every
// BitReader::expect_at_least call site in the protocol decoders
// (set_util, equality, basic_intersection, join, reconcile, parties,
// one_round_hash) decodes a buffer returned by Channel::send(), which by
// construction is a complete frame — a short read there is corruption,
// and throwing is correct. The ONLY place a legitimately incomplete
// message can exist is this byte-stream boundary, so FrameAssembler is
// the one component that must suspend instead of throw; a truncated
// frame reaching a BitReader would surface as a spurious decode failure
// (and, under a retry layer, a silently burned attempt).
//
// Determinism contract (the differential harness's foundation): a
// machine stepped to completion — under any interleaving with other
// sessions, any ack re-chunking, any park/resume schedule — produces a
// channel whose streaming digest equals the blocking run's transcript
// digest for the same seed, bit for bit. This follows from the
// checkpoint determinism contract (resume replays exactly the remaining
// sends) plus session isolation, and is pinned in tests/sansio_test.cc
// and gated non-zero-exit in bench/exp_service.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "util/set_util.h"

namespace setint::core {

// ---- Framing ----

inline constexpr std::size_t kFrameHeaderBytes = 4;
// Refuse frames claiming more than this many payload bytes: a lying
// header must fail fast instead of making the assembler buffer without
// bound (the byte-stream analogue of BitReader::expect_at_least).
inline constexpr std::uint32_t kMaxFramePayloadBytes = 1u << 20;

enum class FrameKind : std::uint8_t {
  kProgress = 0,  // one phase boundary crossed, session still live
  kDone = 1,      // protocol returned; digest/cost are final
  kFailed = 2,    // protocol threw; ProtocolMachine::error() has details
  kAck = 3,       // peer->machine credit; content otherwise ignored
};

// Payload of every machine-emitted frame: kind byte + step index +
// cumulative channel bits + running transcript digest (25 bytes).
struct ProgressFrame {
  FrameKind kind = FrameKind::kProgress;
  std::uint64_t step = 0;
  std::uint64_t bits_total = 0;
  std::uint64_t digest = 0;
};

// Appends one complete frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out, const ProgressFrame& f);
// An ack/credit frame as the scheduler (or a test peer) sends it.
void append_ack_frame(std::vector<std::uint8_t>& out, std::uint64_t ack_id);
// Decodes a frame payload produced by append_frame; false if malformed.
bool parse_frame_payload(const std::vector<std::uint8_t>& payload,
                         ProgressFrame* out);

// Reassembles complete frames from an arbitrarily chunked byte stream.
class FrameAssembler {
 public:
  void push(const std::uint8_t* data, std::size_t size);

  // Pops the next complete frame's payload into `payload`; returns false
  // when the buffered bytes end mid-header or mid-payload (the caller
  // parks and waits for more). Throws std::length_error on a header
  // declaring more than kMaxFramePayloadBytes.
  bool next(std::vector<std::uint8_t>& payload);

  std::size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

// ---- The machine ----

enum class MachineStatus : std::uint8_t {
  kIdle = 0,       // built, start() not yet called
  kNeedInput = 1,  // parked: waiting for a complete inbound frame
  kDone = 2,       // finished; result/digest/cost are final
  kFailed = 3,     // the protocol threw; error() has the message
};

std::string_view machine_status_name(MachineStatus s);

// What one poke of the machine hands back to the transport: the new
// status plus zero or more complete frames to transmit to the peer.
struct MachineOutput {
  MachineStatus status = MachineStatus::kIdle;
  std::uint32_t frames = 0;  // complete frames appended to `bytes`
  std::vector<std::uint8_t> bytes;
};

class ProtocolMachine {
 public:
  virtual ~ProtocolMachine() = default;

  ProtocolMachine(const ProtocolMachine&) = delete;
  ProtocolMachine& operator=(const ProtocolMachine&) = delete;

  virtual std::string_view kind() const = 0;

  // Runs the session to its first phase boundary (or completion) and
  // returns the first progress frame. Call exactly once, before on_bytes.
  MachineOutput start();

  // Feeds inbound bytes. Complete ack frames advance the machine one
  // boundary each; a trailing partial frame parks it (kNeedInput) until
  // more bytes arrive. Acks arriving after completion are ignored.
  MachineOutput on_bytes(const std::uint8_t* data, std::size_t size);

  MachineStatus status() const { return status_; }
  const std::string& error() const { return error_; }

  // Boundaries crossed (= progress frames emitted), acks consumed, and
  // times a truncated inbound frame left the machine suspended.
  std::uint64_t steps() const { return steps_; }
  std::uint64_t acks() const { return acks_; }
  std::uint64_t frame_parks() const { return frame_parks_; }

  // The session's metered channel (digest-enabled by the engine).
  virtual sim::Channel& channel() = 0;
  const sim::Channel& channel() const {
    return const_cast<ProtocolMachine*>(this)->channel();
  }
  const sim::CostStats& cost() const { return channel().cost(); }
  std::uint64_t digest() const { return channel().digest(); }

  // Order-insensitive hash of the protocol's OUTPUT (candidate sets /
  // verdicts), for differential comparison against a blocking run.
  virtual std::uint64_t result_fingerprint() const = 0;

 protected:
  ProtocolMachine() = default;

  // Advances one phase boundary; returns true when the protocol finished.
  // May throw — the base class converts that into kFailed.
  virtual bool advance() = 0;

 private:
  void step_once(MachineOutput& out);

  FrameAssembler assembler_;
  MachineStatus status_ = MachineStatus::kIdle;
  std::string error_;
  std::uint64_t steps_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t frame_parks_ = 0;
};

// Machine over one bare core protocol: owns the channel and the parking
// checkpoint, and steps by re-entering the blocking protocol function
// with park-at-boundaries armed. The multiparty certified session has
// its own driver-based machine (multiparty/session_machine.h) because
// its retry/degradation ladder lives ABOVE the checkpointed protocol.
class CheckpointedMachine : public ProtocolMachine {
 public:
  sim::Channel& channel() override { return channel_; }
  Checkpoint& checkpoint() { return ckpt_; }

 protected:
  CheckpointedMachine() { channel_.enable_digest(); }

  bool advance() final;
  // One blocking call of the underlying protocol with (channel_, &ckpt_);
  // invoked repeatedly, each entry restoring the parked boundary.
  virtual void run_protocol() = 0;

  sim::Channel channel_;
  Checkpoint ckpt_;
};

// ---- Factory over the four core protocols ----

struct MachineConfig {
  std::uint64_t seed = 1;     // shared-randomness master seed
  std::uint64_t nonce = 0;    // per-session protocol nonce
  std::uint64_t universe = std::uint64_t{1} << 20;
  util::Set s;                // Alice's input (owned by the machine)
  util::Set t;                // Bob's input
  double bi_target_failure = 0.01;      // "bi"
  VerificationTreeParams tree;          // "vt"
  int bucket_eq_strength = 3;           // "bucket_eq"
  std::size_t eq_instances = 0;         // "amortized_eq"; 0 = max(|s|, 4)
};

// Kinds: "bi" (Basic-Intersection), "vt" (verification tree),
// "bucket_eq" (Theorem 3.1), "amortized_eq" (EQ^k merge tree). Throws
// std::invalid_argument on anything else.
std::unique_ptr<ProtocolMachine> make_machine(std::string_view kind,
                                              MachineConfig cfg);

inline constexpr std::string_view kMachineKinds[] = {"bi", "vt", "bucket_eq",
                                                     "amortized_eq"};

// Deterministic EQ^k instance generator shared by the "amortized_eq"
// machine and its blocking reference runs: `count` (x, y) buffer pairs,
// roughly half equal, fully determined by (seed, count).
void make_amortized_eq_inputs(std::uint64_t seed, std::size_t count,
                              std::vector<util::BitBuffer>* xs,
                              std::vector<util::BitBuffer>* ys);

// Fingerprint helpers (order-sensitive over sorted sets, so equal outputs
// hash equal) used by machines and the differential tests.
std::uint64_t fingerprint_set(std::uint64_t h, util::SetView s);
std::uint64_t fingerprint_bools(std::uint64_t h, const std::vector<bool>& v);

}  // namespace setint::core
