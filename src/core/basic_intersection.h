// Basic-Intersection (Lemma 3.3) — the hash-exchange building block.
//
// On subsets S, T of [universe), the parties exchange sizes, agree on a
// shared pairwise hash h: [universe) -> [t] with t sized for the requested
// failure probability, exchange h(S) and h(T), and output
//   S' = h^-1(h(T)) cap S      (Alice),
//   T' = h^-1(h(S)) cap T      (Bob).
// Guarantees (Lemma 3.3): S' <= S, T' <= T; if S cap T is empty then
// S' cap T' is empty with probability 1; always S cap T <= S' cap T'; and
// with probability >= 1 - target_failure, S' = T' = S cap T. Corollary 3.4:
// S' == T' implies both equal S cap T — the invariant the verification
// tree's equality tests exploit.
//
// Four rounds: sizes A->B, B->A; hashed sets A->B, B->A. The batched form
// runs many leaf instances in the same four rounds, which is what keeps a
// verification-tree stage at six rounds total.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::core {

struct CandidatePair {
  util::Set s_candidate;  // Alice's S'
  util::Set t_candidate;  // Bob's T'
};

// Single instance. `nonce` keys the shared hash; re-runs must use fresh
// nonces. target_failure in (0, 1). With a Checkpoint installed the
// protocol snapshots after each delivered round pair (tag "bi": phase 1 =
// sizes exchanged, phase 2 = Alice's images exchanged) and resumes from
// there after a crash, replaying only the undelivered messages.
CandidatePair basic_intersection(sim::Channel& channel,
                                 const sim::SharedRandomness& shared,
                                 std::uint64_t nonce, std::uint64_t universe,
                                 util::SetView s, util::SetView t,
                                 double target_failure,
                                 Checkpoint* ckpt = nullptr);

// Deterministic hash-range derivation from the exchanged sizes; shared by
// the driver implementation and the separated-party endpoints
// (core/parties.h) so their transcripts match bit-for-bit.
std::uint64_t basic_intersection_range(std::uint64_t total_size,
                                       double target_failure);

// Batched: instance j intersects pairs[j].first (Alice side) with
// pairs[j].second (Bob side); all instances share the four rounds.
std::vector<CandidatePair> basic_intersection_batch(
    sim::Channel& channel, const sim::SharedRandomness& shared,
    std::uint64_t nonce, std::uint64_t universe,
    std::span<const std::pair<util::SetView, util::SetView>> pairs,
    double target_failure, Checkpoint* ckpt = nullptr);

}  // namespace setint::core
