// Resource-bounded execution: the defense that turns a Byzantine peer's
// resource-exhaustion attacks into ordinary recoverable failures.
//
// The stochastic fault layer (sim/fault.h) assumes the *peer* is honest
// and only the link is hostile. A Byzantine peer (sim/adversary.h) can
// instead emit arbitrarily large frames, inflated length prefixes, or
// message streams that never terminate the protocol. ResourceLimits is
// the honest side's budget: per-message and per-run caps enforced by
// sim::Channel at delivery time and by util::BitReader during decoding.
// A breached cap throws ResourceLimitError, which the retry layer
// (core/retry.h, multiparty/coordinator.cc) treats exactly like a decode
// failure — retry with fresh randomness, then degrade honestly — so an
// attacker can waste the budget but can never crash, hang, or exhaust
// the memory of an honest party. See docs/ROBUSTNESS.md ("Threat model").
//
// This header is a dependency leaf (std only): util and sim both consume
// it without layering cycles.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace setint::core {

// All caps use 0 = unlimited. A default-constructed value disables every
// check, and disabled limits are free: the enforcement sites test one
// branch and touch no protocol bits, so zero-fault runs are bit-for-bit
// identical with or without a limits object installed (pinned by
// tests/adversary_test.cc and the BENCH_tradeoff determinism contract).
struct ResourceLimits {
  // Largest single frame the honest side will accept for decoding.
  std::uint64_t max_message_bits = 0;
  // Total bits metered on one channel across the whole run, retries and
  // degraded attempts included.
  std::uint64_t max_total_bits = 0;
  // Total rounds on one channel, including injected delay and backoff.
  std::uint64_t max_rounds = 0;
  // Items (set elements, hashed-image entries, positions) one decoder
  // invocation may materialize — the cap a lying length prefix hits.
  std::uint64_t max_decoded_items = 0;

  bool enabled() const {
    return max_message_bits > 0 || max_total_bits > 0 || max_rounds > 0 ||
           max_decoded_items > 0;
  }

  // A permissive-but-finite profile sized for sets of <= k elements over
  // [0, universe): generous constant factors over the honest protocol's
  // worst case, so legitimate runs never trip while crafted frames do.
  static ResourceLimits for_workload(std::uint64_t universe, std::uint64_t k);
};

// A resource cap was breached. Derives from std::runtime_error so the
// existing catch-retry-degrade path handles it without special cases;
// `what()` names the breached limit (e.g. "max_decoded_items").
struct ResourceLimitError : std::runtime_error {
  explicit ResourceLimitError(const std::string& message)
      : std::runtime_error("resource limit: " + message) {}
};

inline ResourceLimits ResourceLimits::for_workload(std::uint64_t universe,
                                                   std::uint64_t k) {
  // Honest frames carry at most ~k elements at ~2*log2(universe)+3 bits
  // each plus framing; log2(universe) <= 64 always.
  if (k < 2) k = 2;
  unsigned log_u = 1;
  while ((std::uint64_t{1} << log_u) < universe && log_u < 63) ++log_u;
  ResourceLimits limits;
  limits.max_message_bits = 64 * k * (2 * log_u + 16);
  limits.max_total_bits = 4096 * k * (2 * log_u + 16);
  limits.max_rounds = 1024 + 64 * k;
  limits.max_decoded_items = 64 * k;
  return limits;
}

}  // namespace setint::core
