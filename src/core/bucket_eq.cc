#include "core/bucket_eq.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eq/amortized_eq.h"
#include "hashing/pairwise.h"
#include "obs/tracer.h"
#include "util/bitio.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint::core {

IntersectionOutput bucket_eq_intersection(sim::Channel& channel,
                                          const sim::SharedRandomness& shared,
                                          std::uint64_t nonce,
                                          std::uint64_t universe,
                                          util::SetView s, util::SetView t,
                                          int strength,
                                          BucketEqStats* stats) {
  validate_instance(universe, s, t);
  if (strength < 3) throw std::invalid_argument("bucket_eq: strength < 3");
  const std::uint64_t k = std::max<std::uint64_t>({s.size(), t.size(), 2});
  const double nd = std::pow(static_cast<double>(k),
                             static_cast<double>(strength));
  if (nd > 0x1p62) throw std::invalid_argument("bucket_eq: range overflow");
  // Floor of 2^16 keeps tiny-k instances reliable at negligible cost.
  const std::uint64_t big_n =
      std::max<std::uint64_t>(1u << 16, static_cast<std::uint64_t>(nd));

  util::Rng hstream = shared.stream("bucket-eq-H", nonce);
  const auto big_h = hashing::PairwiseHash::sample(hstream, universe, big_n);
  util::Rng bstream = shared.stream("bucket-eq-h", nonce);
  const auto h = hashing::PairwiseHash::sample(bstream, big_n, k);

  // Per-bucket element lists (already sorted since inputs are sorted and we
  // keep insertion order per bucket; order only needs to be deterministic).
  std::vector<std::vector<std::uint64_t>> s_buckets(k);
  std::vector<std::vector<std::uint64_t>> t_buckets(k);
  for (std::uint64_t x : s) s_buckets[h(big_h(x))].push_back(x);
  for (std::uint64_t y : t) t_buckets[h(big_h(y))].push_back(y);

  obs::Tracer* tracer = channel.tracer();
  obs::Span protocol_span(tracer, "bucket_eq");
  if (tracer != nullptr) {
    for (std::size_t i = 0; i < k; ++i) {
      obs::observe(tracer, "bucket_eq.bucket_size",
                   s_buckets[i].size() + t_buckets[i].size());
    }
  }

  // Rounds 1-2: bucket-size vectors (sum <= k, so gamma coding is O(k)).
  util::BitBuffer a_sz;
  util::BitBuffer b_sz;
  {
    obs::Span size_span(tracer, "size_exchange");
    util::BitBuffer a_sizes;
    for (const auto& b : s_buckets) a_sizes.append_gamma64(b.size());
    a_sz = channel.send(sim::PartyId::kAlice, std::move(a_sizes),
                        "bucket-sizes-a");
    util::BitBuffer b_sizes;
    for (const auto& b : t_buckets) b_sizes.append_gamma64(b.size());
    b_sz = channel.send(sim::PartyId::kBob, std::move(b_sizes),
                        "bucket-sizes-b");
  }

  util::BitReader ra = channel.reader(a_sz);
  util::BitReader rb = channel.reader(b_sz);
  const unsigned element_bits = util::ceil_log2(big_n);

  // The instance collection E: per bucket, all (a-th of S_i, b-th of T_i)
  // pairs in lexicographic order — an ordering both parties derive from
  // the size vectors alone.
  struct InstanceRef {
    std::size_t bucket;
    std::size_t a_index;
    std::size_t b_index;
  };
  std::vector<InstanceRef> refs;
  std::vector<util::BitBuffer> xs;
  std::vector<util::BitBuffer> ys;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t na = ra.read_gamma64();
    const std::uint64_t nb = rb.read_gamma64();
    if (na != s_buckets[i].size() || nb != t_buckets[i].size()) {
      throw std::logic_error("bucket_eq: size vector mismatch");
    }
    for (std::size_t a = 0; a < na; ++a) {
      for (std::size_t b = 0; b < nb; ++b) {
        refs.push_back(InstanceRef{i, a, b});
        util::BitBuffer xa;
        xa.append_bits(big_h(s_buckets[i][a]), element_bits);
        xs.push_back(std::move(xa));
        util::BitBuffer yb;
        yb.append_bits(big_h(t_buckets[i][b]), element_bits);
        ys.push_back(std::move(yb));
      }
    }
  }

  obs::count(tracer, "bucket_eq.instances", refs.size());
  eq::AmortizedEqStats eq_stats;
  const std::vector<bool> equal = eq::amortized_equality(
      channel, shared, util::mix64(nonce, 0xBEEF), xs, ys, &eq_stats);

  IntersectionOutput out;
  for (std::size_t j = 0; j < refs.size(); ++j) {
    if (!equal[j]) continue;
    out.alice.push_back(s_buckets[refs[j].bucket][refs[j].a_index]);
    out.bob.push_back(t_buckets[refs[j].bucket][refs[j].b_index]);
  }
  std::sort(out.alice.begin(), out.alice.end());
  out.alice.erase(std::unique(out.alice.begin(), out.alice.end()),
                  out.alice.end());
  std::sort(out.bob.begin(), out.bob.end());
  out.bob.erase(std::unique(out.bob.begin(), out.bob.end()), out.bob.end());

  if (stats != nullptr) {
    stats->instances = refs.size();
    stats->levels = eq_stats.levels;
  }
  return out;
}

RunResult BucketEqProtocol::run(std::uint64_t seed, std::uint64_t universe,
                                util::SetView s, util::SetView t) const {
  sim::Channel channel;
  sim::SharedRandomness shared(seed);
  RunResult r;
  r.output = bucket_eq_intersection(channel, shared, /*nonce=*/0, universe, s,
                                    t, strength_);
  r.cost = channel.cost();
  return r;
}

}  // namespace setint::core
