#include "core/bucket_eq.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eq/amortized_eq.h"
#include "hashing/pairwise.h"
#include "obs/tracer.h"
#include "simd/kernels.h"
#include "util/arena.h"
#include "util/bitio.h"
#include "util/flat_buckets.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint::core {

IntersectionOutput bucket_eq_intersection(sim::Channel& channel,
                                          const sim::SharedRandomness& shared,
                                          std::uint64_t nonce,
                                          std::uint64_t universe,
                                          util::SetView s, util::SetView t,
                                          int strength,
                                          BucketEqStats* stats,
                                          Checkpoint* ckpt) {
  validate_instance(universe, s, t);
  if (strength < 3) throw std::invalid_argument("bucket_eq: strength < 3");
  const std::uint64_t k = std::max<std::uint64_t>({s.size(), t.size(), 2});
  const double nd = std::pow(static_cast<double>(k),
                             static_cast<double>(strength));
  if (nd > 0x1p62) throw std::invalid_argument("bucket_eq: range overflow");
  // Floor of 2^16 keeps tiny-k instances reliable at negligible cost.
  const std::uint64_t big_n =
      std::max<std::uint64_t>(1u << 16, static_cast<std::uint64_t>(nd));

  util::Rng hstream = shared.stream("bucket-eq-H", nonce);
  const auto big_h = hashing::PairwiseHash::sample(hstream, universe, big_n);
  util::Rng bstream = shared.stream("bucket-eq-h", nonce);
  const auto h = hashing::PairwiseHash::sample(bstream, big_n, k);

  // Batched bucketing: hash every element through big_h then h in two
  // array passes (division-free hash_many), then group by counting sort
  // into CSR bucket tables. Counting sort is stable, so each bucket holds
  // its elements in input order — exactly the per-bucket order the old
  // push_back loop produced, keeping the transcript bit-identical.
  util::ScratchArena::Frame scratch_frame(channel.scratch());
  util::ScratchArena& arena = channel.scratch();
  const std::span<std::uint64_t> big_s = arena.alloc_u64(s.size());
  const std::span<std::uint64_t> big_t = arena.alloc_u64(t.size());
  big_h.hash_many(s, big_s);
  big_h.hash_many(t, big_t);
  const std::span<std::uint64_t> keys_s = arena.alloc_u64(s.size());
  const std::span<std::uint64_t> keys_t = arena.alloc_u64(t.size());
  h.hash_many(big_s, keys_s);
  h.hash_many(big_t, keys_t);
  // Buckets hold indices into s/t so both the original element and its
  // big_h image stay one lookup away.
  const util::FlatBuckets sb = util::build_flat_buckets(keys_s, k, arena);
  const util::FlatBuckets tb = util::build_flat_buckets(keys_t, k, arena);

  obs::Tracer* tracer = channel.tracer();
  obs::Span protocol_span(tracer, "bucket_eq");
  if (tracer != nullptr) {
    for (std::size_t i = 0; i < k; ++i) {
      obs::observe(tracer, "bucket_eq.bucket_size",
                   sb.bucket_size(i) + tb.bucket_size(i));
    }
  }

  // Crash resume: with either snapshot present the size vectors were
  // already delivered in the interrupted run, so they are not re-sent —
  // the bucket tables above were just recomputed locally from the inputs,
  // and the amortized-equality stage resumes from its own snapshot.
  const bool sizes_done =
      ckpt != nullptr && (ckpt->has("bucket_eq") || ckpt->has("amortized_eq"));

  // Rounds 1-2: bucket-size vectors (sum <= k, so gamma coding is O(k)).
  util::BitBuffer a_sz;
  util::BitBuffer b_sz;
  if (!sizes_done) {
    obs::Span size_span(tracer, "size_exchange");
    util::BitBuffer a_sizes;
    for (std::size_t i = 0; i < k; ++i) a_sizes.append_gamma64(sb.bucket_size(i));
    a_sz = channel.send(sim::PartyId::kAlice, std::move(a_sizes),
                        "bucket-sizes-a");
    util::BitBuffer b_sizes;
    for (std::size_t i = 0; i < k; ++i) b_sizes.append_gamma64(tb.bucket_size(i));
    b_sz = channel.send(sim::PartyId::kBob, std::move(b_sizes),
                        "bucket-sizes-b");
    if (ckpt != nullptr) {
      // The blob is empty: both parties rebuild the instance collection
      // from their inputs and the (already agreed) size vectors.
      ckpt->save("bucket_eq", 1, util::BitBuffer{}, channel.cost().bits_total);
    }
  } else {
    // Rebuild the delivered size vectors locally; the driver sees both
    // sides, and a successful framed delivery means they arrived intact.
    for (std::size_t i = 0; i < k; ++i) a_sz.append_gamma64(sb.bucket_size(i));
    for (std::size_t i = 0; i < k; ++i) b_sz.append_gamma64(tb.bucket_size(i));
    if (ckpt->has("bucket_eq")) ckpt->note_restore();
  }

  util::BitReader ra = channel.reader(a_sz);
  util::BitReader rb = channel.reader(b_sz);
  const unsigned element_bits = util::ceil_log2(big_n);

  // The instance collection E: per bucket, all (a-th of S_i, b-th of T_i)
  // pairs in lexicographic order — an ordering both parties derive from
  // the size vectors alone.
  struct InstanceRef {
    std::size_t bucket;
    std::size_t a_index;
    std::size_t b_index;
  };
  std::vector<InstanceRef> refs;
  std::vector<util::BitBuffer> xs;
  std::vector<util::BitBuffer> ys;
  // Joint membership via the occupancy bitmaps: one vectorized AND +
  // popcount tells how many buckets are populated on BOTH sides — only
  // those can spawn EQ instances, so the expansion loop skips the rest
  // after the (transcript-mandated) size-vector reads.
  const std::uint64_t joint =
      simd::bitmap_and_count(sb.occupancy, tb.occupancy);
  obs::count(tracer, "bucket_eq.joint_buckets", joint);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t na = ra.read_gamma64();
    const std::uint64_t nb = rb.read_gamma64();
    if (na != sb.bucket_size(i) || nb != tb.bucket_size(i)) {
      throw std::logic_error("bucket_eq: size vector mismatch");
    }
    if (!sb.occupied(i) || !tb.occupied(i)) continue;
    const std::span<const std::uint64_t> si = sb.bucket(i);
    const std::span<const std::uint64_t> ti = tb.bucket(i);
    for (std::size_t a = 0; a < na; ++a) {
      for (std::size_t b = 0; b < nb; ++b) {
        refs.push_back(InstanceRef{i, a, b});
        util::BitBuffer xa;
        xa.append_bits(big_s[si[a]], element_bits);
        xs.push_back(std::move(xa));
        util::BitBuffer yb;
        yb.append_bits(big_t[ti[b]], element_bits);
        ys.push_back(std::move(yb));
      }
    }
  }

  obs::count(tracer, "bucket_eq.instances", refs.size());
  eq::AmortizedEqStats eq_stats;
  const std::vector<bool> equal = eq::amortized_equality(
      channel, shared, util::mix64(nonce, 0xBEEF), xs, ys, &eq_stats, ckpt);

  IntersectionOutput out;
  for (std::size_t j = 0; j < refs.size(); ++j) {
    if (!equal[j]) continue;
    out.alice.push_back(s[sb.bucket(refs[j].bucket)[refs[j].a_index]]);
    out.bob.push_back(t[tb.bucket(refs[j].bucket)[refs[j].b_index]]);
  }
  std::sort(out.alice.begin(), out.alice.end());
  out.alice.erase(std::unique(out.alice.begin(), out.alice.end()),
                  out.alice.end());
  std::sort(out.bob.begin(), out.bob.end());
  out.bob.erase(std::unique(out.bob.begin(), out.bob.end()), out.bob.end());

  if (stats != nullptr) {
    stats->instances = refs.size();
    stats->levels = eq_stats.levels;
  }
  return out;
}

RunResult BucketEqProtocol::run(std::uint64_t seed, std::uint64_t universe,
                                util::SetView s, util::SetView t) const {
  sim::Channel channel;
  sim::SharedRandomness shared(seed);
  RunResult r;
  r.output = bucket_eq_intersection(channel, shared, /*nonce=*/0, universe, s,
                                    t, strength_);
  r.cost = channel.cost();
  return r;
}

}  // namespace setint::core
