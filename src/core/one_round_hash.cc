#include "core/one_round_hash.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hashing/pairwise.h"
#include "obs/tracer.h"
#include "util/arena.h"
#include "util/bitio.h"
#include "util/iterated_log.h"

namespace setint::core {

IntersectionOutput one_round_hash(sim::Channel& channel,
                                  const sim::SharedRandomness& shared,
                                  std::uint64_t nonce, std::uint64_t universe,
                                  util::SetView s, util::SetView t,
                                  int strength) {
  validate_instance(universe, s, t);
  if (strength < 3) throw std::invalid_argument("one_round_hash: strength < 3");
  const std::uint64_t k = std::max<std::uint64_t>({s.size(), t.size(), 2});
  const double range = std::pow(static_cast<double>(k),
                                static_cast<double>(strength));
  if (range > 0x1p62) throw std::invalid_argument("one_round_hash: range overflow");
  // Floor of 2^16 keeps tiny-k instances reliable at negligible cost.
  const std::uint64_t big_n =
      std::max<std::uint64_t>(1u << 16, static_cast<std::uint64_t>(range));

  util::Rng stream = shared.stream("one-round-hash", nonce);
  const auto h = hashing::PairwiseHash::sample(stream, universe, big_n);

  // Each side hashes its set once in a batched pass; the raw value array
  // is reused for the final membership filter, the sorted-unique copy
  // becomes the transmitted image. All scratch lives in the session arena.
  util::ScratchArena::Frame scratch_frame(channel.scratch());
  util::ScratchArena& arena = channel.scratch();
  const std::span<std::uint64_t> s_vals = arena.alloc_u64(s.size());
  const std::span<std::uint64_t> t_vals = arena.alloc_u64(t.size());
  h.hash_many(s, s_vals);
  h.hash_many(t, t_vals);
  auto image_of = [&arena](std::span<const std::uint64_t> vals) {
    const std::span<std::uint64_t> image = arena.alloc_u64(vals.size());
    std::copy(vals.begin(), vals.end(), image.begin());
    std::sort(image.begin(), image.end());
    const auto last = std::unique(image.begin(), image.end());
    return std::span<const std::uint64_t>(
        image.data(), static_cast<std::size_t>(last - image.begin()));
  };

  // Fixed-width hashed values — the paper's "c k log k bits" accounting.
  const unsigned width = util::ceil_log2(big_n);
  const auto append_image = [width](util::BitBuffer& out,
                                    std::span<const std::uint64_t> image) {
    out.append_gamma64(image.size());
    for (std::uint64_t v : image) out.append_bits(v, width);
  };
  const auto read_image = [width](util::BitReader& in) {
    const std::uint64_t count = in.read_gamma64();
    in.expect_at_least(count, width, "image count");
    util::Set image(count);
    for (auto& v : image) v = in.read_bits(width);
    if (!util::is_canonical_set(image)) {
      throw std::invalid_argument(
          "decode: hashed image not strictly increasing (field 'image')");
    }
    return image;
  };

  obs::Span protocol_span(channel.tracer(), "one_round_hash");
  obs::Span exchange_span(channel.tracer(), "hash_exchange");

  const std::span<const std::uint64_t> a_image = image_of(s_vals);
  util::BitBuffer a_msg;
  append_image(a_msg, a_image);
  const util::BitBuffer a_delivered =
      channel.send(sim::PartyId::kAlice, std::move(a_msg), "hash-image-a");

  const std::span<const std::uint64_t> b_image = image_of(t_vals);
  util::BitBuffer b_msg;
  append_image(b_msg, b_image);
  const util::BitBuffer b_delivered =
      channel.send(sim::PartyId::kBob, std::move(b_msg), "hash-image-b");

  util::BitReader ra = channel.reader(a_delivered);
  util::BitReader rb = channel.reader(b_delivered);
  const util::Set peer_for_bob = read_image(ra);
  const util::Set peer_for_alice = read_image(rb);

  IntersectionOutput out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (util::set_contains(peer_for_alice, s_vals[i])) out.alice.push_back(s[i]);
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (util::set_contains(peer_for_bob, t_vals[i])) out.bob.push_back(t[i]);
  }
  return out;
}

RunResult OneRoundHashProtocol::run(std::uint64_t seed, std::uint64_t universe,
                                    util::SetView s, util::SetView t) const {
  sim::Channel channel;
  sim::SharedRandomness shared(seed);
  RunResult r;
  r.output = one_round_hash(channel, shared, /*nonce=*/0, universe, s, t,
                            strength_);
  r.cost = channel.cost();
  return r;
}

}  // namespace setint::core
