#include "core/engine.h"

#include <cstring>
#include <stdexcept>

#include "core/basic_intersection.h"
#include "core/bucket_eq.h"
#include "eq/amortized_eq.h"
#include "sim/randomness.h"
#include "util/rng.h"

namespace setint::core {

namespace {

constexpr std::size_t kFramePayloadBytes = 1 + 3 * 8;  // kind + 3 x u64

void append_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t read_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, const ProgressFrame& f) {
  append_u32_le(out, static_cast<std::uint32_t>(kFramePayloadBytes));
  out.push_back(static_cast<std::uint8_t>(f.kind));
  append_u64_le(out, f.step);
  append_u64_le(out, f.bits_total);
  append_u64_le(out, f.digest);
}

void append_ack_frame(std::vector<std::uint8_t>& out, std::uint64_t ack_id) {
  ProgressFrame f;
  f.kind = FrameKind::kAck;
  f.step = ack_id;
  append_frame(out, f);
}

bool parse_frame_payload(const std::vector<std::uint8_t>& payload,
                         ProgressFrame* out) {
  if (payload.size() != kFramePayloadBytes) return false;
  if (payload[0] > static_cast<std::uint8_t>(FrameKind::kAck)) return false;
  out->kind = static_cast<FrameKind>(payload[0]);
  out->step = read_u64_le(payload.data() + 1);
  out->bits_total = read_u64_le(payload.data() + 9);
  out->digest = read_u64_le(payload.data() + 17);
  return true;
}

void FrameAssembler::push(const std::uint8_t* data, std::size_t size) {
  // Compact lazily: once everything buffered has been consumed the vector
  // can restart from zero instead of growing for the session's lifetime.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

bool FrameAssembler::next(std::vector<std::uint8_t>& payload) {
  if (pending_bytes() < kFrameHeaderBytes) return false;
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    len |= std::uint32_t{buf_[pos_ + i]} << (8 * i);
  }
  if (len > kMaxFramePayloadBytes) {
    throw std::length_error("frame header declares " + std::to_string(len) +
                            " payload bytes, cap is " +
                            std::to_string(kMaxFramePayloadBytes));
  }
  if (pending_bytes() < kFrameHeaderBytes + len) return false;
  payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderBytes),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderBytes + len));
  pos_ += kFrameHeaderBytes + len;
  return true;
}

std::string_view machine_status_name(MachineStatus s) {
  switch (s) {
    case MachineStatus::kIdle: return "idle";
    case MachineStatus::kNeedInput: return "need_input";
    case MachineStatus::kDone: return "done";
    case MachineStatus::kFailed: return "failed";
  }
  return "?";
}

MachineOutput ProtocolMachine::start() {
  MachineOutput out;
  if (status_ != MachineStatus::kIdle) {
    throw std::logic_error("ProtocolMachine::start called twice");
  }
  step_once(out);
  out.status = status_;
  return out;
}

MachineOutput ProtocolMachine::on_bytes(const std::uint8_t* data,
                                        std::size_t size) {
  if (status_ == MachineStatus::kIdle) {
    throw std::logic_error("ProtocolMachine::on_bytes before start");
  }
  MachineOutput out;
  assembler_.push(data, size);
  try {
    std::vector<std::uint8_t> payload;
    while (status_ == MachineStatus::kNeedInput && assembler_.next(payload)) {
      acks_ += 1;
      step_once(out);
    }
    // A finished (or failed) machine drains stale acks without reacting.
    if (status_ != MachineStatus::kNeedInput) {
      while (assembler_.next(payload)) {
      }
    } else if (assembler_.pending_bytes() > 0) {
      // Truncated frame: suspend — never throw, never hand a partial frame
      // to a decoder (see the partial-read audit in the header).
      frame_parks_ += 1;
    }
  } catch (const std::length_error& e) {
    // A lying length header is not a partial frame — the stream is
    // unrecoverable. Fail the session (with a frame telling the peer so)
    // instead of letting the throw escape the event loop.
    status_ = MachineStatus::kFailed;
    error_ = e.what();
    ProgressFrame f;
    f.kind = FrameKind::kFailed;
    f.step = steps_;
    f.bits_total = cost().bits_total;
    f.digest = digest();
    append_frame(out.bytes, f);
    out.frames += 1;
  }
  out.status = status_;
  return out;
}

void ProtocolMachine::step_once(MachineOutput& out) {
  ProgressFrame f;
  try {
    const bool finished = advance();
    status_ = finished ? MachineStatus::kDone : MachineStatus::kNeedInput;
    f.kind = finished ? FrameKind::kDone : FrameKind::kProgress;
  } catch (const std::exception& e) {
    status_ = MachineStatus::kFailed;
    error_ = e.what();
    f.kind = FrameKind::kFailed;
  }
  steps_ += 1;
  f.step = steps_;
  f.bits_total = cost().bits_total;
  f.digest = digest();
  append_frame(out.bytes, f);
  out.frames += 1;
}

bool CheckpointedMachine::advance() {
  ckpt_.set_park_at_boundaries(true);
  bool finished = false;
  try {
    run_protocol();
    finished = true;
  } catch (const CheckpointPark&) {
    // Parked exactly on a phase boundary; the snapshot is stored and the
    // next advance() re-enters the protocol to restore it.
  } catch (...) {
    ckpt_.set_park_at_boundaries(false);
    throw;
  }
  ckpt_.set_park_at_boundaries(false);
  return finished;
}

std::uint64_t fingerprint_set(std::uint64_t h, util::SetView s) {
  h = util::mix64(h, s.size());
  for (const std::uint64_t v : s) h = util::mix64(h, v);
  return h;
}

std::uint64_t fingerprint_bools(std::uint64_t h, const std::vector<bool>& v) {
  h = util::mix64(h, v.size());
  for (const bool b : v) h = util::mix64(h, b ? 0x0b : 0xa0);
  return h;
}

void make_amortized_eq_inputs(std::uint64_t seed, std::size_t count,
                              std::vector<util::BitBuffer>* xs,
                              std::vector<util::BitBuffer>* ys) {
  util::Rng rng(util::mix64(seed, 0xEDE0));
  xs->assign(count, {});
  ys->assign(count, {});
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned bits = 8 + static_cast<unsigned>(rng.below(57));
    const std::uint64_t word =
        rng.next() & (bits == 64 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << bits) - 1));
    (*xs)[i].append_bits(word, bits);
    if (rng.below(2) == 0) {
      (*ys)[i] = (*xs)[i];
    } else {
      const std::uint64_t flip = std::uint64_t{1} << rng.below(bits);
      (*ys)[i].append_bits(word ^ flip, bits);
    }
  }
}

namespace {

class BasicIntersectionMachine final : public CheckpointedMachine {
 public:
  explicit BasicIntersectionMachine(MachineConfig cfg)
      : cfg_(std::move(cfg)), shared_(cfg_.seed) {}
  std::string_view kind() const override { return "bi"; }
  std::uint64_t result_fingerprint() const override {
    return fingerprint_set(fingerprint_set(0xB1, result_.s_candidate),
                           result_.t_candidate);
  }

 protected:
  void run_protocol() override {
    result_ = basic_intersection(channel_, shared_, cfg_.nonce, cfg_.universe,
                                 cfg_.s, cfg_.t, cfg_.bi_target_failure,
                                 &ckpt_);
  }

 private:
  MachineConfig cfg_;
  sim::SharedRandomness shared_;
  CandidatePair result_;
};

class VerificationTreeMachine final : public CheckpointedMachine {
 public:
  explicit VerificationTreeMachine(MachineConfig cfg)
      : cfg_(std::move(cfg)), shared_(cfg_.seed) {}
  std::string_view kind() const override { return "vt"; }
  std::uint64_t result_fingerprint() const override {
    return fingerprint_set(fingerprint_set(0x57, result_.alice), result_.bob);
  }

 protected:
  void run_protocol() override {
    result_ = verification_tree_intersection(channel_, shared_, cfg_.nonce,
                                             cfg_.universe, cfg_.s, cfg_.t,
                                             cfg_.tree, /*diag=*/nullptr,
                                             &ckpt_);
  }

 private:
  MachineConfig cfg_;
  sim::SharedRandomness shared_;
  IntersectionOutput result_;
};

class BucketEqMachine final : public CheckpointedMachine {
 public:
  explicit BucketEqMachine(MachineConfig cfg)
      : cfg_(std::move(cfg)), shared_(cfg_.seed) {}
  std::string_view kind() const override { return "bucket_eq"; }
  std::uint64_t result_fingerprint() const override {
    return fingerprint_set(fingerprint_set(0xB7, result_.alice), result_.bob);
  }

 protected:
  void run_protocol() override {
    result_ = bucket_eq_intersection(channel_, shared_, cfg_.nonce,
                                     cfg_.universe, cfg_.s, cfg_.t,
                                     cfg_.bucket_eq_strength,
                                     /*stats=*/nullptr, &ckpt_);
  }

 private:
  MachineConfig cfg_;
  sim::SharedRandomness shared_;
  IntersectionOutput result_;
};

class AmortizedEqMachine final : public CheckpointedMachine {
 public:
  explicit AmortizedEqMachine(MachineConfig cfg)
      : cfg_(std::move(cfg)), shared_(cfg_.seed) {
    const std::size_t count = cfg_.eq_instances != 0
                                  ? cfg_.eq_instances
                                  : std::max<std::size_t>(cfg_.s.size(), 4);
    make_amortized_eq_inputs(cfg_.seed, count, &xs_, &ys_);
  }
  std::string_view kind() const override { return "amortized_eq"; }
  std::uint64_t result_fingerprint() const override {
    return fingerprint_bools(0xE9, result_);
  }

 protected:
  void run_protocol() override {
    result_ = eq::amortized_equality(channel_, shared_, cfg_.nonce, xs_, ys_,
                                     /*stats=*/nullptr, &ckpt_);
  }

 private:
  MachineConfig cfg_;
  sim::SharedRandomness shared_;
  std::vector<util::BitBuffer> xs_, ys_;
  std::vector<bool> result_;
};

}  // namespace

std::unique_ptr<ProtocolMachine> make_machine(std::string_view kind,
                                              MachineConfig cfg) {
  if (kind == "bi") {
    return std::make_unique<BasicIntersectionMachine>(std::move(cfg));
  }
  if (kind == "vt") {
    return std::make_unique<VerificationTreeMachine>(std::move(cfg));
  }
  if (kind == "bucket_eq") {
    return std::make_unique<BucketEqMachine>(std::move(cfg));
  }
  if (kind == "amortized_eq") {
    return std::make_unique<AmortizedEqMachine>(std::move(cfg));
  }
  throw std::invalid_argument("make_machine: unknown kind '" +
                              std::string(kind) + "'");
}

}  // namespace setint::core
