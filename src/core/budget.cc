#include "core/budget.h"

#include <algorithm>
#include <cmath>

#include "sim/chaos.h"
#include "util/rng.h"

namespace setint::core {

const char* degrade_rung_name(DegradeRung rung) {
  switch (rung) {
    case DegradeRung::kExact:
      return "exact";
    case DegradeRung::kFlaggedSuperset:
      return "flagged_superset";
    case DegradeRung::kInputFallback:
      return "input_fallback";
    case DegradeRung::kRefused:
      return "refused";
  }
  return "unknown";
}

const char* budget_dimension_name(BudgetDimension dim) {
  switch (dim) {
    case BudgetDimension::kNone:
      return "none";
    case BudgetDimension::kBits:
      return "bits";
    case BudgetDimension::kRounds:
      return "rounds";
    case BudgetDimension::kDeadline:
      return "deadline";
    case BudgetDimension::kPool:
      return "pool";
    case BudgetDimension::kAttempts:
      return "attempts";
  }
  return "unknown";
}

SessionBudget::SessionBudget(const SessionBudgetSpec& spec,
                             const sim::CostStats* cost,
                             const sim::ChaosPlan* clock)
    : spec_(spec), cost_(cost), clock_(clock) {}

void SessionBudget::check() {
  ++checks_;
  if (cost_ != nullptr) bits_observed_ = cost_->bits_total;
  if (reason_ != BudgetDimension::kNone) {
    throw BudgetExhaustedError(
        reason_, std::string("session budget exhausted: ") +
                     budget_dimension_name(reason_));
  }
  if (cost_ != nullptr) {
    if (spec_.max_bits != 0 && cost_->bits_total > spec_.max_bits) {
      reason_ = BudgetDimension::kBits;
      throw BudgetExhaustedError(
          reason_, "session bit budget exhausted: spent " +
                       std::to_string(cost_->bits_total) + " of " +
                       std::to_string(spec_.max_bits) + " bits");
    }
    if (spec_.max_rounds != 0 && cost_->rounds > spec_.max_rounds) {
      reason_ = BudgetDimension::kRounds;
      throw BudgetExhaustedError(
          reason_, "session round budget exhausted: spent " +
                       std::to_string(cost_->rounds) + " of " +
                       std::to_string(spec_.max_rounds) + " rounds");
    }
  }
  if (spec_.deadline_ticks != 0) {
    // The deadline clock: chaos logical ticks when a plan is installed
    // (one tick per attempted send, advanced across outage waits), else
    // the channel round clock.
    const std::uint64_t now =
        clock_ != nullptr ? clock_->now()
                          : (cost_ != nullptr ? cost_->rounds : 0);
    if (now > spec_.deadline_ticks) {
      reason_ = BudgetDimension::kDeadline;
      throw BudgetExhaustedError(
          reason_, "session deadline exceeded: tick " + std::to_string(now) +
                       " past deadline " +
                       std::to_string(spec_.deadline_ticks));
    }
  }
}

void SessionBudget::mark_exhausted(BudgetDimension dimension) {
  if (reason_ == BudgetDimension::kNone) reason_ = dimension;
}

std::uint64_t backoff_rounds_for_attempt(const BackoffPolicy& policy,
                                         std::uint64_t seed,
                                         std::uint64_t attempt) {
  if (policy.base_rounds == 0 || attempt == 0) return 0;
  const double multiplier = std::max(1.0, policy.multiplier);
  double step = static_cast<double>(policy.base_rounds);
  // Iterative growth (attempts are small) avoids pow() cross-platform
  // rounding drift; saturate at the cap instead of overflowing.
  const double cap = policy.cap_rounds != 0
                         ? static_cast<double>(policy.cap_rounds)
                         : static_cast<double>(UINT64_MAX);
  for (std::uint64_t i = 1; i < attempt && step < cap; ++i) {
    step *= multiplier;
  }
  step = std::min(step, cap);
  std::uint64_t rounds = static_cast<std::uint64_t>(step);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0 && rounds > 0) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(jitter * static_cast<double>(rounds)) + 1;
    rounds += util::mix64(seed ^ 0xB0FFu, attempt) % span;
  }
  return rounds;
}

bool RetryBudgetPool::try_acquire() {
  if (!enabled()) return true;
  if (spent_ >= capacity_) {
    ++denials_;
    return false;
  }
  ++spent_;
  return true;
}

double RetryBudgetPool::remaining_fraction() const {
  if (!enabled()) return 1.0;
  return static_cast<double>(remaining()) / static_cast<double>(capacity_);
}

bool AdmissionController::admit(std::uint64_t nonce) {
  if (!enabled()) {
    ++admitted_;
    return true;
  }
  const double threshold = shed_fraction();
  if (threshold > 0.0) {
    // Seeded priority in [0, 1): pairs whose priority falls below the
    // shed threshold are rejected. Pure function of (seed, nonce) and the
    // pool level, so identical runs shed identical pairs.
    const std::uint64_t h = util::mix64(policy_.seed, nonce);
    const double priority =
        static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
    if (priority < threshold) {
      ++shed_;
      return false;
    }
  }
  ++admitted_;
  return true;
}

double AdmissionController::shed_fraction() const {
  if (!enabled()) return 0.0;
  const double fraction = pool_->remaining_fraction();
  if (fraction >= policy_.critical_fraction) return 0.0;
  return 1.0 - fraction / policy_.critical_fraction;
}

}  // namespace setint::core
