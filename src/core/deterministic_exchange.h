// The trivial deterministic protocol: D^(1)(INT_k) = O(k log(n/k)).
//
// Alice ships her whole set (delta-gamma coded, ~|S| log2(n/|S|) bits);
// Bob intersects locally. In two-sided mode Bob replies with the
// intersection so Alice learns it too (one extra round). Exact, zero
// error, and the yardstick every randomized protocol here is measured
// against.
#pragma once

#include <cstdint>

#include "core/protocol.h"
#include "sim/channel.h"
#include "util/set_util.h"

namespace setint::core {

IntersectionOutput deterministic_exchange(sim::Channel& channel,
                                          std::uint64_t universe,
                                          util::SetView s, util::SetView t,
                                          bool both_sides = true);

class DeterministicExchangeProtocol final : public IntersectionProtocol {
 public:
  std::string name() const override { return "deterministic-exchange"; }
  RunResult run(std::uint64_t seed, std::uint64_t universe, util::SetView s,
                util::SetView t) const override;
};

}  // namespace setint::core
