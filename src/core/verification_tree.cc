#include "core/verification_tree.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/basic_intersection.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "eq/equality.h"
#include "hashing/pairwise.h"
#include "obs/tracer.h"
#include "util/arena.h"
#include "util/bitio.h"
#include "util/flat_buckets.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint::core {

namespace {

using Range = std::pair<std::size_t, std::size_t>;  // [first, second)

// Leaves covered by a level-i node: |C(v)| = log^(r-i) k, rounded, clamped
// into [1, k] and kept monotone in i so ranges nest.
std::vector<std::size_t> level_cover_sizes(std::size_t leaves, int r) {
  std::vector<std::size_t> cover(static_cast<std::size_t>(r) + 1);
  cover[static_cast<std::size_t>(r)] = leaves;
  for (int i = r - 1; i >= 0; --i) {
    const double v =
        util::iterated_log(r - i, static_cast<double>(leaves));
    auto c = static_cast<std::size_t>(std::llround(std::max(1.0, v)));
    c = std::min(c, cover[static_cast<std::size_t>(i) + 1]);
    cover[static_cast<std::size_t>(i)] = std::max<std::size_t>(1, c);
  }
  cover[0] = 1;  // level 0 nodes are the leaves themselves
  return cover;
}

using Layout = std::vector<std::vector<Range>>;

Layout compute_layout(std::size_t leaves, int rounds_r) {
  if (leaves == 0) throw std::invalid_argument("layout: zero leaves");
  if (rounds_r < 1) throw std::invalid_argument("layout: r < 1");
  const std::vector<std::size_t> cover = level_cover_sizes(leaves, rounds_r);
  Layout layout(static_cast<std::size_t>(rounds_r) + 1);
  layout[static_cast<std::size_t>(rounds_r)] = {Range{0, leaves}};
  for (int i = rounds_r - 1; i >= 0; --i) {
    const std::size_t chunk = cover[static_cast<std::size_t>(i)];
    for (const Range& parent : layout[static_cast<std::size_t>(i) + 1]) {
      for (std::size_t lo = parent.first; lo < parent.second; lo += chunk) {
        layout[static_cast<std::size_t>(i)].push_back(
            Range{lo, std::min(lo + chunk, parent.second)});
      }
    }
  }
  return layout;
}

// Layout memo: the iterated-log level-degree schedule depends only on
// (leaves, r), and benchmark/batch workloads recompute it for the same
// shapes thousands of times. Bounded, thread-safe, shared-pointer values so
// concurrent sessions read one immutable copy without holding the lock.
constexpr std::size_t kMaxLayoutCacheEntries = 256;

std::shared_ptr<const Layout> layout_cached(std::size_t leaves, int rounds_r) {
  static std::mutex mu;
  static std::map<std::pair<std::size_t, int>, std::shared_ptr<const Layout>>
      cache;
  const std::pair<std::size_t, int> key{leaves, rounds_r};
  {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  auto fresh =
      std::make_shared<const Layout>(compute_layout(leaves, rounds_r));
  std::lock_guard<std::mutex> lock(mu);
  const auto [it, inserted] = cache.try_emplace(key, fresh);
  if (!inserted) return it->second;  // another thread won the race
  if (cache.size() > kMaxLayoutCacheEntries) cache.erase(cache.begin());
  return fresh;
}

}  // namespace

std::vector<std::vector<Range>> verification_tree_layout(std::size_t leaves,
                                                         int rounds_r) {
  return *layout_cached(leaves, rounds_r);
}

namespace {

// Snapshot blob for the "vt" checkpoint: bucket count (sanity), then the
// per-leaf candidate assignments, gamma-delta coded like any wire set.
util::BitBuffer encode_vt_state(std::size_t k,
                                const std::vector<util::SetView>& sa,
                                const std::vector<util::SetView>& tb) {
  util::BitBuffer blob;
  blob.append_gamma64(k);
  for (std::size_t u = 0; u < k; ++u) {
    util::append_set(blob, sa[u]);
    util::append_set(blob, tb[u]);
  }
  return blob;
}

}  // namespace

IntersectionOutput verification_tree_intersection(
    sim::Channel& channel, const sim::SharedRandomness& shared,
    std::uint64_t nonce, std::uint64_t universe, util::SetView s,
    util::SetView t, const VerificationTreeParams& params,
    VerificationTreeDiag* diag, Checkpoint* ckpt) {
  validate_instance(universe, s, t);
  const std::size_t k =
      params.bucket_count != 0
          ? params.bucket_count
          : std::max<std::size_t>({s.size(), t.size(), 2});
  const double kd = static_cast<double>(k);
  const int r = params.rounds_r != 0 ? params.rounds_r
                                     : std::max(1, util::log_star(kd));
  if (r < 1) throw std::invalid_argument("verification_tree: r < 1");

  obs::Tracer* tracer = channel.tracer();
  obs::Span protocol_span(tracer, "verification_tree");

  // Theorem 3.6, r = 1 base case: plain hash exchange with range k^c —
  // exactly the one-round protocol, c k log k bits in two messages.
  if (r == 1) {
    if (diag != nullptr) *diag = VerificationTreeDiag{};
    return one_round_hash(channel, shared, nonce, universe, s, t);
  }

  util::ScratchArena::Frame scratch_frame(channel.scratch());
  util::ScratchArena& arena = channel.scratch();
  // Per-leaf candidate assignments are views: initially into the CSR data,
  // and after a Basic-Intersection re-run into `cand_store` (a deque, so
  // stored candidates never move when later stages append).
  std::vector<util::SetView> sa(k);
  std::vector<util::SetView> tb(k);
  std::deque<CandidatePair> cand_store;
  int start_stage = 0;
  if (ckpt != nullptr && ckpt->has("vt")) {
    // Crash resume: the per-leaf assignments at the last completed stage
    // boundary come out of the snapshot; the bucket partition is not
    // recomputed (it is subsumed by the stage-0 state).
    util::BitReader rd(ckpt->state());
    const std::uint64_t saved_k = rd.read_gamma64();
    if (saved_k != k) {
      throw std::logic_error("verification_tree: checkpoint bucket count "
                             "mismatch");
    }
    for (std::size_t u = 0; u < k; ++u) {
      CandidatePair cp;
      cp.s_candidate = util::read_set(rd);
      cp.t_candidate = util::read_set(rd);
      cand_store.push_back(std::move(cp));
      sa[u] = cand_store.back().s_candidate;
      tb[u] = cand_store.back().t_candidate;
    }
    start_stage = static_cast<int>(ckpt->phase());
    ckpt->note_restore();
  } else {
    // Bucket partition (the leaves' initial assignments S^(-1), T^(-1)):
    // batched hashing, then one stable counting sort into a CSR table per
    // side. Inputs are sorted and counting sort preserves input order, so
    // every bucket comes out sorted — the explicit per-bucket sort the old
    // vector-of-vector code needed is now a structural guarantee.
    util::Rng bucket_stream = shared.stream("vt-buckets", nonce);
    const auto h = hashing::PairwiseHash::sample(bucket_stream, universe, k);
    const std::span<std::uint64_t> keys_s = arena.alloc_u64(s.size());
    const std::span<std::uint64_t> keys_t = arena.alloc_u64(t.size());
    h.hash_many(s, keys_s);
    h.hash_many(t, keys_t);
    const util::FlatBuckets sb_init =
        util::build_flat_buckets_values(keys_s, s, k, arena);
    const util::FlatBuckets tb_init =
        util::build_flat_buckets_values(keys_t, t, k, arena);
    for (std::size_t u = 0; u < k; ++u) {
      sa[u] = sb_init.bucket(u);
      tb[u] = tb_init.bucket(u);
    }
    if (tracer != nullptr) {
      for (std::size_t u = 0; u < k; ++u) {
        obs::observe(tracer, "vt.bucket_size", sa[u].size() + tb[u].size());
      }
    }
  }

  const std::shared_ptr<const std::vector<std::vector<Range>>> layout_ptr =
      layout_cached(k, r);
  const auto& layout = *layout_ptr;

  VerificationTreeDiag local;
  local.stage_failures.assign(static_cast<std::size_t>(r), 0);
  local.stage_eq_bits.assign(static_cast<std::size_t>(r), 0);
  local.stage_bi_bits.assign(static_cast<std::size_t>(r), 0);
  local.leaf_reruns.assign(k, 0);

  const std::uint64_t start_bits = channel.cost().bits_total;
  const double budget =
      params.worst_case_cutoff_factor > 0
          ? params.worst_case_cutoff_factor * kd *
                std::max(1.0, util::iterated_log(r, kd))
          : std::numeric_limits<double>::infinity();

  // Per-node concatenated-encoding scratch, hoisted out of the stage loop:
  // stage 0 has the most nodes, so later (smaller) stages reuse its word
  // storage instead of re-allocating k buffers per stage.
  std::vector<util::BitBuffer> ca;
  std::vector<util::BitBuffer> cb;

  for (int stage = start_stage; stage < r; ++stage) {
    obs::Span stage_span(tracer, "level=" + std::to_string(stage));
    // Failure target 1/(log^(r-i-1) k)^4 for this stage's equality tests
    // and Basic-Intersection re-runs (Algorithm 1).
    const double tower =
        std::max(2.0, util::iterated_log(r - stage - 1, kd));
    const double stage_failure = 1.0 / std::pow(tower, 4.0);
    const auto eq_bits = static_cast<std::size_t>(std::max(
        1.0, std::ceil(params.eq_bits_scale * 4.0 * std::log2(tower))));
    const double bi_failure =
        std::min(0.25, stage_failure / std::max(1e-6, params.bi_range_scale));
    obs::observe(tracer, "vt.eq_hash_bits", eq_bits);

    // Step 1: batched equality tests at every level-`stage` node.
    const auto& ranges = layout[static_cast<std::size_t>(stage)];
    if (ca.size() < ranges.size()) {
      ca.resize(ranges.size());
      cb.resize(ranges.size());
    }
    for (std::size_t v = 0; v < ranges.size(); ++v) {
      ca[v].clear();
      cb[v].clear();
      for (std::size_t u = ranges[v].first; u < ranges[v].second; ++u) {
        util::append_set(ca[v], sa[u]);
        util::append_set(cb[v], tb[u]);
      }
    }
    const std::uint64_t eq_before = channel.cost().bits_total;
    std::vector<bool> pass;
    {
      obs::Span eq_span(tracer, "equality");
      pass = eq::batch_equality_test(
          channel, shared, util::mix64(nonce, util::mix64(0xE9, stage)),
          std::span<const util::BitBuffer>(ca.data(), ranges.size()),
          std::span<const util::BitBuffer>(cb.data(), ranges.size()),
          eq_bits);
    }
    local.stage_eq_bits[static_cast<std::size_t>(stage)] =
        channel.cost().bits_total - eq_before;

    // Step 2: re-run Basic-Intersection on every leaf under a failed node.
    std::vector<std::size_t> failed_leaves;
    for (std::size_t v = 0; v < ranges.size(); ++v) {
      if (pass[v]) continue;
      local.stage_failures[static_cast<std::size_t>(stage)] += 1;
      for (std::size_t u = ranges[v].first; u < ranges[v].second; ++u) {
        failed_leaves.push_back(u);
      }
    }
    if (!failed_leaves.empty()) {
      std::vector<std::pair<util::SetView, util::SetView>> pairs;
      pairs.reserve(failed_leaves.size());
      for (std::size_t u : failed_leaves) {
        pairs.emplace_back(sa[u], tb[u]);
      }
      const std::uint64_t bi_before = channel.cost().bits_total;
      obs::Span bi_span(tracer, "basic_intersection");
      std::vector<CandidatePair> cands = basic_intersection_batch(
          channel, shared, util::mix64(nonce, util::mix64(0xB1, stage)),
          universe, pairs, bi_failure);
      local.stage_bi_bits[static_cast<std::size_t>(stage)] =
          channel.cost().bits_total - bi_before;
      for (std::size_t j = 0; j < failed_leaves.size(); ++j) {
        const std::size_t u = failed_leaves[j];
        cand_store.push_back(std::move(cands[j]));
        sa[u] = cand_store.back().s_candidate;
        tb[u] = cand_store.back().t_candidate;
        local.leaf_reruns[u] += 1;
      }
      local.total_bi_runs += failed_leaves.size();
      // Emitted here — per completed stage, before the phase-boundary
      // save — not from local.total_bi_runs at the end: `local` restarts
      // from zero on every checkpoint re-entry, so an end-of-run total
      // under-counts any resumed session (crash restore or sans-IO park).
      obs::count(tracer, "vt.bi_runs", failed_leaves.size());
    }

    obs::count(tracer, "vt.stage_failures",
               local.stage_failures[static_cast<std::size_t>(stage)]);

    if (static_cast<double>(channel.cost().bits_total - start_bits) >
        budget) {
      local.fallback_used = true;
      obs::count(tracer, "vt.fallbacks");
      IntersectionOutput exact =
          deterministic_exchange(channel, universe, s, t);
      if (diag != nullptr) *diag = local;
      return exact;
    }

    // Phase boundary: stage complete, assignments consistent on both
    // sides. A crash after this point resumes at stage + 1 (phase == r
    // means "all stages done": only the final concatenation — which sends
    // nothing — remains).
    if (ckpt != nullptr) {
      ckpt->save("vt", static_cast<std::uint64_t>(stage) + 1,
                 encode_vt_state(k, sa, tb), channel.cost().bits_total);
    }
  }

  if (tracer != nullptr) {
    for (std::uint32_t reruns : local.leaf_reruns) {
      obs::observe(tracer, "vt.leaf_reruns", reruns);
    }
  }

  IntersectionOutput out;
  for (std::size_t u = 0; u < k; ++u) {
    out.alice.insert(out.alice.end(), sa[u].begin(), sa[u].end());
    out.bob.insert(out.bob.end(), tb[u].begin(), tb[u].end());
  }
  std::sort(out.alice.begin(), out.alice.end());
  std::sort(out.bob.begin(), out.bob.end());
  if (diag != nullptr) *diag = local;
  return out;
}

std::string VerificationTreeProtocol::name() const {
  if (params_.rounds_r == 0) return "verification-tree[r=log*k]";
  return "verification-tree[r=" + std::to_string(params_.rounds_r) + "]";
}

RunResult VerificationTreeProtocol::run(std::uint64_t seed,
                                        std::uint64_t universe,
                                        util::SetView s,
                                        util::SetView t) const {
  sim::Channel channel;
  sim::SharedRandomness shared(seed);
  RunResult result;
  result.output = verification_tree_intersection(
      channel, shared, /*nonce=*/0, universe, s, t, params_);
  result.cost = channel.cost();
  return result;
}

}  // namespace setint::core
