// The one-round randomized protocol: R^(1)(INT_k) = O(k log k).
//
// Both parties hash their elements into [N] with N ~ k^c via a shared
// pairwise hash and exchange the hashed images (one message each way).
// Each party keeps the elements whose hash appears in the peer's image.
// Error <= k^2 * O(1/N) = O(1/k^(c-2)); this matches the paper's
// R^(1)(INT_k) = O(k log k) upper bound, optimal for a single round by
// [DKS12, BGSMdW12]. It is also exactly the r = 1 base case of
// Theorem 3.6.
#pragma once

#include <cstdint>

#include "core/protocol.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::core {

// strength c: hash range N = max(16, k^c), failure O(1/k^(c-2)).
IntersectionOutput one_round_hash(sim::Channel& channel,
                                  const sim::SharedRandomness& shared,
                                  std::uint64_t nonce, std::uint64_t universe,
                                  util::SetView s, util::SetView t,
                                  int strength = 3);

class OneRoundHashProtocol final : public IntersectionProtocol {
 public:
  explicit OneRoundHashProtocol(int strength = 3) : strength_(strength) {}
  std::string name() const override { return "one-round-hash"; }
  RunResult run(std::uint64_t seed, std::uint64_t universe, util::SetView s,
                util::SetView t) const override;

 private:
  int strength_;
};

}  // namespace setint::core
