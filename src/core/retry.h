// Retry and graceful-degradation policy for certified protocol runs.
//
// The verification-tree protocol plus its 2k-bit certificate is a
// detector: on a reliable channel a failed certificate means a hash
// collision; on an unreliable one (sim/fault.h) it additionally catches
// corrupted candidates, and corrupted messages usually fail to decode at
// all (std::invalid_argument / std::out_of_range from the hardened
// decoders). Either way the sound response is the same — retry the whole
// certified run with fresh randomness — and this policy bounds how hard
// the recovery layer tries before it degrades to an honestly-flagged
// superset answer. Semantics are specified in docs/ROBUSTNESS.md.
#pragma once

#include <cstdint>

namespace setint::core {

struct RetryPolicy {
  // Certified attempts (verification tree + certificate, fresh nonce each
  // time) before giving up. Replaces the old hard-coded kMaxRepetitions.
  // Taken literally: 0 means NO certified attempts — the session goes
  // straight to the deterministic backstop (reliable channel) or the
  // degradation ladder (hostile transport), with zero retry.* activity
  // (pinned by tests/robustness_test.cc). The default is sized for the
  // BENCH_faults acceptance bar: at flip rate 1e-3/bit an attempt survives
  // the integrity check with probability ~0.17, so 40 attempts leave
  // < 1e-3 exhaustion probability (>= 99% verified); a reliable channel
  // never uses more than one plus the rare certificate collision.
  std::uint64_t max_attempts = 40;

  // Extra latency rounds charged to the channel before every re-attempt —
  // the cost model of a backoff timer on a real link. 0 = immediate retry.
  // This is the BASE of the backoff schedule; with the default growth
  // knobs below the schedule is flat (every re-attempt waits exactly this
  // long), matching the original policy bit-for-bit.
  std::uint64_t backoff_rounds = 0;

  // Exponential growth factor applied per re-attempt: re-attempt n waits
  // backoff_rounds * backoff_multiplier^(n-1) rounds, capped below.
  // 1.0 (default) keeps the flat schedule.
  double backoff_multiplier = 1.0;

  // Cap on the deterministic backoff step. 0 = uncapped.
  std::uint64_t backoff_cap_rounds = 4096;

  // Fraction of each step randomized by deterministic seeded jitter
  // (core::backoff_rounds_for_attempt). 0.0 (default) = no jitter; the
  // jitter draw is a pure hash of (session seed, attempt), so identical
  // runs wait identically.
  double backoff_jitter = 0.0;

  // Best-effort Basic-Intersection runs the degradation path may spend
  // looking for a fault-free superset (Lemma 3.3) after `max_attempts` is
  // exhausted under an active fault plan. If none survives, the caller's
  // own input set — the one superset that needs no communication — is
  // returned instead.
  std::uint64_t degraded_attempts = 4;

  // Chaos recovery (sim/chaos.h). Crash/partition blocks within one
  // certified attempt are waited out and resumed (from the last phase
  // checkpoint when one is installed) up to this many times per session
  // before the peer is declared lost and the run degrades.
  std::uint64_t max_restarts = 16;

  // A restart is only waited for if the blocked link heals within this
  // many latency rounds (charged to the channel like backoff_rounds);
  // longer outages are treated as a lost peer.
  std::uint64_t max_resume_wait_rounds = 4096;
};

}  // namespace setint::core
